package diversity_test

import (
	"math"
	"testing"

	"diversity"

	"diversity/internal/bayes"
	"diversity/internal/demandspace"
	"diversity/internal/devsim"
	"diversity/internal/elm"
	"diversity/internal/faultmodel"
	"diversity/internal/knightleveson"
	"diversity/internal/montecarlo"
	"diversity/internal/plant"
	"diversity/internal/randx"
	"diversity/internal/scenario"
	"diversity/internal/stats"
	"diversity/internal/system"
)

// TestIntegrationScenarioToAssessment drives the full assessor pipeline:
// scenario generation -> analytic model -> Monte-Carlo validation ->
// empirical percentile bounds -> Bayesian update, checking cross-module
// consistency at every joint.
func TestIntegrationScenarioToAssessment(t *testing.T) {
	t.Parallel()

	sc, err := scenario.CommercialGrade(11)
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	fs := sc.FaultSet

	// Analytic moments and their MC counterparts.
	mc, err := montecarlo.Run(montecarlo.Config{
		Process:  devsim.NewIndependentProcess(fs),
		Versions: 2,
		Reps:     150000,
		Seed:     3,
	})
	if err != nil {
		t.Fatalf("montecarlo: %v", err)
	}
	mu2, err := fs.MeanPFD(2)
	if err != nil {
		t.Fatalf("MeanPFD: %v", err)
	}
	gotMu2, err := stats.Mean(mc.SystemPFD)
	if err != nil {
		t.Fatalf("Mean: %v", err)
	}
	if math.Abs(gotMu2-mu2) > 0.001 {
		t.Errorf("system mean: MC %v vs model %v", gotMu2, mu2)
	}

	// The normal-approximation 95% bound must cover ~95% of the MC
	// version PFDs (this scenario has hundreds of contributions? no —
	// 40 faults; allow coarse tolerance).
	bound, err := fs.ConfidenceBoundAt(1, 0.95)
	if err != nil {
		t.Fatalf("ConfidenceBoundAt: %v", err)
	}
	ecdf, err := stats.NewECDF(mc.VersionPFD)
	if err != nil {
		t.Fatalf("NewECDF: %v", err)
	}
	if cover := ecdf.At(bound); math.Abs(cover-0.95) > 0.05 {
		t.Errorf("95%% normal bound covers %.3f of the MC sample", cover)
	}

	// Exact lattice distribution agrees with the MC ECDF.
	lat, err := fs.LatticePFD(2, 4096)
	if err != nil {
		t.Fatalf("LatticePFD: %v", err)
	}
	for _, x := range []float64{0.001, 0.005, 0.02, 0.05} {
		if diff := math.Abs(lat.CDF(x) - ecdfAt(t, mc.SystemPFD, x)); diff > 0.01 {
			t.Errorf("lattice vs MC CDF at %v differ by %v", x, diff)
		}
	}

	// Bayesian update from the lattice prior: evidence shifts mass down.
	post, err := bayes.Update(lat, 5000, 0)
	if err != nil {
		t.Fatalf("bayes.Update: %v", err)
	}
	if post.Mean() >= lat.Mean() {
		t.Errorf("posterior mean %v not below prior mean %v", post.Mean(), lat.Mean())
	}
}

func ecdfAt(t *testing.T, xs []float64, x float64) float64 {
	t.Helper()
	e, err := stats.NewECDF(xs)
	if err != nil {
		t.Fatalf("NewECDF: %v", err)
	}
	return e.At(x)
}

// TestIntegrationGeometryAgreesWithFaultModel drives versions from the
// development simulator through the geometric demand space and the plant
// DES, and requires all three views of the same pair — fault-level,
// geometric sampling, mission simulation — to agree.
func TestIntegrationGeometryAgreesWithFaultModel(t *testing.T) {
	t.Parallel()

	fs, err := faultmodel.New([]faultmodel.Fault{
		{P: 0.5, Q: 0.07}, {P: 0.35, Q: 0.11}, {P: 0.2, Q: 0.05},
	})
	if err != nil {
		t.Fatalf("faultmodel.New: %v", err)
	}
	proc := devsim.NewIndependentProcess(fs)
	r := randx.NewStream(17)
	vA, vB := proc.Develop(r), proc.Develop(r)

	// View 1: fault-level.
	faultLevel, err := devsim.CommonPFD(fs, vA, vB)
	if err != nil {
		t.Fatalf("CommonPFD: %v", err)
	}
	// View 2: system package.
	sys, err := system.New(fs, system.Arch1OutOfM, vA, vB)
	if err != nil {
		t.Fatalf("system.New: %v", err)
	}
	if math.Abs(sys.PFD()-faultLevel) > 1e-15 {
		t.Errorf("system PFD %v != common PFD %v", sys.PFD(), faultLevel)
	}
	// View 3: geometric sampling.
	layout, err := plant.StripLayout(fs)
	if err != nil {
		t.Fatalf("StripLayout: %v", err)
	}
	chA, err := plant.BuildChannel(layout, vA.Has)
	if err != nil {
		t.Fatalf("BuildChannel: %v", err)
	}
	chB, err := plant.BuildChannel(layout, vB.Has)
	if err != nil {
		t.Fatalf("BuildChannel: %v", err)
	}
	profile, err := demandspace.NewUniformProfile(2)
	if err != nil {
		t.Fatalf("NewUniformProfile: %v", err)
	}
	sim, err := demandspace.SimulatePair(r, profile, chA, chB, 200000)
	if err != nil {
		t.Fatalf("SimulatePair: %v", err)
	}
	if math.Abs(sim.SystemPFD()-faultLevel) > 0.005 {
		t.Errorf("geometric system PFD %v vs fault-level %v", sim.SystemPFD(), faultLevel)
	}
	// View 4: the plant mission.
	mission, err := plant.Run(plant.Config{
		MissionTime: 150000, DemandRate: 1,
		Profile: profile, ChannelA: chA, ChannelB: chB, Seed: 23,
	})
	if err != nil {
		t.Fatalf("plant.Run: %v", err)
	}
	if math.Abs(mission.SystemPFD()-faultLevel) > 0.005 {
		t.Errorf("mission system PFD %v vs fault-level %v", mission.SystemPFD(), faultLevel)
	}
}

// TestIntegrationELBridge checks the EL mapping against both the analytic
// fault model and simulated version populations.
func TestIntegrationELBridge(t *testing.T) {
	t.Parallel()

	sc, err := scenario.SafetyGrade(5)
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	el, err := elm.FromFaultSet(sc.FaultSet)
	if err != nil {
		t.Fatalf("FromFaultSet: %v", err)
	}
	r := randx.NewStream(29)
	const reps = 100000
	sum := 0.0
	for i := 0; i < reps; i++ {
		sum += el.SampleVersionPFD(r)
	}
	mu1, err := sc.FaultSet.MeanPFD(1)
	if err != nil {
		t.Fatalf("MeanPFD: %v", err)
	}
	got := sum / reps
	sigma1, err := sc.FaultSet.SigmaPFD(1)
	if err != nil {
		t.Fatalf("SigmaPFD: %v", err)
	}
	if math.Abs(got-mu1) > 5*sigma1/math.Sqrt(reps)+1e-12 {
		t.Errorf("EL sampled mean %v vs model %v", got, mu1)
	}
}

// TestIntegrationKnightLevesonUsesModelMachinery ties the KL replica's
// outcomes back to the model: the population statistics it reports must
// match what the underlying fault set predicts.
func TestIntegrationKnightLevesonUsesModelMachinery(t *testing.T) {
	t.Parallel()

	fs, err := knightleveson.DefaultFaultSet()
	if err != nil {
		t.Fatalf("DefaultFaultSet: %v", err)
	}
	mu1, err := fs.MeanPFD(1)
	if err != nil {
		t.Fatalf("MeanPFD: %v", err)
	}
	// Average the replica's sample mean over many seeds: it must
	// approach the model's µ1.
	var acc stats.Accumulator
	for seed := uint64(0); seed < 60; seed++ {
		out, err := knightleveson.Run(knightleveson.Config{Seed: seed})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		acc.Add(out.VersionStats.Mean)
	}
	if math.Abs(acc.Mean()-mu1) > 0.2*mu1 {
		t.Errorf("replica population mean %v vs model µ1 %v", acc.Mean(), mu1)
	}
}

// TestIntegrationPublicFacadeCoversInternalPaths sanity-checks that the
// re-exported facade values are the same objects as the internal ones.
func TestIntegrationPublicFacadeCoversInternalPaths(t *testing.T) {
	t.Parallel()

	fs, err := diversity.Uniform(4, 0.2, 0.05)
	if err != nil {
		t.Fatalf("Uniform: %v", err)
	}
	// A facade FaultSet is usable with internal packages directly (type
	// alias, not a wrapper).
	var internalSet *faultmodel.FaultSet = fs
	mu, err := internalSet.MeanPFD(2)
	if err != nil {
		t.Fatalf("MeanPFD: %v", err)
	}
	want := 4 * 0.04 * 0.05
	if math.Abs(mu-want) > 1e-15 {
		t.Errorf("µ2 = %v, want %v", mu, want)
	}
}
