package diversity

import (
	"context"

	"diversity/internal/calibrate"
	"diversity/internal/demandspace"
	"diversity/internal/devsim"
	"diversity/internal/elm"
	"diversity/internal/engine"
	"diversity/internal/faultmodel"
	"diversity/internal/knightleveson"
	"diversity/internal/plant"
	"diversity/internal/process"
	"diversity/internal/telemetry"
)

// Execution-engine types, re-exported. Every run path — Monte-Carlo
// simulation, rare-event estimation, the experiment suite, and the
// analytic assessor report — can be expressed as a JSON-serialisable Job
// and executed through RunJob (or an Engine with its own cache and
// progress hook). Identical jobs are served from an LRU result cache
// keyed by the canonical job hash.
type (
	// Job is a typed, hashable unit of executable work.
	Job = engine.Job
	// JobKind discriminates what a job computes.
	JobKind = engine.JobKind
	// JobResult is the kind-discriminated outcome of a job.
	JobResult = engine.Result
	// JobModelSpec names the model a job runs against (scenario reference
	// or inline faults).
	JobModelSpec = engine.ModelSpec
	// MonteCarloSpec parameterises a Monte-Carlo replication job.
	MonteCarloSpec = engine.MonteCarloSpec
	// RareEventSpec parameterises an importance-sampling job.
	RareEventSpec = engine.RareEventSpec
	// ExperimentsSpec parameterises a paper-experiment suite job.
	ExperimentsSpec = engine.ExperimentsSpec
	// AnalyticSpec parameterises an assessor-report job.
	AnalyticSpec = engine.AnalyticSpec
	// Engine executes jobs with result caching and progress reporting.
	Engine = engine.Engine
	// EngineOptions configure a new Engine.
	EngineOptions = engine.Options
	// EngineProgress is one progress report from a running job.
	EngineProgress = engine.Progress
)

// Job kinds, re-exported.
const (
	JobMonteCarlo  = engine.JobMonteCarlo
	JobRareEvent   = engine.JobRareEvent
	JobExperiments = engine.JobExperiments
	JobAnalytic    = engine.JobAnalytic
)

// Telemetry types, re-exported. A metrics registry attached through
// EngineOptions.Telemetry collects the engine's counters, gauges,
// latency histograms and per-run span traces; its Snapshot serialises
// to JSON. See DESIGN.md §7 for the metric names and span hierarchy.
type (
	// MetricsRegistry collects counters, gauges, histograms and run
	// traces; safe for concurrent use.
	MetricsRegistry = telemetry.Registry
	// MetricsSnapshot is a point-in-time JSON-serialisable copy of a
	// registry.
	MetricsSnapshot = telemetry.Snapshot
)

// NewMetricsRegistry returns an empty metrics registry, ready to attach
// to an engine through EngineOptions.Telemetry.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// NewEngine returns an execution engine with its own result cache and
// progress hook.
func NewEngine(opts EngineOptions) *Engine { return engine.New(opts) }

// SetEngineOptions reconfigures the shared process-wide engine that
// RunJob routes through, so telemetry, logging and progress hooks can be
// attached without constructing a dedicated engine. The previous shared
// engine's result cache is discarded.
func SetEngineOptions(opts EngineOptions) { engine.SetDefaultOptions(opts) }

// RunJob executes a job through the shared process-wide engine: repeated
// identical jobs are served from its result cache, and a cancelled
// context stops simulation workloads promptly.
func RunJob(ctx context.Context, job Job) (*JobResult, error) { return engine.Run(ctx, job) }

// NewMonteCarloJob wraps a Monte-Carlo spec as a Job.
func NewMonteCarloJob(spec MonteCarloSpec) Job { return engine.NewMonteCarloJob(spec) }

// NewRareEventJob wraps a rare-event spec as a Job.
func NewRareEventJob(spec RareEventSpec) Job { return engine.NewRareEventJob(spec) }

// NewExperimentsJob wraps an experiment-suite spec as a Job.
func NewExperimentsJob(spec ExperimentsSpec) Job { return engine.NewExperimentsJob(spec) }

// NewAnalyticJob wraps an analytic spec as a Job.
func NewAnalyticJob(spec AnalyticSpec) Job { return engine.NewAnalyticJob(spec) }

// JobModelFromFaultSet returns an inline model spec carrying the fault
// set's parameters, for jobs over models that did not come from a named
// scenario.
func JobModelFromFaultSet(fs *FaultSet, name string) JobModelSpec {
	return engine.ModelFromFaultSet(fs, name)
}

// Demand-space and protection-system simulation types, re-exported. These
// are the geometric substrate of the paper's Fig. 1 (dual-channel
// protection system) and Fig. 2 (failure regions in the demand space).
type (
	// Point is a demand: a point in the unit hypercube.
	Point = demandspace.Point
	// Region is a measurable subset of the demand space.
	Region = demandspace.Region
	// Box is an axis-aligned failure region.
	Box = demandspace.Box
	// Ball is a spherical failure region.
	Ball = demandspace.Ball
	// GeomVersion is a version as the union of its failure regions.
	GeomVersion = demandspace.GeomVersion
	// Profile is a demand distribution over the demand space.
	Profile = demandspace.Profile
	// UniformProfile distributes demands uniformly.
	UniformProfile = demandspace.UniformProfile
	// PlantConfig parameterises a protection-system mission simulation.
	PlantConfig = plant.Config
	// PlantResult holds protection-system mission statistics.
	PlantResult = plant.Result
	// KnightLevesonConfig parameterises the synthetic Knight-Leveson
	// replica.
	KnightLevesonConfig = knightleveson.Config
	// KnightLevesonOutcome holds the replica's measurements.
	KnightLevesonOutcome = knightleveson.Outcome
	// Improvement is a process-improvement transformation of a fault
	// set (Section 4.2).
	Improvement = process.Improvement
	// TrajectoryPoint records gain measures along an improvement
	// trajectory.
	TrajectoryPoint = process.TrajectoryPoint
	// EckhardtLee is the Eckhardt-Lee baseline model.
	EckhardtLee = elm.EckhardtLee
	// LittlewoodMiller is the Littlewood-Miller baseline model.
	LittlewoodMiller = elm.LittlewoodMiller
)

// Process improvements, re-exported.
type (
	// SingleFaultImprovement reduces one fault's presence probability
	// (Section 4.2.1 / Appendix A).
	SingleFaultImprovement = process.SingleFault
	// ProportionalImprovement reduces every presence probability by the
	// same factor (Section 4.2.2 / Appendix B).
	ProportionalImprovement = process.Proportional
	// FaultClassImprovement reduces a subset of presence probabilities.
	FaultClassImprovement = process.FaultClass
)

// NewBox returns an axis-aligned failure region.
func NewBox(lo, hi Point) (Box, error) { return demandspace.NewBox(lo, hi) }

// NewBall returns a spherical failure region.
func NewBall(center Point, radius float64) (Ball, error) {
	return demandspace.NewBall(center, radius)
}

// NewUniformProfile returns a uniform demand profile of dimension d.
func NewUniformProfile(d int) (UniformProfile, error) { return demandspace.NewUniformProfile(d) }

// NewGeomVersion builds a version from its failure regions.
func NewGeomVersion(d int, regions ...Region) (*GeomVersion, error) {
	return demandspace.NewGeomVersion(d, regions...)
}

// RunPlant simulates one protection-system mission (Fig. 1).
func RunPlant(cfg PlantConfig) (*PlantResult, error) { return plant.Run(cfg) }

// StripLayout assigns each fault of a fault set a disjoint failure region
// with uniform-profile measure q_i, bridging the fault-level model to the
// geometric simulation.
func StripLayout(fs *FaultSet) ([]Region, error) { return plant.StripLayout(fs) }

// BuildChannel assembles a channel's failure geometry from the faults a
// developed version contains.
func BuildChannel(layout []Region, present func(i int) bool) (*GeomVersion, error) {
	return plant.BuildChannel(layout, present)
}

// RunKnightLeveson runs the synthetic Knight-Leveson replica (the paper's
// Section-7 qualitative check).
func RunKnightLeveson(cfg KnightLevesonConfig) (*KnightLevesonOutcome, error) {
	return knightleveson.Run(cfg)
}

// TraceImprovement evaluates the paper's gain measures along a process
// improvement trajectory (Section 4.2).
func TraceImprovement(fs *FaultSet, imp Improvement, amounts []float64, k float64) ([]TrajectoryPoint, error) {
	return process.Trace(fs, imp, amounts, k)
}

// StatisticalTesting is the testing/debugging improvement: each fault
// survives T operational-profile test demands with probability (1-q)^T.
type StatisticalTesting = process.StatisticalTesting

// ApplyTesting returns the fault set after statistical testing with the
// given number of test demands: p_i -> p_i·(1-q_i)^demands.
func ApplyTesting(fs *FaultSet, demands float64) (*FaultSet, error) {
	return process.ApplyTesting(fs, demands)
}

// BudgetTrade compares "one version tested with the whole budget" against
// "two diverse versions splitting the budget after paying a development
// overhead" — the N-version-vs-one-good-version trade.
func BudgetTrade(fs *FaultSet, totalDemands, diversityOverhead float64) (single, diverse float64, err error) {
	return process.BudgetTrade(fs, totalDemands, diversityOverhead)
}

// TwoProcess models forced diversity: the two channels come from
// different development processes over the same fault universe.
type TwoProcess = faultmodel.TwoProcess

// NewTwoProcess builds a forced-diversity model from per-process fault
// sets sharing the same failure regions.
func NewTwoProcess(a, b *FaultSet) (*TwoProcess, error) { return faultmodel.NewTwoProcess(a, b) }

// Observations is fault-occurrence evidence from past projects: how many
// of the observed versions contained each fault class (Section 6.3).
type Observations = calibrate.Observations

// PmaxBound is a simultaneous upper confidence bound on pmax estimated
// from such evidence.
type PmaxBound = calibrate.PmaxBound

// EstimatePmax returns a simultaneous upper confidence bound on pmax from
// past-project fault counts, ready to drive formulas (4), (11) and (12).
func EstimatePmax(o Observations, level float64) (PmaxBound, error) {
	return calibrate.UpperPmax(o, level)
}

// CommonPFD returns the 1-out-of-N system PFD of developed versions: the
// summed region probabilities of the faults present in every one of them.
// With a pair of versions it is the paper's 1-out-of-2 system PFD.
func CommonPFD(fs *FaultSet, versions ...*Version) (float64, error) {
	return devsim.CommonPFD(fs, versions...)
}

// ELFromFaultSet maps a fault set onto the Eckhardt-Lee demand space whose
// cells are the failure regions; the two models then agree exactly on mean
// PFDs.
func ELFromFaultSet(fs *FaultSet) (*EckhardtLee, error) { return elm.FromFaultSet(fs) }

// NewLittlewoodMiller constructs a Littlewood-Miller two-methodology model
// over a common demand profile.
func NewLittlewoodMiller(weights, thetaA, thetaB []float64) (*LittlewoodMiller, error) {
	return elm.NewLittlewoodMiller(weights, thetaA, thetaB)
}

// interface conformance guards: the facade's aliases must stay aligned
// with the interfaces they are documented to satisfy.
var (
	_ Region  = Box{}
	_ Region  = Ball{}
	_ Profile = UniformProfile{}
	_         = faultmodel.MaxExactFaults
)

// MaxExactFaults bounds the fault count for which ExactPFD enumerates the
// full distribution.
const MaxExactFaults = faultmodel.MaxExactFaults
