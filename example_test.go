package diversity_test

import (
	"fmt"
	"log"

	"diversity"
)

// ExampleNew shows the basic modelling loop: define the potential faults,
// read off the paper's equation-(1) means for one version and the
// 1-out-of-2 pair.
func ExampleNew() {
	fs, err := diversity.New([]diversity.Fault{
		{P: 0.1, Q: 0.02},
		{P: 0.05, Q: 0.04},
	})
	if err != nil {
		log.Fatal(err)
	}
	mu1, err := fs.MeanPFD(1)
	if err != nil {
		log.Fatal(err)
	}
	mu2, err := fs.MeanPFD(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one version %.4f, 1-out-of-2 %.6f\n", mu1, mu2)
	// Output: one version 0.0040, 1-out-of-2 0.000300
}

// ExampleFaultSet_RiskRatio evaluates the paper's equation (10): the
// factor by which diversity reduces the risk of carrying any defeating
// fault.
func ExampleFaultSet_RiskRatio() {
	fs, err := diversity.New([]diversity.Fault{
		{P: 0.1, Q: 0.1},
		{P: 0.2, Q: 0.1},
	})
	if err != nil {
		log.Fatal(err)
	}
	ratio, err := fs.RiskRatio()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P(N2>0)/P(N1>0) = %.4f\n", ratio)
	// Output: P(N2>0)/P(N1>0) = 0.1771
}

// ExampleTwoVersionBoundFromMoments reproduces the paper's Section-5.1
// worked example: µ1 = 0.01, σ1 = 0.001, pmax = 0.1, 84% confidence.
func ExampleTwoVersionBoundFromMoments() {
	bound, err := diversity.TwoVersionBoundFromMoments(0.01, 0.001, 0.1, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("two-version bound %.4f (one-version bound 0.0110)\n", bound)
	// Output: two-version bound 0.0013 (one-version bound 0.0110)
}

// ExampleSigmaBoundFactor regenerates the paper's Section-5.1 table.
func ExampleSigmaBoundFactor() {
	for _, pmax := range []float64{0.5, 0.1, 0.01} {
		factor, err := diversity.SigmaBoundFactor(pmax)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("pmax %.2f -> %.3f\n", pmax, factor)
	}
	// Output:
	// pmax 0.50 -> 0.866
	// pmax 0.10 -> 0.332
	// pmax 0.01 -> 0.100
}

// ExampleFaultSet_ExactPFD computes the exact PFD distribution of a small
// model and reads a percentile reliability bound from it.
func ExampleFaultSet_ExactPFD() {
	fs, err := diversity.New([]diversity.Fault{
		{P: 0.5, Q: 0.125},
		{P: 0.5, Q: 0.25},
	})
	if err != nil {
		log.Fatal(err)
	}
	dist, err := fs.ExactPFD(1)
	if err != nil {
		log.Fatal(err)
	}
	q, err := dist.Quantile(0.75)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P(PFD = 0) = %.2f, 75th percentile = %.3f\n", dist.CDF(0), q)
	// Output: P(PFD = 0) = 0.25, 75th percentile = 0.250
}

// ExampleBudgetTrade compares spending a verification budget on one
// well-tested version versus two diverse, less-tested versions.
func ExampleBudgetTrade() {
	fs, err := diversity.New([]diversity.Fault{{P: 0.5, Q: 0.01}})
	if err != nil {
		log.Fatal(err)
	}
	single, diverse, err := diversity.BudgetTrade(fs, 2000, 500)
	if err != nil {
		log.Fatal(err)
	}
	winner := "diverse pair"
	if single < diverse {
		winner = "single version"
	}
	fmt.Printf("winner with a 500-demand diversity overhead: %s\n", winner)
	// Output: winner with a 500-demand diversity overhead: single version
}

// ExampleNewTwoProcess quantifies forced diversity: processes with
// anti-correlated weaknesses beat an unforced pair of the same average
// skill.
func ExampleNewTwoProcess() {
	a, err := diversity.FromSlices([]float64{0.3, 0.05}, []float64{0.05, 0.1})
	if err != nil {
		log.Fatal(err)
	}
	b, err := diversity.FromSlices([]float64{0.05, 0.3}, []float64{0.05, 0.1})
	if err != nil {
		log.Fatal(err)
	}
	tp, err := diversity.NewTwoProcess(a, b)
	if err != nil {
		log.Fatal(err)
	}
	ratio, _, _, err := tp.ForcedAdvantage()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("forced diversity advantage: %.2fx\n", ratio)
	// Output: forced diversity advantage: 2.04x
}

// ExampleUpdatePrior performs a Bayesian assessment: the model prior over
// the system PFD, updated with failure-free operation.
func ExampleUpdatePrior() {
	fs, err := diversity.New([]diversity.Fault{{P: 0.4, Q: 0.01}})
	if err != nil {
		log.Fatal(err)
	}
	prior, err := diversity.PriorFromModel(fs, 256)
	if err != nil {
		log.Fatal(err)
	}
	post, err := diversity.UpdatePrior(prior, 1000, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P(system fault-free) rose from %.3f to %.3f\n",
		1-0.16, post.ProbZero())
	// Output: P(system fault-free) rose from 0.840 to 1.000
}

// ExampleMonteCarlo_streaming cross-checks the model by simulation in
// streaming mode: memory stays constant however many replications run,
// and the summary methods read statistics exactly as in buffered mode.
// Workers is pinned to 1 so the output is reproducible.
func ExampleMonteCarlo_streaming() {
	fs, err := diversity.New([]diversity.Fault{
		{P: 0.1, Q: 0.02},
		{P: 0.05, Q: 0.04},
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := diversity.MonteCarlo(diversity.MonteCarloConfig{
		Process:   diversity.NewIndependentProcess(fs),
		Versions:  2,
		Reps:      100000,
		Workers:   1,
		Seed:      1,
		Streaming: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	mu2, err := fs.MeanPFD(2)
	if err != nil {
		log.Fatal(err)
	}
	sum, err := res.SystemSummary()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model %.6f, simulated %.6f over %d replications\n", mu2, sum.Mean, sum.N)
	// Output: model 0.000300, simulated 0.000312 over 100000 replications
}
