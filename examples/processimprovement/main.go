// Processimprovement: the paper's Section-4.2 question — does a better
// development process make diversity more or less worthwhile?
//
// The example traces the risk ratio P(N2>0)/P(N1>0) (equation 10; smaller
// means diversity buys more) along two kinds of process improvement:
//
//   - proportional: every fault becomes less likely by the same factor
//     (Appendix B proves the gain from diversity always grows);
//   - targeted: only one fault class improves (Appendix A shows the gain
//     can shrink — the counterintuitive result).
//
// Run with:
//
//	go run ./examples/processimprovement
package main

import (
	"fmt"
	"log"

	"diversity"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("processimprovement: ")

	fs, err := diversity.New([]diversity.Fault{
		{P: 0.30, Q: 0.05}, // a common blind spot
		{P: 0.10, Q: 0.05}, // a moderate fault class
		{P: 0.01, Q: 0.05}, // an already-rare fault class
	})
	if err != nil {
		log.Fatal(err)
	}
	amounts := []float64{0, 0.2, 0.4, 0.6, 0.8, 0.95}

	fmt.Println("proportional improvement (all faults; Appendix B: ratio must fall):")
	printTrajectory(fs, diversity.ProportionalImprovement{}, amounts)

	fmt.Println("\ntargeted improvement of the COMMON fault (p=0.30):")
	printTrajectory(fs, diversity.SingleFaultImprovement{Index: 0}, amounts)

	fmt.Println("\ntargeted improvement of the RARE fault (p=0.01):")
	fmt.Println("  (watch the ratio RISE: the paper's counterintuitive regime —")
	fmt.Println("   polishing an already-unlikely fault class erodes what diversity buys)")
	printTrajectory(fs, diversity.SingleFaultImprovement{Index: 2}, amounts)

	// Where is the boundary? Appendix A's stationary point for the
	// two-fault case.
	fmt.Println("\nAppendix A stationary points p1z(p2) — improving a fault below")
	fmt.Println("its stationary point reduces the gain from diversity:")
	for _, p2 := range []float64{0.05, 0.1, 0.3, 0.5} {
		p1z, err := diversity.TwoFaultStationaryP1(p2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  p2 = %-4v -> p1z = %.5f\n", p2, p1z)
	}
}

func printTrajectory(fs *diversity.FaultSet, imp diversity.Improvement, amounts []float64) {
	points, err := diversity.TraceImprovement(fs, imp, amounts, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  improvement   P(N1>0)   P(N2>0)    risk ratio   bound ratio")
	for _, pt := range points {
		fmt.Printf("  %10.0f%%   %.4f    %.6f   %.5f      %.2f\n",
			pt.Amount*100, pt.PAnyFault1, pt.PAnyFault2, pt.RiskRatio, pt.Gain.BoundRatio)
	}
}
