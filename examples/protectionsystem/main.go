// Protectionsystem: the paper's Fig. 1 end to end. Two software versions
// are developed against the same fault universe by the fault-creation
// process, laid out as failure regions in a 2-D demand space, and deployed
// as the two channels of a 1-out-of-2 plant protection system. A
// discrete-event simulation subjects the system to a Poisson stream of
// hazardous plant states and measures the observed probability of failure
// on demand, which the fault-level model predicts exactly.
//
// Run with:
//
//	go run ./examples/protectionsystem
package main

import (
	"fmt"
	"log"
	"math"

	"diversity"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("protectionsystem: ")

	// The potential-fault universe for the protection software.
	fs, err := diversity.New([]diversity.Fault{
		{P: 0.5, Q: 0.06},
		{P: 0.4, Q: 0.03},
		{P: 0.3, Q: 0.08},
		{P: 0.2, Q: 0.05},
		{P: 0.1, Q: 0.10},
	})
	if err != nil {
		log.Fatal(err)
	}
	mu1, err := fs.MeanPFD(1)
	if err != nil {
		log.Fatal(err)
	}
	mu2, err := fs.MeanPFD(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault universe: %d potential faults\n", fs.N())
	fmt.Printf("model predictions: E[channel PFD] = %.4f, E[system PFD] = %.4f\n\n", mu1, mu2)

	// Each fault's failure region is a strip of the demand space whose
	// uniform-profile measure is exactly q_i.
	layout, err := diversity.StripLayout(fs)
	if err != nil {
		log.Fatal(err)
	}
	profile, err := diversity.NewUniformProfile(2)
	if err != nil {
		log.Fatal(err)
	}
	proc := diversity.NewIndependentProcess(fs)

	// Simulate several missions, each with a freshly developed pair of
	// channel programs.
	fmt.Println("mission  chA faults  chB faults  model PFD  observed PFD  first failure")
	sumModel, sumObserved := 0.0, 0.0
	const missions = 8
	for i := 0; i < missions; i++ {
		stream := diversity.NewStream(uint64(i + 1))
		vA := proc.Develop(stream)
		vB := proc.Develop(stream)
		chA, err := diversity.BuildChannel(layout, vA.Has)
		if err != nil {
			log.Fatal(err)
		}
		chB, err := diversity.BuildChannel(layout, vB.Has)
		if err != nil {
			log.Fatal(err)
		}
		model, err := diversity.CommonPFD(fs, vA, vB)
		if err != nil {
			log.Fatal(err)
		}
		mission, err := diversity.RunPlant(diversity.PlantConfig{
			MissionTime: 100000, // hazardous excursions arrive at unit rate
			DemandRate:  1,
			Profile:     profile,
			ChannelA:    chA,
			ChannelB:    chB,
			Seed:        uint64(i + 1000),
		})
		if err != nil {
			log.Fatal(err)
		}
		first := "never"
		if !math.IsNaN(mission.FirstSystemFailure) {
			first = fmt.Sprintf("t=%.0f", mission.FirstSystemFailure)
		}
		fmt.Printf("%7d  %10d  %10d  %9.4f  %12.4f  %s\n",
			i+1, vA.FaultCount(), vB.FaultCount(), model, mission.SystemPFD(), first)
		sumModel += model
		sumObserved += mission.SystemPFD()
	}
	fmt.Println()
	fmt.Printf("average over %d missions: model %.4f, observed %.4f (population E[Θ2] = %.4f)\n",
		missions, sumModel/missions, sumObserved/missions, mu2)
	fmt.Println("the 1oo2 system fails exactly where the channels' failure regions intersect.")
}
