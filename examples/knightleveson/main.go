// Knightleveson: the paper's Section-7 qualitative check, re-run on a
// synthetic replica of the Knight & Leveson 27-version experiment. The
// paper observes that in the original data, diversity reduced not only
// the sample mean of the PFD across the versions but — greatly — its
// standard deviation, while the PFD sample itself was far from normal.
//
// Run with:
//
//	go run ./examples/knightleveson
package main

import (
	"fmt"
	"log"

	"diversity"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("knightleveson: ")

	fmt.Println("synthetic 27-version replica (calibrated to the published experiment)")
	fmt.Println()
	fmt.Println("replica  mean PFD    sd PFD      mean (pairs)  sd (pairs)  mean red.  sd red.  fault-free")
	const replicas = 10
	meanRed, sigmaRed := 0, 0
	for seed := uint64(0); seed < replicas; seed++ {
		out, err := diversity.RunKnightLeveson(diversity.KnightLevesonConfig{Seed: seed})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%7d  %.3e  %.3e  %.3e     %.3e   %6.1fx  %6.1fx  %d/27\n",
			seed+1,
			out.VersionStats.Mean, out.VersionStats.StdDev,
			out.PairStats.Mean, out.PairStats.StdDev,
			out.MeanReduction, out.SigmaReduction,
			int(out.FractionFaultFree*27+0.5))
		if out.MeanReduction > 1 {
			meanRed++
		}
		if out.SigmaReduction > 1 {
			sigmaRed++
		}
	}
	fmt.Println()
	fmt.Printf("diversity reduced the mean PFD in %d/%d replicas and its\n", meanRed, replicas)
	fmt.Printf("standard deviation in %d/%d — the paper's qualitative observation.\n", sigmaRed, replicas)
	fmt.Println()

	// One replica in detail: the non-normality that blocks a direct test
	// of the paper's Section-5 relationship on KL-style data.
	out, err := diversity.RunKnightLeveson(diversity.KnightLevesonConfig{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("one replica in detail:")
	fmt.Printf("  versions with zero faults: %.0f%% (the original: 6 of 27)\n", out.FractionFaultFree*100)
	fmt.Printf("  PFD sample skewness:       %.2f (a normal sample: ~0)\n", out.VersionStats.Skewness)
	fmt.Printf("  KS p-value vs N(mu,sigma): %.3f\n", out.NormalFitPValue)
	fmt.Println("  -> as the paper notes, such data cannot check the Section-5 normal")
	fmt.Println("     approximation; they support the model only qualitatively.")
}
