// Vvtradeoff: should a project spend its verification budget on testing
// one version harder, or on developing a second, diverse version? This is
// the "N-version design versus one good version" debate the paper's
// introduction engages (Hatton, IEEE Software 1997; the authors' replies),
// made concrete with the fault-creation model and a statistical-testing
// improvement: a fault with region probability q survives T test demands
// with probability (1-q)^T.
//
// Run with:
//
//	go run ./examples/vvtradeoff
package main

import (
	"fmt"
	"log"

	"diversity"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vvtradeoff: ")

	universes := []struct {
		name   string
		faults []diversity.Fault
		note   string
	}{
		{
			name: "large-region faults (testing finds them)",
			faults: []diversity.Fault{
				{P: 0.5, Q: 0.01},
				{P: 0.3, Q: 0.02},
			},
			note: "testing scrubs these quickly: the well-tested single version wins once\n  the second development's overhead costs more than the p->p^2 factor buys",
		},
		{
			name: "tiny-region faults (testing is blind)",
			faults: []diversity.Fault{
				{P: 0.2, Q: 2e-6}, {P: 0.2, Q: 1e-6}, {P: 0.2, Q: 3e-6},
				{P: 0.2, Q: 2e-6}, {P: 0.2, Q: 1e-6}, {P: 0.2, Q: 2e-6},
			},
			note: "no realistic budget hits these regions: only diversity's squaring of\n  the presence probabilities helps",
		},
	}
	const overhead = 500.0
	budgets := []float64{600, 1000, 2000, 5000, 20000}

	for _, u := range universes {
		fs, err := diversity.New(u.faults)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("universe: %s\n", u.name)
		fmt.Printf("  budget   single (all tests)  diverse (overhead %g)  winner\n", overhead)
		for _, budget := range budgets {
			single, diverse, err := diversity.BudgetTrade(fs, budget, overhead)
			if err != nil {
				log.Fatal(err)
			}
			winner := "diverse"
			if single < diverse {
				winner = "single"
			}
			fmt.Printf("  %6.0f   %.6e        %.6e           %s\n", budget, single, diverse, winner)
		}
		fmt.Printf("  -> %s\n\n", u.note)
	}

	fmt.Println("testing also bends the gain from diversity itself (Section 4.2.1):")
	fs, err := diversity.New([]diversity.Fault{
		{P: 0.3, Q: 0.05},
		{P: 0.2, Q: 0.0001},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  test demands   risk ratio P(N2>0)/P(N1>0)")
	for _, demands := range []float64{0, 10, 40, 80, 160, 320} {
		tested, err := diversity.ApplyTesting(fs, demands)
		if err != nil {
			log.Fatal(err)
		}
		ratio, err := tested.RiskRatio()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %12.0f   %.4f\n", demands, ratio)
	}
	fmt.Println("  the ratio falls, then RISES: after testing removes the big faults,")
	fmt.Println("  the leftover rare faults are the regime where diversity buys least.")
}
