// Quickstart: define a small fault-creation model, read off the paper's
// headline quantities, and cross-check them with a Monte-Carlo simulation.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"diversity"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")

	// A ten-fault universe: an assessor's belief about which development
	// mistakes are possible (presence probability p) and how much of the
	// demand space each would break (region probability q).
	fs, err := diversity.New([]diversity.Fault{
		{P: 0.10, Q: 0.004},
		{P: 0.08, Q: 0.002},
		{P: 0.05, Q: 0.008},
		{P: 0.05, Q: 0.001},
		{P: 0.03, Q: 0.010},
		{P: 0.02, Q: 0.003},
		{P: 0.02, Q: 0.001},
		{P: 0.01, Q: 0.020},
		{P: 0.01, Q: 0.002},
		{P: 0.005, Q: 0.015},
	})
	if err != nil {
		log.Fatal(err)
	}

	// The paper's equations (1)-(2): moments of the PFD of one version
	// and of the 1-out-of-2 diverse pair.
	mu1 := must(fs.MeanPFD(1))
	mu2 := must(fs.MeanPFD(2))
	sigma1 := must(fs.SigmaPFD(1))
	sigma2 := must(fs.SigmaPFD(2))
	fmt.Printf("one version:   mean PFD %.3e, sigma %.3e\n", mu1, sigma1)
	fmt.Printf("1-out-of-2:    mean PFD %.3e, sigma %.3e\n", mu2, sigma2)
	fmt.Printf("mean gain:     %.1fx (eq (4) guarantees at least %.1fx)\n\n",
		mu1/mu2, 1/fs.PMax())

	// Section 4: the probability that the diverse pair shares no fault
	// at all, and the risk ratio of equation (10).
	fmt.Printf("P(version fault-free)  = %.4f\n", must(fs.PNoFault(1)))
	fmt.Printf("P(no common fault)     = %.4f\n", must(fs.PNoFault(2)))
	fmt.Printf("risk ratio (eq 10)     = %.4f (small = diversity helps)\n\n", must(fs.RiskRatio()))

	// Section 5: confidence bounds under the normal approximation. The
	// 99%% level corresponds to mu + 2.33 sigma.
	bound1 := must(fs.ConfidenceBoundAt(1, 0.99))
	bound2 := must(fs.ConfidenceBoundAt(2, 0.99))
	fmt.Printf("99%% bound, one version: %.3e\n", bound1)
	fmt.Printf("99%% bound, 1-out-of-2:  %.3e\n", bound2)
	b11 := must2(diversity.TwoVersionBoundFromMoments(mu1, sigma1, fs.PMax(), 2.33))
	fmt.Printf("formula (11) bound from one-version data: %.3e\n\n", b11)

	// Cross-check by simulating 100k independent development pairs.
	mc, err := diversity.MonteCarlo(diversity.MonteCarloConfig{
		Process:  diversity.NewIndependentProcess(fs),
		Versions: 2,
		Reps:     100000,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Monte Carlo over %d pairs:\n", mc.Reps)
	fmt.Printf("  empirical P(no common fault) = %.4f\n",
		float64(mc.SystemFaultFree)/float64(mc.Reps))
	ratio, err := mc.RiskRatio()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  empirical risk ratio         = %.4f\n", ratio)
}

func must(v float64, err error) float64 {
	if err != nil {
		log.Fatal(err)
	}
	return v
}

func must2(v float64, err error) float64 { return must(v, err) }
