// Assessor: the paper's Section-5.1 worked example as a safety-case
// calculation, followed by the Bayesian-assessment extension — updating
// the model-based prior with observed failure-free operation.
//
// Scenario: a regulator is shown evidence that a developer's process
// yields single versions with mean PFD 0.01 and standard deviation 0.001,
// and that no single fault survives that process with probability above
// 0.1. What may the regulator believe about a 1-out-of-2 system from two
// independent developments, before and after acceptance testing?
//
// Run with:
//
//	go run ./examples/assessor
package main

import (
	"fmt"
	"log"

	"diversity"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("assessor: ")

	// --- Part 1: the paper's worked example (Section 5.1) -------------
	const (
		mu1    = 0.01  // claimed mean PFD of one version
		sigma1 = 0.001 // claimed std dev across the process's products
		pmax   = 0.1   // bound on any single fault's survival probability
		k      = 1.0   // one sigma: the 84% confidence level
	)
	bound1 := mu1 + k*sigma1
	fmt.Printf("single-version 84%% bound:            %.4f (paper: 0.011)\n", bound1)

	b11, err := diversity.TwoVersionBoundFromMoments(mu1, sigma1, pmax, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("two-version bound, formula (11):     %.4f (paper: ~0.001)\n", b11)

	b12, err := diversity.TwoVersionBoundFromBound(bound1, pmax)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("two-version bound, formula (12):     %.4f (paper: ~0.004)\n", b12)
	fmt.Printf("improvement from diversity:          %.1fx with moments, %.1fx from the bound alone\n\n",
		bound1/b11, bound1/b12)

	factor, err := diversity.SigmaBoundFactor(pmax)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("the beta-factor analogue sqrt(pmax(1+pmax)) = %.3f:\n", factor)
	fmt.Println("  any confidence bound the assessor held for one version scales")
	fmt.Println("  down by at least this factor for the diverse pair (eq 12).")
	fmt.Println()

	// --- Part 2: Bayesian update from acceptance testing --------------
	// The assessor adopts a concrete fault universe consistent with the
	// claims above and uses it as a prior for the system PFD.
	sc, err := diversity.SafetyGradeScenario(2026)
	if err != nil {
		log.Fatal(err)
	}
	prior, err := diversity.PriorFromModel(sc.FaultSet, 2048)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model prior over the system PFD (scenario %q):\n", sc.Name)
	fmt.Printf("  prior mean %.3e, prior P(PFD=0) %.4f\n\n", prior.Mean(), probZero(prior))

	fmt.Println("updating on failure-free statistical testing:")
	fmt.Println("  demands    posterior mean   P(PFD=0)   99% bound")
	for _, demands := range []int{0, 1000, 10000, 100000, 1000000} {
		post, err := diversity.UpdatePrior(prior, demands, 0)
		if err != nil {
			log.Fatal(err)
		}
		q99, err := post.Quantile(0.99)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %8d   %.3e        %.4f     %.3e\n", demands, post.Mean(), post.ProbZero(), q99)
	}
	fmt.Println()
	fmt.Println("a failure during testing falsifies the fault-free hypothesis:")
	post, err := diversity.UpdatePrior(prior, 50000, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  after 1 failure in 50000 demands: P(PFD=0) = %.4f, mean = %.3e\n",
		post.ProbZero(), post.Mean())

	// --- Part 3: where does pmax come from? (Section 6.3) -------------
	// The assessor inspected 25 comparable versions from this developer's
	// past projects; the fault log shows how many versions contained each
	// catalogued fault class. A simultaneous Clopper-Pearson bound turns
	// those counts into a defensible pmax.
	fmt.Println()
	fmt.Println("calibrating pmax from past-project fault logs (25 versions inspected):")
	bound, err := diversity.EstimatePmax(diversity.Observations{
		Versions: 25,
		Counts:   []int{2, 1, 0, 0, 1, 0}, // occurrences of each fault class
	}, 0.9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  90%% simultaneous upper bound on pmax: %.3f\n", bound.Bound)
	b12cal, err := diversity.TwoVersionBoundFromBound(bound1, bound.Bound)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  formula (12) with the calibrated pmax:  %.4f\n", b12cal)
	fmt.Println("  (compare 0.0036 with the assumed pmax = 0.1 above: the evidence-based")
	fmt.Println("   bound is what a regulator can actually defend)")
}

// probZero sums the prior mass at PFD exactly zero.
func probZero(d *diversity.Distribution) float64 {
	values, probs := d.Support()
	sum := 0.0
	for i, v := range values {
		if v == 0 {
			sum += probs[i]
		}
	}
	return sum
}
