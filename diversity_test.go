package diversity_test

import (
	"math"
	"testing"

	"diversity"
)

// TestPublicAPIAssessorWorkflow walks the paper's Section-5 assessor
// workflow end to end through the public facade only.
func TestPublicAPIAssessorWorkflow(t *testing.T) {
	t.Parallel()

	fs, err := diversity.New([]diversity.Fault{
		{P: 0.1, Q: 0.002},
		{P: 0.05, Q: 0.004},
		{P: 0.02, Q: 0.001},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	mu1, err := fs.MeanPFD(1)
	if err != nil {
		t.Fatalf("MeanPFD: %v", err)
	}
	sigma1, err := fs.SigmaPFD(1)
	if err != nil {
		t.Fatalf("SigmaPFD: %v", err)
	}
	bound2, err := diversity.TwoVersionBoundFromMoments(mu1, sigma1, fs.PMax(), 1)
	if err != nil {
		t.Fatalf("TwoVersionBoundFromMoments: %v", err)
	}
	exact2, err := fs.ConfidenceBound(2, 1)
	if err != nil {
		t.Fatalf("ConfidenceBound: %v", err)
	}
	if exact2 > bound2 {
		t.Errorf("formula (11) bound %v below the exact expression %v", bound2, exact2)
	}
	loose, err := diversity.TwoVersionBoundFromBound(mu1+sigma1, fs.PMax())
	if err != nil {
		t.Fatalf("TwoVersionBoundFromBound: %v", err)
	}
	if bound2 > loose {
		t.Errorf("formula (11) bound %v above formula (12) bound %v", bound2, loose)
	}
}

func TestPublicAPIMonteCarlo(t *testing.T) {
	t.Parallel()

	fs, err := diversity.Uniform(10, 0.1, 0.01)
	if err != nil {
		t.Fatalf("Uniform: %v", err)
	}
	res, err := diversity.MonteCarlo(diversity.MonteCarloConfig{
		Process:  diversity.NewIndependentProcess(fs),
		Versions: 2,
		Reps:     20000,
		Seed:     1,
	})
	if err != nil {
		t.Fatalf("MonteCarlo: %v", err)
	}
	ratioModel, err := fs.RiskRatio()
	if err != nil {
		t.Fatalf("RiskRatio: %v", err)
	}
	ratioMC, err := res.RiskRatio()
	if err != nil {
		t.Fatalf("MC RiskRatio: %v", err)
	}
	if math.Abs(ratioModel-ratioMC) > 0.05 {
		t.Errorf("MC ratio %v far from model %v", ratioMC, ratioModel)
	}
}

func TestPublicAPIBayes(t *testing.T) {
	t.Parallel()

	sc, err := diversity.SafetyGradeScenario(3)
	if err != nil {
		t.Fatalf("SafetyGradeScenario: %v", err)
	}
	prior, err := diversity.PriorFromModel(sc.FaultSet, 1024)
	if err != nil {
		t.Fatalf("PriorFromModel: %v", err)
	}
	post, err := diversity.UpdatePrior(prior, 100000, 0)
	if err != nil {
		t.Fatalf("UpdatePrior: %v", err)
	}
	if post.Mean() >= prior.Mean() {
		t.Errorf("posterior mean %v not below prior mean %v after clean operation", post.Mean(), prior.Mean())
	}
}

func TestPublicAPIConstants(t *testing.T) {
	t.Parallel()

	// The paper prints the threshold as 0.618033987 (9 decimals).
	if math.Abs(diversity.GoldenThreshold-0.618033987) > 1e-8 {
		t.Errorf("GoldenThreshold = %v", diversity.GoldenThreshold)
	}
	if diversity.Arch1OutOfM.String() != "1-out-of-m" {
		t.Errorf("Arch1OutOfM = %v", diversity.Arch1OutOfM)
	}
	if diversity.TrendReducesGain.String() == "" {
		t.Error("trend label empty")
	}
}

func TestPublicAPIScenarios(t *testing.T) {
	t.Parallel()

	for name, gen := range map[string]func(uint64) (diversity.Scenario, error){
		"safety":     diversity.SafetyGradeScenario,
		"many":       diversity.ManySmallFaultsScenario,
		"commercial": diversity.CommercialGradeScenario,
	} {
		sc, err := gen(1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sc.FaultSet == nil || sc.Name == "" {
			t.Errorf("%s scenario incomplete", name)
		}
	}
}

func TestPublicAPIStationaryPoint(t *testing.T) {
	t.Parallel()

	p1z, err := diversity.TwoFaultStationaryP1(0.1)
	if err != nil {
		t.Fatalf("TwoFaultStationaryP1: %v", err)
	}
	if p1z <= 0 || p1z >= 0.1 {
		t.Errorf("stationary point %v outside (0, p2)", p1z)
	}
	factor, err := diversity.SigmaBoundFactor(0.01)
	if err != nil {
		t.Fatalf("SigmaBoundFactor: %v", err)
	}
	if math.Abs(factor-0.1) > 0.001 {
		t.Errorf("SigmaBoundFactor(0.01) = %v, want ~0.100 (paper table)", factor)
	}
}
