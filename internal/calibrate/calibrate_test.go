package calibrate

import (
	"math"
	"testing"

	"diversity/internal/randx"
)

func TestEstimateP(t *testing.T) {
	t.Parallel()

	est, err := EstimateP(Observations{Versions: 20, Counts: []int{2, 0, 20}})
	if err != nil {
		t.Fatalf("EstimateP: %v", err)
	}
	want := []float64{0.1, 0, 1}
	for i := range want {
		if math.Abs(est[i]-want[i]) > 1e-15 {
			t.Errorf("estimate %d = %v, want %v", i, est[i], want[i])
		}
	}
}

func TestObservationsValidation(t *testing.T) {
	t.Parallel()

	tests := []struct {
		name string
		obs  Observations
	}{
		{name: "zero versions", obs: Observations{Versions: 0, Counts: []int{1}}},
		{name: "no classes", obs: Observations{Versions: 5}},
		{name: "negative count", obs: Observations{Versions: 5, Counts: []int{-1}}},
		{name: "count above versions", obs: Observations{Versions: 5, Counts: []int{6}}},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			if _, err := EstimateP(tt.obs); err == nil {
				t.Errorf("EstimateP(%+v) succeeded, want error", tt.obs)
			}
			if _, err := UpperPmax(tt.obs, 0.95); err == nil {
				t.Errorf("UpperPmax(%+v) succeeded, want error", tt.obs)
			}
		})
	}
}

func TestUpperPKnownValues(t *testing.T) {
	t.Parallel()

	// Zero occurrences in n versions: the 95% upper limit is
	// 1-(0.05)^{1/n} ("rule of three" neighbourhood).
	u, err := UpperP(0, 30, 0.95)
	if err != nil {
		t.Fatalf("UpperP: %v", err)
	}
	want := 1 - math.Pow(0.05, 1.0/30)
	if math.Abs(u-want) > 1e-9 {
		t.Errorf("UpperP(0, 30) = %v, want %v", u, want)
	}
	// All occurrences: limit is 1.
	u, err = UpperP(30, 30, 0.95)
	if err != nil {
		t.Fatalf("UpperP: %v", err)
	}
	if u != 1 {
		t.Errorf("UpperP(30, 30) = %v, want 1", u)
	}
	// The limit is above the MLE.
	u, err = UpperP(3, 30, 0.95)
	if err != nil {
		t.Fatalf("UpperP: %v", err)
	}
	if u <= 0.1 {
		t.Errorf("UpperP(3, 30) = %v, want above the MLE 0.1", u)
	}
	if _, err := UpperP(1, 10, 1.5); err == nil {
		t.Error("invalid confidence succeeded, want error")
	}
}

func TestUpperPMonotoneInCount(t *testing.T) {
	t.Parallel()

	prev := -1.0
	for c := 0; c <= 20; c++ {
		u, err := UpperP(c, 20, 0.9)
		if err != nil {
			t.Fatalf("UpperP(%d, 20): %v", c, err)
		}
		if u <= prev {
			t.Fatalf("UpperP not increasing at count %d: %v <= %v", c, u, prev)
		}
		prev = u
	}
}

func TestUpperPmaxDominatesPerClass(t *testing.T) {
	t.Parallel()

	obs := Observations{Versions: 25, Counts: []int{0, 2, 5, 1}}
	bound, err := UpperPmax(obs, 0.95)
	if err != nil {
		t.Fatalf("UpperPmax: %v", err)
	}
	if len(bound.PerClass) != 4 {
		t.Fatalf("PerClass has %d entries, want 4", len(bound.PerClass))
	}
	maxPer := 0.0
	for _, u := range bound.PerClass {
		if u > maxPer {
			maxPer = u
		}
	}
	if bound.Bound != maxPer {
		t.Errorf("Bound = %v, want max per-class %v", bound.Bound, maxPer)
	}
	if bound.Level != 0.95 {
		t.Errorf("Level = %v, want 0.95", bound.Level)
	}
	// The class with the most occurrences dominates.
	if bound.PerClass[2] != maxPer {
		t.Errorf("expected class 2 (5/25) to dominate: %v", bound.PerClass)
	}
	if _, err := UpperPmax(obs, 0); err == nil {
		t.Error("level 0 succeeded, want error")
	}
}

// TestUpperPmaxCoverage: the simultaneous bound must cover the true pmax
// at least `level` of the time over repeated synthetic calibrations.
func TestUpperPmaxCoverage(t *testing.T) {
	t.Parallel()

	truePs := []float64{0.15, 0.08, 0.02, 0.01, 0.005}
	truePmax := 0.15
	const (
		versions = 12
		trials   = 2000
		level    = 0.9
	)
	r := randx.NewStream(7)
	covered := 0
	for trial := 0; trial < trials; trial++ {
		counts := make([]int, len(truePs))
		for i, p := range truePs {
			counts[i] = r.Binomial(versions, p)
		}
		bound, err := UpperPmax(Observations{Versions: versions, Counts: counts}, level)
		if err != nil {
			t.Fatalf("UpperPmax: %v", err)
		}
		if bound.Bound >= truePmax {
			covered++
		}
	}
	coverage := float64(covered) / trials
	// Bonferroni + Clopper-Pearson are conservative: coverage should be
	// at least the nominal level (with a small slack for MC noise).
	if coverage < level-0.02 {
		t.Errorf("simultaneous coverage %.3f below nominal %.2f", coverage, level)
	}
}
