// Package calibrate estimates the fault-creation model's parameters from
// the kind of evidence real assessors hold: counts of how often each fault
// class appeared across versions developed in past, comparable projects
// (the paper's Section 6.3: "assessors will derive beliefs about these
// parameters from their own experience of faults found ... in
// circumstances considered similar").
//
// The central output is an upper confidence bound on pmax — the one
// parameter the paper's headline formulas (4), (9), (11), (12) need. Each
// fault class's presence count across n observed versions is Binomial(n,
// p_i); the package forms a per-class upper confidence limit by inverting
// the binomial tail (Clopper–Pearson), Bonferroni-adjusted so that the
// MAXIMUM over classes is a simultaneous bound: with probability at least
// `level`, every true p_i lies below its limit, hence pmax below the
// reported bound.
package calibrate

import (
	"errors"
	"fmt"
	"math"

	"diversity/internal/stats"
)

// Observations holds fault-occurrence evidence from past projects:
// Versions developed versions were examined, and fault class i was found
// in Counts[i] of them.
type Observations struct {
	// Versions is the number of observed versions (> 0).
	Versions int
	// Counts[i] is the number of observed versions containing fault
	// class i; each must lie in [0, Versions].
	Counts []int
}

// validate checks the observation shape.
func (o Observations) validate() error {
	if o.Versions < 1 {
		return fmt.Errorf("calibrate: observed version count %d must be positive", o.Versions)
	}
	if len(o.Counts) == 0 {
		return errors.New("calibrate: at least one fault class is required")
	}
	for i, c := range o.Counts {
		if c < 0 || c > o.Versions {
			return fmt.Errorf("calibrate: fault class %d count %d outside [0, %d]", i, c, o.Versions)
		}
	}
	return nil
}

// EstimateP returns the maximum-likelihood estimates p̂_i = Counts[i]/Versions.
func EstimateP(o Observations) ([]float64, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	est := make([]float64, len(o.Counts))
	for i, c := range o.Counts {
		est[i] = float64(c) / float64(o.Versions)
	}
	return est, nil
}

// UpperP returns the one-sided Clopper–Pearson upper confidence limit for
// one fault class: the largest p consistent with seeing at most `count`
// occurrences in `versions` versions at the given confidence. For
// count = versions the limit is 1.
func UpperP(count, versions int, confidence float64) (float64, error) {
	if versions < 1 {
		return 0, fmt.Errorf("calibrate: version count %d must be positive", versions)
	}
	if count < 0 || count > versions {
		return 0, fmt.Errorf("calibrate: count %d outside [0, %d]", count, versions)
	}
	if math.IsNaN(confidence) || confidence <= 0 || confidence >= 1 {
		return 0, fmt.Errorf("calibrate: confidence %v must be in (0, 1)", confidence)
	}
	if count == versions {
		return 1, nil
	}
	// The exact upper limit is the (confidence) quantile of
	// Beta(count+1, versions-count).
	beta, err := stats.NewBeta(float64(count)+1, float64(versions-count))
	if err != nil {
		return 0, err
	}
	return beta.Quantile(confidence)
}

// PmaxBound is a simultaneous upper confidence bound on pmax.
type PmaxBound struct {
	// Bound is the simultaneous upper limit: P(pmax <= Bound) >= Level.
	Bound float64
	// PerClass holds the Bonferroni-adjusted per-class upper limits.
	PerClass []float64
	// Level is the nominal simultaneous confidence.
	Level float64
}

// UpperPmax returns a simultaneous upper confidence bound on
// pmax = max_i p_i at the given confidence level, via Bonferroni-adjusted
// Clopper–Pearson limits: each class gets a one-sided limit at level
// 1-(1-level)/k, so the union of undercoverage events has probability at
// most 1-level.
func UpperPmax(o Observations, level float64) (PmaxBound, error) {
	if err := o.validate(); err != nil {
		return PmaxBound{}, err
	}
	if math.IsNaN(level) || level <= 0 || level >= 1 {
		return PmaxBound{}, fmt.Errorf("calibrate: confidence level %v must be in (0, 1)", level)
	}
	k := len(o.Counts)
	perClassConf := 1 - (1-level)/float64(k)
	bound := PmaxBound{PerClass: make([]float64, k), Level: level}
	for i, c := range o.Counts {
		u, err := UpperP(c, o.Versions, perClassConf)
		if err != nil {
			return PmaxBound{}, err
		}
		bound.PerClass[i] = u
		if u > bound.Bound {
			bound.Bound = u
		}
	}
	return bound, nil
}
