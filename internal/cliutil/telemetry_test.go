package cliutil

import (
	"context"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"diversity/internal/engine"
	"diversity/internal/telemetry"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// TestServeMetricsEndpoints is the -metrics-addr integration test: the
// listener must serve both the expvar variables on /debug/vars
// (including the published telemetry registry) and the pprof index and
// profiles under /debug/pprof/.
func TestServeMetricsEndpoints(t *testing.T) {
	t.Parallel()

	reg := telemetry.NewRegistry()
	reg.Counter("engine.cache.misses").Add(3)
	server, addr, err := ServeMetrics("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("ServeMetrics: %v", err)
	}
	defer server.Close()

	status, body := get(t, "http://"+addr+"/debug/vars")
	if status != http.StatusOK {
		t.Fatalf("/debug/vars status = %d, want 200", status)
	}
	// The expvar namespace is process-global and first-publish-wins, so
	// another test's registry may own the "telemetry" name; assert the
	// variable is present and decodes as a snapshot rather than pinning
	// whose counters it carries.
	var vars struct {
		Telemetry *telemetry.Snapshot `json:"telemetry"`
	}
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v\n%s", err, body)
	}
	if vars.Telemetry == nil || vars.Telemetry.Counters == nil {
		t.Errorf("/debug/vars has no telemetry snapshot:\n%s", body)
	}

	status, body = get(t, "http://"+addr+"/debug/pprof/")
	if status != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d, want 200", status)
	}
	if !strings.Contains(body, "goroutine") || !strings.Contains(body, "heap") {
		t.Errorf("pprof index missing expected profiles:\n%s", body)
	}
	if status, _ := get(t, "http://"+addr+"/debug/pprof/goroutine?debug=1"); status != http.StatusOK {
		t.Errorf("/debug/pprof/goroutine status = %d, want 200", status)
	}
}

// TestTelemetryFlagsEndToEnd drives the flag bundle the way the CLIs
// do: register, parse, open, run an engine job with the returned
// options, flush, and check the snapshot file has the headline metrics.
func TestTelemetryFlagsEndToEnd(t *testing.T) {
	t.Parallel()

	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	tf := RegisterTelemetryFlags(fs)
	snapPath := filepath.Join(t.TempDir(), "telemetry.json")
	if err := fs.Parse([]string{"-metrics-addr", "127.0.0.1:0", "-telemetry-json", snapPath, "-log-level", "error"}); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	tel, err := tf.Open(io.Discard)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer tel.Shutdown()
	if tel.Addr == "" {
		t.Fatal("metrics listener bound no address")
	}

	eng := engine.New(tel.EngineOptions(engine.Options{}))
	job := engine.NewMonteCarloJob(engine.MonteCarloSpec{
		Model:    engine.ModelSpec{Scenario: "commercial-grade", ScenarioSeed: 1},
		Versions: 2,
		Reps:     2000,
		Seed:     1,
	})
	if _, err := eng.Run(context.Background(), job); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := tel.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	doc, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(doc, &snap); err != nil {
		t.Fatalf("snapshot is not JSON: %v", err)
	}
	if snap.Counters["engine.cache.misses"] != 1 {
		t.Errorf("snapshot cache misses = %d, want 1", snap.Counters["engine.cache.misses"])
	}
	if snap.Histograms["engine.job_duration_seconds.montecarlo"].Count != 1 {
		t.Error("snapshot missing the montecarlo job duration histogram")
	}
	if snap.Gauges["montecarlo.replications_per_second"] <= 0 {
		t.Error("snapshot missing a positive replications_per_second gauge")
	}
	if len(snap.Runs) != 1 {
		t.Errorf("snapshot has %d run traces, want 1", len(snap.Runs))
	}
}

// TestTelemetryFlagsRejectBadLevel: an unknown -log-level fails at Open
// with a clear error.
func TestTelemetryFlagsRejectBadLevel(t *testing.T) {
	t.Parallel()

	tf := &TelemetryFlags{LogLevel: "loud"}
	if _, err := tf.Open(io.Discard); err == nil || !strings.Contains(err.Error(), "unknown log level") {
		t.Fatalf("Open with bad level: err = %v, want unknown log level", err)
	}
}
