// Package cliutil holds the flag-handling helpers shared by the cmd/
// tools: model selection (previously duplicated verbatim between mcsim
// and diversity), fail-fast count validation, progress printing for
// engine-routed runs, and the shared observability surface — the
// -metrics-addr, -telemetry-json and -log-level flags every CLI exposes.
package cliutil

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"

	"diversity/internal/engine"
	"diversity/internal/modelfile"
	"diversity/internal/scenario"
	"diversity/internal/telemetry"
)

// JobModel builds the engine model spec selected by the -model/-scenario
// flag pair. A model file is loaded eagerly and inlined into the spec so
// that the job hash covers the model parameters rather than the path; a
// scenario is validated here but carried by reference (name + seed).
func JobModel(modelPath, scenarioName string, seed uint64) (engine.ModelSpec, error) {
	switch {
	case modelPath != "" && scenarioName != "":
		return engine.ModelSpec{}, fmt.Errorf("specify either -model or -scenario, not both")
	case modelPath != "":
		fs, name, err := modelfile.Load(modelPath)
		if err != nil {
			return engine.ModelSpec{}, err
		}
		return engine.ModelFromFaultSet(fs, name), nil
	case scenarioName != "":
		if _, err := scenario.ByName(scenarioName, seed); err != nil {
			return engine.ModelSpec{}, err
		}
		return engine.ModelSpec{Scenario: scenarioName, ScenarioSeed: seed}, nil
	default:
		return engine.ModelSpec{}, fmt.Errorf("a model is required: pass -model <file> or -scenario <name>")
	}
}

// ValidateCounts fails fast — before any model loading or simulation
// work — on replication and worker counts no run mode accepts.
func ValidateCounts(reps, workers int) error {
	if reps < 1 {
		return fmt.Errorf("replication count %d must be at least 1 (pass -reps >= 1)", reps)
	}
	if workers < 0 {
		return fmt.Errorf("worker count %d must not be negative (0 means all cores)", workers)
	}
	return nil
}

// TelemetryFlags holds the values of the shared observability flags.
type TelemetryFlags struct {
	// MetricsAddr is the -metrics-addr value: the address to serve
	// expvar (/debug/vars) and pprof (/debug/pprof/) on, empty for off.
	MetricsAddr string
	// JSONPath is the -telemetry-json value: where to write the final
	// metrics snapshot, empty for off, "-" for stderr.
	JSONPath string
	// LogLevel is the -log-level value.
	LogLevel string
	// MaxTraces is the -max-traces value: how many recent run traces
	// the registry retains for snapshots and /debug/traces.
	MaxTraces int
}

// RegisterTelemetryFlags registers the shared observability flags —
// -metrics-addr, -telemetry-json and -log-level — on fs and returns the
// struct their values land in.
func RegisterTelemetryFlags(fs *flag.FlagSet) *TelemetryFlags {
	tf := &TelemetryFlags{}
	fs.StringVar(&tf.MetricsAddr, "metrics-addr", "", "serve expvar (/debug/vars) and pprof (/debug/pprof/) on this address (e.g. localhost:6060; empty = off)")
	fs.StringVar(&tf.JSONPath, "telemetry-json", "", "write the final telemetry snapshot as JSON to this file (\"-\" for stderr)")
	fs.StringVar(&tf.LogLevel, "log-level", "warn", "structured log level on stderr: debug | info | warn | error")
	fs.IntVar(&tf.MaxTraces, "max-traces", telemetry.DefaultMaxTraces, "number of recent run traces retained in snapshots and /debug/traces")
	return tf
}

// Telemetry is one CLI process's opened observability state: the
// metrics registry and logger to hand to the engine, plus the optional
// metrics listener and snapshot destination.
type Telemetry struct {
	Registry *telemetry.Registry
	Logger   *slog.Logger
	// Addr is the bound metrics listener address ("" when -metrics-addr
	// was not given); with ":0" the kernel picks the port, so Addr is
	// how callers learn it.
	Addr     string
	server   *http.Server
	sampler  *telemetry.HealthSampler
	jsonPath string
}

// Open builds the observability state the flags ask for: a logger at
// the requested level writing to stderr, a fresh metrics registry with
// the requested trace retention and a running runtime-health sampler,
// and — when -metrics-addr is set — a running HTTP listener with the
// registry published to expvar and Prometheus exposition on /metrics.
func (tf *TelemetryFlags) Open(stderr io.Writer) (*Telemetry, error) {
	logger, err := telemetry.NewLogger(stderr, tf.LogLevel)
	if err != nil {
		return nil, err
	}
	t := &Telemetry{Registry: telemetry.NewRegistry(), Logger: logger, jsonPath: tf.JSONPath}
	if tf.MaxTraces > 0 {
		t.Registry.SetMaxTraces(tf.MaxTraces)
	}
	t.sampler = telemetry.StartHealthSampler(t.Registry, telemetry.DefaultHealthInterval)
	if tf.MetricsAddr != "" {
		server, addr, err := ServeMetrics(tf.MetricsAddr, t.Registry)
		if err != nil {
			t.sampler.Stop()
			return nil, err
		}
		t.server, t.Addr = server, addr
		logger.Info("metrics listener started", "addr", addr)
	}
	return t, nil
}

// EngineOptions returns opts with the telemetry registry and logger
// attached.
func (t *Telemetry) EngineOptions(opts engine.Options) engine.Options {
	opts.Telemetry = t.Registry
	opts.Logger = t.Logger
	return opts
}

// Shutdown stops the metrics listener (if one is running) and the
// runtime-health sampler. Deferred by the CLIs so in-process test runs
// do not leak listeners or goroutines.
func (t *Telemetry) Shutdown() {
	if t.server != nil {
		t.server.Close()
	}
	t.sampler.Stop()
}

// Flush writes the final snapshot to the -telemetry-json destination;
// it is a no-op when the flag was not given.
func (t *Telemetry) Flush() error {
	if t.jsonPath == "" {
		return nil
	}
	return t.Registry.WriteJSONFile(t.jsonPath)
}

// NewDebugMux returns a fresh mux carrying the process debug surface:
// reg published to expvar under "telemetry", the expvar variables on
// /debug/vars, the net/http/pprof profiles under /debug/pprof/,
// Prometheus text exposition on /metrics, the flight-recorder ring on
// /debug/events, and retained run traces on /debug/traces. It is the
// single place the debug routes are assembled — ServeMetrics serves one
// standalone for the batch CLIs, and cmd/serve mounts its job API on
// the same mux so one listener carries both surfaces.
func NewDebugMux(reg *telemetry.Registry) *http.ServeMux {
	reg.PublishExpvar("telemetry")
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", telemetry.PromContentType)
		telemetry.WriteProm(w, reg.Snapshot())
	})
	mux.HandleFunc("GET /debug/events", func(w http.ResponseWriter, r *http.Request) {
		writeDebugJSON(w, map[string]any{"events": reg.Events().Snapshot()})
	})
	mux.HandleFunc("GET /debug/traces", func(w http.ResponseWriter, r *http.Request) {
		writeDebugJSON(w, map[string]any{"traces": reg.Traces()})
	})
	return mux
}

func writeDebugJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// ServeMetrics publishes reg to expvar under "telemetry" and starts an
// HTTP listener on addr serving the process expvar variables on
// /debug/vars and the net/http/pprof profiles under /debug/pprof/. It
// returns the running server and the bound address (useful with ":0").
func ServeMetrics(addr string, reg *telemetry.Registry) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("metrics listener: %w", err)
	}
	server := &http.Server{Handler: NewDebugMux(reg)}
	go server.Serve(ln)
	return server, ln.Addr().String(), nil
}

// ReportJob prints a finished run's stable job ID and cache disposition
// to w (conventionally stderr, next to the -progress output) — the
// CLI-side counterpart of the HTTP API's jobId/fromCache fields, making
// engine cache hits observable end-to-end.
func ReportJob(w io.Writer, res *engine.Result) {
	disposition := "computed"
	if res.FromCache {
		disposition = "served from cache"
	}
	fmt.Fprintf(w, "job %s: %s\n", res.ID, disposition)
}

// ProgressPrinter returns an engine progress hook that writes compact
// updates to w (conventionally stderr, keeping stdout byte-stable): one
// line per stage change and one per completed decile within a stage.
func ProgressPrinter(w io.Writer) func(engine.Progress) {
	lastStage := ""
	lastDecile := -1
	return func(p engine.Progress) {
		if p.Stage != lastStage {
			lastStage = p.Stage
			lastDecile = -1
		}
		if p.Total <= 0 {
			fmt.Fprintf(w, "progress: %s\n", p.Stage)
			return
		}
		decile := p.Done * 10 / p.Total
		if decile <= lastDecile {
			return
		}
		lastDecile = decile
		fmt.Fprintf(w, "progress: %s %3d%% (%d/%d)\n", p.Stage, p.Done*100/p.Total, p.Done, p.Total)
	}
}
