// Package cliutil holds the flag-handling helpers shared by the cmd/
// tools: model selection (previously duplicated verbatim between mcsim
// and diversity), fail-fast count validation, and progress printing for
// engine-routed runs.
package cliutil

import (
	"fmt"
	"io"

	"diversity/internal/engine"
	"diversity/internal/modelfile"
	"diversity/internal/scenario"
)

// JobModel builds the engine model spec selected by the -model/-scenario
// flag pair. A model file is loaded eagerly and inlined into the spec so
// that the job hash covers the model parameters rather than the path; a
// scenario is validated here but carried by reference (name + seed).
func JobModel(modelPath, scenarioName string, seed uint64) (engine.ModelSpec, error) {
	switch {
	case modelPath != "" && scenarioName != "":
		return engine.ModelSpec{}, fmt.Errorf("specify either -model or -scenario, not both")
	case modelPath != "":
		fs, name, err := modelfile.Load(modelPath)
		if err != nil {
			return engine.ModelSpec{}, err
		}
		return engine.ModelFromFaultSet(fs, name), nil
	case scenarioName != "":
		if _, err := scenario.ByName(scenarioName, seed); err != nil {
			return engine.ModelSpec{}, err
		}
		return engine.ModelSpec{Scenario: scenarioName, ScenarioSeed: seed}, nil
	default:
		return engine.ModelSpec{}, fmt.Errorf("a model is required: pass -model <file> or -scenario <name>")
	}
}

// ValidateCounts fails fast — before any model loading or simulation
// work — on replication and worker counts no run mode accepts.
func ValidateCounts(reps, workers int) error {
	if reps < 1 {
		return fmt.Errorf("replication count %d must be at least 1 (pass -reps >= 1)", reps)
	}
	if workers < 0 {
		return fmt.Errorf("worker count %d must not be negative (0 means all cores)", workers)
	}
	return nil
}

// ProgressPrinter returns an engine progress hook that writes compact
// updates to w (conventionally stderr, keeping stdout byte-stable): one
// line per stage change and one per completed decile within a stage.
func ProgressPrinter(w io.Writer) func(engine.Progress) {
	lastStage := ""
	lastDecile := -1
	return func(p engine.Progress) {
		if p.Stage != lastStage {
			lastStage = p.Stage
			lastDecile = -1
		}
		if p.Total <= 0 {
			fmt.Fprintf(w, "progress: %s\n", p.Stage)
			return
		}
		decile := p.Done * 10 / p.Total
		if decile <= lastDecile {
			return
		}
		lastDecile = decile
		fmt.Fprintf(w, "progress: %s %3d%% (%d/%d)\n", p.Stage, p.Done*100/p.Total, p.Done, p.Total)
	}
}
