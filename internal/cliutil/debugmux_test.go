package cliutil

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"diversity/internal/engine"
	"diversity/internal/telemetry"
)

func TestNewDebugMuxServesVarsAndPprof(t *testing.T) {
	t.Parallel()

	mux := NewDebugMux(telemetry.NewRegistry())
	srv := httptest.NewServer(mux)
	defer srv.Close()

	for _, path := range []string{"/debug/vars", "/debug/pprof/"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d, want 200", path, resp.StatusCode)
		}
	}
}

// TestDebugMuxMetricsExposition checks /metrics serves the registry in
// the Prometheus text format with the right content type.
func TestDebugMuxMetricsExposition(t *testing.T) {
	t.Parallel()

	reg := telemetry.NewRegistry()
	reg.Counter("montecarlo.replications_total.majority").Add(42)
	srv := httptest.NewServer(NewDebugMux(reg))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.PromContentType {
		t.Errorf("content type = %q, want %q", ct, telemetry.PromContentType)
	}
	want := `montecarlo_replications_total{adjudicator="majority"} 42`
	if !strings.Contains(string(body), want) {
		t.Errorf("exposition missing %q:\n%s", want, body)
	}
}

// TestDebugMuxEventsAndTraces checks the flight recorder and retained
// traces are served as JSON.
func TestDebugMuxEventsAndTraces(t *testing.T) {
	t.Parallel()

	reg := telemetry.NewRegistry()
	reg.Event("job.accepted", "run-11112222", map[string]string{"id": "j-1-aaaa"})
	tr := telemetry.NewTrace("run-11112222", "job:montecarlo")
	tr.End()
	reg.RecordTrace(tr)
	srv := httptest.NewServer(NewDebugMux(reg))
	defer srv.Close()

	var events struct {
		Events []telemetry.Event `json:"events"`
	}
	getJSON(t, srv.URL+"/debug/events", &events)
	if len(events.Events) != 1 || events.Events[0].Kind != "job.accepted" || events.Events[0].Run != "run-11112222" {
		t.Errorf("/debug/events = %+v, want one job.accepted for run-11112222", events.Events)
	}

	var traces struct {
		Traces []telemetry.TraceSnapshot `json:"traces"`
	}
	getJSON(t, srv.URL+"/debug/traces", &traces)
	if len(traces.Traces) != 1 || traces.Traces[0].ID != "run-11112222" {
		t.Errorf("/debug/traces = %+v, want one trace run-11112222", traces.Traces)
	}
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d, want 200", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("GET %s: content type %q, want application/json", url, ct)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: decoding: %v", url, err)
	}
}

// TestNewDebugMuxComposable checks the property cmd/serve relies on: API
// routes mount on the same mux next to the debug handlers.
func TestNewDebugMuxComposable(t *testing.T) {
	t.Parallel()

	mux := NewDebugMux(telemetry.NewRegistry())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz: status %d, want 200", resp.StatusCode)
	}
}

func TestReportJob(t *testing.T) {
	t.Parallel()

	var b strings.Builder
	ReportJob(&b, &engine.Result{ID: "job-0123456789abcdef"})
	if got, want := b.String(), "job job-0123456789abcdef: computed\n"; got != want {
		t.Fatalf("ReportJob computed = %q, want %q", got, want)
	}
	b.Reset()
	ReportJob(&b, &engine.Result{ID: "job-0123456789abcdef", FromCache: true})
	if got, want := b.String(), "job job-0123456789abcdef: served from cache\n"; got != want {
		t.Fatalf("ReportJob cached = %q, want %q", got, want)
	}
}
