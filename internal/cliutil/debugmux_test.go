package cliutil

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"diversity/internal/engine"
	"diversity/internal/telemetry"
)

func TestNewDebugMuxServesVarsAndPprof(t *testing.T) {
	t.Parallel()

	mux := NewDebugMux(telemetry.NewRegistry())
	srv := httptest.NewServer(mux)
	defer srv.Close()

	for _, path := range []string{"/debug/vars", "/debug/pprof/"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d, want 200", path, resp.StatusCode)
		}
	}
}

// TestNewDebugMuxComposable checks the property cmd/serve relies on: API
// routes mount on the same mux next to the debug handlers.
func TestNewDebugMuxComposable(t *testing.T) {
	t.Parallel()

	mux := NewDebugMux(telemetry.NewRegistry())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz: status %d, want 200", resp.StatusCode)
	}
}

func TestReportJob(t *testing.T) {
	t.Parallel()

	var b strings.Builder
	ReportJob(&b, &engine.Result{ID: "job-0123456789abcdef"})
	if got, want := b.String(), "job job-0123456789abcdef: computed\n"; got != want {
		t.Fatalf("ReportJob computed = %q, want %q", got, want)
	}
	b.Reset()
	ReportJob(&b, &engine.Result{ID: "job-0123456789abcdef", FromCache: true})
	if got, want := b.String(), "job job-0123456789abcdef: served from cache\n"; got != want {
		t.Fatalf("ReportJob cached = %q, want %q", got, want)
	}
}
