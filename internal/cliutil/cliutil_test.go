package cliutil

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"diversity/internal/engine"
)

func TestJobModel(t *testing.T) {
	t.Parallel()

	path := filepath.Join(t.TempDir(), "model.json")
	doc := `{"name": "demo", "faults": [{"p": 0.1, "q": 0.02}, {"p": 0.3, "q": 0.01}]}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	t.Run("model file inlined", func(t *testing.T) {
		spec, err := JobModel(path, "", 1)
		if err != nil {
			t.Fatalf("JobModel: %v", err)
		}
		if spec.Name != "demo" || len(spec.Faults) != 2 || spec.Scenario != "" {
			t.Errorf("spec = %+v, want inline demo model", spec)
		}
		if spec.Faults[0].P != 0.1 || spec.Faults[0].Q != 0.02 {
			t.Errorf("fault parameters not preserved: %+v", spec.Faults)
		}
	})

	t.Run("scenario by reference", func(t *testing.T) {
		spec, err := JobModel("", "safety-grade", 7)
		if err != nil {
			t.Fatalf("JobModel: %v", err)
		}
		want := engine.ModelSpec{Scenario: "safety-grade", ScenarioSeed: 7}
		if spec.Scenario != want.Scenario || spec.ScenarioSeed != want.ScenarioSeed || spec.Faults != nil {
			t.Errorf("spec = %+v, want %+v", spec, want)
		}
	})

	t.Run("both flags rejected", func(t *testing.T) {
		if _, err := JobModel(path, "safety-grade", 1); err == nil || !strings.Contains(err.Error(), "not both") {
			t.Errorf("err = %v, want not-both error", err)
		}
	})

	t.Run("neither flag rejected", func(t *testing.T) {
		if _, err := JobModel("", "", 1); err == nil || !strings.Contains(err.Error(), "model is required") {
			t.Errorf("err = %v, want model-required error", err)
		}
	})

	t.Run("unknown scenario rejected", func(t *testing.T) {
		if _, err := JobModel("", "bogus", 1); err == nil || !strings.Contains(err.Error(), "unknown scenario") {
			t.Errorf("err = %v, want unknown-scenario error", err)
		}
	})

	t.Run("missing model file", func(t *testing.T) {
		if _, err := JobModel(filepath.Join(t.TempDir(), "absent.json"), "", 1); err == nil {
			t.Error("missing model file succeeded, want error")
		}
	})
}

func TestValidateCounts(t *testing.T) {
	t.Parallel()

	cases := []struct {
		name          string
		reps, workers int
		wantErr       string
	}{
		{"valid", 1000, 4, ""},
		{"zero workers means all cores", 1000, 0, ""},
		{"zero reps", 0, 4, "at least 1"},
		{"negative reps", -5, 4, "at least 1"},
		{"negative workers", 1000, -1, "must not be negative"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			err := ValidateCounts(tc.reps, tc.workers)
			if tc.wantErr == "" {
				if err != nil {
					t.Errorf("ValidateCounts(%d, %d) = %v, want nil", tc.reps, tc.workers, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("ValidateCounts(%d, %d) = %v, want error containing %q", tc.reps, tc.workers, err, tc.wantErr)
			}
		})
	}
}

func TestProgressPrinter(t *testing.T) {
	t.Parallel()

	var sb strings.Builder
	hook := ProgressPrinter(&sb)
	for done := 0; done <= 100; done += 5 {
		hook(engine.Progress{Stage: "replications", Done: done, Total: 100})
	}
	hook(engine.Progress{Stage: "done"})

	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// 11 decile lines (0%..100%) plus one total-less stage line.
	if len(lines) != 12 {
		t.Fatalf("got %d lines, want 12:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "replications   0% (0/100)") {
		t.Errorf("first line = %q", lines[0])
	}
	if !strings.Contains(lines[10], "100% (100/100)") {
		t.Errorf("final decile line = %q", lines[10])
	}
	if lines[11] != "progress: done" {
		t.Errorf("stage line = %q", lines[11])
	}
}
