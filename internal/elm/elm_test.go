package elm

import (
	"math"
	"testing"
	"testing/quick"

	"diversity/internal/faultmodel"
	"diversity/internal/randx"
)

func TestNewEckhardtLeeValidation(t *testing.T) {
	t.Parallel()

	tests := []struct {
		name    string
		weights []float64
		theta   []float64
	}{
		{name: "empty", weights: nil, theta: nil},
		{name: "weights not normalised", weights: []float64{0.5, 0.4}, theta: []float64{0.1, 0.1}},
		{name: "negative weight", weights: []float64{1.2, -0.2}, theta: []float64{0.1, 0.1}},
		{name: "length mismatch", weights: []float64{0.5, 0.5}, theta: []float64{0.1}},
		{name: "theta above one", weights: []float64{0.5, 0.5}, theta: []float64{0.1, 1.4}},
		{name: "NaN theta", weights: []float64{0.5, 0.5}, theta: []float64{0.1, math.NaN()}},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			if _, err := NewEckhardtLee(tt.weights, tt.theta); err == nil {
				t.Errorf("NewEckhardtLee(%v, %v) succeeded, want error", tt.weights, tt.theta)
			}
		})
	}
}

func TestEckhardtLeeMeans(t *testing.T) {
	t.Parallel()

	m, err := NewEckhardtLee([]float64{0.25, 0.25, 0.5}, []float64{0.1, 0.3, 0})
	if err != nil {
		t.Fatalf("NewEckhardtLee: %v", err)
	}
	if m.Cells() != 3 {
		t.Errorf("Cells = %d, want 3", m.Cells())
	}
	mu1, err := m.MeanPFD(1)
	if err != nil {
		t.Fatalf("MeanPFD(1): %v", err)
	}
	want1 := 0.25*0.1 + 0.25*0.3
	if math.Abs(mu1-want1) > 1e-15 {
		t.Errorf("E[Θ1] = %v, want %v", mu1, want1)
	}
	mu2, err := m.MeanPFD(2)
	if err != nil {
		t.Fatalf("MeanPFD(2): %v", err)
	}
	want2 := 0.25*0.01 + 0.25*0.09
	if math.Abs(mu2-want2) > 1e-15 {
		t.Errorf("E[Θ2] = %v, want %v", mu2, want2)
	}
	if _, err := m.MeanPFD(0); err == nil {
		t.Error("MeanPFD(0) succeeded, want error")
	}
}

// TestEckhardtLeeWorseThanIndependence is the EL headline result: the mean
// two-version PFD is at least the product of the single-version means,
// with equality only for constant difficulty.
func TestEckhardtLeeWorseThanIndependence(t *testing.T) {
	t.Parallel()

	err := quick.Check(func(rawW, rawT []uint8) bool {
		n := len(rawW)
		if n == 0 || len(rawT) < n {
			return true
		}
		weights := make([]float64, n)
		theta := make([]float64, n)
		total := 0.0
		for i := 0; i < n; i++ {
			weights[i] = float64(rawW[i]) + 1
			total += weights[i]
			theta[i] = float64(rawT[i]) / 255
		}
		for i := range weights {
			weights[i] /= total
		}
		m, err := NewEckhardtLee(weights, theta)
		if err != nil {
			return false
		}
		excess, err := m.CorrelationExcess()
		if err != nil {
			return false
		}
		return excess >= -1e-12
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Error(err)
	}
}

func TestEckhardtLeeConstantDifficultyIsIndependent(t *testing.T) {
	t.Parallel()

	m, err := NewEckhardtLee([]float64{0.3, 0.7}, []float64{0.2, 0.2})
	if err != nil {
		t.Fatalf("NewEckhardtLee: %v", err)
	}
	excess, err := m.CorrelationExcess()
	if err != nil {
		t.Fatalf("CorrelationExcess: %v", err)
	}
	if math.Abs(excess) > 1e-15 {
		t.Errorf("constant difficulty excess = %v, want 0", excess)
	}
}

// TestFromFaultSetMeansAgree is experiment E16's core assertion: mapping a
// fault set onto the EL demand space preserves the mean PFDs exactly.
func TestFromFaultSetMeansAgree(t *testing.T) {
	t.Parallel()

	fs, err := faultmodel.New([]faultmodel.Fault{
		{P: 0.2, Q: 0.05},
		{P: 0.4, Q: 0.1},
		{P: 0.1, Q: 0.2},
	})
	if err != nil {
		t.Fatalf("faultmodel.New: %v", err)
	}
	m, err := FromFaultSet(fs)
	if err != nil {
		t.Fatalf("FromFaultSet: %v", err)
	}
	if m.Cells() != fs.N()+1 {
		t.Errorf("Cells = %d, want %d", m.Cells(), fs.N()+1)
	}
	for versions := 1; versions <= 3; versions++ {
		got, err := m.MeanPFD(versions)
		if err != nil {
			t.Fatalf("MeanPFD(%d): %v", versions, err)
		}
		want, err := fs.MeanPFD(versions)
		if err != nil {
			t.Fatalf("fault-set MeanPFD(%d): %v", versions, err)
		}
		if math.Abs(got-want) > 1e-14 {
			t.Errorf("m=%d: EL mean %v, fault-model mean %v", versions, got, want)
		}
	}
	if _, err := FromFaultSet(nil); err == nil {
		t.Error("FromFaultSet(nil) succeeded, want error")
	}
}

func TestEckhardtLeeSampleVersionPFD(t *testing.T) {
	t.Parallel()

	m, err := NewEckhardtLee([]float64{0.25, 0.25, 0.5}, []float64{0.1, 0.3, 0})
	if err != nil {
		t.Fatalf("NewEckhardtLee: %v", err)
	}
	r := randx.NewStream(5)
	const reps = 200000
	sum := 0.0
	for i := 0; i < reps; i++ {
		sum += m.SampleVersionPFD(r)
	}
	mu1, err := m.MeanPFD(1)
	if err != nil {
		t.Fatalf("MeanPFD: %v", err)
	}
	if got := sum / reps; math.Abs(got-mu1) > 0.001 {
		t.Errorf("sampled mean PFD %.5f, want %.5f", got, mu1)
	}
}

func TestLittlewoodMillerNegativeCovarianceBeatsIndependence(t *testing.T) {
	t.Parallel()

	// Methodology A finds cell 1 hard; methodology B finds cell 2 hard:
	// perfectly anti-correlated difficulties.
	weights := []float64{0.5, 0.5}
	thetaA := []float64{0.2, 0.0}
	thetaB := []float64{0.0, 0.2}
	m, err := NewLittlewoodMiller(weights, thetaA, thetaB)
	if err != nil {
		t.Fatalf("NewLittlewoodMiller: %v", err)
	}
	if got := m.MeanPFDSystem(); got != 0 {
		t.Errorf("system mean = %v, want 0 (disjoint difficulties)", got)
	}
	if cov := m.DifficultyCovariance(); cov >= 0 {
		t.Errorf("difficulty covariance = %v, want negative", cov)
	}
	indep := m.MeanPFDA() * m.MeanPFDB()
	if !(m.MeanPFDSystem() < indep) {
		t.Errorf("system mean %v not below independence %v", m.MeanPFDSystem(), indep)
	}
}

func TestLittlewoodMillerReducesToEL(t *testing.T) {
	t.Parallel()

	// Identical methodologies: LM must reproduce the EL quantities.
	weights := []float64{0.25, 0.25, 0.5}
	theta := []float64{0.1, 0.3, 0}
	lm, err := NewLittlewoodMiller(weights, theta, theta)
	if err != nil {
		t.Fatalf("NewLittlewoodMiller: %v", err)
	}
	el, err := NewEckhardtLee(weights, theta)
	if err != nil {
		t.Fatalf("NewEckhardtLee: %v", err)
	}
	elMu2, err := el.MeanPFD(2)
	if err != nil {
		t.Fatalf("MeanPFD: %v", err)
	}
	if math.Abs(lm.MeanPFDSystem()-elMu2) > 1e-15 {
		t.Errorf("LM system mean %v != EL %v", lm.MeanPFDSystem(), elMu2)
	}
	elExcess, err := el.CorrelationExcess()
	if err != nil {
		t.Fatalf("CorrelationExcess: %v", err)
	}
	if math.Abs(lm.DifficultyCovariance()-elExcess) > 1e-15 {
		t.Errorf("LM covariance %v != EL excess %v", lm.DifficultyCovariance(), elExcess)
	}
	if lm.Cells() != 3 {
		t.Errorf("Cells = %d, want 3", lm.Cells())
	}
}

func TestNewLittlewoodMillerValidation(t *testing.T) {
	t.Parallel()

	weights := []float64{0.5, 0.5}
	good := []float64{0.1, 0.2}
	if _, err := NewLittlewoodMiller(weights, good, []float64{0.1}); err == nil {
		t.Error("mismatched thetaB succeeded, want error")
	}
	if _, err := NewLittlewoodMiller([]float64{0.9, 0.3}, good, good); err == nil {
		t.Error("non-normalised weights succeeded, want error")
	}
}
