// Package elm implements the Eckhardt–Lee (1985) and Littlewood–Miller
// (1989) models of coincident failure in multi-version software — the
// baselines the paper builds on (its Section 2: "this is essentially the
// basis of the models used in [3] and [4]").
//
// Both models work over a finite demand space. The Eckhardt–Lee (EL) model
// has a single "difficulty function" theta(x): the probability that a
// randomly developed version fails on demand x; versions are independent
// draws from one development distribution, so two versions fail together
// on x with probability theta(x)², and the mean system PFD
// E[Θ2] = Σ w(x)·theta(x)² exceeds the independence prediction
// (Σ w(x)·theta(x))² whenever theta varies over x. The Littlewood–Miller
// (LM) generalisation gives each of two development methodologies its own
// difficulty function; negatively correlated difficulties can push the
// mean system PFD below the independence product.
//
// The paper's fault-creation model refines EL by adding structure (which
// failure-point sets occur together as regions); FromFaultSet exhibits the
// refinement: it maps a fault set onto the EL demand space in which each
// failure region is one cell, and the mean PFDs of the two models then
// agree exactly (experiment E16).
package elm

import (
	"errors"
	"fmt"
	"math"

	"diversity/internal/faultmodel"
	"diversity/internal/randx"
)

// validateProfile checks that weights form a probability distribution and
// each difficulty value is a probability.
func validateProfile(weights []float64, thetas ...[]float64) error {
	if len(weights) == 0 {
		return errors.New("elm: demand space must have at least one cell")
	}
	total := 0.0
	for i, w := range weights {
		if math.IsNaN(w) || w < 0 {
			return fmt.Errorf("elm: demand weight %v at cell %d invalid", w, i)
		}
		total += w
	}
	if math.Abs(total-1) > 1e-9 {
		return fmt.Errorf("elm: demand weights sum to %v, want 1", total)
	}
	for k, theta := range thetas {
		if len(theta) != len(weights) {
			return fmt.Errorf("elm: difficulty function %d has %d cells, want %d", k, len(theta), len(weights))
		}
		for i, th := range theta {
			if math.IsNaN(th) || th < 0 || th > 1 {
				return fmt.Errorf("elm: difficulty %v at cell %d of function %d is not a probability", th, i, k)
			}
		}
	}
	return nil
}

// EckhardtLee is the EL model: demand weights w(x) and one difficulty
// function theta(x).
type EckhardtLee struct {
	weights []float64
	theta   []float64
}

// NewEckhardtLee constructs an EL model. weights must sum to 1 and theta
// values must be probabilities.
func NewEckhardtLee(weights, theta []float64) (*EckhardtLee, error) {
	if err := validateProfile(weights, theta); err != nil {
		return nil, err
	}
	m := &EckhardtLee{
		weights: append([]float64(nil), weights...),
		theta:   append([]float64(nil), theta...),
	}
	return m, nil
}

// FromFaultSet maps a fault set onto the EL demand space whose cells are
// the failure regions (cell i has weight q_i and difficulty p_i) plus one
// zero-difficulty cell for the remainder of the demand space. The mean
// PFDs of the two models agree exactly under this mapping.
func FromFaultSet(fs *faultmodel.FaultSet) (*EckhardtLee, error) {
	if fs == nil {
		return nil, errors.New("elm: fault set must not be nil")
	}
	n := fs.N()
	weights := make([]float64, n+1)
	theta := make([]float64, n+1)
	for i := 0; i < n; i++ {
		weights[i] = fs.Fault(i).Q
		theta[i] = fs.Fault(i).P
	}
	weights[n] = 1 - fs.SumQ()
	if weights[n] < 0 {
		weights[n] = 0 // guard FP residue; New validates the total
	}
	theta[n] = 0
	return NewEckhardtLee(weights, theta)
}

// Cells returns the number of demand cells.
func (m *EckhardtLee) Cells() int { return len(m.weights) }

// MeanPFD returns E[Θ_m] = Σ w(x)·theta(x)^versions: the mean PFD of a
// single version (versions = 1) or the mean probability that `versions`
// independently developed versions all fail on a random demand.
func (m *EckhardtLee) MeanPFD(versions int) (float64, error) {
	if versions < 1 {
		return 0, fmt.Errorf("elm: version count %d must be at least 1", versions)
	}
	sum := 0.0
	for i, w := range m.weights {
		sum += w * math.Pow(m.theta[i], float64(versions))
	}
	return sum, nil
}

// IndependencePrediction returns E[Θ1]², the system mean PFD that naive
// failure independence would predict for two versions.
func (m *EckhardtLee) IndependencePrediction() (float64, error) {
	mu, err := m.MeanPFD(1)
	if err != nil {
		return 0, err
	}
	return mu * mu, nil
}

// CorrelationExcess returns E[Θ2] - E[Θ1]² = Var_x(theta), the EL model's
// headline quantity: the variance of the difficulty function over the
// demand profile, which is exactly how much worse than independence the
// diverse pair performs on average. It is never negative.
func (m *EckhardtLee) CorrelationExcess() (float64, error) {
	mu2, err := m.MeanPFD(2)
	if err != nil {
		return 0, err
	}
	indep, err := m.IndependencePrediction()
	if err != nil {
		return 0, err
	}
	return mu2 - indep, nil
}

// SampleVersionPFD draws one version from the development distribution in
// which failure events at distinct cells are independent with probability
// theta(x) — the instantiation consistent with the paper's fault model —
// and returns its PFD.
func (m *EckhardtLee) SampleVersionPFD(r *randx.Stream) float64 {
	pfd := 0.0
	for i, w := range m.weights {
		if r.Bernoulli(m.theta[i]) {
			pfd += w
		}
	}
	return pfd
}

// LittlewoodMiller is the LM model: two development methodologies A and B
// with their own difficulty functions over a common demand profile.
type LittlewoodMiller struct {
	weights []float64
	thetaA  []float64
	thetaB  []float64
}

// NewLittlewoodMiller constructs an LM model.
func NewLittlewoodMiller(weights, thetaA, thetaB []float64) (*LittlewoodMiller, error) {
	if err := validateProfile(weights, thetaA, thetaB); err != nil {
		return nil, err
	}
	return &LittlewoodMiller{
		weights: append([]float64(nil), weights...),
		thetaA:  append([]float64(nil), thetaA...),
		thetaB:  append([]float64(nil), thetaB...),
	}, nil
}

// Cells returns the number of demand cells.
func (m *LittlewoodMiller) Cells() int { return len(m.weights) }

// MeanPFDA returns E[Θ_A] for a version from methodology A.
func (m *LittlewoodMiller) MeanPFDA() float64 { return weightedMean(m.weights, m.thetaA) }

// MeanPFDB returns E[Θ_B] for a version from methodology B.
func (m *LittlewoodMiller) MeanPFDB() float64 { return weightedMean(m.weights, m.thetaB) }

// MeanPFDSystem returns E[Θ_AB] = Σ w(x)·thetaA(x)·thetaB(x): the mean PFD
// of the 1-out-of-2 system built from one version of each methodology.
func (m *LittlewoodMiller) MeanPFDSystem() float64 {
	sum := 0.0
	for i, w := range m.weights {
		sum += w * m.thetaA[i] * m.thetaB[i]
	}
	return sum
}

// DifficultyCovariance returns Cov_x(thetaA, thetaB) =
// E[Θ_AB] - E[Θ_A]·E[Θ_B]. Unlike in the EL model it can be negative:
// methodologies that find different demands hard ("forced diversity")
// beat the independence prediction.
func (m *LittlewoodMiller) DifficultyCovariance() float64 {
	return m.MeanPFDSystem() - m.MeanPFDA()*m.MeanPFDB()
}

func weightedMean(weights, values []float64) float64 {
	sum := 0.0
	for i, w := range weights {
		sum += w * values[i]
	}
	return sum
}
