package fabric

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"diversity/internal/telemetry"
)

func TestRouteKey(t *testing.T) {
	cases := []struct{ in, want string }{
		{"job-0123456789abcdef", "01234567"},
		{"job-ffff0000ffff0000", "ffff0000"},
		{"0123456789abcdef", "01234567"},
		{"short", "short"},
	}
	for _, c := range cases {
		if got := routeKey(c.in); got != c.want {
			t.Errorf("routeKey(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestKeyFromSubmissionID(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"j-000001-0123abcd", "0123abcd", true},
		{"j-000042-ffffffff", "ffffffff", true},
		{"j-000001-0123ABCD", "", false}, // uppercase is not a node ID
		{"j-000001-0123abc", "", false},  // 7 hex digits
		{"job-0123456789abcdef", "", false},
		{"x-000001-0123abcd", "", false},
		{"garbage", "", false},
	}
	for _, c := range cases {
		got, ok := keyFromSubmissionID(c.in)
		if got != c.want || ok != c.ok {
			t.Errorf("keyFromSubmissionID(%q) = (%q, %v), want (%q, %v)", c.in, got, ok, c.want, c.ok)
		}
	}
}

func newTestCoordinator(t *testing.T, n int) *Coordinator {
	t.Helper()
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = "http://127.0.0.1:1"
	}
	c, err := New(Config{Nodes: nodes, Registry: telemetry.NewRegistry()})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func TestRankDeterministicAndStable(t *testing.T) {
	c := newTestCoordinator(t, 5)
	keys := []string{"0123abcd", "deadbeef", "cafef00d", "00000000", "ffffffff"}
	for _, key := range keys {
		a, b := c.rank(key), c.rank(key)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("rank(%q) not deterministic: %v vs %v", key, a, b)
			}
		}
		seen := make(map[int]bool)
		for _, idx := range a {
			if idx < 0 || idx >= 5 || seen[idx] {
				t.Fatalf("rank(%q) = %v is not a permutation", key, a)
			}
			seen[idx] = true
		}
	}
	// Rendezvous property: removing one node only moves the keys that
	// node owned. Simulate a 4-node fabric that dropped node4 and check
	// that keys whose 5-node home was not node4 keep their home.
	small := newTestCoordinator(t, 4)
	for _, key := range keys {
		home5 := c.rank(key)[0]
		if home5 == 4 {
			continue
		}
		if home4 := small.rank(key)[0]; home4 != home5 {
			t.Errorf("key %q moved from node%d to node%d when an unrelated node left", key, home5, home4)
		}
	}
}

func TestPickFailover(t *testing.T) {
	c := newTestCoordinator(t, 3)
	key := "0123abcd"
	order := c.rank(key)
	for _, n := range c.nodes {
		n.up.Store(true)
	}
	idx, rerouted, ok := c.pick(key)
	if !ok || rerouted || idx != order[0] {
		t.Fatalf("pick with all up = (%d, %v, %v), want home %d", idx, rerouted, ok, order[0])
	}
	c.nodes[order[0]].up.Store(false)
	idx, rerouted, ok = c.pick(key)
	if !ok || !rerouted || idx != order[1] {
		t.Fatalf("pick with home down = (%d, %v, %v), want reroute to %d", idx, rerouted, ok, order[1])
	}
	for _, n := range c.nodes {
		n.up.Store(false)
	}
	if _, _, ok := c.pick(key); ok {
		t.Fatal("pick with all nodes down reported ok")
	}
}

func TestRouteMemoBounded(t *testing.T) {
	nodes := []string{"http://127.0.0.1:1", "http://127.0.0.1:2"}
	c, err := New(Config{Nodes: nodes, RouteMemo: 4, Registry: telemetry.NewRegistry()})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ids := []string{"j-000001-aaaaaaaa", "j-000002-bbbbbbbb", "j-000003-cccccccc",
		"j-000004-dddddddd", "j-000005-eeeeeeee", "j-000006-ffffffff"}
	for _, id := range ids {
		c.remember(id, 1)
	}
	if len(c.memo) != 4 {
		t.Fatalf("memo size = %d, want 4", len(c.memo))
	}
	if _, ok := c.memoised(ids[0]); ok {
		t.Error("oldest memo entry survived eviction")
	}
	if idx, ok := c.memoised(ids[5]); !ok || idx != 1 {
		t.Errorf("newest memo entry = (%d, %v), want (1, true)", idx, ok)
	}
	// Re-remembering an existing ID must not grow the age list.
	c.remember(ids[5], 0)
	if idx, _ := c.memoised(ids[5]); idx != 0 {
		t.Error("re-remember did not update the node index")
	}
}

func TestCandidatesMemoFirstThenSweep(t *testing.T) {
	c := newTestCoordinator(t, 3)
	id := "j-000001-0123abcd"
	order := c.rank("0123abcd")
	got := c.candidates(id)
	for i := range order {
		if got[i] != order[i] {
			t.Fatalf("candidates without memo = %v, want rendezvous order %v", got, order)
		}
	}
	memoNode := order[len(order)-1] // deliberately not the rendezvous home
	c.remember(id, memoNode)
	got = c.candidates(id)
	if got[0] != memoNode {
		t.Fatalf("candidates with memo = %v, want %d first", got, memoNode)
	}
	seen := make(map[int]bool)
	for _, idx := range got {
		if seen[idx] {
			t.Fatalf("candidates %v visits node %d twice", got, idx)
		}
		seen[idx] = true
	}
	if len(got) != 3 {
		t.Fatalf("candidates %v does not sweep all nodes", got)
	}
	// An ID without an embedded key still sweeps every node.
	if got := c.candidates("not-a-submission-id"); len(got) != 3 {
		t.Fatalf("candidates for unparseable ID = %v, want all 3 nodes", got)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New with no nodes succeeded")
	}
	if _, err := New(Config{Nodes: []string{"not a url"}}); err == nil {
		t.Error("New with a bad node URL succeeded")
	}
	if _, err := New(Config{Nodes: []string{"ftp://host:1"}}); err == nil {
		t.Error("New with a non-http scheme succeeded")
	}
}

func TestMetricsPreRegistered(t *testing.T) {
	reg := telemetry.NewRegistry()
	if _, err := New(Config{Nodes: []string{"http://127.0.0.1:1", "http://127.0.0.1:2"}, Registry: reg}); err != nil {
		t.Fatalf("New: %v", err)
	}
	snap := reg.Snapshot()
	for _, route := range fabricRoutes {
		name := "fabric.request_duration_seconds." + route.name + "." + route.status
		if _, ok := snap.Histograms[name]; !ok {
			t.Errorf("histogram %s not pre-registered", name)
		}
	}
	for _, name := range []string{"fabric.node_up.node0", "fabric.node_up.node1", "fabric.sse_streams_inflight"} {
		if _, ok := snap.Gauges[name]; !ok {
			t.Errorf("gauge %s not pre-registered", name)
		}
	}
	for _, reason := range rejectReasons {
		if _, ok := snap.Counters["fabric.rejected_total."+reason]; !ok {
			t.Errorf("counter fabric.rejected_total.%s not pre-registered", reason)
		}
	}
	if _, ok := snap.Counters["fabric.node_reroutes_total"]; !ok {
		t.Error("counter fabric.node_reroutes_total not pre-registered")
	}
}

func TestReadyzLifecycle(t *testing.T) {
	c := newTestCoordinator(t, 1)
	h := c.Handler()

	get := func(path string) (*httptest.ResponseRecorder, map[string]any) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		var body map[string]any
		json.Unmarshal(rec.Body.Bytes(), &body)
		return rec, body
	}

	if rec, _ := get("/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", rec.Code)
	}
	if rec, body := get("/readyz"); rec.Code != http.StatusServiceUnavailable || body["status"] != "unavailable" {
		t.Fatalf("readyz before Start = %d %v, want 503 unavailable", rec.Code, body)
	}

	// Started with its (unreachable) node down: still unready.
	c.Start()
	defer c.Shutdown(context.Background())
	if rec, _ := get("/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz with node down = %d, want 503", rec.Code)
	}
	c.nodes[0].up.Store(true)
	if rec, body := get("/readyz"); rec.Code != http.StatusOK || body["nodesUp"] != float64(1) {
		t.Fatalf("readyz with node up = %d %v, want 200 nodesUp=1", rec.Code, body)
	}
}

func TestSubmitNoNodeRejected(t *testing.T) {
	reg := telemetry.NewRegistry()
	c, err := New(Config{Nodes: []string{"http://127.0.0.1:1"}, Registry: reg})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	spec := `{"kind":"montecarlo","montecarlo":{"model":{"scenario":"safety-grade","scenarioSeed":7},"versions":2,"reps":1000,"seed":42}}`
	rec := httptest.NewRecorder()
	c.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(spec)))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit with all nodes down = %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("no_node rejection carries no Retry-After")
	}
	if got := reg.Snapshot().Counters["fabric.rejected_total.no_node"]; got != 1 {
		t.Errorf("fabric.rejected_total.no_node = %d, want 1", got)
	}

	// An invalid spec fails validation at the coordinator, before
	// routing: 400, not 503.
	rec = httptest.NewRecorder()
	c.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(`{"kind":"bogus"}`)))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("invalid spec through coordinator = %d, want 400", rec.Code)
	}
}

func TestDrainingRejectsSubmissions(t *testing.T) {
	reg := telemetry.NewRegistry()
	c, err := New(Config{Nodes: []string{"http://127.0.0.1:1"}, Registry: reg})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := c.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	spec := `{"kind":"montecarlo","montecarlo":{"model":{"scenario":"safety-grade","scenarioSeed":7},"versions":2,"reps":1000,"seed":42}}`
	rec := httptest.NewRecorder()
	c.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(spec)))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d, want 503", rec.Code)
	}
	if got := reg.Snapshot().Counters["fabric.rejected_total.draining"]; got != 1 {
		t.Errorf("fabric.rejected_total.draining = %d, want 1", got)
	}
}
