package fabric

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"diversity/internal/server"
	"diversity/internal/telemetry"
)

// e2eSpec is a fixed-seed Monte-Carlo job: identical submissions share
// the stable spec-hash job ID, which is what the fabric routes on.
const e2eSpec = `{"kind":"montecarlo","montecarlo":{"model":{"scenario":"safety-grade","scenarioSeed":7},"versions":2,"reps":200000,"workers":2,"seed":42}}`

// e2eView is the slice of the job view the e2e assertions need, plus
// the raw result payload for byte-identity checks.
type e2eView struct {
	ID     string `json:"id"`
	JobID  string `json:"jobId"`
	Status string `json:"status"`
	Error  string `json:"error"`
	Result *struct {
		FromCache bool `json:"fromCache"`
	} `json:"result"`
	RawResult json.RawMessage `json:"-"`
}

func decodeView(t *testing.T, data []byte) e2eView {
	t.Helper()
	var v e2eView
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("decoding job view: %v\n%s", err, data)
	}
	var raw struct {
		Result json.RawMessage `json:"result"`
	}
	json.Unmarshal(data, &raw)
	v.RawResult = raw.Result
	return v
}

// startNode runs an in-process serve node behind an httptest listener.
func startNode(t *testing.T) *httptest.Server {
	t.Helper()
	srv := server.New(server.Config{Workers: 2, Registry: telemetry.NewRegistry()})
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return ts
}

func submitSpec(t *testing.T, base string) e2eView {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(e2eSpec))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	return decodeView(t, body)
}

// fetch GETs a job view, returning the HTTP status and raw body.
func fetch(t *testing.T, base, id string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET /v1/jobs/%s: %v", id, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, body
}

func pollDone(t *testing.T, base, id string) e2eView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		status, body := fetch(t, base, id)
		if status == http.StatusOK {
			v := decodeView(t, body)
			switch v.Status {
			case "done", "failed", "cancelled":
				return v
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return e2eView{}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestFabricEndToEnd drives the full contract through a coordinator over
// two live nodes: routing affinity (same spec, same node), node-local
// cache hits observable through the proxy (fromCache on resubmit),
// byte-identical results vs a direct node submission, SSE through the
// proxy, and failover with the reroute counter when the home node dies.
func TestFabricEndToEnd(t *testing.T) {
	nodes := []*httptest.Server{startNode(t), startNode(t)}

	reg := telemetry.NewRegistry()
	c, err := New(Config{
		Nodes:            []string{nodes[0].URL, nodes[1].URL},
		ProbeInterval:    25 * time.Millisecond,
		RecoveryInterval: 25 * time.Millisecond,
		Registry:         reg,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	c.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		c.Shutdown(ctx)
	})
	front := httptest.NewServer(c.Handler())
	t.Cleanup(front.Close)

	waitFor(t, "coordinator ready", func() bool {
		resp, err := http.Get(front.URL + "/readyz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	})

	// First submission through the coordinator: fresh compute.
	v1 := submitSpec(t, front.URL)
	fin1 := pollDone(t, front.URL, v1.ID)
	if fin1.Status != "done" || fin1.Result == nil || fin1.Result.FromCache {
		t.Fatalf("first run: status %q result %+v, want done and not fromCache", fin1.Status, fin1.Result)
	}

	// Locate the owning node by asking each node directly.
	owner := -1
	for i, ts := range nodes {
		if status, _ := fetch(t, ts.URL, v1.ID); status == http.StatusOK {
			owner = i
			break
		}
	}
	if owner < 0 {
		t.Fatal("no node holds the submitted job")
	}

	// The view through the coordinator is byte-identical to the owning
	// node's own answer.
	_, viaFabric := fetch(t, front.URL, v1.ID)
	_, direct := fetch(t, nodes[owner].URL, v1.ID)
	if !bytes.Equal(viaFabric, direct) {
		t.Errorf("job view differs through the coordinator:\nfabric: %s\ndirect: %s", viaFabric, direct)
	}

	// Determinism across nodes: the same fixed-seed spec submitted
	// directly to the OTHER node computes fresh and must produce a
	// byte-identical result payload.
	other := 1 - owner
	dv := submitSpec(t, nodes[other].URL)
	dfin := pollDone(t, nodes[other].URL, dv.ID)
	if dfin.Status != "done" || dfin.Result.FromCache {
		t.Fatalf("direct run on other node: status %q fromCache %v", dfin.Status, dfin.Result != nil && dfin.Result.FromCache)
	}
	if !bytes.Equal(fin1.RawResult, dfin.RawResult) {
		t.Errorf("fixed-seed result differs between nodes:\nvia fabric: %s\ndirect:     %s", fin1.RawResult, dfin.RawResult)
	}

	// Resubmitting the identical spec through the coordinator routes to
	// the same node and hits its engine cache.
	v2 := submitSpec(t, front.URL)
	if v2.JobID != v1.JobID {
		t.Fatalf("resubmit jobId = %q, want %q", v2.JobID, v1.JobID)
	}
	fin2 := pollDone(t, front.URL, v2.ID)
	if fin2.Status != "done" || fin2.Result == nil || !fin2.Result.FromCache {
		t.Fatalf("resubmit: status %q result %+v, want done fromCache", fin2.Status, fin2.Result)
	}
	if status, _ := fetch(t, nodes[owner].URL, v2.ID); status != http.StatusOK {
		t.Errorf("resubmit did not land on the owning node (direct fetch = %d)", status)
	}

	// SSE through the coordinator: a finished job's stream is a
	// late-subscriber snapshot followed by the done event.
	resp, err := http.Get(front.URL + "/v1/jobs/" + v2.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("events Content-Type = %q", ct)
	}
	sawDone := false
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		if strings.HasPrefix(scanner.Text(), "event: done") {
			sawDone = true
			break
		}
	}
	resp.Body.Close()
	if !sawDone {
		t.Fatal("SSE stream through coordinator carried no done event")
	}

	// A well-formed but never-minted ID, while every node is up, is an
	// honest 404 after the full sweep.
	ghost := "j-009999-" + strings.TrimPrefix(v1.JobID, "job-")[:8]
	if status, _ := fetch(t, front.URL, ghost); status != http.StatusNotFound {
		t.Errorf("fetch of unknown job with all nodes up = %d, want 404", status)
	}

	// Kill the owning node: the next identical submission reroutes to
	// the surviving node in hash order and the reroute counter moves.
	before := reg.Snapshot().Counters["fabric.node_reroutes_total"]
	nodes[owner].Close()
	waitFor(t, "owner probed down", func() bool {
		return reg.Snapshot().Gauges["fabric.node_up.node"+string(rune('0'+owner))] == 0
	})
	v3 := submitSpec(t, front.URL)
	fin3 := pollDone(t, front.URL, v3.ID)
	if fin3.Status != "done" {
		t.Fatalf("rerouted job: status %q error %q", fin3.Status, fin3.Error)
	}
	if status, _ := fetch(t, nodes[other].URL, v3.ID); status != http.StatusOK {
		t.Errorf("rerouted job not on surviving node (direct fetch = %d)", status)
	}
	after := reg.Snapshot().Counters["fabric.node_reroutes_total"]
	if after <= before {
		t.Errorf("fabric.node_reroutes_total = %d, want > %d after failover", after, before)
	}

	// With the owner down, the same unknown ID answers 503 (the job may
	// live on the dead node) rather than a lying 404.
	status, _ := fetch(t, front.URL, ghost)
	if status != http.StatusServiceUnavailable {
		t.Errorf("fetch of dead node's job = %d, want 503", status)
	}
}
