package fabric

import (
	"hash/fnv"
	"sort"
	"strings"
)

// routeKey extracts the routing key from a stable engine job ID
// ("job-" + 16 hex digits of the canonical spec hash): the first 8 hex
// digits — exactly the fragment internal/server embeds in every
// submission ID (j-<seq>-<8 hex>). Keying on the shared fragment means
// a submission routes identically whether the coordinator knows the
// full spec (POST) or only the submission ID (GET/DELETE/SSE), and
// identical specs always share a key, which is what gives the node-
// local engine cache and durable ledger their end-to-end affinity.
func routeKey(engineID string) string {
	key := strings.TrimPrefix(engineID, "job-")
	if len(key) > 8 {
		key = key[:8]
	}
	return key
}

// keyFromSubmissionID recovers the routing key embedded in a node
// submission ID of the form "j-<seq>-<8 hex>". It reports ok=false for
// IDs in any other shape (which the proxy then resolves by sweeping the
// healthy nodes instead).
func keyFromSubmissionID(id string) (string, bool) {
	parts := strings.Split(id, "-")
	if len(parts) != 3 || parts[0] != "j" || len(parts[2]) != 8 {
		return "", false
	}
	for _, r := range parts[2] {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return "", false
		}
	}
	return parts[2], true
}

// score is the rendezvous weight of (key, node): FNV-1a over the node
// name and the key. Each node hashes the key independently, so adding
// or removing a node only moves the keys that node wins — no global
// reshuffle, which keeps cache affinity through membership changes.
func score(key, nodeName string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(nodeName))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return h.Sum64()
}

// rank returns every node index in rendezvous order for key: highest
// score first, index as the (deterministic) tie-break. rank[0] is the
// key's home node; failover walks the rest in order.
func (c *Coordinator) rank(key string) []int {
	type scored struct {
		idx int
		s   uint64
	}
	ranked := make([]scored, len(c.nodes))
	for i, n := range c.nodes {
		ranked[i] = scored{idx: i, s: score(key, n.name)}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].s != ranked[j].s {
			return ranked[i].s > ranked[j].s
		}
		return ranked[i].idx < ranked[j].idx
	})
	out := make([]int, len(ranked))
	for i, r := range ranked {
		out[i] = r.idx
	}
	return out
}

// pick selects the routing target for key: the first healthy node in
// rendezvous order. rerouted reports that the key's home node was
// skipped because it is down — the caller counts it in
// fabric.node_reroutes_total. ok is false when every node is down.
func (c *Coordinator) pick(key string) (idx int, rerouted, ok bool) {
	order := c.rank(key)
	for pos, i := range order {
		if c.nodes[i].up.Load() {
			return i, pos > 0, true
		}
	}
	return 0, false, false
}

// remember memoises a submission ID's node so later GET/DELETE/SSE
// requests route directly even after membership changes moved the
// key's rendezvous home. The memo is bounded: the oldest entries fall
// off, and a miss degrades to rendezvous routing plus a healthy-node
// sweep — never to an error.
func (c *Coordinator) remember(subID string, idx int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.memo[subID]; !exists {
		c.memoAge = append(c.memoAge, subID)
	}
	c.memo[subID] = idx
	for len(c.memo) > c.cfg.RouteMemo && len(c.memoAge) > 0 {
		delete(c.memo, c.memoAge[0])
		c.memoAge = c.memoAge[1:]
	}
}

// memoised returns the remembered node index for a submission ID.
func (c *Coordinator) memoised(subID string) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	idx, ok := c.memo[subID]
	return idx, ok
}

// candidates returns the node indices to try, in order, for a request
// addressed to an existing submission ID: the memoised node first, then
// the remaining nodes in rendezvous order of the ID's embedded routing
// key (or listing order when the ID embeds no key). Every node appears
// exactly once, so a sweep visits the whole fabric.
func (c *Coordinator) candidates(subID string) []int {
	var order []int
	if key, ok := keyFromSubmissionID(subID); ok {
		order = c.rank(key)
	} else {
		order = make([]int, len(c.nodes))
		for i := range c.nodes {
			order[i] = i
		}
	}
	memo, hasMemo := c.memoised(subID)
	if !hasMemo {
		return order
	}
	out := []int{memo}
	for _, i := range order {
		if i != memo {
			out = append(out, i)
		}
	}
	return out
}
