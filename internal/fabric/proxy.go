package fabric

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"diversity/internal/server"
	"diversity/internal/telemetry"
)

// maxProxyResponse bounds a buffered upstream response body. Job views
// are a few KB and full listings a few hundred KB; the cap only exists
// so a misbehaving upstream cannot balloon the coordinator.
const maxProxyResponse = 32 << 20

// Register mounts the coordinator's API on mux — the exact route set a
// serve node registers, so a client (or load balancer) cannot tell the
// two apart by surface. Conventionally mux is cliutil.NewDebugMux's, so
// the same listener carries /metrics and the debug routes.
func (c *Coordinator) Register(mux *http.ServeMux) {
	mux.Handle("GET /healthz", c.instrument("healthz", c.handleHealthz))
	mux.Handle("GET /readyz", c.instrument("readyz", c.handleReadyz))
	mux.Handle("GET /v1/scenarios", c.instrument("scenarios", c.handleScenarios))
	mux.Handle("POST /v1/jobs", c.instrument("jobs_submit", c.handleSubmit))
	mux.Handle("GET /v1/jobs", c.instrument("jobs_list", c.handleList))
	mux.Handle("GET /v1/jobs/{id}", c.instrument("jobs_get", c.handleGet))
	mux.Handle("DELETE /v1/jobs/{id}", c.instrument("jobs_cancel", c.handleCancel))
	mux.Handle("GET /v1/jobs/{id}/events", c.instrument("jobs_events", c.handleEvents))
}

// Handler returns a fresh mux with the API registered — the convenient
// form for tests and embedders that do not need the debug routes.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	c.Register(mux)
	return mux
}

// instrument wraps a handler with the shared request plumbing, reusing
// the serving layer's X-Request-ID sanitizer and status recorder: the
// correlation ID is accepted or generated once at the coordinator,
// echoed on the response, threaded through the request context, and
// forwarded verbatim to the node — so one ID names the request on both
// hops. Latency lands in
// "fabric.request_duration_seconds.<route>.<status>".
func (c *Coordinator) instrument(route string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := server.RequestID(r)
		w.Header().Set("X-Request-ID", reqID)
		ctx := telemetry.ContextWithRunID(r.Context(), reqID)
		r = r.WithContext(ctx)
		sw := server.NewStatusRecorder(w)
		start := time.Now()
		h(sw, r)
		elapsed := time.Since(start)
		name := "fabric.request_duration_seconds." + route + "." + strconv.Itoa(sw.Status())
		c.reg.Histogram(name, telemetry.DurationBuckets).Observe(elapsed.Seconds())
		if c.log != nil {
			c.log.InfoContext(ctx, "http request",
				"route", route, "method", r.Method, "path", r.URL.Path,
				"status", sw.Status(), "duration", elapsed)
		}
	})
}

// reqIDOf returns the correlation ID instrument stored in the request
// context.
func reqIDOf(r *http.Request) string {
	id, _ := telemetry.RunIDFromContext(r.Context())
	return id
}

// upstream is one buffered node response: enough to decide, annotate and
// replay it to the client.
type upstream struct {
	status int
	header http.Header
	body   []byte
}

// forward performs one non-streaming upstream request against node idx,
// buffering the response. A transport-level failure marks the node down
// (so failover does not wait out a probe interval) and returns the
// error.
func (c *Coordinator) forward(ctx context.Context, idx int, method, path string, body []byte, reqID string) (*upstream, error) {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.ProxyTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.nodes[idx].base+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set("X-Request-ID", reqID)
	resp, err := c.proxy.Do(req)
	if err != nil {
		c.markDown(idx)
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyResponse))
	if err != nil {
		c.markDown(idx)
		return nil, err
	}
	return &upstream{status: resp.StatusCode, header: resp.Header, body: data}, nil
}

// passHeaders lists the response headers replayed to the client; the
// backpressure contract travels in Retry-After, resource location in
// Location.
var passHeaders = []string{"Content-Type", "Location", "Retry-After"}

// replay writes a buffered upstream response to the client.
func replay(w http.ResponseWriter, up *upstream) {
	for _, h := range passHeaders {
		if v := up.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(up.status)
	w.Write(up.body)
}

// reject answers a fabric-level rejection: 503 with Retry-After, counted
// under fabric.rejected_total.<reason> and flight-recorded.
func (c *Coordinator) reject(w http.ResponseWriter, reqID, reason, retryAfter, format string, args ...any) {
	c.reg.Counter("fabric.rejected_total." + reason).Inc()
	c.reg.Event("fabric.rejected", reqID, map[string]string{"reason": reason})
	w.Header().Set("Retry-After", retryAfter)
	server.WriteError(w, http.StatusServiceUnavailable, format, args...)
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	server.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz reports routability: at least one node up and not
// draining. The node tallies ride along so a load balancer check is
// also a one-glance fleet summary.
func (c *Coordinator) handleReadyz(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{
		"status":  "ok",
		"nodes":   len(c.nodes),
		"nodesUp": c.upCount(),
	}
	if !c.ready() {
		body["status"] = "unavailable"
		server.WriteJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	server.WriteJSON(w, http.StatusOK, body)
}

// handleScenarios proxies the scenario listing from the first healthy
// node — every node serves the identical deterministic listing.
func (c *Coordinator) handleScenarios(w http.ResponseWriter, r *http.Request) {
	reqID := reqIDOf(r)
	for idx := range c.nodes {
		if !c.nodes[idx].up.Load() {
			continue
		}
		up, err := c.forward(r.Context(), idx, http.MethodGet, "/v1/scenarios", nil, reqID)
		if err != nil {
			continue
		}
		replay(w, up)
		return
	}
	c.reject(w, reqID, "node_unavailable", "1", "no serve node is available: retry shortly")
}

// handleSubmit routes a submission to its rendezvous home node. The
// body is parsed once at the coordinator — invalid specs fail here with
// 400, before any network hop — and forwarded byte-for-byte, so the
// node-side validation, replication cap and queue admission behave
// exactly as they would for a direct client. Node backpressure
// (queue-full 503, rate-limit 429, draining 503) replays to the client
// with its Retry-After intact; the fabric adds exactly one rejection of
// its own: 503 when no healthy node exists.
func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	reqID := reqIDOf(r)
	if c.isDraining() {
		c.reject(w, reqID, "draining", "10", "coordinator is draining and accepts no new jobs")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, server.MaxBodyBytes))
	if err != nil {
		server.WriteError(w, http.StatusBadRequest, "reading job spec: %v", err)
		return
	}
	_, engineID, err := server.DecodeJobSpec(bytes.NewReader(body))
	if err != nil {
		server.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key := routeKey(engineID)
	for pos, idx := range c.rank(key) {
		if !c.nodes[idx].up.Load() {
			continue
		}
		up, err := c.forward(r.Context(), idx, http.MethodPost, "/v1/jobs", body, reqID)
		if err != nil {
			continue // node marked down; next in hash order
		}
		if pos > 0 {
			c.reg.Counter("fabric.node_reroutes_total").Inc()
			c.reg.Event("fabric.reroute", reqID, map[string]string{
				"job": engineID, "to": c.nodes[idx].name,
			})
			if c.log != nil {
				c.log.InfoContext(r.Context(), "job rerouted past its home node",
					"job", engineID, "to", c.nodes[idx].name)
			}
		}
		if up.status == http.StatusAccepted {
			var v struct {
				ID string `json:"id"`
			}
			if json.Unmarshal(up.body, &v) == nil && v.ID != "" {
				c.remember(v.ID, idx)
			}
		}
		replay(w, up)
		return
	}
	c.reject(w, reqID, "no_node", "1", "no serve node is available to take the job: retry shortly")
}

// resolve performs a routed request for an existing submission ID,
// trying the memoised node first and then the remaining nodes in
// rendezvous order. A 404 moves on to the next candidate (after a
// failover or a coordinator restart the job may live off its rendezvous
// home); any other answer wins. sawDown reports that at least one
// candidate was unreachable, which turns an all-404 sweep into a 503
// rather than a lying 404.
func (c *Coordinator) resolve(ctx context.Context, method, path, subID, reqID string) (up *upstream, idx int, sawDown bool) {
	for _, i := range c.candidates(subID) {
		if !c.nodes[i].up.Load() {
			sawDown = true
			continue
		}
		resp, err := c.forward(ctx, i, method, path, nil, reqID)
		if err != nil {
			sawDown = true
			continue
		}
		if resp.status == http.StatusNotFound {
			continue
		}
		if resp.status < 300 {
			c.remember(subID, i)
		}
		return resp, i, sawDown
	}
	return nil, 0, sawDown
}

// jobStatusView is the slice of a job view the coordinator inspects:
// enough to recognise terminal states and the contractual "restart"
// failure reason.
type jobStatusView struct {
	Status string `json:"status"`
	Error  string `json:"error"`
}

func (v jobStatusView) terminal() bool {
	return v.Status == "done" || v.Status == "failed" || v.Status == "cancelled"
}

// noteRestart flight-records a job view that surfaces the durability
// contract's restart re-mark (status failed, error containing
// "restart") — the fabric-level trace of a node crash showing up
// through the proxy.
func (c *Coordinator) noteRestart(up *upstream, subID, reqID string, idx int) {
	if up.status != http.StatusOK {
		return
	}
	var v jobStatusView
	if json.Unmarshal(up.body, &v) != nil {
		return
	}
	if v.Status == "failed" && strings.Contains(v.Error, "restart") {
		c.reg.Event("fabric.restart_surfaced", reqID, map[string]string{
			"id": subID, "node": c.nodes[idx].name,
		})
	}
}

func (c *Coordinator) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	reqID := reqIDOf(r)
	up, idx, sawDown := c.resolve(r.Context(), http.MethodGet, "/v1/jobs/"+id, id, reqID)
	if up == nil {
		if sawDown {
			c.reject(w, reqID, "node_unavailable", "1", "job %q may live on a node that is down: retry shortly", id)
			return
		}
		server.WriteError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	c.noteRestart(up, id, reqID, idx)
	replay(w, up)
}

func (c *Coordinator) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	reqID := reqIDOf(r)
	up, _, sawDown := c.resolve(r.Context(), http.MethodDelete, "/v1/jobs/"+id, id, reqID)
	if up == nil {
		if sawDown {
			c.reject(w, reqID, "node_unavailable", "1", "job %q may live on a node that is down: retry shortly", id)
			return
		}
		server.WriteError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	replay(w, up)
}

// handleList merges the retained-job listings of every reachable node.
// Jobs sort by submission time across the fabric, so the merged view
// reads like one node's. Down nodes are skipped — their jobs reappear
// when they do; with every node down the listing is a 503, not an empty
// lie.
func (c *Coordinator) handleList(w http.ResponseWriter, r *http.Request) {
	reqID := reqIDOf(r)
	type entry struct {
		raw       json.RawMessage
		submitted string
	}
	var merged []entry
	reached := 0
	for idx := range c.nodes {
		if !c.nodes[idx].up.Load() {
			continue
		}
		up, err := c.forward(r.Context(), idx, http.MethodGet, "/v1/jobs", nil, reqID)
		if err != nil || up.status != http.StatusOK {
			continue
		}
		reached++
		var payload struct {
			Jobs []json.RawMessage `json:"jobs"`
		}
		if json.Unmarshal(up.body, &payload) != nil {
			continue
		}
		for _, raw := range payload.Jobs {
			var meta struct {
				Submitted string `json:"submitted"`
			}
			json.Unmarshal(raw, &meta)
			merged = append(merged, entry{raw: raw, submitted: meta.Submitted})
		}
	}
	if reached == 0 {
		c.reject(w, reqID, "node_unavailable", "1", "no serve node is available: retry shortly")
		return
	}
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].submitted < merged[j].submitted })
	jobs := make([]json.RawMessage, len(merged))
	for i, e := range merged {
		jobs[i] = e.raw
	}
	server.WriteJSON(w, http.StatusOK, map[string]any{"jobs": jobs})
}

// handleEvents proxies a job's SSE progress stream from its node:
// frames — late-subscriber snapshots, progress, keepalive comments, the
// terminal done event — pass through line by line with a flush per
// line, so proxy buffering never stalls a live stream. If the upstream
// connection dies short of a terminal event (the node crashed), the
// coordinator switches to restart recovery: it re-polls the job view
// across the fabric until the restarted node surfaces a terminal state
// — for an interrupted job, failed with the contractual "restart"
// reason — and forwards it as the stream's done event. The client keeps
// one connection and still gets exactly the single-node contract:
// progress, then one terminal event.
func (c *Coordinator) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	reqID := reqIDOf(r)
	flusher, ok := w.(http.Flusher)
	if !ok {
		server.WriteError(w, http.StatusInternalServerError, "response writer does not support streaming")
		return
	}

	// The upstream stream must die with the client connection or the
	// coordinator drain, whichever comes first.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	go func() {
		select {
		case <-c.drainCh:
			cancel()
		case <-ctx.Done():
		}
	}()

	resp, idx, sawDown := c.openStream(ctx, id, reqID)
	if resp == nil {
		if sawDown {
			c.reject(w, reqID, "node_unavailable", "1", "job %q may live on a node that is down: retry shortly", id)
			return
		}
		server.WriteError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	defer resp.Body.Close()
	c.remember(id, idx)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	c.reg.Gauge("fabric.sse_streams_inflight").Set(float64(c.sse.Add(1)))
	defer func() {
		c.reg.Gauge("fabric.sse_streams_inflight").Set(float64(c.sse.Add(-1)))
	}()

	// Copy the stream line by line, watching for a terminal event: done
	// (job finished) or draining (node shutting down gracefully — the
	// single-node contract tells the client to re-poll, and the
	// coordinator keeps that contract rather than silently absorbing
	// it).
	terminalSeen := false
	reader := bufio.NewReader(resp.Body)
	for {
		line, err := reader.ReadString('\n')
		if len(line) > 0 {
			if strings.HasPrefix(line, "event: done") || strings.HasPrefix(line, "event: draining") {
				terminalSeen = true
			}
			io.WriteString(w, line)
			flusher.Flush()
		}
		if err != nil {
			break
		}
	}
	if terminalSeen || ctx.Err() != nil {
		if c.isDraining() {
			writeSSE(w, flusher, "draining", map[string]string{"status": "draining"})
		}
		return
	}

	// Upstream died mid-stream: restart recovery.
	c.recoverStream(ctx, w, flusher, id, reqID)
}

// openStream opens the upstream SSE connection, walking the candidates
// like resolve.
func (c *Coordinator) openStream(ctx context.Context, subID, reqID string) (resp *http.Response, idx int, sawDown bool) {
	for _, i := range c.candidates(subID) {
		if !c.nodes[i].up.Load() {
			sawDown = true
			continue
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.nodes[i].base+"/v1/jobs/"+subID+"/events", nil)
		if err != nil {
			continue
		}
		req.Header.Set("X-Request-ID", reqID)
		r, err := c.proxy.Do(req)
		if err != nil {
			c.markDown(i)
			sawDown = true
			continue
		}
		if r.StatusCode == http.StatusNotFound {
			r.Body.Close()
			continue
		}
		if r.StatusCode != http.StatusOK {
			r.Body.Close()
			sawDown = true
			continue
		}
		return r, i, sawDown
	}
	return nil, 0, sawDown
}

// recoverStream is the SSE restart-recovery loop: poll the job view
// across the fabric until a terminal state surfaces, then forward it as
// the done event. An interrupted job comes back as failed with the
// contractual "restart" reason once its node replays the durable
// ledger; a job that actually finished before the crash comes back done
// with its full result. Keepalive comments hold the client connection
// across the node's restart window.
func (c *Coordinator) recoverStream(ctx context.Context, w http.ResponseWriter, flusher http.Flusher, subID, reqID string) {
	c.reg.Event("fabric.sse_recovering", reqID, map[string]string{"id": subID})
	ticker := time.NewTicker(c.cfg.RecoveryInterval)
	defer ticker.Stop()
	keepaliveEvery := int(15 * time.Second / c.cfg.RecoveryInterval)
	if keepaliveEvery < 1 {
		keepaliveEvery = 1
	}
	for polls := 1; ; polls++ {
		select {
		case <-ctx.Done():
			if c.isDraining() {
				writeSSE(w, flusher, "draining", map[string]string{"status": "draining"})
			}
			return
		case <-ticker.C:
		}
		up, idx, _ := c.resolve(ctx, http.MethodGet, "/v1/jobs/"+subID, subID, reqID)
		if up != nil && up.status == http.StatusOK {
			var v jobStatusView
			if json.Unmarshal(up.body, &v) == nil && v.terminal() {
				if v.Status == "failed" && strings.Contains(v.Error, "restart") {
					c.reg.Event("fabric.restart_recovered", reqID, map[string]string{
						"id": subID, "node": c.nodes[idx].name,
					})
				}
				// The buffered view is indented JSON; SSE data must be one
				// line.
				var compact bytes.Buffer
				if json.Compact(&compact, up.body) == nil {
					fmt.Fprintf(w, "event: done\ndata: %s\n\n", compact.Bytes())
					flusher.Flush()
				}
				return
			}
		}
		if polls%keepaliveEvery == 0 {
			fmt.Fprint(w, ": keepalive\n\n")
			flusher.Flush()
		}
	}
}

// writeSSE emits one named SSE event with a JSON payload.
func writeSSE(w http.ResponseWriter, flusher http.Flusher, event string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	flusher.Flush()
}
