// Package fabric is the distribution half of the multi-node job fabric:
// an HTTP coordinator that exposes the exact docs/API.md surface of a
// single serve node and shards every request across N nodes by
// rendezvous-hashing the stable spec-hash job ID. Identical specs always
// land on the same node, so the node-local engine LRU cache and durable
// ledger keep their end-to-end observability (fromCache, stable jobId)
// through the proxy — by contract, a client cannot tell a coordinator
// from a node except by throughput.
//
// The coordinator holds no job state of its own beyond a routing memo:
// queue, backpressure, durability and SSE fan-out all live on the nodes,
// and their 503/429 + Retry-After answers pass through verbatim. What
// the fabric adds is a health-checked node registry (per-node probe
// loop, up/down gauges), failover — jobs whose home node is down route
// to the next node in rendezvous order, counted in
// fabric.node_reroutes_total — and restart recovery: an SSE stream whose
// node dies mid-run is re-polled until the restarted node surfaces the
// job's terminal view, which carries the contractual "restart" failure
// reason from the durability contract (docs/API.md).
package fabric

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"diversity/internal/telemetry"
)

// Config parameterises a Coordinator. Nodes is the only required field.
type Config struct {
	// Nodes lists the serve-node base URLs (e.g. "http://10.0.0.1:8080")
	// the coordinator shards over. Order is identity: node i is named
	// "node<i>" in metrics, logs and flight-recorder events, and the
	// rendezvous ranking hashes that stable name, so restarts and
	// coordinator replacements with the same -nodes list route
	// identically.
	Nodes []string
	// ProbeInterval is the per-node health-probe cadence; <= 0 selects
	// 1s. Each node is probed on its own loop (GET /healthz), so one
	// hung node cannot delay the others' state.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe; <= 0 selects 1s.
	ProbeTimeout time.Duration
	// ProxyTimeout bounds one proxied non-streaming upstream request
	// (submit, poll, cancel, list, scenarios); <= 0 selects 30s. SSE
	// streams are bounded by the client connection instead.
	ProxyTimeout time.Duration
	// RecoveryInterval is the poll cadence of the SSE restart-recovery
	// loop: after an upstream stream dies short of its done event, the
	// job view is re-fetched at this cadence until a terminal state
	// surfaces; <= 0 selects 1s.
	RecoveryInterval time.Duration
	// RouteMemo bounds the submission-ID -> node routing memo; <= 0
	// selects 8192. The memo is an optimisation, not state the contract
	// depends on: a miss falls back to rendezvous routing plus a healthy
	// -node sweep.
	RouteMemo int
	// Registry receives the fabric.* metrics; nil creates a private
	// registry.
	Registry *telemetry.Registry
	// Logger, when non-nil, receives structured request and node
	// state-change lines.
	Logger *slog.Logger
}

// node is one registered serve node: its stable name, base URL and
// probed liveness.
type node struct {
	name string // "node<i>", stable across restarts for a fixed -nodes order
	base string // scheme://host:port, no trailing slash
	up   atomic.Bool
}

// Coordinator routes the docs/API.md surface across N serve nodes.
// Construct with New, mount with Register, start the probe loops with
// Start, and drain with Shutdown.
type Coordinator struct {
	cfg   Config
	reg   *telemetry.Registry
	log   *slog.Logger
	nodes []*node

	// proxy performs upstream requests; it has no client-level timeout
	// (SSE streams are long-lived) — non-streaming calls bound
	// themselves with ProxyTimeout contexts.
	proxy *http.Client
	// probe is the health-check client, bounded by ProbeTimeout.
	probe *http.Client

	sse atomic.Int64 // live SSE streams, mirrored to the inflight gauge

	mu       sync.Mutex
	memo     map[string]int // submission ID -> node index
	memoAge  []string       // insertion order, for bounded eviction
	started  bool
	draining bool
	drainCh  chan struct{}
	stop     context.CancelFunc
	wg       sync.WaitGroup
}

// fabricRoutes lists every instrumented route with its success status.
// New pre-registers one request-duration histogram per pair — the same
// zero-series guarantee internal/server gives — so a first scrape
// already exports the full steady-state series set; error-status series
// appear on first use.
var fabricRoutes = []struct{ name, status string }{
	{"healthz", "200"},
	{"readyz", "200"},
	{"scenarios", "200"},
	{"jobs_submit", "202"},
	{"jobs_list", "200"},
	{"jobs_get", "200"},
	{"jobs_cancel", "202"},
	{"jobs_events", "200"},
}

// rejectReasons are the fabric-level rejection counters: no_node when no
// healthy node exists to take a submission, node_unavailable when a
// job's home node is down and no peer holds it, draining while the
// coordinator itself is shutting down.
var rejectReasons = []string{"no_node", "node_unavailable", "draining"}

// New validates the node list and returns an unstarted coordinator: the
// handlers answer (readyz reports 503) but no probe loop runs until
// Start, and every node starts down until its first probe. All fabric.*
// metrics are pre-registered here so the first scrape carries the whole
// series set, zeros included.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("fabric: at least one node is required")
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}
	if cfg.ProxyTimeout <= 0 {
		cfg.ProxyTimeout = 30 * time.Second
	}
	if cfg.RecoveryInterval <= 0 {
		cfg.RecoveryInterval = time.Second
	}
	if cfg.RouteMemo <= 0 {
		cfg.RouteMemo = 8192
	}
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	c := &Coordinator{
		cfg:     cfg,
		reg:     reg,
		log:     cfg.Logger,
		proxy:   &http.Client{},
		probe:   &http.Client{Timeout: cfg.ProbeTimeout},
		memo:    make(map[string]int),
		drainCh: make(chan struct{}),
	}
	for i, raw := range cfg.Nodes {
		base := strings.TrimRight(raw, "/")
		u, err := url.Parse(base)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("fabric: node %d: %q is not an http(s) base URL", i, raw)
		}
		c.nodes = append(c.nodes, &node{name: fmt.Sprintf("node%d", i), base: base})
	}
	// Pre-register every fabric series so zeros are scrapeable before
	// the first request — per-route success histograms, per-node up/down
	// gauges, the reroute counter, the SSE inflight gauge and both
	// rejection reasons.
	for _, route := range fabricRoutes {
		reg.Histogram("fabric.request_duration_seconds."+route.name+"."+route.status, telemetry.DurationBuckets)
	}
	for _, n := range c.nodes {
		reg.Gauge("fabric.node_up." + n.name).Set(0)
	}
	reg.Counter("fabric.node_reroutes_total")
	reg.Gauge("fabric.sse_streams_inflight").Set(0)
	for _, reason := range rejectReasons {
		reg.Counter("fabric.rejected_total." + reason)
	}
	return c, nil
}

// Start probes every node once synchronously (so a coordinator in front
// of healthy nodes is ready the moment Start returns) and launches the
// per-node probe loops. It is a no-op when already started.
func (c *Coordinator) Start() {
	c.mu.Lock()
	if c.started || c.draining {
		c.mu.Unlock()
		return
	}
	c.started = true
	ctx, cancel := context.WithCancel(context.Background())
	c.stop = cancel
	c.mu.Unlock()

	var first sync.WaitGroup
	for _, n := range c.nodes {
		first.Add(1)
		go func(n *node) {
			defer first.Done()
			c.setUp(n, c.probeOnce(n))
		}(n)
	}
	first.Wait()
	for _, n := range c.nodes {
		c.wg.Add(1)
		go c.probeLoop(ctx, n)
	}
}

// probeLoop re-probes one node until shutdown.
func (c *Coordinator) probeLoop(ctx context.Context, n *node) {
	defer c.wg.Done()
	ticker := time.NewTicker(c.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			c.setUp(n, c.probeOnce(n))
		}
	}
}

// probeOnce reports whether the node answers its liveness probe. The
// probe targets /healthz, not /readyz: a draining node still serves
// reads for the jobs it holds, and its submission 503s pass through as
// backpressure — only a dead process is routed around.
func (c *Coordinator) probeOnce(n *node) bool {
	resp, err := c.probe.Get(n.base + "/healthz")
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// setUp records a node's probed state, updating the gauge and logging
// transitions.
func (c *Coordinator) setUp(n *node, up bool) {
	if n.up.Swap(up) == up {
		return
	}
	v := 0.0
	if up {
		v = 1.0
	}
	c.reg.Gauge("fabric.node_up." + n.name).Set(v)
	kind := "fabric.node_down"
	if up {
		kind = "fabric.node_up"
	}
	c.reg.Event(kind, "", map[string]string{"node": n.name, "base": n.base})
	if c.log != nil {
		c.log.Info("node state changed", "node", n.name, "base", n.base, "up", up)
	}
}

// markDown immediately demotes a node a proxied request could not reach,
// so failover does not wait out a probe interval. The probe loop
// promotes it again when it answers.
func (c *Coordinator) markDown(idx int) {
	c.setUp(c.nodes[idx], false)
}

// upCount returns the number of nodes currently probed up.
func (c *Coordinator) upCount() int {
	count := 0
	for _, n := range c.nodes {
		if n.up.Load() {
			count++
		}
	}
	return count
}

// ready reports whether the coordinator can route new work: started,
// not draining, and at least one node up.
func (c *Coordinator) ready() bool {
	c.mu.Lock()
	ok := c.started && !c.draining
	c.mu.Unlock()
	return ok && c.upCount() > 0
}

func (c *Coordinator) isDraining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining
}

// Shutdown drains the coordinator: probe loops stop, open SSE streams
// receive a draining event and close, and readiness flips to 503. The
// nodes themselves are not touched — they drain on their own schedule.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.mu.Lock()
	already := c.draining
	c.draining = true
	stop := c.stop
	if !already {
		close(c.drainCh)
	}
	c.mu.Unlock()
	if already {
		return nil
	}
	c.reg.Event("drain.begin", "", nil)
	if stop != nil {
		stop()
	}
	done := make(chan struct{})
	go func() {
		c.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
