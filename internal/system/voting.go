package system

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"diversity/internal/faultmodel"
)

// This file generalises the fixed Architecture enum to pluggable
// adjudicators. The paper's 1-out-of-2 protection pair is the m = 2 point
// of a family: an N-version pool whose per-demand outputs are combined by
// a voting rule. Under the disjoint-region model every rule of practical
// interest is a threshold voter — a demand in the region of fault i
// defeats the system exactly when the number of versions carrying fault i
// reaches a rule-specific threshold — so adjudication per fault reduces to
// a popcount over the N stacked presence masks compared against that
// threshold, and closed forms reduce to binomial tail probabilities.

// Adjudicator is a voting rule combining N version outputs into one system
// output. Implementations must be pure values: Defeated must depend only
// on its arguments, and must be monotone in count (once enough versions
// carry a fault to defeat the system, more versions carrying it cannot
// rescue it). The simulation kernels rely on monotonicity to reduce a
// rule to its defeat threshold outside the hot loop.
type Adjudicator interface {
	// Name returns the canonical spec string for the rule, as accepted by
	// ParseAdjudicator: "1oon", "majority", "2oo3", ...
	Name() string
	// Defeated reports whether a fault carried by count of the n versions
	// defeats the adjudicated system on demands in its failure region.
	Defeated(count, n int) bool
	// Validate reports whether the rule is meaningful for an n-version
	// pool, returning a *VersionCountError if not.
	Validate(n int) error
}

// VersionCountError reports a version pool whose size the adjudicator
// cannot vote over — e.g. a 2oo3 rule applied to 2 versions. The server
// surfaces it as HTTP 400.
type VersionCountError struct {
	// Adjudicator is the canonical name of the rule.
	Adjudicator string
	// Versions is the offending pool size.
	Versions int
	// Reason states the constraint that was violated.
	Reason string
}

func (e *VersionCountError) Error() string {
	return fmt.Sprintf("system: adjudicator %s cannot vote over %d versions: %s", e.Adjudicator, e.Versions, e.Reason)
}

// OneOutOfN is the paper's parallel/OR protection arrangement generalised
// to N channels: the system fails on a demand only if every version fails,
// so a fault defeats the system exactly when all N versions carry it.
type OneOutOfN struct{}

// Name implements Adjudicator.
func (OneOutOfN) Name() string { return "1oon" }

// Defeated implements Adjudicator: only a fault common to all versions
// defeats the OR arrangement.
func (OneOutOfN) Defeated(count, n int) bool { return count == n }

// Validate implements Adjudicator: any non-empty pool can be OR-combined.
func (OneOutOfN) Validate(n int) error {
	if n < 1 {
		return &VersionCountError{Adjudicator: "1oon", Versions: n, Reason: "need at least 1 version"}
	}
	return nil
}

// MajorityVote is strict-majority N-version voting: the system fails when
// more than half the versions fail. For even pools a tie is adjudicated in
// the system's favour (a fault carried by exactly half the versions does
// not defeat it).
type MajorityVote struct{}

// Name implements Adjudicator.
func (MajorityVote) Name() string { return "majority" }

// Defeated implements Adjudicator.
func (MajorityVote) Defeated(count, n int) bool { return 2*count > n }

// Validate implements Adjudicator: a majority vote needs at least 3
// voters — over 1 or 2 versions it degenerates to the single version or
// the 1oo2 pair and should be spelled as such.
func (MajorityVote) Validate(n int) error {
	if n < 3 {
		return &VersionCountError{Adjudicator: "majority", Versions: n, Reason: "majority voting needs at least 3 versions"}
	}
	return nil
}

// KOutOfN is the general k-of-N arrangement: the system works on a demand
// when at least K of the N versions work, so a fault defeats it when the
// number of versions carrying the fault reaches N-K+1. Unlike
// MajorityVote, which adapts to whatever pool it is given, KOutOfN pins N:
// assembling a 2oo3 system from 2 versions is a *VersionCountError, the
// representability bug this type exists to close.
type KOutOfN struct {
	// K is the number of versions that must work.
	K int
	// N is the pool size the rule is defined over.
	N int
}

// Name implements Adjudicator.
func (a KOutOfN) Name() string { return fmt.Sprintf("%doo%d", a.K, a.N) }

// Defeated implements Adjudicator.
func (a KOutOfN) Defeated(count, n int) bool { return count >= a.N-a.K+1 }

// Validate implements Adjudicator.
func (a KOutOfN) Validate(n int) error {
	if a.N < 1 || a.K < 1 || a.K > a.N {
		return &VersionCountError{Adjudicator: a.Name(), Versions: n,
			Reason: fmt.Sprintf("rule requires 1 <= k <= n, got k=%d n=%d", a.K, a.N)}
	}
	if n != a.N {
		return &VersionCountError{Adjudicator: a.Name(), Versions: n,
			Reason: fmt.Sprintf("rule is defined over exactly %d versions", a.N)}
	}
	return nil
}

// ImperfectAdjudicator wraps a voting rule with an adjudication stage that
// itself fails — independently of the software, per demand — with
// probability StagePFD. Voting is unchanged (Defeated delegates to the
// inner rule); the stage failure composes analytically on top of the
// software PFD as 1 - (1-software)·(1-stage), the identity
// PFDWithAdjudicator introduced. The evaluation kernels and closed forms
// apply the composition automatically, so an imperfect 2oo3 system's PFD
// is floored at StagePFD no matter how diverse the pool.
type ImperfectAdjudicator struct {
	// Voter is the wrapped voting rule.
	Voter Adjudicator
	// StagePFD is the per-demand failure probability of the adjudication
	// stage (voter hardware/actuation), in [0, 1].
	StagePFD float64
}

// Name implements Adjudicator: the inner rule's name with an "@pfd"
// suffix, e.g. "2oo3@1e-4".
func (a ImperfectAdjudicator) Name() string {
	return fmt.Sprintf("%s@%s", a.Voter.Name(), strconv.FormatFloat(a.StagePFD, 'g', -1, 64))
}

// Defeated implements Adjudicator by delegating to the wrapped rule.
func (a ImperfectAdjudicator) Defeated(count, n int) bool { return a.Voter.Defeated(count, n) }

// Validate implements Adjudicator.
func (a ImperfectAdjudicator) Validate(n int) error {
	if a.Voter == nil {
		return &VersionCountError{Adjudicator: "imperfect", Versions: n, Reason: "no inner voting rule"}
	}
	if math.IsNaN(a.StagePFD) || a.StagePFD < 0 || a.StagePFD > 1 {
		return &VersionCountError{Adjudicator: a.Voter.Name(), Versions: n,
			Reason: fmt.Sprintf("stage PFD %v must be a probability", a.StagePFD)}
	}
	return a.Voter.Validate(n)
}

// ApplyStagePFD folds an imperfect adjudication stage into a software PFD:
// the identity 1 - (1-software)·(1-stage) for ImperfectAdjudicator, and
// software unchanged (bit for bit — no float operations) for every other
// rule.
func ApplyStagePFD(adj Adjudicator, software float64) float64 {
	if imp, ok := adj.(ImperfectAdjudicator); ok {
		return 1 - (1-software)*(1-imp.StagePFD)
	}
	return software
}

// VotingRule unwraps an ImperfectAdjudicator to its inner rule; other
// adjudicators are returned unchanged.
func VotingRule(adj Adjudicator) Adjudicator {
	if imp, ok := adj.(ImperfectAdjudicator); ok {
		return imp.Voter
	}
	return adj
}

// ParseAdjudicator maps a spec string to an adjudicator:
//
//	"", "1oom", "1oon"   →  OneOutOfN (the legacy default)
//	"majority"          →  MajorityVote
//	"KooN" (e.g. 2oo3)  →  KOutOfN{K, N}
//
// Any form may carry an "@pfd" suffix (e.g. "majority@1e-4") wrapping the
// rule in an ImperfectAdjudicator with the given stage PFD.
func ParseAdjudicator(spec string) (Adjudicator, error) {
	base := spec
	stage := ""
	if at := strings.IndexByte(spec, '@'); at >= 0 {
		base, stage = spec[:at], spec[at+1:]
	}
	var adj Adjudicator
	switch base {
	case "", "1oom", "1oon":
		adj = OneOutOfN{}
	case "majority":
		adj = MajorityVote{}
	default:
		k, n, ok := parseKooN(base)
		if !ok {
			return nil, fmt.Errorf("system: unknown adjudicator %q (want 1oon, majority, or KooN like 2oo3)", spec)
		}
		if k < 1 || n < 1 || k > n {
			return nil, fmt.Errorf("system: adjudicator %q requires 1 <= k <= n", spec)
		}
		adj = KOutOfN{K: k, N: n}
	}
	if stage != "" {
		pfd, err := strconv.ParseFloat(stage, 64)
		if err != nil || math.IsNaN(pfd) || pfd < 0 || pfd > 1 {
			return nil, fmt.Errorf("system: adjudicator stage PFD %q must be a probability", stage)
		}
		adj = ImperfectAdjudicator{Voter: adj, StagePFD: pfd}
	}
	return adj, nil
}

// parseKooN splits a "KooN" spec into its two integers.
func parseKooN(s string) (k, n int, ok bool) {
	sep := strings.Index(s, "oo")
	if sep <= 0 || sep+2 >= len(s) {
		return 0, 0, false
	}
	k, err := strconv.Atoi(s[:sep])
	if err != nil {
		return 0, 0, false
	}
	n, err = strconv.Atoi(s[sep+2:])
	if err != nil {
		return 0, 0, false
	}
	return k, n, true
}

// Adjudicator maps the legacy enum value to its adjudicator.
func (a Architecture) Adjudicator() (Adjudicator, error) {
	switch a {
	case Arch1OutOfM:
		return OneOutOfN{}, nil
	case ArchMajority:
		return MajorityVote{}, nil
	default:
		return nil, fmt.Errorf("system: unknown architecture %d", int(a))
	}
}

// DefeatThreshold returns the smallest carrier count that defeats the
// rule over an n-version pool, or n+1 if no count does. It relies on the
// interface's monotonicity contract: the kernels hoist this scan out of
// their per-fault loops and compare popcounts against the threshold.
func DefeatThreshold(adj Adjudicator, n int) int {
	for c := 0; c <= n; c++ {
		if adj.Defeated(c, n) {
			return c
		}
	}
	return n + 1
}

// binomial returns C(n, c) exactly (as a float): the multiplicative
// recurrence keeps every intermediate an exactly representable integer for
// the pool sizes in scope.
func binomial(n, c int) float64 {
	if c > n-c {
		c = n - c
	}
	b := 1.0
	for i := 0; i < c; i++ {
		b = b * float64(n-i) / float64(i+1)
	}
	return b
}

// DefeatProbability returns the probability that a fault with presence
// probability p defeats the software stage of an n-version pool under the
// rule: P(Binomial(n, p) >= DefeatThreshold) = Σ C(n,c) p^c (1-p)^(n-c)
// over the defeated counts. For the 1-out-of-N rule this is exactly
// math.Pow(p, n) — the p_i^m of the paper's equations (1)-(2) — bit for
// bit, so the generalised closed forms agree with the legacy ones on the
// legacy arrangement. Imperfect stage failure is not per-fault and is NOT
// folded in here; see ApplyStagePFD.
func DefeatProbability(adj Adjudicator, n int, p float64) float64 {
	th := DefeatThreshold(VotingRule(adj), n)
	if th > n {
		return 0
	}
	d := 0.0
	for c := th; c <= n; c++ {
		d += binomial(n, c) * math.Pow(p, float64(c)) * math.Pow(1-p, float64(n-c))
	}
	return d
}

// MeanSystemPFD returns E[Θ] for an n-version pool under the rule — the
// k-of-N generalisation of the paper's equation (1): Σ d_i q_i with d_i
// the fault's defeat probability, plus the imperfect-stage composition
// when the rule carries one. It returns the rule's *VersionCountError for
// a pool it cannot vote over.
func MeanSystemPFD(fs *faultmodel.FaultSet, adj Adjudicator, n int) (float64, error) {
	if err := adj.Validate(n); err != nil {
		return 0, err
	}
	sum := 0.0
	for i := 0; i < fs.N(); i++ {
		f := fs.Fault(i)
		sum += DefeatProbability(adj, n, f.P) * f.Q
	}
	return ApplyStagePFD(adj, sum), nil
}

// PAnySystemFault returns P(the pool carries at least one defeating
// fault) = 1 - Π(1 - d_i) — the k-of-N generalisation of the Section-4
// risk P(N_m > 0). The imperfect stage concerns demands, not fault
// presence, so it does not enter this probability.
func PAnySystemFault(fs *faultmodel.FaultSet, adj Adjudicator, n int) (float64, error) {
	if err := adj.Validate(n); err != nil {
		return 0, err
	}
	prod := 1.0
	for i := 0; i < fs.N(); i++ {
		prod *= 1 - DefeatProbability(adj, n, fs.Fault(i).P)
	}
	return 1 - prod, nil
}
