package system

import (
	"errors"
	"math"
	"testing"

	"diversity/internal/devsim"
	"diversity/internal/faultmodel"
	"diversity/internal/randx"
)

// develop returns versions from deterministic fault sets: certainty[i][j]
// says whether version i contains fault j, achieved by p in {0, 1}.
func develop(t *testing.T, qs []float64, masks [][]bool) (*faultmodel.FaultSet, []*devsim.Version) {
	t.Helper()
	faults := make([]faultmodel.Fault, len(qs))
	for j := range qs {
		faults[j] = faultmodel.Fault{P: 0.5, Q: qs[j]}
	}
	fs, err := faultmodel.New(faults)
	if err != nil {
		t.Fatalf("faultmodel.New: %v", err)
	}
	versions := make([]*devsim.Version, len(masks))
	r := randx.NewStream(1)
	for i, mask := range masks {
		detFaults := make([]faultmodel.Fault, len(qs))
		for j := range qs {
			p := 0.0
			if mask[j] {
				p = 1
			}
			detFaults[j] = faultmodel.Fault{P: p, Q: qs[j]}
		}
		detSet, err := faultmodel.New(detFaults)
		if err != nil {
			t.Fatalf("faultmodel.New: %v", err)
		}
		versions[i] = devsim.NewIndependentProcess(detSet).Develop(r)
	}
	return fs, versions
}

func TestOneOutOfTwoPFDIsIntersection(t *testing.T) {
	t.Parallel()

	fs, vs := develop(t,
		[]float64{0.01, 0.02, 0.04},
		[][]bool{
			{true, true, false},
			{false, true, true},
		})
	sys, err := New(fs, Arch1OutOfM, vs...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Only fault 1 is common.
	if got := sys.PFD(); math.Abs(got-0.02) > 1e-15 {
		t.Errorf("1oo2 PFD = %v, want 0.02", got)
	}
	if got := sys.SystemFaultCount(); got != 1 {
		t.Errorf("SystemFaultCount = %d, want 1", got)
	}
	if sys.NumVersions() != 2 || sys.Architecture() != Arch1OutOfM {
		t.Errorf("metadata wrong: %d versions, arch %v", sys.NumVersions(), sys.Architecture())
	}
}

func TestOneOutOfTwoMatchesCommonPFD(t *testing.T) {
	t.Parallel()

	faults := []faultmodel.Fault{
		{P: 0.3, Q: 0.05}, {P: 0.5, Q: 0.1}, {P: 0.2, Q: 0.15},
	}
	fs, err := faultmodel.New(faults)
	if err != nil {
		t.Fatalf("faultmodel.New: %v", err)
	}
	proc := devsim.NewIndependentProcess(fs)
	r := randx.NewStream(5)
	for trial := 0; trial < 200; trial++ {
		a := proc.Develop(r)
		b := proc.Develop(r)
		sys, err := New(fs, Arch1OutOfM, a, b)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		want, err := devsim.CommonPFD(fs, a, b)
		if err != nil {
			t.Fatalf("CommonPFD: %v", err)
		}
		if math.Abs(sys.PFD()-want) > 1e-15 {
			t.Fatalf("trial %d: system PFD %v != common PFD %v", trial, sys.PFD(), want)
		}
	}
}

func TestSingleVersionSystem(t *testing.T) {
	t.Parallel()

	fs, vs := develop(t, []float64{0.01, 0.02}, [][]bool{{true, false}})
	sys, err := New(fs, Arch1OutOfM, vs...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := sys.PFD(); math.Abs(got-0.01) > 1e-15 {
		t.Errorf("single-version PFD = %v, want 0.01 (the version's own PFD)", got)
	}
	if got := vs[0].PFD(); math.Abs(got-sys.PFD()) > 1e-15 {
		t.Errorf("system PFD %v != version PFD %v", sys.PFD(), got)
	}
}

func TestMajorityTwoOutOfThree(t *testing.T) {
	t.Parallel()

	fs, vs := develop(t,
		[]float64{0.01, 0.02, 0.04, 0.08},
		[][]bool{
			{true, true, false, true},
			{true, false, true, false},
			{false, false, true, false},
		})
	sys, err := New(fs, ArchMajority, vs...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Fault 0: in 2/3 -> fails. Fault 1: 1/3 -> ok. Fault 2: 2/3 -> fails.
	// Fault 3: 1/3 -> ok. PFD = 0.01+0.04.
	if got := sys.PFD(); math.Abs(got-0.05) > 1e-15 {
		t.Errorf("majority PFD = %v, want 0.05", got)
	}
}

// TestMajorityThreeVersionsWorseThan1oo3 checks the architectures are
// ordered as expected: majority voting needs >half failures, 1-out-of-3
// needs all three, so 1oo3 never has higher PFD.
func TestMajorityThreeVersionsWorseThan1oo3(t *testing.T) {
	t.Parallel()

	faults := []faultmodel.Fault{
		{P: 0.4, Q: 0.05}, {P: 0.6, Q: 0.1}, {P: 0.3, Q: 0.15},
	}
	fs, err := faultmodel.New(faults)
	if err != nil {
		t.Fatalf("faultmodel.New: %v", err)
	}
	proc := devsim.NewIndependentProcess(fs)
	r := randx.NewStream(9)
	for trial := 0; trial < 300; trial++ {
		a, b, c := proc.Develop(r), proc.Develop(r), proc.Develop(r)
		oneOf, err := New(fs, Arch1OutOfM, a, b, c)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		maj, err := New(fs, ArchMajority, a, b, c)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if oneOf.PFD() > maj.PFD()+1e-15 {
			t.Fatalf("trial %d: 1oo3 PFD %v exceeds majority PFD %v", trial, oneOf.PFD(), maj.PFD())
		}
	}
}

func TestNewValidation(t *testing.T) {
	t.Parallel()

	fs, vs := develop(t, []float64{0.01}, [][]bool{{true}})
	if _, err := New(fs, Arch1OutOfM); !errors.Is(err, ErrNoVersions) {
		t.Errorf("no versions error = %v, want ErrNoVersions", err)
	}
	if _, err := New(fs, Architecture(42), vs...); err == nil {
		t.Error("unknown architecture succeeded, want error")
	}
	// Mismatched universe.
	other, otherVs := develop(t, []float64{0.01, 0.02}, [][]bool{{true, false}})
	if _, err := New(fs, Arch1OutOfM, otherVs...); err == nil {
		t.Error("mismatched universe succeeded, want error")
	}
	_ = other
}

func TestArchitectureString(t *testing.T) {
	t.Parallel()

	if Arch1OutOfM.String() != "1-out-of-m" || ArchMajority.String() != "majority" {
		t.Error("architecture labels wrong")
	}
	if got := Architecture(9).String(); got != "Architecture(9)" {
		t.Errorf("unknown architecture label = %q", got)
	}
}
