package system

import (
	"fmt"
	"math"
)

// The paper assumes "perfect adjudication (simple OR combination of binary
// outputs)". This file relaxes that: a real voter/actuator stage can
// itself fail to act on a demand. With an adjudication stage that fails
// (independently of the software, per demand) with probability
// adjudicatorPFD, the system misses a demand when either the software
// arrangement misses it or the adjudication stage fails:
//
//	PFD_total = 1 - (1 - PFD_software)·(1 - PFD_adjudicator).
//
// The practical point for assessors: the adjudicator's contribution floors
// the achievable system PFD, so software diversity beyond that floor buys
// nothing — a quantitative version of the classic "the voter becomes the
// bottleneck" argument against very deep software redundancy.

// PFDWithAdjudicator returns the total system PFD when the adjudication
// stage fails independently with the given probability per demand.
func (s *System) PFDWithAdjudicator(adjudicatorPFD float64) (float64, error) {
	if math.IsNaN(adjudicatorPFD) || adjudicatorPFD < 0 || adjudicatorPFD > 1 {
		return 0, fmt.Errorf("system: adjudicator PFD %v must be a probability", adjudicatorPFD)
	}
	software := s.PFD()
	return 1 - (1-software)*(1-adjudicatorPFD), nil
}

// AdjudicatorFloor returns the smallest total system PFD achievable with
// the given adjudicator, no matter how good the software channels are:
// the adjudicator's own PFD.
func AdjudicatorFloor(adjudicatorPFD float64) (float64, error) {
	if math.IsNaN(adjudicatorPFD) || adjudicatorPFD < 0 || adjudicatorPFD > 1 {
		return 0, fmt.Errorf("system: adjudicator PFD %v must be a probability", adjudicatorPFD)
	}
	return adjudicatorPFD, nil
}

// DiversityWorthwhile reports whether adding the second software version
// still reduces the TOTAL system PFD by at least the factor `minGain`,
// given the adjudicator's reliability: with a poor adjudicator the gain
// saturates. singlePFD and pairPFD are the software-only PFDs of the
// one-version and two-version arrangements.
func DiversityWorthwhile(singlePFD, pairPFD, adjudicatorPFD, minGain float64) (bool, error) {
	for _, v := range []struct {
		name  string
		value float64
	}{
		{name: "single-version PFD", value: singlePFD},
		{name: "pair PFD", value: pairPFD},
		{name: "adjudicator PFD", value: adjudicatorPFD},
	} {
		if math.IsNaN(v.value) || v.value < 0 || v.value > 1 {
			return false, fmt.Errorf("system: %s %v must be a probability", v.name, v.value)
		}
	}
	if math.IsNaN(minGain) || minGain <= 0 {
		return false, fmt.Errorf("system: minimum gain %v must be positive", minGain)
	}
	totalSingle := 1 - (1-singlePFD)*(1-adjudicatorPFD)
	totalPair := 1 - (1-pairPFD)*(1-adjudicatorPFD)
	if totalPair == 0 {
		return true, nil
	}
	return totalSingle/totalPair >= minGain, nil
}
