package system

import (
	"math/bits"

	"diversity/internal/devsim"
	"diversity/internal/faultmodel"
)

// This file holds the allocation-free system-PFD kernels shared by the
// Monte-Carlo harness's dense/streaming and sparse paths (formerly
// duplicated there as maskSystemPFD and sparseSystemPFD, each hard-coding
// the two-architecture enum). Both reduce the adjudicator to its defeat
// threshold once, outside the per-fault loop, and preserve the historical
// summation orders bit for bit: ascending fault index for masks, and for
// bitsets the touched-word intersection walk (1-out-of-N) or the full
// word-range union walk (every other rule).

// MaskSystemPFD computes the system PFD and defeating-fault count of an
// N-version pool from the versions' presence masks, mirroring New +
// System.PFD without the per-replication allocations. The q_i summation
// runs in ascending fault order, so values are bitwise identical to the
// buffered path. An imperfect adjudication stage is folded into the
// returned PFD (the count stays the voting rule's).
func MaskSystemPFD(fs *faultmodel.FaultSet, adj Adjudicator, masks [][]bool) (pfd float64, count int) {
	m := len(masks)
	th := DefeatThreshold(adj, m)
	if th <= m {
		for i := 0; i < fs.N(); i++ {
			present := 0
			for _, mask := range masks {
				if mask[i] {
					present++
				}
			}
			if present >= th {
				pfd += fs.Fault(i).Q
				count++
			}
		}
	}
	return ApplyStagePFD(adj, pfd), count
}

// BitsetSystemPFD computes the system PFD and defeating-fault count of an
// N-version pool from the versions' packed masks. For intersection rules
// (defeat threshold = pool size, i.e. 1-out-of-N) a fault defeats the
// system only when every version carries it, so the intersection is found
// by AND-ing the other masks onto the touched words of the first — O(k)
// in the faults present, never O(n). Other rules can be defeated by
// faults absent from the first version, so they scan the full word range
// and compare each union bit's stacked popcount against the threshold;
// those runs are covered for correctness, not the sparse kernel's
// performance target. An imperfect adjudication stage is folded into the
// returned PFD (the count stays the voting rule's).
func BitsetSystemPFD(fs *faultmodel.FaultSet, adj Adjudicator, masks []*devsim.Bitset) (pfd float64, count int) {
	m := len(masks)
	th := DefeatThreshold(adj, m)
	switch {
	case th > m:
		// No carrier count defeats the rule: only the stage can fail.
	case th == m:
		// Intersection of all masks, walked over the first mask's touched
		// words only.
		if m == 1 {
			pfd, count = bitsetPFD(fs, masks[0])
			break
		}
		first := masks[0]
		for _, tw := range first.Touched() {
			w := int(tw)
			x := first.Word(w)
			for _, other := range masks[1:] {
				x &= other.Word(w)
				if x == 0 {
					break
				}
			}
			count += bits.OnesCount64(x)
			for x != 0 {
				pfd += fs.Fault(w<<6 + bits.TrailingZeros64(x)).Q
				x &= x - 1
			}
		}
	case th == 0:
		// Degenerate rule defeated even by absent faults: every region
		// counts.
		for i := 0; i < fs.N(); i++ {
			pfd += fs.Fault(i).Q
		}
		count = fs.N()
	default:
		for w := 0; w < masks[0].NumWords(); w++ {
			var union uint64
			for _, mask := range masks {
				union |= mask.Word(w)
			}
			for union != 0 {
				b := bits.TrailingZeros64(union)
				union &^= 1 << uint(b)
				present := 0
				for _, mask := range masks {
					if mask.Word(w)>>uint(b)&1 == 1 {
						present++
					}
				}
				if present >= th {
					pfd += fs.Fault(w<<6 + b).Q
					count++
				}
			}
		}
	}
	return ApplyStagePFD(adj, pfd), count
}

// bitsetPFD sums the region probabilities of the faults present in one
// packed mask, walking only its touched words.
func bitsetPFD(fs *faultmodel.FaultSet, mask *devsim.Bitset) (pfd float64, count int) {
	for _, tw := range mask.Touched() {
		w := int(tw)
		x := mask.Word(w)
		count += bits.OnesCount64(x)
		for x != 0 {
			pfd += fs.Fault(w<<6 + bits.TrailingZeros64(x)).Q
			x &= x - 1
		}
	}
	return pfd, count
}
