package system

import (
	"errors"
	"math"
	"testing"

	"diversity/internal/faultmodel"
)

func TestParseAdjudicator(t *testing.T) {
	t.Parallel()

	cases := []struct {
		spec string
		want Adjudicator
	}{
		{"", OneOutOfN{}},
		{"1oom", OneOutOfN{}},
		{"1oon", OneOutOfN{}},
		{"majority", MajorityVote{}},
		{"2oo3", KOutOfN{K: 2, N: 3}},
		{"3oo5", KOutOfN{K: 3, N: 5}},
		{"1oo1", KOutOfN{K: 1, N: 1}},
		{"majority@1e-4", ImperfectAdjudicator{Voter: MajorityVote{}, StagePFD: 1e-4}},
		{"2oo3@0.001", ImperfectAdjudicator{Voter: KOutOfN{K: 2, N: 3}, StagePFD: 0.001}},
		{"1oon@0", ImperfectAdjudicator{Voter: OneOutOfN{}, StagePFD: 0}},
	}
	for _, tc := range cases {
		got, err := ParseAdjudicator(tc.spec)
		if err != nil {
			t.Errorf("ParseAdjudicator(%q): %v", tc.spec, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseAdjudicator(%q) = %#v, want %#v", tc.spec, got, tc.want)
		}
	}
	for _, bad := range []string{
		"sideways", "0oo3", "4oo3", "oo3", "2oo", "xoo3", "2oox",
		"majority@2", "majority@-0.5", "majority@NaN", "2oo3@x",
	} {
		if _, err := ParseAdjudicator(bad); err == nil {
			t.Errorf("ParseAdjudicator(%q) succeeded, want error", bad)
		}
	}
}

// TestAdjudicatorNamesRoundTrip: every rule's canonical Name parses back
// to the same rule, the contract the engine's job specs rely on.
func TestAdjudicatorNamesRoundTrip(t *testing.T) {
	t.Parallel()

	rules := []Adjudicator{
		OneOutOfN{}, MajorityVote{}, KOutOfN{K: 2, N: 3}, KOutOfN{K: 3, N: 5},
		ImperfectAdjudicator{Voter: MajorityVote{}, StagePFD: 1e-4},
		ImperfectAdjudicator{Voter: KOutOfN{K: 2, N: 4}, StagePFD: 0.25},
	}
	for _, rule := range rules {
		back, err := ParseAdjudicator(rule.Name())
		if err != nil {
			t.Errorf("ParseAdjudicator(%q): %v", rule.Name(), err)
			continue
		}
		if back != rule {
			t.Errorf("round trip of %q = %#v, want %#v", rule.Name(), back, rule)
		}
	}
}

func TestDefeatThreshold(t *testing.T) {
	t.Parallel()

	cases := []struct {
		adj  Adjudicator
		n    int
		want int
	}{
		{OneOutOfN{}, 1, 1},
		{OneOutOfN{}, 2, 2},
		{OneOutOfN{}, 5, 5},
		{MajorityVote{}, 3, 2},
		{MajorityVote{}, 4, 3}, // even pool: a tie does not defeat
		{MajorityVote{}, 5, 3},
		{KOutOfN{K: 2, N: 3}, 3, 2},
		{KOutOfN{K: 3, N: 5}, 5, 3},
		{KOutOfN{K: 5, N: 5}, 5, 1},
		{ImperfectAdjudicator{Voter: MajorityVote{}, StagePFD: 0.1}, 3, 2},
	}
	for _, tc := range cases {
		if got := DefeatThreshold(tc.adj, tc.n); got != tc.want {
			t.Errorf("DefeatThreshold(%s, %d) = %d, want %d", tc.adj.Name(), tc.n, got, tc.want)
		}
	}
}

// TestVersionCountValidation pins the typed error: rules reject pools they
// cannot vote over with a *VersionCountError carrying the offending size.
func TestVersionCountValidation(t *testing.T) {
	t.Parallel()

	cases := []struct {
		adj Adjudicator
		n   int
	}{
		{OneOutOfN{}, 0},
		{MajorityVote{}, 2},
		{MajorityVote{}, 1},
		{KOutOfN{K: 2, N: 3}, 2}, // the formerly representable 2oo3-over-2 bug
		{KOutOfN{K: 2, N: 3}, 4},
		{KOutOfN{K: 4, N: 3}, 3}, // k > n is never meaningful
		{ImperfectAdjudicator{Voter: MajorityVote{}, StagePFD: 0.5}, 2},
		{ImperfectAdjudicator{Voter: MajorityVote{}, StagePFD: 1.5}, 3}, // bad stage PFD
		{ImperfectAdjudicator{}, 3},                                     // no inner rule
	}
	for _, tc := range cases {
		err := tc.adj.Validate(tc.n)
		var vce *VersionCountError
		if !errors.As(err, &vce) {
			t.Errorf("%#v.Validate(%d) = %v, want *VersionCountError", tc.adj, tc.n, err)
			continue
		}
		if vce.Versions != tc.n {
			t.Errorf("VersionCountError.Versions = %d, want %d", vce.Versions, tc.n)
		}
	}
	for _, ok := range []struct {
		adj Adjudicator
		n   int
	}{
		{OneOutOfN{}, 1}, {OneOutOfN{}, 7}, {MajorityVote{}, 3}, {MajorityVote{}, 4},
		{KOutOfN{K: 2, N: 3}, 3}, {ImperfectAdjudicator{Voter: OneOutOfN{}, StagePFD: 0}, 2},
	} {
		if err := ok.adj.Validate(ok.n); err != nil {
			t.Errorf("%s.Validate(%d) = %v, want nil", ok.adj.Name(), ok.n, err)
		}
	}
}

// TestNewVotedVersionCountError: assembling a system over a pool the rule
// rejects surfaces the typed error through the constructor (the path the
// server maps to HTTP 400).
func TestNewVotedVersionCountError(t *testing.T) {
	t.Parallel()

	fs, vs := develop(t, []float64{0.01, 0.02}, [][]bool{
		{true, false},
		{false, true},
	})
	_, err := NewVoted(fs, KOutOfN{K: 2, N: 3}, vs...)
	var vce *VersionCountError
	if !errors.As(err, &vce) {
		t.Fatalf("NewVoted(2oo3, 2 versions) error = %v, want *VersionCountError", err)
	}
	if vce.Adjudicator != "2oo3" || vce.Versions != 2 {
		t.Errorf("error fields = %+v, want adjudicator 2oo3 over 2 versions", vce)
	}
	// Legacy New path: a majority vote over 2 versions used to be silently
	// representable; it is now the same typed error.
	if _, err := New(fs, ArchMajority, vs...); !errors.As(err, &vce) {
		t.Errorf("New(majority, 2 versions) error = %v, want *VersionCountError", err)
	}
	if _, err := NewVoted(fs, nil, vs...); err == nil {
		t.Error("nil adjudicator succeeded, want error")
	}
}

// TestDefeatProbabilityMatchesLegacyPow: for the 1-out-of-N rule the
// binomial tail collapses to a single term that must equal math.Pow(p, n)
// bit for bit — the compatibility contract that keeps the generalised
// closed forms identical to the paper's p_i^m on legacy arrangements.
func TestDefeatProbabilityMatchesLegacyPow(t *testing.T) {
	t.Parallel()

	for _, p := range []float64{0, 1e-9, 0.001, 0.3, 0.5, 0.77, 1} {
		for n := 1; n <= 6; n++ {
			got := DefeatProbability(OneOutOfN{}, n, p)
			want := math.Pow(p, float64(n))
			if got != want {
				t.Errorf("DefeatProbability(1oon, %d, %v) = %v, want math.Pow = %v (bit-exact)", n, p, got, want)
			}
		}
	}
}

// TestDefeatProbabilityAgainstEnumeration checks the binomial tail against
// brute-force enumeration of all 2^n presence patterns.
func TestDefeatProbabilityAgainstEnumeration(t *testing.T) {
	t.Parallel()

	rules := []Adjudicator{
		OneOutOfN{}, MajorityVote{}, KOutOfN{K: 2, N: 5}, KOutOfN{K: 4, N: 5},
	}
	for _, adj := range rules {
		n := 5
		th := DefeatThreshold(adj, n)
		for _, p := range []float64{0.01, 0.2, 0.5, 0.9} {
			want := 0.0
			for pattern := 0; pattern < 1<<n; pattern++ {
				carriers := 0
				prob := 1.0
				for v := 0; v < n; v++ {
					if pattern>>v&1 == 1 {
						carriers++
						prob *= p
					} else {
						prob *= 1 - p
					}
				}
				if carriers >= th {
					want += prob
				}
			}
			got := DefeatProbability(adj, n, p)
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("DefeatProbability(%s, %d, %v) = %v, enumeration = %v", adj.Name(), n, p, got, want)
			}
		}
	}
}

// TestMeanSystemPFDClosedForms checks the generalised equation-(1) sums
// against the paper's hand closed forms on a small universe: p_i^2 q_i for
// the pair, p_i^3 q_i for the triple, (3p²(1-p)+p³) q_i for 2oo3.
func TestMeanSystemPFDClosedForms(t *testing.T) {
	t.Parallel()

	fs, err := faultmodel.New([]faultmodel.Fault{
		{P: 0.3, Q: 0.05}, {P: 0.2, Q: 0.08}, {P: 0.15, Q: 0.04}, {P: 0.1, Q: 0.06},
	})
	if err != nil {
		t.Fatalf("faultmodel.New: %v", err)
	}
	var pair, triple, majority3 float64
	for i := 0; i < fs.N(); i++ {
		p, q := fs.Fault(i).P, fs.Fault(i).Q
		pair += p * p * q
		triple += p * p * p * q
		majority3 += (3*p*p*(1-p) + p*p*p) * q
	}
	cases := []struct {
		adj  Adjudicator
		n    int
		want float64
	}{
		{OneOutOfN{}, 2, pair},
		{OneOutOfN{}, 3, triple},
		{MajorityVote{}, 3, majority3},
		{KOutOfN{K: 2, N: 3}, 3, majority3},
	}
	for _, tc := range cases {
		got, err := MeanSystemPFD(fs, tc.adj, tc.n)
		if err != nil {
			t.Fatalf("MeanSystemPFD(%s, %d): %v", tc.adj.Name(), tc.n, err)
		}
		if math.Abs(got-tc.want) > 1e-15 {
			t.Errorf("MeanSystemPFD(%s, %d) = %v, want %v", tc.adj.Name(), tc.n, got, tc.want)
		}
	}
	// MeanPFD(m) must agree exactly with the 1oon closed form — same sum,
	// same order.
	mu2, err := fs.MeanPFD(2)
	if err != nil {
		t.Fatalf("MeanPFD: %v", err)
	}
	got, err := MeanSystemPFD(fs, OneOutOfN{}, 2)
	if err != nil {
		t.Fatalf("MeanSystemPFD: %v", err)
	}
	if got != mu2 {
		t.Errorf("MeanSystemPFD(1oon, 2) = %v, MeanPFD(2) = %v; want bit-exact agreement", got, mu2)
	}
	// The imperfect stage floors the mean at its own PFD.
	stage := ImperfectAdjudicator{Voter: MajorityVote{}, StagePFD: 0.01}
	withStage, err := MeanSystemPFD(fs, stage, 3)
	if err != nil {
		t.Fatalf("MeanSystemPFD(imperfect): %v", err)
	}
	want := 1 - (1-majority3)*(1-0.01)
	if math.Abs(withStage-want) > 1e-15 {
		t.Errorf("imperfect-stage mean = %v, want %v", withStage, want)
	}
	// Invalid pool size propagates the typed error.
	if _, err := MeanSystemPFD(fs, MajorityVote{}, 2); err == nil {
		t.Error("MeanSystemPFD(majority, 2) succeeded, want error")
	}
}

func TestPAnySystemFault(t *testing.T) {
	t.Parallel()

	fs, err := faultmodel.New([]faultmodel.Fault{
		{P: 0.3, Q: 0.05}, {P: 0.2, Q: 0.08}, {P: 0.15, Q: 0.04}, {P: 0.1, Q: 0.06},
	})
	if err != nil {
		t.Fatalf("faultmodel.New: %v", err)
	}
	// 1oon must reproduce the paper's P(N_m > 0) = 1 - Π(1 - p_i^m).
	for m := 1; m <= 3; m++ {
		want, err := fs.PAnyFault(m)
		if err != nil {
			t.Fatalf("PAnyFault: %v", err)
		}
		got, err := PAnySystemFault(fs, OneOutOfN{}, m)
		if err != nil {
			t.Fatalf("PAnySystemFault: %v", err)
		}
		if math.Abs(got-want) > 1e-15 {
			t.Errorf("PAnySystemFault(1oon, %d) = %v, PAnyFault = %v", m, got, want)
		}
	}
	// Majority over 3 is defeated more easily than 1oo3, so its any-fault
	// probability is at least as large.
	maj, err := PAnySystemFault(fs, MajorityVote{}, 3)
	if err != nil {
		t.Fatalf("PAnySystemFault(majority): %v", err)
	}
	oneOf3, err := PAnySystemFault(fs, OneOutOfN{}, 3)
	if err != nil {
		t.Fatalf("PAnySystemFault(1oo3): %v", err)
	}
	if maj < oneOf3 {
		t.Errorf("P(any majority-defeating fault) %v < P(any 1oo3 fault) %v", maj, oneOf3)
	}
	if _, err := PAnySystemFault(fs, KOutOfN{K: 2, N: 3}, 2); err == nil {
		t.Error("invalid pool size succeeded, want error")
	}
}

// TestApplyStagePFDIdentity: plain rules must return the software PFD
// unchanged — the same float64, no arithmetic — so legacy outputs stay
// bitwise stable.
func TestApplyStagePFDIdentity(t *testing.T) {
	t.Parallel()

	for _, v := range []float64{0, 0.1 + 0.2, 1e-300, 0.9999999999999999} {
		if got := ApplyStagePFD(OneOutOfN{}, v); got != v {
			t.Errorf("ApplyStagePFD(1oon, %v) = %v, want the input unchanged", v, got)
		}
		if got := ApplyStagePFD(MajorityVote{}, v); got != v {
			t.Errorf("ApplyStagePFD(majority, %v) = %v, want the input unchanged", v, got)
		}
	}
	got := ApplyStagePFD(ImperfectAdjudicator{Voter: OneOutOfN{}, StagePFD: 0.25}, 0.5)
	if want := 1 - (1-0.5)*(1-0.25); got != want {
		t.Errorf("ApplyStagePFD(imperfect) = %v, want %v", got, want)
	}
}

func TestVotingRuleUnwrap(t *testing.T) {
	t.Parallel()

	inner := KOutOfN{K: 2, N: 3}
	if got := VotingRule(ImperfectAdjudicator{Voter: inner, StagePFD: 0.1}); got != inner {
		t.Errorf("VotingRule(imperfect) = %#v, want inner rule", got)
	}
	if got := VotingRule(inner); got != inner {
		t.Errorf("VotingRule(plain) = %#v, want unchanged", got)
	}
}

func TestArchitectureAdjudicator(t *testing.T) {
	t.Parallel()

	adj, err := Arch1OutOfM.Adjudicator()
	if err != nil || adj != (OneOutOfN{}) {
		t.Errorf("Arch1OutOfM.Adjudicator() = %#v, %v", adj, err)
	}
	adj, err = ArchMajority.Adjudicator()
	if err != nil || adj != (MajorityVote{}) {
		t.Errorf("ArchMajority.Adjudicator() = %#v, %v", adj, err)
	}
	if _, err := Architecture(42).Adjudicator(); err == nil {
		t.Error("unknown architecture succeeded, want error")
	}
}
