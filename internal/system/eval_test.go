package system

import (
	"math"
	"testing"

	"diversity/internal/devsim"
	"diversity/internal/faultmodel"
	"diversity/internal/randx"
)

// naiveSystemPFD is the brute-force reference the kernels are verified
// against: count carriers per fault with a plain loop, ask the adjudicator
// directly, and sum regions in ascending fault order (the kernels'
// documented summation order).
func naiveSystemPFD(fs *faultmodel.FaultSet, adj Adjudicator, masks [][]bool) (pfd float64, count int) {
	for i := 0; i < fs.N(); i++ {
		present := 0
		for _, mask := range masks {
			if mask[i] {
				present++
			}
		}
		if adj.Defeated(present, len(masks)) {
			pfd += fs.Fault(i).Q
			count++
		}
	}
	return ApplyStagePFD(adj, pfd), count
}

// randomUniverse draws a fault set of size n with uniform p and small
// equal-ish q values.
func randomUniverse(t *testing.T, r *randx.Stream, n int) *faultmodel.FaultSet {
	t.Helper()
	faults := make([]faultmodel.Fault, n)
	for i := range faults {
		faults[i] = faultmodel.Fault{P: r.Float64(), Q: 0.5 / float64(n) * (0.5 + r.Float64())}
	}
	fs, err := faultmodel.New(faults)
	if err != nil {
		t.Fatalf("faultmodel.New: %v", err)
	}
	return fs
}

// toBitsets packs bool masks into devsim bitsets.
func toBitsets(masks [][]bool) []*devsim.Bitset {
	out := make([]*devsim.Bitset, len(masks))
	for i, mask := range masks {
		b := devsim.NewBitset(len(mask))
		for j, set := range mask {
			if set {
				b.Set(j)
			}
		}
		out[i] = b
	}
	return out
}

// TestSystemPFDKernelsAgainstNaive is the k-of-N stacked-popcount property
// test: over random universes spanning multiple bitset words, random
// presence masks of varying density, and every adjudicator family, both
// evaluation kernels must agree with the brute-force reference — the PFD
// bit for bit (identical summation order) and the defeating-fault count
// exactly.
func TestSystemPFDKernelsAgainstNaive(t *testing.T) {
	t.Parallel()

	r := randx.NewStream(17)
	adjudicators := func(m int) []Adjudicator {
		rules := []Adjudicator{OneOutOfN{}, KOutOfN{K: 1, N: m}, KOutOfN{K: m, N: m}}
		if m >= 3 {
			rules = append(rules, MajorityVote{}, KOutOfN{K: 2, N: m},
				ImperfectAdjudicator{Voter: MajorityVote{}, StagePFD: 1e-4})
		}
		rules = append(rules, ImperfectAdjudicator{Voter: OneOutOfN{}, StagePFD: 2e-3})
		return rules
	}
	for trial := 0; trial < 200; trial++ {
		n := 1 + int(r.Float64()*200) // 1..200 faults: 1-4 bitset words
		m := 1 + int(r.Float64()*6)   // 1..6 versions
		fs := randomUniverse(t, r, n)
		density := r.Float64()
		masks := make([][]bool, m)
		for v := range masks {
			masks[v] = make([]bool, n)
			for j := range masks[v] {
				masks[v][j] = r.Float64() < density
			}
		}
		bitsets := toBitsets(masks)
		for _, adj := range adjudicators(m) {
			wantPFD, wantCount := naiveSystemPFD(fs, adj, masks)
			gotPFD, gotCount := MaskSystemPFD(fs, adj, masks)
			if gotPFD != wantPFD || gotCount != wantCount {
				t.Fatalf("trial %d n=%d m=%d adj=%s: MaskSystemPFD = (%v, %d), naive = (%v, %d)",
					trial, n, m, adj.Name(), gotPFD, gotCount, wantPFD, wantCount)
			}
			gotPFD, gotCount = BitsetSystemPFD(fs, adj, bitsets)
			if gotCount != wantCount {
				t.Fatalf("trial %d n=%d m=%d adj=%s: BitsetSystemPFD count = %d, naive = %d",
					trial, n, m, adj.Name(), gotCount, wantCount)
			}
			// The bitset walk visits faults in word-then-bit order, which is
			// ascending fault order — so it too must match bit for bit.
			if gotPFD != wantPFD {
				t.Fatalf("trial %d n=%d m=%d adj=%s: BitsetSystemPFD = %v, naive = %v",
					trial, n, m, adj.Name(), gotPFD, wantPFD)
			}
		}
	}
}

// FuzzKOutOfNStackedPopcount drives the same kernels-vs-reference check
// from fuzzed inputs: pool shape (k, n), universe size, and a byte string
// unpacked into the presence masks bit by bit.
func FuzzKOutOfNStackedPopcount(f *testing.F) {
	f.Add(1, 2, 10, []byte{0xff, 0x0f, 0xa5})
	f.Add(2, 3, 70, []byte{0x01, 0x80, 0x55, 0x3c})
	f.Add(3, 5, 130, []byte{})
	f.Fuzz(func(t *testing.T, k, m, n int, bits []byte) {
		if k < 1 || m < k || m > 8 || n < 1 || n > 300 {
			t.Skip()
		}
		adj := KOutOfN{K: k, N: m}
		if err := adj.Validate(m); err != nil {
			t.Skip()
		}
		faults := make([]faultmodel.Fault, n)
		for i := range faults {
			faults[i] = faultmodel.Fault{P: 0.5, Q: 0.9 / float64(n)}
		}
		fs, err := faultmodel.New(faults)
		if err != nil {
			t.Skip()
		}
		bitAt := func(i int) bool {
			if len(bits) == 0 {
				return false
			}
			byteIdx := (i / 8) % len(bits)
			return bits[byteIdx]>>(uint(i)%8)&1 == 1
		}
		masks := make([][]bool, m)
		for v := range masks {
			masks[v] = make([]bool, n)
			for j := range masks[v] {
				masks[v][j] = bitAt(v*n + j)
			}
		}
		wantPFD, wantCount := naiveSystemPFD(fs, adj, masks)
		if gotPFD, gotCount := MaskSystemPFD(fs, adj, masks); gotPFD != wantPFD || gotCount != wantCount {
			t.Errorf("MaskSystemPFD = (%v, %d), naive = (%v, %d)", gotPFD, gotCount, wantPFD, wantCount)
		}
		if gotPFD, gotCount := BitsetSystemPFD(fs, adj, toBitsets(masks)); gotPFD != wantPFD || gotCount != wantCount {
			t.Errorf("BitsetSystemPFD = (%v, %d), naive = (%v, %d)", gotPFD, gotCount, wantPFD, wantCount)
		}
	})
}

// TestBitsetKernelDegenerateThresholds covers the kernel branches no real
// voting rule reaches: a rule no carrier count defeats, and a rule
// defeated even by absent faults.
func TestBitsetKernelDegenerateThresholds(t *testing.T) {
	t.Parallel()

	fs, err := faultmodel.New([]faultmodel.Fault{{P: 0.5, Q: 0.1}, {P: 0.5, Q: 0.2}})
	if err != nil {
		t.Fatalf("faultmodel.New: %v", err)
	}
	masks := [][]bool{{true, false}, {false, false}}
	never := thresholdRule{th: 3} // 2-version pool: threshold 3 unreachable
	if pfd, count := BitsetSystemPFD(fs, never, toBitsets(masks)); pfd != 0 || count != 0 {
		t.Errorf("unreachable threshold: got (%v, %d), want (0, 0)", pfd, count)
	}
	always := thresholdRule{th: 0}
	pfd, count := BitsetSystemPFD(fs, always, toBitsets(masks))
	if math.Abs(pfd-0.3) > 1e-15 || count != 2 {
		t.Errorf("zero threshold: got (%v, %d), want (0.3, 2)", pfd, count)
	}
}

// thresholdRule is a test-only adjudicator with an explicit defeat
// threshold, for exercising degenerate kernel branches.
type thresholdRule struct{ th int }

func (r thresholdRule) Name() string               { return "test-threshold" }
func (r thresholdRule) Defeated(count, n int) bool { return count >= r.th }
func (r thresholdRule) Validate(n int) error       { return nil }
