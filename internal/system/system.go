// Package system assembles developed program versions into redundant
// system architectures and computes their probability of failure on demand
// at failure-region granularity.
//
// The paper studies the 1-out-of-2 protection configuration of Fig. 1: two
// channels whose binary shutdown outputs are OR-ed, so the system fails on
// a demand only when every channel fails on it. Under the disjoint-region
// model a region causes system failure exactly when the corresponding
// fault is present in all channels. The package generalises this to
// 1-out-of-m and, as an extension, to majority-voted N-version systems
// where a region defeats the system when strictly more than half the
// versions contain the fault.
package system

import (
	"errors"
	"fmt"

	"diversity/internal/devsim"
	"diversity/internal/faultmodel"
)

// ErrNoVersions is returned when a system is assembled with no versions.
var ErrNoVersions = errors.New("system: at least one version is required")

// Architecture identifies how channel failures combine into system failure.
type Architecture int

const (
	// Arch1OutOfM is the parallel/OR protection arrangement: the system
	// fails on a demand only if every channel fails (the paper's Fig. 1
	// for m = 2). "1-out-of-m" reads: one working channel suffices.
	Arch1OutOfM Architecture = iota + 1
	// ArchMajority is a majority-voting N-version system: the system
	// fails when more than half the versions fail on the demand.
	ArchMajority
)

// String returns the architecture name.
func (a Architecture) String() string {
	switch a {
	case Arch1OutOfM:
		return "1-out-of-m"
	case ArchMajority:
		return "majority"
	default:
		return fmt.Sprintf("Architecture(%d)", int(a))
	}
}

// System is a redundant software system: a set of versions over a common
// fault universe combined by an adjudicator.
type System struct {
	fs       *faultmodel.FaultSet
	versions []*devsim.Version
	arch     Architecture
	adj      Adjudicator
}

// New assembles a system from the legacy Architecture enum: Arch1OutOfM
// maps to the OneOutOfN adjudicator and ArchMajority to MajorityVote. It
// returns an error if no versions are given, the architecture is unknown,
// the version count does not satisfy the adjudicator (a
// *VersionCountError — e.g. a majority vote over fewer than 3 versions,
// which used to be silently representable), or any version was developed
// against a different fault universe size than fs.
func New(fs *faultmodel.FaultSet, arch Architecture, versions ...*devsim.Version) (*System, error) {
	adj, err := arch.Adjudicator()
	if err != nil {
		return nil, err
	}
	s, err := NewVoted(fs, adj, versions...)
	if err != nil {
		return nil, err
	}
	s.arch = arch
	return s, nil
}

// NewVoted assembles a system from an adjudicator. It returns
// ErrNoVersions for an empty pool, the adjudicator's *VersionCountError
// for a pool size the rule cannot vote over, and an error if any version
// was developed against a different fault universe size than fs.
func NewVoted(fs *faultmodel.FaultSet, adj Adjudicator, versions ...*devsim.Version) (*System, error) {
	if len(versions) == 0 {
		return nil, ErrNoVersions
	}
	if adj == nil {
		return nil, errors.New("system: adjudicator must not be nil")
	}
	if err := adj.Validate(len(versions)); err != nil {
		return nil, err
	}
	return newVoted(fs, adj, versions)
}

// newVoted performs the universe checks and assembly shared by New and
// NewVoted, after pool-size validation has been settled by the caller.
func newVoted(fs *faultmodel.FaultSet, adj Adjudicator, versions []*devsim.Version) (*System, error) {
	if len(versions) == 0 {
		return nil, ErrNoVersions
	}
	for i, v := range versions {
		if v.NumPotential() != fs.N() {
			return nil, fmt.Errorf("system: version %d has %d potential faults, fault set has %d", i, v.NumPotential(), fs.N())
		}
	}
	s := &System{fs: fs, versions: make([]*devsim.Version, len(versions)), adj: adj}
	copy(s.versions, versions)
	return s, nil
}

// NumVersions returns the number of channels.
func (s *System) NumVersions() int { return len(s.versions) }

// Architecture returns the legacy adjudication architecture enum: the
// value New was given, or the closest equivalent (zero if none) for
// NewVoted-assembled systems.
func (s *System) Architecture() Architecture {
	if s.arch != 0 {
		return s.arch
	}
	switch VotingRule(s.adj).(type) {
	case OneOutOfN:
		return Arch1OutOfM
	case MajorityVote:
		return ArchMajority
	}
	return 0
}

// Adjudicator returns the system's adjudicator.
func (s *System) Adjudicator() Adjudicator { return s.adj }

// FailsOnFault reports whether the region of potential fault i defeats
// the whole system: the number of versions carrying the fault reaches the
// adjudicator's defeat threshold (all versions for 1-out-of-N, more than
// half for majority). It panics if i is out of range, mirroring slice
// indexing.
func (s *System) FailsOnFault(i int) bool {
	count := 0
	for _, v := range s.versions {
		if v.Has(i) {
			count++
		}
	}
	return s.adj.Defeated(count, len(s.versions))
}

// PFD returns the system probability of failure on demand: the summed
// region probabilities of the faults that defeat the system, composed
// with the adjudication stage's own failure probability when the
// adjudicator carries one (ImperfectAdjudicator).
func (s *System) PFD() float64 {
	sum := 0.0
	for i := 0; i < s.fs.N(); i++ {
		if s.FailsOnFault(i) {
			sum += s.fs.Fault(i).Q
		}
	}
	return ApplyStagePFD(s.adj, sum)
}

// SystemFaultCount returns the number of potential faults that defeat the
// system.
func (s *System) SystemFaultCount() int {
	count := 0
	for i := 0; i < s.fs.N(); i++ {
		if s.FailsOnFault(i) {
			count++
		}
	}
	return count
}
