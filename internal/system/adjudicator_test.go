package system

import (
	"math"
	"testing"
)

func TestPFDWithAdjudicator(t *testing.T) {
	t.Parallel()

	fs, vs := develop(t,
		[]float64{0.01, 0.02},
		[][]bool{
			{true, true},
			{true, false},
		})
	sys, err := New(fs, Arch1OutOfM, vs...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	software := sys.PFD() // only fault 0 common: 0.01
	if math.Abs(software-0.01) > 1e-15 {
		t.Fatalf("software PFD = %v, want 0.01", software)
	}
	total, err := sys.PFDWithAdjudicator(0.001)
	if err != nil {
		t.Fatalf("PFDWithAdjudicator: %v", err)
	}
	want := 1 - (1-0.01)*(1-0.001)
	if math.Abs(total-want) > 1e-15 {
		t.Errorf("total PFD = %v, want %v", total, want)
	}
	// Perfect adjudicator reproduces the software PFD.
	total, err = sys.PFDWithAdjudicator(0)
	if err != nil {
		t.Fatalf("PFDWithAdjudicator(0): %v", err)
	}
	if math.Abs(total-software) > 1e-15 {
		t.Errorf("perfect adjudicator total %v != software %v", total, software)
	}
	for _, bad := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := sys.PFDWithAdjudicator(bad); err == nil {
			t.Errorf("PFDWithAdjudicator(%v) succeeded, want error", bad)
		}
	}
}

func TestAdjudicatorFloor(t *testing.T) {
	t.Parallel()

	floor, err := AdjudicatorFloor(0.0005)
	if err != nil {
		t.Fatalf("AdjudicatorFloor: %v", err)
	}
	if floor != 0.0005 {
		t.Errorf("floor = %v, want 0.0005", floor)
	}
	if _, err := AdjudicatorFloor(2); err == nil {
		t.Error("invalid PFD succeeded, want error")
	}
}

// TestDiversityWorthwhileSaturation: with a perfect adjudicator, diversity
// delivers its software gain; with a poor adjudicator, the total gain
// saturates and diversity stops being worthwhile.
func TestDiversityWorthwhileSaturation(t *testing.T) {
	t.Parallel()

	const (
		single = 1e-3
		pair   = 1e-5 // software-only gain 100x
	)
	ok, err := DiversityWorthwhile(single, pair, 0, 50)
	if err != nil {
		t.Fatalf("DiversityWorthwhile: %v", err)
	}
	if !ok {
		t.Error("perfect adjudicator: 100x software gain should exceed 50x")
	}
	// Adjudicator at 1e-3 dominates both arrangements: total gain ~2x.
	ok, err = DiversityWorthwhile(single, pair, 1e-3, 50)
	if err != nil {
		t.Fatalf("DiversityWorthwhile: %v", err)
	}
	if ok {
		t.Error("poor adjudicator: gain should saturate below 50x")
	}
	// But a modest 1.5x threshold is still met.
	ok, err = DiversityWorthwhile(single, pair, 1e-3, 1.5)
	if err != nil {
		t.Fatalf("DiversityWorthwhile: %v", err)
	}
	if !ok {
		t.Error("poor adjudicator: ~2x gain should exceed 1.5x")
	}
}

func TestDiversityWorthwhileValidation(t *testing.T) {
	t.Parallel()

	if _, err := DiversityWorthwhile(-1, 0.1, 0.1, 2); err == nil {
		t.Error("invalid single PFD succeeded, want error")
	}
	if _, err := DiversityWorthwhile(0.1, 2, 0.1, 2); err == nil {
		t.Error("invalid pair PFD succeeded, want error")
	}
	if _, err := DiversityWorthwhile(0.1, 0.01, math.NaN(), 2); err == nil {
		t.Error("NaN adjudicator succeeded, want error")
	}
	if _, err := DiversityWorthwhile(0.1, 0.01, 0.001, 0); err == nil {
		t.Error("zero gain threshold succeeded, want error")
	}
	// Zero total pair PFD: trivially worthwhile.
	ok, err := DiversityWorthwhile(0.5, 0, 0, 1000)
	if err != nil {
		t.Fatalf("DiversityWorthwhile: %v", err)
	}
	if !ok {
		t.Error("zero pair PFD should be trivially worthwhile")
	}
}
