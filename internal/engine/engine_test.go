package engine

import (
	"context"
	"encoding/json"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"diversity/internal/devsim"
	"diversity/internal/faultmodel"
	"diversity/internal/montecarlo"
)

func testModel(t *testing.T) ModelSpec {
	t.Helper()
	return ModelSpec{
		Faults: []faultmodel.Fault{
			{P: 0.3, Q: 0.05},
			{P: 0.2, Q: 0.1},
			{P: 0.05, Q: 0.02},
		},
		Name: "unit",
	}
}

// TestRunCancellation is the headline cancellation check: a 10M-rep job is
// cancelled from its first progress report and must stop well before
// completion, returning ctx.Err().
func TestRunCancellation(t *testing.T) {
	t.Parallel()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	eng := New(Options{Progress: func(Progress) { once.Do(cancel) }})
	job := NewMonteCarloJob(MonteCarloSpec{
		Model:    ModelSpec{Scenario: "commercial-grade", ScenarioSeed: 1},
		Versions: 2,
		Reps:     10_000_000,
		Seed:     1,
	})
	start := time.Now()
	_, err := eng.Run(ctx, job)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run under cancelled context: err = %v, want context.Canceled", err)
	}
	// The full 10M-rep run takes on the order of minutes; a cancelled one
	// only finishes in-flight worker chunks.
	if elapsed > 15*time.Second {
		t.Errorf("cancelled run took %v; cancellation is not prompt", elapsed)
	}
}

func TestRunPreCancelled(t *testing.T) {
	t.Parallel()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := New(Options{}).Run(ctx, NewAnalyticJob(AnalyticSpec{Model: testModel(t), K: 1, Confidence: 0.99}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled Run: err = %v, want context.Canceled", err)
	}
}

// TestCacheHit checks the caching contract: the second identical job is
// served from the cache with zero new replications, and a job differing
// only in seed misses.
func TestCacheHit(t *testing.T) {
	t.Parallel()

	var progressCalls atomic.Int64
	eng := New(Options{Progress: func(Progress) { progressCalls.Add(1) }})
	spec := MonteCarloSpec{
		Model:    ModelSpec{Scenario: "safety-grade", ScenarioSeed: 3},
		Versions: 2,
		Reps:     20_000,
		Workers:  2,
		Seed:     5,
	}
	first, err := eng.Run(context.Background(), NewMonteCarloJob(spec))
	if err != nil {
		t.Fatalf("first Run: %v", err)
	}
	if first.FromCache {
		t.Error("first run reported FromCache")
	}
	if progressCalls.Load() == 0 {
		t.Error("first run reported no progress")
	}

	before := progressCalls.Load()
	second, err := eng.Run(context.Background(), NewMonteCarloJob(spec))
	if err != nil {
		t.Fatalf("second Run: %v", err)
	}
	if !second.FromCache {
		t.Error("identical job was recomputed, want cache hit")
	}
	if got := progressCalls.Load(); got != before {
		t.Errorf("cache hit performed replications: %d progress reports after the first run", got-before)
	}
	if second.MonteCarlo != first.MonteCarlo {
		t.Error("cache hit returned a different result payload")
	}
	if second.Hash != first.Hash {
		t.Errorf("hashes differ across identical jobs: %s vs %s", second.Hash, first.Hash)
	}

	seeded := spec
	seeded.Seed++
	third, err := eng.Run(context.Background(), NewMonteCarloJob(seeded))
	if err != nil {
		t.Fatalf("third Run: %v", err)
	}
	if third.FromCache {
		t.Error("job differing only in seed hit the cache")
	}
	if third.Hash == first.Hash {
		t.Error("job differing only in seed hashed identically")
	}
	if progressCalls.Load() == before {
		t.Error("seed-differing job performed no replications")
	}
}

func TestCacheDisabled(t *testing.T) {
	t.Parallel()

	eng := New(Options{DisableCache: true})
	spec := MonteCarloSpec{Model: testModel(t), Versions: 2, Reps: 2_000, Workers: 1, Seed: 1}
	for i := 0; i < 2; i++ {
		res, err := eng.Run(context.Background(), NewMonteCarloJob(spec))
		if err != nil {
			t.Fatalf("Run %d: %v", i, err)
		}
		if res.FromCache {
			t.Errorf("run %d served from cache with caching disabled", i)
		}
	}
}

// TestEngineMatchesDirectRun checks bit-identical equivalence with the
// pre-engine execution path: for a fixed seed the engine's populations
// equal montecarlo.Run's exactly.
func TestEngineMatchesDirectRun(t *testing.T) {
	t.Parallel()

	model := testModel(t)
	fs, err := faultmodel.New(model.Faults)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	direct, err := montecarlo.Run(montecarlo.Config{
		Process:  devsim.NewIndependentProcess(fs),
		Versions: 2,
		Reps:     20_000,
		Workers:  4,
		Seed:     9,
	})
	if err != nil {
		t.Fatalf("montecarlo.Run: %v", err)
	}
	res, err := New(Options{}).Run(context.Background(), NewMonteCarloJob(MonteCarloSpec{
		Model:    model,
		Versions: 2,
		Reps:     20_000,
		Workers:  4,
		Seed:     9,
	}))
	if err != nil {
		t.Fatalf("engine Run: %v", err)
	}
	mc := res.MonteCarlo
	if mc.Reps != direct.Reps ||
		mc.VersionFaultFree != direct.VersionFaultFree ||
		mc.SystemFaultFree != direct.SystemFaultFree {
		t.Fatalf("engine counts differ: %+v vs %+v", mc, direct)
	}
	for i := range direct.VersionPFD {
		if mc.VersionPFD[i] != direct.VersionPFD[i] || mc.SystemPFD[i] != direct.SystemPFD[i] {
			t.Fatalf("replication %d differs: (%v, %v) vs (%v, %v)",
				i, mc.VersionPFD[i], mc.SystemPFD[i], direct.VersionPFD[i], direct.SystemPFD[i])
		}
	}
}

func TestRareEventJob(t *testing.T) {
	t.Parallel()

	model := ModelSpec{
		Faults: []faultmodel.Fault{{P: 0.003, Q: 0.001}, {P: 0.002, Q: 0.002}},
		Name:   "rare",
	}
	res, err := New(Options{}).Run(context.Background(), NewRareEventJob(RareEventSpec{
		Model: model, Versions: 2, Reps: 20_000, Seed: 3,
	}))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	fs, _, err := model.Resolve()
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	// TiltTarget 0 normalises to the 0.3 default.
	want, err := montecarlo.EstimateRareSystemFault(fs, 2, 20_000, 3, 0.3)
	if err != nil {
		t.Fatalf("EstimateRareSystemFault: %v", err)
	}
	if res.RareEvent.ImportanceSampling != want {
		t.Errorf("importance-sampling estimate differs: %+v vs %+v", res.RareEvent.ImportanceSampling, want)
	}
	truth, err := fs.PAnyFault(2)
	if err != nil {
		t.Fatalf("PAnyFault: %v", err)
	}
	if res.RareEvent.ClosedForm != truth {
		t.Errorf("closed form = %v, want %v", res.RareEvent.ClosedForm, truth)
	}
}

func TestExperimentsJob(t *testing.T) {
	t.Parallel()

	var stages []string
	eng := New(Options{Progress: func(p Progress) { stages = append(stages, p.Stage) }})
	res, err := eng.Run(context.Background(), NewExperimentsJob(ExperimentsSpec{
		IDs: []string{"E02", "E03"}, Seed: 1, Quick: true,
	}))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Experiments) != 2 || res.Experiments[0].ID != "E02" || res.Experiments[1].ID != "E03" {
		t.Fatalf("unexpected suite results: %+v", res.Experiments)
	}
	sawE02 := false
	for _, s := range stages {
		if s == "E02" {
			sawE02 = true
		}
	}
	if !sawE02 {
		t.Errorf("progress stages %v missing experiment ID", stages)
	}

	again, err := eng.Run(context.Background(), NewExperimentsJob(ExperimentsSpec{
		IDs: []string{"E02", "E03"}, Seed: 1, Quick: true,
	}))
	if err != nil {
		t.Fatalf("second Run: %v", err)
	}
	if !again.FromCache {
		t.Error("identical suite job missed the cache")
	}
}

func TestAnalyticJob(t *testing.T) {
	t.Parallel()

	model := testModel(t)
	res, err := New(Options{}).Run(context.Background(), NewAnalyticJob(AnalyticSpec{
		Model: model, K: 1.5, Confidence: 0.99,
	}))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	fs, _, err := model.Resolve()
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	gain, err := fs.Gain(1.5)
	if err != nil {
		t.Fatalf("Gain: %v", err)
	}
	if res.Analytic.Gain != gain {
		t.Errorf("gain report differs: %+v vs %+v", res.Analytic.Gain, gain)
	}
	if !res.Analytic.HasRiskRatio {
		t.Error("risk ratio missing for a faultable model")
	}
	if len(res.Analytic.Bounds) != 2 || !res.Analytic.Bounds[0].HasExact {
		t.Errorf("confidence bounds incomplete: %+v", res.Analytic.Bounds)
	}
}

// TestHashNormalisation checks that derived defaults do not split the
// cache key space.
func TestHashNormalisation(t *testing.T) {
	t.Parallel()

	model := testModel(t)
	base := MonteCarloSpec{Model: model, Versions: 2, Reps: 1 << 30, Seed: 1}
	explicit := base
	explicit.Workers = runtime.GOMAXPROCS(0)
	explicit.Arch = "1oom"
	h1, err := NewMonteCarloJob(base).Hash()
	if err != nil {
		t.Fatalf("Hash: %v", err)
	}
	h2, err := NewMonteCarloJob(explicit).Hash()
	if err != nil {
		t.Fatalf("Hash: %v", err)
	}
	if h1 != h2 {
		t.Errorf("defaulted and explicit specs hash differently: %s vs %s", h1, h2)
	}

	tilt0, err := NewRareEventJob(RareEventSpec{Model: model, Versions: 2, Reps: 100, Seed: 1}).Hash()
	if err != nil {
		t.Fatalf("Hash: %v", err)
	}
	tilt3, err := NewRareEventJob(RareEventSpec{Model: model, Versions: 2, Reps: 100, Seed: 1, TiltTarget: 0.3}).Hash()
	if err != nil {
		t.Fatalf("Hash: %v", err)
	}
	if tilt0 != tilt3 {
		t.Error("default tilt target and explicit 0.3 hash differently")
	}

	// Majority needs a pool of at least 3, so the architecture comparison
	// runs at a fixed valid pool size: only the voting rule differs.
	base3 := base
	base3.Versions = 3
	h1oom, err := NewMonteCarloJob(base3).Hash()
	if err != nil {
		t.Fatalf("Hash: %v", err)
	}
	arch := base3
	arch.Arch = "majority"
	h3, err := NewMonteCarloJob(arch).Hash()
	if err != nil {
		t.Fatalf("Hash: %v", err)
	}
	if h3 == h1oom {
		t.Error("different architectures hash identically")
	}
}

// TestJobJSONRoundTrip checks that a job survives JSON encoding with its
// hash intact — the property persisted job queues will rely on.
func TestJobJSONRoundTrip(t *testing.T) {
	t.Parallel()

	job := NewMonteCarloJob(MonteCarloSpec{
		Model:       ModelSpec{Scenario: "many-small-faults", ScenarioSeed: 7},
		Versions:    3,
		Arch:        "majority",
		Reps:        5_000,
		Workers:     2,
		Seed:        11,
		Correlation: 0.2,
		Boost:       3,
	})
	doc, err := json.Marshal(job)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var decoded Job
	if err := json.Unmarshal(doc, &decoded); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	h1, err := job.Hash()
	if err != nil {
		t.Fatalf("Hash: %v", err)
	}
	h2, err := decoded.Hash()
	if err != nil {
		t.Fatalf("Hash: %v", err)
	}
	if h1 != h2 {
		t.Errorf("hash changed across JSON round trip: %s vs %s", h1, h2)
	}
}

func TestJobValidation(t *testing.T) {
	t.Parallel()

	model := testModel(t)
	cases := []struct {
		name string
		job  Job
	}{
		{"no spec", Job{Kind: JobMonteCarlo}},
		{"kind/spec mismatch", Job{Kind: JobMonteCarlo, Analytic: &AnalyticSpec{Model: model, K: 1, Confidence: 0.9}}},
		{"two specs", Job{Kind: JobMonteCarlo, MonteCarlo: &MonteCarloSpec{Model: model, Versions: 2, Reps: 10}, Analytic: &AnalyticSpec{Model: model}}},
		{"unknown kind", Job{Kind: "bogus", Analytic: &AnalyticSpec{Model: model, K: 1, Confidence: 0.9}}},
		{"zero reps", NewMonteCarloJob(MonteCarloSpec{Model: model, Versions: 2, Reps: 0, Seed: 1})},
		{"negative workers", NewMonteCarloJob(MonteCarloSpec{Model: model, Versions: 2, Reps: 10, Workers: -1, Seed: 1})},
		{"zero versions", NewMonteCarloJob(MonteCarloSpec{Model: model, Versions: 0, Reps: 10, Seed: 1})},
		{"bad arch", NewMonteCarloJob(MonteCarloSpec{Model: model, Versions: 2, Reps: 10, Arch: "bogus", Seed: 1})},
		{"bad correlation", NewMonteCarloJob(MonteCarloSpec{Model: model, Versions: 2, Reps: 10, Correlation: 2, Seed: 1})},
		{"empty model", NewMonteCarloJob(MonteCarloSpec{Versions: 2, Reps: 10, Seed: 1})},
		{"model with scenario and faults", NewMonteCarloJob(MonteCarloSpec{Model: ModelSpec{Scenario: "safety-grade", Faults: model.Faults}, Versions: 2, Reps: 10, Seed: 1})},
		{"rare reps below two", NewRareEventJob(RareEventSpec{Model: model, Versions: 2, Reps: 1, Seed: 1})},
		{"rare tilt at one", NewRareEventJob(RareEventSpec{Model: model, Versions: 2, Reps: 10, Seed: 1, TiltTarget: 1})},
		{"negative k", NewAnalyticJob(AnalyticSpec{Model: model, K: -1, Confidence: 0.9})},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			if err := tc.job.Validate(); err == nil {
				t.Errorf("Validate(%+v) succeeded, want error", tc.job)
			}
			if _, err := New(Options{}).Run(context.Background(), tc.job); err == nil {
				t.Errorf("Run accepted invalid job %+v", tc.job)
			}
		})
	}
}

func TestUnknownScenarioFailsRun(t *testing.T) {
	t.Parallel()

	_, err := New(Options{}).Run(context.Background(), NewMonteCarloJob(MonteCarloSpec{
		Model:    ModelSpec{Scenario: "bogus"},
		Versions: 2,
		Reps:     10,
		Seed:     1,
	}))
	if err == nil {
		t.Fatal("unknown scenario succeeded, want error")
	}
}

// TestConcurrentRuns hammers one engine from many goroutines to exercise
// the cache under the race detector.
func TestConcurrentRuns(t *testing.T) {
	t.Parallel()

	eng := New(Options{CacheSize: 4})
	model := testModel(t)
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for i := 0; i < 16; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := eng.Run(context.Background(), NewMonteCarloJob(MonteCarloSpec{
				Model:    model,
				Versions: 2,
				Reps:     2_000,
				Workers:  1,
				Seed:     uint64(i % 4),
			}))
			errs[i] = err
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("concurrent run %d: %v", i, err)
		}
	}
}
