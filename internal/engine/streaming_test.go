package engine

import (
	"context"
	"strings"
	"testing"
)

// TestStreamingHashAndEncoding pins the cache-key contract of the
// Streaming flag: a buffered spec encodes without the field (so hashes of
// pre-existing jobs are unchanged by its introduction), and flipping the
// flag changes the hash.
func TestStreamingHashAndEncoding(t *testing.T) {
	t.Parallel()

	spec := MonteCarloSpec{Model: testModel(t), Versions: 2, Reps: 1000, Workers: 1, Seed: 1}
	buffered := NewMonteCarloJob(spec)
	doc, err := buffered.CanonicalJSON()
	if err != nil {
		t.Fatalf("CanonicalJSON: %v", err)
	}
	if strings.Contains(string(doc), "streaming") {
		t.Errorf("buffered job encodes a streaming key: %s", doc)
	}
	spec.Streaming = true
	streaming := NewMonteCarloJob(spec)
	sdoc, err := streaming.CanonicalJSON()
	if err != nil {
		t.Fatalf("CanonicalJSON (streaming): %v", err)
	}
	if !strings.Contains(string(sdoc), `"streaming":true`) {
		t.Errorf("streaming job does not encode the flag: %s", sdoc)
	}
	bh, err := buffered.Hash()
	if err != nil {
		t.Fatalf("Hash: %v", err)
	}
	sh, err := streaming.Hash()
	if err != nil {
		t.Fatalf("Hash (streaming): %v", err)
	}
	if bh == sh {
		t.Error("buffered and streaming jobs hashed identically; the cache would serve the wrong result shape")
	}

	espec := ExperimentsSpec{IDs: []string{"E01"}, Seed: 1, Quick: true}
	eb := NewExperimentsJob(espec)
	espec.Streaming = true
	es := NewExperimentsJob(espec)
	ebh, err := eb.Hash()
	if err != nil {
		t.Fatalf("experiments Hash: %v", err)
	}
	esh, err := es.Hash()
	if err != nil {
		t.Fatalf("experiments Hash (streaming): %v", err)
	}
	if ebh == esh {
		t.Error("experiments jobs differing only in Streaming hashed identically")
	}
}

// TestStreamingCacheMiss runs the same Monte-Carlo parameters buffered and
// streaming through one engine: the mode flip must miss the cache, and the
// two results must describe the same sampled population.
func TestStreamingCacheMiss(t *testing.T) {
	t.Parallel()

	eng := New(Options{})
	spec := MonteCarloSpec{Model: testModel(t), Versions: 2, Reps: 4000, Workers: 2, Seed: 9}
	buffered, err := eng.Run(context.Background(), NewMonteCarloJob(spec))
	if err != nil {
		t.Fatalf("buffered Run: %v", err)
	}
	spec.Streaming = true
	streaming, err := eng.Run(context.Background(), NewMonteCarloJob(spec))
	if err != nil {
		t.Fatalf("streaming Run: %v", err)
	}
	if streaming.FromCache {
		t.Fatal("streaming job was served the buffered job's cached result")
	}
	if streaming.MonteCarlo.VersionAgg == nil || streaming.MonteCarlo.VersionPFD != nil {
		t.Fatal("streaming job did not produce a streaming-shaped result")
	}

	bsum, err := buffered.MonteCarlo.SystemSummary()
	if err != nil {
		t.Fatalf("buffered SystemSummary: %v", err)
	}
	ssum, err := streaming.MonteCarlo.SystemSummary()
	if err != nil {
		t.Fatalf("streaming SystemSummary: %v", err)
	}
	if bsum.N != ssum.N || bsum.Min != ssum.Min || bsum.Max != ssum.Max {
		t.Errorf("population shapes diverged: buffered %+v, streaming %+v", bsum, ssum)
	}
	if diff := bsum.Mean - ssum.Mean; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("means diverged between modes: %v vs %v", bsum.Mean, ssum.Mean)
	}

	// Repeating the streaming job must now hit the cache.
	again, err := eng.Run(context.Background(), NewMonteCarloJob(spec))
	if err != nil {
		t.Fatalf("repeated streaming Run: %v", err)
	}
	if !again.FromCache {
		t.Error("identical streaming job was recomputed, want cache hit")
	}
}
