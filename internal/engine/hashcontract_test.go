package engine

import (
	"testing"

	"diversity/internal/faultmodel"
)

// legacySpecs enumerates job specs exactly as a pre-N-version client would
// have written them: two-version systems with the legacy Arch field (or its
// default), no adjudicator. Their canonical hashes — and hence cache keys
// and job-<hash16> IDs — are pinned below; the N-version generalisation
// must never move them, or every persisted job ID and warm cache entry
// from an older client silently misses.
func legacySpecs() map[string]Job {
	inline := []faultmodel.Fault{{P: 0.3, Q: 0.05}, {P: 0.2, Q: 0.08}}
	return map[string]Job{
		"mc-scenario-default-arch": NewMonteCarloJob(MonteCarloSpec{
			Model:    ModelSpec{Scenario: "commercial-grade", ScenarioSeed: 1},
			Versions: 2, Reps: 200000, Workers: 4, Seed: 1,
		}),
		"mc-majority": NewMonteCarloJob(MonteCarloSpec{
			Model:    ModelSpec{Scenario: "safety-grade", ScenarioSeed: 1},
			Versions: 3, Arch: "majority", Reps: 50000, Workers: 2, Seed: 7,
		}),
		"mc-inline-stream-sparse": NewMonteCarloJob(MonteCarloSpec{
			Model:    ModelSpec{Faults: inline, Name: "inline"},
			Versions: 2, Reps: 10000, Workers: 1, Seed: 3,
			Streaming: true, Sparse: true,
		}),
		"rare-event": NewRareEventJob(RareEventSpec{
			Model:    ModelSpec{Scenario: "safety-grade", ScenarioSeed: 2},
			Versions: 2, Reps: 100000, Seed: 5,
		}),
		"experiments": NewExperimentsJob(ExperimentsSpec{
			IDs: []string{"E19"}, Seed: 1, Quick: true,
		}),
		"analytic": NewAnalyticJob(AnalyticSpec{
			Model: ModelSpec{Scenario: "many-small-faults", ScenarioSeed: 1},
			K:     1.5, Confidence: 0.99,
		}),
	}
}

// legacyHashes pins the canonical hash of each legacy spec as computed
// before the adjudicator refactor (PR 6). Regenerate deliberately — only
// with a hashDomain bump — via: go test ./internal/engine -run
// TestLegacySpecHashContract -v (the failure message prints got hashes).
var legacyHashes = map[string]string{
	"mc-scenario-default-arch": "662cd2187008ccdfa129394362bd43a9b1cf624774bbbed0c534358a014358d0",
	"mc-majority":              "c62592657dd9e1d62dfb9ae73c2c93ad2269747d813c7ffd7f097714735b5b40",
	"mc-inline-stream-sparse":  "16bd864d20dd27111eacf92ee15e6b3d96ec5ad563af3d6efdbc8f4cbe25d1f1",
	"rare-event":               "14bd24e7f3eb92eb953ee298f169425162dfd151bf1f46b160378c8910b8ba3b",
	"experiments":              "2004916be9229de8e5e1648bfad6bf73d616be406365084c0b5a53a7957a17bf",
	"analytic":                 "262341d4761f57a12b268e24d1c4db0fb599c1cb02857dddb7036b9ee45dc967",
}

// TestLegacySpecHashContract proves that pre-refactor 1oo2 (and legacy
// Arch-field) specs hash — and therefore cache-key and job-ID — identically
// after the N-version generalisation.
func TestLegacySpecHashContract(t *testing.T) {
	for name, job := range legacySpecs() {
		got, err := job.Hash()
		if err != nil {
			t.Errorf("%s: Hash: %v", name, err)
			continue
		}
		if want := legacyHashes[name]; got != want {
			t.Errorf("%s: hash drifted:\n got  %s\n want %s", name, got, want)
		}
	}
}

// TestBatchWidthHashContract proves the batchWidth field's hash rules:
// unset, 0, and 1 all hash identically to the legacy spec (width 1 is
// the same computation as off, and omitempty keeps the legacy document
// byte-identical), while an active width >= 2 — which draws a different
// variate sequence — hashes differently.
func TestBatchWidthHashContract(t *testing.T) {
	for name, base := range legacySpecs() {
		withWidth := func(j Job, w int) Job {
			switch j.Kind {
			case JobMonteCarlo:
				spec := *j.MonteCarlo
				spec.BatchWidth = w
				j.MonteCarlo = &spec
			case JobRareEvent:
				spec := *j.RareEvent
				spec.BatchWidth = w
				j.RareEvent = &spec
			case JobExperiments:
				spec := *j.Experiments
				spec.BatchWidth = w
				j.Experiments = &spec
			}
			return j
		}
		legacy := legacyHashes[name]
		for _, w := range []int{0, 1} {
			got, err := withWidth(base, w).Hash()
			if err != nil {
				t.Fatalf("%s width %d: Hash: %v", name, w, err)
			}
			if got != legacy {
				t.Errorf("%s: BatchWidth %d moved the legacy hash:\n got  %s\n want %s", name, w, got, legacy)
			}
		}
		if base.Kind == JobAnalytic {
			continue // analytic jobs have no batch width
		}
		got, err := withWidth(base, 64).Hash()
		if err != nil {
			t.Fatalf("%s width 64: Hash: %v", name, err)
		}
		if got == legacy {
			t.Errorf("%s: BatchWidth 64 did not change the hash — batched results would poison the dense cache", name)
		}
	}
}

// TestBatchWidthValidation: the spec-level bounds are enforced before
// any work or cache access.
func TestBatchWidthValidation(t *testing.T) {
	for _, w := range []int{-1, maxBatchWidth + 1} {
		job := NewMonteCarloJob(MonteCarloSpec{
			Model:    ModelSpec{Scenario: "commercial-grade", ScenarioSeed: 1},
			Versions: 2, Reps: 100, Seed: 1, BatchWidth: w,
		})
		if err := job.Validate(); err == nil {
			t.Errorf("montecarlo spec accepted batch width %d", w)
		}
		rare := NewRareEventJob(RareEventSpec{
			Model:    ModelSpec{Scenario: "safety-grade", ScenarioSeed: 1},
			Versions: 2, Reps: 100, Seed: 1, BatchWidth: w,
		})
		if err := rare.Validate(); err == nil {
			t.Errorf("rare-event spec accepted batch width %d", w)
		}
		exp := NewExperimentsJob(ExperimentsSpec{Seed: 1, Quick: true, BatchWidth: w})
		if err := exp.Validate(); err == nil {
			t.Errorf("experiments spec accepted batch width %d", w)
		}
	}
}
