package engine

import (
	"context"
	"strings"
	"testing"

	"diversity/internal/telemetry"
)

// TestTelemetryCacheCounters asserts the cache hit/miss counters match
// observed Run behaviour: a first run misses, an identical second run
// hits (and is served FromCache), and a different job misses again.
func TestTelemetryCacheCounters(t *testing.T) {
	t.Parallel()

	reg := telemetry.NewRegistry()
	eng := New(Options{Telemetry: reg})
	job := NewMonteCarloJob(MonteCarloSpec{Model: testModel(t), Versions: 2, Reps: 2000, Seed: 7})

	first, err := eng.Run(context.Background(), job)
	if err != nil {
		t.Fatalf("first Run: %v", err)
	}
	if first.FromCache {
		t.Fatal("first run served from cache")
	}
	second, err := eng.Run(context.Background(), job)
	if err != nil {
		t.Fatalf("second Run: %v", err)
	}
	if !second.FromCache {
		t.Fatal("second identical run not served from cache")
	}
	other := NewMonteCarloJob(MonteCarloSpec{Model: testModel(t), Versions: 2, Reps: 2000, Seed: 8})
	if _, err := eng.Run(context.Background(), other); err != nil {
		t.Fatalf("third Run: %v", err)
	}

	if got := reg.Counter("engine.cache.hits").Value(); got != 1 {
		t.Errorf("cache hits = %d, want 1", got)
	}
	if got := reg.Counter("engine.cache.misses").Value(); got != 2 {
		t.Errorf("cache misses = %d, want 2", got)
	}

	snap := reg.Snapshot()
	durations := snap.Histograms["engine.job_duration_seconds.montecarlo"]
	if durations.Count != 2 {
		t.Errorf("job duration observations = %d, want 2 (cache hits record no duration)", durations.Count)
	}
	if qts := snap.Histograms["engine.queue_to_start_seconds"]; qts.Count != 2 {
		t.Errorf("queue-to-start observations = %d, want 2", qts.Count)
	}
	if got := reg.Counter("montecarlo.replications_total").Value(); got != 4000 {
		t.Errorf("replications_total = %d, want 4000 (two executed runs of 2000)", got)
	}
	if rps := snap.Gauges["montecarlo.replications_per_second"]; rps <= 0 {
		t.Errorf("replications_per_second = %v, want > 0", rps)
	}
}

// TestTelemetryEvictionCounter fills a 1-entry cache with two distinct
// jobs and asserts exactly one eviction is counted.
func TestTelemetryEvictionCounter(t *testing.T) {
	t.Parallel()

	reg := telemetry.NewRegistry()
	eng := New(Options{CacheSize: 1, Telemetry: reg})
	for seed := uint64(1); seed <= 2; seed++ {
		job := NewAnalyticJob(AnalyticSpec{Model: ModelSpec{Scenario: "commercial-grade", ScenarioSeed: seed}, K: 1, Confidence: 0.99})
		if _, err := eng.Run(context.Background(), job); err != nil {
			t.Fatalf("Run(seed %d): %v", seed, err)
		}
	}
	if got := reg.Counter("engine.cache.evictions").Value(); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
}

// TestTelemetryTraceShape runs one Monte-Carlo job and asserts the
// recorded trace has the documented span hierarchy: job → stage →
// worker shard.
func TestTelemetryTraceShape(t *testing.T) {
	t.Parallel()

	reg := telemetry.NewRegistry()
	eng := New(Options{Telemetry: reg})
	job := NewMonteCarloJob(MonteCarloSpec{Model: testModel(t), Versions: 2, Reps: 2000, Seed: 9, Workers: 2})
	if _, err := eng.Run(context.Background(), job); err != nil {
		t.Fatalf("Run: %v", err)
	}
	runs := reg.Snapshot().Runs
	if len(runs) != 1 {
		t.Fatalf("recorded %d traces, want 1", len(runs))
	}
	root := runs[0].Root
	if root.Name != "job:montecarlo" {
		t.Errorf("root span = %q, want job:montecarlo", root.Name)
	}
	if !strings.HasPrefix(runs[0].ID, "run-") {
		t.Errorf("trace ID = %q, want run-…", runs[0].ID)
	}
	if len(root.Children) != 1 || root.Children[0].Name != "replications" {
		t.Fatalf("stage spans = %+v, want one replications span", root.Children)
	}
	shards := root.Children[0].Children
	if len(shards) != 2 {
		t.Fatalf("shard spans = %+v, want 2", shards)
	}
	for _, sp := range shards {
		if !strings.HasPrefix(sp.Name, "shard-") {
			t.Errorf("shard span named %q, want shard-…", sp.Name)
		}
	}
}

// TestRareProgressMonotonic asserts the satellite contract for
// rare-event progress: both estimator stages emit intermediate Done
// counts (not just a leading 0), Done never decreases within a stage,
// and each stage ends at Done == Total.
func TestRareProgressMonotonic(t *testing.T) {
	t.Parallel()

	perStage := make(map[string][]int)
	var order []string
	eng := New(Options{Progress: func(p Progress) {
		if len(order) == 0 || order[len(order)-1] != p.Stage {
			order = append(order, p.Stage)
		}
		perStage[p.Stage] = append(perStage[p.Stage], p.Done)
		if p.Total != 20000 {
			t.Errorf("stage %q reported Total %d, want 20000", p.Stage, p.Total)
		}
	}})
	// 20000 reps crosses the 8192-replication context-check boundary
	// twice, so each stage must report intermediate counts.
	job := NewRareEventJob(RareEventSpec{Model: testModel(t), Versions: 2, Reps: 20000, Seed: 5})
	if _, err := eng.Run(context.Background(), job); err != nil {
		t.Fatalf("Run: %v", err)
	}

	wantStages := []string{"importance sampling", "naive Monte Carlo"}
	if len(order) != len(wantStages) || order[0] != wantStages[0] || order[1] != wantStages[1] {
		t.Fatalf("stage order = %v, want %v", order, wantStages)
	}
	for _, stage := range wantStages {
		dones := perStage[stage]
		if len(dones) < 3 {
			t.Fatalf("stage %q reported %v, want at least first/intermediate/final counts", stage, dones)
		}
		for i := 1; i < len(dones); i++ {
			if dones[i] < dones[i-1] {
				t.Errorf("stage %q Done regressed: %v", stage, dones)
				break
			}
		}
		if dones[0] != 0 {
			t.Errorf("stage %q first Done = %d, want 0", stage, dones[0])
		}
		if last := dones[len(dones)-1]; last != 20000 {
			t.Errorf("stage %q final Done = %d, want 20000", stage, last)
		}
		intermediate := false
		for _, d := range dones {
			if d > 0 && d < 20000 {
				intermediate = true
			}
		}
		if !intermediate {
			t.Errorf("stage %q emitted no intermediate Done counts: %v", stage, dones)
		}
	}
}

// TestSetDefaultOptions asserts facade users can attach telemetry and
// progress to the shared default engine without constructing their own.
// Not parallel: it mutates process-global state (and restores it).
func TestSetDefaultOptions(t *testing.T) {
	defer SetDefaultOptions(Options{})

	reg := telemetry.NewRegistry()
	reports := 0
	SetDefaultOptions(Options{Telemetry: reg, Progress: func(Progress) { reports++ }})
	job := NewMonteCarloJob(MonteCarloSpec{Model: testModel(t), Versions: 2, Reps: 2000, Seed: 11})
	if _, err := Run(context.Background(), job); err != nil {
		t.Fatalf("Run through default engine: %v", err)
	}
	if reports == 0 {
		t.Error("progress hook attached via SetDefaultOptions never fired")
	}
	if got := reg.Counter("engine.cache.misses").Value(); got != 1 {
		t.Errorf("default engine recorded %d cache misses, want 1", got)
	}

	// Replacing the options discards the old cache: the same job misses
	// again on the fresh default engine.
	reg2 := telemetry.NewRegistry()
	SetDefaultOptions(Options{Telemetry: reg2})
	if _, err := Run(context.Background(), job); err != nil {
		t.Fatalf("Run after reconfiguration: %v", err)
	}
	if got := reg2.Counter("engine.cache.misses").Value(); got != 1 {
		t.Errorf("reconfigured default engine recorded %d cache misses, want 1 (cache must be fresh)", got)
	}
}
