package engine

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"diversity/internal/telemetry"
)

// TestRunIDFromContext checks the engine adopts a caller-supplied run ID
// for the whole observability surface: the result, the recorded trace,
// the flight-recorder events, and (via the context-aware logger) every
// log line.
func TestRunIDFromContext(t *testing.T) {
	t.Parallel()

	reg := telemetry.NewRegistry()
	var logBuf bytes.Buffer
	logger, err := telemetry.NewLogger(&logBuf, "info")
	if err != nil {
		t.Fatal(err)
	}
	eng := New(Options{Telemetry: reg, Logger: logger})

	const want = "req-e2e-0001"
	ctx := telemetry.ContextWithRunID(context.Background(), want)
	res, err := eng.Run(ctx, NewAnalyticJob(AnalyticSpec{Model: testModel(t), K: 1, Confidence: 0.99}))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.RunID != want {
		t.Errorf("Result.RunID = %q, want %q", res.RunID, want)
	}

	traces := reg.Traces()
	if len(traces) != 1 || traces[0].ID != want {
		t.Errorf("traces = %+v, want one trace with ID %q", traces, want)
	}

	events := reg.Events().Snapshot()
	if len(events) == 0 {
		t.Fatal("no flight-recorder events")
	}
	kinds := make(map[string]bool)
	for _, e := range events {
		kinds[e.Kind] = true
		if e.Run != want {
			t.Errorf("event %s carries run %q, want %q", e.Kind, e.Run, want)
		}
	}
	if !kinds["job.start"] || !kinds["job.finished"] {
		t.Errorf("event kinds = %v, want job.start and job.finished", kinds)
	}

	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		if !strings.Contains(line, "run="+want) {
			t.Errorf("log line missing run=%s: %q", want, line)
		}
	}
}

// TestRunIDGenerated checks a context without a run ID still yields a
// fresh correlated ID on the result and trace.
func TestRunIDGenerated(t *testing.T) {
	t.Parallel()

	reg := NewRegistryEngine(t)
	res, err := reg.eng.Run(context.Background(), NewAnalyticJob(AnalyticSpec{Model: testModel(t), K: 1, Confidence: 0.99}))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !strings.HasPrefix(res.RunID, "run-") {
		t.Errorf("generated RunID = %q, want run- prefix", res.RunID)
	}
	traces := reg.reg.Traces()
	if len(traces) != 1 || traces[0].ID != res.RunID {
		t.Errorf("trace ID = %+v, want %q", traces, res.RunID)
	}
}

type regEngine struct {
	reg *telemetry.Registry
	eng *Engine
}

func NewRegistryEngine(t *testing.T) regEngine {
	t.Helper()
	reg := telemetry.NewRegistry()
	return regEngine{reg: reg, eng: New(Options{Telemetry: reg})}
}

// TestCacheHitRunID checks a cache hit is attributed to the requesting
// run, not the run that originally computed the result.
func TestCacheHitRunID(t *testing.T) {
	t.Parallel()

	re := NewRegistryEngine(t)
	job := NewAnalyticJob(AnalyticSpec{Model: testModel(t), K: 1, Confidence: 0.99})

	first, err := re.eng.Run(telemetry.ContextWithRunID(context.Background(), "req-first"), job)
	if err != nil {
		t.Fatal(err)
	}
	second, err := re.eng.Run(telemetry.ContextWithRunID(context.Background(), "req-second"), job)
	if err != nil {
		t.Fatal(err)
	}
	if first.RunID != "req-first" || second.RunID != "req-second" {
		t.Errorf("run IDs = %q, %q; want req-first, req-second", first.RunID, second.RunID)
	}
	if !second.FromCache {
		t.Fatal("second run not served from cache")
	}
	var hit *telemetry.Event
	for _, e := range re.reg.Events().Snapshot() {
		if e.Kind == "job.cache_hit" {
			ev := e
			hit = &ev
		}
	}
	if hit == nil {
		t.Fatal("no job.cache_hit event recorded")
	}
	if hit.Run != "req-second" {
		t.Errorf("cache hit attributed to run %q, want req-second", hit.Run)
	}
}
