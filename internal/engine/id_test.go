package engine

import (
	"context"
	"strings"
	"sync"
	"testing"
)

func analyticTestJob() Job {
	return NewAnalyticJob(AnalyticSpec{
		Model:      ModelSpec{Scenario: "safety-grade", ScenarioSeed: 1},
		K:          2,
		Confidence: 0.99,
	})
}

func TestJobIDStableAndHashDerived(t *testing.T) {
	job := analyticTestJob()
	id, err := job.ID()
	if err != nil {
		t.Fatalf("ID: %v", err)
	}
	hash, err := job.Hash()
	if err != nil {
		t.Fatalf("Hash: %v", err)
	}
	if want := IDFromHash(hash); id != want {
		t.Fatalf("job ID %q does not match IDFromHash %q", id, want)
	}
	if !strings.HasPrefix(id, "job-") || len(id) != len("job-")+16 {
		t.Fatalf("job ID %q not of the form job-<16 hex digits>", id)
	}
	again, err := analyticTestJob().ID()
	if err != nil {
		t.Fatalf("ID: %v", err)
	}
	if again != id {
		t.Fatalf("identical specs got different IDs: %q vs %q", again, id)
	}
}

func TestResultCarriesIDThroughCache(t *testing.T) {
	eng := New(Options{})
	job := analyticTestJob()
	wantID, err := job.ID()
	if err != nil {
		t.Fatalf("ID: %v", err)
	}
	first, err := eng.Run(context.Background(), job)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if first.ID != wantID {
		t.Fatalf("computed result ID = %q, want %q", first.ID, wantID)
	}
	if first.FromCache {
		t.Fatal("first run unexpectedly served from cache")
	}
	second, err := eng.Run(context.Background(), job)
	if err != nil {
		t.Fatalf("Run (cached): %v", err)
	}
	if !second.FromCache {
		t.Fatal("second identical run was not served from cache")
	}
	if second.ID != wantID {
		t.Fatalf("cached result ID = %q, want %q", second.ID, wantID)
	}
}

// TestRunWithProgressFansOut checks that a per-run hook and the
// engine-wide hook both see every report of a run, and that a nil per-run
// hook leaves the engine-wide path intact.
func TestRunWithProgressFansOut(t *testing.T) {
	var mu sync.Mutex
	var global, perRun []Progress
	eng := New(Options{Progress: func(p Progress) {
		mu.Lock()
		global = append(global, p)
		mu.Unlock()
	}})
	job := NewMonteCarloJob(MonteCarloSpec{
		Model:    ModelSpec{Scenario: "safety-grade", ScenarioSeed: 1},
		Versions: 2,
		Reps:     2000,
		Workers:  2,
		Seed:     1,
	})
	if _, err := eng.RunWithProgress(context.Background(), job, func(p Progress) {
		mu.Lock()
		perRun = append(perRun, p)
		mu.Unlock()
	}); err != nil {
		t.Fatalf("RunWithProgress: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(perRun) == 0 {
		t.Fatal("per-run hook saw no progress reports")
	}
	if len(global) != len(perRun) {
		t.Fatalf("engine-wide hook saw %d reports, per-run hook %d; want identical fan-out", len(global), len(perRun))
	}
	for _, p := range perRun {
		if p.Stage != "replications" {
			t.Fatalf("unexpected stage %q", p.Stage)
		}
		if p.Total != 2000 {
			t.Fatalf("progress total = %d, want 2000", p.Total)
		}
	}
}
