package engine

import (
	"context"
	"math"
	"strings"
	"testing"
)

// TestSparseHashAndEncoding pins the cache-key contract of the Sparse
// flag on all three specs that carry it: a dense spec encodes without the
// field — so every job hash that existed before the flag's introduction
// is unchanged — and flipping the flag changes the hash.
func TestSparseHashAndEncoding(t *testing.T) {
	t.Parallel()

	mspec := MonteCarloSpec{Model: testModel(t), Versions: 2, Reps: 1000, Workers: 1, Seed: 1}
	dense := NewMonteCarloJob(mspec)
	doc, err := dense.CanonicalJSON()
	if err != nil {
		t.Fatalf("CanonicalJSON: %v", err)
	}
	if strings.Contains(string(doc), "sparse") {
		t.Errorf("dense job encodes a sparse key: %s", doc)
	}
	mspec.Sparse = true
	sparse := NewMonteCarloJob(mspec)
	sdoc, err := sparse.CanonicalJSON()
	if err != nil {
		t.Fatalf("CanonicalJSON (sparse): %v", err)
	}
	if !strings.Contains(string(sdoc), `"sparse":true`) {
		t.Errorf("sparse job does not encode the flag: %s", sdoc)
	}
	dh, err := dense.Hash()
	if err != nil {
		t.Fatalf("Hash: %v", err)
	}
	sh, err := sparse.Hash()
	if err != nil {
		t.Fatalf("Hash (sparse): %v", err)
	}
	if dh == sh {
		t.Error("dense and sparse jobs hashed identically; the cache would serve a different variate sequence's result")
	}

	rspec := RareEventSpec{Model: testModel(t), Versions: 2, Reps: 100, Seed: 1}
	rdense := NewRareEventJob(rspec)
	rspec.Sparse = true
	rsparse := NewRareEventJob(rspec)
	rdh, err := rdense.Hash()
	if err != nil {
		t.Fatalf("rare Hash: %v", err)
	}
	rsh, err := rsparse.Hash()
	if err != nil {
		t.Fatalf("rare Hash (sparse): %v", err)
	}
	if rdh == rsh {
		t.Error("rare-event jobs differing only in Sparse hashed identically")
	}

	espec := ExperimentsSpec{IDs: []string{"E01"}, Seed: 1, Quick: true}
	edense := NewExperimentsJob(espec)
	espec.Sparse = true
	esparse := NewExperimentsJob(espec)
	edh, err := edense.Hash()
	if err != nil {
		t.Fatalf("experiments Hash: %v", err)
	}
	esh, err := esparse.Hash()
	if err != nil {
		t.Fatalf("experiments Hash (sparse): %v", err)
	}
	if edh == esh {
		t.Error("experiments jobs differing only in Sparse hashed identically")
	}
}

// TestSparseMonteCarloJob runs the same Monte-Carlo parameters dense and
// sparse through one engine: the kernel flip must miss the cache, the
// sparse result must say the kernel ran, and the two populations must
// agree statistically (they draw different variate sequences).
func TestSparseMonteCarloJob(t *testing.T) {
	t.Parallel()

	eng := New(Options{})
	spec := MonteCarloSpec{Model: testModel(t), Versions: 2, Reps: 20000, Workers: 2, Seed: 9}
	dense, err := eng.Run(context.Background(), NewMonteCarloJob(spec))
	if err != nil {
		t.Fatalf("dense Run: %v", err)
	}
	spec.Sparse = true
	sparse, err := eng.Run(context.Background(), NewMonteCarloJob(spec))
	if err != nil {
		t.Fatalf("sparse Run: %v", err)
	}
	if sparse.FromCache {
		t.Fatal("sparse job was served the dense job's cached result")
	}
	if !sparse.MonteCarlo.Sparse {
		t.Error("sparse job result does not report the sparse kernel")
	}
	if dense.MonteCarlo.Sparse {
		t.Error("dense job result reports the sparse kernel")
	}
	dsum, err := dense.MonteCarlo.VersionSummary()
	if err != nil {
		t.Fatalf("dense VersionSummary: %v", err)
	}
	ssum, err := sparse.MonteCarlo.VersionSummary()
	if err != nil {
		t.Fatalf("sparse VersionSummary: %v", err)
	}
	se := math.Sqrt(dsum.StdDev*dsum.StdDev/float64(dsum.N) + ssum.StdDev*ssum.StdDev/float64(ssum.N))
	if diff := math.Abs(dsum.Mean - ssum.Mean); diff > 5*se+1e-15 {
		t.Errorf("version means diverged beyond Monte-Carlo error: dense %v, sparse %v", dsum.Mean, ssum.Mean)
	}
}

// TestSparseRareEventJob checks the flag reaches both rare-event
// estimators through the engine.
func TestSparseRareEventJob(t *testing.T) {
	t.Parallel()

	eng := New(Options{})
	res, err := eng.Run(context.Background(), NewRareEventJob(RareEventSpec{
		Model: testModel(t), Versions: 2, Reps: 20000, Seed: 3, Sparse: true,
	}))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	re := res.RareEvent
	if re.ImportanceSampling.Probability <= 0 {
		t.Error("sparse importance-sampling estimate is zero")
	}
	if diff := math.Abs(re.ImportanceSampling.Probability - re.ClosedForm); diff > 6*re.ImportanceSampling.StdErr+1e-9 {
		t.Errorf("sparse IS estimate %v far from closed form %v", re.ImportanceSampling.Probability, re.ClosedForm)
	}
}
