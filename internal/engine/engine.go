package engine

import (
	"context"
	"fmt"
	"sync"

	"diversity/internal/devsim"
	"diversity/internal/experiments"
	"diversity/internal/faultmodel"
	"diversity/internal/montecarlo"
)

// Progress is one progress report from a running job.
type Progress struct {
	// Stage identifies the phase: "replications" while Monte-Carlo
	// replications complete, an experiment ID while the suite runs, or an
	// estimator name during rare-event jobs.
	Stage string
	// Done and Total count units within the stage: replications for
	// simulation stages, experiments for suite runs.
	Done, Total int
}

// Options configure an Engine.
type Options struct {
	// CacheSize caps the number of cached results; values <= 0 select the
	// default of 128.
	CacheSize int
	// DisableCache turns result caching off entirely.
	DisableCache bool
	// Progress, when non-nil, receives progress reports. The engine
	// serialises calls, so the callback needs no locking of its own.
	Progress func(Progress)
}

// Engine executes jobs, caching results by canonical job hash.
type Engine struct {
	cache      *lruCache // nil when caching is disabled
	progressMu sync.Mutex
	progress   func(Progress)
}

// New returns an Engine with the given options.
func New(opts Options) *Engine {
	e := &Engine{progress: opts.Progress}
	if !opts.DisableCache {
		size := opts.CacheSize
		if size <= 0 {
			size = 128
		}
		e.cache = newLRUCache(size)
	}
	return e
}

var (
	defaultOnce   sync.Once
	defaultEngine *Engine
)

// Default returns the shared process-wide engine (default cache size, no
// progress hook). The facade's Run-style helpers route through it.
func Default() *Engine {
	defaultOnce.Do(func() { defaultEngine = New(Options{}) })
	return defaultEngine
}

// Run executes a job through the default engine.
func Run(ctx context.Context, job Job) (*Result, error) {
	return Default().Run(ctx, job)
}

// emit forwards a progress report to the configured hook, serialising
// concurrent reporters (Monte-Carlo workers report from their shards).
func (e *Engine) emit(p Progress) {
	if e.progress == nil {
		return
	}
	e.progressMu.Lock()
	defer e.progressMu.Unlock()
	e.progress(p)
}

// Result is the outcome of a job: a kind-discriminated envelope plus the
// resolved model. Results served from the cache are shared — treat every
// field as immutable.
type Result struct {
	// Kind echoes the job kind; Hash is the canonical job hash.
	Kind JobKind
	Hash string
	// FromCache reports that the result was served from the cache without
	// recomputation.
	FromCache bool
	// ModelName and FaultSet describe the resolved model (nil for
	// experiment-suite jobs, which sweep their own scenario populations).
	ModelName string
	FaultSet  *faultmodel.FaultSet
	// Exactly one of the following is set, matching Kind.
	MonteCarlo  *montecarlo.Result
	RareEvent   *RareEventResult
	Experiments []*experiments.Result
	Analytic    *AnalyticResult
}

// RareEventResult pairs the importance-sampled estimate with the naive
// baseline and the closed form it cross-checks.
type RareEventResult struct {
	ImportanceSampling montecarlo.RareEventEstimate
	Naive              montecarlo.RareEventEstimate
	// ClosedForm is the exact P(N_m > 0) = 1 - Π(1 - p_i^m).
	ClosedForm float64
}

// ConfidenceBound is one row of the analytic report's confidence table.
type ConfidenceBound struct {
	// Versions is the system size m the bound is for.
	Versions int
	// Bound is the normal-approximation bound at the requested level.
	Bound float64
	// ExactQuantile is the same level's quantile of the exact PFD
	// distribution; HasExact reports whether the fault universe was small
	// enough to enumerate it.
	ExactQuantile float64
	HasExact      bool
}

// AnalyticResult carries the assessor-facing quantities of an analytic
// job: everything the diversity CLI tabulates.
type AnalyticResult struct {
	// Gain holds the µ/σ moments and the formula (11)/(12) bounds at the
	// requested k.
	Gain faultmodel.GainReport
	// SigmaBoundFactor is sqrt(pmax(1+pmax)), equation (9).
	SigmaBoundFactor float64
	// RiskRatio is the equation-(10) ratio; HasRiskRatio is false when it
	// is undefined (no fault can occur).
	RiskRatio    float64
	HasRiskRatio bool
	// SuccessRatio is the footnote-5 ratio P(N2=0)/P(N1=0).
	SuccessRatio float64
	// Confidence echoes the requested level; Bounds holds the one- and
	// two-version rows.
	Confidence float64
	Bounds     []ConfidenceBound
}

// Run executes a job: validate, consult the cache, compute, store. It is
// the single execution path for every run mode; a cancelled context makes
// the underlying simulation loops return promptly with an error wrapping
// ctx.Err().
func (e *Engine) Run(ctx context.Context, job Job) (*Result, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	hash, err := job.Hash()
	if err != nil {
		return nil, err
	}
	if e.cache != nil {
		if cached, ok := e.cache.get(hash); ok {
			hit := *cached
			hit.FromCache = true
			return &hit, nil
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("engine: job cancelled before start: %w", err)
	}
	job = job.normalized()
	var res *Result
	switch job.Kind {
	case JobMonteCarlo:
		res, err = e.runMonteCarlo(ctx, job.MonteCarlo)
	case JobRareEvent:
		res, err = e.runRareEvent(ctx, job.RareEvent)
	case JobExperiments:
		res, err = e.runExperiments(ctx, job.Experiments)
	case JobAnalytic:
		res, err = e.runAnalytic(job.Analytic)
	default:
		err = fmt.Errorf("engine: unknown job kind %q", job.Kind)
	}
	if err != nil {
		return nil, err
	}
	res.Kind = job.Kind
	res.Hash = hash
	if e.cache != nil {
		e.cache.put(hash, res)
	}
	return res, nil
}

// RunConfig executes a raw Monte-Carlo configuration through the engine's
// execution core. The facade's MonteCarlo helpers delegate here: an opaque
// Process cannot be canonically hashed, so these runs get cancellation and
// progress reporting but bypass the cache.
func (e *Engine) RunConfig(ctx context.Context, cfg montecarlo.Config) (*montecarlo.Result, error) {
	if cfg.Progress == nil && e.progress != nil {
		cfg.Progress = func(done, total int) {
			e.emit(Progress{Stage: "replications", Done: done, Total: total})
		}
	}
	return montecarlo.RunContext(ctx, cfg)
}

func (e *Engine) runMonteCarlo(ctx context.Context, spec *MonteCarloSpec) (*Result, error) {
	fs, name, err := spec.Model.Resolve()
	if err != nil {
		return nil, err
	}
	arch, err := ParseArch(spec.Arch)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	var proc devsim.Process
	if spec.Correlation > 0 {
		proc, err = devsim.NewCommonCauseProcess(fs, spec.Correlation, spec.Boost)
		if err != nil {
			return nil, err
		}
	} else {
		proc = devsim.NewIndependentProcess(fs)
	}
	mc, err := montecarlo.RunContext(ctx, montecarlo.Config{
		Process:  proc,
		Versions: spec.Versions,
		Arch:     arch,
		Reps:     spec.Reps,
		Workers:  spec.Workers,
		Seed:     spec.Seed,
		Progress: func(done, total int) {
			e.emit(Progress{Stage: "replications", Done: done, Total: total})
		},
	})
	if err != nil {
		return nil, err
	}
	return &Result{ModelName: name, FaultSet: fs, MonteCarlo: mc}, nil
}

func (e *Engine) runRareEvent(ctx context.Context, spec *RareEventSpec) (*Result, error) {
	fs, name, err := spec.Model.Resolve()
	if err != nil {
		return nil, err
	}
	truth, err := fs.PAnyFault(spec.Versions)
	if err != nil {
		return nil, err
	}
	e.emit(Progress{Stage: "importance sampling", Done: 0, Total: spec.Reps})
	is, err := montecarlo.EstimateRareSystemFaultContext(ctx, fs, spec.Versions, spec.Reps, spec.Seed, spec.TiltTarget)
	if err != nil {
		return nil, err
	}
	e.emit(Progress{Stage: "naive Monte Carlo", Done: 0, Total: spec.Reps})
	naive, err := montecarlo.EstimateNaiveSystemFaultContext(ctx, fs, spec.Versions, spec.Reps, spec.Seed)
	if err != nil {
		return nil, err
	}
	return &Result{
		ModelName: name,
		FaultSet:  fs,
		RareEvent: &RareEventResult{ImportanceSampling: is, Naive: naive, ClosedForm: truth},
	}, nil
}

func (e *Engine) runExperiments(ctx context.Context, spec *ExperimentsSpec) (*Result, error) {
	cfg := experiments.Config{Seed: spec.Seed, Quick: spec.Quick}
	results := make([]*experiments.Result, 0, len(spec.IDs))
	for i, id := range spec.IDs {
		e.emit(Progress{Stage: id, Done: i, Total: len(spec.IDs)})
		res, err := experiments.RunContext(ctx, id, cfg)
		if err != nil {
			return nil, err
		}
		results = append(results, res)
	}
	e.emit(Progress{Stage: "done", Done: len(spec.IDs), Total: len(spec.IDs)})
	return &Result{Experiments: results}, nil
}

func (e *Engine) runAnalytic(spec *AnalyticSpec) (*Result, error) {
	fs, name, err := spec.Model.Resolve()
	if err != nil {
		return nil, err
	}
	gain, err := fs.Gain(spec.K)
	if err != nil {
		return nil, err
	}
	factor, err := faultmodel.SigmaBoundFactor(fs.PMax())
	if err != nil {
		return nil, err
	}
	ar := &AnalyticResult{
		Gain:             gain,
		SigmaBoundFactor: factor,
		SuccessRatio:     fs.SuccessRatio(),
		Confidence:       spec.Confidence,
	}
	if ratio, err := fs.RiskRatio(); err == nil {
		ar.RiskRatio, ar.HasRiskRatio = ratio, true
	}
	for _, m := range []int{1, 2} {
		bound, err := fs.ConfidenceBoundAt(m, spec.Confidence)
		if err != nil {
			return nil, err
		}
		cb := ConfidenceBound{Versions: m, Bound: bound}
		if fs.N() <= faultmodel.MaxExactFaults {
			dist, err := fs.ExactPFD(m)
			if err != nil {
				return nil, err
			}
			q, err := dist.Quantile(spec.Confidence)
			if err != nil {
				return nil, err
			}
			cb.ExactQuantile, cb.HasExact = q, true
		}
		ar.Bounds = append(ar.Bounds, cb)
	}
	return &Result{ModelName: name, FaultSet: fs, Analytic: ar}, nil
}
