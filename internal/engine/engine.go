package engine

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"diversity/internal/devsim"
	"diversity/internal/experiments"
	"diversity/internal/faultmodel"
	"diversity/internal/montecarlo"
	"diversity/internal/system"
	"diversity/internal/telemetry"
)

// Progress is one progress report from a running job.
type Progress struct {
	// Stage identifies the phase: "replications" while Monte-Carlo
	// replications complete, an experiment ID while the suite runs, or an
	// estimator name during rare-event jobs.
	Stage string
	// Done and Total count units within the stage: replications for
	// simulation stages, experiments for suite runs.
	Done, Total int
}

// Options configure an Engine.
type Options struct {
	// CacheSize caps the number of cached results; values <= 0 select the
	// default of 128.
	CacheSize int
	// DisableCache turns result caching off entirely.
	DisableCache bool
	// Progress, when non-nil, receives progress reports. The engine
	// serialises calls, so the callback needs no locking of its own.
	Progress func(Progress)
	// Telemetry, when non-nil, receives the engine's metrics — job
	// durations by kind, cache hit/miss/eviction counts, queue-to-start
	// latency, and the Monte-Carlo and experiment measurements of the
	// packages the engine drives — plus one trace of nested timed spans
	// (job → stage → worker shard) per executed run. Metric names and
	// the span hierarchy are documented in DESIGN.md §7.
	Telemetry *telemetry.Registry
	// Logger, when non-nil, receives structured run-ID-stamped
	// start/finish/error lines for every job.
	Logger *slog.Logger
}

// Engine executes jobs, caching results by canonical job hash.
type Engine struct {
	cache      *lruCache // nil when caching is disabled
	progressMu sync.Mutex
	progress   func(Progress)
	tele       *telemetry.Registry // nil when telemetry is disabled
	logger     *slog.Logger        // nil when logging is disabled
}

// New returns an Engine with the given options.
func New(opts Options) *Engine {
	e := &Engine{progress: opts.Progress, tele: opts.Telemetry, logger: opts.Logger}
	if !opts.DisableCache {
		size := opts.CacheSize
		if size <= 0 {
			size = 128
		}
		e.cache = newLRUCache(size)
		if e.tele != nil {
			// Pre-register the cache counters so every snapshot carries
			// hit, miss and eviction counts — zeros included.
			e.tele.Counter("engine.cache.hits")
			e.tele.Counter("engine.cache.misses")
			e.tele.Counter("engine.cache.evictions")
		}
	}
	// Pre-register the simulation kernel's metrics too: dashboards see
	// sparse_skips_total and the per-mode throughput gauges at zero before
	// the first run rather than having series appear mid-flight.
	montecarlo.PreRegisterMetrics(opts.Telemetry)
	return e
}

var (
	defaultMu     sync.Mutex
	defaultEngine *Engine
)

// Default returns the shared process-wide engine. Unless reconfigured
// with SetDefaultOptions it has the default cache size and no progress,
// telemetry or logging hooks. The facade's Run-style helpers route
// through it.
func Default() *Engine {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if defaultEngine == nil {
		defaultEngine = New(Options{})
	}
	return defaultEngine
}

// SetDefaultOptions replaces the shared engine returned by Default with
// one built from opts, so facade users can attach telemetry, logging and
// progress hooks without constructing their own engine. The previous
// default engine's result cache is discarded; jobs already running keep
// the engine they started on.
func SetDefaultOptions(opts Options) {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	defaultEngine = New(opts)
}

// Run executes a job through the default engine.
func Run(ctx context.Context, job Job) (*Result, error) {
	return Default().Run(ctx, job)
}

// emit forwards a progress report to the configured hook, serialising
// concurrent reporters (Monte-Carlo workers report from their shards).
func (e *Engine) emit(p Progress) {
	if e.progress == nil {
		return
	}
	e.progressMu.Lock()
	defer e.progressMu.Unlock()
	e.progress(p)
}

// fanout builds the progress sink for one run: reports reach both the
// engine-wide hook and the per-run hook, each behind its own lock so a
// slow subscriber on one side cannot corrupt the other.
func (e *Engine) fanout(perRun func(Progress)) func(Progress) {
	if perRun == nil {
		return e.emit
	}
	var mu sync.Mutex
	return func(p Progress) {
		e.emit(p)
		mu.Lock()
		perRun(p)
		mu.Unlock()
	}
}

// Result is the outcome of a job: a kind-discriminated envelope plus the
// resolved model. Results served from the cache are shared — treat every
// field as immutable.
type Result struct {
	// Kind echoes the job kind; Hash is the canonical job hash.
	Kind JobKind
	Hash string
	// ID is the stable job identifier derived from Hash (see IDFromHash).
	// Identical specs produce identical IDs, so a cache hit is observable
	// end-to-end: the CLIs print it under -progress and the HTTP API
	// returns it with every result.
	ID string
	// FromCache reports that the result was served from the cache without
	// recomputation.
	FromCache bool
	// RunID identifies this execution (or cache service) for correlation
	// with log lines, trace snapshots and flight-recorder events. Unlike
	// ID it is unique per call: a caller-supplied request ID (via
	// telemetry.ContextWithRunID) is echoed here, and results served from
	// the cache carry the requesting run's ID, not the computing run's.
	RunID string
	// ModelName and FaultSet describe the resolved model (nil for
	// experiment-suite jobs, which sweep their own scenario populations).
	ModelName string
	FaultSet  *faultmodel.FaultSet
	// Exactly one of the following is set, matching Kind.
	MonteCarlo  *montecarlo.Result
	RareEvent   *RareEventResult
	Experiments []*experiments.Result
	Analytic    *AnalyticResult
}

// RareEventResult pairs the importance-sampled estimate with the naive
// baseline and the closed form it cross-checks.
type RareEventResult struct {
	ImportanceSampling montecarlo.RareEventEstimate
	Naive              montecarlo.RareEventEstimate
	// ClosedForm is the exact P(N_m > 0) = 1 - Π(1 - p_i^m).
	ClosedForm float64
}

// ConfidenceBound is one row of the analytic report's confidence table.
type ConfidenceBound struct {
	// Versions is the system size m the bound is for.
	Versions int
	// Bound is the normal-approximation bound at the requested level.
	Bound float64
	// ExactQuantile is the same level's quantile of the exact PFD
	// distribution; HasExact reports whether the fault universe was small
	// enough to enumerate it.
	ExactQuantile float64
	HasExact      bool
}

// AnalyticResult carries the assessor-facing quantities of an analytic
// job: everything the diversity CLI tabulates.
type AnalyticResult struct {
	// Gain holds the µ/σ moments and the formula (11)/(12) bounds at the
	// requested k.
	Gain faultmodel.GainReport
	// SigmaBoundFactor is sqrt(pmax(1+pmax)), equation (9).
	SigmaBoundFactor float64
	// RiskRatio is the equation-(10) ratio; HasRiskRatio is false when it
	// is undefined (no fault can occur).
	RiskRatio    float64
	HasRiskRatio bool
	// SuccessRatio is the footnote-5 ratio P(N2=0)/P(N1=0).
	SuccessRatio float64
	// Confidence echoes the requested level; Bounds holds the one- and
	// two-version rows.
	Confidence float64
	Bounds     []ConfidenceBound
}

// count increments the named telemetry counter when telemetry is on.
func (e *Engine) count(name string) {
	if e.tele != nil {
		e.tele.Counter(name).Inc()
	}
}

// event records a flight-recorder event when telemetry is on.
func (e *Engine) event(kind, run string, fields map[string]string) {
	e.tele.Event(kind, run, fields)
}

// shortHash abbreviates a job hash for log lines.
func shortHash(hash string) string {
	if len(hash) > 12 {
		return hash[:12]
	}
	return hash
}

// Run executes a job: validate, consult the cache, compute, store. It is
// the single execution path for every run mode; a cancelled context makes
// the underlying simulation loops return promptly with an error wrapping
// ctx.Err().
//
// When telemetry is configured, each executed (non-cached) run records
// its queue-to-start latency (submission to compute start: validation,
// hashing and the cache lookup), its duration under
// "engine.job_duration_seconds.<kind>", cache traffic under
// "engine.cache.{hits,misses,evictions}", and a per-run trace of nested
// spans stamped with a fresh run ID; the same run ID stamps the
// logger's start/finish/error lines.
func (e *Engine) Run(ctx context.Context, job Job) (*Result, error) {
	return e.RunWithProgress(ctx, job, nil)
}

// RunWithProgress executes a job like Run, additionally delivering this
// run's progress reports to progress (serialised; may be nil). The
// engine-wide Options.Progress hook, when configured, still receives
// every report — RunWithProgress fans out rather than replaces, which is
// what lets a serving layer attach one subscriber per submitted job while
// a process-wide progress printer keeps working.
func (e *Engine) RunWithProgress(ctx context.Context, job Job, progress func(Progress)) (*Result, error) {
	submitted := time.Now()
	emit := e.fanout(progress)
	if err := job.Validate(); err != nil {
		return nil, err
	}
	hash, err := job.Hash()
	if err != nil {
		return nil, err
	}
	// The run ID correlates this execution across every surface: log
	// lines, the trace snapshot and the flight recorder. A caller that
	// already carries one (the serving layer threads the request ID of
	// the submission) wins; otherwise the engine mints a fresh one.
	runID, ok := telemetry.RunIDFromContext(ctx)
	if !ok {
		runID = telemetry.NewRunID()
		ctx = telemetry.ContextWithRunID(ctx, runID)
	}
	if e.cache != nil {
		if cached, ok := e.cache.get(hash); ok {
			e.count("engine.cache.hits")
			e.event("job.cache_hit", runID, map[string]string{"kind": string(job.Kind), "job": IDFromHash(hash)})
			if e.logger != nil {
				e.logger.InfoContext(ctx, "job served from cache", "kind", job.Kind, "hash", shortHash(hash))
			}
			hit := *cached
			hit.FromCache = true
			hit.RunID = runID
			return &hit, nil
		}
		e.count("engine.cache.misses")
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("engine: job cancelled before start: %w", err)
	}
	job = job.normalized()

	var trace *telemetry.Trace
	var span *telemetry.Span
	if e.tele != nil {
		e.tele.Histogram("engine.queue_to_start_seconds", telemetry.DurationBuckets).
			Observe(time.Since(submitted).Seconds())
		trace = telemetry.NewTrace(runID, "job:"+string(job.Kind))
		span = trace.Root()
	}
	e.event("job.start", runID, map[string]string{"kind": string(job.Kind), "job": IDFromHash(hash)})
	if e.logger != nil {
		e.logger.InfoContext(ctx, "job start", "kind", job.Kind, "hash", shortHash(hash))
	}
	started := time.Now()
	var res *Result
	switch job.Kind {
	case JobMonteCarlo:
		res, err = e.runMonteCarlo(ctx, job.MonteCarlo, span, emit)
	case JobRareEvent:
		res, err = e.runRareEvent(ctx, job.RareEvent, span, emit)
	case JobExperiments:
		res, err = e.runExperiments(ctx, job.Experiments, span, emit)
	case JobAnalytic:
		res, err = e.runAnalytic(job.Analytic)
	default:
		err = fmt.Errorf("engine: unknown job kind %q", job.Kind)
	}
	elapsed := time.Since(started)
	if e.tele != nil {
		trace.End()
		e.tele.RecordTrace(trace)
		e.tele.Histogram("engine.job_duration_seconds."+string(job.Kind), telemetry.DurationBuckets).
			Observe(elapsed.Seconds())
	}
	if err != nil {
		e.event("job.failed", runID, map[string]string{"kind": string(job.Kind), "error": err.Error()})
		if e.logger != nil {
			e.logger.ErrorContext(ctx, "job failed", "kind", job.Kind, "elapsed", elapsed, "error", err)
		}
		return nil, err
	}
	e.event("job.finished", runID, map[string]string{"kind": string(job.Kind), "job": IDFromHash(hash), "elapsed": elapsed.String()})
	if e.logger != nil {
		e.logger.InfoContext(ctx, "job finished", "kind", job.Kind, "elapsed", elapsed, "hash", shortHash(hash))
	}
	res.Kind = job.Kind
	res.Hash = hash
	res.ID = IDFromHash(hash)
	res.RunID = runID
	if e.cache != nil {
		if evicted := e.cache.put(hash, res); evicted > 0 {
			if e.tele != nil {
				e.tele.Counter("engine.cache.evictions").Add(int64(evicted))
			}
			e.event("cache.evicted", runID, map[string]string{"entries": fmt.Sprintf("%d", evicted)})
		}
	}
	return res, nil
}

// WarmCache primes the result cache with a previously computed result
// under its canonical job hash. The serving layer replays persisted
// results through it on startup, so resubmitting a pre-restart spec is a
// cache hit rather than a recomputation. The result is stored as-is and
// shared with every future hit — treat it as immutable. Nil results,
// empty hashes and cache-disabled engines are no-ops.
func (e *Engine) WarmCache(hash string, res *Result) {
	if e.cache == nil || res == nil || hash == "" {
		return
	}
	if evicted := e.cache.put(hash, res); evicted > 0 && e.tele != nil {
		e.tele.Counter("engine.cache.evictions").Add(int64(evicted))
	}
}

// RunConfig executes a raw Monte-Carlo configuration through the engine's
// execution core. The facade's MonteCarlo helpers delegate here: an opaque
// Process cannot be canonically hashed, so these runs get cancellation and
// progress reporting but bypass the cache.
func (e *Engine) RunConfig(ctx context.Context, cfg montecarlo.Config) (*montecarlo.Result, error) {
	if cfg.Progress == nil && e.progress != nil {
		cfg.Progress = func(done, total int) {
			e.emit(Progress{Stage: "replications", Done: done, Total: total})
		}
	}
	if cfg.Metrics == nil {
		cfg.Metrics = e.tele
	}
	return montecarlo.RunContext(ctx, cfg)
}

// stage opens a named child span under parent, returning a no-op closer
// when tracing is off.
func stage(parent *telemetry.Span, name string) func() {
	if parent == nil {
		return func() {}
	}
	sp := parent.Child(name)
	return sp.End
}

func (e *Engine) runMonteCarlo(ctx context.Context, spec *MonteCarloSpec, span *telemetry.Span, emit func(Progress)) (*Result, error) {
	fs, name, err := spec.Model.Resolve()
	if err != nil {
		return nil, err
	}
	adj, err := ResolveAdjudicator(spec.Arch, spec.Adjudicator, spec.Versions)
	if err != nil {
		return nil, err
	}
	var proc devsim.Process
	if spec.Correlation > 0 {
		proc, err = devsim.NewCommonCauseProcess(fs, spec.Correlation, spec.Boost)
		if err != nil {
			return nil, err
		}
	} else {
		proc = devsim.NewIndependentProcess(fs)
	}
	var repSpan *telemetry.Span
	if span != nil {
		repSpan = span.Child("replications")
		defer repSpan.End()
	}
	mc, err := montecarlo.RunContext(ctx, montecarlo.Config{
		Process:     proc,
		Versions:    spec.Versions,
		Adjudicator: adj,
		Reps:        spec.Reps,
		Workers:     spec.Workers,
		Seed:        spec.Seed,
		Streaming:   spec.Streaming,
		Sparse:      spec.Sparse,
		BatchWidth:  spec.BatchWidth,
		Progress: func(done, total int) {
			emit(Progress{Stage: "replications", Done: done, Total: total})
		},
		Metrics:   e.tele,
		TraceSpan: repSpan,
	})
	if err != nil {
		return nil, err
	}
	return &Result{ModelName: name, FaultSet: fs, MonteCarlo: mc}, nil
}

// rareStageOpts builds estimator options that forward intermediate Done
// counts for the named stage: rare-event stages report at context-check
// granularity, not just a leading Done: 0.
func (e *Engine) rareStageOpts(name string, sparse bool, batchWidth int, adj system.Adjudicator, emit func(Progress)) montecarlo.RareOptions {
	return montecarlo.RareOptions{
		Progress: func(done, total int) {
			emit(Progress{Stage: name, Done: done, Total: total})
		},
		Metrics:     e.tele,
		Sparse:      sparse,
		BatchWidth:  batchWidth,
		Adjudicator: adj,
	}
}

func (e *Engine) runRareEvent(ctx context.Context, spec *RareEventSpec, span *telemetry.Span, emit func(Progress)) (*Result, error) {
	fs, name, err := spec.Model.Resolve()
	if err != nil {
		return nil, err
	}
	adj, err := ResolveAdjudicator("", spec.Adjudicator, spec.Versions)
	if err != nil {
		return nil, err
	}
	// The legacy closed form stays on fs.PAnyFault so unadjudicated specs
	// keep their exact historical floats; adjudicated specs take the
	// general defeat-probability product.
	var truth float64
	if spec.Adjudicator == "" {
		truth, err = fs.PAnyFault(spec.Versions)
	} else {
		truth, err = system.PAnySystemFault(fs, adj, spec.Versions)
	}
	if err != nil {
		return nil, err
	}
	endIS := stage(span, "importance sampling")
	is, err := montecarlo.EstimateRareSystemFaultOpts(ctx, fs, spec.Versions, spec.Reps, spec.Seed, spec.TiltTarget, e.rareStageOpts("importance sampling", spec.Sparse, spec.BatchWidth, adj, emit))
	endIS()
	if err != nil {
		return nil, err
	}
	endNaive := stage(span, "naive Monte Carlo")
	naive, err := montecarlo.EstimateNaiveSystemFaultOpts(ctx, fs, spec.Versions, spec.Reps, spec.Seed, e.rareStageOpts("naive Monte Carlo", spec.Sparse, spec.BatchWidth, adj, emit))
	endNaive()
	if err != nil {
		return nil, err
	}
	return &Result{
		ModelName: name,
		FaultSet:  fs,
		RareEvent: &RareEventResult{ImportanceSampling: is, Naive: naive, ClosedForm: truth},
	}, nil
}

func (e *Engine) runExperiments(ctx context.Context, spec *ExperimentsSpec, span *telemetry.Span, emit func(Progress)) (*Result, error) {
	cfg := experiments.Config{Seed: spec.Seed, Quick: spec.Quick, Streaming: spec.Streaming, Sparse: spec.Sparse, BatchWidth: spec.BatchWidth, Metrics: e.tele}
	if spec.Adjudicator != "" {
		adj, err := ResolveAdjudicator("", spec.Adjudicator, spec.Versions)
		if err != nil {
			return nil, err
		}
		cfg.Versions, cfg.Adjudicator = spec.Versions, adj
	}
	results := make([]*experiments.Result, 0, len(spec.IDs))
	for i, id := range spec.IDs {
		emit(Progress{Stage: id, Done: i, Total: len(spec.IDs)})
		end := stage(span, id)
		res, err := experiments.RunContext(ctx, id, cfg)
		end()
		if err != nil {
			return nil, err
		}
		results = append(results, res)
	}
	emit(Progress{Stage: "done", Done: len(spec.IDs), Total: len(spec.IDs)})
	return &Result{Experiments: results}, nil
}

func (e *Engine) runAnalytic(spec *AnalyticSpec) (*Result, error) {
	fs, name, err := spec.Model.Resolve()
	if err != nil {
		return nil, err
	}
	gain, err := fs.Gain(spec.K)
	if err != nil {
		return nil, err
	}
	factor, err := faultmodel.SigmaBoundFactor(fs.PMax())
	if err != nil {
		return nil, err
	}
	ar := &AnalyticResult{
		Gain:             gain,
		SigmaBoundFactor: factor,
		SuccessRatio:     fs.SuccessRatio(),
		Confidence:       spec.Confidence,
	}
	if ratio, err := fs.RiskRatio(); err == nil {
		ar.RiskRatio, ar.HasRiskRatio = ratio, true
	}
	for _, m := range []int{1, 2} {
		bound, err := fs.ConfidenceBoundAt(m, spec.Confidence)
		if err != nil {
			return nil, err
		}
		cb := ConfidenceBound{Versions: m, Bound: bound}
		if fs.N() <= faultmodel.MaxExactFaults {
			dist, err := fs.ExactPFD(m)
			if err != nil {
				return nil, err
			}
			q, err := dist.Quantile(spec.Confidence)
			if err != nil {
				return nil, err
			}
			cb.ExactQuantile, cb.HasExact = q, true
		}
		ar.Bounds = append(ar.Bounds, cb)
	}
	return &Result{ModelName: name, FaultSet: fs, Analytic: ar}, nil
}
