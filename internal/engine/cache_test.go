package engine

import "testing"

func TestLRUCacheEviction(t *testing.T) {
	t.Parallel()

	c := newLRUCache(2)
	a, b, d := &Result{Hash: "a"}, &Result{Hash: "b"}, &Result{Hash: "d"}
	c.put("a", a)
	c.put("b", b)
	if got, ok := c.get("a"); !ok || got != a {
		t.Fatalf("get(a) = %v, %v; want the stored result", got, ok)
	}
	// "a" is now most recently used, so inserting a third entry evicts "b".
	c.put("d", d)
	if _, ok := c.get("b"); ok {
		t.Error("least recently used entry survived eviction")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("recently used entry was evicted")
	}
	if _, ok := c.get("d"); !ok {
		t.Error("new entry missing")
	}
	if got := c.len(); got != 2 {
		t.Errorf("len = %d, want 2", got)
	}
}

func TestLRUCacheOverwrite(t *testing.T) {
	t.Parallel()

	c := newLRUCache(2)
	c.put("a", &Result{Hash: "a1"})
	updated := &Result{Hash: "a2"}
	c.put("a", updated)
	if got, ok := c.get("a"); !ok || got != updated {
		t.Errorf("get after overwrite = %v, %v; want the updated result", got, ok)
	}
	if got := c.len(); got != 1 {
		t.Errorf("len = %d, want 1", got)
	}
}
