package engine

import (
	"container/list"
	"sync"
)

// lruCache is a goroutine-safe fixed-capacity LRU map from canonical job
// hashes to results. Stored results are treated as immutable: the engine
// hands the same *Result (behind a shallow copy of the envelope) to every
// hit.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	res *Result
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached result for key, marking it most recently used.
func (c *lruCache) get(key string) (*Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).res, true
}

// put stores res under key, evicting the least recently used entries
// when the cache is full, and returns how many entries were evicted.
func (c *lruCache) put(key string, res *Result) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*lruEntry).res = res
		return 0
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, res: res})
	evicted := 0
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
		evicted++
	}
	return evicted
}

// len returns the number of cached entries.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
