// Package engine is the unified execution layer: every run path of the
// repository — Monte-Carlo simulation of the fault creation process,
// rare-event estimation, the paper's experiment suite, and the analytic
// assessor report — is expressed as a typed, JSON-serialisable Job and
// executed through a single Run(ctx, job) entry point.
//
// Jobs are hermetic: a job spec names its model either as a scenario
// (name + generation seed) or as inline fault parameters, never as a file
// path, so the canonical JSON encoding of a job fully determines its
// result. That makes jobs hashable, and the engine exploits it with an
// in-memory LRU result cache keyed by the canonical job hash: repeated
// identical runs (same model, seed, reps, arch, workers) are served
// without recomputation. Execution is context-aware end to end —
// cancellation propagates into the Monte-Carlo worker shards — and a
// progress hook reports replications completed and per-experiment stages.
// The engine is the substrate for serving, batching and sharding layers;
// the three CLIs (mcsim, diversity, experiments) are thin clients of it.
package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"runtime"
	"slices"
	"strings"

	"diversity/internal/experiments"
	"diversity/internal/faultmodel"
	"diversity/internal/scenario"
	"diversity/internal/system"
)

// JobKind identifies what a job computes.
type JobKind string

const (
	// JobMonteCarlo replicates the fault creation process and measures
	// the version and system PFD populations.
	JobMonteCarlo JobKind = "montecarlo"
	// JobRareEvent estimates P(system carries any defeating fault) by
	// importance sampling, with the naive estimator and the closed form
	// alongside.
	JobRareEvent JobKind = "rare-event"
	// JobExperiments runs paper-vs-measured experiments from the suite.
	JobExperiments JobKind = "experiments"
	// JobAnalytic computes the assessor-facing analytic report: moments,
	// gain bounds, risk ratios, and confidence bounds.
	JobAnalytic JobKind = "analytic"
)

// hashDomain versions the canonical encoding; bump it when a change to the
// job schema or to result semantics must invalidate previously cached or
// persisted hashes.
const hashDomain = "diversity/engine/v1"

// ModelSpec names the fault-set model a job runs against. Exactly one of
// Scenario or Faults must be set. Model files are resolved to inline
// faults by the caller (see cliutil.JobModel) so that the spec — and hence
// the job hash — depends on the model parameters, not on a path.
type ModelSpec struct {
	// Scenario is a named scenario regime (see internal/scenario);
	// ScenarioSeed drives its generation.
	Scenario     string `json:"scenario,omitempty"`
	ScenarioSeed uint64 `json:"scenarioSeed,omitempty"`
	// Faults are inline model parameters; Name is their display name.
	Faults []faultmodel.Fault `json:"faults,omitempty"`
	Name   string             `json:"name,omitempty"`
}

func (m ModelSpec) validate() error {
	switch {
	case m.Scenario != "" && len(m.Faults) > 0:
		return fmt.Errorf("engine: model spec names scenario %q and %d inline faults; want exactly one", m.Scenario, len(m.Faults))
	case m.Scenario == "" && len(m.Faults) == 0:
		return fmt.Errorf("engine: model spec is empty: set Scenario or Faults")
	case m.Scenario != "" && !slices.Contains(scenario.Names(), m.Scenario):
		return fmt.Errorf("engine: unknown scenario %q (known: %s)", m.Scenario, strings.Join(scenario.Names(), ", "))
	}
	return nil
}

// Resolve generates or assembles the fault set the spec names, returning
// it with its display name.
func (m ModelSpec) Resolve() (*faultmodel.FaultSet, string, error) {
	if err := m.validate(); err != nil {
		return nil, "", err
	}
	if m.Scenario != "" {
		sc, err := scenario.ByName(m.Scenario, m.ScenarioSeed)
		if err != nil {
			return nil, "", fmt.Errorf("engine: %w", err)
		}
		return sc.FaultSet, sc.Name, nil
	}
	fs, err := faultmodel.New(m.Faults)
	if err != nil {
		return nil, "", fmt.Errorf("engine: inline model invalid: %w", err)
	}
	return fs, m.Name, nil
}

// ModelFromFaultSet returns an inline ModelSpec carrying the fault set's
// parameters.
func ModelFromFaultSet(fs *faultmodel.FaultSet, name string) ModelSpec {
	faults := make([]faultmodel.Fault, fs.N())
	for i := range faults {
		faults[i] = fs.Fault(i)
	}
	return ModelSpec{Faults: faults, Name: name}
}

// MonteCarloSpec parameterises a Monte-Carlo replication job.
type MonteCarloSpec struct {
	Model ModelSpec `json:"model"`
	// Versions is the number of versions per replication.
	Versions int `json:"versions"`
	// Arch is the legacy adjudication architecture: "1oom" (default) or
	// "majority". Ignored unless Adjudicator is empty.
	Arch string `json:"arch,omitempty"`
	// Adjudicator selects the voting rule by spec string — "1oon",
	// "majority", or k-of-N forms like "2oo3", any with an optional
	// "@pfd" imperfect-stage suffix (system.ParseAdjudicator). Empty
	// falls back to Arch; the omitempty encoding keeps every pre-existing
	// job hash and cache key unchanged. Setting both Arch and Adjudicator
	// is a validation error.
	Adjudicator string `json:"adjudicator,omitempty"`
	// Reps is the number of replications; Workers the number of worker
	// goroutines (0 = all cores; normalised before hashing because the
	// shard split affects the sampled streams).
	Reps    int    `json:"reps"`
	Workers int    `json:"workers,omitempty"`
	Seed    uint64 `json:"seed"`
	// Correlation > 0 develops versions with the common-cause process
	// (Boost is its boost factor); zero is the paper's independent model.
	Correlation float64 `json:"correlation,omitempty"`
	Boost       float64 `json:"boost,omitempty"`
	// Streaming selects constant-memory aggregation (montecarlo
	// Config.Streaming): the result carries mergeable aggregates instead
	// of raw PFD samples. The flag participates in the job hash — the
	// omitempty encoding keeps pre-existing hashes of buffered jobs
	// stable — because the two modes produce differently-shaped results.
	Streaming bool `json:"streaming,omitempty"`
	// Sparse selects the geometric skip-sampling development kernel
	// (montecarlo Config.Sparse). It participates in the job hash — sparse
	// runs draw a different variate sequence for the same seed, so their
	// results differ numerically from dense runs — and the omitempty
	// encoding keeps every pre-existing dense-job hash unchanged.
	Sparse bool `json:"sparse,omitempty"`
	// BatchWidth >= 2 selects the batched replication kernel with the
	// given tile width (montecarlo Config.BatchWidth). Like Sparse it
	// participates in the job hash — batched dense runs consume the
	// variate stream in a different order for the same seed — and the
	// omitempty encoding keeps every pre-existing unbatched hash and
	// cache key unchanged. A width of 1 describes the same computation
	// as 0 and is normalised to 0 before hashing.
	BatchWidth int `json:"batchWidth,omitempty"`
}

// RareEventSpec parameterises an importance-sampling estimation job.
type RareEventSpec struct {
	Model    ModelSpec `json:"model"`
	Versions int       `json:"versions"`
	Reps     int       `json:"reps"`
	Seed     uint64    `json:"seed"`
	// TiltTarget is the per-fault presence probability under the tilted
	// measure; 0 selects the default of 0.3.
	TiltTarget float64 `json:"tiltTarget,omitempty"`
	// Sparse runs both estimators with the geometric skip-sampling kernel
	// (montecarlo RareOptions.Sparse); omitempty keeps dense-job hashes
	// stable.
	Sparse bool `json:"sparse,omitempty"`
	// Adjudicator selects the voting rule whose defeating faults the
	// estimators count (system.ParseAdjudicator spec string). Empty means
	// 1-out-of-m, bit for bit the historical estimator; omitempty keeps
	// pre-existing job hashes unchanged.
	Adjudicator string `json:"adjudicator,omitempty"`
	// BatchWidth >= 2 tiles both estimators' dense loops (montecarlo
	// RareOptions.BatchWidth); ignored when Sparse is set. Participates
	// in the job hash with the same omitempty / 1→0 normalisation rules
	// as MonteCarloSpec.BatchWidth.
	BatchWidth int `json:"batchWidth,omitempty"`
}

// ExperimentsSpec parameterises a paper-experiment suite job.
type ExperimentsSpec struct {
	// IDs selects experiments in run order; empty means the full suite.
	IDs  []string `json:"ids,omitempty"`
	Seed uint64   `json:"seed"`
	// Quick reduces replication counts by roughly an order of magnitude.
	Quick bool `json:"quick,omitempty"`
	// Streaming runs the suite's Monte-Carlo passes with constant-memory
	// aggregation. Like MonteCarloSpec.Streaming it participates in the
	// job hash, with omitempty keeping buffered-job hashes unchanged.
	Streaming bool `json:"streaming,omitempty"`
	// Sparse runs the suite's Monte-Carlo passes with the geometric
	// skip-sampling kernel; omitempty keeps dense-job hashes unchanged.
	Sparse bool `json:"sparse,omitempty"`
	// BatchWidth >= 2 runs the suite's Monte-Carlo passes with the
	// batched replication kernel at the given tile width. Participates
	// in the job hash with the same omitempty / 1→0 normalisation rules
	// as MonteCarloSpec.BatchWidth.
	BatchWidth int `json:"batchWidth,omitempty"`
	// Versions and Adjudicator, when set together, ask the N-version
	// experiments (E19) to evaluate one extra arrangement: an N-version
	// pool under the given voting rule, closed form against Monte Carlo.
	// Both omitempty, keeping pre-existing job hashes unchanged; setting
	// one without the other is a validation error.
	Versions    int    `json:"versions,omitempty"`
	Adjudicator string `json:"adjudicator,omitempty"`
}

// AnalyticSpec parameterises an assessor-report job.
type AnalyticSpec struct {
	Model ModelSpec `json:"model"`
	// K is the sigma multiplier for the µ+kσ bounds.
	K float64 `json:"k"`
	// Confidence is the level for the normal-approximation bounds.
	Confidence float64 `json:"confidence"`
}

// Job is one unit of executable work: a kind plus the matching spec. Jobs
// marshal to canonical JSON and are hashable; construct them with the
// NewXxxJob helpers or directly.
type Job struct {
	Kind        JobKind          `json:"kind"`
	MonteCarlo  *MonteCarloSpec  `json:"montecarlo,omitempty"`
	RareEvent   *RareEventSpec   `json:"rareEvent,omitempty"`
	Experiments *ExperimentsSpec `json:"experiments,omitempty"`
	Analytic    *AnalyticSpec    `json:"analytic,omitempty"`
}

// NewMonteCarloJob wraps a Monte-Carlo spec as a Job.
func NewMonteCarloJob(spec MonteCarloSpec) Job {
	return Job{Kind: JobMonteCarlo, MonteCarlo: &spec}
}

// NewRareEventJob wraps a rare-event spec as a Job.
func NewRareEventJob(spec RareEventSpec) Job {
	return Job{Kind: JobRareEvent, RareEvent: &spec}
}

// NewExperimentsJob wraps an experiment-suite spec as a Job.
func NewExperimentsJob(spec ExperimentsSpec) Job {
	return Job{Kind: JobExperiments, Experiments: &spec}
}

// NewAnalyticJob wraps an analytic spec as a Job.
func NewAnalyticJob(spec AnalyticSpec) Job {
	return Job{Kind: JobAnalytic, Analytic: &spec}
}

// maxBatchWidth caps the batch width a job spec may request. The runtime
// would clamp absurd widths to its arena budget anyway, but jobs are
// hashed and cached on their spec, so an unexecutable request is better
// rejected up front (the serve layer surfaces it as HTTP 400).
const maxBatchWidth = 65536

// validateBatchWidth checks a spec's requested tile width.
func validateBatchWidth(width int) error {
	if width < 0 {
		return fmt.Errorf("engine: batch width %d must not be negative", width)
	}
	if width > maxBatchWidth {
		return fmt.Errorf("engine: batch width %d exceeds the maximum of %d", width, maxBatchWidth)
	}
	return nil
}

// ParseArch maps a spec architecture name to the system architecture; the
// empty string selects the 1-out-of-m default.
func ParseArch(name string) (system.Architecture, error) {
	switch name {
	case "", "1oom":
		return system.Arch1OutOfM, nil
	case "majority":
		return system.ArchMajority, nil
	default:
		return 0, fmt.Errorf("unknown architecture %q (want 1oom or majority)", name)
	}
}

// ResolveAdjudicator resolves a spec's voting rule from its adjudicator
// string (taking precedence) or its legacy arch name, and validates the
// rule against the version count — a 2oo3 rule over 2 versions fails here
// with a system.*VersionCountError, which the serve layer surfaces as
// HTTP 400. Setting both arch and adjudicator is an error.
func ResolveAdjudicator(arch, adjudicator string, versions int) (system.Adjudicator, error) {
	if arch != "" && adjudicator != "" {
		return nil, fmt.Errorf("engine: set either arch %q or adjudicator %q, not both", arch, adjudicator)
	}
	var adj system.Adjudicator
	if adjudicator != "" {
		var err error
		if adj, err = system.ParseAdjudicator(adjudicator); err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
	} else {
		a, err := ParseArch(arch)
		if err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
		if adj, err = a.Adjudicator(); err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
	}
	if err := adj.Validate(versions); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	return adj, nil
}

// Validate checks that the job carries exactly the spec its kind requires
// and that the spec's parameters are executable. It mirrors the checks the
// underlying run paths perform, so invalid jobs fail before any work (and
// before touching the cache).
func (j Job) Validate() error {
	specs := 0
	for _, set := range []bool{j.MonteCarlo != nil, j.RareEvent != nil, j.Experiments != nil, j.Analytic != nil} {
		if set {
			specs++
		}
	}
	if specs != 1 {
		return fmt.Errorf("engine: job must carry exactly one spec, has %d", specs)
	}
	switch j.Kind {
	case JobMonteCarlo:
		spec := j.MonteCarlo
		if spec == nil {
			return fmt.Errorf("engine: %s job is missing its spec", j.Kind)
		}
		if err := spec.Model.validate(); err != nil {
			return err
		}
		if spec.Versions < 1 {
			return fmt.Errorf("engine: versions per replication %d must be at least 1", spec.Versions)
		}
		if spec.Reps < 1 {
			return fmt.Errorf("engine: replication count %d must be at least 1", spec.Reps)
		}
		if spec.Workers < 0 {
			return fmt.Errorf("engine: worker count %d must not be negative", spec.Workers)
		}
		if _, err := ResolveAdjudicator(spec.Arch, spec.Adjudicator, spec.Versions); err != nil {
			return err
		}
		if spec.Correlation < 0 || spec.Correlation > 1 {
			return fmt.Errorf("engine: correlation %v must be a probability", spec.Correlation)
		}
		if err := validateBatchWidth(spec.BatchWidth); err != nil {
			return err
		}
	case JobRareEvent:
		spec := j.RareEvent
		if spec == nil {
			return fmt.Errorf("engine: %s job is missing its spec", j.Kind)
		}
		if err := spec.Model.validate(); err != nil {
			return err
		}
		if spec.Versions < 1 {
			return fmt.Errorf("engine: versions per replication %d must be at least 1", spec.Versions)
		}
		if spec.Reps < 2 {
			return fmt.Errorf("engine: replication count %d must be at least 2", spec.Reps)
		}
		if spec.TiltTarget < 0 || spec.TiltTarget >= 1 {
			return fmt.Errorf("engine: tilt target %v must be in [0, 1)", spec.TiltTarget)
		}
		if _, err := ResolveAdjudicator("", spec.Adjudicator, spec.Versions); err != nil {
			return err
		}
		if err := validateBatchWidth(spec.BatchWidth); err != nil {
			return err
		}
	case JobExperiments:
		spec := j.Experiments
		if spec == nil {
			return fmt.Errorf("engine: %s job is missing its spec", j.Kind)
		}
		if (spec.Versions != 0) != (spec.Adjudicator != "") {
			return fmt.Errorf("engine: experiments versions (%d) and adjudicator (%q) must be set together", spec.Versions, spec.Adjudicator)
		}
		if spec.Adjudicator != "" {
			if _, err := ResolveAdjudicator("", spec.Adjudicator, spec.Versions); err != nil {
				return err
			}
		}
		if err := validateBatchWidth(spec.BatchWidth); err != nil {
			return err
		}
	case JobAnalytic:
		spec := j.Analytic
		if spec == nil {
			return fmt.Errorf("engine: %s job is missing its spec", j.Kind)
		}
		if err := spec.Model.validate(); err != nil {
			return err
		}
		if spec.K < 0 {
			return fmt.Errorf("engine: sigma multiplier k=%v must be non-negative", spec.K)
		}
	default:
		return fmt.Errorf("engine: unknown job kind %q", j.Kind)
	}
	return nil
}

// normalized returns the job with derived defaults filled in, so that two
// specs describing the same computation hash identically: Monte-Carlo
// worker counts are resolved (0 → all cores) and clamped to the
// replication count (the shard split, and hence the sampled streams,
// depends on the effective worker count); a zero rare-event tilt becomes
// the 0.3 default; an empty experiment selection becomes the full suite;
// an empty architecture becomes the explicit 1oom default; a batch width
// of 1 (which computes exactly what width 0 does — the batched kernel
// only activates from 2 up) becomes 0, so both encodings share one hash
// and cache entry.
func (j Job) normalized() Job {
	switch j.Kind {
	case JobMonteCarlo:
		spec := *j.MonteCarlo
		if spec.Workers <= 0 {
			spec.Workers = runtime.GOMAXPROCS(0)
		}
		if spec.Workers > spec.Reps {
			spec.Workers = spec.Reps
		}
		if spec.BatchWidth == 1 {
			spec.BatchWidth = 0
		}
		// The explicit-arch normalisation predates adjudicators; it only
		// applies when the legacy field is in play. An adjudicator spec
		// must NOT have an arch filled in (the pair would fail validation),
		// and the Adjudicator field itself is never normalised — unset
		// stays unset, keeping every legacy 1oo2 hash and cache key
		// byte-identical.
		if spec.Arch == "" && spec.Adjudicator == "" {
			spec.Arch = "1oom"
		}
		if spec.Correlation == 0 {
			spec.Boost = 0
		}
		j.MonteCarlo = &spec
	case JobRareEvent:
		spec := *j.RareEvent
		if spec.TiltTarget == 0 {
			spec.TiltTarget = 0.3
		}
		if spec.BatchWidth == 1 {
			spec.BatchWidth = 0
		}
		j.RareEvent = &spec
	case JobExperiments:
		spec := *j.Experiments
		if len(spec.IDs) == 0 {
			spec.IDs = experiments.IDs()
		}
		if spec.BatchWidth == 1 {
			spec.BatchWidth = 0
		}
		j.Experiments = &spec
	}
	return j
}

// CanonicalJSON returns the canonical encoding of the normalised job: the
// deterministic, schema-ordered JSON document the job hash is computed
// over.
func (j Job) CanonicalJSON() ([]byte, error) {
	if err := j.Validate(); err != nil {
		return nil, err
	}
	doc, err := json.Marshal(j.normalized())
	if err != nil {
		return nil, fmt.Errorf("engine: encoding job: %w", err)
	}
	return doc, nil
}

// Hash returns the canonical job hash: hex SHA-256 over a domain prefix
// and the canonical JSON. Jobs with equal hashes compute identical
// results, which is what makes the hash a sound cache key.
func (j Job) Hash() (string, error) {
	doc, err := j.CanonicalJSON()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write([]byte(hashDomain))
	h.Write([]byte{0})
	h.Write(doc)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// IDFromHash derives the stable job identifier from a canonical job
// hash: "job-" plus the first 16 hex digits. The prefix length keeps IDs
// log- and URL-friendly while leaving the collision probability across a
// cache's worth of jobs negligible (2^-64 per pair).
func IDFromHash(hash string) string {
	if len(hash) > 16 {
		hash = hash[:16]
	}
	return "job-" + hash
}

// ID returns the job's stable string identifier, derived from the
// canonical hash: two specs describing the same computation get the same
// ID. Results carry it (Result.ID), so repeated submissions are
// observable as cache hits end-to-end.
func (j Job) ID() (string, error) {
	hash, err := j.Hash()
	if err != nil {
		return "", err
	}
	return IDFromHash(hash), nil
}
