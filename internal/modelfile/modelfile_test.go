package modelfile

import (
	"path/filepath"
	"strings"
	"testing"

	"diversity/internal/faultmodel"

	"os"
)

func TestParseValid(t *testing.T) {
	t.Parallel()

	doc := `{"name": "demo", "faults": [{"p": 0.1, "q": 0.002}, {"p": 0.05, "q": 0.004}]}`
	fs, name, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if name != "demo" {
		t.Errorf("name = %q, want demo", name)
	}
	if fs.N() != 2 || fs.Fault(0).P != 0.1 || fs.Fault(1).Q != 0.004 {
		t.Errorf("parsed faults wrong: %+v", fs.Faults())
	}
}

func TestParseErrors(t *testing.T) {
	t.Parallel()

	tests := []struct {
		name string
		doc  string
	}{
		{name: "malformed", doc: `{`},
		{name: "unknown field", doc: `{"faults": [], "bogus": 1}`},
		{name: "no faults", doc: `{"faults": []}`},
		{name: "invalid probability", doc: `{"faults": [{"p": 1.5, "q": 0.1}]}`},
		{name: "regions exceed space", doc: `{"faults": [{"p": 0.1, "q": 0.7}, {"p": 0.1, "q": 0.7}]}`},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			if _, _, err := Parse(strings.NewReader(tt.doc)); err == nil {
				t.Errorf("Parse(%s) succeeded, want error", tt.doc)
			}
		})
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	t.Parallel()

	fs, err := faultmodel.New([]faultmodel.Fault{
		{P: 0.1, Q: 0.002},
		{P: 0.05, Q: 0.004},
	})
	if err != nil {
		t.Fatalf("faultmodel.New: %v", err)
	}
	var b strings.Builder
	if err := Write(&b, "round-trip", fs); err != nil {
		t.Fatalf("Write: %v", err)
	}
	back, name, err := Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if name != "round-trip" {
		t.Errorf("name = %q", name)
	}
	for i := 0; i < fs.N(); i++ {
		if back.Fault(i) != fs.Fault(i) {
			t.Errorf("fault %d: %+v != %+v", i, back.Fault(i), fs.Fault(i))
		}
	}
}

func TestLoadFromFile(t *testing.T) {
	t.Parallel()

	path := filepath.Join(t.TempDir(), "model.json")
	doc := `{"faults": [{"p": 0.2, "q": 0.01}]}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	fs, _, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if fs.N() != 1 || fs.Fault(0).P != 0.2 {
		t.Errorf("loaded faults wrong: %+v", fs.Faults())
	}
	if _, _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("Load of missing file succeeded, want error")
	}
}
