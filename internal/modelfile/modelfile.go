// Package modelfile loads fault-set model parameters from JSON, the
// interchange format used by the command-line tools.
//
// The format is a single object:
//
//	{
//	  "name": "optional label",
//	  "faults": [
//	    {"p": 0.1,  "q": 0.002},
//	    {"p": 0.05, "q": 0.004}
//	  ]
//	}
//
// where p is the probability that the fault survives development into a
// version and q the probability that a random demand hits its failure
// region.
package modelfile

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"diversity/internal/faultmodel"
)

// Model is the JSON document shape.
type Model struct {
	// Name is an optional label echoed in reports.
	Name string `json:"name,omitempty"`
	// Faults lists the potential faults.
	Faults []FaultJSON `json:"faults"`
}

// FaultJSON is one potential fault in the JSON document.
type FaultJSON struct {
	P float64 `json:"p"`
	Q float64 `json:"q"`
}

// Parse decodes a model document and validates it into a FaultSet.
func Parse(r io.Reader) (*faultmodel.FaultSet, string, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var doc Model
	if err := dec.Decode(&doc); err != nil {
		return nil, "", fmt.Errorf("modelfile: decoding model JSON: %w", err)
	}
	faults := make([]faultmodel.Fault, len(doc.Faults))
	for i, f := range doc.Faults {
		faults[i] = faultmodel.Fault{P: f.P, Q: f.Q}
	}
	fs, err := faultmodel.New(faults)
	if err != nil {
		return nil, "", fmt.Errorf("modelfile: invalid model: %w", err)
	}
	return fs, doc.Name, nil
}

// Load reads and parses a model document from a file; "-" reads stdin.
func Load(path string) (*faultmodel.FaultSet, string, error) {
	if path == "-" {
		return Parse(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, "", fmt.Errorf("modelfile: opening %s: %w", path, err)
	}
	defer f.Close()
	return Parse(f)
}

// Write encodes a fault set as a model document.
func Write(w io.Writer, name string, fs *faultmodel.FaultSet) error {
	doc := Model{Name: name, Faults: make([]FaultJSON, fs.N())}
	for i := 0; i < fs.N(); i++ {
		f := fs.Fault(i)
		doc.Faults[i] = FaultJSON{P: f.P, Q: f.Q}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("modelfile: encoding model JSON: %w", err)
	}
	return nil
}
