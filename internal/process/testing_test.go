package process

import (
	"math"
	"testing"
	"testing/quick"

	"diversity/internal/faultmodel"
)

func TestApplyTestingSurvivalFormula(t *testing.T) {
	t.Parallel()

	fs := mustFaultSet(t, []faultmodel.Fault{
		{P: 0.4, Q: 0.1},
		{P: 0.4, Q: 0.001},
	})
	tested, err := ApplyTesting(fs, 20)
	if err != nil {
		t.Fatalf("ApplyTesting: %v", err)
	}
	want0 := 0.4 * math.Pow(0.9, 20)
	want1 := 0.4 * math.Pow(0.999, 20)
	if !almostEqualP(tested.Fault(0).P, want0) {
		t.Errorf("large-region fault survives with %v, want %v", tested.Fault(0).P, want0)
	}
	if !almostEqualP(tested.Fault(1).P, want1) {
		t.Errorf("small-region fault survives with %v, want %v", tested.Fault(1).P, want1)
	}
	// Testing scrubs large regions preferentially.
	if tested.Fault(0).P >= tested.Fault(1).P {
		t.Error("testing did not preferentially remove the large-region fault")
	}
	// q values unchanged.
	if tested.Fault(0).Q != 0.1 || tested.Fault(1).Q != 0.001 {
		t.Error("testing changed region probabilities")
	}
}

func almostEqualP(a, b float64) bool {
	return math.Abs(a-b) <= 1e-12*math.Max(1, math.Abs(b))
}

func TestApplyTestingValidation(t *testing.T) {
	t.Parallel()

	fs := mustFaultSet(t, []faultmodel.Fault{{P: 0.4, Q: 0.1}})
	if _, err := ApplyTesting(fs, -1); err == nil {
		t.Error("negative budget succeeded, want error")
	}
	if _, err := ApplyTesting(fs, math.NaN()); err == nil {
		t.Error("NaN budget succeeded, want error")
	}
	// Zero budget is the identity.
	same, err := ApplyTesting(fs, 0)
	if err != nil {
		t.Fatalf("ApplyTesting(0): %v", err)
	}
	if same.Fault(0) != fs.Fault(0) {
		t.Error("zero budget changed the fault set")
	}
}

func TestStatisticalTestingImprovement(t *testing.T) {
	t.Parallel()

	fs := mustFaultSet(t, []faultmodel.Fault{{P: 0.4, Q: 0.05}})
	imp := StatisticalTesting{Demands: 100}
	if imp.Name() == "" {
		t.Error("Name must be non-empty")
	}
	half, err := imp.Apply(fs, 0.5)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	want := 0.4 * math.Pow(0.95, 50)
	if !almostEqualP(half.Fault(0).P, want) {
		t.Errorf("half budget survival %v, want %v", half.Fault(0).P, want)
	}
	if _, err := imp.Apply(fs, 1.5); err == nil {
		t.Error("amount > 1 succeeded, want error")
	}
	if _, err := (StatisticalTesting{Demands: -5}).Apply(fs, 0.5); err == nil {
		t.Error("negative budget succeeded, want error")
	}
}

// TestTestingImprovesReliabilityMonotonically: more testing never hurts a
// single version's mean PFD.
func TestTestingImprovesReliabilityMonotonically(t *testing.T) {
	t.Parallel()

	fs := mustFaultSet(t, []faultmodel.Fault{
		{P: 0.3, Q: 0.05}, {P: 0.2, Q: 0.01}, {P: 0.1, Q: 0.002},
	})
	prev := math.Inf(1)
	for _, demands := range []float64{0, 10, 100, 1000, 10000} {
		mu, err := TestedMeanPFD(fs, demands)
		if err != nil {
			t.Fatalf("TestedMeanPFD: %v", err)
		}
		if mu > prev+1e-18 {
			t.Errorf("mean PFD rose from %v to %v at budget %v", prev, mu, demands)
		}
		prev = mu
	}
}

// TestTestingCanReverseDiversityGainTrend: because testing is a
// non-proportional improvement (it scrubs large-q faults first), the risk
// ratio along a testing trajectory need not be monotone — the Section
// 4.2.1 phenomenon arising from a realistic process change.
func TestTestingCanReverseDiversityGainTrend(t *testing.T) {
	t.Parallel()

	// A large-region fault that testing quickly suppresses far below the
	// stationary point, next to a small-region fault testing cannot
	// reach: the ratio first falls, then rises again.
	fs := mustFaultSet(t, []faultmodel.Fault{
		{P: 0.3, Q: 0.05},
		{P: 0.2, Q: 0.0001},
	})
	ratios := make([]float64, 0, 8)
	for _, demands := range []float64{0, 5, 10, 20, 40, 80, 160, 320} {
		tested, err := ApplyTesting(fs, demands)
		if err != nil {
			t.Fatalf("ApplyTesting: %v", err)
		}
		ratio, err := tested.RiskRatio()
		if err != nil {
			t.Fatalf("RiskRatio: %v", err)
		}
		ratios = append(ratios, ratio)
	}
	minIdx := 0
	for i, r := range ratios {
		if r < ratios[minIdx] {
			minIdx = i
		}
	}
	if minIdx == 0 || minIdx == len(ratios)-1 {
		t.Errorf("expected an interior minimum of the risk ratio along the testing trajectory, got ratios %v", ratios)
	}
}

// TestBudgetTradeBothWinnersExist reproduces the introduction's debate:
// neither "one good version" nor "two diverse versions" wins universally —
// the answer flips with the fault universe and the diversity overhead.
func TestBudgetTradeBothWinnersExist(t *testing.T) {
	t.Parallel()

	// Universe A: one dominant large-region fault, and a second
	// development costs 500 test-demand-equivalents. The fully tested
	// single version wins: (1-q)^500 << p.
	concentrated := mustFaultSet(t, []faultmodel.Fault{{P: 0.5, Q: 0.01}})
	single, diverse, err := BudgetTrade(concentrated, 2000, 500)
	if err != nil {
		t.Fatalf("BudgetTrade: %v", err)
	}
	if single >= diverse {
		t.Errorf("concentrated universe with overhead: single %v not below diverse %v", single, diverse)
	}

	// Universe B: many tiny-region faults that testing cannot reach even
	// with the full budget. Diversity's p² factor wins despite the same
	// overhead.
	faults := make([]faultmodel.Fault, 50)
	for i := range faults {
		faults[i] = faultmodel.Fault{P: 0.2, Q: 1e-6}
	}
	dispersed := mustFaultSet(t, faults)
	single, diverse, err = BudgetTrade(dispersed, 2000, 500)
	if err != nil {
		t.Fatalf("BudgetTrade: %v", err)
	}
	if diverse >= single {
		t.Errorf("dispersed universe: diverse %v not below single %v", diverse, single)
	}
}

// TestBudgetTradeZeroOverheadDiversityNeverLoses verifies the theorem in
// the BudgetTrade doc comment: with no diversity overhead, the split-
// budget 1oo2 pair is never worse on the mean, because per-fault survival
// probabilities multiply — p²(1-q)^T <= p(1-q)^T.
func TestBudgetTradeZeroOverheadDiversityNeverLoses(t *testing.T) {
	t.Parallel()

	err := quick.Check(func(raw []byte, rawBudget uint16) bool {
		if len(raw) < 2 {
			return true
		}
		n := len(raw) / 2
		if n > 10 {
			n = 10
		}
		faults := make([]faultmodel.Fault, n)
		for i := 0; i < n; i++ {
			faults[i] = faultmodel.Fault{
				P: float64(raw[2*i]) / 255,
				Q: float64(raw[2*i+1]) / 255 / float64(n),
			}
		}
		fs, err := faultmodel.New(faults)
		if err != nil {
			return true
		}
		budget := float64(rawBudget)
		single, diverse, err := BudgetTrade(fs, budget, 0)
		if err != nil {
			return false
		}
		mu1, err := fs.MeanPFD(1)
		if err != nil {
			return false
		}
		mu2, err := fs.MeanPFD(2)
		if err != nil {
			return false
		}
		// Testing can only help each arrangement, and diversity never
		// loses at zero overhead.
		return single <= mu1+1e-15 && diverse <= mu2+1e-15 && diverse <= single+1e-15
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestBudgetTradeValidation(t *testing.T) {
	t.Parallel()

	fs := mustFaultSet(t, []faultmodel.Fault{{P: 0.4, Q: 0.1}})
	if _, _, err := BudgetTrade(fs, -1, 0); err == nil {
		t.Error("negative budget succeeded, want error")
	}
	if _, _, err := BudgetTrade(fs, 100, 200); err == nil {
		t.Error("overhead above budget succeeded, want error")
	}
	if _, _, err := BudgetTrade(fs, 100, -1); err == nil {
		t.Error("negative overhead succeeded, want error")
	}
}
