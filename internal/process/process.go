// Package process models software development process improvement as
// transformations of a fault set, following the paper's Section 4.2: an
// improvement never increases any fault's presence probability, and the
// two analysed special cases are the reduction of a single p_i (new V&V
// methods targeting one fault type) and the proportional reduction of all
// p_i (greater effort against every kind of bug). The package traces the
// paper's reliability-gain measures along improvement trajectories, which
// is how experiments E05, E06 and E10 regenerate the corresponding
// analyses.
package process

import (
	"fmt"
	"math"

	"diversity/internal/faultmodel"
)

// Improvement transforms a fault set by a given amount in [0, 1]:
// 0 leaves the process unchanged, 1 applies the maximal change the
// improvement defines. Implementations must not mutate the input set.
type Improvement interface {
	// Name identifies the improvement in reports.
	Name() string
	// Apply returns the improved fault set.
	Apply(fs *faultmodel.FaultSet, amount float64) (*faultmodel.FaultSet, error)
}

func validateAmount(amount float64) error {
	if math.IsNaN(amount) || amount < 0 || amount > 1 {
		return fmt.Errorf("process: improvement amount %v must be in [0, 1]", amount)
	}
	return nil
}

// SingleFault reduces only fault Index's presence probability by the
// improvement amount: p_i -> (1-amount)·p_i. This is the paper's Section
// 4.2.1 case, whose effect on the gain from diversity can go either way.
type SingleFault struct {
	// Index selects the fault the improvement targets.
	Index int
}

var _ Improvement = SingleFault{}

// Name implements Improvement.
func (s SingleFault) Name() string { return fmt.Sprintf("single-fault[%d]", s.Index) }

// Apply implements Improvement.
func (s SingleFault) Apply(fs *faultmodel.FaultSet, amount float64) (*faultmodel.FaultSet, error) {
	if err := validateAmount(amount); err != nil {
		return nil, err
	}
	if s.Index < 0 || s.Index >= fs.N() {
		return nil, fmt.Errorf("process: fault index %d out of range [0, %d)", s.Index, fs.N())
	}
	return fs.WithP(s.Index, fs.Fault(s.Index).P*(1-amount))
}

// Proportional reduces every presence probability by the improvement
// amount: p_i -> (1-amount)·p_i, the paper's Section 4.2.2 case p_i = k·b_i
// with k = 1-amount. Appendix B proves this always increases the gain from
// diversity.
type Proportional struct{}

var _ Improvement = Proportional{}

// Name implements Improvement.
func (Proportional) Name() string { return "proportional" }

// Apply implements Improvement.
func (Proportional) Apply(fs *faultmodel.FaultSet, amount float64) (*faultmodel.FaultSet, error) {
	if err := validateAmount(amount); err != nil {
		return nil, err
	}
	return fs.Scaled(1 - amount)
}

// FaultClass reduces the presence probabilities of a subset of faults —
// the general "new V&V methods make specific fault types much less
// likely" case that interpolates between SingleFault and Proportional.
type FaultClass struct {
	// Indices selects the targeted faults.
	Indices []int
}

var _ Improvement = FaultClass{}

// Name implements Improvement.
func (c FaultClass) Name() string { return fmt.Sprintf("fault-class[%d faults]", len(c.Indices)) }

// Apply implements Improvement.
func (c FaultClass) Apply(fs *faultmodel.FaultSet, amount float64) (*faultmodel.FaultSet, error) {
	if err := validateAmount(amount); err != nil {
		return nil, err
	}
	if len(c.Indices) == 0 {
		return nil, fmt.Errorf("process: fault class must target at least one fault")
	}
	faults := fs.Faults()
	for _, i := range c.Indices {
		if i < 0 || i >= len(faults) {
			return nil, fmt.Errorf("process: fault index %d out of range [0, %d)", i, len(faults))
		}
		faults[i].P *= 1 - amount
	}
	return faultmodel.New(faults)
}

// TrajectoryPoint records the paper's gain measures at one improvement
// amount.
type TrajectoryPoint struct {
	// Amount is the improvement amount in [0, 1].
	Amount float64
	// PAnyFault1 and PAnyFault2 are P(N1>0) and P(N2>0).
	PAnyFault1, PAnyFault2 float64
	// RiskRatio is equation (10)'s P(N2>0)/P(N1>0); NaN when undefined
	// (all probabilities driven to zero).
	RiskRatio float64
	// Gain carries the Section-5 bound comparison at the trajectory's
	// sigma multiplier.
	Gain faultmodel.GainReport
}

// Trace evaluates the gain measures along the improvement amounts, using
// sigma multiplier k for the Section-5 bounds. Amounts outside [0, 1]
// cause an error; amounts need not be sorted.
func Trace(fs *faultmodel.FaultSet, imp Improvement, amounts []float64, k float64) ([]TrajectoryPoint, error) {
	if imp == nil {
		return nil, fmt.Errorf("process: improvement must not be nil")
	}
	if len(amounts) == 0 {
		return nil, fmt.Errorf("process: at least one improvement amount is required")
	}
	points := make([]TrajectoryPoint, len(amounts))
	for idx, amount := range amounts {
		improved, err := imp.Apply(fs, amount)
		if err != nil {
			return nil, fmt.Errorf("process: applying %s at amount %v: %w", imp.Name(), amount, err)
		}
		pt := TrajectoryPoint{Amount: amount}
		if pt.PAnyFault1, err = improved.PAnyFault(1); err != nil {
			return nil, err
		}
		if pt.PAnyFault2, err = improved.PAnyFault(2); err != nil {
			return nil, err
		}
		if ratio, err := improved.RiskRatio(); err != nil {
			pt.RiskRatio = math.NaN()
		} else {
			pt.RiskRatio = ratio
		}
		if pt.Gain, err = improved.Gain(k); err != nil {
			return nil, err
		}
		points[idx] = pt
	}
	return points, nil
}
