package process

import (
	"math"
	"testing"

	"diversity/internal/faultmodel"
)

func mustFaultSet(t *testing.T, faults []faultmodel.Fault) *faultmodel.FaultSet {
	t.Helper()
	fs, err := faultmodel.New(faults)
	if err != nil {
		t.Fatalf("faultmodel.New: %v", err)
	}
	return fs
}

func TestSingleFaultApply(t *testing.T) {
	t.Parallel()

	fs := mustFaultSet(t, []faultmodel.Fault{{P: 0.4, Q: 0.1}, {P: 0.2, Q: 0.1}})
	imp := SingleFault{Index: 0}
	improved, err := imp.Apply(fs, 0.5)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if got := improved.Fault(0).P; math.Abs(got-0.2) > 1e-15 {
		t.Errorf("fault 0 p = %v, want 0.2", got)
	}
	if got := improved.Fault(1).P; got != 0.2 {
		t.Errorf("fault 1 p = %v, want untouched 0.2", got)
	}
	if fs.Fault(0).P != 0.4 {
		t.Error("Apply mutated the input fault set")
	}
	// amount=1 eliminates the fault.
	gone, err := imp.Apply(fs, 1)
	if err != nil {
		t.Fatalf("Apply(1): %v", err)
	}
	if gone.Fault(0).P != 0 {
		t.Errorf("fault 0 p = %v, want 0 at full improvement", gone.Fault(0).P)
	}
}

func TestSingleFaultValidation(t *testing.T) {
	t.Parallel()

	fs := mustFaultSet(t, []faultmodel.Fault{{P: 0.4, Q: 0.1}})
	if _, err := (SingleFault{Index: 5}).Apply(fs, 0.5); err == nil {
		t.Error("out-of-range index succeeded, want error")
	}
	if _, err := (SingleFault{Index: 0}).Apply(fs, 1.5); err == nil {
		t.Error("amount > 1 succeeded, want error")
	}
	if _, err := (SingleFault{Index: 0}).Apply(fs, -0.1); err == nil {
		t.Error("negative amount succeeded, want error")
	}
	if (SingleFault{Index: 3}).Name() == "" {
		t.Error("Name must be non-empty")
	}
}

func TestProportionalApply(t *testing.T) {
	t.Parallel()

	fs := mustFaultSet(t, []faultmodel.Fault{{P: 0.4, Q: 0.1}, {P: 0.2, Q: 0.1}})
	improved, err := Proportional{}.Apply(fs, 0.25)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if math.Abs(improved.Fault(0).P-0.3) > 1e-15 || math.Abs(improved.Fault(1).P-0.15) > 1e-15 {
		t.Errorf("proportional improvement wrong: %+v", improved.Faults())
	}
	if (Proportional{}).Name() == "" {
		t.Error("Name must be non-empty")
	}
}

func TestFaultClassApply(t *testing.T) {
	t.Parallel()

	fs := mustFaultSet(t, []faultmodel.Fault{
		{P: 0.4, Q: 0.1}, {P: 0.2, Q: 0.1}, {P: 0.3, Q: 0.1},
	})
	imp := FaultClass{Indices: []int{0, 2}}
	improved, err := imp.Apply(fs, 0.5)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if math.Abs(improved.Fault(0).P-0.2) > 1e-15 {
		t.Errorf("fault 0 p = %v, want 0.2", improved.Fault(0).P)
	}
	if improved.Fault(1).P != 0.2 {
		t.Errorf("fault 1 p = %v, want untouched", improved.Fault(1).P)
	}
	if math.Abs(improved.Fault(2).P-0.15) > 1e-15 {
		t.Errorf("fault 2 p = %v, want 0.15", improved.Fault(2).P)
	}
	if _, err := (FaultClass{}).Apply(fs, 0.5); err == nil {
		t.Error("empty class succeeded, want error")
	}
	if _, err := (FaultClass{Indices: []int{9}}).Apply(fs, 0.5); err == nil {
		t.Error("out-of-range class succeeded, want error")
	}
}

// TestTraceProportionalMonotoneGain is Appendix B along a trajectory: the
// risk ratio must decrease (gain increases) as the proportional
// improvement amount grows.
func TestTraceProportionalMonotoneGain(t *testing.T) {
	t.Parallel()

	fs := mustFaultSet(t, []faultmodel.Fault{
		{P: 0.5, Q: 0.1}, {P: 0.3, Q: 0.1}, {P: 0.1, Q: 0.1},
	})
	amounts := []float64{0, 0.2, 0.4, 0.6, 0.8}
	points, err := Trace(fs, Proportional{}, amounts, 1)
	if err != nil {
		t.Fatalf("Trace: %v", err)
	}
	for i := 1; i < len(points); i++ {
		if points[i].RiskRatio > points[i-1].RiskRatio+1e-12 {
			t.Errorf("risk ratio rose from %v to %v at amount %v; Appendix B says it must fall",
				points[i-1].RiskRatio, points[i].RiskRatio, points[i].Amount)
		}
	}
	// And reliability itself improves: P(N1>0) falls.
	for i := 1; i < len(points); i++ {
		if points[i].PAnyFault1 > points[i-1].PAnyFault1+1e-12 {
			t.Errorf("P(N1>0) rose along an improvement trajectory")
		}
	}
}

// TestTraceSingleFaultNonMonotone reproduces Section 4.2.1: improving a
// single small-probability fault can RAISE the risk ratio (reduce the gain
// from diversity) while still improving reliability.
func TestTraceSingleFaultNonMonotone(t *testing.T) {
	t.Parallel()

	// Fault 0 sits just above its stationary point; full improvement
	// sweeps it through the minimum and beyond, raising the ratio at the
	// end of the trajectory.
	fs := mustFaultSet(t, []faultmodel.Fault{{P: 0.05, Q: 0.1}, {P: 0.2, Q: 0.1}})
	amounts := []float64{0, 0.3, 0.6, 0.9, 1}
	points, err := Trace(fs, SingleFault{Index: 0}, amounts, 1)
	if err != nil {
		t.Fatalf("Trace: %v", err)
	}
	// Reliability always improves...
	for i := 1; i < len(points); i++ {
		if points[i].PAnyFault1 > points[i-1].PAnyFault1+1e-12 {
			t.Fatalf("P(N1>0) rose along the trajectory")
		}
	}
	// ...but the ratio ends higher than its minimum along the way: the
	// gain from diversity is not monotone in process quality.
	minRatio := math.Inf(1)
	for _, pt := range points {
		if pt.RiskRatio < minRatio {
			minRatio = pt.RiskRatio
		}
	}
	last := points[len(points)-1].RiskRatio
	if !(last > minRatio+1e-9) {
		t.Errorf("expected the ratio to rise after its minimum: min %v, final %v", minRatio, last)
	}
}

func TestTraceValidation(t *testing.T) {
	t.Parallel()

	fs := mustFaultSet(t, []faultmodel.Fault{{P: 0.4, Q: 0.1}})
	if _, err := Trace(fs, nil, []float64{0}, 1); err == nil {
		t.Error("nil improvement succeeded, want error")
	}
	if _, err := Trace(fs, Proportional{}, nil, 1); err == nil {
		t.Error("no amounts succeeded, want error")
	}
	if _, err := Trace(fs, Proportional{}, []float64{2}, 1); err == nil {
		t.Error("invalid amount succeeded, want error")
	}
}

func TestTraceFullImprovementRiskRatioNaN(t *testing.T) {
	t.Parallel()

	// amount=1 proportional improvement zeroes every p: the risk ratio is
	// undefined and must surface as NaN, not an error.
	fs := mustFaultSet(t, []faultmodel.Fault{{P: 0.4, Q: 0.1}})
	points, err := Trace(fs, Proportional{}, []float64{1}, 1)
	if err != nil {
		t.Fatalf("Trace: %v", err)
	}
	if !math.IsNaN(points[0].RiskRatio) {
		t.Errorf("risk ratio at full improvement = %v, want NaN", points[0].RiskRatio)
	}
	if points[0].PAnyFault1 != 0 {
		t.Errorf("P(N1>0) = %v, want 0", points[0].PAnyFault1)
	}
}

// TestBoundDifferenceIncreasesWithP verifies the paper's Section 5.2
// closing remark: measured as the DIFFERENCE between upper bounds,
// (µ1+kσ1)-(µ2+kσ2) improves (grows) with any increase in any p_i.
func TestBoundDifferenceIncreasesWithP(t *testing.T) {
	t.Parallel()

	base := mustFaultSet(t, []faultmodel.Fault{{P: 0.2, Q: 0.1}, {P: 0.1, Q: 0.1}})
	const k = 1.0
	baseGain, err := base.Gain(k)
	if err != nil {
		t.Fatalf("Gain: %v", err)
	}
	for i := 0; i < base.N(); i++ {
		raised, err := base.WithP(i, base.Fault(i).P+0.05)
		if err != nil {
			t.Fatalf("WithP: %v", err)
		}
		raisedGain, err := raised.Gain(k)
		if err != nil {
			t.Fatalf("Gain: %v", err)
		}
		if raisedGain.BoundDiff <= baseGain.BoundDiff {
			t.Errorf("raising p_%d did not increase the bound difference: %v -> %v",
				i, baseGain.BoundDiff, raisedGain.BoundDiff)
		}
	}
}
