package process

import (
	"fmt"
	"math"

	"diversity/internal/faultmodel"
)

// StatisticalTesting models process improvement by statistical testing and
// debugging, the realistic improvement discussed around the paper's
// references [7] and [13] ("Choosing between Fault-Tolerance and Increased
// V&V"; "The effects of testing on the reliability of single version and
// 1-out-of-2 software").
//
// During testing, Demands independent demands are drawn from the
// operational profile; a fault present in the version is detected exactly
// when some test demand hits its failure region, which happens with
// probability 1-(1-q_i)^T, and a detected fault is fixed perfectly. The
// fault therefore survives the whole process with probability
//
//	p_i' = p_i · (1-q_i)^T.
//
// Unlike the paper's two analytic special cases, this improvement is
// naturally NON-proportional: testing scrubs large-region faults first and
// barely touches small ones, which is precisely the regime in which
// Section 4.2.1 warns the gain from diversity can move either way.
type StatisticalTesting struct {
	// Demands is the testing budget at improvement amount 1; Apply scales
	// it by the amount, so amount a corresponds to a·Demands test
	// demands.
	Demands float64
}

var _ Improvement = StatisticalTesting{}

// Name implements Improvement.
func (s StatisticalTesting) Name() string {
	return fmt.Sprintf("statistical-testing[%g demands]", s.Demands)
}

// Apply implements Improvement: p_i -> p_i·(1-q_i)^(amount·Demands).
func (s StatisticalTesting) Apply(fs *faultmodel.FaultSet, amount float64) (*faultmodel.FaultSet, error) {
	if err := validateAmount(amount); err != nil {
		return nil, err
	}
	if math.IsNaN(s.Demands) || s.Demands < 0 {
		return nil, fmt.Errorf("process: testing budget %v must be non-negative", s.Demands)
	}
	return ApplyTesting(fs, amount*s.Demands)
}

// ApplyTesting returns the fault set after statistical testing with the
// given number of operational-profile test demands (need not be an
// integer; fractional budgets interpolate the exponent).
func ApplyTesting(fs *faultmodel.FaultSet, demands float64) (*faultmodel.FaultSet, error) {
	if math.IsNaN(demands) || demands < 0 {
		return nil, fmt.Errorf("process: test demand count %v must be non-negative", demands)
	}
	faults := fs.Faults()
	for i := range faults {
		faults[i].P *= math.Pow(1-faults[i].Q, demands)
	}
	return faultmodel.New(faults)
}

// TestedMeanPFD returns the mean PFD of a single version after testing
// with the given budget — the "one good version" side of the
// fault-tolerance-vs-V&V trade.
func TestedMeanPFD(fs *faultmodel.FaultSet, demands float64) (float64, error) {
	tested, err := ApplyTesting(fs, demands)
	if err != nil {
		return 0, err
	}
	return tested.MeanPFD(1)
}

// BudgetTrade compares the two ways of spending a verification budget of
// `totalDemands` test demands:
//
//   - single: develop ONE version and spend the whole budget testing it;
//   - diverse: develop TWO versions, pay `diversityOverhead` of the budget
//     for the second development, split the remainder evenly between the
//     versions, and run them as a 1-out-of-2 system.
//
// It returns the mean PFDs of both arrangements. This is the quantitative
// core of the "N-version design versus one good version" debate the
// paper's introduction engages (Hatton [1], Littlewood-Popov-Strigini
// [6]): which side wins depends on the fault universe, the budget AND the
// overhead — not on a universal law.
//
// A notable special case falls out of the model: with zero overhead the
// diverse arrangement is never worse on the mean, because the per-fault
// survival probabilities multiply across the two half-tested versions —
// p²·((1-q)^{T/2})² = p²·(1-q)^T <= p·(1-q)^T. The single version can win
// only by out-testing the pair, i.e. when the overhead eats test demands
// worth more than the p -> p² factor: (1-q)^overhead < p for the dominant
// fault.
func BudgetTrade(fs *faultmodel.FaultSet, totalDemands, diversityOverhead float64) (single, diverse float64, err error) {
	if math.IsNaN(totalDemands) || totalDemands < 0 {
		return 0, 0, fmt.Errorf("process: testing budget %v must be non-negative", totalDemands)
	}
	if math.IsNaN(diversityOverhead) || diversityOverhead < 0 || diversityOverhead > totalDemands {
		return 0, 0, fmt.Errorf("process: diversity overhead %v must be in [0, %v]", diversityOverhead, totalDemands)
	}
	fullTested, err := ApplyTesting(fs, totalDemands)
	if err != nil {
		return 0, 0, err
	}
	single, err = fullTested.MeanPFD(1)
	if err != nil {
		return 0, 0, err
	}
	halfTested, err := ApplyTesting(fs, (totalDemands-diversityOverhead)/2)
	if err != nil {
		return 0, 0, err
	}
	diverse, err = halfTested.MeanPFD(2)
	if err != nil {
		return 0, 0, err
	}
	return single, diverse, nil
}
