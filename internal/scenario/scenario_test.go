package scenario

import (
	"math"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	t.Parallel()

	cfg := GeneratorConfig{
		N: 50, PAlpha: 2, PBeta: 5, PScale: 0.5,
		QLogMu: math.Log(1e-3), QLogSigma: 1, SumQ: 0.2,
	}
	a, err := Generate(cfg, 99)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	b, err := Generate(cfg, 99)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	for i := 0; i < a.N(); i++ {
		if a.Fault(i) != b.Fault(i) {
			t.Fatalf("fault %d differs between identical seeds", i)
		}
	}
	c, err := Generate(cfg, 100)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	same := true
	for i := 0; i < a.N(); i++ {
		if a.Fault(i) != c.Fault(i) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical fault sets")
	}
}

func TestGenerateRespectsConfig(t *testing.T) {
	t.Parallel()

	cfg := GeneratorConfig{
		N: 200, PAlpha: 2, PBeta: 5, PScale: 0.3,
		QLogMu: math.Log(1e-3), QLogSigma: 1.5, SumQ: 0.25,
	}
	fs, err := Generate(cfg, 7)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if fs.N() != cfg.N {
		t.Errorf("N = %d, want %d", fs.N(), cfg.N)
	}
	if math.Abs(fs.SumQ()-cfg.SumQ) > 1e-9 {
		t.Errorf("SumQ = %v, want %v", fs.SumQ(), cfg.SumQ)
	}
	for i := 0; i < fs.N(); i++ {
		f := fs.Fault(i)
		if f.P < 0 || f.P > cfg.PScale {
			t.Errorf("fault %d: p=%v outside [0, %v]", i, f.P, cfg.PScale)
		}
		if f.Q <= 0 {
			t.Errorf("fault %d: q=%v not positive", i, f.Q)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	t.Parallel()

	base := GeneratorConfig{
		N: 10, PAlpha: 1, PBeta: 1, PScale: 0.5,
		QLogMu: 0, QLogSigma: 1, SumQ: 0.5,
	}
	tests := []struct {
		name   string
		mutate func(*GeneratorConfig)
	}{
		{name: "zero N", mutate: func(c *GeneratorConfig) { c.N = 0 }},
		{name: "bad alpha", mutate: func(c *GeneratorConfig) { c.PAlpha = 0 }},
		{name: "bad beta", mutate: func(c *GeneratorConfig) { c.PBeta = -1 }},
		{name: "zero scale", mutate: func(c *GeneratorConfig) { c.PScale = 0 }},
		{name: "scale above one", mutate: func(c *GeneratorConfig) { c.PScale = 1.5 }},
		{name: "negative sigma", mutate: func(c *GeneratorConfig) { c.QLogSigma = -1 }},
		{name: "zero sumQ", mutate: func(c *GeneratorConfig) { c.SumQ = 0 }},
		{name: "sumQ above one", mutate: func(c *GeneratorConfig) { c.SumQ = 1.5 }},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			cfg := base
			tt.mutate(&cfg)
			if _, err := Generate(cfg, 1); err == nil {
				t.Errorf("Generate with %s succeeded, want error", tt.name)
			}
		})
	}
}

func TestSafetyGradeRegime(t *testing.T) {
	t.Parallel()

	s, err := SafetyGrade(1)
	if err != nil {
		t.Fatalf("SafetyGrade: %v", err)
	}
	if s.Name == "" || s.Description == "" {
		t.Error("scenario must carry a name and description")
	}
	fs := s.FaultSet
	// The defining property of the regime: versions are usually fault
	// free.
	p0, err := fs.PNoFault(1)
	if err != nil {
		t.Fatalf("PNoFault: %v", err)
	}
	if p0 < 0.8 {
		t.Errorf("safety-grade P(no fault) = %v, want > 0.8", p0)
	}
	if fs.PMax() > 0.1 {
		t.Errorf("safety-grade pmax = %v, want small", fs.PMax())
	}
}

func TestManySmallFaultsRegime(t *testing.T) {
	t.Parallel()

	s, err := ManySmallFaults(1)
	if err != nil {
		t.Fatalf("ManySmallFaults: %v", err)
	}
	fs := s.FaultSet
	if fs.N() < 100 {
		t.Errorf("regime needs many faults, got %d", fs.N())
	}
	// Versions essentially always contain faults here.
	p0, err := fs.PNoFault(1)
	if err != nil {
		t.Fatalf("PNoFault: %v", err)
	}
	if p0 > 1e-3 {
		t.Errorf("many-small-faults P(no fault) = %v, want ~0", p0)
	}
	// And the sigma-bound precondition holds (all p small).
	if !fs.SigmaBoundHolds() {
		t.Error("regime should keep all p below the golden threshold")
	}
}

func TestCommercialGradeRegime(t *testing.T) {
	t.Parallel()

	s, err := CommercialGrade(1)
	if err != nil {
		t.Fatalf("CommercialGrade: %v", err)
	}
	if s.FaultSet.N() != 40 {
		t.Errorf("N = %d, want 40", s.FaultSet.N())
	}
}

func TestTwoFault(t *testing.T) {
	t.Parallel()

	s, err := TwoFault(0.3, 0.1)
	if err != nil {
		t.Fatalf("TwoFault: %v", err)
	}
	if s.FaultSet.N() != 2 || s.FaultSet.Fault(0).P != 0.3 || s.FaultSet.Fault(1).P != 0.1 {
		t.Errorf("TwoFault parameters wrong: %+v", s.FaultSet.Faults())
	}
	if _, err := TwoFault(-1, 0.5); err == nil {
		t.Error("TwoFault with invalid p succeeded, want error")
	}
}

func TestLargeUniverse(t *testing.T) {
	t.Parallel()

	const n = 100000
	s, err := LargeUniverse(n)
	if err != nil {
		t.Fatalf("LargeUniverse: %v", err)
	}
	fs := s.FaultSet
	if fs.N() != n {
		t.Fatalf("N = %d, want %d", fs.N(), n)
	}
	if math.Abs(fs.SumQ()-0.01) > 1e-9 {
		t.Errorf("SumQ = %v, want 0.01", fs.SumQ())
	}
	// Expected faults per version: 2.0 + 1.5 + 1.0 + 0.5 = 5.
	sumP := 0.0
	distinct := make(map[float64]bool)
	for i := 0; i < fs.N(); i++ {
		sumP += fs.Fault(i).P
		distinct[fs.Fault(i).P] = true
	}
	if math.Abs(sumP-5.0) > 1e-6 {
		t.Errorf("expected fault count per version = %v, want 5", sumP)
	}
	if len(distinct) != 4 {
		t.Errorf("distinct presence probabilities = %d, want 4 groups", len(distinct))
	}
	// Deterministic: identical across calls.
	s2, err := LargeUniverse(n)
	if err != nil {
		t.Fatalf("LargeUniverse: %v", err)
	}
	for i := 0; i < n; i += n / 100 {
		if fs.Fault(i) != s2.FaultSet.Fault(i) {
			t.Fatalf("fault %d differs between identical calls", i)
		}
	}
	if _, err := LargeUniverse(3); err == nil {
		t.Error("LargeUniverse(3) succeeded, want error")
	}
}

func TestMillionFaultsByName(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("million-fault generation in -short mode")
	}

	s, err := ByName("million-faults", 1)
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	if s.Name != "million-faults" {
		t.Errorf("Name = %q, want million-faults", s.Name)
	}
	if s.FaultSet.N() != 1_000_000 {
		t.Errorf("N = %d, want 1000000", s.FaultSet.N())
	}
	// Seed-independent: the regime is fully deterministic.
	s2, err := ByName("million-faults", 999)
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	if s.FaultSet.Fault(0) != s2.FaultSet.Fault(0) || s.FaultSet.Fault(999999) != s2.FaultSet.Fault(999999) {
		t.Error("million-faults varies with seed")
	}
	found := false
	for _, name := range Names() {
		if name == "million-faults" {
			found = true
		}
	}
	if !found {
		t.Error("million-faults missing from Names()")
	}
	// Deliberately not part of the experiment sweep.
	all, err := All(1)
	if err != nil {
		t.Fatalf("All: %v", err)
	}
	for _, sc := range all {
		if sc.Name == "million-faults" || sc.Name == "large-universe" {
			t.Errorf("All() includes %q; dense experiment sweeps cannot afford it", sc.Name)
		}
	}
}

func TestAll(t *testing.T) {
	t.Parallel()

	scenarios, err := All(3)
	if err != nil {
		t.Fatalf("All: %v", err)
	}
	if len(scenarios) != 4 {
		t.Fatalf("All returned %d scenarios, want 4", len(scenarios))
	}
	names := make(map[string]bool)
	for _, s := range scenarios {
		if names[s.Name] {
			t.Errorf("duplicate scenario name %q", s.Name)
		}
		names[s.Name] = true
		if s.FaultSet == nil {
			t.Errorf("scenario %q has nil fault set", s.Name)
		}
	}
}
