package scenario

import (
	"math"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	t.Parallel()

	cfg := GeneratorConfig{
		N: 50, PAlpha: 2, PBeta: 5, PScale: 0.5,
		QLogMu: math.Log(1e-3), QLogSigma: 1, SumQ: 0.2,
	}
	a, err := Generate(cfg, 99)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	b, err := Generate(cfg, 99)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	for i := 0; i < a.N(); i++ {
		if a.Fault(i) != b.Fault(i) {
			t.Fatalf("fault %d differs between identical seeds", i)
		}
	}
	c, err := Generate(cfg, 100)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	same := true
	for i := 0; i < a.N(); i++ {
		if a.Fault(i) != c.Fault(i) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical fault sets")
	}
}

func TestGenerateRespectsConfig(t *testing.T) {
	t.Parallel()

	cfg := GeneratorConfig{
		N: 200, PAlpha: 2, PBeta: 5, PScale: 0.3,
		QLogMu: math.Log(1e-3), QLogSigma: 1.5, SumQ: 0.25,
	}
	fs, err := Generate(cfg, 7)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if fs.N() != cfg.N {
		t.Errorf("N = %d, want %d", fs.N(), cfg.N)
	}
	if math.Abs(fs.SumQ()-cfg.SumQ) > 1e-9 {
		t.Errorf("SumQ = %v, want %v", fs.SumQ(), cfg.SumQ)
	}
	for i := 0; i < fs.N(); i++ {
		f := fs.Fault(i)
		if f.P < 0 || f.P > cfg.PScale {
			t.Errorf("fault %d: p=%v outside [0, %v]", i, f.P, cfg.PScale)
		}
		if f.Q <= 0 {
			t.Errorf("fault %d: q=%v not positive", i, f.Q)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	t.Parallel()

	base := GeneratorConfig{
		N: 10, PAlpha: 1, PBeta: 1, PScale: 0.5,
		QLogMu: 0, QLogSigma: 1, SumQ: 0.5,
	}
	tests := []struct {
		name   string
		mutate func(*GeneratorConfig)
	}{
		{name: "zero N", mutate: func(c *GeneratorConfig) { c.N = 0 }},
		{name: "bad alpha", mutate: func(c *GeneratorConfig) { c.PAlpha = 0 }},
		{name: "bad beta", mutate: func(c *GeneratorConfig) { c.PBeta = -1 }},
		{name: "zero scale", mutate: func(c *GeneratorConfig) { c.PScale = 0 }},
		{name: "scale above one", mutate: func(c *GeneratorConfig) { c.PScale = 1.5 }},
		{name: "negative sigma", mutate: func(c *GeneratorConfig) { c.QLogSigma = -1 }},
		{name: "zero sumQ", mutate: func(c *GeneratorConfig) { c.SumQ = 0 }},
		{name: "sumQ above one", mutate: func(c *GeneratorConfig) { c.SumQ = 1.5 }},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			cfg := base
			tt.mutate(&cfg)
			if _, err := Generate(cfg, 1); err == nil {
				t.Errorf("Generate with %s succeeded, want error", tt.name)
			}
		})
	}
}

func TestSafetyGradeRegime(t *testing.T) {
	t.Parallel()

	s, err := SafetyGrade(1)
	if err != nil {
		t.Fatalf("SafetyGrade: %v", err)
	}
	if s.Name == "" || s.Description == "" {
		t.Error("scenario must carry a name and description")
	}
	fs := s.FaultSet
	// The defining property of the regime: versions are usually fault
	// free.
	p0, err := fs.PNoFault(1)
	if err != nil {
		t.Fatalf("PNoFault: %v", err)
	}
	if p0 < 0.8 {
		t.Errorf("safety-grade P(no fault) = %v, want > 0.8", p0)
	}
	if fs.PMax() > 0.1 {
		t.Errorf("safety-grade pmax = %v, want small", fs.PMax())
	}
}

func TestManySmallFaultsRegime(t *testing.T) {
	t.Parallel()

	s, err := ManySmallFaults(1)
	if err != nil {
		t.Fatalf("ManySmallFaults: %v", err)
	}
	fs := s.FaultSet
	if fs.N() < 100 {
		t.Errorf("regime needs many faults, got %d", fs.N())
	}
	// Versions essentially always contain faults here.
	p0, err := fs.PNoFault(1)
	if err != nil {
		t.Fatalf("PNoFault: %v", err)
	}
	if p0 > 1e-3 {
		t.Errorf("many-small-faults P(no fault) = %v, want ~0", p0)
	}
	// And the sigma-bound precondition holds (all p small).
	if !fs.SigmaBoundHolds() {
		t.Error("regime should keep all p below the golden threshold")
	}
}

func TestCommercialGradeRegime(t *testing.T) {
	t.Parallel()

	s, err := CommercialGrade(1)
	if err != nil {
		t.Fatalf("CommercialGrade: %v", err)
	}
	if s.FaultSet.N() != 40 {
		t.Errorf("N = %d, want 40", s.FaultSet.N())
	}
}

// TestNVersionPoolRegime pins the LLM-diversity correlation regime: a
// small cluster of high-presence shared blind spots next to a large
// low-presence idiosyncratic tail, so adding versions to a 1-out-of-N pool
// shows geometric gains that flatten against the shared-fault floor.
func TestNVersionPoolRegime(t *testing.T) {
	t.Parallel()

	s, err := NVersionPool(1)
	if err != nil {
		t.Fatalf("NVersionPool: %v", err)
	}
	if s.Name != "n-version-pool" || s.Description == "" {
		t.Errorf("scenario metadata wrong: %+v", s)
	}
	fs := s.FaultSet
	if fs.N() != 64 {
		t.Errorf("N = %d, want 64 (4 shared + 60 idiosyncratic)", fs.N())
	}
	// The two mixture components are distinguishable by presence
	// probability: shared faults cluster near 0.5, the tail near 0.05.
	shared, tail := 0, 0
	for i := 0; i < fs.N(); i++ {
		if fs.Fault(i).P > 0.25 {
			shared++
		} else {
			tail++
		}
	}
	if shared < 3 || shared > 8 {
		t.Errorf("found %d high-presence blind-spot faults, want ~4", shared)
	}
	if tail < 50 {
		t.Errorf("found %d low-presence tail faults, want ~60", tail)
	}
	// The defining reliability signature: the pair's mean PFD improves on a
	// single version, but far less than independence would predict, and
	// deeper pools saturate (floor set by the shared faults).
	mu1, err := fs.MeanPFD(1)
	if err != nil {
		t.Fatalf("MeanPFD(1): %v", err)
	}
	mu2, err := fs.MeanPFD(2)
	if err != nil {
		t.Fatalf("MeanPFD(2): %v", err)
	}
	mu4, err := fs.MeanPFD(4)
	if err != nil {
		t.Fatalf("MeanPFD(4): %v", err)
	}
	mu5, err := fs.MeanPFD(5)
	if err != nil {
		t.Fatalf("MeanPFD(5): %v", err)
	}
	if !(mu2 < mu1) || !(mu5 < mu4) || !(mu4 < mu2) {
		t.Fatalf("pool means not decreasing: mu1=%v mu2=%v mu4=%v mu5=%v", mu1, mu2, mu4, mu5)
	}
	if gain := mu1 / mu2; gain > 20 {
		t.Errorf("pair gain %v looks independent; the regime must keep correlated blind spots", gain)
	}
	// Saturation: the per-version gain shrinks with depth as the shared
	// blind spots (halving per extra version) come to dominate the tail
	// (shrinking ~20x per extra version).
	if mu4/mu5 > mu1/mu2 {
		t.Errorf("gain should saturate with depth: 4→5 step gain %v exceeds 1→2 step gain %v", mu4/mu5, mu1/mu2)
	}
	// Deterministic in the seed, different across seeds.
	again, err := NVersionPool(1)
	if err != nil {
		t.Fatalf("NVersionPool: %v", err)
	}
	if again.FaultSet.Fault(0) != fs.Fault(0) {
		t.Error("same seed produced different parameters")
	}
	other, err := NVersionPool(2)
	if err != nil {
		t.Fatalf("NVersionPool: %v", err)
	}
	if other.FaultSet.Fault(0) == fs.Fault(0) {
		t.Error("different seeds produced identical parameters")
	}
	byName, err := ByName("n-version-pool", 1)
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	if byName.FaultSet.Fault(0) != fs.Fault(0) {
		t.Error("ByName does not dispatch to NVersionPool")
	}
}

func TestTwoFault(t *testing.T) {
	t.Parallel()

	s, err := TwoFault(0.3, 0.1)
	if err != nil {
		t.Fatalf("TwoFault: %v", err)
	}
	if s.FaultSet.N() != 2 || s.FaultSet.Fault(0).P != 0.3 || s.FaultSet.Fault(1).P != 0.1 {
		t.Errorf("TwoFault parameters wrong: %+v", s.FaultSet.Faults())
	}
	if _, err := TwoFault(-1, 0.5); err == nil {
		t.Error("TwoFault with invalid p succeeded, want error")
	}
}

func TestLargeUniverse(t *testing.T) {
	t.Parallel()

	const n = 100000
	s, err := LargeUniverse(n)
	if err != nil {
		t.Fatalf("LargeUniverse: %v", err)
	}
	fs := s.FaultSet
	if fs.N() != n {
		t.Fatalf("N = %d, want %d", fs.N(), n)
	}
	if math.Abs(fs.SumQ()-0.01) > 1e-9 {
		t.Errorf("SumQ = %v, want 0.01", fs.SumQ())
	}
	// Expected faults per version: 2.0 + 1.5 + 1.0 + 0.5 = 5.
	sumP := 0.0
	distinct := make(map[float64]bool)
	for i := 0; i < fs.N(); i++ {
		sumP += fs.Fault(i).P
		distinct[fs.Fault(i).P] = true
	}
	if math.Abs(sumP-5.0) > 1e-6 {
		t.Errorf("expected fault count per version = %v, want 5", sumP)
	}
	if len(distinct) != 4 {
		t.Errorf("distinct presence probabilities = %d, want 4 groups", len(distinct))
	}
	// Deterministic: identical across calls.
	s2, err := LargeUniverse(n)
	if err != nil {
		t.Fatalf("LargeUniverse: %v", err)
	}
	for i := 0; i < n; i += n / 100 {
		if fs.Fault(i) != s2.FaultSet.Fault(i) {
			t.Fatalf("fault %d differs between identical calls", i)
		}
	}
	if _, err := LargeUniverse(3); err == nil {
		t.Error("LargeUniverse(3) succeeded, want error")
	}
}

func TestMillionFaultsByName(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("million-fault generation in -short mode")
	}

	s, err := ByName("million-faults", 1)
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	if s.Name != "million-faults" {
		t.Errorf("Name = %q, want million-faults", s.Name)
	}
	if s.FaultSet.N() != 1_000_000 {
		t.Errorf("N = %d, want 1000000", s.FaultSet.N())
	}
	// Seed-independent: the regime is fully deterministic.
	s2, err := ByName("million-faults", 999)
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	if s.FaultSet.Fault(0) != s2.FaultSet.Fault(0) || s.FaultSet.Fault(999999) != s2.FaultSet.Fault(999999) {
		t.Error("million-faults varies with seed")
	}
	found := false
	for _, name := range Names() {
		if name == "million-faults" {
			found = true
		}
	}
	if !found {
		t.Error("million-faults missing from Names()")
	}
	// Deliberately not part of the experiment sweep.
	all, err := All(1)
	if err != nil {
		t.Fatalf("All: %v", err)
	}
	for _, sc := range all {
		if sc.Name == "million-faults" || sc.Name == "large-universe" {
			t.Errorf("All() includes %q; dense experiment sweeps cannot afford it", sc.Name)
		}
	}
}

func TestAll(t *testing.T) {
	t.Parallel()

	scenarios, err := All(3)
	if err != nil {
		t.Fatalf("All: %v", err)
	}
	if len(scenarios) != 4 {
		t.Fatalf("All returned %d scenarios, want 4", len(scenarios))
	}
	names := make(map[string]bool)
	for _, s := range scenarios {
		if names[s.Name] {
			t.Errorf("duplicate scenario name %q", s.Name)
		}
		names[s.Name] = true
		if s.FaultSet == nil {
			t.Errorf("scenario %q has nil fault set", s.Name)
		}
	}
}
