// Package scenario provides named, reproducible parameter regimes for the
// fault-creation model.
//
// The paper's 2n parameters are "unknown and unmeasurable in practice"
// (Section 3); its analysis proceeds by regimes — very high-quality
// software with a real chance of zero faults (Section 4) versus software
// with very many low-probability faults (Section 5). The generators here
// realise those regimes as concrete fault sets so that every experiment
// and example runs against the same, documented populations. All
// generation is deterministic in the provided seed.
package scenario

import (
	"fmt"
	"math"
	"strings"

	"diversity/internal/faultmodel"
	"diversity/internal/randx"
)

// Scenario is a named fault-set regime.
type Scenario struct {
	// Name is a short identifier used in reports and bench output.
	Name string
	// Description explains which of the paper's regimes the scenario
	// realises.
	Description string
	// FaultSet holds the generated model parameters.
	FaultSet *faultmodel.FaultSet
}

// GeneratorConfig describes a random fault-set population.
type GeneratorConfig struct {
	// N is the number of potential faults.
	N int
	// PAlpha, PBeta parameterise the Beta distribution the presence
	// probabilities p_i are drawn from.
	PAlpha, PBeta float64
	// PScale rescales the drawn p_i (useful to push a Beta shape into the
	// "very small probabilities" regime). Scaled values are clamped to 1.
	PScale float64
	// QLogMu, QLogSigma parameterise the lognormal the raw region sizes
	// are drawn from; fault sizes in real programs are heavy-tailed.
	QLogMu, QLogSigma float64
	// SumQ is the total demand-space probability the failure regions are
	// normalised to (must be in (0, 1]).
	SumQ float64
}

func (cfg GeneratorConfig) validate() error {
	if cfg.N < 1 {
		return fmt.Errorf("scenario: fault count %d must be at least 1", cfg.N)
	}
	if !(cfg.PAlpha > 0) || !(cfg.PBeta > 0) {
		return fmt.Errorf("scenario: Beta shape parameters (%v, %v) must be positive", cfg.PAlpha, cfg.PBeta)
	}
	if !(cfg.PScale > 0) || cfg.PScale > 1 {
		return fmt.Errorf("scenario: presence scale %v must be in (0, 1]", cfg.PScale)
	}
	if math.IsNaN(cfg.QLogMu) || !(cfg.QLogSigma >= 0) {
		return fmt.Errorf("scenario: lognormal parameters (%v, %v) invalid", cfg.QLogMu, cfg.QLogSigma)
	}
	if !(cfg.SumQ > 0) || cfg.SumQ > 1 {
		return fmt.Errorf("scenario: total region probability %v must be in (0, 1]", cfg.SumQ)
	}
	return nil
}

// Generate draws a fault set from the configured population using seed.
func Generate(cfg GeneratorConfig, seed uint64) (*faultmodel.FaultSet, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := randx.NewStream(seed)
	faults := make([]faultmodel.Fault, cfg.N)
	raw := make([]float64, cfg.N)
	total := 0.0
	for i := range faults {
		p := r.Beta(cfg.PAlpha, cfg.PBeta) * cfg.PScale
		if p > 1 {
			p = 1
		}
		faults[i].P = p
		raw[i] = math.Exp(r.NormalMuSigma(cfg.QLogMu, cfg.QLogSigma))
		total += raw[i]
	}
	for i := range faults {
		faults[i].Q = raw[i] / total * cfg.SumQ
	}
	fs, err := faultmodel.New(faults)
	if err != nil {
		return nil, fmt.Errorf("scenario: generated parameters invalid: %w", err)
	}
	return fs, nil
}

// SafetyGrade realises the paper's Section-4 regime: a handful of possible
// faults, each very unlikely to survive the rigorous process, so the
// versions have a high probability of being fault-free and the measure of
// interest is P(no common fault).
func SafetyGrade(seed uint64) (Scenario, error) {
	fs, err := Generate(GeneratorConfig{
		N:         8,
		PAlpha:    1.2,
		PBeta:     8,
		PScale:    0.05, // mean presence probability ~0.65%
		QLogMu:    math.Log(1e-4),
		QLogSigma: 1.2,
		SumQ:      0.002,
	}, seed)
	if err != nil {
		return Scenario{}, err
	}
	return Scenario{
		Name:        "safety-grade",
		Description: "few potential faults, tiny presence probabilities; Section-4 near-fault-free regime",
		FaultSet:    fs,
	}, nil
}

// ManySmallFaults realises the paper's Section-5 regime: very many
// possible faults with small region probabilities, where the PFD is a sum
// of many independent contributions and the normal approximation is the
// tool of interest.
func ManySmallFaults(seed uint64) (Scenario, error) {
	fs, err := Generate(GeneratorConfig{
		N:         400,
		PAlpha:    1.5,
		PBeta:     12,
		PScale:    0.5, // mean presence probability ~5.6%
		QLogMu:    math.Log(2e-4),
		QLogSigma: 0.9,
		SumQ:      0.08,
	}, seed)
	if err != nil {
		return Scenario{}, err
	}
	return Scenario{
		Name:        "many-small-faults",
		Description: "hundreds of low-probability faults; Section-5 normal-approximation regime",
		FaultSet:    fs,
	}, nil
}

// CommercialGrade is an intermediate regime: a few dozen faults with
// moderate probabilities, loosely matching commercial development without
// safety-specific V&V. It exercises the model between the two extremes.
func CommercialGrade(seed uint64) (Scenario, error) {
	fs, err := Generate(GeneratorConfig{
		N:         40,
		PAlpha:    2,
		PBeta:     6,
		PScale:    0.6, // mean presence probability ~15%
		QLogMu:    math.Log(2e-3),
		QLogSigma: 1.1,
		SumQ:      0.15,
	}, seed)
	if err != nil {
		return Scenario{}, err
	}
	return Scenario{
		Name:        "commercial-grade",
		Description: "moderate fault counts and probabilities; intermediate regime",
		FaultSet:    fs,
	}, nil
}

// LargeUniverse realises the sparse-kernel stress regime: a universe of n
// potential faults split into four equal groups whose per-version expected
// fault counts are 2.0, 1.5, 1.0 and 0.5 (so k = E[faults per version] =
// 5 regardless of n), with equal region sizes summing to SumQ = 0.01. The
// construction is deterministic — no seed — so the regime is identical
// across runs and machines. At n = 10^6 a dense development pass touches
// every fault; the grouped equal-p structure is exactly what the geometric
// skip-sampling kernel exploits to make a replication O(k).
func LargeUniverse(n int) (Scenario, error) {
	if n < 4 {
		return Scenario{}, fmt.Errorf("scenario: large-universe fault count %d must be at least 4", n)
	}
	const sumQ = 0.01
	counts := [4]float64{2.0, 1.5, 1.0, 0.5}
	faults := make([]faultmodel.Fault, n)
	q := sumQ / float64(n)
	bounds := [5]int{0, n / 4, n / 2, 3 * n / 4, n}
	for g := 0; g < 4; g++ {
		p := counts[g] / float64(bounds[g+1]-bounds[g])
		for i := bounds[g]; i < bounds[g+1]; i++ {
			faults[i] = faultmodel.Fault{P: p, Q: q}
		}
	}
	fs, err := faultmodel.New(faults)
	if err != nil {
		return Scenario{}, fmt.Errorf("scenario: large-universe parameters invalid: %w", err)
	}
	return Scenario{
		Name:        "large-universe",
		Description: fmt.Sprintf("%d equal-size faults in four probability groups, ~5 expected faults per version; sparse-kernel regime", n),
		FaultSet:    fs,
	}, nil
}

// NVersionPool realises the failure-correlation regime recent studies of
// LLM-generated N-version pools report ("A Systematic Methodology for
// Evaluating Failure Independence in LLM-Generated Code"; "Effectiveness
// of LLM-based Software Diversity for Reliability Improvement", see
// PAPERS.md): machine-generated variants of one specification fail far
// from independently. Both studies find a small cluster of
// specification-level blind spots shared by a large fraction of the pool —
// joint failure rates orders of magnitude above the independence product —
// next to a long tail of variant-specific faults that diversity does
// suppress. In the fault-creation model all inter-version correlation is
// carried by the presence probabilities, so the regime is a two-component
// mixture:
//
//   - 4 shared blind-spot faults, p ~ Beta(8, 8) (mean 0.5): mistakes most
//     variants repeat, which defeat even large 1-out-of-N pools and floor
//     the gain from adding versions;
//   - 60 variant-specific faults, p ~ Beta(1.5, 27) (mean ≈ 5%): the
//     component k-of-N adjudication suppresses geometrically.
//
// Region sizes are lognormal (heavy-tailed, as in the other generated
// regimes) and normalised to SumQ = 0.05. Generation is deterministic in
// the seed.
func NVersionPool(seed uint64) (Scenario, error) {
	const (
		nShared = 4
		nIdio   = 60
		sumQ    = 0.05
	)
	r := randx.NewStream(seed)
	n := nShared + nIdio
	faults := make([]faultmodel.Fault, n)
	raw := make([]float64, n)
	total := 0.0
	for i := range faults {
		if i < nShared {
			faults[i].P = r.Beta(8, 8)
		} else {
			faults[i].P = r.Beta(1.5, 27)
		}
		raw[i] = math.Exp(r.NormalMuSigma(math.Log(1e-3), 1.1))
		total += raw[i]
	}
	for i := range faults {
		faults[i].Q = raw[i] / total * sumQ
	}
	fs, err := faultmodel.New(faults)
	if err != nil {
		return Scenario{}, fmt.Errorf("scenario: n-version-pool parameters invalid: %w", err)
	}
	return Scenario{
		Name:        "n-version-pool",
		Description: "shared blind-spot faults plus a variant-specific tail; LLM-generated N-version correlation regime",
		FaultSet:    fs,
	}, nil
}

// TwoFault returns the paper's Appendix-A two-fault configuration with the
// given presence probabilities and equal region sizes — the setting of the
// single-fault-improvement analysis (experiment E05).
func TwoFault(p1, p2 float64) (Scenario, error) {
	fs, err := faultmodel.New([]faultmodel.Fault{
		{P: p1, Q: 0.1},
		{P: p2, Q: 0.1},
	})
	if err != nil {
		return Scenario{}, err
	}
	return Scenario{
		Name:        "two-fault",
		Description: "Appendix-A two-fault configuration",
		FaultSet:    fs,
	}, nil
}

// Names returns the names accepted by ByName, in presentation order.
func Names() []string {
	return []string{"safety-grade", "many-small-faults", "commercial-grade", "n-version-pool", "million-faults"}
}

// ByName generates the named scenario from seed. It is the single
// name-to-scenario mapping shared by the CLIs and the execution engine.
// "million-faults" is deterministic and ignores the seed; it is addressable
// by name but deliberately absent from All(), whose consumers sweep dense
// replication counts that a 10^6-fault universe would stall.
func ByName(name string, seed uint64) (Scenario, error) {
	switch name {
	case "safety-grade":
		return SafetyGrade(seed)
	case "many-small-faults":
		return ManySmallFaults(seed)
	case "commercial-grade":
		return CommercialGrade(seed)
	case "n-version-pool":
		return NVersionPool(seed)
	case "million-faults":
		s, err := LargeUniverse(1_000_000)
		if err != nil {
			return Scenario{}, err
		}
		s.Name = "million-faults"
		return s, nil
	default:
		return Scenario{}, fmt.Errorf("unknown scenario %q (want %s)", name, strings.Join(Names(), ", "))
	}
}

// All returns one instance of each named random scenario, generated from
// the same seed, plus a representative two-fault configuration. It is the
// default population the experiment driver sweeps over.
func All(seed uint64) ([]Scenario, error) {
	safety, err := SafetyGrade(seed)
	if err != nil {
		return nil, err
	}
	many, err := ManySmallFaults(seed)
	if err != nil {
		return nil, err
	}
	commercial, err := CommercialGrade(seed)
	if err != nil {
		return nil, err
	}
	two, err := TwoFault(0.3, 0.1)
	if err != nil {
		return nil, err
	}
	return []Scenario{safety, many, commercial, two}, nil
}
