package stats

import (
	"math"
	"testing"
)

// Fuzz targets for the numerical kernels. Under plain `go test` only the
// seed corpus runs; `go test -fuzz=FuzzX` explores further.

func FuzzGammaPInvariants(f *testing.F) {
	f.Add(0.5, 0.25)
	f.Add(1.0, 1.0)
	f.Add(10.0, 5.0)
	f.Add(100.0, 120.0)
	f.Add(0.001, 1e-6)
	f.Fuzz(func(t *testing.T, a, x float64) {
		if !(a > 0) || !(x >= 0) || a > 1e6 || x > 1e6 {
			t.Skip()
		}
		p, err := GammaP(a, x)
		if err != nil {
			t.Fatalf("GammaP(%v, %v): %v", a, x, err)
		}
		if math.IsNaN(p) || p < -1e-12 || p > 1+1e-12 {
			t.Errorf("GammaP(%v, %v) = %v outside [0, 1]", a, x, p)
		}
		q, err := GammaQ(a, x)
		if err != nil {
			t.Fatalf("GammaQ(%v, %v): %v", a, x, err)
		}
		if math.Abs(p+q-1) > 1e-9 {
			t.Errorf("P+Q = %v for a=%v x=%v", p+q, a, x)
		}
		// Monotone in x.
		p2, err := GammaP(a, x+x/2+0.1)
		if err != nil {
			t.Fatalf("GammaP: %v", err)
		}
		if p2 < p-1e-9 {
			t.Errorf("GammaP decreasing in x at a=%v x=%v: %v -> %v", a, x, p, p2)
		}
	})
}

func FuzzBetaIncInvariants(f *testing.F) {
	f.Add(1.0, 1.0, 0.5)
	f.Add(0.5, 0.5, 0.25)
	f.Add(5.0, 2.0, 0.9)
	f.Add(100.0, 50.0, 0.6)
	f.Fuzz(func(t *testing.T, a, b, x float64) {
		if !(a > 0) || !(b > 0) || !(x >= 0 && x <= 1) || a > 1e5 || b > 1e5 {
			t.Skip()
		}
		v, err := BetaInc(a, b, x)
		if err != nil {
			t.Fatalf("BetaInc(%v, %v, %v): %v", a, b, x, err)
		}
		if math.IsNaN(v) || v < -1e-12 || v > 1+1e-12 {
			t.Errorf("BetaInc(%v, %v, %v) = %v outside [0, 1]", a, b, x, v)
		}
		// Reflection identity.
		w, err := BetaInc(b, a, 1-x)
		if err != nil {
			t.Fatalf("BetaInc reflection: %v", err)
		}
		if math.Abs(v+w-1) > 1e-8 {
			t.Errorf("I_x(a,b) + I_{1-x}(b,a) = %v for a=%v b=%v x=%v", v+w, a, b, x)
		}
	})
}

func FuzzNormalQuantileRoundTrip(f *testing.F) {
	f.Add(0.5)
	f.Add(0.001)
	f.Add(0.999)
	f.Add(1e-12)
	f.Add(0.84)
	f.Fuzz(func(t *testing.T, p float64) {
		if !(p > 0 && p < 1) {
			t.Skip()
		}
		z, err := StdNormal.Quantile(p)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", p, err)
		}
		back := StdNormal.CDF(z)
		// Relative tolerance in probability space.
		tol := 1e-9 + 1e-9*math.Min(p, 1-p)
		if math.Abs(back-p) > tol && math.Abs(back-p) > 1e-12 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, back)
		}
	})
}

func FuzzKolmogorovQBounds(f *testing.F) {
	f.Add(0.1)
	f.Add(0.8275)
	f.Add(3.0)
	f.Fuzz(func(t *testing.T, lambda float64) {
		if math.IsNaN(lambda) || lambda < 0 || lambda > 100 {
			t.Skip()
		}
		q := kolmogorovQ(lambda)
		if math.IsNaN(q) || q < 0 || q > 1 {
			t.Errorf("kolmogorovQ(%v) = %v outside [0, 1]", lambda, q)
		}
	})
}
