package stats

import (
	"fmt"
	"math"
	"sort"
)

// ECDF is an empirical cumulative distribution function built from a
// sample. It answers P(X <= x) under the empirical measure and provides
// empirical quantiles, which the Monte-Carlo harness reports as percentile
// reliability bounds (the paper's "99% confidence bound on the PFD").
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from xs. It returns an error for an empty sample.
// xs is copied, not retained.
func NewECDF(xs []float64) (*ECDF, error) {
	if len(xs) == 0 {
		return nil, ErrEmptySample
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return &ECDF{sorted: sorted}, nil
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// At returns the empirical CDF value at x: the fraction of observations
// less than or equal to x.
func (e *ECDF) At(x float64) float64 {
	// sort.SearchFloat64s returns the first index with sorted[i] >= x;
	// advance over ties to count observations <= x.
	i := sort.SearchFloat64s(e.sorted, x)
	for i < len(e.sorted) && e.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the empirical p-th quantile (type 7 interpolation).
// It returns an error if p is outside [0, 1].
func (e *ECDF) Quantile(p float64) (float64, error) {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return 0, fmt.Errorf("stats: ECDF quantile requires p in [0, 1], got %v", p)
	}
	return quantileSorted(e.sorted, p), nil
}

// Exceedance returns the empirical probability P(X > x).
func (e *ECDF) Exceedance(x float64) float64 { return 1 - e.At(x) }

// Histogram is a fixed-width binned view of a sample, used by the report
// package to render the distribution "figures" of the experiments.
type Histogram struct {
	// Lo and Hi are the histogram range; observations outside are counted
	// in Under/Over.
	Lo, Hi float64
	// Counts holds the per-cell observation counts, in cell order.
	Counts []int
	// Under counts observations below Lo.
	Under int
	// Over counts observations at or above Hi.
	Over  int
	total int
}

// NewHistogram bins xs into bins equal-width cells spanning [lo, hi].
// It returns an error if bins < 1 or the range is empty or not finite.
func NewHistogram(xs []float64, lo, hi float64, bins int) (*Histogram, error) {
	if bins < 1 {
		return nil, fmt.Errorf("stats: histogram requires at least 1 bin, got %d", bins)
	}
	if !(lo < hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) {
		return nil, fmt.Errorf("stats: invalid histogram range [%v, %v]", lo, hi)
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	width := (hi - lo) / float64(bins)
	for _, x := range xs {
		switch {
		case x < lo:
			h.Under++
		case x > hi:
			h.Over++
		default:
			i := int((x - lo) / width)
			if i == bins { // x == hi lands in the last bin
				i = bins - 1
			}
			h.Counts[i]++
		}
	}
	h.total = len(xs)
	return h, nil
}

// Total returns the number of observations offered to the histogram,
// including out-of-range ones.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*width
}

// Density returns the estimated probability density in bin i (count
// normalised by total and bin width).
func (h *Histogram) Density(i int) float64 {
	if h.total == 0 {
		return 0
	}
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return float64(h.Counts[i]) / (float64(h.total) * width)
}
