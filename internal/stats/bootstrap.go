package stats

import (
	"fmt"
	"math"

	"diversity/internal/randx"
)

// BootstrapCI is a percentile bootstrap confidence interval for a sample
// statistic.
type BootstrapCI struct {
	// Point is the statistic evaluated on the original sample.
	Point float64
	// Lo and Hi bracket the statistic at the requested confidence level.
	Lo, Hi float64
	// Level is the nominal two-sided confidence level (e.g. 0.95).
	Level float64
}

// Bootstrap computes a percentile bootstrap confidence interval for
// statistic over xs using reps resamples drawn from r.
//
// The Monte-Carlo experiments report bootstrap intervals around estimated
// PFD percentiles so that paper-vs-measured comparisons distinguish real
// model disagreement from simulation noise.
func Bootstrap(r *randx.Stream, xs []float64, statistic func([]float64) float64, reps int, level float64) (BootstrapCI, error) {
	if len(xs) == 0 {
		return BootstrapCI{}, ErrEmptySample
	}
	if reps < 2 {
		return BootstrapCI{}, fmt.Errorf("stats: bootstrap requires at least 2 resamples, got %d", reps)
	}
	if level <= 0 || level >= 1 {
		return BootstrapCI{}, fmt.Errorf("stats: bootstrap level must be in (0, 1), got %v", level)
	}

	point := statistic(xs)
	resample := make([]float64, len(xs))
	estimates := make([]float64, reps)
	for rep := 0; rep < reps; rep++ {
		for i := range resample {
			resample[i] = xs[r.IntN(len(xs))]
		}
		estimates[rep] = statistic(resample)
	}
	alpha := (1 - level) / 2
	lo, err := Quantile(estimates, alpha)
	if err != nil {
		return BootstrapCI{}, err
	}
	hi, err := Quantile(estimates, 1-alpha)
	if err != nil {
		return BootstrapCI{}, err
	}
	return BootstrapCI{Point: point, Lo: lo, Hi: hi, Level: level}, nil
}

// WilsonInterval returns the Wilson score interval for a binomial
// proportion with successes out of trials at the given confidence level.
// It is used for Monte-Carlo estimates of event probabilities such as
// P(no common fault), where the normal ("Wald") interval misbehaves for
// proportions near 0.
func WilsonInterval(successes, trials int, level float64) (lo, hi float64, err error) {
	if trials <= 0 {
		return 0, 0, fmt.Errorf("stats: Wilson interval requires positive trials, got %d", trials)
	}
	if successes < 0 || successes > trials {
		return 0, 0, fmt.Errorf("stats: Wilson interval successes %d out of range [0, %d]", successes, trials)
	}
	if level <= 0 || level >= 1 {
		return 0, 0, fmt.Errorf("stats: Wilson interval level must be in (0, 1), got %v", level)
	}
	z, err := StdNormal.Quantile(1 - (1-level)/2)
	if err != nil {
		return 0, 0, err
	}
	n := float64(trials)
	p := float64(successes) / n
	z2 := z * z
	denom := 1 + z2/n
	center := (p + z2/(2*n)) / denom
	half := z / denom * sqrtNonNeg(p*(1-p)/n+z2/(4*n*n))
	return center - half, center + half, nil
}

func sqrtNonNeg(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
