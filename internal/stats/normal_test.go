package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalCDFKnownValues(t *testing.T) {
	t.Parallel()

	tests := []struct {
		z, want float64
	}{
		{z: 0, want: 0.5},
		{z: 1, want: 0.8413447460685429},
		{z: -1, want: 0.15865525393145707},
		{z: 1.96, want: 0.9750021048517795},
		{z: 2.33, want: 0.9900969244408357},
		{z: 3, want: 0.9986501019683699},
		{z: -6, want: 9.865876450376946e-10},
	}
	for _, tt := range tests {
		if got := StdNormal.CDF(tt.z); !almostEqual(got, tt.want, 1e-10) {
			t.Errorf("Phi(%v) = %.16g, want %.16g", tt.z, got, tt.want)
		}
	}
}

// TestNormalThreeSigma pins the paper's Section 5 statement
// P(Theta <= mu + 3 sigma) = 0.99865003.
func TestNormalThreeSigma(t *testing.T) {
	t.Parallel()

	n := Normal{Mu: 0.37, Sigma: 0.045}
	got := n.CDF(n.Mu + 3*n.Sigma)
	if !almostEqual(got, 0.99865003, 1e-7) {
		t.Errorf("P(X <= mu+3sigma) = %.8f, want 0.99865003 (paper, Section 5)", got)
	}
}

// TestNormal99PercentQuantile pins the paper's Section 5 statement that the
// 99% confidence level corresponds to mu + 2.33 sigma.
func TestNormal99PercentQuantile(t *testing.T) {
	t.Parallel()

	z, err := StdNormal.Quantile(0.99)
	if err != nil {
		t.Fatalf("Quantile(0.99): %v", err)
	}
	if math.Abs(z-2.33) > 0.005 {
		t.Errorf("z(0.99) = %.4f, want ~2.33 (paper, Section 5)", z)
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	t.Parallel()

	dist := Normal{Mu: -3, Sigma: 2.5}
	for _, p := range []float64{1e-12, 1e-6, 0.01, 0.1, 0.5, 0.84, 0.99, 1 - 1e-6, 1 - 1e-12} {
		x, err := dist.Quantile(p)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", p, err)
		}
		back := dist.CDF(x)
		if !almostEqual(back, p, 1e-9) {
			t.Errorf("CDF(Quantile(%v)) = %.16g", p, back)
		}
	}
}

func TestNormalQuantileProperty(t *testing.T) {
	t.Parallel()

	// Property: quantile is the inverse of the CDF over (0, 1), for any
	// finite mu and positive sigma.
	err := quick.Check(func(seedP uint32, rawMu int16, rawSigma uint8) bool {
		p := (float64(seedP) + 1) / (float64(math.MaxUint32) + 2) // (0,1)
		mu := float64(rawMu) / 100
		sigma := float64(rawSigma)/50 + 0.01
		dist := Normal{Mu: mu, Sigma: sigma}
		x, err := dist.Quantile(p)
		if err != nil {
			return false
		}
		return almostEqual(dist.CDF(x), p, 1e-8)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestNormalQuantileErrors(t *testing.T) {
	t.Parallel()

	for _, p := range []float64{-0.1, 0, 1, 1.5, math.NaN()} {
		if _, err := StdNormal.Quantile(p); err == nil {
			t.Errorf("Quantile(%v) succeeded, want error", p)
		}
	}
}

func TestNormalSurvivalTail(t *testing.T) {
	t.Parallel()

	// Survival must stay accurate far into the tail where 1-CDF loses all
	// precision.
	got := StdNormal.Survival(10)
	want := 7.61985302416053e-24 // erfc(10/sqrt(2))/2
	if !almostEqual(got, want, 1e-6) {
		t.Errorf("Survival(10) = %g, want %g", got, want)
	}
	if s := StdNormal.Survival(-10); !almostEqual(s, 1, 1e-15) {
		t.Errorf("Survival(-10) = %v, want ~1", s)
	}
}

func TestNormalPDF(t *testing.T) {
	t.Parallel()

	if got := StdNormal.PDF(0); !almostEqual(got, 1/math.Sqrt(2*math.Pi), 1e-14) {
		t.Errorf("phi(0) = %v", got)
	}
	// Integral of the PDF over a wide grid should be ~1.
	sum := 0.0
	const dx = 0.001
	for x := -8.0; x <= 8; x += dx {
		sum += StdNormal.PDF(x) * dx
	}
	if !almostEqual(sum, 1, 1e-3) {
		t.Errorf("integral of PDF = %v, want ~1", sum)
	}
}

func TestNormalZeroSigma(t *testing.T) {
	t.Parallel()

	point := Normal{Mu: 2, Sigma: 0}
	if got := point.CDF(1.999); got != 0 {
		t.Errorf("point-mass CDF below mean = %v, want 0", got)
	}
	if got := point.CDF(2); got != 1 {
		t.Errorf("point-mass CDF at mean = %v, want 1", got)
	}
	if got := point.Survival(2); got != 0 {
		t.Errorf("point-mass survival at mean = %v, want 0", got)
	}
	if got := point.PDF(3); got != 0 {
		t.Errorf("point-mass PDF off mean = %v, want 0", got)
	}
	if !math.IsInf(point.PDF(2), 1) {
		t.Errorf("point-mass PDF at mean = %v, want +Inf", point.PDF(2))
	}
}

func TestNewNormalValidation(t *testing.T) {
	t.Parallel()

	if _, err := NewNormal(0, -1); err == nil {
		t.Error("NewNormal(0, -1) succeeded, want error")
	}
	if _, err := NewNormal(math.NaN(), 1); err == nil {
		t.Error("NewNormal(NaN, 1) succeeded, want error")
	}
	if _, err := NewNormal(math.Inf(1), 1); err == nil {
		t.Error("NewNormal(inf, 1) succeeded, want error")
	}
	n, err := NewNormal(1, 2)
	if err != nil {
		t.Fatalf("NewNormal(1, 2): %v", err)
	}
	if n.Mean() != 1 || n.StdDev() != 2 || n.Variance() != 4 {
		t.Errorf("NewNormal(1, 2) moments wrong: %+v", n)
	}
}
