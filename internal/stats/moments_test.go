package stats

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

// twoPassMoments computes the reference central moments in two exact
// passes.
func twoPassMoments(xs []float64) (mean, m2, m3, m4 float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		m2 += d * d
		m3 += d * d * d
		m4 += d * d * d * d
	}
	return mean, m2, m3, m4
}

func momentsClose(t *testing.T, label string, want, got float64) {
	t.Helper()
	diff := math.Abs(want - got)
	scale := math.Max(math.Abs(want), math.Abs(got))
	if scale == 0 {
		if diff != 0 {
			t.Errorf("%s: want %v, got %v", label, want, got)
		}
		return
	}
	if diff/scale > 1e-10 {
		t.Errorf("%s: want %v, got %v (relative error %.3g)", label, want, got, diff/scale)
	}
}

func TestMomentsAgainstTwoPass(t *testing.T) {
	t.Parallel()

	// A deliberately skewed sample mixing magnitudes, including ties and
	// zeros, at PFD-like scale.
	xs := []float64{0, 0, 1e-6, 3e-6, 3e-6, 2e-5, 4e-5, 1e-4, 5e-4, 2e-3, 2e-3, 0.01, 0.05}
	var m Moments
	for _, x := range xs {
		m.Add(x)
	}
	if got, want := m.N(), int64(len(xs)); got != want {
		t.Fatalf("N = %d, want %d", got, want)
	}
	mean, m2, m3, m4 := twoPassMoments(xs)
	n := float64(len(xs))
	momentsClose(t, "mean", mean, m.Mean())
	momentsClose(t, "population variance", m2/n, m.PopulationVariance())
	v, err := m.Variance()
	if err != nil {
		t.Fatalf("Variance: %v", err)
	}
	momentsClose(t, "sample variance", m2/(n-1), v)
	sd, err := m.StdDev()
	if err != nil {
		t.Fatalf("StdDev: %v", err)
	}
	momentsClose(t, "stddev", math.Sqrt(m2/(n-1)), sd)
	pm2 := m2 / n
	momentsClose(t, "skewness", (m3/n)/math.Pow(pm2, 1.5), m.Skewness())
	momentsClose(t, "kurtosis", (m4/n)/(pm2*pm2)-3, m.Kurtosis())
}

func TestMomentsMergeMatchesSequential(t *testing.T) {
	t.Parallel()

	xs := make([]float64, 0, 1200)
	x := 0.37
	for i := 0; i < 1200; i++ {
		// A deterministic chaotic sequence exercises the accumulator with
		// full-precision values.
		x = 3.9 * x * (1 - x)
		xs = append(xs, x*1e-3)
	}
	var whole Moments
	for _, v := range xs {
		whole.Add(v)
	}
	for _, split := range []int{1, 17, 600, 1199} {
		var a, b Moments
		for _, v := range xs[:split] {
			a.Add(v)
		}
		for _, v := range xs[split:] {
			b.Add(v)
		}
		a.Merge(b)
		if a.N() != whole.N() {
			t.Fatalf("split %d: N = %d, want %d", split, a.N(), whole.N())
		}
		momentsClose(t, "merged mean", whole.Mean(), a.Mean())
		momentsClose(t, "merged popvar", whole.PopulationVariance(), a.PopulationVariance())
		momentsClose(t, "merged skewness", whole.Skewness(), a.Skewness())
		momentsClose(t, "merged kurtosis", whole.Kurtosis(), a.Kurtosis())
	}
}

func TestMomentsMergeEmptySides(t *testing.T) {
	t.Parallel()

	var a, b Moments
	b.Add(2)
	b.Add(4)
	a.Merge(b) // empty receiver adopts the argument
	if a.N() != 2 || a.Mean() != 3 {
		t.Errorf("merge into empty: N=%d mean=%v, want 2 and 3", a.N(), a.Mean())
	}
	before := a
	a.Merge(Moments{}) // empty argument is a no-op
	if a != before {
		t.Error("merging an empty accumulator changed the receiver")
	}
}

func TestMomentsDegenerate(t *testing.T) {
	t.Parallel()

	var m Moments
	if _, err := m.Variance(); err == nil {
		t.Error("empty Variance succeeded, want error")
	}
	if m.Skewness() != 0 || m.Kurtosis() != 0 {
		t.Error("empty skewness/kurtosis non-zero")
	}
	m.Add(5)
	if _, err := m.Variance(); err == nil {
		t.Error("single-observation Variance succeeded, want error")
	}
	m.Add(5)
	m.Add(5)
	// Constant sample: zero variance, moment ratios defined as 0.
	if pv := m.PopulationVariance(); pv != 0 {
		t.Errorf("constant-sample population variance = %v, want 0", pv)
	}
	if m.Skewness() != 0 || m.Kurtosis() != 0 {
		t.Error("constant-sample skewness/kurtosis non-zero")
	}
}

// TestMomentsMatchesAccumulator ties the two streaming types together:
// mean and variance must agree to near machine precision on the same
// data, since Summarize mixes them in one report.
func TestMomentsMatchesAccumulator(t *testing.T) {
	t.Parallel()

	var m Moments
	var a Accumulator
	x := 0.2
	for i := 0; i < 5000; i++ {
		x = 3.7 * x * (1 - x)
		m.Add(x)
		a.Add(x)
	}
	momentsClose(t, "mean vs Accumulator", a.Mean(), m.Mean())
	av, err := a.Variance()
	if err != nil {
		t.Fatalf("Accumulator.Variance: %v", err)
	}
	mv, err := m.Variance()
	if err != nil {
		t.Fatalf("Moments.Variance: %v", err)
	}
	momentsClose(t, "variance vs Accumulator", av, mv)
}

func TestMomentsJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var m Moments
	for i := 0; i < 1000; i++ {
		m.Add(math.Exp(rng.NormFloat64() * 10)) // wide dynamic range
	}
	data, err := json.Marshal(&m)
	if err != nil {
		t.Fatal(err)
	}
	var back Moments
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != m {
		t.Fatalf("round-trip changed the accumulator:\n got %+v\nwant %+v", back, m)
	}
	// The restored accumulator keeps accumulating identically.
	m.Add(0.5)
	back.Add(0.5)
	if back != m {
		t.Fatalf("post-round-trip Add diverged:\n got %+v\nwant %+v", back, m)
	}
}

func TestMomentsJSONRejectsGarbage(t *testing.T) {
	var m Moments
	if err := json.Unmarshal([]byte(`{"n":"three"}`), &m); err == nil {
		t.Fatal("unmarshal of malformed moments succeeded")
	}
}
