// Package stats provides the probability and statistics substrate for the
// fault-creation model: continuous and discrete distributions with CDFs and
// quantile functions, descriptive statistics, empirical distributions,
// goodness-of-fit tests and bootstrap confidence intervals.
//
// The Go standard library deliberately ships no statistics package; the
// paper's Section 5 (confidence bounds under the normal approximation) and
// the Monte-Carlo validation experiments need quantile functions and
// hypothesis tests, so they are implemented here from first principles on
// top of math.Erf, math.Lgamma and classical series/continued-fraction
// expansions (Abramowitz & Stegun; Numerical Recipes conventions).
package stats

import (
	"fmt"
	"math"
)

const (
	// epsSpecial is the relative convergence target for the series and
	// continued-fraction expansions below.
	epsSpecial = 1e-15
	// maxSpecialIter bounds expansion length; the expansions converge in
	// tens of iterations over the parameter ranges this library uses.
	maxSpecialIter = 600
	// tinyFloat guards continued-fraction denominators against zero.
	tinyFloat = 1e-300
)

// GammaP returns the regularized lower incomplete gamma function
// P(a, x) = γ(a, x) / Γ(a) for a > 0, x >= 0.
//
// P(a, x) is the CDF of the Gamma(a, 1) distribution and is the basis of
// the Poisson CDF and the chi-square test used in the goodness-of-fit
// experiments. It returns an error for invalid arguments or (unreachably,
// in practice) non-convergence.
func GammaP(a, x float64) (float64, error) {
	switch {
	case math.IsNaN(a) || math.IsNaN(x):
		return 0, fmt.Errorf("stats: GammaP(%v, %v): NaN argument", a, x)
	case a <= 0:
		return 0, fmt.Errorf("stats: GammaP(%v, %v): shape must be positive", a, x)
	case x < 0:
		return 0, fmt.Errorf("stats: GammaP(%v, %v): x must be non-negative", a, x)
	case x == 0:
		return 0, nil
	case math.IsInf(x, 1):
		return 1, nil
	}
	if x < a+1 {
		p, err := gammaPSeries(a, x)
		return p, err
	}
	q, err := gammaQContinuedFraction(a, x)
	if err != nil {
		return 0, err
	}
	return 1 - q, nil
}

// GammaQ returns the regularized upper incomplete gamma function
// Q(a, x) = 1 - P(a, x).
func GammaQ(a, x float64) (float64, error) {
	switch {
	case math.IsNaN(a) || math.IsNaN(x):
		return 0, fmt.Errorf("stats: GammaQ(%v, %v): NaN argument", a, x)
	case a <= 0:
		return 0, fmt.Errorf("stats: GammaQ(%v, %v): shape must be positive", a, x)
	case x < 0:
		return 0, fmt.Errorf("stats: GammaQ(%v, %v): x must be non-negative", a, x)
	case x == 0:
		return 1, nil
	case math.IsInf(x, 1):
		return 0, nil
	}
	if x < a+1 {
		p, err := gammaPSeries(a, x)
		if err != nil {
			return 0, err
		}
		return 1 - p, nil
	}
	return gammaQContinuedFraction(a, x)
}

// gammaPSeries evaluates P(a, x) by the power series, valid for x < a+1.
func gammaPSeries(a, x float64) (float64, error) {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < maxSpecialIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*epsSpecial {
			return sum * math.Exp(-x+a*math.Log(x)-lg), nil
		}
	}
	return 0, fmt.Errorf("stats: GammaP(%v, %v): series did not converge", a, x)
}

// gammaQContinuedFraction evaluates Q(a, x) by the Lentz continued
// fraction, valid for x >= a+1.
func gammaQContinuedFraction(a, x float64) (float64, error) {
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tinyFloat
	d := 1 / b
	h := d
	for i := 1; i <= maxSpecialIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tinyFloat {
			d = tinyFloat
		}
		c = b + an/c
		if math.Abs(c) < tinyFloat {
			c = tinyFloat
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < epsSpecial {
			return math.Exp(-x+a*math.Log(x)-lg) * h, nil
		}
	}
	return 0, fmt.Errorf("stats: GammaQ(%v, %v): continued fraction did not converge", a, x)
}

// BetaInc returns the regularized incomplete beta function
// I_x(a, b) for a, b > 0 and x in [0, 1].
//
// I_x(a, b) is the CDF of the Beta(a, b) distribution and also yields the
// binomial CDF, both of which back the Bayesian-assessment extension and
// the distribution tests.
func BetaInc(a, b, x float64) (float64, error) {
	switch {
	case math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(x):
		return 0, fmt.Errorf("stats: BetaInc(%v, %v, %v): NaN argument", a, b, x)
	case a <= 0 || b <= 0:
		return 0, fmt.Errorf("stats: BetaInc(%v, %v, %v): shape parameters must be positive", a, b, x)
	case x < 0 || x > 1:
		return 0, fmt.Errorf("stats: BetaInc(%v, %v, %v): x must be in [0, 1]", a, b, x)
	case x == 0:
		return 0, nil
	case x == 1:
		return 1, nil
	}
	lgA, _ := math.Lgamma(a)
	lgB, _ := math.Lgamma(b)
	lgAB, _ := math.Lgamma(a + b)
	front := math.Exp(lgAB - lgA - lgB + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		cf, err := betaContinuedFraction(a, b, x)
		if err != nil {
			return 0, err
		}
		return front * cf / a, nil
	}
	cf, err := betaContinuedFraction(b, a, 1-x)
	if err != nil {
		return 0, err
	}
	return 1 - front*cf/b, nil
}

// betaContinuedFraction evaluates the Lentz continued fraction for the
// incomplete beta function.
func betaContinuedFraction(a, b, x float64) (float64, error) {
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tinyFloat {
		d = tinyFloat
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxSpecialIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tinyFloat {
			d = tinyFloat
		}
		c = 1 + aa/c
		if math.Abs(c) < tinyFloat {
			c = tinyFloat
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tinyFloat {
			d = tinyFloat
		}
		c = 1 + aa/c
		if math.Abs(c) < tinyFloat {
			c = tinyFloat
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < epsSpecial {
			return h, nil
		}
	}
	return 0, fmt.Errorf("stats: BetaInc continued fraction did not converge for a=%v b=%v x=%v", a, b, x)
}

// LogBeta returns ln B(a, b) = ln Γ(a) + ln Γ(b) - ln Γ(a+b).
func LogBeta(a, b float64) float64 {
	lgA, _ := math.Lgamma(a)
	lgB, _ := math.Lgamma(b)
	lgAB, _ := math.Lgamma(a + b)
	return lgA + lgB - lgAB
}

// LogChoose returns ln C(n, k) using log-gamma, valid for 0 <= k <= n.
func LogChoose(n, k int) (float64, error) {
	if k < 0 || n < 0 || k > n {
		return 0, fmt.Errorf("stats: LogChoose(%d, %d): arguments out of range", n, k)
	}
	lgN, _ := math.Lgamma(float64(n) + 1)
	lgK, _ := math.Lgamma(float64(k) + 1)
	lgNK, _ := math.Lgamma(float64(n-k) + 1)
	return lgN - lgK - lgNK, nil
}
