package stats

import (
	"fmt"
	"math"
	"sort"
)

// KSResult is the outcome of a Kolmogorov–Smirnov test.
type KSResult struct {
	// Statistic is the maximum absolute deviation D between the compared
	// distribution functions.
	Statistic float64
	// PValue is the asymptotic two-sided p-value of D.
	PValue float64
}

// KSTest performs a one-sample, two-sided Kolmogorov–Smirnov test of the
// sample xs against the continuous reference CDF cdf.
//
// Experiment E09 uses this test to measure how quickly the distribution of
// the system PFD approaches the paper's Section-5 normal approximation as
// the number of potential faults grows.
func KSTest(xs []float64, cdf func(float64) float64) (KSResult, error) {
	n := len(xs)
	if n == 0 {
		return KSResult{}, ErrEmptySample
	}
	sorted := make([]float64, n)
	copy(sorted, xs)
	sort.Float64s(sorted)

	d := 0.0
	for i, x := range sorted {
		f := cdf(x)
		if math.IsNaN(f) || f < 0 || f > 1 {
			return KSResult{}, fmt.Errorf("stats: reference CDF returned invalid value %v at %v", f, x)
		}
		upper := float64(i+1)/float64(n) - f
		lower := f - float64(i)/float64(n)
		if upper > d {
			d = upper
		}
		if lower > d {
			d = lower
		}
	}
	return KSResult{Statistic: d, PValue: ksPValue(d, float64(n))}, nil
}

// KSTestTwoSample performs a two-sided two-sample Kolmogorov–Smirnov test.
func KSTestTwoSample(xs, ys []float64) (KSResult, error) {
	if len(xs) == 0 || len(ys) == 0 {
		return KSResult{}, ErrEmptySample
	}
	a := make([]float64, len(xs))
	copy(a, xs)
	sort.Float64s(a)
	b := make([]float64, len(ys))
	copy(b, ys)
	sort.Float64s(b)

	d := 0.0
	i, j := 0, 0
	nA, nB := float64(len(a)), float64(len(b))
	for i < len(a) && j < len(b) {
		// Advance past every observation equal to the current smallest
		// value in BOTH samples before comparing the empirical CDFs:
		// evaluating mid-tie would inflate D on heavily tied data (e.g.
		// PFD samples that are mostly exactly zero).
		v := a[i]
		if b[j] < v {
			v = b[j]
		}
		for i < len(a) && a[i] == v {
			i++
		}
		for j < len(b) && b[j] == v {
			j++
		}
		diff := math.Abs(float64(i)/nA - float64(j)/nB)
		if diff > d {
			d = diff
		}
	}
	en := nA * nB / (nA + nB)
	return KSResult{Statistic: d, PValue: ksPValue(d, en)}, nil
}

// ksPValue returns the asymptotic Kolmogorov p-value with the
// Stephens small-sample correction, as in Numerical Recipes.
func ksPValue(d, en float64) float64 {
	sqrtEn := math.Sqrt(en)
	lambda := (sqrtEn + 0.12 + 0.11/sqrtEn) * d
	return kolmogorovQ(lambda)
}

// kolmogorovQ evaluates the Kolmogorov distribution survival function
// Q_KS(lambda) = 2 * sum_{j>=1} (-1)^{j-1} exp(-2 j^2 lambda^2).
func kolmogorovQ(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	a2 := -2 * lambda * lambda
	sum := 0.0
	termPrev := 0.0
	sign := 1.0
	for j := 1; j <= 100; j++ {
		term := sign * 2 * math.Exp(a2*float64(j)*float64(j))
		sum += term
		if math.Abs(term) <= 1e-12*math.Abs(sum) || math.Abs(term) <= 1e-12*termPrev {
			if sum < 0 {
				return 0
			}
			if sum > 1 {
				return 1
			}
			return sum
		}
		termPrev = math.Abs(term)
		sign = -sign
	}
	return math.Max(0, math.Min(1, sum))
}

// ChiSquareResult is the outcome of a chi-square goodness-of-fit test.
type ChiSquareResult struct {
	Statistic float64 // the χ² statistic over the (pooled) bins
	DF        int     // degrees of freedom after pooling and fitted parameters
	PValue    float64 // upper-tail probability of Statistic under χ²(DF)
}

// ChiSquareTest compares observed counts against expected counts with the
// given number of additional fitted parameters (reducing the degrees of
// freedom). Bins with expected count below 5 are pooled into their
// neighbour, the standard validity fix.
func ChiSquareTest(observed []int, expected []float64, fittedParams int) (ChiSquareResult, error) {
	if len(observed) != len(expected) {
		return ChiSquareResult{}, fmt.Errorf("stats: chi-square requires equal lengths, got %d and %d", len(observed), len(expected))
	}
	if len(observed) == 0 {
		return ChiSquareResult{}, ErrEmptySample
	}
	// Pool sparse bins left to right.
	var obs []float64
	var exp []float64
	accObs, accExp := 0.0, 0.0
	for i := range observed {
		if expected[i] < 0 || math.IsNaN(expected[i]) {
			return ChiSquareResult{}, fmt.Errorf("stats: invalid expected count %v at bin %d", expected[i], i)
		}
		accObs += float64(observed[i])
		accExp += expected[i]
		if accExp >= 5 {
			obs = append(obs, accObs)
			exp = append(exp, accExp)
			accObs, accExp = 0, 0
		}
	}
	if accExp > 0 && len(exp) > 0 {
		// Fold the trailing remainder into the last kept bin.
		obs[len(obs)-1] += accObs
		exp[len(exp)-1] += accExp
	} else if accExp > 0 {
		obs = append(obs, accObs)
		exp = append(exp, accExp)
	}

	df := len(exp) - 1 - fittedParams
	if df < 1 {
		return ChiSquareResult{}, fmt.Errorf("stats: chi-square has %d degrees of freedom after pooling; need >= 1", df)
	}
	stat := 0.0
	for i := range exp {
		if exp[i] == 0 {
			if obs[i] != 0 {
				return ChiSquareResult{}, fmt.Errorf("stats: observed count %v in zero-expectation bin %d", obs[i], i)
			}
			continue
		}
		d := obs[i] - exp[i]
		stat += d * d / exp[i]
	}
	// P(X^2 >= stat) = Q(df/2, stat/2).
	p, err := GammaQ(float64(df)/2, stat/2)
	if err != nil {
		return ChiSquareResult{}, fmt.Errorf("stats: chi-square p-value: %w", err)
	}
	return ChiSquareResult{Statistic: stat, DF: df, PValue: p}, nil
}
