package stats

import (
	"math"
	"testing"
)

// almostEqual reports whether a and b agree to within tol absolutely or
// relatively.
func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	return diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestGammaPKnownValues(t *testing.T) {
	t.Parallel()

	// Reference values: P(a, x) identities. For a = 1, P(1, x) = 1-e^-x;
	// for a = 1/2, P(1/2, x) = erf(sqrt(x)).
	tests := []struct {
		a, x, want float64
	}{
		{a: 1, x: 0.5, want: 1 - math.Exp(-0.5)},
		{a: 1, x: 2, want: 1 - math.Exp(-2)},
		{a: 1, x: 10, want: 1 - math.Exp(-10)},
		{a: 0.5, x: 0.25, want: math.Erf(0.5)},
		{a: 0.5, x: 4, want: math.Erf(2)},
		{a: 3, x: 3, want: 0.5768099188731565},   // 1 - e^-3 (1 + 3 + 4.5)
		{a: 10, x: 5, want: 0.03182805730620475}, // 1 - PoissonCDF(9; 5)
		{a: 10, x: 15, want: 0.9301463393005902}, // 1 - PoissonCDF(9; 15), exact identity
	}
	for _, tt := range tests {
		got, err := GammaP(tt.a, tt.x)
		if err != nil {
			t.Fatalf("GammaP(%v, %v): %v", tt.a, tt.x, err)
		}
		if !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("GammaP(%v, %v) = %.16g, want %.16g", tt.a, tt.x, got, tt.want)
		}
	}
}

func TestGammaPQComplementary(t *testing.T) {
	t.Parallel()

	for _, a := range []float64{0.3, 1, 2.5, 7, 40} {
		for _, x := range []float64{0.01, 0.5, 1, 3, 10, 60} {
			p, err := GammaP(a, x)
			if err != nil {
				t.Fatalf("GammaP(%v, %v): %v", a, x, err)
			}
			q, err := GammaQ(a, x)
			if err != nil {
				t.Fatalf("GammaQ(%v, %v): %v", a, x, err)
			}
			if !almostEqual(p+q, 1, 1e-12) {
				t.Errorf("P+Q = %v for a=%v x=%v, want 1", p+q, a, x)
			}
			if p < 0 || p > 1 {
				t.Errorf("GammaP(%v, %v) = %v outside [0,1]", a, x, p)
			}
		}
	}
}

func TestGammaPEdges(t *testing.T) {
	t.Parallel()

	if p, err := GammaP(2, 0); err != nil || p != 0 {
		t.Errorf("GammaP(2, 0) = %v, %v; want 0, nil", p, err)
	}
	if p, err := GammaP(2, math.Inf(1)); err != nil || p != 1 {
		t.Errorf("GammaP(2, inf) = %v, %v; want 1, nil", p, err)
	}
	if _, err := GammaP(-1, 1); err == nil {
		t.Error("GammaP(-1, 1) succeeded, want error")
	}
	if _, err := GammaP(1, -1); err == nil {
		t.Error("GammaP(1, -1) succeeded, want error")
	}
	if _, err := GammaP(math.NaN(), 1); err == nil {
		t.Error("GammaP(NaN, 1) succeeded, want error")
	}
}

func TestBetaIncKnownValues(t *testing.T) {
	t.Parallel()

	tests := []struct {
		a, b, x, want float64
	}{
		// I_x(1, 1) = x (uniform CDF).
		{a: 1, b: 1, x: 0.3, want: 0.3},
		// I_x(1, b) = 1-(1-x)^b.
		{a: 1, b: 3, x: 0.2, want: 1 - math.Pow(0.8, 3)},
		// I_x(a, 1) = x^a.
		{a: 4, b: 1, x: 0.7, want: math.Pow(0.7, 4)},
		// Symmetry point of a symmetric beta.
		{a: 5, b: 5, x: 0.5, want: 0.5},
		// scipy betainc(2, 5, 0.3) reference.
		{a: 2, b: 5, x: 0.3, want: 0.579825},
		// scipy betainc(0.5, 0.5, 0.25) = 1/3 (arcsine law).
		{a: 0.5, b: 0.5, x: 0.25, want: 1.0 / 3.0},
	}
	for _, tt := range tests {
		got, err := BetaInc(tt.a, tt.b, tt.x)
		if err != nil {
			t.Fatalf("BetaInc(%v, %v, %v): %v", tt.a, tt.b, tt.x, err)
		}
		if !almostEqual(got, tt.want, 1e-6) {
			t.Errorf("BetaInc(%v, %v, %v) = %.10g, want %.10g", tt.a, tt.b, tt.x, got, tt.want)
		}
	}
}

func TestBetaIncSymmetry(t *testing.T) {
	t.Parallel()

	// I_x(a, b) = 1 - I_{1-x}(b, a).
	for _, a := range []float64{0.5, 1, 2, 8} {
		for _, b := range []float64{0.5, 1.5, 4} {
			for _, x := range []float64{0.1, 0.37, 0.5, 0.82} {
				left, err := BetaInc(a, b, x)
				if err != nil {
					t.Fatalf("BetaInc: %v", err)
				}
				right, err := BetaInc(b, a, 1-x)
				if err != nil {
					t.Fatalf("BetaInc: %v", err)
				}
				if !almostEqual(left, 1-right, 1e-12) {
					t.Errorf("symmetry violated: I_%v(%v,%v)=%v, 1-I_%v(%v,%v)=%v",
						x, a, b, left, 1-x, b, a, 1-right)
				}
			}
		}
	}
}

func TestBetaIncMonotone(t *testing.T) {
	t.Parallel()

	prev := -1.0
	for x := 0.0; x <= 1.0001; x += 0.01 {
		xc := math.Min(x, 1)
		v, err := BetaInc(2.5, 3.5, xc)
		if err != nil {
			t.Fatalf("BetaInc(2.5, 3.5, %v): %v", xc, err)
		}
		if v < prev-1e-14 {
			t.Fatalf("BetaInc not monotone at x=%v: %v < %v", xc, v, prev)
		}
		prev = v
	}
}

func TestBetaIncErrors(t *testing.T) {
	t.Parallel()

	if _, err := BetaInc(0, 1, 0.5); err == nil {
		t.Error("BetaInc(0,1,0.5) succeeded, want error")
	}
	if _, err := BetaInc(1, 1, -0.1); err == nil {
		t.Error("BetaInc(1,1,-0.1) succeeded, want error")
	}
	if _, err := BetaInc(1, 1, 1.1); err == nil {
		t.Error("BetaInc(1,1,1.1) succeeded, want error")
	}
}

func TestLogBeta(t *testing.T) {
	t.Parallel()

	// B(1,1) = 1, B(2,3) = 1/12, B(0.5,0.5) = pi.
	tests := []struct {
		a, b, want float64
	}{
		{a: 1, b: 1, want: 0},
		{a: 2, b: 3, want: math.Log(1.0 / 12.0)},
		{a: 0.5, b: 0.5, want: math.Log(math.Pi)},
	}
	for _, tt := range tests {
		if got := LogBeta(tt.a, tt.b); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("LogBeta(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestLogChoose(t *testing.T) {
	t.Parallel()

	tests := []struct {
		n, k int
		want float64
	}{
		{n: 5, k: 2, want: math.Log(10)},
		{n: 10, k: 0, want: 0},
		{n: 10, k: 10, want: 0},
		{n: 52, k: 5, want: math.Log(2598960)},
	}
	for _, tt := range tests {
		got, err := LogChoose(tt.n, tt.k)
		if err != nil {
			t.Fatalf("LogChoose(%d, %d): %v", tt.n, tt.k, err)
		}
		if !almostEqual(got, tt.want, 1e-10) {
			t.Errorf("LogChoose(%d, %d) = %v, want %v", tt.n, tt.k, got, tt.want)
		}
	}
	if _, err := LogChoose(3, 5); err == nil {
		t.Error("LogChoose(3, 5) succeeded, want error")
	}
	if _, err := LogChoose(-1, 0); err == nil {
		t.Error("LogChoose(-1, 0) succeeded, want error")
	}
}
