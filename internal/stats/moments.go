package stats

import (
	"encoding/json"
	"fmt"
	"math"
)

// Moments is a streaming accumulator of the first four central moments:
// count, mean, and the second to fourth central-moment sums (M2..M4). It
// extends Accumulator with skewness and kurtosis while keeping the same
// two properties the Monte-Carlo harness relies on: numerically stable
// one-pass updates (Welford/Pébay) and an exact parallel merge (Chan et
// al.), so per-worker accumulators reduce deterministically without ever
// materialising the sample.
//
// The zero value is ready to use.
type Moments struct {
	n                int64
	mean, m2, m3, m4 float64
}

// Add incorporates x into the running moments.
func (m *Moments) Add(x float64) {
	n1 := float64(m.n)
	m.n++
	n := float64(m.n)
	delta := x - m.mean
	deltaN := delta / n
	deltaN2 := deltaN * deltaN
	term1 := delta * deltaN * n1
	m.mean += deltaN
	m.m4 += term1*deltaN2*(n*n-3*n+3) + 6*deltaN2*m.m2 - 4*deltaN*m.m3
	m.m3 += term1*deltaN*(n-2) - 3*deltaN*m.m2
	m.m2 += term1
}

// Merge combines another accumulator into m, exactly as if every
// observation of b had been Added to m (up to floating-point rounding).
// The merge is deterministic, so reducing per-shard accumulators in shard
// order yields run-to-run identical results.
func (m *Moments) Merge(b Moments) {
	if b.n == 0 {
		return
	}
	if m.n == 0 {
		*m = b
		return
	}
	nA, nB := float64(m.n), float64(b.n)
	n := nA + nB
	delta := b.mean - m.mean
	delta2 := delta * delta
	m4 := m.m4 + b.m4 + delta2*delta2*nA*nB*(nA*nA-nA*nB+nB*nB)/(n*n*n) +
		6*delta2*(nA*nA*b.m2+nB*nB*m.m2)/(n*n) +
		4*delta*(nA*b.m3-nB*m.m3)/n
	m3 := m.m3 + b.m3 + delta2*delta*nA*nB*(nA-nB)/(n*n) +
		3*delta*(nA*b.m2-nB*m.m2)/n
	m2 := m.m2 + b.m2 + delta2*nA*nB/n
	m.mean += delta * nB / n
	m.m2, m.m3, m.m4 = m2, m3, m4
	m.n += b.n
}

// N returns the number of observations added.
func (m *Moments) N() int64 { return m.n }

// Mean returns the running mean (0 for an empty accumulator).
func (m *Moments) Mean() float64 { return m.mean }

// Variance returns the unbiased (n-1 denominator) sample variance. It
// requires at least two observations.
func (m *Moments) Variance() (float64, error) {
	if m.n < 2 {
		return 0, fmt.Errorf("stats: variance requires at least 2 observations, got %d", m.n)
	}
	return m.m2 / float64(m.n-1), nil
}

// StdDev returns the unbiased sample standard deviation.
func (m *Moments) StdDev() (float64, error) {
	v, err := m.Variance()
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// PopulationVariance returns the biased (n denominator) variance, the
// central moment the skewness and kurtosis ratios are taken over. It is 0
// for an empty accumulator.
func (m *Moments) PopulationVariance() float64 {
	if m.n == 0 {
		return 0
	}
	return m.m2 / float64(m.n)
}

// Skewness returns the sample skewness g1 = m3/m2^1.5 with population
// (n-denominator) central moments — the same definition Summarize
// reports. It is 0 when fewer than two observations were added or the
// sample has zero variance.
func (m *Moments) Skewness() float64 {
	if m.n < 2 || m.m2 == 0 {
		return 0
	}
	n := float64(m.n)
	pm2 := m.m2 / n
	return (m.m3 / n) / math.Pow(pm2, 1.5)
}

// Kurtosis returns the sample excess kurtosis g2 = m4/m2² − 3 with
// population (n-denominator) central moments. It is 0 when fewer than two
// observations were added or the sample has zero variance.
func (m *Moments) Kurtosis() float64 {
	if m.n < 2 || m.m2 == 0 {
		return 0
	}
	n := float64(m.n)
	pm2 := m.m2 / n
	return (m.m4/n)/(pm2*pm2) - 3
}

// momentsJSON is the persisted wire form of Moments: the five
// accumulator fields, verbatim. Go's JSON encoding round-trips float64
// values exactly, so marshal/unmarshal reproduces the accumulator
// bit-for-bit.
type momentsJSON struct {
	N    int64   `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
	M3   float64 `json:"m3"`
	M4   float64 `json:"m4"`
}

// MarshalJSON encodes the accumulator state, so streaming aggregates can
// be persisted (the serving layer's durable job ledger stores results
// that embed Moments).
func (m Moments) MarshalJSON() ([]byte, error) {
	return json.Marshal(momentsJSON{N: m.n, Mean: m.mean, M2: m.m2, M3: m.m3, M4: m.m4})
}

// UnmarshalJSON restores an accumulator encoded by MarshalJSON.
func (m *Moments) UnmarshalJSON(data []byte) error {
	var w momentsJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*m = Moments{n: w.N, mean: w.Mean, m2: w.M2, m3: w.M3, m4: w.M4}
	return nil
}
