package stats

import (
	"errors"
	"testing"

	"diversity/internal/randx"
)

func TestECDFBasics(t *testing.T) {
	t.Parallel()

	e, err := NewECDF([]float64{3, 1, 2, 2})
	if err != nil {
		t.Fatalf("NewECDF: %v", err)
	}
	if e.N() != 4 {
		t.Fatalf("N = %d, want 4", e.N())
	}
	tests := []struct {
		x, want float64
	}{
		{x: 0.5, want: 0},
		{x: 1, want: 0.25},
		{x: 1.5, want: 0.25},
		{x: 2, want: 0.75},
		{x: 3, want: 1},
		{x: 99, want: 1},
	}
	for _, tt := range tests {
		if got := e.At(tt.x); got != tt.want {
			t.Errorf("At(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	if got := e.Exceedance(2); got != 0.25 {
		t.Errorf("Exceedance(2) = %v, want 0.25", got)
	}
	if _, err := NewECDF(nil); !errors.Is(err, ErrEmptySample) {
		t.Errorf("NewECDF(nil) error = %v, want ErrEmptySample", err)
	}
}

func TestECDFQuantileAgreesWithQuantile(t *testing.T) {
	t.Parallel()

	r := randx.NewStream(5)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = r.Normal()
	}
	e, err := NewECDF(xs)
	if err != nil {
		t.Fatalf("NewECDF: %v", err)
	}
	for _, p := range []float64{0, 0.1, 0.5, 0.9, 0.99, 1} {
		want, err := Quantile(xs, p)
		if err != nil {
			t.Fatalf("Quantile: %v", err)
		}
		got, err := e.Quantile(p)
		if err != nil {
			t.Fatalf("ECDF.Quantile: %v", err)
		}
		if got != want {
			t.Errorf("quantile mismatch at p=%v: %v vs %v", p, got, want)
		}
	}
	if _, err := e.Quantile(-0.1); err == nil {
		t.Error("ECDF.Quantile(-0.1) succeeded, want error")
	}
}

func TestECDFConvergesToTrueCDF(t *testing.T) {
	t.Parallel()

	r := randx.NewStream(17)
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = r.Float64()
	}
	e, err := NewECDF(xs)
	if err != nil {
		t.Fatalf("NewECDF: %v", err)
	}
	for _, x := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		if got := e.At(x); !almostEqual(got, x, 0.01) {
			t.Errorf("uniform ECDF at %v = %v, want ~%v", x, got, x)
		}
	}
}

func TestHistogram(t *testing.T) {
	t.Parallel()

	xs := []float64{0, 0.1, 0.15, 0.5, 0.99, 1.0, -0.5, 2}
	h, err := NewHistogram(xs, 0, 1, 4)
	if err != nil {
		t.Fatalf("NewHistogram: %v", err)
	}
	if h.Under != 1 || h.Over != 1 {
		t.Errorf("Under = %d, Over = %d, want 1, 1", h.Under, h.Over)
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d, want 8", h.Total())
	}
	// Bins: [0,0.25): 0, 0.1, 0.15 -> 3; [0.25,0.5): 0; [0.5,0.75): 0.5;
	// [0.75,1]: 0.99, 1.0 -> 2.
	want := []int{3, 0, 1, 2}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bin %d count = %d, want %d", i, h.Counts[i], w)
		}
	}
	if got := h.BinCenter(0); !almostEqual(got, 0.125, 1e-12) {
		t.Errorf("BinCenter(0) = %v, want 0.125", got)
	}
	// Density of bin 0: 3 observations / (8 total * 0.25 width).
	if got := h.Density(0); !almostEqual(got, 1.5, 1e-12) {
		t.Errorf("Density(0) = %v, want 1.5", got)
	}
}

func TestHistogramValidation(t *testing.T) {
	t.Parallel()

	if _, err := NewHistogram(nil, 0, 1, 0); err == nil {
		t.Error("NewHistogram with 0 bins succeeded, want error")
	}
	if _, err := NewHistogram(nil, 1, 1, 4); err == nil {
		t.Error("NewHistogram with empty range succeeded, want error")
	}
	if _, err := NewHistogram(nil, 2, 1, 4); err == nil {
		t.Error("NewHistogram with inverted range succeeded, want error")
	}
}
