package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	t.Parallel()

	got, err := Mean([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatalf("Mean: %v", err)
	}
	if got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if _, err := Mean(nil); !errors.Is(err, ErrEmptySample) {
		t.Errorf("Mean(nil) error = %v, want ErrEmptySample", err)
	}
}

func TestVarianceStdDev(t *testing.T) {
	t.Parallel()

	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	v, err := Variance(xs)
	if err != nil {
		t.Fatalf("Variance: %v", err)
	}
	// Sum of squared deviations = 32, n-1 = 7.
	if !almostEqual(v, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", v, 32.0/7.0)
	}
	sd, err := StdDev(xs)
	if err != nil {
		t.Fatalf("StdDev: %v", err)
	}
	if !almostEqual(sd, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("StdDev = %v", sd)
	}
	if _, err := Variance([]float64{1}); err == nil {
		t.Error("Variance of singleton succeeded, want error")
	}
}

func TestQuantile(t *testing.T) {
	t.Parallel()

	xs := []float64{15, 20, 35, 40, 50}
	tests := []struct {
		p, want float64
	}{
		{p: 0, want: 15},
		{p: 1, want: 50},
		{p: 0.5, want: 35},
		{p: 0.25, want: 20},
		{p: 0.75, want: 40},
		{p: 0.4, want: 29}, // 15,20,35,40,50 -> h=1.6 -> 20 + 0.6*15
	}
	for _, tt := range tests {
		got, err := Quantile(xs, tt.p)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", tt.p, err)
		}
		if !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("Quantile(1.5) succeeded, want error")
	}
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrEmptySample) {
		t.Errorf("Quantile(nil) error = %v, want ErrEmptySample", err)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	t.Parallel()

	xs := []float64{3, 1, 2}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatalf("Quantile: %v", err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Quantile mutated its input: %v", xs)
	}
}

func TestSummarize(t *testing.T) {
	t.Parallel()

	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatalf("Summarize: %v", err)
	}
	if s.N != 10 || s.Min != 1 || s.Max != 10 {
		t.Errorf("Summary basics wrong: %+v", s)
	}
	if !almostEqual(s.Mean, 5.5, 1e-12) {
		t.Errorf("Summary mean = %v, want 5.5", s.Mean)
	}
	if !almostEqual(s.Median, 5.5, 1e-12) {
		t.Errorf("Summary median = %v, want 5.5", s.Median)
	}
	// A symmetric sample has ~0 skewness.
	if math.Abs(s.Skewness) > 1e-12 {
		t.Errorf("Summary skewness = %v, want 0", s.Skewness)
	}
	if _, err := Summarize(nil); !errors.Is(err, ErrEmptySample) {
		t.Errorf("Summarize(nil) error = %v, want ErrEmptySample", err)
	}
}

func TestAccumulatorMatchesBatch(t *testing.T) {
	t.Parallel()

	err := quick.Check(func(raw []int8) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		var acc Accumulator
		for i, v := range raw {
			xs[i] = float64(v) / 7
			acc.Add(xs[i])
		}
		wantMean, err := Mean(xs)
		if err != nil {
			return false
		}
		wantVar, err := Variance(xs)
		if err != nil {
			return false
		}
		gotVar, err := acc.Variance()
		if err != nil {
			return false
		}
		return almostEqual(acc.Mean(), wantMean, 1e-10) && almostEqual(gotVar, wantVar, 1e-8)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestAccumulatorMerge(t *testing.T) {
	t.Parallel()

	xs := []float64{0.5, 1.5, 2.5, 3.5, 9, -4, 0.25, 7}
	var whole Accumulator
	for _, x := range xs {
		whole.Add(x)
	}
	var left, right Accumulator
	for _, x := range xs[:3] {
		left.Add(x)
	}
	for _, x := range xs[3:] {
		right.Add(x)
	}
	left.Merge(right)
	if left.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", left.N(), whole.N())
	}
	if !almostEqual(left.Mean(), whole.Mean(), 1e-12) {
		t.Errorf("merged mean = %v, want %v", left.Mean(), whole.Mean())
	}
	lv, err := left.Variance()
	if err != nil {
		t.Fatalf("Variance: %v", err)
	}
	wv, err := whole.Variance()
	if err != nil {
		t.Fatalf("Variance: %v", err)
	}
	if !almostEqual(lv, wv, 1e-12) {
		t.Errorf("merged variance = %v, want %v", lv, wv)
	}
}

func TestAccumulatorMergeEmpty(t *testing.T) {
	t.Parallel()

	var a, b Accumulator
	a.Add(1)
	a.Add(2)
	saved := a
	a.Merge(b) // merging empty is a no-op
	if a != saved {
		t.Errorf("merging empty changed accumulator: %+v", a)
	}
	b.Merge(a) // merging into empty copies
	if b.N() != 2 || !almostEqual(b.Mean(), 1.5, 1e-14) {
		t.Errorf("merge into empty wrong: %+v", b)
	}
}

func TestAccumulatorStability(t *testing.T) {
	t.Parallel()

	// Welford must keep precision for tiny values with a huge offset —
	// the regime of safety-grade PFDs.
	var acc Accumulator
	base := 1e-9
	for i := 0; i < 1000; i++ {
		acc.Add(base + float64(i%2)*1e-12)
	}
	v, err := acc.Variance()
	if err != nil {
		t.Fatalf("Variance: %v", err)
	}
	want := 2.5025025025e-25 // variance of alternating 0,1e-12 around mean
	if !almostEqual(v, want, 1e-3) {
		t.Errorf("variance = %g, want ~%g", v, want)
	}
}

func TestCorrelation(t *testing.T) {
	t.Parallel()

	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Correlation(xs, ys)
	if err != nil {
		t.Fatalf("Correlation: %v", err)
	}
	if !almostEqual(r, 1, 1e-12) {
		t.Errorf("perfect positive correlation = %v, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, err = Correlation(xs, neg)
	if err != nil {
		t.Fatalf("Correlation: %v", err)
	}
	if !almostEqual(r, -1, 1e-12) {
		t.Errorf("perfect negative correlation = %v, want -1", r)
	}
	if _, err := Correlation(xs, ys[:3]); err == nil {
		t.Error("Correlation with mismatched lengths succeeded, want error")
	}
	if _, err := Correlation([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("Correlation with zero variance succeeded, want error")
	}
}
