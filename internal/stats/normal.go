package stats

import (
	"fmt"
	"math"
)

// Normal is a normal (Gaussian) distribution with mean Mu and standard
// deviation Sigma.
//
// Section 5 of the paper approximates the distribution of the probability of
// failure on demand (a sum of many independent fault contributions) by a
// normal distribution via the central limit theorem, and reads confidence
// bounds of the form mu + k*sigma from it. This type supplies the CDF and
// the quantile function those bounds require.
type Normal struct {
	Mu    float64 // mean
	Sigma float64 // standard deviation
}

// StdNormal is the standard normal distribution N(0, 1).
var StdNormal = Normal{Mu: 0, Sigma: 1}

// NewNormal returns a Normal with the given mean and standard deviation.
// It returns an error if sigma is negative or any parameter is not finite.
func NewNormal(mu, sigma float64) (Normal, error) {
	if math.IsNaN(mu) || math.IsInf(mu, 0) || math.IsNaN(sigma) || math.IsInf(sigma, 0) {
		return Normal{}, fmt.Errorf("stats: NewNormal(%v, %v): parameters must be finite", mu, sigma)
	}
	if sigma < 0 {
		return Normal{}, fmt.Errorf("stats: NewNormal(%v, %v): sigma must be non-negative", mu, sigma)
	}
	return Normal{Mu: mu, Sigma: sigma}, nil
}

// Mean returns the distribution mean.
func (n Normal) Mean() float64 { return n.Mu }

// Variance returns the distribution variance.
func (n Normal) Variance() float64 { return n.Sigma * n.Sigma }

// StdDev returns the distribution standard deviation.
func (n Normal) StdDev() float64 { return n.Sigma }

// PDF returns the probability density at x. A zero-Sigma distribution is
// treated as a point mass: PDF is +Inf at Mu and 0 elsewhere.
func (n Normal) PDF(x float64) float64 {
	if n.Sigma == 0 {
		if x == n.Mu {
			return math.Inf(1)
		}
		return 0
	}
	z := (x - n.Mu) / n.Sigma
	return math.Exp(-0.5*z*z) / (n.Sigma * math.Sqrt(2*math.Pi))
}

// CDF returns P(X <= x).
func (n Normal) CDF(x float64) float64 {
	if n.Sigma == 0 {
		if x < n.Mu {
			return 0
		}
		return 1
	}
	z := (x - n.Mu) / (n.Sigma * math.Sqrt2)
	return 0.5 * math.Erfc(-z)
}

// Survival returns P(X > x) = 1 - CDF(x), computed to preserve precision in
// the far upper tail.
func (n Normal) Survival(x float64) float64 {
	if n.Sigma == 0 {
		if x < n.Mu {
			return 1
		}
		return 0
	}
	z := (x - n.Mu) / (n.Sigma * math.Sqrt2)
	return 0.5 * math.Erfc(z)
}

// Quantile returns the p-th quantile (inverse CDF), i.e. the x with
// P(X <= x) = p. It returns an error if p is outside (0, 1); for p exactly
// 0 or 1 the quantile is infinite and the caller should handle that case
// explicitly.
func (n Normal) Quantile(p float64) (float64, error) {
	z, err := stdNormalQuantile(p)
	if err != nil {
		return 0, err
	}
	return n.Mu + n.Sigma*z, nil
}

// stdNormalQuantile computes the standard normal quantile with the
// Wichura AS 241 (PPND16) rational approximations, accurate to ~1e-16,
// followed by one Halley refinement step against math.Erfc for good
// measure.
func stdNormalQuantile(p float64) (float64, error) {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		return 0, fmt.Errorf("stats: normal quantile requires p in (0, 1), got %v", p)
	}
	q := p - 0.5
	var z float64
	if math.Abs(q) <= 0.425 {
		r := 0.180625 - q*q
		z = q * rationalAS241(r, as241A[:], as241B[:])
	} else {
		r := p
		if q > 0 {
			r = 1 - p
		}
		r = math.Sqrt(-math.Log(r))
		if r <= 5 {
			r -= 1.6
			z = rationalAS241(r, as241C[:], as241D[:])
		} else {
			r -= 5
			z = rationalAS241(r, as241E[:], as241F[:])
		}
		if q < 0 {
			z = -z
		}
	}
	// One Halley step: f(z) = Phi(z) - p.
	f := 0.5*math.Erfc(-z/math.Sqrt2) - p
	if f != 0 {
		pdf := math.Exp(-0.5*z*z) / math.Sqrt(2*math.Pi)
		if pdf > 0 {
			u := f / pdf
			z -= u / (1 + z*u/2)
		}
	}
	return z, nil
}

// rationalAS241 evaluates the degree-7 rational minimax approximations used
// by AS 241: (num polynomial in r)/(den polynomial in r).
func rationalAS241(r float64, num, den []float64) float64 {
	n := num[7]
	for i := 6; i >= 0; i-- {
		n = n*r + num[i]
	}
	d := den[7]
	for i := 6; i >= 0; i-- {
		d = d*r + den[i]
	}
	return n / d
}

// AS 241 PPND16 coefficients (Wichura, 1988), central region.
var as241A = [8]float64{
	3.3871328727963666080e0,
	1.3314166789178437745e2,
	1.9715909503065514427e3,
	1.3731693765509461125e4,
	4.5921953931549871457e4,
	6.7265770927008700853e4,
	3.3430575583588128105e4,
	2.5090809287301226727e3,
}

var as241B = [8]float64{
	1.0,
	4.2313330701600911252e1,
	6.8718700749205790830e2,
	5.3941960214247511077e3,
	2.1213794301586595867e4,
	3.9307895800092710610e4,
	2.8729085735721942674e4,
	5.2264952788528545610e3,
}

// AS 241 coefficients, intermediate region (r in (0.425, ~5]).
var as241C = [8]float64{
	1.42343711074968357734e0,
	4.63033784615654529590e0,
	5.76949722146069140550e0,
	3.64784832476320460504e0,
	1.27045825245236838258e0,
	2.41780725177450611770e-1,
	2.27238449892691845833e-2,
	7.74545014278341407640e-4,
}

var as241D = [8]float64{
	1.0,
	2.05319162663775882187e0,
	1.67638483018380384940e0,
	6.89767334985100004550e-1,
	1.48103976427480074590e-1,
	1.51986665636164571966e-2,
	5.47593808499534494600e-4,
	1.05075007164441684324e-9,
}

// AS 241 coefficients, far-tail region (r > 5).
var as241E = [8]float64{
	6.65790464350110377720e0,
	5.46378491116411436990e0,
	1.78482653991729133580e0,
	2.96560571828504891230e-1,
	2.65321895265761230930e-2,
	1.24266094738807843860e-3,
	2.71155556874348757815e-5,
	2.01033439929228813265e-7,
}

var as241F = [8]float64{
	1.0,
	5.99832206555887937690e-1,
	1.36929880922735805310e-1,
	1.48753612908506148525e-2,
	7.86869131145613259100e-4,
	1.84631831751005468180e-5,
	1.42151175831644588870e-7,
	2.04426310338993978564e-15,
}
