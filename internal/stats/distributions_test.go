package stats

import (
	"math"
	"testing"
)

func TestBetaDistribution(t *testing.T) {
	t.Parallel()

	b, err := NewBeta(2, 5)
	if err != nil {
		t.Fatalf("NewBeta: %v", err)
	}
	if !almostEqual(b.Mean(), 2.0/7.0, 1e-14) {
		t.Errorf("Beta(2,5) mean = %v, want 2/7", b.Mean())
	}
	wantVar := 2.0 * 5.0 / (49.0 * 8.0)
	if !almostEqual(b.Variance(), wantVar, 1e-14) {
		t.Errorf("Beta(2,5) variance = %v, want %v", b.Variance(), wantVar)
	}

	// CDF round trip through quantile.
	for _, p := range []float64{0.01, 0.25, 0.5, 0.75, 0.99} {
		x, err := b.Quantile(p)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", p, err)
		}
		c, err := b.CDF(x)
		if err != nil {
			t.Fatalf("CDF(%v): %v", x, err)
		}
		if !almostEqual(c, p, 1e-9) {
			t.Errorf("CDF(Quantile(%v)) = %v", p, c)
		}
	}
}

func TestBetaPDFIntegratesToCDF(t *testing.T) {
	t.Parallel()

	b := Beta{Alpha: 2.5, Beta: 1.5}
	// Trapezoid integral of the PDF from 0 to 0.6 should match CDF(0.6).
	const upper, steps = 0.6, 20000
	sum := 0.0
	h := upper / steps
	for i := 0; i < steps; i++ {
		x0 := float64(i) * h
		x1 := x0 + h
		sum += (b.PDF(x0) + b.PDF(x1)) / 2 * h
	}
	c, err := b.CDF(upper)
	if err != nil {
		t.Fatalf("CDF: %v", err)
	}
	if !almostEqual(sum, c, 1e-5) {
		t.Errorf("integral of PDF = %v, CDF = %v", sum, c)
	}
}

func TestBetaUniformSpecialCase(t *testing.T) {
	t.Parallel()

	u := Beta{Alpha: 1, Beta: 1}
	for _, x := range []float64{0.1, 0.5, 0.9} {
		c, err := u.CDF(x)
		if err != nil {
			t.Fatalf("CDF: %v", err)
		}
		if !almostEqual(c, x, 1e-12) {
			t.Errorf("Beta(1,1).CDF(%v) = %v, want %v", x, c, x)
		}
		if !almostEqual(u.PDF(x), 1, 1e-12) {
			t.Errorf("Beta(1,1).PDF(%v) = %v, want 1", x, u.PDF(x))
		}
	}
}

func TestNewBetaValidation(t *testing.T) {
	t.Parallel()

	for _, tc := range []struct{ a, b float64 }{{0, 1}, {1, 0}, {-1, 1}, {math.NaN(), 1}, {math.Inf(1), 1}} {
		if _, err := NewBeta(tc.a, tc.b); err == nil {
			t.Errorf("NewBeta(%v, %v) succeeded, want error", tc.a, tc.b)
		}
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	t.Parallel()

	b, err := NewBinomial(20, 0.37)
	if err != nil {
		t.Fatalf("NewBinomial: %v", err)
	}
	sum := 0.0
	for k := 0; k <= 20; k++ {
		pmf, err := b.PMF(k)
		if err != nil {
			t.Fatalf("PMF(%d): %v", k, err)
		}
		if pmf < 0 {
			t.Fatalf("PMF(%d) = %v negative", k, pmf)
		}
		sum += pmf
	}
	if !almostEqual(sum, 1, 1e-12) {
		t.Errorf("sum of PMF = %v, want 1", sum)
	}
}

func TestBinomialCDFMatchesPMFSum(t *testing.T) {
	t.Parallel()

	b := Binomial{N: 15, P: 0.22}
	cum := 0.0
	for k := 0; k <= 15; k++ {
		pmf, err := b.PMF(k)
		if err != nil {
			t.Fatalf("PMF: %v", err)
		}
		cum += pmf
		cdf, err := b.CDF(k)
		if err != nil {
			t.Fatalf("CDF: %v", err)
		}
		if !almostEqual(cdf, cum, 1e-10) {
			t.Errorf("CDF(%d) = %.12g, PMF sum = %.12g", k, cdf, cum)
		}
	}
}

func TestBinomialDegenerate(t *testing.T) {
	t.Parallel()

	zero := Binomial{N: 10, P: 0}
	if pmf, _ := zero.PMF(0); pmf != 1 {
		t.Errorf("Binomial(10,0).PMF(0) = %v, want 1", pmf)
	}
	one := Binomial{N: 10, P: 1}
	if pmf, _ := one.PMF(10); pmf != 1 {
		t.Errorf("Binomial(10,1).PMF(10) = %v, want 1", pmf)
	}
	if cdf, _ := one.CDF(9); cdf != 0 {
		t.Errorf("Binomial(10,1).CDF(9) = %v, want 0", cdf)
	}
	if _, err := NewBinomial(-1, 0.5); err == nil {
		t.Error("NewBinomial(-1, 0.5) succeeded, want error")
	}
	if _, err := NewBinomial(5, 1.5); err == nil {
		t.Error("NewBinomial(5, 1.5) succeeded, want error")
	}
}

func TestPoissonPMFAndCDF(t *testing.T) {
	t.Parallel()

	p, err := NewPoisson(3.5)
	if err != nil {
		t.Fatalf("NewPoisson: %v", err)
	}
	cum := 0.0
	for k := 0; k <= 40; k++ {
		cum += p.PMF(k)
		cdf, err := p.CDF(k)
		if err != nil {
			t.Fatalf("CDF(%d): %v", k, err)
		}
		if !almostEqual(cdf, cum, 1e-10) {
			t.Errorf("Poisson CDF(%d) = %.12g, PMF sum = %.12g", k, cdf, cum)
		}
	}
	if !almostEqual(cum, 1, 1e-10) {
		t.Errorf("Poisson PMF total = %v, want ~1", cum)
	}
}

func TestPoissonDegenerate(t *testing.T) {
	t.Parallel()

	z, err := NewPoisson(0)
	if err != nil {
		t.Fatalf("NewPoisson(0): %v", err)
	}
	if z.PMF(0) != 1 || z.PMF(1) != 0 {
		t.Errorf("Poisson(0) PMF wrong: %v, %v", z.PMF(0), z.PMF(1))
	}
	if _, err := NewPoisson(-1); err == nil {
		t.Error("NewPoisson(-1) succeeded, want error")
	}
}

func TestLognormal(t *testing.T) {
	t.Parallel()

	l, err := NewLognormal(-2, 0.8)
	if err != nil {
		t.Fatalf("NewLognormal: %v", err)
	}
	wantMean := math.Exp(-2 + 0.32)
	if !almostEqual(l.Mean(), wantMean, 1e-12) {
		t.Errorf("lognormal mean = %v, want %v", l.Mean(), wantMean)
	}
	if l.CDF(0) != 0 || l.CDF(-1) != 0 {
		t.Error("lognormal CDF must be 0 at non-positive x")
	}
	// Median is exp(mu).
	med, err := l.Quantile(0.5)
	if err != nil {
		t.Fatalf("Quantile: %v", err)
	}
	if !almostEqual(med, math.Exp(-2), 1e-9) {
		t.Errorf("lognormal median = %v, want %v", med, math.Exp(-2))
	}
	// Round trip.
	for _, p := range []float64{0.05, 0.5, 0.95} {
		x, err := l.Quantile(p)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", p, err)
		}
		if !almostEqual(l.CDF(x), p, 1e-9) {
			t.Errorf("CDF(Quantile(%v)) = %v", p, l.CDF(x))
		}
	}
	if _, err := NewLognormal(0, -1); err == nil {
		t.Error("NewLognormal(0, -1) succeeded, want error")
	}
}
