package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmptySample is returned by descriptive statistics that are undefined
// on an empty sample.
var ErrEmptySample = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or an error for an empty sample.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmptySample
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Variance returns the unbiased (n-1 denominator) sample variance of xs.
// It requires at least two observations.
func Variance(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, fmt.Errorf("stats: variance requires at least 2 observations, got %d", len(xs))
	}
	var acc Accumulator
	for _, x := range xs {
		acc.Add(x)
	}
	return acc.Variance()
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Quantile returns the p-th sample quantile of xs using linear
// interpolation between order statistics (Hyndman–Fan type 7, the R and
// NumPy default). It returns an error for an empty sample or p outside
// [0, 1]. xs is not modified.
func Quantile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmptySample
	}
	if math.IsNaN(p) || p < 0 || p > 1 {
		return 0, fmt.Errorf("stats: quantile requires p in [0, 1], got %v", p)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, p), nil
}

// quantileSorted computes the type-7 quantile of an already-sorted sample.
func quantileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	h := p * float64(n-1)
	lo := int(math.Floor(h))
	if lo >= n-1 {
		return sorted[n-1]
	}
	frac := h - float64(lo)
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// Summary holds the descriptive statistics the experiment reports print
// for a sample.
type Summary struct {
	N        int     // sample size
	Mean     float64 // sample mean
	StdDev   float64 // sample standard deviation (n-1 denominator); 0 if N < 2
	Min      float64 // smallest observation
	Max      float64 // largest observation
	Median   float64 // 50th percentile
	Q05      float64 // 5th percentile
	Q95      float64 // 95th percentile
	Q99      float64 // 99th percentile
	Skewness float64 // sample skewness (g1, biased)
	Kurtosis float64 // sample excess kurtosis (g2, biased)
}

// Summarize computes a Summary of xs, or an error for an empty sample.
// xs is not modified.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmptySample
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)

	var acc Accumulator
	for _, x := range xs {
		acc.Add(x)
	}
	mean := acc.Mean()
	sd := 0.0
	if len(xs) >= 2 {
		v, err := acc.Variance()
		if err != nil {
			return Summary{}, err
		}
		sd = math.Sqrt(v)
	}
	s := Summary{
		N:      len(xs),
		Mean:   mean,
		StdDev: sd,
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Median: quantileSorted(sorted, 0.5),
		Q05:    quantileSorted(sorted, 0.05),
		Q95:    quantileSorted(sorted, 0.95),
		Q99:    quantileSorted(sorted, 0.99),
	}
	// Central-moment skewness/kurtosis (population denominators): adequate
	// for the large Monte-Carlo samples they are reported on. Computed
	// with the mergeable Moments accumulator — the same type the
	// Monte-Carlo harness folds per-shard aggregates with.
	if sd > 0 {
		var m Moments
		for _, x := range xs {
			m.Add(x)
		}
		s.Skewness = m.Skewness()
		s.Kurtosis = m.Kurtosis()
	}
	return s, nil
}

// Accumulator computes running mean and variance with Welford's online
// algorithm, which is numerically stable for the tiny PFD values (1e-9 and
// below) that the safety-grade scenarios produce.
//
// The zero value is ready to use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates x into the running statistics.
func (a *Accumulator) Add(x float64) {
	a.n++
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// N returns the number of observations added.
func (a *Accumulator) N() int { return a.n }

// Mean returns the running mean (0 for an empty accumulator).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the unbiased sample variance. It requires at least two
// observations.
func (a *Accumulator) Variance() (float64, error) {
	if a.n < 2 {
		return 0, fmt.Errorf("stats: variance requires at least 2 observations, got %d", a.n)
	}
	return a.m2 / float64(a.n-1), nil
}

// StdDev returns the unbiased sample standard deviation.
func (a *Accumulator) StdDev() (float64, error) {
	v, err := a.Variance()
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// PopulationVariance returns the biased (n denominator) variance, the
// central moment used for moment ratios.
func (a *Accumulator) PopulationVariance() float64 {
	if a.n == 0 {
		return 0
	}
	return a.m2 / float64(a.n)
}

// Merge combines another accumulator into a (Chan et al. parallel
// variance), so per-worker accumulators from the Monte-Carlo harness can
// be reduced without collecting raw samples.
func (a *Accumulator) Merge(b Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = b
		return
	}
	nA, nB := float64(a.n), float64(b.n)
	delta := b.mean - a.mean
	total := nA + nB
	a.mean += delta * nB / total
	a.m2 += b.m2 + delta*delta*nA*nB/total
	a.n += b.n
}

// Correlation returns the Pearson correlation coefficient of the paired
// samples xs and ys. It returns an error if the lengths differ, fewer than
// two pairs are given, or either sample has zero variance.
func Correlation(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: correlation requires equal lengths, got %d and %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, fmt.Errorf("stats: correlation requires at least 2 pairs, got %d", len(xs))
	}
	meanX, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	meanY, err := Mean(ys)
	if err != nil {
		return 0, err
	}
	var sxx, syy, sxy float64
	for i := range xs {
		dx := xs[i] - meanX
		dy := ys[i] - meanY
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: correlation undefined for zero-variance sample")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}
