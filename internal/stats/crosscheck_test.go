package stats

import (
	"math"
	"testing"

	"diversity/internal/randx"
)

// These tests cross-validate the randx samplers against the stats CDFs:
// each side is implemented independently, so agreement checks both.

func TestBetaSamplerMatchesBetaCDF(t *testing.T) {
	t.Parallel()

	cases := []struct{ alpha, beta float64 }{
		{alpha: 2, beta: 5},
		{alpha: 0.5, beta: 0.5},
		{alpha: 4, beta: 1.5},
	}
	for _, tc := range cases {
		tc := tc
		r := randx.NewStream(uint64(tc.alpha*100 + tc.beta*10))
		xs := make([]float64, 20000)
		for i := range xs {
			xs[i] = r.Beta(tc.alpha, tc.beta)
		}
		dist := Beta{Alpha: tc.alpha, Beta: tc.beta}
		res, err := KSTest(xs, func(x float64) float64 {
			c, err := dist.CDF(x)
			if err != nil {
				return math.NaN()
			}
			return c
		})
		if err != nil {
			t.Fatalf("KSTest Beta(%v,%v): %v", tc.alpha, tc.beta, err)
		}
		if res.PValue < 0.001 {
			t.Errorf("Beta(%v,%v) sampler rejected against CDF: D=%v p=%v", tc.alpha, tc.beta, res.Statistic, res.PValue)
		}
	}
}

func TestNormalSamplerMatchesNormalCDF(t *testing.T) {
	t.Parallel()

	r := randx.NewStream(5)
	xs := make([]float64, 30000)
	for i := range xs {
		xs[i] = r.NormalMuSigma(-1, 2.5)
	}
	dist := Normal{Mu: -1, Sigma: 2.5}
	res, err := KSTest(xs, dist.CDF)
	if err != nil {
		t.Fatalf("KSTest: %v", err)
	}
	if res.PValue < 0.001 {
		t.Errorf("normal sampler rejected against CDF: D=%v p=%v", res.Statistic, res.PValue)
	}
}

func TestBinomialSamplerMatchesPMF(t *testing.T) {
	t.Parallel()

	const n, p = 12, 0.3
	const reps = 60000
	r := randx.NewStream(9)
	observed := make([]int, n+1)
	for i := 0; i < reps; i++ {
		observed[r.Binomial(n, p)]++
	}
	dist := Binomial{N: n, P: p}
	expected := make([]float64, n+1)
	for k := 0; k <= n; k++ {
		pmf, err := dist.PMF(k)
		if err != nil {
			t.Fatalf("PMF: %v", err)
		}
		expected[k] = pmf * reps
	}
	res, err := ChiSquareTest(observed, expected, 0)
	if err != nil {
		t.Fatalf("ChiSquareTest: %v", err)
	}
	if res.PValue < 0.001 {
		t.Errorf("binomial sampler rejected against PMF: chi2=%v df=%d p=%v", res.Statistic, res.DF, res.PValue)
	}
}

func TestPoissonSamplerMatchesPMF(t *testing.T) {
	t.Parallel()

	const lambda = 6.5
	const reps = 60000
	r := randx.NewStream(13)
	const maxK = 30
	observed := make([]int, maxK+1)
	for i := 0; i < reps; i++ {
		k := r.Poisson(lambda)
		if k > maxK {
			k = maxK
		}
		observed[k]++
	}
	dist := Poisson{Lambda: lambda}
	expected := make([]float64, maxK+1)
	tail := 1.0
	for k := 0; k < maxK; k++ {
		pmf := dist.PMF(k)
		expected[k] = pmf * reps
		tail -= pmf
	}
	expected[maxK] = tail * reps
	res, err := ChiSquareTest(observed, expected, 0)
	if err != nil {
		t.Fatalf("ChiSquareTest: %v", err)
	}
	if res.PValue < 0.001 {
		t.Errorf("Poisson sampler rejected against PMF: chi2=%v df=%d p=%v", res.Statistic, res.DF, res.PValue)
	}
}

func TestExponentialSamplerMatchesClosedForm(t *testing.T) {
	t.Parallel()

	const rate = 1.7
	r := randx.NewStream(21)
	xs := make([]float64, 30000)
	for i := range xs {
		xs[i] = r.Exponential(rate)
	}
	res, err := KSTest(xs, func(x float64) float64 {
		if x < 0 {
			return 0
		}
		return 1 - math.Exp(-rate*x)
	})
	if err != nil {
		t.Fatalf("KSTest: %v", err)
	}
	if res.PValue < 0.001 {
		t.Errorf("exponential sampler rejected: D=%v p=%v", res.Statistic, res.PValue)
	}
}

func TestGammaSamplerMatchesIncompleteGamma(t *testing.T) {
	t.Parallel()

	const shape = 3.2
	r := randx.NewStream(33)
	xs := make([]float64, 30000)
	for i := range xs {
		xs[i] = r.Gamma(shape)
	}
	res, err := KSTest(xs, func(x float64) float64 {
		if x <= 0 {
			return 0
		}
		p, err := GammaP(shape, x)
		if err != nil {
			return math.NaN()
		}
		return p
	})
	if err != nil {
		t.Fatalf("KSTest: %v", err)
	}
	if res.PValue < 0.001 {
		t.Errorf("gamma sampler rejected against GammaP: D=%v p=%v", res.Statistic, res.PValue)
	}
}
