package stats

import (
	"fmt"
	"math"
)

// Beta is a Beta(Alpha, BetaParam) distribution on [0, 1].
//
// Beta distributions serve two roles in this library: as parameter
// generators for fault probabilities in the scenario library, and as
// conjugate posteriors in the Bayesian-assessment extension.
type Beta struct {
	Alpha float64 // first shape parameter (α > 0)
	Beta  float64 // second shape parameter (β > 0)
}

// NewBeta returns a Beta distribution, or an error if either shape
// parameter is non-positive or non-finite.
func NewBeta(alpha, beta float64) (Beta, error) {
	if !(alpha > 0) || !(beta > 0) || math.IsInf(alpha, 0) || math.IsInf(beta, 0) {
		return Beta{}, fmt.Errorf("stats: NewBeta(%v, %v): shapes must be positive and finite", alpha, beta)
	}
	return Beta{Alpha: alpha, Beta: beta}, nil
}

// Mean returns alpha / (alpha + beta).
func (b Beta) Mean() float64 { return b.Alpha / (b.Alpha + b.Beta) }

// Variance returns the distribution variance.
func (b Beta) Variance() float64 {
	s := b.Alpha + b.Beta
	return b.Alpha * b.Beta / (s * s * (s + 1))
}

// PDF returns the density at x in [0, 1] (0 outside).
func (b Beta) PDF(x float64) float64 {
	if x < 0 || x > 1 {
		return 0
	}
	if x == 0 || x == 1 {
		// Density may be 0, finite or infinite at the endpoints
		// depending on the shapes; report the limit.
		switch {
		case x == 0 && b.Alpha < 1, x == 1 && b.Beta < 1:
			return math.Inf(1)
		case x == 0 && b.Alpha > 1, x == 1 && b.Beta > 1:
			return 0
		}
	}
	logPDF := (b.Alpha-1)*math.Log(x) + (b.Beta-1)*math.Log(1-x) - LogBeta(b.Alpha, b.Beta)
	return math.Exp(logPDF)
}

// CDF returns P(X <= x).
func (b Beta) CDF(x float64) (float64, error) {
	if x <= 0 {
		return 0, nil
	}
	if x >= 1 {
		return 1, nil
	}
	return BetaInc(b.Alpha, b.Beta, x)
}

// Quantile returns the p-th quantile by bisection on the CDF, accurate to
// ~1e-12. It returns an error if p is outside [0, 1].
func (b Beta) Quantile(p float64) (float64, error) {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return 0, fmt.Errorf("stats: beta quantile requires p in [0, 1], got %v", p)
	}
	if p == 0 {
		return 0, nil
	}
	if p == 1 {
		return 1, nil
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		c, err := b.CDF(mid)
		if err != nil {
			return 0, err
		}
		if c < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-14 {
			break
		}
	}
	return (lo + hi) / 2, nil
}

// Binomial is a Binomial(N, P) distribution: the number of successes in N
// independent trials of probability P.
type Binomial struct {
	N int     // number of trials
	P float64 // per-trial success probability
}

// NewBinomial returns a Binomial distribution, or an error if n < 0 or p is
// outside [0, 1].
func NewBinomial(n int, p float64) (Binomial, error) {
	if n < 0 {
		return Binomial{}, fmt.Errorf("stats: NewBinomial(%d, %v): n must be non-negative", n, p)
	}
	if math.IsNaN(p) || p < 0 || p > 1 {
		return Binomial{}, fmt.Errorf("stats: NewBinomial(%d, %v): p must be in [0, 1]", n, p)
	}
	return Binomial{N: n, P: p}, nil
}

// Mean returns n*p.
func (b Binomial) Mean() float64 { return float64(b.N) * b.P }

// Variance returns n*p*(1-p).
func (b Binomial) Variance() float64 { return float64(b.N) * b.P * (1 - b.P) }

// PMF returns P(X = k).
func (b Binomial) PMF(k int) (float64, error) {
	if k < 0 || k > b.N {
		return 0, nil
	}
	switch b.P {
	case 0:
		if k == 0 {
			return 1, nil
		}
		return 0, nil
	case 1:
		if k == b.N {
			return 1, nil
		}
		return 0, nil
	}
	lc, err := LogChoose(b.N, k)
	if err != nil {
		return 0, err
	}
	return math.Exp(lc + float64(k)*math.Log(b.P) + float64(b.N-k)*math.Log(1-b.P)), nil
}

// CDF returns P(X <= k) via the incomplete beta identity
// P(X <= k) = I_{1-p}(n-k, k+1).
func (b Binomial) CDF(k int) (float64, error) {
	if k < 0 {
		return 0, nil
	}
	if k >= b.N {
		return 1, nil
	}
	if b.P == 0 {
		return 1, nil
	}
	if b.P == 1 {
		return 0, nil // k < N and all mass is at N.
	}
	return BetaInc(float64(b.N-k), float64(k)+1, 1-b.P)
}

// Poisson is a Poisson(Lambda) distribution.
type Poisson struct {
	Lambda float64 // rate (mean) parameter
}

// NewPoisson returns a Poisson distribution, or an error if lambda is
// negative or not finite.
func NewPoisson(lambda float64) (Poisson, error) {
	if math.IsNaN(lambda) || math.IsInf(lambda, 0) || lambda < 0 {
		return Poisson{}, fmt.Errorf("stats: NewPoisson(%v): lambda must be finite and non-negative", lambda)
	}
	return Poisson{Lambda: lambda}, nil
}

// Mean returns lambda.
func (p Poisson) Mean() float64 { return p.Lambda }

// Variance returns lambda.
func (p Poisson) Variance() float64 { return p.Lambda }

// PMF returns P(X = k).
func (p Poisson) PMF(k int) float64 {
	if k < 0 {
		return 0
	}
	if p.Lambda == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	lgK, _ := math.Lgamma(float64(k) + 1)
	return math.Exp(float64(k)*math.Log(p.Lambda) - p.Lambda - lgK)
}

// CDF returns P(X <= k) via the incomplete gamma identity
// P(X <= k) = Q(k+1, lambda).
func (p Poisson) CDF(k int) (float64, error) {
	if k < 0 {
		return 0, nil
	}
	if p.Lambda == 0 {
		return 1, nil
	}
	return GammaQ(float64(k)+1, p.Lambda)
}

// Lognormal is the distribution of exp(N(Mu, Sigma)).
//
// Failure-region hit probabilities q_i spanning several orders of magnitude
// are generated from lognormals in the scenario library, reflecting the
// common observation that fault sizes are heavy-tailed.
type Lognormal struct {
	Mu    float64 // mean of the underlying normal (of log X)
	Sigma float64 // standard deviation of the underlying normal
}

// NewLognormal returns a Lognormal distribution, or an error if sigma is
// negative or parameters are not finite.
func NewLognormal(mu, sigma float64) (Lognormal, error) {
	base, err := NewNormal(mu, sigma)
	if err != nil {
		return Lognormal{}, fmt.Errorf("stats: NewLognormal: %w", err)
	}
	return Lognormal{Mu: base.Mu, Sigma: base.Sigma}, nil
}

// Mean returns exp(mu + sigma^2/2).
func (l Lognormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// Variance returns (exp(sigma^2)-1) * exp(2mu + sigma^2).
func (l Lognormal) Variance() float64 {
	s2 := l.Sigma * l.Sigma
	return (math.Exp(s2) - 1) * math.Exp(2*l.Mu+s2)
}

// CDF returns P(X <= x).
func (l Lognormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return Normal{Mu: l.Mu, Sigma: l.Sigma}.CDF(math.Log(x))
}

// Quantile returns the p-th quantile. It returns an error if p is outside
// (0, 1).
func (l Lognormal) Quantile(p float64) (float64, error) {
	q, err := (Normal{Mu: l.Mu, Sigma: l.Sigma}).Quantile(p)
	if err != nil {
		return 0, err
	}
	return math.Exp(q), nil
}
