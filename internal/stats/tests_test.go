package stats

import (
	"math"
	"testing"

	"diversity/internal/randx"
)

func TestKSTestAcceptsCorrectModel(t *testing.T) {
	t.Parallel()

	r := randx.NewStream(5)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = r.NormalMuSigma(2, 3)
	}
	dist := Normal{Mu: 2, Sigma: 3}
	res, err := KSTest(xs, dist.CDF)
	if err != nil {
		t.Fatalf("KSTest: %v", err)
	}
	if res.PValue < 0.01 {
		t.Errorf("KS rejected the true model: D=%v p=%v", res.Statistic, res.PValue)
	}
	if res.Statistic <= 0 || res.Statistic >= 1 {
		t.Errorf("KS statistic %v out of range", res.Statistic)
	}
}

func TestKSTestRejectsWrongModel(t *testing.T) {
	t.Parallel()

	r := randx.NewStream(6)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = r.NormalMuSigma(2, 3)
	}
	wrong := Normal{Mu: 0, Sigma: 1}
	res, err := KSTest(xs, wrong.CDF)
	if err != nil {
		t.Fatalf("KSTest: %v", err)
	}
	if res.PValue > 1e-6 {
		t.Errorf("KS failed to reject a badly wrong model: D=%v p=%v", res.Statistic, res.PValue)
	}
}

func TestKSTestEmptySample(t *testing.T) {
	t.Parallel()

	if _, err := KSTest(nil, StdNormal.CDF); err == nil {
		t.Error("KSTest(nil) succeeded, want error")
	}
}

func TestKSTestInvalidCDF(t *testing.T) {
	t.Parallel()

	bad := func(float64) float64 { return 2 }
	if _, err := KSTest([]float64{1, 2}, bad); err == nil {
		t.Error("KSTest with invalid CDF succeeded, want error")
	}
}

func TestKSTwoSampleSameDistribution(t *testing.T) {
	t.Parallel()

	r := randx.NewStream(9)
	xs := make([]float64, 3000)
	ys := make([]float64, 4000)
	for i := range xs {
		xs[i] = r.Float64()
	}
	for i := range ys {
		ys[i] = r.Float64()
	}
	res, err := KSTestTwoSample(xs, ys)
	if err != nil {
		t.Fatalf("KSTestTwoSample: %v", err)
	}
	if res.PValue < 0.01 {
		t.Errorf("two-sample KS rejected identical distributions: D=%v p=%v", res.Statistic, res.PValue)
	}
}

func TestKSTwoSampleDifferentDistributions(t *testing.T) {
	t.Parallel()

	r := randx.NewStream(10)
	xs := make([]float64, 3000)
	ys := make([]float64, 3000)
	for i := range xs {
		xs[i] = r.Float64()
	}
	for i := range ys {
		ys[i] = r.Float64() + 0.3
	}
	res, err := KSTestTwoSample(xs, ys)
	if err != nil {
		t.Fatalf("KSTestTwoSample: %v", err)
	}
	if res.PValue > 1e-6 {
		t.Errorf("two-sample KS failed to separate shifted distributions: p=%v", res.PValue)
	}
	if _, err := KSTestTwoSample(nil, ys); err == nil {
		t.Error("KSTestTwoSample(nil, ys) succeeded, want error")
	}
}

func TestKolmogorovQLimits(t *testing.T) {
	t.Parallel()

	if got := kolmogorovQ(0); got != 1 {
		t.Errorf("Q(0) = %v, want 1", got)
	}
	if got := kolmogorovQ(10); got > 1e-20 {
		t.Errorf("Q(10) = %v, want ~0", got)
	}
	// Known point: Q(0.82757) ~ 0.5 (median of the Kolmogorov dist).
	if got := kolmogorovQ(0.82757); math.Abs(got-0.5) > 0.001 {
		t.Errorf("Q(0.82757) = %v, want ~0.5", got)
	}
	// Monotone decreasing.
	prev := 1.0
	for lam := 0.1; lam < 3; lam += 0.1 {
		q := kolmogorovQ(lam)
		if q > prev+1e-12 {
			t.Fatalf("kolmogorovQ not monotone at %v", lam)
		}
		prev = q
	}
}

func TestChiSquareAcceptsUniform(t *testing.T) {
	t.Parallel()

	r := randx.NewStream(21)
	const n, k = 100000, 10
	observed := make([]int, k)
	for i := 0; i < n; i++ {
		observed[r.IntN(k)]++
	}
	expected := make([]float64, k)
	for i := range expected {
		expected[i] = float64(n) / k
	}
	res, err := ChiSquareTest(observed, expected, 0)
	if err != nil {
		t.Fatalf("ChiSquareTest: %v", err)
	}
	if res.DF != k-1 {
		t.Errorf("DF = %d, want %d", res.DF, k-1)
	}
	if res.PValue < 0.01 {
		t.Errorf("chi-square rejected uniform sample: stat=%v p=%v", res.Statistic, res.PValue)
	}
}

func TestChiSquareRejectsSkew(t *testing.T) {
	t.Parallel()

	observed := []int{500, 100, 100, 100, 200}
	expected := []float64{200, 200, 200, 200, 200}
	res, err := ChiSquareTest(observed, expected, 0)
	if err != nil {
		t.Fatalf("ChiSquareTest: %v", err)
	}
	if res.PValue > 1e-10 {
		t.Errorf("chi-square failed to reject skew: p=%v", res.PValue)
	}
}

func TestChiSquarePoolsSparseBins(t *testing.T) {
	t.Parallel()

	// Expected counts of 1 must be pooled, not tested raw.
	observed := []int{10, 1, 1, 1, 1, 1, 10}
	expected := []float64{10, 1, 1, 1, 1, 1, 10}
	res, err := ChiSquareTest(observed, expected, 0)
	if err != nil {
		t.Fatalf("ChiSquareTest: %v", err)
	}
	// After pooling: [10, 5, 10] -> 2 degrees of freedom.
	if res.DF != 2 {
		t.Errorf("DF after pooling = %d, want 2", res.DF)
	}
	if res.Statistic != 0 {
		t.Errorf("statistic = %v, want 0 for exact match", res.Statistic)
	}
}

func TestChiSquareErrors(t *testing.T) {
	t.Parallel()

	if _, err := ChiSquareTest([]int{1}, []float64{1, 2}, 0); err == nil {
		t.Error("mismatched lengths succeeded, want error")
	}
	if _, err := ChiSquareTest(nil, nil, 0); err == nil {
		t.Error("empty input succeeded, want error")
	}
	if _, err := ChiSquareTest([]int{5, 5}, []float64{5, 5}, 5); err == nil {
		t.Error("excess fitted params succeeded, want error")
	}
}

func TestBootstrapMeanCoversTruth(t *testing.T) {
	t.Parallel()

	r := randx.NewStream(33)
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = r.NormalMuSigma(10, 2)
	}
	mean := func(s []float64) float64 {
		m, err := Mean(s)
		if err != nil {
			return math.NaN()
		}
		return m
	}
	ci, err := Bootstrap(r, xs, mean, 500, 0.95)
	if err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	if ci.Lo > 10 || ci.Hi < 10 {
		t.Errorf("bootstrap CI [%v, %v] misses true mean 10", ci.Lo, ci.Hi)
	}
	if ci.Lo > ci.Point || ci.Hi < ci.Point {
		t.Errorf("bootstrap CI [%v, %v] excludes point estimate %v", ci.Lo, ci.Hi, ci.Point)
	}
	width := ci.Hi - ci.Lo
	if width <= 0 || width > 1 {
		t.Errorf("bootstrap CI width %v implausible for n=2000, sigma=2", width)
	}
}

func TestBootstrapValidation(t *testing.T) {
	t.Parallel()

	r := randx.NewStream(1)
	stat := func(s []float64) float64 { return 0 }
	if _, err := Bootstrap(r, nil, stat, 100, 0.95); err == nil {
		t.Error("Bootstrap(empty) succeeded, want error")
	}
	if _, err := Bootstrap(r, []float64{1}, stat, 1, 0.95); err == nil {
		t.Error("Bootstrap with 1 rep succeeded, want error")
	}
	if _, err := Bootstrap(r, []float64{1}, stat, 100, 1.5); err == nil {
		t.Error("Bootstrap with bad level succeeded, want error")
	}
}

func TestWilsonInterval(t *testing.T) {
	t.Parallel()

	lo, hi, err := WilsonInterval(50, 100, 0.95)
	if err != nil {
		t.Fatalf("WilsonInterval: %v", err)
	}
	if lo >= 0.5 || hi <= 0.5 {
		t.Errorf("Wilson CI [%v, %v] should bracket 0.5", lo, hi)
	}
	if !almostEqual(lo, 0.4038, 0.01) || !almostEqual(hi, 0.5962, 0.01) {
		t.Errorf("Wilson CI [%v, %v], want ~[0.404, 0.596]", lo, hi)
	}

	// Zero successes: lower bound 0, upper bound positive.
	lo, hi, err = WilsonInterval(0, 1000, 0.95)
	if err != nil {
		t.Fatalf("WilsonInterval: %v", err)
	}
	if lo > 1e-9 {
		t.Errorf("Wilson lower bound %v for 0 successes, want ~0", lo)
	}
	if hi <= 0 || hi > 0.01 {
		t.Errorf("Wilson upper bound %v for 0/1000, want small positive", hi)
	}
}

func TestWilsonIntervalValidation(t *testing.T) {
	t.Parallel()

	if _, _, err := WilsonInterval(1, 0, 0.95); err == nil {
		t.Error("trials=0 succeeded, want error")
	}
	if _, _, err := WilsonInterval(5, 3, 0.95); err == nil {
		t.Error("successes > trials succeeded, want error")
	}
	if _, _, err := WilsonInterval(1, 10, 1.2); err == nil {
		t.Error("level > 1 succeeded, want error")
	}
}
