package knightleveson

import (
	"math"
	"testing"

	"diversity/internal/faultmodel"
)

func TestDefaultFaultSetCalibration(t *testing.T) {
	t.Parallel()

	fs, err := DefaultFaultSet()
	if err != nil {
		t.Fatalf("DefaultFaultSet: %v", err)
	}
	if fs.N() != 45 {
		t.Errorf("N = %d, want 45 (the Brilliant et al. fault count)", fs.N())
	}
	mu1, err := fs.MeanPFD(1)
	if err != nil {
		t.Fatalf("MeanPFD: %v", err)
	}
	// Published mean version failure probability was of order 7e-4; the
	// replica should sit within an order of magnitude.
	if mu1 < 1e-4 || mu1 > 5e-3 {
		t.Errorf("mean version PFD = %v, want order 1e-4..5e-3", mu1)
	}
	// Deterministic: two calls agree.
	fs2, err := DefaultFaultSet()
	if err != nil {
		t.Fatalf("DefaultFaultSet: %v", err)
	}
	for i := 0; i < fs.N(); i++ {
		if fs.Fault(i) != fs2.Fault(i) {
			t.Fatalf("fault %d differs between calls", i)
		}
	}
}

func TestRunValidation(t *testing.T) {
	t.Parallel()

	if _, err := Run(Config{Versions: 1}); err == nil {
		t.Error("1 version succeeded, want error")
	}
}

func TestRunShapes(t *testing.T) {
	t.Parallel()

	out, err := Run(Config{Seed: 1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(out.VersionPFDs) != DefaultVersions {
		t.Errorf("got %d version PFDs, want %d", len(out.VersionPFDs), DefaultVersions)
	}
	wantPairs := DefaultVersions * (DefaultVersions - 1) / 2
	if len(out.PairPFDs) != wantPairs {
		t.Errorf("got %d pair PFDs, want %d", len(out.PairPFDs), wantPairs)
	}
	if out.VersionStats.N != DefaultVersions || out.PairStats.N != wantPairs {
		t.Error("summary sample sizes wrong")
	}
}

// TestRunReproducesPaperSection7 is the headline assertion: diversity
// reduces the sample mean of the PFD and greatly reduces its standard
// deviation. A single 27-version draw is noisy, so assert over several
// seeds and require the qualitative pattern in the aggregate.
func TestRunReproducesPaperSection7(t *testing.T) {
	t.Parallel()

	meanReduced, sigmaReduced := 0, 0
	const trials = 20
	for seed := uint64(0); seed < trials; seed++ {
		out, err := Run(Config{Seed: seed})
		if err != nil {
			t.Fatalf("Run(seed=%d): %v", seed, err)
		}
		if out.MeanReduction > 1 {
			meanReduced++
		}
		if out.SigmaReduction > 1 {
			sigmaReduced++
		}
	}
	if meanReduced < trials*9/10 {
		t.Errorf("mean PFD reduced in only %d/%d trials", meanReduced, trials)
	}
	if sigmaReduced < trials*9/10 {
		t.Errorf("PFD standard deviation reduced in only %d/%d trials", sigmaReduced, trials)
	}
}

// TestRunNormalFitRejected mirrors the paper's observation that the
// version PFD sample does not fit a normal distribution (few faults, point
// mass at zero, long tail). A 27-point KS test has limited power, so the
// assertion combines three diagnostics: KS rejections well above the 5%
// false-positive rate, a persistent point mass at PFD = 0 (six of the real
// experiment's 27 versions never failed), and positive skew on average.
func TestRunNormalFitRejected(t *testing.T) {
	t.Parallel()

	rejections := 0
	zeroMass := 0.0
	skewSum := 0.0
	const trials = 20
	for seed := uint64(100); seed < 100+trials; seed++ {
		out, err := Run(Config{Seed: seed})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if out.NormalFitPValue < 0.05 {
			rejections++
		}
		zeroMass += out.FractionFaultFree
		skewSum += out.VersionStats.Skewness
	}
	if rejections < trials/4 {
		t.Errorf("normal fit rejected in only %d/%d trials; want well above the 5%% false-positive rate", rejections, trials)
	}
	if avg := zeroMass / trials; avg < 0.05 {
		t.Errorf("average fault-free fraction %v; want a persistent point mass at zero", avg)
	}
	if avg := skewSum / trials; avg < 0.5 {
		t.Errorf("average skewness %v; want clearly positive skew", avg)
	}
}

func TestRunCustomFaultSet(t *testing.T) {
	t.Parallel()

	fs, err := faultmodel.New([]faultmodel.Fault{
		{P: 0.5, Q: 0.01},
		{P: 0.5, Q: 0.02},
	})
	if err != nil {
		t.Fatalf("faultmodel.New: %v", err)
	}
	out, err := Run(Config{Versions: 5, Seed: 3, FaultSet: fs})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(out.VersionPFDs) != 5 || len(out.PairPFDs) != 10 {
		t.Errorf("shapes wrong: %d versions, %d pairs", len(out.VersionPFDs), len(out.PairPFDs))
	}
	for _, pfd := range out.VersionPFDs {
		if pfd < 0 || pfd > 0.03+1e-12 {
			t.Errorf("version PFD %v outside attainable range", pfd)
		}
	}
	// Pair PFD can never exceed either member's PFD.
	idx := 0
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			pair := out.PairPFDs[idx]
			if pair > out.VersionPFDs[i]+1e-12 || pair > out.VersionPFDs[j]+1e-12 {
				t.Errorf("pair (%d,%d) PFD %v exceeds a member PFD", i, j, pair)
			}
			idx++
		}
	}
	if math.IsNaN(out.MeanReduction) {
		t.Error("MeanReduction is NaN")
	}
}
