// Package knightleveson reproduces, synthetically, the qualitative check
// the paper makes against the Knight & Leveson N-version programming
// experiment (Section 7): across the experiment's 27 independently
// developed versions, diversity reduced not only the sample mean of the
// PFD but — greatly — its standard deviation; and the observed PFD sample
// is far from normal, so the Section-5 approximation cannot be tested on
// it.
//
// The original experiment (Knight & Leveson 1985/86; fault analysis in
// Brilliant, Knight & Leveson 1990) ran 27 Pascal versions of a missile
// "launch interceptor" decision program against one million random
// demands. The raw data are not public, so this package substitutes a
// fault universe calibrated to the published summary statistics: a few
// dozen potential faults (the fault analysis catalogued 45 distinct
// faults), per-version failure probabilities of order 1e-4 to 1e-3, and a
// handful of relatively likely faults shared between versions, which is
// what produced the experiment's famous coincident failures.
package knightleveson

import (
	"fmt"
	"math"

	"diversity/internal/devsim"
	"diversity/internal/faultmodel"
	"diversity/internal/randx"
	"diversity/internal/stats"
)

// DefaultVersions is the number of versions in the original experiment.
const DefaultVersions = 27

// DefaultFaultSet returns the calibrated potential-fault universe. The
// construction is deterministic.
//
// Calibration targets (from the published experiment):
//   - mean version PFD of order 7e-4,
//   - most faults rare, a few present in several versions (the
//     coincident-failure faults),
//   - hundreds-to-thousands ratio between the largest and smallest failure
//     regions.
func DefaultFaultSet() (*faultmodel.FaultSet, error) {
	r := randx.NewStream(0x4b4c1985) // fixed: the universe is part of the replica's definition
	const n = 45
	faults := make([]faultmodel.Fault, n)
	for i := range faults {
		// Presence probabilities: mostly 0.5-3% (a fault appearing in at
		// most one or two of 27 versions), with the first few faults
		// "common blind spots" at 8-20%, mirroring the faults found in
		// several versions. The expected fault count per version is
		// ~1.4, so a noticeable minority of versions are fault-free —
		// in the original experiment 6 of the 27 versions never failed.
		var p float64
		if i < 5 {
			p = 0.08 + 0.12*r.Float64()
		} else {
			p = 0.005 + 0.025*r.Float64()
		}
		// Region sizes: lognormal around 2e-4, heavy right tail.
		q := math.Exp(r.NormalMuSigma(math.Log(2e-4), 1.3))
		if q > 5e-3 {
			q = 5e-3
		}
		faults[i] = faultmodel.Fault{P: p, Q: q}
	}
	return faultmodel.New(faults)
}

// Config parameterises a replica run.
type Config struct {
	// Versions is the population size; DefaultVersions when zero.
	Versions int
	// Seed drives the version development.
	Seed uint64
	// FaultSet overrides the calibrated universe when non-nil.
	FaultSet *faultmodel.FaultSet
}

// Outcome holds the replica's measurements.
type Outcome struct {
	// VersionPFDs are the PFDs of the developed versions.
	VersionPFDs []float64
	// PairPFDs are the PFDs of every unordered pair operated as a 1oo2
	// system.
	PairPFDs []float64
	// VersionStats and PairStats summarise the two samples.
	VersionStats, PairStats stats.Summary
	// MeanReduction is VersionStats.Mean / PairStats.Mean (>1 means
	// diversity reduced the mean PFD); SigmaReduction likewise for the
	// standard deviation. Inf when the pair statistic is zero.
	MeanReduction, SigmaReduction float64
	// FractionFaultFree is the fraction of versions with PFD exactly 0.
	// In the original experiment 6 of 27 versions never failed; a point
	// mass at zero is itself gross non-normality.
	FractionFaultFree float64
	// NormalFitPValue is the KS p-value of the version PFD sample
	// against the model-implied Section-5 normal approximation
	// N(µ1, σ1). The paper notes the real data do not fit a normal, so
	// the Section-5 relationship cannot be checked on them; small values
	// reproduce that observation.
	NormalFitPValue float64
}

// Run develops the version population and measures the paper's Section-7
// comparison quantities.
func Run(cfg Config) (*Outcome, error) {
	versions := cfg.Versions
	if versions == 0 {
		versions = DefaultVersions
	}
	if versions < 2 {
		return nil, fmt.Errorf("knightleveson: at least 2 versions required, got %d", versions)
	}
	fs := cfg.FaultSet
	if fs == nil {
		var err error
		fs, err = DefaultFaultSet()
		if err != nil {
			return nil, fmt.Errorf("knightleveson: building default fault set: %w", err)
		}
	}
	proc := devsim.NewIndependentProcess(fs)
	r := randx.NewStream(cfg.Seed)

	pop := make([]*devsim.Version, versions)
	out := &Outcome{VersionPFDs: make([]float64, versions)}
	for i := range pop {
		pop[i] = proc.Develop(r)
		out.VersionPFDs[i] = pop[i].PFD()
	}
	out.PairPFDs = make([]float64, 0, versions*(versions-1)/2)
	for i := 0; i < versions; i++ {
		for j := i + 1; j < versions; j++ {
			common, err := devsim.CommonPFD(fs, pop[i], pop[j])
			if err != nil {
				return nil, fmt.Errorf("knightleveson: pair (%d, %d): %w", i, j, err)
			}
			out.PairPFDs = append(out.PairPFDs, common)
		}
	}

	var err error
	if out.VersionStats, err = stats.Summarize(out.VersionPFDs); err != nil {
		return nil, err
	}
	if out.PairStats, err = stats.Summarize(out.PairPFDs); err != nil {
		return nil, err
	}
	out.MeanReduction = ratioOrInf(out.VersionStats.Mean, out.PairStats.Mean)
	out.SigmaReduction = ratioOrInf(out.VersionStats.StdDev, out.PairStats.StdDev)

	for _, pfd := range out.VersionPFDs {
		if pfd == 0 {
			out.FractionFaultFree++
		}
	}
	out.FractionFaultFree /= float64(versions)

	norm, err := fs.NormalApprox(1)
	if err != nil {
		return nil, fmt.Errorf("knightleveson: normal approximation: %w", err)
	}
	if norm.Sigma > 0 {
		ks, err := stats.KSTest(out.VersionPFDs, norm.CDF)
		if err != nil {
			return nil, fmt.Errorf("knightleveson: normal fit test: %w", err)
		}
		out.NormalFitPValue = ks.PValue
	}
	return out, nil
}

func ratioOrInf(num, den float64) float64 {
	if den == 0 {
		return math.Inf(1)
	}
	return num / den
}
