package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"

	"diversity/internal/telemetry"
)

// syncWriter is a goroutine-safe log sink: the server logs from request
// goroutines and workers concurrently.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestRequestIDCorrelation is the end-to-end correlation check: one
// client-supplied X-Request-ID must be traceable across the response
// header, the job view, the SSE stream, the flight recorder, the
// retained trace, and every related log line.
func TestRequestIDCorrelation(t *testing.T) {
	t.Parallel()

	const reqID = "req-corr-0001"
	reg := telemetry.NewRegistry()
	logSink := &syncWriter{}
	logger, err := telemetry.NewLogger(logSink, "info")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, Registry: reg, Logger: logger}, nil)

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(analyticJobJSON))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", reqID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	var accepted jobView
	if err := json.NewDecoder(resp.Body).Decode(&accepted); err != nil {
		t.Fatalf("decoding submit response: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}

	// 1. Response header echoes the ID.
	if got := resp.Header.Get("X-Request-ID"); got != reqID {
		t.Errorf("X-Request-ID response header = %q, want %q", got, reqID)
	}
	// 2. The job view carries it as the run ID.
	if accepted.RunID != reqID {
		t.Errorf("submit jobView.runId = %q, want %q", accepted.RunID, reqID)
	}

	final := pollUntilTerminal(t, ts, accepted.ID)
	if final.Status != string(statusDone) {
		t.Fatalf("job finished %q: %+v", final.Status, final)
	}
	if final.RunID != reqID {
		t.Errorf("terminal jobView.runId = %q, want %q", final.RunID, reqID)
	}

	// 3. The SSE stream's terminal view carries it.
	sseResp, err := http.Get(ts.URL + "/v1/jobs/" + accepted.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer sseResp.Body.Close()
	var doneView jobView
	scanner := bufio.NewScanner(sseResp.Body)
	sawDone := false
	for scanner.Scan() {
		line := scanner.Text()
		if line == "event: done" {
			sawDone = true
			continue
		}
		if sawDone && strings.HasPrefix(line, "data: ") {
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &doneView); err != nil {
				t.Fatalf("decoding done event: %v", err)
			}
			break
		}
	}
	if !sawDone || doneView.RunID != reqID {
		t.Errorf("SSE done view runId = %q (done seen %v), want %q", doneView.RunID, sawDone, reqID)
	}

	// 4. The flight recorder attributes the whole lifecycle to the run:
	// acceptance and terminal state from the server, start and finish
	// from the engine.
	kinds := make(map[string]string)
	for _, e := range reg.Events().Snapshot() {
		kinds[e.Kind] = e.Run
	}
	for _, kind := range []string{"job.accepted", "job.start", "job.finished", "job.done"} {
		if run, ok := kinds[kind]; !ok || run != reqID {
			t.Errorf("event %s run = %q (present %v), want %q", kind, run, ok, reqID)
		}
	}

	// 5. The engine trace adopted the request ID.
	foundTrace := false
	for _, tr := range reg.Traces() {
		if tr.ID == reqID {
			foundTrace = true
		}
	}
	if !foundTrace {
		t.Errorf("no retained trace with ID %q; traces: %+v", reqID, reg.Traces())
	}

	// 6. The access log and the job lifecycle lines carry run=<id>.
	logs := logSink.String()
	wantLines := []string{"msg=\"http request\"", "msg=\"job accepted\""}
	for _, want := range wantLines {
		found := false
		for _, line := range strings.Split(logs, "\n") {
			if strings.Contains(line, want) && strings.Contains(line, "run="+reqID) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no log line with %s and run=%s:\n%s", want, reqID, logs)
		}
	}
}

// TestRequestIDGeneratedAndSanitised checks a missing or hostile
// X-Request-ID is replaced with a generated run ID.
func TestRequestIDGeneratedAndSanitised(t *testing.T) {
	t.Parallel()

	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4}, nil)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-ID"); !strings.HasPrefix(id, "run-") {
		t.Errorf("generated X-Request-ID = %q, want run- prefix", id)
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "evil id with=spaces")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-ID"); !strings.HasPrefix(id, "run-") {
		t.Errorf("hostile X-Request-ID echoed back as %q, want replacement with run- prefix", id)
	}

	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	long := strings.Repeat("a", maxRequestIDLen+1)
	req.Header.Set("X-Request-ID", long)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if id := resp.Header.Get("X-Request-ID"); id == long {
		t.Error("oversized X-Request-ID accepted verbatim")
	}
}
