package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"diversity/internal/engine"
)

// newTestServer builds a started server around an optional stub runner
// and serves it over httptest. The cleanup shuts the pool down; tests
// using blocking stubs must release them before returning.
func newTestServer(t *testing.T, cfg Config, run func(ctx context.Context, job engine.Job, progress func(engine.Progress)) (*engine.Result, error)) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	if run != nil {
		s.runJob = run
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
		ts.Close()
	})
	return s, ts
}

const analyticJobJSON = `{"kind":"analytic","analytic":{"model":{"scenario":"safety-grade","scenarioSeed":1},"k":2,"confidence":0.99}}`

const mcJobJSON = `{"kind":"montecarlo","montecarlo":{"model":{"scenario":"safety-grade","scenarioSeed":1},"versions":2,"reps":5000,"workers":2,"seed":1}}`

func postJob(t *testing.T, ts *httptest.Server, body string) (*http.Response, jobView) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	var v jobView
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatalf("decoding submit response: %v", err)
		}
	}
	return resp, v
}

// pollUntilTerminal polls GET /v1/jobs/{id} until the job leaves the
// queue and the pool.
func pollUntilTerminal(t *testing.T, ts *httptest.Server, id string) jobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatalf("GET job: %v", err)
		}
		var v jobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decoding job view: %v", err)
		}
		if jobStatus(v.Status).terminal() {
			return v
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach a terminal state", id)
	return jobView{}
}

func TestSubmitAndPollRealEngine(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8}, nil)

	resp, v := postJob(t, ts, mcJobJSON)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+v.ID {
		t.Fatalf("Location = %q, want /v1/jobs/%s", loc, v.ID)
	}
	if v.Status != string(statusQueued) {
		t.Fatalf("fresh job status = %q, want queued", v.Status)
	}
	if !strings.HasPrefix(v.JobID, "job-") {
		t.Fatalf("jobId = %q, want job-<hash> form", v.JobID)
	}

	final := pollUntilTerminal(t, ts, v.ID)
	if final.Status != string(statusDone) {
		t.Fatalf("final status = %q (error %q), want done", final.Status, final.Error)
	}
	if final.Result == nil || final.Result.MonteCarlo == nil {
		t.Fatal("final view carries no Monte-Carlo result")
	}
	if final.Result.FromCache {
		t.Fatal("first execution unexpectedly served from cache")
	}
	if final.Result.JobID != v.JobID {
		t.Fatalf("result jobId = %q, submission jobId = %q; want equal", final.Result.JobID, v.JobID)
	}
	mc := final.Result.MonteCarlo
	if mc.Reps != 5000 {
		t.Fatalf("result reps = %d, want 5000", mc.Reps)
	}
	if mc.Version.Mean < 0 || mc.System.Mean < 0 {
		t.Fatalf("summary means negative: version %v system %v", mc.Version.Mean, mc.System.Mean)
	}
}

// TestCacheHitOnResubmit is the acceptance-criterion path: the same
// fixed-seed spec submitted twice produces an identical result, with the
// second response marked as a cache hit.
func TestCacheHitOnResubmit(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8}, nil)

	_, first := postJob(t, ts, mcJobJSON)
	v1 := pollUntilTerminal(t, ts, first.ID)
	if v1.Status != string(statusDone) || v1.Result.FromCache {
		t.Fatalf("first run: status %q fromCache %v, want done/false", v1.Status, v1.Result.FromCache)
	}

	_, second := postJob(t, ts, mcJobJSON)
	if second.ID == first.ID {
		t.Fatalf("resubmission reused submission ID %q; want a fresh resource", second.ID)
	}
	v2 := pollUntilTerminal(t, ts, second.ID)
	if v2.Status != string(statusDone) {
		t.Fatalf("second run status = %q (error %q), want done", v2.Status, v2.Error)
	}
	if !v2.Result.FromCache {
		t.Fatal("second identical submission was not served from the engine cache")
	}
	if v2.Result.JobID != v1.Result.JobID || v2.Result.Hash != v1.Result.Hash {
		t.Fatalf("cache hit identity mismatch: %q/%q vs %q/%q", v2.Result.JobID, v2.Result.Hash, v1.Result.JobID, v1.Result.Hash)
	}
	if v2.Result.MonteCarlo.Version.Mean != v1.Result.MonteCarlo.Version.Mean {
		t.Fatalf("cache hit changed the result: %v vs %v", v2.Result.MonteCarlo.Version.Mean, v1.Result.MonteCarlo.Version.Mean)
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	data string
}

// readSSE parses events from an SSE stream until the stream closes or a
// "done"/"draining" event arrives.
func readSSE(t *testing.T, resp *http.Response) []sseEvent {
	t.Helper()
	var events []sseEvent
	var cur sseEvent
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.name != "" {
				events = append(events, cur)
				if cur.name == "done" || cur.name == "draining" {
					return events
				}
				cur = sseEvent{}
			}
		}
	}
	return events
}

// TestSSEProgressMonotonic drives a stub job through a controlled
// progress sequence (including an out-of-order report the tracker must
// drop) and checks the streamed events are monotonically non-decreasing
// and end with a terminal "done" event.
func TestSSEProgressMonotonic(t *testing.T) {
	t.Parallel()
	release := make(chan struct{})
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8},
		func(ctx context.Context, job engine.Job, progress func(engine.Progress)) (*engine.Result, error) {
			<-release
			for _, done := range []int{0, 1000, 500, 2500, 5000} { // 500 is out of order on purpose
				progress(engine.Progress{Stage: "replications", Done: done, Total: 5000})
				time.Sleep(5 * time.Millisecond)
			}
			return &engine.Result{Kind: job.Kind, ID: "job-stub", Hash: "stub"}, nil
		})

	_, v := postJob(t, ts, mcJobJSON)
	req, err := http.NewRequest("GET", ts.URL+"/v1/jobs/"+v.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	close(release)

	events := readSSE(t, resp)
	if len(events) == 0 {
		t.Fatal("no SSE events received")
	}
	last := -1
	sawProgress := false
	for _, ev := range events[:len(events)-1] {
		if ev.name != "progress" {
			t.Fatalf("unexpected event %q before done", ev.name)
		}
		sawProgress = true
		var p progressView
		if err := json.Unmarshal([]byte(ev.data), &p); err != nil {
			t.Fatalf("bad progress payload %q: %v", ev.data, err)
		}
		if p.Done < last {
			t.Fatalf("progress went backwards: %d after %d", p.Done, last)
		}
		last = p.Done
	}
	if !sawProgress {
		t.Fatal("stream carried no progress events")
	}
	final := events[len(events)-1]
	if final.name != "done" {
		t.Fatalf("final event = %q, want done", final.name)
	}
	var fv jobView
	if err := json.Unmarshal([]byte(final.data), &fv); err != nil {
		t.Fatalf("bad done payload: %v", err)
	}
	if fv.Status != string(statusDone) {
		t.Fatalf("done event status = %q, want done", fv.Status)
	}
}

// TestSSEOnFinishedJob checks a late subscriber gets the terminal event
// immediately.
func TestSSEOnFinishedJob(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8}, nil)
	_, v := postJob(t, ts, analyticJobJSON)
	pollUntilTerminal(t, ts, v.ID)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	events := readSSE(t, resp)
	if len(events) == 0 || events[len(events)-1].name != "done" {
		t.Fatalf("late subscriber events = %+v, want a trailing done", events)
	}
}

// TestQueueFull503 fills the worker pool and the queue, then checks the
// next submission is shed with 503 and a Retry-After header.
func TestQueueFull503(t *testing.T) {
	t.Parallel()
	release := make(chan struct{})
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1},
		func(ctx context.Context, job engine.Job, progress func(engine.Progress)) (*engine.Result, error) {
			<-release
			return &engine.Result{Kind: job.Kind}, nil
		})
	defer close(release)

	// First job occupies the worker; wait until it leaves the queue.
	_, running := postJob(t, ts, mcJobJSON)
	waitForStatus(t, ts, running.ID, statusRunning)
	// Second fills the queue.
	resp2, _ := postJob(t, ts, mcJobJSON)
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit status = %d, want 202", resp2.StatusCode)
	}
	// Third must shed.
	resp3, _ := postJob(t, ts, mcJobJSON)
	if resp3.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow submit status = %d, want 503", resp3.StatusCode)
	}
	if resp3.Header.Get("Retry-After") == "" {
		t.Fatal("503 response carries no Retry-After header")
	}
}

// waitForStatus polls until the job reports the wanted status.
func waitForStatus(t *testing.T, ts *httptest.Server, id string, want jobStatus) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatalf("GET job: %v", err)
		}
		var v jobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decoding job view: %v", err)
		}
		if v.Status == string(want) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached status %s", id, want)
}

// TestRateLimit429 exhausts a two-token bucket and checks the next
// request is rejected with 429, while queue capacity remains.
func TestRateLimit429(t *testing.T) {
	t.Parallel()
	release := make(chan struct{})
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 64, RatePerSec: 0.001, Burst: 2},
		func(ctx context.Context, job engine.Job, progress func(engine.Progress)) (*engine.Result, error) {
			<-release
			return &engine.Result{Kind: job.Kind}, nil
		})
	defer close(release)

	for i := 0; i < 2; i++ {
		resp, _ := postJob(t, ts, mcJobJSON)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d status = %d, want 202", i, resp.StatusCode)
		}
	}
	resp, _ := postJob(t, ts, mcJobJSON)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget submit status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response carries no Retry-After header")
	}
}

// TestCancelRunningJob cancels an in-flight job through its engine
// context.
func TestCancelRunningJob(t *testing.T) {
	t.Parallel()
	started := make(chan struct{})
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8},
		func(ctx context.Context, job engine.Job, progress func(engine.Progress)) (*engine.Result, error) {
			close(started)
			<-ctx.Done()
			return nil, fmt.Errorf("run cancelled: %w", ctx.Err())
		})

	_, v := postJob(t, ts, mcJobJSON)
	<-started
	req, err := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+v.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE job: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status = %d, want 202", resp.StatusCode)
	}
	final := pollUntilTerminal(t, ts, v.ID)
	if final.Status != string(statusCancelled) {
		t.Fatalf("final status = %q, want cancelled", final.Status)
	}
}

// TestCancelQueuedJob cancels a job that never left the queue.
func TestCancelQueuedJob(t *testing.T) {
	t.Parallel()
	release := make(chan struct{})
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4},
		func(ctx context.Context, job engine.Job, progress func(engine.Progress)) (*engine.Result, error) {
			<-release
			return &engine.Result{Kind: job.Kind}, nil
		})
	defer close(release)

	_, running := postJob(t, ts, mcJobJSON)
	waitForStatus(t, ts, running.ID, statusRunning)
	_, queued := postJob(t, ts, mcJobJSON)

	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE job: %v", err)
	}
	resp.Body.Close()
	final := pollUntilTerminal(t, ts, queued.ID)
	if final.Status != string(statusCancelled) {
		t.Fatalf("queued-job cancel status = %q, want cancelled", final.Status)
	}
}

func TestScenariosEndpoint(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4}, nil)
	resp, err := http.Get(ts.URL + "/v1/scenarios")
	if err != nil {
		t.Fatalf("GET /v1/scenarios: %v", err)
	}
	defer resp.Body.Close()
	var body struct {
		Scenarios []scenarioView `json:"scenarios"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decoding scenarios: %v", err)
	}
	if len(body.Scenarios) < 4 {
		t.Fatalf("scenario count = %d, want >= 4", len(body.Scenarios))
	}
	found := false
	for _, sc := range body.Scenarios {
		if sc.Name == "million-faults" {
			found = true
			if sc.Faults != 1_000_000 {
				t.Fatalf("million-faults fault count = %d", sc.Faults)
			}
		}
		if sc.Description == "" {
			t.Fatalf("scenario %q has no description", sc.Name)
		}
	}
	if !found {
		t.Fatal("million-faults scenario missing from discovery")
	}
}

func TestHealthAndReady(t *testing.T) {
	t.Parallel()
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4}, nil)
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatalf("GET /readyz after drain: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("drained /readyz = %d, want 503", resp.StatusCode)
	}
	// healthz stays live for the process supervisor.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz after drain: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drained /healthz = %d, want 200", resp.StatusCode)
	}
}

func TestBadRequests(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, MaxReps: 100000}, nil)

	cases := []struct {
		name, body string
	}{
		{"invalid JSON", `{"kind":`},
		{"unknown field", `{"kind":"montecarlo","montecarlo":{"model":{"scenario":"safety-grade"},"versions":2,"reps":100,"seed":1,"bogus":true}}`},
		{"invalid spec", `{"kind":"montecarlo","montecarlo":{"model":{"scenario":"safety-grade"},"versions":0,"reps":100,"seed":1}}`},
		{"over rep cap", `{"kind":"montecarlo","montecarlo":{"model":{"scenario":"safety-grade"},"versions":2,"reps":100000000,"seed":1}}`},
		{"unknown scenario", `{"kind":"montecarlo","montecarlo":{"model":{"scenario":"nope"},"versions":2,"reps":100,"seed":1}}`},
		{"unknown adjudicator", `{"kind":"montecarlo","montecarlo":{"model":{"scenario":"safety-grade"},"versions":3,"adjudicator":"sideways","reps":100,"seed":1}}`},
		{"adjudicator pool too small", `{"kind":"montecarlo","montecarlo":{"model":{"scenario":"safety-grade"},"versions":2,"adjudicator":"2oo3","reps":100,"seed":1}}`},
		{"arch and adjudicator both set", `{"kind":"montecarlo","montecarlo":{"model":{"scenario":"safety-grade"},"versions":3,"arch":"majority","adjudicator":"2oo3","reps":100,"seed":1}}`},
		{"negative batch width", `{"kind":"montecarlo","montecarlo":{"model":{"scenario":"safety-grade"},"versions":2,"reps":100,"seed":1,"batchWidth":-1}}`},
		{"batch width over cap", `{"kind":"montecarlo","montecarlo":{"model":{"scenario":"safety-grade"},"versions":2,"reps":100,"seed":1,"batchWidth":100000}}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatalf("%s: POST: %v", tc.name, err)
		}
		var eb errorBody
		json.NewDecoder(resp.Body).Decode(&eb)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status = %d, want 400", tc.name, resp.StatusCode)
		}
		if eb.Error == "" {
			t.Fatalf("%s: no error message in body", tc.name)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/j-does-not-exist")
	if err != nil {
		t.Fatalf("GET unknown job: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status = %d, want 404", resp.StatusCode)
	}
}

// TestAdjudicatedJob runs a 2oo3 majority-threshold job end to end through
// the HTTP API and checks the result view names the pool it adjudicated.
func TestAdjudicatedJob(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4}, nil)

	body := `{"kind":"montecarlo","montecarlo":{"model":{"scenario":"safety-grade","scenarioSeed":1},"versions":3,"adjudicator":"2oo3","reps":2000,"workers":1,"seed":1}}`
	resp, v := postJob(t, ts, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	final := pollUntilTerminal(t, ts, v.ID)
	if final.Status != string(statusDone) {
		t.Fatalf("final status = %q (error %q), want done", final.Status, final.Error)
	}
	mc := final.Result.MonteCarlo
	if mc == nil {
		t.Fatal("final view carries no Monte-Carlo result")
	}
	if mc.Versions != 3 || mc.Adjudicator != "2oo3" {
		t.Fatalf("result pool = %d versions, adjudicator %q; want 3 and 2oo3", mc.Versions, mc.Adjudicator)
	}
}

// TestBatchedJob runs a batched-kernel job end to end through the HTTP
// API and checks the result view reports the kernel and its tile width.
func TestBatchedJob(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4}, nil)

	body := `{"kind":"montecarlo","montecarlo":{"model":{"scenario":"safety-grade","scenarioSeed":1},"versions":2,"reps":2000,"workers":1,"seed":1,"batchWidth":64}}`
	resp, v := postJob(t, ts, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	final := pollUntilTerminal(t, ts, v.ID)
	if final.Status != string(statusDone) {
		t.Fatalf("final status = %q (error %q), want done", final.Status, final.Error)
	}
	mc := final.Result.MonteCarlo
	if mc == nil {
		t.Fatal("final view carries no Monte-Carlo result")
	}
	if !mc.Batched || mc.BatchWidth != 64 {
		t.Fatalf("result reports batched=%v width=%d, want the batched kernel at width 64", mc.Batched, mc.BatchWidth)
	}
}

// TestListJobs checks the listing carries submissions in order without
// result payloads.
func TestListJobs(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8}, nil)
	_, a := postJob(t, ts, analyticJobJSON)
	pollUntilTerminal(t, ts, a.ID)

	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatalf("GET /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	var body struct {
		Jobs []jobView `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decoding listing: %v", err)
	}
	if len(body.Jobs) != 1 || body.Jobs[0].ID != a.ID {
		t.Fatalf("listing = %+v, want the one submitted job", body.Jobs)
	}
	if body.Jobs[0].Result != nil {
		t.Fatal("listing carries result payloads; want lifecycle fields only")
	}
}

// TestServerMetricsRegistered checks the serving metrics land in the
// configured registry, pre-registered before traffic.
func TestServerMetricsRegistered(t *testing.T) {
	t.Parallel()
	s := New(Config{Workers: 1, QueueDepth: 4})
	snap := s.reg.Snapshot()
	for _, name := range []string{
		"server.rejected_total.queue_full",
		"server.rejected_total.rate_limited",
		"server.rejected_total.draining",
		"server.jobs_total.done",
		"server.jobs_total.failed",
		"server.jobs_total.cancelled",
	} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("counter %q not pre-registered", name)
		}
	}
	for _, name := range []string{"server.queue_depth", "server.jobs_inflight"} {
		if _, ok := snap.Gauges[name]; !ok {
			t.Errorf("gauge %q not pre-registered", name)
		}
	}
}
