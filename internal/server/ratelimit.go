package server

import (
	"math"
	"sync"
	"time"
)

// maxClients caps the number of per-client buckets a limiter retains;
// past the cap, buckets idle long enough to have refilled completely are
// evicted before a new client is admitted, so a scan of short-lived
// clients cannot grow the map without bound.
const maxClients = 4096

// rateLimiter is a lazily-refilled token-bucket limiter keyed by client:
// each client gets burst tokens, refilled at rate tokens per second; a
// request spends one token or is rejected. A nil limiter (rate <= 0 at
// construction) allows everything.
type rateLimiter struct {
	rate  float64 // tokens per second
	burst float64
	now   func() time.Time // injected for deterministic tests

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// newRateLimiter returns a limiter refilling rate tokens/second up to
// burst per client, or nil (allow-all) when rate <= 0. A nil now
// function selects time.Now.
func newRateLimiter(rate float64, burst int, now func() time.Time) *rateLimiter {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	if now == nil {
		now = time.Now
	}
	return &rateLimiter{rate: rate, burst: float64(burst), now: now, buckets: make(map[string]*bucket)}
}

// allow spends one of key's tokens, reporting whether one was available.
func (l *rateLimiter) allow(key string) bool {
	if l == nil {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	t := l.now()
	b, ok := l.buckets[key]
	if !ok {
		if len(l.buckets) >= maxClients {
			l.evictIdle(t)
		}
		b = &bucket{tokens: l.burst, last: t}
		l.buckets[key] = b
	}
	b.tokens = math.Min(l.burst, b.tokens+t.Sub(b.last).Seconds()*l.rate)
	b.last = t
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// retryAfter returns a conservative whole-second wait after which key is
// guaranteed a token, for the Retry-After header (at least 1).
func (l *rateLimiter) retryAfter(key string) int {
	if l == nil {
		return 1
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[key]
	if !ok {
		return 1
	}
	wait := (1 - b.tokens) / l.rate
	if wait < 1 {
		return 1
	}
	return int(math.Ceil(wait))
}

// evictIdle drops buckets that have been idle long enough to be full
// again — forgetting them loses no limiting state. Called with mu held.
func (l *rateLimiter) evictIdle(t time.Time) {
	fullAfter := time.Duration(l.burst / l.rate * float64(time.Second))
	for key, b := range l.buckets {
		if t.Sub(b.last) >= fullAfter {
			delete(l.buckets, key)
		}
	}
}
