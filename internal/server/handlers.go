package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"diversity/internal/engine"
	"diversity/internal/scenario"
	"diversity/internal/telemetry"
)

// MaxBodyBytes bounds a submission body; inline model specs carrying a
// few thousand faults fit comfortably, while a multi-megabyte payload is
// rejected before decoding. The fabric coordinator applies the same cap,
// so a body the coordinator accepts is a body a node accepts.
const MaxBodyBytes = 4 << 20

// Register mounts the API on mux. Conventionally mux is
// cliutil.NewDebugMux's, so one listener serves the job API next to
// /debug/vars and /debug/pprof/.
func (s *Server) Register(mux *http.ServeMux) {
	mux.Handle("GET /healthz", s.instrument("healthz", s.handleHealthz))
	mux.Handle("GET /readyz", s.instrument("readyz", s.handleReadyz))
	mux.Handle("GET /v1/scenarios", s.instrument("scenarios", s.handleScenarios))
	mux.Handle("POST /v1/jobs", s.instrument("jobs_submit", s.handleSubmit))
	mux.Handle("GET /v1/jobs", s.instrument("jobs_list", s.handleList))
	mux.Handle("GET /v1/jobs/{id}", s.instrument("jobs_get", s.handleGet))
	mux.Handle("DELETE /v1/jobs/{id}", s.instrument("jobs_cancel", s.handleCancel))
	mux.Handle("GET /v1/jobs/{id}/events", s.instrument("jobs_events", s.handleEvents))
}

// Handler returns a fresh mux with the API registered — the convenient
// form for tests and embedders that do not need the debug routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.Register(mux)
	return mux
}

// StatusRecorder wraps a ResponseWriter recording the response status
// while preserving the Flusher behaviour SSE needs. It is exported for
// the fabric coordinator, whose instrumentation middleware records
// per-route/status latency exactly like this package's.
type StatusRecorder struct {
	http.ResponseWriter
	status int
}

// NewStatusRecorder wraps w.
func NewStatusRecorder(w http.ResponseWriter) *StatusRecorder {
	return &StatusRecorder{ResponseWriter: w}
}

// Status returns the recorded status, defaulting to 200 when the
// handler never wrote one.
func (w *StatusRecorder) Status() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

func (w *StatusRecorder) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *StatusRecorder) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *StatusRecorder) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// apiRoutes lists every instrumented route with the status code its
// success path answers. New pre-registers one request-duration
// histogram per pair, so a first scrape already exports the full
// steady-state series set instead of only the routes traffic has hit;
// error-status series still appear on first use.
var apiRoutes = []struct{ name, status string }{
	{"healthz", "200"},
	{"readyz", "200"},
	{"scenarios", "200"},
	{"jobs_submit", "202"},
	{"jobs_list", "200"},
	{"jobs_get", "200"},
	{"jobs_cancel", "202"},
	{"jobs_events", "200"},
}

// maxRequestIDLen bounds an accepted X-Request-ID; longer (or otherwise
// unusable) client values are replaced with a generated ID.
const maxRequestIDLen = 64

// RequestID returns the request's correlation ID: the client's
// X-Request-ID header when it is printable and reasonably sized (so a
// hostile value cannot inject log lines or unbounded label text),
// otherwise a freshly generated run ID. The fabric coordinator applies
// the same sanitizer, so an ID it forwards is an ID a node accepts
// verbatim — one correlation ID survives the whole proxy chain.
func RequestID(r *http.Request) string {
	id := r.Header.Get("X-Request-ID")
	if id == "" || len(id) > maxRequestIDLen {
		return telemetry.NewRunID()
	}
	for _, c := range id {
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '-' || c == '_' || c == '.' || c == ':'
		if !ok {
			return telemetry.NewRunID()
		}
	}
	return id
}

// instrument wraps a handler with the shared request plumbing: the
// X-Request-ID correlation ID (accepted from the client or generated,
// echoed on the response, and threaded through the request context so
// engine runs, traces and log lines all carry it), the per-route/status
// duration histogram "server.request_duration_seconds.<route>.<status>",
// and one structured access-log line per request.
func (s *Server) instrument(route string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := RequestID(r)
		w.Header().Set("X-Request-ID", reqID)
		ctx := telemetry.ContextWithRunID(r.Context(), reqID)
		r = r.WithContext(ctx)
		sw := NewStatusRecorder(w)
		start := time.Now()
		h(sw, r)
		elapsed := time.Since(start)
		name := "server.request_duration_seconds." + route + "." + strconv.Itoa(sw.Status())
		s.reg.Histogram(name, telemetry.DurationBuckets).Observe(elapsed.Seconds())
		if s.log != nil {
			s.log.InfoContext(ctx, "http request",
				"route", route, "method", r.Method, "path", r.URL.Path,
				"status", sw.Status(), "duration", elapsed, "client", clientKey(r))
		}
	})
}

// WriteJSON writes v as JSON with the given status. Exported so the
// fabric coordinator answers in exactly this package's response shape.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// WriteError writes the uniform error envelope {"error": "..."}.
func WriteError(w http.ResponseWriter, status int, format string, args ...any) {
	WriteJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// DecodeJobSpec decodes one submission body into an engine job: unknown
// fields are rejected, the spec is validated, and the stable spec-hash
// engine ID is computed. It is the submission-side parse both the node's
// submit handler and the fabric coordinator run, so a spec the
// coordinator routes is byte-for-byte a spec the node accepts — and the
// returned engine ID is the routing key that gives identical specs
// node-local cache affinity.
func DecodeJobSpec(r io.Reader) (engine.Job, string, error) {
	var job engine.Job
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&job); err != nil {
		return engine.Job{}, "", fmt.Errorf("decoding job spec: %w", err)
	}
	if err := job.Validate(); err != nil {
		return engine.Job{}, "", err
	}
	engineID, err := job.ID()
	if err != nil {
		return engine.Job{}, "", err
	}
	return job, engineID, nil
}

// clientKey identifies the submitting client for rate limiting: the
// remote IP without the ephemeral port.
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready() {
		WriteJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// scenarioView is one row of the discovery listing.
type scenarioView struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Faults      int    `json:"faults"`
}

var (
	scenarioOnce sync.Once
	scenarioList []scenarioView
)

// handleScenarios lists the named scenarios a job's model spec may
// reference. The listing is generated once (scenario generation is
// deterministic, and million-faults allocates a 10^6-fault universe we
// do not want per request) and cached for the process lifetime.
func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	scenarioOnce.Do(func() {
		for _, name := range scenario.Names() {
			sc, err := scenario.ByName(name, 1)
			if err != nil {
				continue
			}
			scenarioList = append(scenarioList, scenarioView{
				Name:        name,
				Description: sc.Description,
				Faults:      sc.FaultSet.N(),
			})
		}
	})
	WriteJSON(w, http.StatusOK, map[string]any{"scenarios": scenarioList})
}

// specReps returns the replication count of job kinds that have one.
func specReps(job engine.Job) int {
	switch {
	case job.MonteCarlo != nil:
		return job.MonteCarlo.Reps
	case job.RareEvent != nil:
		return job.RareEvent.Reps
	default:
		return 0
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	key := clientKey(r)
	runID, _ := telemetry.RunIDFromContext(r.Context())
	if !s.limiter.allow(key) {
		s.reg.Counter("server.rejected_total.rate_limited").Inc()
		s.reg.Event("submit.rejected", runID, map[string]string{"reason": "rate_limited", "client": key})
		w.Header().Set("Retry-After", strconv.Itoa(s.limiter.retryAfter(key)))
		WriteError(w, http.StatusTooManyRequests, "rate limit exceeded: client %s is over %g requests/second (burst %d)", key, s.cfg.RatePerSec, s.cfg.Burst)
		return
	}

	job, engineID, err := DecodeJobSpec(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
	if err != nil {
		WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if s.cfg.MaxReps > 0 {
		if reps := specReps(job); reps > s.cfg.MaxReps {
			WriteError(w, http.StatusBadRequest, "replication count %d exceeds this server's cap of %d", reps, s.cfg.MaxReps)
			return
		}
	}

	js, err := s.submit(job, engineID, runID)
	switch {
	case err == nil:
	case errors.Is(err, errQueueFull):
		s.reg.Counter("server.rejected_total.queue_full").Inc()
		s.reg.Event("submit.rejected", runID, map[string]string{"reason": "queue_full", "job": engineID})
		w.Header().Set("Retry-After", "1")
		WriteError(w, http.StatusServiceUnavailable, "job queue full (depth %d): retry shortly", s.cfg.QueueDepth)
		return
	case errors.Is(err, errDraining):
		s.reg.Counter("server.rejected_total.draining").Inc()
		s.reg.Event("submit.rejected", runID, map[string]string{"reason": "draining", "job": engineID})
		w.Header().Set("Retry-After", "10")
		WriteError(w, http.StatusServiceUnavailable, "server is draining and accepts no new jobs")
		return
	default:
		WriteError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+js.id)
	WriteJSON(w, http.StatusAccepted, s.viewOf(js, false))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.list()
	views := make([]jobView, 0, len(jobs))
	for _, js := range jobs {
		views = append(views, s.viewOf(js, false))
	}
	WriteJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	js, ok := s.lookup(r.PathValue("id"))
	if !ok {
		WriteError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	WriteJSON(w, http.StatusOK, s.viewOf(js, true))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	js, ok := s.lookup(r.PathValue("id"))
	if !ok {
		WriteError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	s.requestCancel(js)
	WriteJSON(w, http.StatusAccepted, s.viewOf(js, false))
}

// handleEvents streams a job's progress as Server-Sent Events: one
// "progress" event per report (per stage, Done counts are monotonically
// non-decreasing), then a single "done" event carrying the terminal job
// view — result included — after which the stream closes. Subscribing
// to a finished job yields the "done" event immediately.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	js, ok := s.lookup(r.PathValue("id"))
	if !ok {
		WriteError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		WriteError(w, http.StatusInternalServerError, "response writer does not support streaming")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	ch, cur, hasCur := js.tracker.subscribe()
	defer js.tracker.unsubscribe(ch)
	if hasCur {
		writeSSE(w, flusher, "progress", progressView{Run: js.runID, Stage: cur.Stage, Done: cur.Done, Total: cur.Total})
	}

	keepalive := time.NewTicker(15 * time.Second)
	defer keepalive.Stop()
	for {
		select {
		case p := <-ch:
			writeSSE(w, flusher, "progress", progressView{Run: js.runID, Stage: p.Stage, Done: p.Done, Total: p.Total})
		case <-js.tracker.Done():
			// Drain reports published before the terminal transition so
			// the stream never ends short of the last counts.
			for {
				select {
				case p := <-ch:
					writeSSE(w, flusher, "progress", progressView{Run: js.runID, Stage: p.Stage, Done: p.Done, Total: p.Total})
					continue
				default:
				}
				break
			}
			writeSSE(w, flusher, "done", s.viewOf(js, true))
			return
		case <-keepalive.C:
			fmt.Fprint(w, ": keepalive\n\n")
			flusher.Flush()
		case <-r.Context().Done():
			return
		case <-s.drainCh:
			// Server draining: tell the client to re-poll rather than
			// holding the listener open.
			writeSSE(w, flusher, "draining", map[string]string{"status": "draining"})
			return
		}
	}
}

// writeSSE emits one named SSE event with a JSON payload.
func writeSSE(w http.ResponseWriter, flusher http.Flusher, event string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	flusher.Flush()
}
