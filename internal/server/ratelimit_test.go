package server

import (
	"fmt"
	"testing"
	"time"

	"diversity/internal/engine"
)

// fakeClock is an injectable, manually-advanced time source.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestRateLimiterDisabled(t *testing.T) {
	t.Parallel()
	rl := newRateLimiter(0, 0, nil)
	for i := 0; i < 1000; i++ {
		if !rl.allow("c") {
			t.Fatal("disabled limiter rejected a request")
		}
	}
}

func TestRateLimiterBurstAndRefill(t *testing.T) {
	t.Parallel()
	clk := &fakeClock{t: time.Unix(1000, 0)}
	rl := newRateLimiter(1, 3, clk.now)

	for i := 0; i < 3; i++ {
		if !rl.allow("c") {
			t.Fatalf("request %d within burst rejected", i)
		}
	}
	if rl.allow("c") {
		t.Fatal("request beyond burst allowed")
	}
	if ra := rl.retryAfter("c"); ra < 1 {
		t.Fatalf("retryAfter = %d, want >= 1", ra)
	}

	// One second refills one token.
	clk.advance(time.Second)
	if !rl.allow("c") {
		t.Fatal("request after refill rejected")
	}
	if rl.allow("c") {
		t.Fatal("second request after a one-token refill allowed")
	}

	// Refill caps at the burst size.
	clk.advance(time.Hour)
	for i := 0; i < 3; i++ {
		if !rl.allow("c") {
			t.Fatalf("request %d after long idle rejected", i)
		}
	}
	if rl.allow("c") {
		t.Fatal("burst cap not enforced after long idle")
	}
}

func TestRateLimiterPerClient(t *testing.T) {
	t.Parallel()
	clk := &fakeClock{t: time.Unix(1000, 0)}
	rl := newRateLimiter(0.1, 1, clk.now)
	if !rl.allow("a") {
		t.Fatal("client a's first request rejected")
	}
	if rl.allow("a") {
		t.Fatal("client a's second request allowed")
	}
	if !rl.allow("b") {
		t.Fatal("client b throttled by client a's bucket")
	}
}

func TestRateLimiterEviction(t *testing.T) {
	t.Parallel()
	clk := &fakeClock{t: time.Unix(1000, 0)}
	rl := newRateLimiter(1, 1, clk.now)
	for i := 0; i < maxClients; i++ {
		rl.allow(fmt.Sprintf("client-%d", i))
	}
	// All buckets are fresh: the map is full and nothing is evictable,
	// but a new client must still be admitted.
	if !rl.allow("straggler") {
		t.Fatal("new client rejected at capacity")
	}
	// Once existing buckets are idle-refilled to full, they are evicted
	// to make room rather than growing without bound.
	clk.advance(time.Hour)
	rl.allow("another")
	rl.mu.Lock()
	n := len(rl.buckets)
	rl.mu.Unlock()
	// Every pre-existing bucket was idle-full, so all were evicted.
	if n > 2 {
		t.Fatalf("bucket map holds %d entries after eviction, want <= 2", n)
	}
}

func engineProgress(stage string, done, total int) engine.Progress {
	return engine.Progress{Stage: stage, Done: done, Total: total}
}

func TestProgressTrackerMonotonicAndTerminal(t *testing.T) {
	t.Parallel()
	tr := newProgressTracker()
	ch, _, ok := tr.subscribe()
	if ok {
		t.Fatal("fresh tracker claims a snapshot")
	}
	defer tr.unsubscribe(ch)

	emit := func(done int) {
		tr.publish(engineProgress("replications", done, 100))
	}
	emit(10)
	emit(5) // out of order: must be dropped
	emit(20)

	got := []int{}
	for len(ch) > 0 {
		got = append(got, (<-ch).Done)
	}
	if len(got) != 2 || got[0] != 10 || got[1] != 20 {
		t.Fatalf("delivered Done counts = %v, want [10 20]", got)
	}
	if p, ok := tr.snapshot(); !ok || p.Done != 20 {
		t.Fatalf("snapshot = %+v ok=%v, want Done=20", p, ok)
	}

	// A new stage may restart its counter.
	tr.publish(engineProgress("experiments", 1, 8))
	if p, _ := tr.snapshot(); p.Stage != "experiments" || p.Done != 1 {
		t.Fatalf("stage change not accepted: %+v", p)
	}

	tr.finish()
	tr.finish() // idempotent
	select {
	case <-tr.Done():
	default:
		t.Fatal("Done channel not closed after finish")
	}
	tr.publish(engineProgress("experiments", 5, 8))
	if p, _ := tr.snapshot(); p.Done != 1 {
		t.Fatal("publish after finish mutated the tracker")
	}
}
