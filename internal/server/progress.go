package server

import (
	"sync"

	"diversity/internal/engine"
)

// subscriberBuffer is the per-subscriber channel capacity. A subscriber
// that falls behind skips intermediate reports (the channel is drained
// newest-last, and publish drops on a full buffer) — progress is a
// monotone stream, so later reports subsume earlier ones.
const subscriberBuffer = 32

// progressTracker carries one job's progress stream: the latest report,
// a monotonic per-stage guard, a terminal signal, and fan-out to any
// number of SSE subscribers. Publish is safe to call from the engine's
// concurrent reporters.
type progressTracker struct {
	mu      sync.Mutex
	last    engine.Progress
	hasLast bool
	subs    map[chan engine.Progress]struct{}
	done    chan struct{}
	ended   bool
}

func newProgressTracker() *progressTracker {
	return &progressTracker{
		subs: make(map[chan engine.Progress]struct{}),
		done: make(chan struct{}),
	}
}

// publish records a progress report and fans it out. Reports that would
// move a stage's Done count backwards are dropped: the engine serialises
// its hooks but concurrent worker shards can deliver cumulative counts
// slightly out of order, and the API promises subscribers a
// monotonically non-decreasing stream per stage.
func (t *progressTracker) publish(p engine.Progress) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.ended {
		return
	}
	if t.hasLast && p.Stage == t.last.Stage && p.Done < t.last.Done {
		return
	}
	t.last, t.hasLast = p, true
	for ch := range t.subs {
		select {
		case ch <- p:
		default: // slow subscriber: skip this report, keep the stream live
		}
	}
}

// snapshot returns the latest report, if any.
func (t *progressTracker) snapshot() (engine.Progress, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.last, t.hasLast
}

// subscribe registers a new subscriber and returns its channel plus the
// latest report at attach time (ok reports whether one exists), so a
// late subscriber starts from the current state rather than silence.
func (t *progressTracker) subscribe() (ch chan engine.Progress, cur engine.Progress, ok bool) {
	ch = make(chan engine.Progress, subscriberBuffer)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.subs[ch] = struct{}{}
	return ch, t.last, t.hasLast
}

func (t *progressTracker) unsubscribe(ch chan engine.Progress) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.subs, ch)
}

// finish marks the stream terminal: Done returns a closed channel and
// further publishes are ignored. Safe to call more than once.
func (t *progressTracker) finish() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.ended {
		t.ended = true
		close(t.done)
	}
}

// Done returns the channel closed when the job reaches a terminal state.
func (t *progressTracker) Done() <-chan struct{} { return t.done }
