package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"diversity/internal/engine"
)

// getJob fetches one job view.
func getJob(t *testing.T, ts *httptest.Server, id string) jobView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET job: %v", err)
	}
	defer resp.Body.Close()
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding job view: %v", err)
	}
	return v
}

// TestGracefulShutdown exercises the drain contract: the in-flight job
// runs to completion, the queued job goes terminal with a shutdown
// error, new submissions are rejected with 503, and Shutdown returns
// only after the pool is idle.
func TestGracefulShutdown(t *testing.T) {
	t.Parallel()
	release := make(chan struct{})
	started := make(chan struct{})
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4},
		func(ctx context.Context, job engine.Job, progress func(engine.Progress)) (*engine.Result, error) {
			close(started)
			<-release
			return &engine.Result{Kind: job.Kind, ID: "job-stub", Hash: "stub"}, nil
		})

	_, inflight := postJob(t, ts, mcJobJSON)
	<-started
	_, queued := postJob(t, ts, mcJobJSON)

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()

	// The drain must reject the queued job promptly, while the in-flight
	// job is still held open.
	deadline := time.Now().Add(5 * time.Second)
	for {
		v := getJob(t, ts, queued.ID)
		if v.Status == string(statusFailed) {
			if !strings.Contains(v.Error, "shutting down") {
				t.Fatalf("queued job error = %q, want a shutdown message", v.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queued job stuck in status %q during drain", v.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// New submissions are shed with 503 while draining.
	resp, _ := postJob(t, ts, mcJobJSON)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining 503 carries no Retry-After header")
	}

	// Shutdown must still be waiting on the in-flight job.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) before the in-flight job finished", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	select {
	case err := <-shutdownDone:
		if err != nil {
			t.Fatalf("Shutdown = %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown did not return after the in-flight job finished")
	}

	if v := getJob(t, ts, inflight.ID); v.Status != string(statusDone) {
		t.Fatalf("in-flight job status after drain = %q, want done", v.Status)
	}
}

// TestShutdownDeadlineCancelsRunningJobs checks that an expired drain
// grace cancels in-flight jobs through their engine contexts instead of
// hanging.
func TestShutdownDeadlineCancelsRunningJobs(t *testing.T) {
	t.Parallel()
	started := make(chan struct{})
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4},
		func(ctx context.Context, job engine.Job, progress func(engine.Progress)) (*engine.Result, error) {
			close(started)
			<-ctx.Done() // honours cancellation, never finishes on its own
			return nil, ctx.Err()
		})

	_, inflight := postJob(t, ts, mcJobJSON)
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Shutdown = %v, want context.DeadlineExceeded", err)
	}
	if v := getJob(t, ts, inflight.ID); v.Status != string(statusCancelled) {
		t.Fatalf("in-flight job status after forced drain = %q, want cancelled", v.Status)
	}
}

// TestShutdownIdempotent checks a second Shutdown returns immediately.
func TestShutdownIdempotent(t *testing.T) {
	t.Parallel()
	s := New(Config{Workers: 1, QueueDepth: 4})
	s.Start()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("first Shutdown = %v", err)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown = %v", err)
	}
	// Submissions after drain report the draining error.
	if _, err := s.submit(engine.Job{}, "job-x", "run-x"); err != errDraining {
		t.Fatalf("submit after drain = %v, want errDraining", err)
	}
}

// TestSSEDrainingEvent checks an open SSE stream is told the server is
// draining rather than being cut silently.
func TestSSEDrainingEvent(t *testing.T) {
	t.Parallel()
	started := make(chan struct{})
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4},
		func(ctx context.Context, job engine.Job, progress func(engine.Progress)) (*engine.Result, error) {
			close(started)
			select {
			case <-release:
			case <-ctx.Done():
			}
			return &engine.Result{Kind: job.Kind, ID: "job-stub", Hash: "stub"}, nil
		})
	defer close(release)

	_, v := postJob(t, ts, mcJobJSON)
	<-started
	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()

	go func() {
		time.Sleep(20 * time.Millisecond)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	events := readSSE(t, resp)
	if len(events) == 0 {
		t.Fatal("stream closed without any terminal SSE event")
	}
	last := events[len(events)-1]
	if last.name != "draining" && last.name != "done" {
		t.Fatalf("final SSE event = %q, want draining (or done if the job won the race)", last.name)
	}
}
