// Package server is the simulation-as-a-service layer: an HTTP/JSON API
// that accepts engine jobs (POST /v1/jobs), runs them on a bounded
// worker pool over the unified execution engine — so the LRU result
// cache, cancellation and telemetry instrumentation of internal/engine
// are reused verbatim — and exposes status/result polling
// (GET /v1/jobs/{id}), live progress as Server-Sent Events
// (GET /v1/jobs/{id}/events), cancellation (DELETE /v1/jobs/{id}),
// scenario discovery (GET /v1/scenarios), and liveness/readiness probes
// (/healthz, /readyz).
//
// The queue applies real backpressure: a full queue rejects submissions
// with 503 and a Retry-After header, and a per-client token bucket
// rejects bursts with 429, so overload sheds load at the edge instead of
// growing unbounded in memory. Shutdown drains gracefully — in-flight
// jobs complete, queued jobs are rejected — and every queue and request
// measurement lands in the internal/telemetry registry next to the
// engine's own metrics (see docs/METRICS.md).
package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"diversity/internal/engine"
	"diversity/internal/store"
	"diversity/internal/telemetry"
)

// Config parameterises a Server. The zero value is usable: every field
// has a serving default.
type Config struct {
	// Workers is the worker-pool size; <= 0 selects GOMAXPROCS. Each
	// worker runs one job at a time, and jobs parallelise internally, so
	// a small pool saturates the machine.
	Workers int
	// QueueDepth bounds the number of accepted-but-not-started jobs;
	// <= 0 selects 64. A full queue rejects submissions with 503.
	QueueDepth int
	// RatePerSec and Burst parameterise the per-client token bucket:
	// RatePerSec tokens per second refill up to Burst. RatePerSec <= 0
	// disables rate limiting; Burst <= 0 selects 2*RatePerSec (min 1).
	RatePerSec float64
	Burst      int
	// MaxReps caps the replication count of a single submitted job
	// (Monte-Carlo and rare-event kinds); <= 0 means uncapped. A cap
	// turns a pathological 10^12-replication submission into a 400
	// instead of a wedged worker.
	MaxReps int
	// RetainJobs bounds the job ledger; <= 0 selects 1024. When
	// exceeded, the oldest terminal jobs are evicted — from memory and,
	// when a Store is configured, from the durable ledger too, so it is
	// a retention policy, not a crash-loss bound: restarts lose nothing
	// that is retained. Queued and running jobs are never evicted.
	RetainJobs int
	// CacheSize is the engine result-cache size (<= 0 selects the
	// engine default of 128).
	CacheSize int
	// Store, when non-nil, is the durable job ledger: submissions and
	// lifecycle transitions are journaled through it, and New replays it
	// so finished results survive restarts (see docs/OPERATIONS.md). Nil
	// keeps the ledger purely in memory — the pre-store behavior.
	Store *store.Store
	// Registry receives the server's metrics; nil creates a private
	// registry. Pass the process registry so the queue gauges appear on
	// the same expvar endpoint as the engine metrics.
	Registry *telemetry.Registry
	// Logger, when non-nil, receives structured request and job
	// lifecycle lines (and is handed to the engine).
	Logger *slog.Logger
}

// jobStatus is the lifecycle state of a submitted job.
type jobStatus string

const (
	statusQueued    jobStatus = "queued"
	statusRunning   jobStatus = "running"
	statusDone      jobStatus = "done"
	statusFailed    jobStatus = "failed"
	statusCancelled jobStatus = "cancelled"
)

// terminal reports whether the status is final.
func (s jobStatus) terminal() bool {
	return s == statusDone || s == statusFailed || s == statusCancelled
}

// jobState is one submitted job's record: the spec, its lifecycle state,
// and its progress stream.
type jobState struct {
	id       string // server-unique submission ID
	engineID string // stable spec-hash-derived engine job ID
	runID    string // request/run correlation ID, immutable after submit
	job      engine.Job
	tracker  *progressTracker

	mu              sync.Mutex
	status          jobStatus
	result          *engine.Result
	errMsg          string
	submitted       time.Time
	started         time.Time
	finished        time.Time
	cancelRequested bool
	cancel          context.CancelFunc
}

// Server executes engine jobs submitted over HTTP on a bounded worker
// pool. Construct with New, mount with Register, start the pool with
// Start, and drain with Shutdown.
type Server struct {
	cfg     Config
	reg     *telemetry.Registry
	log     *slog.Logger
	eng     *engine.Engine
	store   *store.Store // nil = in-memory ledger only
	limiter *rateLimiter

	// runJob executes one job; it defaults to the engine's
	// RunWithProgress and is swappable in tests for deterministic
	// queue/backpressure/shutdown scenarios.
	runJob func(ctx context.Context, job engine.Job, progress func(engine.Progress)) (*engine.Result, error)

	queue    chan *jobState
	inflight atomic.Int64

	mu       sync.Mutex
	jobs     map[string]*jobState
	order    []string // submission order, for listing and eviction
	seq      uint64
	draining bool
	started  bool
	drainCh  chan struct{}
	wg       sync.WaitGroup
}

// New returns an unstarted server: handlers answer (readyz reports 503)
// but no worker pool runs until Start.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.RetainJobs <= 0 {
		cfg.RetainJobs = 1024
	}
	if cfg.Burst <= 0 {
		cfg.Burst = max(1, int(2*cfg.RatePerSec))
	}
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	s := &Server{
		cfg:     cfg,
		reg:     reg,
		log:     cfg.Logger,
		store:   cfg.Store,
		limiter: newRateLimiter(cfg.RatePerSec, cfg.Burst, nil),
		queue:   make(chan *jobState, cfg.QueueDepth),
		jobs:    make(map[string]*jobState),
		drainCh: make(chan struct{}),
	}
	s.eng = engine.New(engine.Options{
		CacheSize: cfg.CacheSize,
		Telemetry: reg,
		Logger:    cfg.Logger,
	})
	s.runJob = s.eng.RunWithProgress
	// Pre-register the serving metrics so the expvar endpoint and the
	// first /metrics scrape carry every series — zeros included — before
	// the first request.
	reg.Gauge("server.queue_depth")
	reg.Gauge("server.jobs_inflight")
	for _, reason := range []string{"queue_full", "rate_limited", "draining"} {
		reg.Counter("server.rejected_total." + reason)
	}
	for _, status := range []jobStatus{statusDone, statusFailed, statusCancelled} {
		reg.Counter("server.jobs_total." + string(status))
	}
	for _, route := range apiRoutes {
		reg.Histogram("server.request_duration_seconds."+route.name+"."+route.status, telemetry.DurationBuckets)
	}
	if s.store != nil {
		s.replayFromStore()
	}
	return s
}

// Start launches the worker pool. It is a no-op when already started.
func (s *Server) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started || s.draining {
		return
	}
	s.started = true
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// errors the submission path maps to HTTP statuses.
var (
	errQueueFull = errors.New("job queue full")
	errDraining  = errors.New("server draining")
)

// submit registers and enqueues a job, returning its state. The draining
// check, ledger insert and queue send happen under one lock so Shutdown
// cannot drain the queue between a successful admission check and the
// send (which would strand the job). runID is the submitting request's
// correlation ID; the worker threads it to the engine run, so the trace,
// logs and flight-recorder events of the eventual execution all carry
// the submission's X-Request-ID.
func (s *Server) submit(job engine.Job, engineID, runID string) (*jobState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || !s.started {
		return nil, errDraining
	}
	s.seq++
	js := &jobState{
		id:        fmt.Sprintf("j-%06d-%s", s.seq, shortEngineID(engineID)),
		engineID:  engineID,
		runID:     runID,
		job:       job,
		tracker:   newProgressTracker(),
		status:    statusQueued,
		submitted: time.Now(),
	}
	// Journal before the queue send: a job the client sees accepted is a
	// job the ledger can replay. A journal failure fails the submission.
	if err := s.storePut(js, s.seq); err != nil {
		return nil, fmt.Errorf("persisting submission: %w", err)
	}
	select {
	case s.queue <- js:
	default:
		s.storeEvict(js.id) // journaled but never admitted
		return nil, errQueueFull
	}
	s.jobs[js.id] = js
	s.order = append(s.order, js.id)
	s.evictOldestLocked()
	s.reg.Gauge("server.queue_depth").Set(float64(len(s.queue)))
	s.reg.Event("job.accepted", js.runID, map[string]string{
		"id": js.id, "job": engineID, "kind": string(js.job.Kind),
	})
	if s.log != nil {
		s.log.InfoContext(js.logCtx(), "job accepted", "id", js.id, "job", engineID, "kind", js.job.Kind, "queue_depth", len(s.queue))
	}
	return js, nil
}

// logCtx returns a context carrying the job's run ID, so slog lines
// emitted outside a request handler still correlate with the
// submission's X-Request-ID.
func (js *jobState) logCtx() context.Context {
	return telemetry.ContextWithRunID(context.Background(), js.runID)
}

// shortEngineID strips the "job-" prefix and truncates to 8 hex digits
// for embedding in submission IDs.
func shortEngineID(engineID string) string {
	const prefix = "job-"
	if len(engineID) > len(prefix) {
		engineID = engineID[len(prefix):]
	}
	if len(engineID) > 8 {
		engineID = engineID[:8]
	}
	return engineID
}

// evictOldestLocked forgets the oldest terminal jobs once the ledger
// exceeds RetainJobs. Called with mu held.
func (s *Server) evictOldestLocked() {
	excess := len(s.jobs) - s.cfg.RetainJobs
	if excess <= 0 {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		js := s.jobs[id]
		if js == nil {
			continue
		}
		js.mu.Lock()
		evictable := js.status.terminal()
		js.mu.Unlock()
		if excess > 0 && evictable {
			delete(s.jobs, id)
			s.storeEvict(id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// lookup returns the job with the given submission ID.
func (s *Server) lookup(id string) (*jobState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	js, ok := s.jobs[id]
	return js, ok
}

// list returns every retained job in submission order.
func (s *Server) list() []*jobState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*jobState, 0, len(s.order))
	for _, id := range s.order {
		if js, ok := s.jobs[id]; ok {
			out = append(out, js)
		}
	}
	return out
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// ready reports whether the server accepts new jobs.
func (s *Server) ready() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.started && !s.draining
}

// worker runs queued jobs until drain.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.drainCh:
			return
		case js := <-s.queue:
			s.reg.Gauge("server.queue_depth").Set(float64(len(s.queue)))
			s.execute(js)
		}
	}
}

// execute runs one dequeued job to a terminal state. The run context
// carries the submission's request ID, so the engine adopts it as the
// run ID — one identifier correlates the access log, job logs, trace
// snapshot and flight recorder.
func (s *Server) execute(js *jobState) {
	if s.isDraining() {
		s.reject(js, "server shutting down before the job started")
		return
	}
	ctx, cancel := context.WithCancel(js.logCtx())
	defer cancel()
	js.mu.Lock()
	if js.status != statusQueued { // cancelled while queued
		js.mu.Unlock()
		return
	}
	js.status = statusRunning
	js.started = time.Now()
	js.cancel = cancel
	started := js.started
	js.mu.Unlock()
	s.storeUpdate(store.Update{ID: js.id, Status: string(statusRunning), Started: started})

	s.reg.Gauge("server.jobs_inflight").Set(float64(s.inflight.Add(1)))
	res, err := s.runJob(ctx, js.job, js.tracker.publish)
	s.reg.Gauge("server.jobs_inflight").Set(float64(s.inflight.Add(-1)))

	js.mu.Lock()
	js.finished = time.Now()
	switch {
	case err == nil:
		js.status = statusDone
		js.result = res
	case js.cancelRequested || errors.Is(err, context.Canceled):
		js.status = statusCancelled
		js.errMsg = err.Error()
	default:
		js.status = statusFailed
		js.errMsg = err.Error()
	}
	final := js.status
	update := store.Update{ID: js.id, Status: string(final), Error: js.errMsg, Finished: js.finished}
	js.mu.Unlock()
	if s.store != nil && final == statusDone && res != nil {
		raw, encErr := encodeResult(res)
		if encErr != nil {
			if s.log != nil {
				s.log.Warn("encoding job result for the ledger failed", "id", js.id, "error", encErr)
			}
		} else {
			update.Result = raw
		}
	}
	s.storeUpdate(update)
	s.reg.Counter("server.jobs_total." + string(final)).Inc()
	s.reg.Event("job."+string(final), js.runID, map[string]string{"id": js.id, "job": js.engineID})
	if s.log != nil {
		s.log.InfoContext(js.logCtx(), "job finished", "id", js.id, "status", string(final))
	}
	js.tracker.finish()
}

// reject marks a never-started job failed (used for queued jobs caught
// by shutdown).
func (s *Server) reject(js *jobState, reason string) {
	js.mu.Lock()
	if js.status.terminal() {
		js.mu.Unlock()
		return
	}
	js.status = statusFailed
	js.errMsg = reason
	finished := time.Now()
	js.finished = finished
	js.mu.Unlock()
	s.storeUpdate(store.Update{ID: js.id, Status: string(statusFailed), Error: reason, Finished: finished})
	s.reg.Counter("server.jobs_total." + string(statusFailed)).Inc()
	s.reg.Event("job.failed", js.runID, map[string]string{"id": js.id, "reason": reason})
	if s.log != nil {
		s.log.InfoContext(js.logCtx(), "job rejected", "id", js.id, "reason", reason)
	}
	js.tracker.finish()
}

// requestCancel asks for a job's cancellation: a queued job goes
// terminal immediately, a running job has its context cancelled (the
// worker records the terminal state when the engine returns), and a
// terminal job is left untouched.
func (s *Server) requestCancel(js *jobState) {
	js.mu.Lock()
	switch js.status {
	case statusQueued:
		js.status = statusCancelled
		js.errMsg = "cancelled before start"
		finished := time.Now()
		js.finished = finished
		js.mu.Unlock()
		s.storeUpdate(store.Update{ID: js.id, Status: string(statusCancelled), Error: "cancelled before start", Finished: finished})
		s.reg.Counter("server.jobs_total." + string(statusCancelled)).Inc()
		s.reg.Event("job.cancelled", js.runID, map[string]string{"id": js.id, "detail": "cancelled before start"})
		js.tracker.finish()
		return
	case statusRunning:
		js.cancelRequested = true
		cancel := js.cancel
		js.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return
	default:
		js.mu.Unlock()
	}
}

// Shutdown drains the server: new submissions are rejected with 503,
// queued jobs go terminal with a shutdown error, and in-flight jobs run
// to completion. If ctx expires first, running jobs are cancelled
// through their engine contexts and Shutdown waits for the (prompt)
// cancellation to land, returning ctx.Err().
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	alreadyDraining := s.draining
	s.draining = true
	if !alreadyDraining {
		close(s.drainCh)
	}
	s.mu.Unlock()
	if !alreadyDraining {
		s.reg.Event("drain.begin", "", nil)
	}

	// Reject everything still queued. Workers racing on the same
	// channel reject too (execute checks draining first), so every
	// queued job lands terminal exactly once.
	for {
		select {
		case js := <-s.queue:
			s.reject(js, "server shutting down before the job started")
			continue
		default:
		}
		break
	}
	s.reg.Gauge("server.queue_depth").Set(0)

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Grace expired: cancel running jobs and wait for the engine's
		// prompt cancellation path to unwind the workers.
		for _, js := range s.list() {
			s.requestCancel(js)
		}
		<-done
		return ctx.Err()
	}
}
