package server

import (
	"encoding/json"
	"time"

	"diversity/internal/engine"
	"diversity/internal/experiments"
	"diversity/internal/faultmodel"
	"diversity/internal/montecarlo"
	"diversity/internal/store"
)

// restartReason marks jobs that were queued or running when the process
// died. The word "restart" is contractual (docs/API.md): clients tell
// interrupted jobs from genuine failures by it.
const restartReason = "interrupted by server restart"

// storedResult is the persisted form of an engine result: the envelope
// minus the resolved fault set, which is rebuilt from the job spec on
// replay — journaling a million-fault scenario's parameters with every
// result would dominate the ledger.
type storedResult struct {
	Kind        engine.JobKind          `json:"kind"`
	Hash        string                  `json:"hash"`
	ID          string                  `json:"id"`
	FromCache   bool                    `json:"fromCache,omitempty"`
	RunID       string                  `json:"runId,omitempty"`
	ModelName   string                  `json:"model,omitempty"`
	MonteCarlo  *montecarlo.Result      `json:"montecarlo,omitempty"`
	RareEvent   *engine.RareEventResult `json:"rareEvent,omitempty"`
	Experiments []*experiments.Result   `json:"experiments,omitempty"`
	Analytic    *engine.AnalyticResult  `json:"analytic,omitempty"`
}

// encodeResult maps an engine result to its persisted form.
func encodeResult(res *engine.Result) (json.RawMessage, error) {
	return json.Marshal(storedResult{
		Kind:        res.Kind,
		Hash:        res.Hash,
		ID:          res.ID,
		FromCache:   res.FromCache,
		RunID:       res.RunID,
		ModelName:   res.ModelName,
		MonteCarlo:  res.MonteCarlo,
		RareEvent:   res.RareEvent,
		Experiments: res.Experiments,
		Analytic:    res.Analytic,
	})
}

// modelResolver memoises fault-set resolution across one replay, so a
// ledger full of jobs over the same scenario resolves it once.
type modelResolver struct {
	cache map[string]*faultmodel.FaultSet
}

func newModelResolver() *modelResolver {
	return &modelResolver{cache: make(map[string]*faultmodel.FaultSet)}
}

// resolve rebuilds the fault set of the job's model spec, best effort:
// a spec that no longer resolves (a scenario renamed across versions)
// yields nil, and the replayed result simply omits the model fault
// count.
func (r *modelResolver) resolve(job engine.Job) *faultmodel.FaultSet {
	var spec *engine.ModelSpec
	switch {
	case job.MonteCarlo != nil:
		spec = &job.MonteCarlo.Model
	case job.RareEvent != nil:
		spec = &job.RareEvent.Model
	case job.Analytic != nil:
		spec = &job.Analytic.Model
	default:
		return nil // experiment suites sweep their own populations
	}
	key, err := json.Marshal(spec)
	if err != nil {
		return nil
	}
	if fs, ok := r.cache[string(key)]; ok {
		return fs
	}
	fs, _, err := spec.Resolve()
	if err != nil {
		fs = nil
	}
	r.cache[string(key)] = fs
	return fs
}

// decodeResult rebuilds an engine result from its persisted form,
// reattaching the fault set resolved from the job spec.
func (r *modelResolver) decodeResult(raw json.RawMessage, job engine.Job) (*engine.Result, error) {
	var sr storedResult
	if err := json.Unmarshal(raw, &sr); err != nil {
		return nil, err
	}
	return &engine.Result{
		Kind:        sr.Kind,
		Hash:        sr.Hash,
		ID:          sr.ID,
		FromCache:   sr.FromCache,
		RunID:       sr.RunID,
		ModelName:   sr.ModelName,
		FaultSet:    r.resolve(job),
		MonteCarlo:  sr.MonteCarlo,
		RareEvent:   sr.RareEvent,
		Experiments: sr.Experiments,
		Analytic:    sr.Analytic,
	}, nil
}

// storePut journals a fresh submission. Called with s.mu held, before
// the queue send, so every admitted job is journaled — a failure here
// fails the submission (the client sees a 500 and can retry), because
// acknowledging a job the ledger never saw would silently downgrade the
// durability contract.
func (s *Server) storePut(js *jobState, seq uint64) error {
	if s.store == nil {
		return nil
	}
	spec, err := json.Marshal(js.job)
	if err != nil {
		return err
	}
	return s.store.Put(store.JobRecord{
		ID:        js.id,
		Seq:       seq,
		EngineID:  js.engineID,
		RunID:     js.runID,
		Kind:      string(js.job.Kind),
		Spec:      spec,
		Status:    string(statusQueued),
		Submitted: js.submitted,
	})
}

// storeUpdate journals a lifecycle transition, best effort: the client
// already holds the job and its state is authoritative in memory, and a
// record whose terminal transition never landed is re-marked
// failed/restart on the next startup. An update carrying a result that
// the store rejects (an oversized record) is retried without the
// result, so at least the terminal status is durable.
func (s *Server) storeUpdate(u store.Update) {
	if s.store == nil {
		return
	}
	err := s.store.Update(u)
	if err != nil && len(u.Result) > 0 {
		if s.log != nil {
			s.log.Warn("persisting job result failed; retrying status-only", "id", u.ID, "error", err)
		}
		u.Result = nil
		err = s.store.Update(u)
	}
	if err != nil && s.log != nil {
		s.log.Warn("persisting job transition failed", "id", u.ID, "status", u.Status, "error", err)
	}
}

// storeEvict journals a ledger eviction, best effort. Called with s.mu
// held.
func (s *Server) storeEvict(id string) {
	if s.store == nil {
		return
	}
	if err := s.store.Evict(id); err != nil && s.log != nil {
		s.log.Warn("persisting job eviction failed", "id", id, "error", err)
	}
}

// replayFromStore rebuilds the in-memory ledger from the durable store:
// finished results become fetchable under their original submission IDs
// again, jobs that were queued or running when the process died are
// re-marked failed/restart (and the re-mark is journaled, so the next
// restart replays it instead of re-deciding), the engine result cache
// is warmed so resubmitting a pre-restart spec is a cache hit, and
// submission numbering resumes past the highest replayed sequence.
// Called from New, before the worker pool exists.
func (s *Server) replayFromStore() {
	s.mu.Lock()
	defer s.mu.Unlock()
	records := s.store.Jobs()
	s.seq = s.store.MaxSeq()
	resolver := newModelResolver()
	var interrupted, warmed int
	for i := range records {
		rec := &records[i]
		js := &jobState{
			id:        rec.ID,
			engineID:  rec.EngineID,
			runID:     rec.RunID,
			tracker:   newProgressTracker(),
			status:    jobStatus(rec.Status),
			errMsg:    rec.Error,
			submitted: rec.Submitted,
			started:   rec.Started,
			finished:  rec.Finished,
		}
		if len(rec.Spec) > 0 {
			if err := json.Unmarshal(rec.Spec, &js.job); err != nil && s.log != nil {
				s.log.Warn("replayed job has an undecodable spec", "id", rec.ID, "error", err)
			}
		}
		if js.job.Kind == "" {
			js.job.Kind = engine.JobKind(rec.Kind)
		}
		switch js.status {
		case statusQueued, statusRunning:
			js.status = statusFailed
			js.errMsg = restartReason
			js.finished = time.Now()
			s.storeUpdate(store.Update{
				ID:       js.id,
				Status:   string(statusFailed),
				Error:    restartReason,
				Finished: js.finished,
			})
			s.reg.Counter("server.jobs_total." + string(statusFailed)).Inc()
			s.reg.Event("job.failed", js.runID, map[string]string{"id": js.id, "reason": "restart"})
			interrupted++
		case statusDone:
			if len(rec.Result) > 0 {
				res, err := resolver.decodeResult(rec.Result, js.job)
				if err != nil {
					if s.log != nil {
						s.log.Warn("replayed job has an undecodable result", "id", rec.ID, "error", err)
					}
					break
				}
				js.result = res
				// Warm the LRU with FromCache unset: the hit path copies
				// the entry and flags its own copies.
				warm := *res
				warm.FromCache = false
				s.eng.WarmCache(res.Hash, &warm)
				warmed++
			}
		}
		js.tracker.finish() // every replayed job is terminal
		s.jobs[js.id] = js
		s.order = append(s.order, js.id)
	}
	s.evictOldestLocked()
	if s.log != nil {
		s.log.Info("job ledger replayed",
			"jobs", len(records), "interrupted", interrupted, "cache_warmed", warmed, "next_seq", s.seq+1)
	}
}
