package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"diversity/internal/engine"
	"diversity/internal/store"
)

// openStore opens a ledger in dir with test-friendly defaults.
func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatalf("store.Open(%s): %v", dir, err)
	}
	return st
}

// stopServer drains s and closes its test listener mid-test, so a
// second server can be brought up against the same store directory.
func stopServer(t *testing.T, s *Server, ts *httptest.Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("draining first server: %v", err)
	}
	ts.Close()
}

func fetchJob(t *testing.T, ts *httptest.Server, id string) (int, jobView) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET job: %v", err)
	}
	defer resp.Body.Close()
	var v jobView
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatalf("decoding job view: %v", err)
		}
	}
	return resp.StatusCode, v
}

// TestRestartRecoversFinishedJobs is the durability contract at the
// package level: finished results survive a restart under their
// original submission IDs, list order is preserved, the engine cache is
// warmed from replayed results, and submission numbering continues past
// the replayed sequence.
func TestRestartRecoversFinishedJobs(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	s1, ts1 := newTestServer(t, Config{Workers: 2, Store: st}, nil)

	_, a := postJob(t, ts1, analyticJobJSON)
	_, m := postJob(t, ts1, mcJobJSON)
	va := pollUntilTerminal(t, ts1, a.ID)
	vm := pollUntilTerminal(t, ts1, m.ID)
	if va.Status != "done" || vm.Status != "done" {
		t.Fatalf("pre-restart jobs: %q / %q", va.Status, vm.Status)
	}
	stopServer(t, s1, ts1)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir)
	t.Cleanup(func() { st2.Close() })
	_, ts2 := newTestServer(t, Config{Workers: 2, Store: st2}, nil)

	// Original IDs answer with the full result.
	code, ra := fetchJob(t, ts2, a.ID)
	if code != http.StatusOK || ra.Status != "done" || ra.Result == nil {
		t.Fatalf("replayed analytic job: code %d status %q result %v", code, ra.Status, ra.Result)
	}
	if ra.Result.Analytic == nil || ra.Result.JobID != va.Result.JobID {
		t.Fatalf("replayed analytic result = %+v, want payload with jobId %s", ra.Result, va.Result.JobID)
	}
	if ra.Result.ModelFaults == 0 {
		t.Fatal("replayed result lost the resolved model fault count")
	}
	code, rm := fetchJob(t, ts2, m.ID)
	if code != http.StatusOK || rm.Status != "done" || rm.Result == nil || rm.Result.MonteCarlo == nil {
		t.Fatalf("replayed montecarlo job: code %d status %q", code, rm.Status)
	}
	if rm.Result.MonteCarlo.Version.Mean != vm.Result.MonteCarlo.Version.Mean {
		t.Fatal("replayed montecarlo summary differs from the pre-restart one")
	}

	// Listing preserves submission order across the restart.
	resp, err := http.Get(ts2.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Jobs []jobView `json:"jobs"`
	}
	err = json.NewDecoder(resp.Body).Decode(&listing)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(listing.Jobs) != 2 || listing.Jobs[0].ID != a.ID || listing.Jobs[1].ID != m.ID {
		t.Fatalf("replayed listing = %+v, want [%s %s]", listing.Jobs, a.ID, m.ID)
	}

	// A pre-restart spec resubmitted is a warmed-cache hit with the same
	// stable job ID, and its fresh submission ID continues the sequence.
	_, re := postJob(t, ts2, analyticJobJSON)
	if !strings.HasPrefix(re.ID, "j-000003-") {
		t.Fatalf("post-restart submission ID %q does not continue the replayed sequence", re.ID)
	}
	rv := pollUntilTerminal(t, ts2, re.ID)
	if rv.Status != "done" || rv.Result == nil {
		t.Fatalf("post-restart resubmission: %q", rv.Status)
	}
	if !rv.Result.FromCache {
		t.Fatal("resubmitted pre-restart spec was recomputed instead of hitting the warmed cache")
	}
	if rv.Result.JobID != va.Result.JobID {
		t.Fatalf("stable job ID changed across restart: %q vs %q", rv.Result.JobID, va.Result.JobID)
	}
}

// TestRestartMarksInterruptedJobsFailed: jobs that were queued or
// running when the process died surface as failed with the restart
// reason after replay.
func TestRestartMarksInterruptedJobsFailed(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	block := make(chan struct{})
	runStub := func(ctx context.Context, job engine.Job, progress func(engine.Progress)) (*engine.Result, error) {
		<-block
		return &engine.Result{Kind: job.Kind}, nil
	}
	_, ts1 := newTestServer(t, Config{Workers: 1, Store: st}, runStub)

	_, running := postJob(t, ts1, mcJobJSON)
	_, queued := postJob(t, ts1, analyticJobJSON)
	waitForStatus(t, ts1, running.ID, statusRunning)

	// Simulate the crash: the journal stops taking transitions mid-run.
	// Everything after this point is the doomed process unwinding.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	close(block)

	st2 := openStore(t, dir)
	t.Cleanup(func() { st2.Close() })
	_, ts2 := newTestServer(t, Config{Workers: 1, Store: st2}, runStub)

	for _, id := range []string{running.ID, queued.ID} {
		code, v := fetchJob(t, ts2, id)
		if code != http.StatusOK || v.Status != "failed" {
			t.Fatalf("interrupted job %s: code %d status %q", id, code, v.Status)
		}
		if !strings.Contains(v.Error, "restart") {
			t.Fatalf("interrupted job %s error = %q, want a restart reason", id, v.Error)
		}
		if v.Finished == nil {
			t.Fatalf("interrupted job %s has no finished timestamp", id)
		}
	}

	// The re-mark itself was journaled: a third open replays failed
	// states without re-deciding.
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	st3 := openStore(t, dir)
	defer st3.Close()
	for _, rec := range st3.Jobs() {
		if rec.Status != "failed" || !strings.Contains(rec.Error, "restart") {
			t.Fatalf("journaled re-mark missing: %+v", rec)
		}
	}
}

// TestEvictionPersistsAcrossRestart: the RetainJobs cap is a retention
// policy that the durable ledger follows — an evicted job stays gone
// after a restart.
func TestEvictionPersistsAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	runStub := func(ctx context.Context, job engine.Job, progress func(engine.Progress)) (*engine.Result, error) {
		return &engine.Result{Kind: job.Kind}, nil
	}
	s1, ts1 := newTestServer(t, Config{Workers: 1, RetainJobs: 2, Store: st}, runStub)

	var ids []string
	for i := 0; i < 3; i++ {
		_, v := postJob(t, ts1, mcJobJSON)
		pollUntilTerminal(t, ts1, v.ID)
		ids = append(ids, v.ID)
	}
	if code, _ := fetchJob(t, ts1, ids[0]); code != http.StatusNotFound {
		t.Fatalf("oldest job still served after eviction: %d", code)
	}
	stopServer(t, s1, ts1)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir)
	t.Cleanup(func() { st2.Close() })
	_, ts2 := newTestServer(t, Config{Workers: 1, RetainJobs: 2, Store: st2}, runStub)
	if code, _ := fetchJob(t, ts2, ids[0]); code != http.StatusNotFound {
		t.Fatalf("evicted job resurrected by replay: %d", code)
	}
	for _, id := range ids[1:] {
		if code, v := fetchJob(t, ts2, id); code != http.StatusOK || v.Status != "done" {
			t.Fatalf("retained job %s: code %d status %q", id, code, v.Status)
		}
	}
}
