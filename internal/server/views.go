package server

import (
	"time"

	"diversity/internal/engine"
	"diversity/internal/stats"
)

// jobView is the API representation of a submitted job. Result is only
// populated on detail responses (GET /v1/jobs/{id} and the SSE "done"
// event); listings carry the lifecycle fields alone.
type jobView struct {
	ID        string        `json:"id"`
	JobID     string        `json:"jobId"`
	RunID     string        `json:"runId,omitempty"`
	Kind      string        `json:"kind"`
	Status    string        `json:"status"`
	Submitted time.Time     `json:"submitted"`
	Started   *time.Time    `json:"started,omitempty"`
	Finished  *time.Time    `json:"finished,omitempty"`
	Error     string        `json:"error,omitempty"`
	Progress  *progressView `json:"progress,omitempty"`
	Result    *resultView   `json:"result,omitempty"`
}

// progressView mirrors engine.Progress, plus the run ID so SSE
// consumers can correlate progress frames with server logs and traces.
type progressView struct {
	Run   string `json:"run,omitempty"`
	Stage string `json:"stage"`
	Done  int    `json:"done"`
	Total int    `json:"total"`
}

// resultView is the API representation of an engine result: the stable
// job identity and cache disposition, plus a kind-matched payload. It
// summarises rather than dumps — a million-fault model's parameters and
// a buffered run's raw PFD samples stay server-side.
type resultView struct {
	JobID       string           `json:"jobId"`
	Hash        string           `json:"hash"`
	FromCache   bool             `json:"fromCache"`
	Model       string           `json:"model,omitempty"`
	ModelFaults int              `json:"modelFaults,omitempty"`
	MonteCarlo  *mcResultView    `json:"montecarlo,omitempty"`
	RareEvent   *rareResultView  `json:"rareEvent,omitempty"`
	Experiments []experimentView `json:"experiments,omitempty"`
	Analytic    *analyticView    `json:"analytic,omitempty"`
}

// summaryView carries the descriptive statistics of a PFD population.
type summaryView struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stdDev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Median float64 `json:"median"`
	Q05    float64 `json:"q05"`
	Q95    float64 `json:"q95"`
	Q99    float64 `json:"q99"`
}

func summaryViewOf(s stats.Summary) summaryView {
	return summaryView{
		N: s.N, Mean: s.Mean, StdDev: s.StdDev, Min: s.Min, Max: s.Max,
		Median: s.Median, Q05: s.Q05, Q95: s.Q95, Q99: s.Q99,
	}
}

type mcResultView struct {
	Reps             int         `json:"reps"`
	Versions         int         `json:"versions,omitempty"`
	Adjudicator      string      `json:"adjudicator,omitempty"`
	Streaming        bool        `json:"streaming,omitempty"`
	Sparse           bool        `json:"sparse,omitempty"`
	Batched          bool        `json:"batched,omitempty"`
	BatchWidth       int         `json:"batchWidth,omitempty"`
	Version          summaryView `json:"version"`
	System           summaryView `json:"system"`
	VersionFaultFree int         `json:"versionFaultFree"`
	SystemFaultFree  int         `json:"systemFaultFree"`
	RiskRatio        *float64    `json:"riskRatio,omitempty"`
}

type estimateView struct {
	Probability float64 `json:"probability"`
	StdErr      float64 `json:"stdErr"`
	HitFraction float64 `json:"hitFraction"`
}

type rareResultView struct {
	ImportanceSampling estimateView `json:"importanceSampling"`
	Naive              estimateView `json:"naive"`
	ClosedForm         float64      `json:"closedForm"`
}

type checkView struct {
	Name     string `json:"name"`
	Paper    string `json:"paper"`
	Measured string `json:"measured"`
	Pass     bool   `json:"pass"`
}

type experimentView struct {
	ID     string      `json:"id"`
	Title  string      `json:"title"`
	Passed bool        `json:"passed"`
	Checks []checkView `json:"checks"`
}

type gainView struct {
	K          float64 `json:"k"`
	Mu1        float64 `json:"mu1"`
	Sigma1     float64 `json:"sigma1"`
	Mu2        float64 `json:"mu2"`
	Sigma2     float64 `json:"sigma2"`
	Bound1     float64 `json:"bound1"`
	Bound2     float64 `json:"bound2"`
	Bound11    float64 `json:"bound11"`
	Bound12    float64 `json:"bound12"`
	BoundRatio float64 `json:"boundRatio"`
	BoundDiff  float64 `json:"boundDiff"`
}

type boundView struct {
	Versions      int      `json:"versions"`
	Bound         float64  `json:"bound"`
	ExactQuantile *float64 `json:"exactQuantile,omitempty"`
}

type analyticView struct {
	Gain             gainView    `json:"gain"`
	SigmaBoundFactor float64     `json:"sigmaBoundFactor"`
	RiskRatio        *float64    `json:"riskRatio,omitempty"`
	SuccessRatio     float64     `json:"successRatio"`
	Confidence       float64     `json:"confidence"`
	Bounds           []boundView `json:"bounds"`
}

// viewOf renders a job's current state; withResult additionally renders
// the result payload of a completed job.
func (s *Server) viewOf(js *jobState, withResult bool) jobView {
	js.mu.Lock()
	defer js.mu.Unlock()
	v := jobView{
		ID:        js.id,
		JobID:     js.engineID,
		RunID:     js.runID,
		Kind:      string(js.job.Kind),
		Status:    string(js.status),
		Submitted: js.submitted,
		Error:     js.errMsg,
	}
	if !js.started.IsZero() {
		t := js.started
		v.Started = &t
	}
	if !js.finished.IsZero() {
		t := js.finished
		v.Finished = &t
	}
	if p, ok := js.tracker.snapshot(); ok && !js.status.terminal() {
		v.Progress = &progressView{Run: js.runID, Stage: p.Stage, Done: p.Done, Total: p.Total}
	}
	if withResult && js.status == statusDone && js.result != nil {
		v.Result = resultViewOf(js.result)
	}
	return v
}

// resultViewOf maps an engine result to its API view.
func resultViewOf(res *engine.Result) *resultView {
	v := &resultView{
		JobID:     res.ID,
		Hash:      res.Hash,
		FromCache: res.FromCache,
		Model:     res.ModelName,
	}
	if res.FaultSet != nil {
		v.ModelFaults = res.FaultSet.N()
	}
	switch {
	case res.MonteCarlo != nil:
		mc := res.MonteCarlo
		mv := &mcResultView{
			Reps:             mc.Reps,
			Versions:         mc.Versions,
			Adjudicator:      mc.Adjudicator,
			Streaming:        mc.Streaming,
			Sparse:           mc.Sparse,
			Batched:          mc.Batched,
			BatchWidth:       mc.BatchWidth,
			VersionFaultFree: mc.VersionFaultFree,
			SystemFaultFree:  mc.SystemFaultFree,
		}
		if sum, err := mc.VersionSummary(); err == nil {
			mv.Version = summaryViewOf(sum)
		}
		if sum, err := mc.SystemSummary(); err == nil {
			mv.System = summaryViewOf(sum)
		}
		if ratio, err := mc.RiskRatio(); err == nil {
			mv.RiskRatio = &ratio
		}
		v.MonteCarlo = mv
	case res.RareEvent != nil:
		re := res.RareEvent
		v.RareEvent = &rareResultView{
			ImportanceSampling: estimateView{
				Probability: re.ImportanceSampling.Probability,
				StdErr:      re.ImportanceSampling.StdErr,
				HitFraction: re.ImportanceSampling.HitFraction,
			},
			Naive: estimateView{
				Probability: re.Naive.Probability,
				StdErr:      re.Naive.StdErr,
				HitFraction: re.Naive.HitFraction,
			},
			ClosedForm: re.ClosedForm,
		}
	case res.Experiments != nil:
		for _, exp := range res.Experiments {
			ev := experimentView{ID: exp.ID, Title: exp.Title, Passed: exp.Passed()}
			for _, c := range exp.Checks {
				ev.Checks = append(ev.Checks, checkView{Name: c.Name, Paper: c.Paper, Measured: c.Measured, Pass: c.Pass})
			}
			v.Experiments = append(v.Experiments, ev)
		}
	case res.Analytic != nil:
		ar := res.Analytic
		av := &analyticView{
			Gain: gainView{
				K: ar.Gain.K, Mu1: ar.Gain.Mu1, Sigma1: ar.Gain.Sigma1,
				Mu2: ar.Gain.Mu2, Sigma2: ar.Gain.Sigma2,
				Bound1: ar.Gain.Bound1, Bound2: ar.Gain.Bound2,
				Bound11: ar.Gain.Bound11, Bound12: ar.Gain.Bound12,
				BoundRatio: ar.Gain.BoundRatio, BoundDiff: ar.Gain.BoundDiff,
			},
			SigmaBoundFactor: ar.SigmaBoundFactor,
			SuccessRatio:     ar.SuccessRatio,
			Confidence:       ar.Confidence,
		}
		if ar.HasRiskRatio {
			ratio := ar.RiskRatio
			av.RiskRatio = &ratio
		}
		for _, b := range ar.Bounds {
			bv := boundView{Versions: b.Versions, Bound: b.Bound}
			if b.HasExact {
				q := b.ExactQuantile
				bv.ExactQuantile = &q
			}
			av.Bounds = append(av.Bounds, bv)
		}
		v.Analytic = av
	}
	return v
}
