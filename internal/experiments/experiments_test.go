package experiments

import (
	"fmt"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	t.Parallel()

	ids := IDs()
	if len(ids) != 25 {
		t.Fatalf("registry has %d experiments, want 25: %v", len(ids), ids)
	}
	for i := 1; i <= 25; i++ {
		want := fmt.Sprintf("E%02d", i)
		found := false
		for _, id := range ids {
			if id == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("experiment %s not registered", want)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	t.Parallel()

	if _, err := Run("E99", Config{}); err == nil {
		t.Error("unknown experiment succeeded, want error")
	}
}

// TestAllExperimentsPass runs the entire suite in quick mode and requires
// every paper-vs-measured check to pass. This is the repository's primary
// reproduction gate.
func TestAllExperimentsPass(t *testing.T) {
	t.Parallel()

	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			res, err := Run(id, Config{Seed: 1, Quick: true})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if res.ID != id {
				t.Errorf("result ID = %q, want %q", res.ID, id)
			}
			if res.Title == "" {
				t.Error("result has no title")
			}
			if res.Text == "" {
				t.Error("result has no rendered text")
			}
			if len(res.Checks) == 0 {
				t.Fatal("experiment performed no checks")
			}
			for _, c := range res.Checks {
				if c.Name == "" || c.Paper == "" || c.Measured == "" {
					t.Errorf("incomplete check: %+v", c)
				}
				if !c.Pass {
					t.Errorf("check failed: %s\n  paper:    %s\n  measured: %s", c.Name, c.Paper, c.Measured)
				}
			}
			if !res.Passed() {
				t.Error("Passed() = false")
			}
		})
	}
}

func TestRunDeterministic(t *testing.T) {
	t.Parallel()

	// The suite must be exactly reproducible for a fixed seed.
	a, err := Run("E04", Config{Seed: 7, Quick: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	b, err := Run("E04", Config{Seed: 7, Quick: true})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if a.Text != b.Text {
		t.Error("identical seeds produced different experiment text")
	}
}

func TestResultSummaryFormat(t *testing.T) {
	t.Parallel()

	res := &Result{
		ID:    "EXX",
		Title: "demo",
		Checks: []Check{
			{Name: "good", Paper: "p", Measured: "m", Pass: true},
			{Name: "bad", Paper: "p", Measured: "m", Pass: false},
		},
	}
	s := res.Summary()
	if !strings.Contains(s, "[PASS] good") || !strings.Contains(s, "[FAIL] bad") {
		t.Errorf("summary missing statuses:\n%s", s)
	}
	if res.Passed() {
		t.Error("Passed() = true with a failing check")
	}
}

func TestRunAll(t *testing.T) {
	t.Parallel()

	results, err := RunAll(Config{Seed: 2, Quick: true})
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(results) != len(IDs()) {
		t.Fatalf("RunAll returned %d results, want %d", len(results), len(IDs()))
	}
	// Results arrive in ID order.
	for i := 1; i < len(results); i++ {
		if results[i-1].ID >= results[i].ID {
			t.Errorf("results out of order: %s before %s", results[i-1].ID, results[i].ID)
		}
	}
}

func TestConfigReps(t *testing.T) {
	t.Parallel()

	full := Config{}
	if got := full.reps(100000); got != 100000 {
		t.Errorf("full reps = %d, want 100000", got)
	}
	quick := Config{Quick: true}
	if got := quick.reps(100000); got != 10000 {
		t.Errorf("quick reps = %d, want 10000", got)
	}
	// Quick never goes below 1000 (or the full count if smaller).
	if got := quick.reps(5000); got != 1000 {
		t.Errorf("quick reps of 5000 = %d, want 1000", got)
	}
	if got := quick.reps(500); got != 500 {
		t.Errorf("quick reps of 500 = %d, want 500", got)
	}
}
