package experiments

import (
	"context"
	"fmt"
	"strings"

	"diversity/internal/calibrate"
	"diversity/internal/devsim"
	"diversity/internal/faultmodel"
	"diversity/internal/randx"
	"diversity/internal/report"
)

var _ = register("E22", runE22Calibration)

// runE22Calibration closes the assessor loop of Section 6.3: the model's
// parameters are "unknown and unmeasurable", but the paper argues that
// pmax — the only parameter the headline formulas need — can be bounded
// from assessors' experience of faults in comparable past projects. The
// experiment generates synthetic past-project evidence from a known true
// model, estimates a simultaneous upper confidence bound on pmax from the
// fault counts, feeds it into formulas (4) and (12), and verifies that the
// resulting reliability claims hold against the true model at the stated
// confidence.
func runE22Calibration(ctx context.Context, cfg Config) (*Result, error) {
	res := &Result{
		ID:    "E22",
		Title: "Extension: assessor calibration of pmax from past projects (Section 6.3)",
	}
	// The true (hidden) fault universe.
	truth, err := faultmodel.New([]faultmodel.Fault{
		{P: 0.12, Q: 0.01},
		{P: 0.07, Q: 0.02},
		{P: 0.04, Q: 0.015},
		{P: 0.02, Q: 0.03},
		{P: 0.01, Q: 0.005},
		{P: 0.005, Q: 0.02},
	})
	if err != nil {
		return nil, err
	}
	const (
		versionsObserved = 40 // versions across the assessor's past projects
		level            = 0.9
	)
	trials := cfg.reps(4000)
	r := randx.NewStream(cfg.Seed + 111)
	proc := devsim.NewIndependentProcess(truth)

	trueMu1, err := truth.MeanPFD(1)
	if err != nil {
		return nil, err
	}
	trueMu2, err := truth.MeanPFD(2)
	if err != nil {
		return nil, err
	}
	trueSigma1, err := truth.SigmaPFD(1)
	if err != nil {
		return nil, err
	}
	trueBound2, err := truth.ConfidenceBound(2, 1)
	if err != nil {
		return nil, err
	}

	pmaxCovered, eq4Holds, eq12Holds := 0, 0, 0
	var exampleBound calibrate.PmaxBound
	for trial := 0; trial < trials; trial++ {
		// The assessor observes which faults appeared in past versions.
		counts := make([]int, truth.N())
		for v := 0; v < versionsObserved; v++ {
			version := proc.Develop(r)
			for i := 0; i < truth.N(); i++ {
				if version.Has(i) {
					counts[i]++
				}
			}
		}
		bound, err := calibrate.UpperPmax(calibrate.Observations{
			Versions: versionsObserved,
			Counts:   counts,
		}, level)
		if err != nil {
			return nil, err
		}
		if trial == 0 {
			exampleBound = bound
		}
		if bound.Bound >= truth.PMax() {
			pmaxCovered++
		}
		// Claim via eq (4): µ2 <= pmaxBound·µ1 (with µ1 assumed known
		// from the same evidence base).
		if trueMu2 <= bound.Bound*trueMu1+1e-15 {
			eq4Holds++
		}
		// Claim via formula (12): the two-version bound computed from the
		// ESTIMATED pmax must still dominate the true expression.
		claimed, err := faultmodel.TwoVersionBoundFromBound(trueMu1+trueSigma1, bound.Bound)
		if err != nil {
			return nil, err
		}
		if trueBound2 <= claimed+1e-15 {
			eq12Holds++
		}
	}

	tbl, err := report.NewTable(
		fmt.Sprintf("Calibration loop (%d trials, %d observed versions, %.0f%% simultaneous confidence)", trials, versionsObserved, level*100),
		"quantity", "value")
	if err != nil {
		return nil, err
	}
	rows := [][2]string{
		{"true pmax", report.Fmt(truth.PMax())},
		{"example estimated pmax bound", report.Fmt(exampleBound.Bound)},
		{"P(bound covers true pmax)", report.Fmt(float64(pmaxCovered) / float64(trials))},
		{"P(eq-4 claim from estimate holds)", report.Fmt(float64(eq4Holds) / float64(trials))},
		{"P(formula-12 claim from estimate holds)", report.Fmt(float64(eq12Holds) / float64(trials))},
	}
	for _, row := range rows {
		if err := tbl.AddRow(row[0], row[1]); err != nil {
			return nil, err
		}
	}

	coverage := float64(pmaxCovered) / float64(trials)
	res.Checks = append(res.Checks, Check{
		Name:     "pmax bound coverage",
		Paper:    "to use inequality (4) we only need to estimate an upper bound [on pmax]",
		Measured: fmt.Sprintf("simultaneous %.0f%% bound covered the true pmax in %.1f%% of %d calibrations", level*100, coverage*100, trials),
		Pass:     coverage >= level-0.02,
	})
	res.Checks = append(res.Checks, Check{
		Name:     "calibrated claims remain valid",
		Paper:    "formulas (4) and (12) driven by the estimated bound give trustworthy claims",
		Measured: fmt.Sprintf("eq-4 claim held in %.1f%%, formula-12 claim in %.1f%% of calibrations", float64(eq4Holds)/float64(trials)*100, float64(eq12Holds)/float64(trials)*100),
		Pass:     float64(eq4Holds)/float64(trials) >= level-0.02 && float64(eq12Holds)/float64(trials) >= level-0.02,
	})

	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		return nil, err
	}
	res.Text = b.String()
	return res, nil
}
