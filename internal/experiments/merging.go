package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"diversity/internal/devsim"
	"diversity/internal/faultmodel"
	"diversity/internal/montecarlo"
	"diversity/internal/report"
	"diversity/internal/stats"
)

var _ = register("E24", runE24FaultMerging)

// runE24FaultMerging validates the paper's Section-6.1 modelling device
// for positive correlation: mistakes that can only occur together behave
// exactly like one merged mistake whose failure region is the union — so
// "solving these models for higher values of the q_i parameters (and
// correspondingly lower values of n) gives a first approximation to
// modelling the effects of positive correlation".
func runE24FaultMerging(ctx context.Context, cfg Config) (*Result, error) {
	res := &Result{
		ID:    "E24",
		Title: "Section 6.1 device: merged faults = perfectly correlated mistakes",
	}
	original, err := faultmodel.New([]faultmodel.Fault{
		{P: 0.25, Q: 0.04}, // tied to the next fault
		{P: 0.25, Q: 0.06},
		{P: 0.1, Q: 0.05}, // independent
		{P: 0.05, Q: 0.02},
	})
	if err != nil {
		return nil, err
	}
	merged, err := original.MergeFaults(0, 1, 0.25)
	if err != nil {
		return nil, err
	}

	// Analytic agreement: the merged model's closed forms ARE the tied
	// process's statistics.
	tied, err := devsim.NewTiedPairsProcess(original, [][2]int{{0, 1}})
	if err != nil {
		return nil, err
	}
	reps := cfg.reps(200000)
	mcTied, err := montecarlo.RunContext(ctx, montecarlo.Config{
		Process:  tied,
		Versions: 2,
		Reps:     reps,
		Seed:     cfg.Seed + 121,
	})
	if err != nil {
		return nil, err
	}
	mcMerged, err := montecarlo.RunContext(ctx, montecarlo.Config{
		Process:  devsim.NewIndependentProcess(merged),
		Versions: 2,
		Reps:     reps,
		Seed:     cfg.Seed + 122,
	})
	if err != nil {
		return nil, err
	}

	tbl, err := report.NewTable(
		"Tied-pair process vs merged-fault model",
		"quantity", "tied process (MC)", "merged model (analytic)", "merged model (MC)")
	if err != nil {
		return nil, err
	}
	mu1Merged, err := merged.MeanPFD(1)
	if err != nil {
		return nil, err
	}
	mu2Merged, err := merged.MeanPFD(2)
	if err != nil {
		return nil, err
	}
	tiedMu1, err := stats.Mean(mcTied.VersionPFD)
	if err != nil {
		return nil, err
	}
	tiedMu2, err := stats.Mean(mcTied.SystemPFD)
	if err != nil {
		return nil, err
	}
	mergedMu1, err := stats.Mean(mcMerged.VersionPFD)
	if err != nil {
		return nil, err
	}
	mergedMu2, err := stats.Mean(mcMerged.SystemPFD)
	if err != nil {
		return nil, err
	}
	noCommonMerged, err := merged.PNoFault(2)
	if err != nil {
		return nil, err
	}
	rows := [][4]string{
		{"mean version PFD", report.Fmt(tiedMu1), report.Fmt(mu1Merged), report.Fmt(mergedMu1)},
		{"mean system PFD", report.Fmt(tiedMu2), report.Fmt(mu2Merged), report.Fmt(mergedMu2)},
		{"P(no common fault)", report.Fmt(float64(mcTied.SystemFaultFree) / float64(reps)), report.Fmt(noCommonMerged), report.Fmt(float64(mcMerged.SystemFaultFree) / float64(reps))},
	}
	for _, row := range rows {
		if err := tbl.AddRow(row[0], row[1], row[2], row[3]); err != nil {
			return nil, err
		}
	}

	// KS on the whole system PFD distribution: tied vs merged must be
	// indistinguishable.
	ks, err := stats.KSTestTwoSample(mcTied.SystemPFD, mcMerged.SystemPFD)
	if err != nil {
		return nil, err
	}
	res.Checks = append(res.Checks, Check{
		Name:     "exact equivalence of tied pairs and merged faults",
		Paper:    "with the extreme positive correlation, the two mistakes can be considered as one with the union failure region",
		Measured: fmt.Sprintf("two-sample KS on the system PFD distributions: D=%s p=%s; means agree to MC noise", report.Fmt(ks.Statistic), report.Fmt(ks.PValue)),
		Pass: ks.PValue > 0.001 &&
			math.Abs(tiedMu1-mu1Merged) < 0.003 &&
			math.Abs(tiedMu2-mu2Merged) < 0.003,
	})

	// The direction of the error when correlation is ignored depends on
	// the risk measure — a finding worth pinning. The MEAN system PFD is
	// invariant under merging (both charge p²(q_i+q_j) for the pair).
	// P(no common fault) RISES under correlation (one shared coin instead
	// of two chances), so independence is pessimistic there. But the
	// system PFD VARIANCE rises under correlation (failures arrive in
	// larger chunks), so independence is optimistic about the tail.
	naiveMu2, err := original.MeanPFD(2)
	if err != nil {
		return nil, err
	}
	naiveNoCommon, err := original.PNoFault(2)
	if err != nil {
		return nil, err
	}
	naiveVar, err := original.VarPFD(2)
	if err != nil {
		return nil, err
	}
	mergedVar, err := merged.VarPFD(2)
	if err != nil {
		return nil, err
	}
	res.Checks = append(res.Checks, Check{
		Name:  "error direction depends on the risk measure",
		Paper: "Section 6.1 discusses when independence models stay close to reality; the deviation is not one-sided",
		Measured: fmt.Sprintf("mean PFD invariant (%s = %s); P(no common fault) %s (indep) < %s (true): pessimistic; Var(system PFD) %s (indep) < %s (true): optimistic about the tail",
			report.Fmt(naiveMu2), report.Fmt(mu2Merged),
			report.Fmt(naiveNoCommon), report.Fmt(noCommonMerged),
			report.Fmt(naiveVar), report.Fmt(mergedVar)),
		Pass: math.Abs(naiveMu2-mu2Merged) < 1e-12 &&
			naiveNoCommon < noCommonMerged &&
			naiveVar < mergedVar,
	})

	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		return nil, err
	}
	res.Text = b.String()
	return res, nil
}
