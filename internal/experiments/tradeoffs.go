package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"diversity/internal/demandspace"
	"diversity/internal/faultmodel"
	"diversity/internal/process"
	"diversity/internal/randx"
	"diversity/internal/report"
)

var _ = register("E20", runE20TestingTrade)

// runE20TestingTrade exercises the V&V-vs-diversity decision that
// motivates the paper's introduction (Hatton [1]; the authors' own
// refs [6, 7, 13]): statistical testing as a realistic, NON-proportional
// process improvement, and the budget trade between "one well-tested
// version" and "two diverse, less-tested versions".
func runE20TestingTrade(ctx context.Context, cfg Config) (*Result, error) {
	res := &Result{
		ID:    "E20",
		Title: "Extension: statistical testing vs diversity (refs [1,6,7,13])",
	}
	// A mixed universe: one large-region fault testing finds quickly, a
	// medium fault, and a small-region fault testing barely reaches.
	fs, err := faultmodel.New([]faultmodel.Fault{
		{P: 0.3, Q: 0.05},
		{P: 0.2, Q: 0.005},
		{P: 0.2, Q: 0.0001},
	})
	if err != nil {
		return nil, err
	}

	// Part 1: the risk ratio along a testing trajectory is non-monotone —
	// the Section-4.2.1 reversal arising from a realistic improvement.
	tbl, err := report.NewTable(
		"Testing as process improvement (non-proportional by nature)",
		"test demands", "mean PFD (1 version)", "P(N1>0)", "risk ratio eq(10)")
	if err != nil {
		return nil, err
	}
	budgets := []float64{0, 10, 30, 100, 300, 1000, 3000}
	ratios := make([]float64, 0, len(budgets))
	prevMu := math.Inf(1)
	muMonotone := true
	for _, demands := range budgets {
		tested, err := process.ApplyTesting(fs, demands)
		if err != nil {
			return nil, err
		}
		mu, err := tested.MeanPFD(1)
		if err != nil {
			return nil, err
		}
		if mu > prevMu+1e-18 {
			muMonotone = false
		}
		prevMu = mu
		any1, err := tested.PAnyFault(1)
		if err != nil {
			return nil, err
		}
		ratio, err := tested.RiskRatio()
		if err != nil {
			return nil, err
		}
		ratios = append(ratios, ratio)
		if err := tbl.AddRow(report.Fmt(demands), report.Fmt(mu),
			report.Fmt(any1), report.Fmt(ratio)); err != nil {
			return nil, err
		}
	}
	res.Checks = append(res.Checks, Check{
		Name:     "testing improves reliability monotonically",
		Paper:    "quality assurance activities strive to reduce the p_i",
		Measured: "mean version PFD non-increasing along the testing trajectory",
		Pass:     muMonotone,
	})
	// Non-monotonicity: somewhere along the trajectory the ratio RISES
	// (more testing, less relative benefit from diversity), even though
	// reliability itself keeps improving.
	riseAt, riseBy := -1, 0.0
	for i := 1; i < len(ratios); i++ {
		if d := ratios[i] - ratios[i-1]; d > riseBy {
			riseAt, riseBy = i, d
		}
	}
	measured := "risk ratio monotone along the trajectory"
	if riseAt > 0 {
		measured = fmt.Sprintf("risk ratio rises from %s to %s between %s and %s test demands, while the mean PFD keeps falling",
			report.Fmt(ratios[riseAt-1]), report.Fmt(ratios[riseAt]),
			report.Fmt(budgets[riseAt-1]), report.Fmt(budgets[riseAt]))
	}
	res.Checks = append(res.Checks, Check{
		Name:     "realistic improvement reverses the gain trend",
		Paper:    "Section 4.2.1: improvement affecting fault classes unevenly can reduce the gain from diversity",
		Measured: measured,
		Pass:     riseAt > 0 && riseBy > 1e-6,
	})

	// Part 2: the budget trade.
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		return nil, err
	}
	b.WriteByte('\n')
	trade, err := report.NewTable(
		"One well-tested version vs two diverse half-tested versions (overhead = 500 demands)",
		"universe", "budget", "single mean PFD", "diverse mean PFD", "winner")
	if err != nil {
		return nil, err
	}
	concentrated, err := faultmodel.New([]faultmodel.Fault{{P: 0.5, Q: 0.01}})
	if err != nil {
		return nil, err
	}
	dispersedFaults := make([]faultmodel.Fault, 50)
	for i := range dispersedFaults {
		dispersedFaults[i] = faultmodel.Fault{P: 0.2, Q: 1e-6}
	}
	dispersed, err := faultmodel.New(dispersedFaults)
	if err != nil {
		return nil, err
	}
	universes := []struct {
		name string
		fs   *faultmodel.FaultSet
	}{
		{name: "one large-region fault", fs: concentrated},
		{name: "many tiny-region faults", fs: dispersed},
	}
	winners := make(map[string]string, 2)
	for _, u := range universes {
		single, diverse, err := process.BudgetTrade(u.fs, 2000, 500)
		if err != nil {
			return nil, err
		}
		winner := "diverse"
		if single < diverse {
			winner = "single"
		}
		winners[u.name] = winner
		if err := trade.AddRow(u.name, "2000", report.Fmt(single), report.Fmt(diverse), winner); err != nil {
			return nil, err
		}
	}
	res.Checks = append(res.Checks, Check{
		Name:     "no universal winner",
		Paper:    "such arguments cannot be resolved without estimating the benefit in the given situation (Introduction)",
		Measured: fmt.Sprintf("single wins on %q, diverse wins on %q at the same budget and overhead", "one large-region fault", "many tiny-region faults"),
		Pass:     winners["one large-region fault"] == "single" && winners["many tiny-region faults"] == "diverse",
	})
	if err := trade.Render(&b); err != nil {
		return nil, err
	}
	res.Text = b.String()
	return res, nil
}

var _ = register("E21", runE21FunctionalDiversity)

// runE21FunctionalDiversity explores the remark in the paper's Fig.-1
// caption: real protection channels usually sense DIFFERENT plant
// variables ("functional diversity"), and the paper's analysis is the
// worst case where they do not. Geometrically: when both channels' failure
// regions depend on the same demand variable, the regions can coincide;
// when each channel's regions depend on its own variable, the overlap is a
// small rectangle and the channels fail nearly independently.
func runE21FunctionalDiversity(ctx context.Context, cfg Config) (*Result, error) {
	res := &Result{
		ID:    "E21",
		Title: "Extension: functional diversity in the demand space (Fig. 1 caption)",
	}
	profile, err := demandspace.NewUniformProfile(2)
	if err != nil {
		return nil, err
	}
	r := randx.NewStream(cfg.Seed + 101)
	demands := cfg.reps(400000)

	// Both channels fail on 10% of demands. Same-variable: both regions
	// are x-strips with an 80% overlap. Different-variable: channel A
	// fails on an x-strip, channel B on a y-strip.
	const width = 0.1
	xStripA, err := demandspace.NewBox(demandspace.Point{0.2, 0}, demandspace.Point{0.2 + width, 1})
	if err != nil {
		return nil, err
	}
	xStripB, err := demandspace.NewBox(demandspace.Point{0.22, 0}, demandspace.Point{0.22 + width, 1})
	if err != nil {
		return nil, err
	}
	yStripB, err := demandspace.NewBox(demandspace.Point{0, 0.5}, demandspace.Point{1, 0.5 + width})
	if err != nil {
		return nil, err
	}
	chA, err := demandspace.NewGeomVersion(2, xStripA)
	if err != nil {
		return nil, err
	}
	chBSame, err := demandspace.NewGeomVersion(2, xStripB)
	if err != nil {
		return nil, err
	}
	chBFunc, err := demandspace.NewGeomVersion(2, yStripB)
	if err != nil {
		return nil, err
	}

	same, err := demandspace.SimulatePair(r, profile, chA, chBSame, demands)
	if err != nil {
		return nil, err
	}
	functional, err := demandspace.SimulatePair(r, profile, chA, chBFunc, demands)
	if err != nil {
		return nil, err
	}

	tbl, err := report.NewTable(
		"Same-variable vs functionally diverse channels (each channel PFD = 0.1)",
		"arrangement", "PFD A", "PFD B", "system PFD", "independence A*B", "system/independence")
	if err != nil {
		return nil, err
	}
	indepSame := same.PFDA() * same.PFDB()
	indepFunc := functional.PFDA() * functional.PFDB()
	if err := tbl.AddRow("same variable (worst case)",
		report.Fmt(same.PFDA()), report.Fmt(same.PFDB()),
		report.Fmt(same.SystemPFD()), report.Fmt(indepSame),
		report.Fmt(same.SystemPFD()/indepSame)); err != nil {
		return nil, err
	}
	if err := tbl.AddRow("different variables (functional)",
		report.Fmt(functional.PFDA()), report.Fmt(functional.PFDB()),
		report.Fmt(functional.SystemPFD()), report.Fmt(indepFunc),
		report.Fmt(functional.SystemPFD()/indepFunc)); err != nil {
		return nil, err
	}

	res.Checks = append(res.Checks, Check{
		Name:     "worst case is far above independence",
		Paper:    "we study the limiting worst case in which this functional diversity does not apply",
		Measured: fmt.Sprintf("same-variable system PFD %s = %.0fx the independence prediction", report.Fmt(same.SystemPFD()), same.SystemPFD()/indepSame),
		Pass:     same.SystemPFD() > 4*indepSame,
	})
	res.Checks = append(res.Checks, Check{
		Name:     "functional diversity approaches independence",
		Paper:    "in reality the two channels usually sense different state variables (Fig. 1 caption)",
		Measured: fmt.Sprintf("different-variable system PFD %s vs independence %s (ratio %.2f)", report.Fmt(functional.SystemPFD()), report.Fmt(indepFunc), functional.SystemPFD()/indepFunc),
		Pass:     math.Abs(functional.SystemPFD()/indepFunc-1) < 0.15,
	})
	res.Checks = append(res.Checks, Check{
		Name:     "worst-case analysis is conservative",
		Paper:    "results for non-forced diversity bound the functionally diverse system from above",
		Measured: fmt.Sprintf("functional system PFD %s <= same-variable system PFD %s", report.Fmt(functional.SystemPFD()), report.Fmt(same.SystemPFD())),
		Pass:     functional.SystemPFD() <= same.SystemPFD(),
	})

	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		return nil, err
	}
	b.WriteByte('\n')
	if err := report.PlotGrid(&b, "Functionally diverse channels: A fails on the vertical band, B on the horizontal band; the system only on their small intersection",
		64, 20, func(x, y float64) rune {
			p := demandspace.Point{x, y}
			inA := xStripA.Contains(p)
			inB := yStripB.Contains(p)
			switch {
			case inA && inB:
				return '#'
			case inA:
				return 'A'
			case inB:
				return 'B'
			default:
				return '.'
			}
		}); err != nil {
		return nil, err
	}
	res.Text = b.String()
	return res, nil
}
