// Package experiments regenerates every table, figure and numbered result
// of the paper's analysis, pairing each analytic claim with an independent
// Monte-Carlo (or geometric) measurement. The experiment index — IDs,
// paper artefacts, workloads, and the modules that implement each piece —
// is documented in DESIGN.md; EXPERIMENTS.md records the paper-vs-measured
// outcomes produced by this package.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"diversity/internal/system"
	"diversity/internal/telemetry"
)

// Config parameterises an experiment run.
type Config struct {
	// Seed drives all randomness; a fixed seed reproduces a run exactly.
	Seed uint64
	// Quick reduces replication counts by roughly an order of magnitude
	// so that the full suite can run in test and bench loops. Headline
	// checks still pass in quick mode; confidence intervals are wider.
	Quick bool
	// Streaming runs the Monte-Carlo passes of moment- and counter-based
	// experiments (E01, E04) with constant-memory aggregation
	// (montecarlo Config.Streaming). Experiments that need the raw PFD
	// sample — empirical CDFs, KS tests, per-sample sweeps — always run
	// buffered regardless of this flag.
	Streaming bool
	// Sparse runs the same Monte-Carlo passes with the geometric
	// skip-sampling development kernel (montecarlo Config.Sparse). The
	// kernel draws a different variate sequence for the same seed, so
	// measured columns shift within Monte-Carlo error while every
	// model-derived column is unchanged.
	Sparse bool
	// BatchWidth >= 2 runs the same Monte-Carlo passes with the batched
	// replication kernel at the given tile width (montecarlo
	// Config.BatchWidth). Like Sparse, dense batched runs draw a
	// different — distributionally identical — variate sequence for the
	// same seed; 0 or 1 leaves every pass byte-identical to today.
	BatchWidth int
	// Versions and Adjudicator, when set together, ask the adjudicated
	// experiments (E19) to evaluate one extra arrangement — the requested
	// pool size under the requested voting rule — next to their standard
	// rows. Left zero/nil, every experiment's output is byte-identical to
	// the pair-shaped suite.
	Versions    int
	Adjudicator system.Adjudicator
	// Metrics, when non-nil, receives per-experiment wall time: the
	// aggregate histogram "experiments.wall_time_seconds" and one gauge
	// "experiments.wall_time_seconds.<ID>" per experiment. Metrics does
	// not affect any measured result.
	Metrics *telemetry.Registry
}

// reps scales a replication count for quick mode.
func (c Config) reps(full int) int {
	if c.Quick {
		reduced := full / 10
		if reduced < 1000 {
			reduced = min(full, 1000)
		}
		return reduced
	}
	return full
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Check is one paper-vs-measured assertion.
type Check struct {
	// Name identifies the assertion.
	Name string
	// Paper states what the paper claims or reports.
	Paper string
	// Measured states what this reproduction measured.
	Measured string
	// Pass reports whether the measurement agrees with the claim.
	Pass bool
}

// Result is the outcome of one experiment.
type Result struct {
	// ID is the experiment identifier (e.g. "E07").
	ID string
	// Title describes the paper artefact being regenerated.
	Title string
	// Text holds the rendered tables and figures.
	Text string
	// Checks are the experiment's paper-vs-measured assertions.
	Checks []Check
}

// Passed reports whether every check passed.
func (r *Result) Passed() bool {
	for _, c := range r.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// Summary renders the check list as text.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", r.ID, r.Title)
	for _, c := range r.Checks {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "  [%s] %s\n        paper:    %s\n        measured: %s\n", status, c.Name, c.Paper, c.Measured)
	}
	return b.String()
}

// Runner executes one experiment. The context is threaded into every
// simulation-backed workload so long experiments cancel promptly.
type Runner func(ctx context.Context, cfg Config) (*Result, error)

// registry maps experiment IDs to runners. Populated by the e*.go files.
var registry = map[string]Runner{}

// register is called from init-free variable blocks in the experiment
// files; duplicate registration is a programming error caught by tests.
func register(id string, r Runner) struct{} {
	if _, dup := registry[id]; dup {
		panic(fmt.Sprintf("experiments: duplicate registration of %s", id))
	}
	registry[id] = r
	return struct{}{}
}

// IDs returns all registered experiment IDs in order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes the experiment with the given ID. It is equivalent to
// RunContext with a background context.
func Run(id string, cfg Config) (*Result, error) {
	return RunContext(context.Background(), id, cfg)
}

// RunContext executes the experiment with the given ID under a context;
// a cancelled context aborts the experiment's simulation workloads and
// returns an error wrapping ctx.Err().
func RunContext(ctx context.Context, id string, cfg Config) (*Result, error) {
	runner, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", id, err)
	}
	start := time.Now()
	res, err := runner(ctx, cfg)
	if cfg.Metrics != nil {
		wall := time.Since(start).Seconds()
		cfg.Metrics.Histogram("experiments.wall_time_seconds", telemetry.DurationBuckets).Observe(wall)
		cfg.Metrics.Gauge("experiments.wall_time_seconds." + id).Set(wall)
	}
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", id, err)
	}
	return res, nil
}

// RunAll executes every registered experiment in ID order.
func RunAll(cfg Config) ([]*Result, error) {
	return RunAllContext(context.Background(), cfg)
}

// RunAllContext executes every registered experiment in ID order under a
// context, checking for cancellation between experiments as well as inside
// each experiment's workloads.
func RunAllContext(ctx context.Context, cfg Config) ([]*Result, error) {
	var results []*Result
	for _, id := range IDs() {
		res, err := RunContext(ctx, id, cfg)
		if err != nil {
			return nil, err
		}
		results = append(results, res)
	}
	return results, nil
}
