package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"diversity/internal/devsim"
	"diversity/internal/faultmodel"
	"diversity/internal/montecarlo"
	"diversity/internal/randx"
	"diversity/internal/report"
	"diversity/internal/stats"
	"diversity/internal/system"
)

var _ = register("E18", runE18ForcedDiversity)

// runE18ForcedDiversity exercises the paper's listed extension "further
// study of the cases of forced and functional diversity": channels from
// two different development processes over the same fault universe. The
// AM-GM theorem guarantees that, against a single process with the same
// per-fault average skill, forcing diversity never raises the mean system
// PFD — and helps most when the processes' difficulty profiles are
// anti-correlated.
func runE18ForcedDiversity(ctx context.Context, cfg Config) (*Result, error) {
	res := &Result{
		ID:    "E18",
		Title: "Extension: forced diversity (two development processes)",
	}
	// One universe, three process-pair arrangements: identical profiles
	// (non-forced), mildly different, and anti-correlated weaknesses.
	qs := []float64{0.05, 0.08, 0.04, 0.06}
	makeSet := func(ps []float64) (*faultmodel.FaultSet, error) {
		return faultmodel.FromSlices(ps, qs)
	}
	arrangements := []struct {
		name   string
		pa, pb []float64
	}{
		{name: "identical (non-forced)", pa: []float64{0.3, 0.2, 0.1, 0.25}, pb: []float64{0.3, 0.2, 0.1, 0.25}},
		{name: "mildly different", pa: []float64{0.35, 0.15, 0.12, 0.3}, pb: []float64{0.25, 0.25, 0.08, 0.2}},
		{name: "anti-correlated", pa: []float64{0.5, 0.02, 0.45, 0.03}, pb: []float64{0.1, 0.38, 0.05, 0.47}},
	}
	tbl, err := report.NewTable(
		"Forced vs unforced diversity (same average per-fault skill)",
		"arrangement", "E[Θ_A]", "E[Θ_B]", "E[Θ_AB] forced", "E[Θ2] unforced", "advantage", "P(no common fault)")
	if err != nil {
		return nil, err
	}
	advantages := make([]float64, 0, len(arrangements))
	for _, arr := range arrangements {
		a, err := makeSet(arr.pa)
		if err != nil {
			return nil, err
		}
		b, err := makeSet(arr.pb)
		if err != nil {
			return nil, err
		}
		tp, err := faultmodel.NewTwoProcess(a, b)
		if err != nil {
			return nil, err
		}
		ratio, forced, unforced, err := tp.ForcedAdvantage()
		if err != nil {
			return nil, err
		}
		advantages = append(advantages, ratio)
		if err := tbl.AddRow(arr.name,
			report.Fmt(tp.MeanPFDA()), report.Fmt(tp.MeanPFDB()),
			report.Fmt(forced), report.Fmt(unforced),
			report.Fmt(ratio), report.Fmt(tp.PNoCommonFault())); err != nil {
			return nil, err
		}
	}
	res.Checks = append(res.Checks, Check{
		Name:     "non-forced is the worst case",
		Paper:    "non-forced diversity can be seen as a worst-case analysis for systems using forced diversity",
		Measured: fmt.Sprintf("forced advantage 1.00 (identical), %s (mild), %s (anti-correlated)", report.Fmt(advantages[1]), report.Fmt(advantages[2])),
		Pass:     math.Abs(advantages[0]-1) < 1e-12 && advantages[1] > 1 && advantages[2] > advantages[1],
	})

	// AM-GM sweep over random process pairs.
	r := randx.NewStream(cfg.Seed + 91)
	trials := cfg.reps(3000)
	violations := 0
	for trial := 0; trial < trials; trial++ {
		pa := make([]float64, len(qs))
		pb := make([]float64, len(qs))
		for i := range pa {
			pa[i] = r.Float64()
			pb[i] = r.Float64()
		}
		a, err := makeSet(pa)
		if err != nil {
			return nil, err
		}
		b, err := makeSet(pb)
		if err != nil {
			return nil, err
		}
		tp, err := faultmodel.NewTwoProcess(a, b)
		if err != nil {
			return nil, err
		}
		ratio, _, _, err := tp.ForcedAdvantage()
		if err != nil {
			continue
		}
		if ratio < 1-1e-12 {
			violations++
		}
	}
	res.Checks = append(res.Checks, Check{
		Name:     "AM-GM guarantee",
		Paper:    "(extension theorem) forcing diversity never raises the mean system PFD at equal average skill",
		Measured: fmt.Sprintf("%d violations in %d random process pairs", violations, trials),
		Pass:     violations == 0,
	})
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		return nil, err
	}
	res.Text = b.String()
	return res, nil
}

var _ = register("E19", runE19NVersion)

// runE19NVersion extends the paper's 1-out-of-2 analysis to larger
// N-version arrangements: 1-out-of-m systems (a fault must survive every
// development) and 2-out-of-3 majority voting, comparing analytic means
// with Monte Carlo.
func runE19NVersion(ctx context.Context, cfg Config) (*Result, error) {
	res := &Result{
		ID:    "E19",
		Title: "Extension: N-version arrangements (1-out-of-m, 2-out-of-3)",
	}
	fs, err := faultmodel.New([]faultmodel.Fault{
		{P: 0.3, Q: 0.05}, {P: 0.2, Q: 0.08}, {P: 0.15, Q: 0.04}, {P: 0.1, Q: 0.06},
	})
	if err != nil {
		return nil, err
	}
	reps := cfg.reps(200000)

	tbl, err := report.NewTable(
		"Architectures over the same fault universe",
		"architecture", "mean PFD (model)", "mean PFD (MC)", "P(system fault-free) MC", "gain vs 1 version")
	if err != nil {
		return nil, err
	}
	mu1, err := fs.MeanPFD(1)
	if err != nil {
		return nil, err
	}
	type arrangement struct {
		name     string
		versions int
		arch     system.Architecture
		adj      system.Adjudicator // when set, overrides arch
		model    float64
	}
	mu2, err := fs.MeanPFD(2)
	if err != nil {
		return nil, err
	}
	mu3, err := fs.MeanPFD(3)
	if err != nil {
		return nil, err
	}
	// 2-out-of-3 majority: a fault defeats the system when present in at
	// least 2 of 3 versions: 3p²(1-p)+p³ per fault.
	majority := 0.0
	for i := 0; i < fs.N(); i++ {
		p, q := fs.Fault(i).P, fs.Fault(i).Q
		majority += (3*p*p*(1-p) + p*p*p) * q
	}
	arrangements := []arrangement{
		{name: "1 version", versions: 1, arch: system.Arch1OutOfM, model: mu1},
		{name: "1-out-of-2", versions: 2, arch: system.Arch1OutOfM, model: mu2},
		{name: "1-out-of-3", versions: 3, arch: system.Arch1OutOfM, model: mu3},
		{name: "2-out-of-3 majority", versions: 3, arch: system.ArchMajority, model: majority},
	}
	// Config.Versions/Adjudicator request one extra arrangement: the
	// generalised k-of-N closed form (system.MeanSystemPFD) against its own
	// Monte-Carlo run. With the fields unset the experiment's output is
	// unchanged.
	if cfg.Adjudicator != nil {
		model, err := system.MeanSystemPFD(fs, cfg.Adjudicator, cfg.Versions)
		if err != nil {
			return nil, err
		}
		arrangements = append(arrangements, arrangement{
			name:     fmt.Sprintf("%s over %d versions", cfg.Adjudicator.Name(), cfg.Versions),
			versions: cfg.Versions,
			adj:      cfg.Adjudicator,
			model:    model,
		})
	}
	means := make([]float64, len(arrangements))
	for i, arr := range arrangements {
		mcCfg := montecarlo.Config{
			Process:  devsim.NewIndependentProcess(fs),
			Versions: arr.versions,
			Arch:     arr.arch,
			Reps:     reps,
			Seed:     cfg.Seed + 95,
		}
		if arr.adj != nil {
			mcCfg.Arch = 0
			mcCfg.Adjudicator = arr.adj
		}
		mc, err := montecarlo.RunContext(ctx, mcCfg)
		if err != nil {
			return nil, err
		}
		mean, err := stats.Mean(mc.SystemPFD)
		if err != nil {
			return nil, err
		}
		means[i] = mean
		if relErr(arr.model, mean) > 0.05 && math.Abs(arr.model-mean) > 1e-4 {
			res.Checks = append(res.Checks, Check{
				Name:     "MC agreement: " + arr.name,
				Paper:    "E[Θ_m] = Σ p_i^m q_i and the majority analogue",
				Measured: fmt.Sprintf("model %s vs MC %s", report.Fmt(arr.model), report.Fmt(mean)),
				Pass:     false,
			})
		}
		if err := tbl.AddRow(arr.name, report.Fmt(arr.model), report.Fmt(mean),
			report.Fmt(float64(mc.SystemFaultFree)/float64(reps)),
			report.Fmt(mu1/arr.model)); err != nil {
			return nil, err
		}
	}
	res.Checks = append(res.Checks, Check{
		Name:  "architecture ordering",
		Paper: "(extension of eq 1) more required coincidences mean lower mean PFD",
		Measured: fmt.Sprintf("1oo3 %s < 1oo2 %s < majority(2oo3) %s < single %s",
			report.Fmt(mu3), report.Fmt(mu2), report.Fmt(majority), report.Fmt(mu1)),
		Pass: mu3 < mu2 && mu2 < majority && majority < mu1,
	})
	allAgree := true
	for i, arr := range arrangements {
		if relErr(arr.model, means[i]) > 0.05 && math.Abs(arr.model-means[i]) > 1e-4 {
			allAgree = false
		}
	}
	agreeText := fmt.Sprintf("all four architecture means agree with simulation over %d replications", reps)
	if len(arrangements) > 4 {
		agreeText = fmt.Sprintf("all %d arrangement means agree with simulation over %d replications", len(arrangements), reps)
	}
	res.Checks = append(res.Checks, Check{
		Name:     "model vs Monte Carlo",
		Paper:    "closed forms for every arrangement",
		Measured: agreeText,
		Pass:     allAgree,
	})
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		return nil, err
	}
	res.Text = b.String()
	return res, nil
}
