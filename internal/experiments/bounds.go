package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"diversity/internal/devsim"
	"diversity/internal/faultmodel"
	"diversity/internal/montecarlo"
	"diversity/internal/report"
	"diversity/internal/scenario"
	"diversity/internal/stats"
)

var _ = register("E07", runE07PmaxTable)

// runE07PmaxTable regenerates the paper's only numeric table (Section
// 5.1): pmax against the bound factor sqrt(pmax(1+pmax)).
func runE07PmaxTable(ctx context.Context, cfg Config) (*Result, error) {
	res := &Result{
		ID:    "E07",
		Title: "Section 5.1 table: pmax vs sqrt(pmax(1+pmax))",
	}
	paperRows := []struct {
		pmax, factor float64
	}{
		{pmax: 0.5, factor: 0.866},
		{pmax: 0.1, factor: 0.332},
		{pmax: 0.01, factor: 0.100},
	}
	tbl, err := report.NewTable(
		"Paper Section 5.1 table, regenerated",
		"pmax", "factor (paper)", "factor (computed)", "agrees")
	if err != nil {
		return nil, err
	}
	allPass := true
	for _, row := range paperRows {
		got, err := faultmodel.SigmaBoundFactor(row.pmax)
		if err != nil {
			return nil, err
		}
		agrees := math.Abs(got-row.factor) < 0.0005
		allPass = allPass && agrees
		if err := tbl.AddRow(report.Fmt(row.pmax), fmt.Sprintf("%.3f", row.factor),
			fmt.Sprintf("%.6f", got), fmt.Sprintf("%v", agrees)); err != nil {
			return nil, err
		}
	}
	res.Checks = append(res.Checks, Check{
		Name:     "Section 5.1 table values",
		Paper:    "0.5->0.866, 0.1->0.332, 0.01->0.100",
		Measured: "computed factors match to the paper's three decimals",
		Pass:     allPass,
	})
	// The paper's limit remark: for low pmax the factor ~ sqrt(pmax).
	limitOK := true
	for _, pmax := range []float64{1e-3, 1e-5} {
		got, err := faultmodel.SigmaBoundFactor(pmax)
		if err != nil {
			return nil, err
		}
		if relErr(math.Sqrt(pmax), got) > 1e-3 {
			limitOK = false
		}
	}
	res.Checks = append(res.Checks, Check{
		Name:     "small-pmax limit",
		Paper:    "for even lower pmax, sqrt(pmax(1+pmax)) ~ sqrt(pmax)",
		Measured: "relative deviation below 0.1% at pmax = 1e-3 and 1e-5",
		Pass:     limitOK,
	})
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		return nil, err
	}
	res.Text = b.String()
	return res, nil
}

var _ = register("E08", runE08WorkedExample)

// runE08WorkedExample regenerates the Section-5.1 worked example:
// µ1 = 0.01, σ1 = 0.001, 84% confidence (k = 1), pmax = 0.1.
func runE08WorkedExample(ctx context.Context, cfg Config) (*Result, error) {
	res := &Result{
		ID:    "E08",
		Title: "Section 5.1 worked example: assessor bounds at 84% confidence",
	}
	const (
		mu1    = 0.01
		sigma1 = 0.001
		pmax   = 0.1
		k      = 1.0
	)
	bound1 := mu1 + k*sigma1
	b11, err := faultmodel.TwoVersionBoundFromMoments(mu1, sigma1, pmax, k)
	if err != nil {
		return nil, err
	}
	b12, err := faultmodel.TwoVersionBoundFromBound(bound1, pmax)
	if err != nil {
		return nil, err
	}
	tbl, err := report.NewTable(
		"Worked example (mu1=0.01, sigma1=0.001, k=1, pmax=0.1)",
		"quantity", "paper", "computed")
	if err != nil {
		return nil, err
	}
	rows := []struct {
		name, paper string
		value       float64
	}{
		{name: "one-version bound mu1+k*sigma1", paper: "0.011", value: bound1},
		{name: "two-version bound, formula (11)", paper: "0.001 (1 s.f.)", value: b11},
		{name: "two-version bound, formula (12)", paper: "0.004 (1 s.f.)", value: b12},
		{name: "formula (11) improvement factor", paper: "an order of magnitude", value: bound1 / b11},
	}
	for _, row := range rows {
		if err := tbl.AddRow(row.name, row.paper, report.Fmt(row.value)); err != nil {
			return nil, err
		}
	}
	res.Checks = append(res.Checks, Check{
		Name:     "one-version bound",
		Paper:    "0.011",
		Measured: report.Fmt(bound1),
		Pass:     math.Abs(bound1-0.011) < 1e-12,
	})
	res.Checks = append(res.Checks, Check{
		Name:     "formula (11) bound",
		Paper:    "0.001 (the paper rounds to one significant figure)",
		Measured: report.Fmt(b11),
		Pass:     b11 > 0.001 && b11 < 0.0015,
	})
	res.Checks = append(res.Checks, Check{
		Name:     "formula (12) bound",
		Paper:    "0.004",
		Measured: report.Fmt(b12),
		Pass:     math.Abs(b12-0.004) < 0.0005,
	})
	res.Checks = append(res.Checks, Check{
		Name:     "order-of-magnitude improvement",
		Paper:    "formula (11) improves the bound by an order of magnitude",
		Measured: fmt.Sprintf("factor %.2f", bound1/b11),
		Pass:     bound1/b11 >= 8,
	})
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		return nil, err
	}
	res.Text = b.String()
	return res, nil
}

var _ = register("E09", runE09NormalApprox)

// runE09NormalApprox probes the Section-5 central-limit argument: how well
// the normal approximation N(µ, σ) describes the exact PFD distribution as
// the number of potential faults grows, and how accurate the resulting
// percentile bounds are.
func runE09NormalApprox(ctx context.Context, cfg Config) (*Result, error) {
	res := &Result{
		ID:    "E09",
		Title: "Section 5 normal approximation: CLT quality vs fault count",
	}
	tbl, err := report.NewTable(
		"Normal approximation quality (homogeneous faults p=0.2)",
		"n faults", "KS distance (m=1)", "exact 99% bound", "normal 99% bound", "rel err", "P(PFD<=normal bound)")
	if err != nil {
		return nil, err
	}
	var ksSeries []float64
	ns := []int{5, 20, 100, 500}
	for _, n := range ns {
		fs, err := faultmodel.Uniform(n, 0.2, 0.8/float64(n))
		if err != nil {
			return nil, err
		}
		var dist *faultmodel.Distribution
		if n <= faultmodel.MaxExactFaults {
			dist, err = fs.ExactPFD(1)
		} else {
			dist, err = fs.LatticePFD(1, 8192)
		}
		if err != nil {
			return nil, err
		}
		approx, err := fs.NormalApprox(1)
		if err != nil {
			return nil, err
		}
		ks := ksDistanceDiscrete(dist, approx)
		ksSeries = append(ksSeries, ks)

		exact99, err := dist.Quantile(0.99)
		if err != nil {
			return nil, err
		}
		normal99, err := approx.Quantile(0.99)
		if err != nil {
			return nil, err
		}
		coverage := dist.CDF(normal99)
		if err := tbl.AddRow(fmt.Sprintf("%d", n), report.Fmt(ks),
			report.Fmt(exact99), report.Fmt(normal99),
			report.Fmt(relErr(exact99, normal99)), report.Fmt(coverage)); err != nil {
			return nil, err
		}
	}
	// CLT: KS distance decreases with n and is small for the largest n.
	monotone := true
	for i := 1; i < len(ksSeries); i++ {
		if ksSeries[i] > ksSeries[i-1]+1e-9 {
			monotone = false
		}
	}
	res.Checks = append(res.Checks, Check{
		Name:     "CLT convergence",
		Paper:    "the PFD is a sum of independent variables, so its distribution approaches a normal (asymptotic result)",
		Measured: fmt.Sprintf("KS distance falls monotonically %s -> %s from n=5 to n=500", report.Fmt(ksSeries[0]), report.Fmt(ksSeries[len(ksSeries)-1])),
		Pass:     monotone && ksSeries[len(ksSeries)-1] < 0.05,
	})

	// MC percentile coverage for the many-small-faults scenario.
	sc, err := scenario.ManySmallFaults(cfg.Seed)
	if err != nil {
		return nil, err
	}
	approx, err := sc.FaultSet.NormalApprox(1)
	if err != nil {
		return nil, err
	}
	mc, err := montecarlo.RunContext(ctx, montecarlo.Config{
		Process:  devsim.NewIndependentProcess(sc.FaultSet),
		Versions: 2,
		Reps:     cfg.reps(100000),
		Seed:     cfg.Seed + 41,
	})
	if err != nil {
		return nil, err
	}
	ecdf, err := stats.NewECDF(mc.VersionPFD)
	if err != nil {
		return nil, err
	}
	coverageOK := true
	var coverageText []string
	for _, alpha := range []float64{0.84, 0.99} {
		bound, err := approx.Quantile(alpha)
		if err != nil {
			return nil, err
		}
		got := ecdf.At(bound)
		coverageText = append(coverageText, fmt.Sprintf("%.0f%%->%.1f%%", alpha*100, got*100))
		if math.Abs(got-alpha) > 0.03 {
			coverageOK = false
		}
	}
	res.Checks = append(res.Checks, Check{
		Name:     "percentile coverage (many-small-faults scenario)",
		Paper:    "confidence statements of the form P(PFD <= mu+k*sigma) = alpha",
		Measured: "empirical coverage " + strings.Join(coverageText, ", "),
		Pass:     coverageOK,
	})

	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		return nil, err
	}
	res.Text = b.String()
	return res, nil
}

// ksDistanceDiscrete computes sup |F_exact - Phi| over the support points
// of a discrete distribution (evaluating both one-sided gaps at each jump).
func ksDistanceDiscrete(dist *faultmodel.Distribution, approx stats.Normal) float64 {
	values, probs := dist.Support()
	d := 0.0
	cum := 0.0
	for i, v := range values {
		phi := approx.CDF(v)
		if gap := math.Abs(phi - cum); gap > d { // just below the jump
			d = gap
		}
		cum += probs[i]
		if gap := math.Abs(phi - cum); gap > d { // just after the jump
			d = gap
		}
	}
	return d
}

var _ = register("E10", runE10BoundTrends)

// runE10BoundTrends probes the Section-5.2 conjectures: under proportional
// improvement the bound RATIO grows; under single-fault improvement it can
// move either way; and the bound DIFFERENCE grows with any increase of any
// p_i.
func runE10BoundTrends(ctx context.Context, cfg Config) (*Result, error) {
	res := &Result{
		ID:    "E10",
		Title: "Section 5.2: bound-gain trends under process improvement",
	}
	const k = 1.0
	base, err := faultmodel.New([]faultmodel.Fault{
		{P: 0.3, Q: 0.05}, {P: 0.15, Q: 0.08}, {P: 0.02, Q: 0.1},
	})
	if err != nil {
		return nil, err
	}

	// Conjecture 1: proportional improvement raises Bound1/Bound2.
	tbl, err := report.NewTable(
		"Bound ratio (mu1+k*s1)/(mu2+k*s2) along improvements (k=1)",
		"transform", "amount", "bound ratio", "bound diff")
	if err != nil {
		return nil, err
	}
	prop := []float64{0, 0.3, 0.6, 0.9}
	propRatios := make([]float64, 0, len(prop))
	for _, amount := range prop {
		improved, err := base.Scaled(1 - amount)
		if err != nil {
			return nil, err
		}
		rep, err := improved.Gain(k)
		if err != nil {
			return nil, err
		}
		propRatios = append(propRatios, rep.BoundRatio)
		if err := tbl.AddRow("proportional", report.Fmt(amount),
			report.Fmt(rep.BoundRatio), report.Fmt(rep.BoundDiff)); err != nil {
			return nil, err
		}
	}
	propMonotone := true
	for i := 1; i < len(propRatios); i++ {
		if propRatios[i] < propRatios[i-1]-1e-12 {
			propMonotone = false
		}
	}
	res.Checks = append(res.Checks, Check{
		Name:     "conjecture: proportional improvement raises the bound ratio",
		Paper:    "the gain (ratio of upper bounds) improves with proportional improvement",
		Measured: fmt.Sprintf("ratio grows %s -> %s across the trajectory", report.Fmt(propRatios[0]), report.Fmt(propRatios[len(propRatios)-1])),
		Pass:     propMonotone,
	})

	// Conjecture 2: single-fault improvement can move the ratio either
	// way. Improve the small-p fault (expect ratio to fall) and the
	// large-p fault (expect it to rise).
	directions := make(map[string]float64, 2)
	for _, target := range []struct {
		name string
		idx  int
	}{
		{name: "improve small-p fault", idx: 2},
		{name: "improve large-p fault", idx: 0},
	} {
		before, err := base.Gain(k)
		if err != nil {
			return nil, err
		}
		improved, err := base.WithP(target.idx, base.Fault(target.idx).P*0.2)
		if err != nil {
			return nil, err
		}
		after, err := improved.Gain(k)
		if err != nil {
			return nil, err
		}
		directions[target.name] = after.BoundRatio - before.BoundRatio
		if err := tbl.AddRow(target.name, "0.8",
			report.Fmt(after.BoundRatio), report.Fmt(after.BoundDiff)); err != nil {
			return nil, err
		}
	}
	bothDirections := directions["improve small-p fault"] < 0 && directions["improve large-p fault"] > 0
	res.Checks = append(res.Checks, Check{
		Name:     "conjecture: single-fault improvement is two-sided",
		Paper:    "this gain may increase or decrease with an improvement affecting only one p",
		Measured: fmt.Sprintf("small-p target moved the ratio by %s, large-p target by %s", report.Fmt(directions["improve small-p fault"]), report.Fmt(directions["improve large-p fault"])),
		Pass:     bothDirections,
	})

	// Stated (unproven) remark: the bound DIFFERENCE improves with any
	// increase in any p_i. It holds in the small-p regime; see below for
	// the counterexample this reproduction found at larger p.
	smallP, err := faultmodel.New([]faultmodel.Fault{
		{P: 0.05, Q: 0.05}, {P: 0.02, Q: 0.08}, {P: 0.002, Q: 0.1},
	})
	if err != nil {
		return nil, err
	}
	diffOK := true
	smallGain, err := smallP.Gain(k)
	if err != nil {
		return nil, err
	}
	for i := 0; i < smallP.N(); i++ {
		raised, err := smallP.WithP(i, math.Min(1, smallP.Fault(i).P+0.01))
		if err != nil {
			return nil, err
		}
		g, err := raised.Gain(k)
		if err != nil {
			return nil, err
		}
		if g.BoundDiff <= smallGain.BoundDiff {
			diffOK = false
		}
	}
	res.Checks = append(res.Checks, Check{
		Name:     "bound difference grows with any p (small-p regime)",
		Paper:    "measured as the difference between the upper bounds, the gain improves with any increase in any p_i",
		Measured: "raising each p_i by 0.01 increased Bound1 - Bound2 in every small-p case",
		Pass:     diffOK,
	})

	// Reproduction finding: the remark is NOT universal. Raising the
	// p = 0.3 fault of the base set by 0.05 DECREASES the difference
	// (the two-version sigma term, normalised by its much smaller sigma,
	// outgrows the one-version side). The paper states the remark
	// without proof; this counterexample bounds its validity.
	baseGain, err := base.Gain(k)
	if err != nil {
		return nil, err
	}
	raised, err := base.WithP(0, base.Fault(0).P+0.05)
	if err != nil {
		return nil, err
	}
	raisedGain, err := raised.Gain(k)
	if err != nil {
		return nil, err
	}
	delta := raisedGain.BoundDiff - baseGain.BoundDiff
	res.Checks = append(res.Checks, Check{
		Name:     "reproduction note: counterexample at larger p",
		Paper:    "the remark is stated without proof ('we find that...')",
		Measured: fmt.Sprintf("raising p=0.3 by 0.05 changed Bound1 - Bound2 by %s (negative: the remark fails there); see EXPERIMENTS.md", report.Fmt(delta)),
		Pass:     delta < 0,
	})

	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		return nil, err
	}
	res.Text = b.String()
	return res, nil
}
