package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"diversity/internal/demandspace"
	"diversity/internal/devsim"
	"diversity/internal/faultmodel"
	"diversity/internal/montecarlo"
	"diversity/internal/plant"
	"diversity/internal/randx"
	"diversity/internal/report"
	"diversity/internal/stats"
)

var _ = register("E11", runE11DemandSpace)

// runE11DemandSpace regenerates Fig. 2 and validates the Section-2.1
// abstraction: failure regions of assorted shapes in a 2-D demand space,
// with the simulated PFD of a version equal to the summed measures of its
// disjoint regions.
func runE11DemandSpace(ctx context.Context, cfg Config) (*Result, error) {
	res := &Result{
		ID:    "E11",
		Title: "Fig. 2 / Section 2.1: failure regions in a 2-D demand space",
	}
	// Assemble the Fig.-2 menagerie: boxes, a ball, and a disconnected
	// cell array, mutually disjoint by construction.
	box1, err := demandspace.NewBox(demandspace.Point{0.05, 0.6}, demandspace.Point{0.2, 0.85})
	if err != nil {
		return nil, err
	}
	box2, err := demandspace.NewBox(demandspace.Point{0.7, 0.1}, demandspace.Point{0.95, 0.2})
	if err != nil {
		return nil, err
	}
	ball, err := demandspace.NewBall(demandspace.Point{0.5, 0.5}, 0.08)
	if err != nil {
		return nil, err
	}
	arrayBounds, err := demandspace.NewBox(demandspace.Point{0.65, 0.65}, demandspace.Point{0.95, 0.95})
	if err != nil {
		return nil, err
	}
	cells, err := demandspace.CellArray(arrayBounds, 3, 3, 0.4)
	if err != nil {
		return nil, err
	}
	regions := []demandspace.Region{box1, box2, ball, cells}
	labels := []string{"box-1", "box-2", "ball", "cell-array"}

	profile, err := demandspace.NewUniformProfile(2)
	if err != nil {
		return nil, err
	}
	r := randx.NewStream(cfg.Seed + 51)
	samples := cfg.reps(400000)

	tbl, err := report.NewTable(
		"Region measures under a uniform demand profile",
		"region", "measured q", "std err", "analytic q")
	if err != nil {
		return nil, err
	}
	analytic := []float64{box1.Volume(), box2.Volume(), math.Pi * 0.08 * 0.08, 0.3 * 0.3 * 0.4 * 0.4}
	sumQ := 0.0
	measures := make([]float64, len(regions))
	allAgree := true
	for i, region := range regions {
		q, se, err := demandspace.MeasureRegion(r, profile, region, samples)
		if err != nil {
			return nil, err
		}
		measures[i] = q
		sumQ += q
		agree := math.Abs(q-analytic[i]) <= 5*se+1e-9
		allAgree = allAgree && agree
		if err := tbl.AddRow(labels[i], report.Fmt(q), report.Fmt(se), report.Fmt(analytic[i])); err != nil {
			return nil, err
		}
	}
	res.Checks = append(res.Checks, Check{
		Name:     "region measures",
		Paper:    "each fault's failure region has probability q_i of being hit by a demand",
		Measured: "Monte-Carlo measures of all four shapes match closed-form areas within 5 SE",
		Pass:     allAgree,
	})

	// A version containing all four faults: its simulated PFD must equal
	// the summed q_i since the regions are disjoint.
	version, err := demandspace.NewGeomVersion(2, regions...)
	if err != nil {
		return nil, err
	}
	clean, err := demandspace.NewGeomVersion(2)
	if err != nil {
		return nil, err
	}
	sim, err := demandspace.SimulatePair(r, profile, version, clean, samples)
	if err != nil {
		return nil, err
	}
	res.Checks = append(res.Checks, Check{
		Name:     "PFD additivity over disjoint regions",
		Paper:    "the PFD of a version is the sum of the q_i of the faults present",
		Measured: fmt.Sprintf("simulated PFD %s vs summed measures %s", report.Fmt(sim.PFDA()), report.Fmt(sumQ)),
		Pass:     math.Abs(sim.PFDA()-sumQ) < 0.01,
	})

	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		return nil, err
	}
	b.WriteByte('\n')
	union, err := demandspace.NewUnion(regions...)
	if err != nil {
		return nil, err
	}
	if err := report.PlotGrid(&b, "Fig. 2 regenerated: failure regions in the (var1, var2) demand space",
		64, 22, func(x, y float64) rune {
			if union.Contains(demandspace.Point{x, y}) {
				return '#'
			}
			return '.'
		}); err != nil {
		return nil, err
	}
	res.Text = b.String()
	return res, nil
}

var _ = register("E12", runE12ProtectionSystem)

// runE12ProtectionSystem regenerates Fig. 1 end to end: versions developed
// by the fault-creation process drive the two channels of a plant
// protection DES; the observed system PFD must match the fault-level
// model's common-fault PFD, and the long-run average over many
// development pairs must approach µ2.
func runE12ProtectionSystem(ctx context.Context, cfg Config) (*Result, error) {
	res := &Result{
		ID:    "E12",
		Title: "Fig. 1: dual-channel 1-out-of-2 protection system simulation",
	}
	fs, err := faultmodel.New([]faultmodel.Fault{
		{P: 0.5, Q: 0.06},
		{P: 0.35, Q: 0.1},
		{P: 0.25, Q: 0.04},
		{P: 0.15, Q: 0.08},
	})
	if err != nil {
		return nil, err
	}
	layout, err := plant.StripLayout(fs)
	if err != nil {
		return nil, err
	}
	profile, err := demandspace.NewUniformProfile(2)
	if err != nil {
		return nil, err
	}
	proc := devsim.NewIndependentProcess(fs)
	r := randx.NewStream(cfg.Seed + 61)

	tbl, err := report.NewTable(
		"Protection-system missions (per-pair DES vs model)",
		"pair", "channel A PFD (DES)", "channel B PFD (DES)", "system PFD (DES)", "system PFD (model)", "first failure at")
	if err != nil {
		return nil, err
	}
	pairs := 5
	missionTime := float64(cfg.reps(150000))
	perPairOK := true
	sumDES, sumModel := 0.0, 0.0
	for pair := 0; pair < pairs; pair++ {
		vA := proc.Develop(r)
		vB := proc.Develop(r)
		chA, err := plant.BuildChannel(layout, vA.Has)
		if err != nil {
			return nil, err
		}
		chB, err := plant.BuildChannel(layout, vB.Has)
		if err != nil {
			return nil, err
		}
		mission, err := plant.Run(plant.Config{
			MissionTime: missionTime,
			DemandRate:  1,
			Profile:     profile,
			ChannelA:    chA,
			ChannelB:    chB,
			Seed:        cfg.Seed + uint64(100+pair),
		})
		if err != nil {
			return nil, err
		}
		model, err := devsim.CommonPFD(fs, vA, vB)
		if err != nil {
			return nil, err
		}
		sumDES += mission.SystemPFD()
		sumModel += model
		if math.Abs(mission.SystemPFD()-model) > 0.01 {
			perPairOK = false
		}
		first := "never"
		if !math.IsNaN(mission.FirstSystemFailure) {
			first = report.Fmt(mission.FirstSystemFailure)
		}
		if err := tbl.AddRow(fmt.Sprintf("%d", pair+1),
			report.Fmt(mission.PFDA()), report.Fmt(mission.PFDB()),
			report.Fmt(mission.SystemPFD()), report.Fmt(model), first); err != nil {
			return nil, err
		}
	}
	res.Checks = append(res.Checks, Check{
		Name:     "per-pair DES vs model",
		Paper:    "the 1oo2 system fails exactly on demands in the intersection of the channels' failure regions",
		Measured: fmt.Sprintf("observed system PFD matched the common-fault PFD within 0.01 on all %d pairs", pairs),
		Pass:     perPairOK,
	})
	mu2, err := fs.MeanPFD(2)
	if err != nil {
		return nil, err
	}
	res.Checks = append(res.Checks, Check{
		Name:     "population average",
		Paper:    "E[Θ2] = Σ p_i² q_i (eq 1)",
		Measured: fmt.Sprintf("model per-pair average %s vs µ2 = %s (only %d pairs; wide CI expected)", report.Fmt(sumModel/float64(pairs)), report.Fmt(mu2), pairs),
		Pass:     math.Abs(sumModel/float64(pairs)-mu2) < 0.05,
	})
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		return nil, err
	}
	res.Text = b.String()
	return res, nil
}

var _ = register("E13", runE13Correlation)

// runE13Correlation probes Section 6.1: how positive (common-cause) and
// negative (resource-shift) correlation between development mistakes move
// the model's predictions, with marginals held fixed.
func runE13Correlation(ctx context.Context, cfg Config) (*Result, error) {
	res := &Result{
		ID:    "E13",
		Title: "Section 6.1 sensitivity: correlated development mistakes",
	}
	fs, err := faultmodel.Uniform(12, 0.15, 0.05)
	if err != nil {
		return nil, err
	}
	reps := cfg.reps(200000)

	tbl, err := report.NewTable(
		"Effect of within-version mistake correlation (marginal p fixed)",
		"process", "E[faults/version]", "P(N1>0)", "P(N2>0)", "risk ratio", "mean system PFD")
	if err != nil {
		return nil, err
	}
	type row struct {
		name string
		proc devsim.Process
	}
	common, err := devsim.NewCommonCauseProcess(fs, 0.25, 3)
	if err != nil {
		return nil, err
	}
	shift, err := devsim.NewResourceShiftProcess(fs, 0.9)
	if err != nil {
		return nil, err
	}
	rows := []row{
		{name: "independent (paper model)", proc: devsim.NewIndependentProcess(fs)},
		{name: "positive corr (common cause)", proc: common},
		{name: "negative corr (resource shift)", proc: shift},
	}
	results := make(map[string]*montecarlo.Result, len(rows))
	for _, rw := range rows {
		mc, err := montecarlo.RunContext(ctx, montecarlo.Config{
			Process:  rw.proc,
			Versions: 2,
			Reps:     reps,
			Seed:     cfg.Seed + 71,
		})
		if err != nil {
			return nil, err
		}
		results[rw.name] = mc
		meanFaults := 0.0
		for _, pfd := range mc.VersionPFD {
			meanFaults += pfd / 0.05 // uniform q: PFD/q = fault count
		}
		meanFaults /= float64(reps)
		ratio := math.NaN()
		if v, err := mc.RiskRatio(); err == nil {
			ratio = v
		}
		meanSys, err := stats.Mean(mc.SystemPFD)
		if err != nil {
			return nil, err
		}
		if err := tbl.AddRow(rw.name, report.Fmt(meanFaults),
			report.Fmt(mc.PVersionAnyFault()), report.Fmt(mc.PSystemAnyFault()),
			report.Fmt(ratio), report.Fmt(meanSys)); err != nil {
			return nil, err
		}
	}

	indep := results["independent (paper model)"]
	pos := results["positive corr (common cause)"]
	neg := results["negative corr (resource shift)"]

	// The paper's model matches the analytic prediction; correlation
	// shifts P(N1>0) even with fixed marginals (fault count becomes
	// over/under-dispersed).
	modelRatio, err := fs.RiskRatio()
	if err != nil {
		return nil, err
	}
	indepRatio, err := indep.RiskRatio()
	if err != nil {
		return nil, err
	}
	res.Checks = append(res.Checks, Check{
		Name:     "independent process matches eq (10)",
		Paper:    "the model assumes independent mistakes",
		Measured: fmt.Sprintf("MC ratio %s vs analytic %s", report.Fmt(indepRatio), report.Fmt(modelRatio)),
		Pass:     math.Abs(indepRatio-modelRatio) < 0.03,
	})
	meanSysIndep, err := stats.Mean(indep.SystemPFD)
	if err != nil {
		return nil, err
	}
	meanSysPos, err := stats.Mean(pos.SystemPFD)
	if err != nil {
		return nil, err
	}
	meanSysNeg, err := stats.Mean(neg.SystemPFD)
	if err != nil {
		return nil, err
	}
	// With marginals preserved and the two developments independent of
	// each other, the MEAN system PFD is invariant: E[Θ2] = Σ q_i p_i²
	// regardless of within-version correlation. The dispersion is where
	// correlation bites.
	res.Checks = append(res.Checks, Check{
		Name:     "mean system PFD invariant under marginal-preserving correlation",
		Paper:    "(implied by eq 1: µ2 depends only on the marginal p_i)",
		Measured: fmt.Sprintf("mean system PFD %s (pos), %s (neg) vs %s (indep)", report.Fmt(meanSysPos), report.Fmt(meanSysNeg), report.Fmt(meanSysIndep)),
		Pass:     relErr(meanSysIndep, meanSysPos) < 0.1 && relErr(meanSysIndep, meanSysNeg) < 0.1,
	})
	sdIndep, err := stats.StdDev(indep.SystemPFD)
	if err != nil {
		return nil, err
	}
	sdPos, err := stats.StdDev(pos.SystemPFD)
	if err != nil {
		return nil, err
	}
	sdNeg, err := stats.StdDev(neg.SystemPFD)
	if err != nil {
		return nil, err
	}
	res.Checks = append(res.Checks, Check{
		Name:     "positive correlation inflates the system PFD tail",
		Paper:    "positive correlation (common conceptual errors) is the deviation that would invalidate independence-based predictions",
		Measured: fmt.Sprintf("system PFD std dev %s (positive corr) vs %s (independent)", report.Fmt(sdPos), report.Fmt(sdIndep)),
		Pass:     sdPos > sdIndep*1.05,
	})
	res.Checks = append(res.Checks, Check{
		Name:     "negative correlation narrows the system PFD spread",
		Paper:    "negative correlation (resource shifts between fault classes) is plausible too",
		Measured: fmt.Sprintf("system PFD std dev %s (negative corr) vs %s (independent)", report.Fmt(sdNeg), report.Fmt(sdIndep)),
		Pass:     sdNeg <= sdIndep*1.05,
	})

	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		return nil, err
	}
	res.Text = b.String()
	return res, nil
}

var _ = register("E14", runE14Overlap)

// runE14Overlap probes Section 6.2: with overlapping failure regions the
// disjointness assumption overstates the PFD — a pessimistic, hence
// safe-side, error whose size grows with the overlap.
func runE14Overlap(ctx context.Context, cfg Config) (*Result, error) {
	res := &Result{
		ID:    "E14",
		Title: "Section 6.2 sensitivity: overlapping failure regions",
	}
	profile, err := demandspace.NewUniformProfile(2)
	if err != nil {
		return nil, err
	}
	r := randx.NewStream(cfg.Seed + 81)
	samples := cfg.reps(300000)

	tbl, err := report.NewTable(
		"Pessimism of the disjoint-region assumption vs overlap fraction",
		"overlap fraction", "sum of q (model)", "union measure (true PFD)", "pessimism", "relative error")
	if err != nil {
		return nil, err
	}
	monotone := true
	prevPessimism := -1.0
	neverOptimistic := true
	for _, overlap := range []float64{0, 0.25, 0.5, 0.75} {
		// Two 0.2-wide strips; the second shifted to overlap the first
		// by the given fraction of its width.
		a, err := demandspace.NewBox(demandspace.Point{0.1, 0}, demandspace.Point{0.3, 1})
		if err != nil {
			return nil, err
		}
		shiftX := 0.3 - 0.2*overlap
		bBox, err := demandspace.NewBox(demandspace.Point{shiftX, 0}, demandspace.Point{shiftX + 0.2, 1})
		if err != nil {
			return nil, err
		}
		rep, err := demandspace.MeasureOverlap(r, profile, []demandspace.Region{a, bBox}, samples)
		if err != nil {
			return nil, err
		}
		if rep.Pessimism < prevPessimism-0.01 {
			monotone = false
		}
		prevPessimism = rep.Pessimism
		if rep.Pessimism < -0.01 {
			neverOptimistic = false
		}
		if err := tbl.AddRow(report.Fmt(overlap), report.Fmt(rep.SumOfMeasures),
			report.Fmt(rep.UnionMeasure), report.Fmt(rep.Pessimism),
			report.Fmt(rep.Pessimism/rep.UnionMeasure)); err != nil {
			return nil, err
		}
	}
	res.Checks = append(res.Checks, Check{
		Name:     "assumption is pessimistic",
		Paper:    "assuming failure regions do not overlap is a pessimistic assumption",
		Measured: "sum of region measures never fell below the union measure",
		Pass:     neverOptimistic,
	})
	res.Checks = append(res.Checks, Check{
		Name:     "pessimism grows with overlap",
		Paper:    "the error matters when faults with large overlaps co-occur",
		Measured: "pessimism increased monotonically with the overlap fraction",
		Pass:     monotone,
	})
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		return nil, err
	}
	res.Text = b.String()
	return res, nil
}
