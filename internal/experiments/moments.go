package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"diversity/internal/devsim"
	"diversity/internal/faultmodel"
	"diversity/internal/montecarlo"
	"diversity/internal/report"
	"diversity/internal/scenario"
)

var _ = register("E01", runE01Moments)

// runE01Moments regenerates the Section-3 moment formulas (equations 1–2):
// analytic µ1, σ1, µ2, σ2 against Monte-Carlo sample moments over version
// populations, for each named scenario.
func runE01Moments(ctx context.Context, cfg Config) (*Result, error) {
	res := &Result{
		ID:    "E01",
		Title: "Section 3 eqs (1)-(2): PFD moments, model vs Monte Carlo",
	}
	scenarios, err := scenario.All(cfg.Seed)
	if err != nil {
		return nil, err
	}
	tbl, err := report.NewTable(
		"PFD moments (model | simulated)",
		"scenario", "mu1 model", "mu1 MC", "sigma1 model", "sigma1 MC",
		"mu2 model", "mu2 MC", "sigma2 model", "sigma2 MC")
	if err != nil {
		return nil, err
	}
	reps := cfg.reps(200000)
	for _, sc := range scenarios {
		fs := sc.FaultSet
		mc, err := montecarlo.RunContext(ctx, montecarlo.Config{
			Process:    devsim.NewIndependentProcess(fs),
			Versions:   2,
			Reps:       reps,
			Seed:       cfg.Seed + 1,
			Streaming:  cfg.Streaming,
			Sparse:     cfg.Sparse,
			BatchWidth: cfg.BatchWidth,
		})
		if err != nil {
			return nil, err
		}
		vsum, err := mc.VersionSummary()
		if err != nil {
			return nil, err
		}
		ssum, err := mc.SystemSummary()
		if err != nil {
			return nil, err
		}
		type cmp struct {
			model, sim float64
		}
		var cells [4]cmp
		if cells[0].model, err = fs.MeanPFD(1); err != nil {
			return nil, err
		}
		if cells[1].model, err = fs.SigmaPFD(1); err != nil {
			return nil, err
		}
		if cells[2].model, err = fs.MeanPFD(2); err != nil {
			return nil, err
		}
		if cells[3].model, err = fs.SigmaPFD(2); err != nil {
			return nil, err
		}
		cells[0].sim = vsum.Mean
		cells[1].sim = vsum.StdDev
		cells[2].sim = ssum.Mean
		cells[3].sim = ssum.StdDev
		if err := tbl.AddRow(sc.Name,
			report.Fmt(cells[0].model), report.Fmt(cells[0].sim),
			report.Fmt(cells[1].model), report.Fmt(cells[1].sim),
			report.Fmt(cells[2].model), report.Fmt(cells[2].sim),
			report.Fmt(cells[3].model), report.Fmt(cells[3].sim)); err != nil {
			return nil, err
		}
		// Agreement check: means within 5 standard errors, sigmas within
		// 10% relative (sigma-of-sigma is harder to pin analytically).
		se1 := cells[1].model / math.Sqrt(float64(reps))
		se2 := cells[3].model / math.Sqrt(float64(reps))
		meanOK := math.Abs(cells[0].model-cells[0].sim) <= 5*se1+1e-12 &&
			math.Abs(cells[2].model-cells[2].sim) <= 5*se2+1e-12
		sigmaOK := relErr(cells[1].model, cells[1].sim) < 0.1 &&
			relErr(cells[3].model, cells[3].sim) < 0.1
		res.Checks = append(res.Checks, Check{
			Name:     fmt.Sprintf("moments agree (%s)", sc.Name),
			Paper:    "eqs (1)-(2) give the exact mean and variance of the PFD",
			Measured: fmt.Sprintf("means within 5 SE, sigmas within 10%% over %d replications", reps),
			Pass:     meanOK && sigmaOK,
		})
	}
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		return nil, err
	}
	res.Text = b.String()
	return res, nil
}

func relErr(want, got float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(want-got) / math.Abs(want)
}

var _ = register("E02", runE02MeanBound)

// runE02MeanBound regenerates the Section-3.1.1 result (equation 4):
// µ2 <= pmax·µ1 — the assessor's guaranteed mean-gain bound — across
// pmax regimes, reporting how tight the bound is.
func runE02MeanBound(ctx context.Context, cfg Config) (*Result, error) {
	res := &Result{
		ID:    "E02",
		Title: "Section 3.1.1 eq (4): guaranteed mean-PFD bound mu2 <= pmax*mu1",
	}
	tbl, err := report.NewTable(
		"Mean gain bound across pmax regimes",
		"pmax", "mu1", "mu2", "mu2/mu1 (actual)", "bound (pmax)", "bound holds")
	if err != nil {
		return nil, err
	}
	for i, pmax := range []float64{0.5, 0.1, 0.01} {
		fs, err := boundedPmaxSet(cfg.Seed+uint64(i), 30, pmax)
		if err != nil {
			return nil, err
		}
		mu1, err := fs.MeanPFD(1)
		if err != nil {
			return nil, err
		}
		mu2, err := fs.MeanPFD(2)
		if err != nil {
			return nil, err
		}
		actual := mu2 / mu1
		holds := mu2 <= pmax*mu1+1e-15
		if err := tbl.AddRow(report.Fmt(pmax), report.Fmt(mu1), report.Fmt(mu2),
			report.Fmt(actual), report.Fmt(pmax), fmt.Sprintf("%v", holds)); err != nil {
			return nil, err
		}
		res.Checks = append(res.Checks, Check{
			Name:     fmt.Sprintf("eq (4) at pmax=%v", pmax),
			Paper:    "a two-version system has at least 1/pmax times better mean PFD",
			Measured: fmt.Sprintf("mu2/mu1 = %s <= pmax = %s", report.Fmt(actual), report.Fmt(pmax)),
			Pass:     holds,
		})
	}
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		return nil, err
	}
	res.Text = b.String()
	return res, nil
}

// boundedPmaxSet builds a random fault set whose largest presence
// probability is exactly pmax.
func boundedPmaxSet(seed uint64, n int, pmax float64) (*faultmodel.FaultSet, error) {
	fs, err := scenario.Generate(scenario.GeneratorConfig{
		N: n, PAlpha: 2, PBeta: 4, PScale: pmax,
		QLogMu: math.Log(1e-3), QLogSigma: 1, SumQ: 0.2,
	}, seed)
	if err != nil {
		return nil, err
	}
	// Pin the maximum exactly at pmax so the bound is evaluated at its
	// nominal parameter.
	return fs.WithP(0, pmax)
}

var _ = register("E03", runE03SigmaBound)

// runE03SigmaBound regenerates Section 3.1.2 (equations 5–9): the
// standard-deviation ordering σ2 <= σ1 under the golden-ratio threshold
// and the bound factor sqrt(pmax(1+pmax)).
func runE03SigmaBound(ctx context.Context, cfg Config) (*Result, error) {
	res := &Result{
		ID:    "E03",
		Title: "Section 3.1.2 eqs (5)-(9): sigma ordering and bound factor",
	}
	tbl, err := report.NewTable(
		"Sigma bound across pmax regimes",
		"pmax", "sigma1", "sigma2", "sigma2/sigma1", "bound factor", "bound holds")
	if err != nil {
		return nil, err
	}
	allHold := true
	for i, pmax := range []float64{0.5, 0.3, 0.1, 0.05, 0.01} {
		fs, err := boundedPmaxSet(cfg.Seed+100+uint64(i), 30, pmax)
		if err != nil {
			return nil, err
		}
		s1, err := fs.SigmaPFD(1)
		if err != nil {
			return nil, err
		}
		s2, err := fs.SigmaPFD(2)
		if err != nil {
			return nil, err
		}
		factor, err := faultmodel.SigmaBoundFactor(pmax)
		if err != nil {
			return nil, err
		}
		holds := s2 <= factor*s1+1e-15
		allHold = allHold && holds
		if err := tbl.AddRow(report.Fmt(pmax), report.Fmt(s1), report.Fmt(s2),
			report.Fmt(s2/s1), report.Fmt(factor), fmt.Sprintf("%v", holds)); err != nil {
			return nil, err
		}
	}
	res.Checks = append(res.Checks, Check{
		Name:     "eq (9) sigma bound",
		Paper:    "sigma2 < sqrt(pmax(1+pmax)) * sigma1 when all p_i are small",
		Measured: "bound held at every pmax in the sweep",
		Pass:     allHold,
	})

	// The golden-ratio boundary: above (sqrt(5)-1)/2 the per-fault
	// variance ordering reverses.
	single, err := faultmodel.New([]faultmodel.Fault{{P: 0.8, Q: 0.5}})
	if err != nil {
		return nil, err
	}
	s1, err := single.SigmaPFD(1)
	if err != nil {
		return nil, err
	}
	s2, err := single.SigmaPFD(2)
	if err != nil {
		return nil, err
	}
	res.Checks = append(res.Checks, Check{
		Name:     "golden-ratio threshold",
		Paper:    "p^2(1-p^2) <= p(1-p) iff p <= 0.618033987; above it sigma2 can exceed sigma1",
		Measured: fmt.Sprintf("at p=0.8: sigma1=%s, sigma2=%s (sigma2 > sigma1: %v)", report.Fmt(s1), report.Fmt(s2), s2 > s1),
		Pass:     s2 > s1 && !single.SigmaBoundHolds(),
	})

	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		return nil, err
	}
	res.Text = b.String()
	return res, nil
}
