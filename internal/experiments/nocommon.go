package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"diversity/internal/devsim"
	"diversity/internal/faultmodel"
	"diversity/internal/montecarlo"
	"diversity/internal/process"
	"diversity/internal/randx"
	"diversity/internal/report"
	"diversity/internal/scenario"
	"diversity/internal/stats"
)

var _ = register("E04", runE04NoCommonFault)

// runE04NoCommonFault regenerates Section 4.1 (equation 10): the ratio
// P(N2>0)/P(N1>0) — analytic versus Monte-Carlo — plus footnote 5's
// success-ratio identity Π(1+p_i).
func runE04NoCommonFault(ctx context.Context, cfg Config) (*Result, error) {
	res := &Result{
		ID:    "E04",
		Title: "Section 4.1 eq (10): probability of no common fault",
	}
	tbl, err := report.NewTable(
		"Risk ratio P(N2>0)/P(N1>0), model vs Monte Carlo",
		"scenario", "P(N1>0)", "P(N2>0)", "ratio model", "ratio MC", "MC 95% CI", "success ratio Π(1+p)")
	if err != nil {
		return nil, err
	}
	scenarios, err := scenario.All(cfg.Seed)
	if err != nil {
		return nil, err
	}
	reps := cfg.reps(300000)
	for _, sc := range scenarios {
		fs := sc.FaultSet
		any1, err := fs.PAnyFault(1)
		if err != nil {
			return nil, err
		}
		any2, err := fs.PAnyFault(2)
		if err != nil {
			return nil, err
		}
		ratioModel, err := fs.RiskRatio()
		if err != nil {
			return nil, err
		}
		mc, err := montecarlo.RunContext(ctx, montecarlo.Config{
			Process:    devsim.NewIndependentProcess(fs),
			Versions:   2,
			Reps:       reps,
			Seed:       cfg.Seed + 17,
			Streaming:  cfg.Streaming,
			Sparse:     cfg.Sparse,
			BatchWidth: cfg.BatchWidth,
		})
		if err != nil {
			return nil, err
		}
		// Wilson interval on P(N2>0); the ratio's denominator is well
		// estimated in every scenario here.
		lo2, hi2, err := stats.WilsonInterval(reps-mc.SystemFaultFree, reps, 0.95)
		if err != nil {
			return nil, err
		}
		mcAny1 := mc.PVersionAnyFault()
		var ratioMC float64
		var ciText string
		if mcAny1 > 0 {
			ratioMC = mc.PSystemAnyFault() / mcAny1
			ciText = fmt.Sprintf("[%s, %s]", report.Fmt(lo2/mcAny1), report.Fmt(hi2/mcAny1))
		} else {
			ratioMC = math.NaN()
			ciText = "n/a"
		}
		if err := tbl.AddRow(sc.Name, report.Fmt(any1), report.Fmt(any2),
			report.Fmt(ratioModel), report.Fmt(ratioMC), ciText,
			report.Fmt(fs.SuccessRatio())); err != nil {
			return nil, err
		}
		pass := ratioModel <= 1+1e-12
		if !math.IsNaN(ratioMC) && mcAny1 > 0.01 {
			// Require the model ratio inside the MC interval (with slack
			// for the denominator's own noise).
			pass = pass && ratioModel >= lo2/mcAny1*0.9-0.01 && ratioModel <= hi2/mcAny1*1.1+0.01
		}
		res.Checks = append(res.Checks, Check{
			Name:     fmt.Sprintf("eq (10) (%s)", sc.Name),
			Paper:    "P(N2>0)/P(N1>0) <= 1, computable from the p_i",
			Measured: fmt.Sprintf("model %s vs MC %s over %d replications", report.Fmt(ratioModel), report.Fmt(ratioMC), reps),
			Pass:     pass,
		})
	}
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		return nil, err
	}
	res.Text = b.String()
	return res, nil
}

var _ = register("E05", runE05SingleFaultImprovement)

// runE05SingleFaultImprovement regenerates Section 4.2.1 and Appendix A:
// the risk ratio as a function of a single fault's presence probability is
// non-monotone, with the stationary point given in closed form; improving
// an already-unlikely fault class further REDUCES the gain from diversity.
func runE05SingleFaultImprovement(ctx context.Context, cfg Config) (*Result, error) {
	res := &Result{
		ID:    "E05",
		Title: "Section 4.2.1 / Appendix A: single-fault process improvement",
	}
	var b strings.Builder

	tbl, err := report.NewTable(
		"Two-fault stationary points (Appendix A)",
		"p2", "p1z closed form", "p1z numeric argmin", "deriv sign below", "deriv sign above")
	if err != nil {
		return nil, err
	}
	allPass := true
	for _, p2 := range []float64{0.1, 0.3, 0.5} {
		p1z, err := faultmodel.TwoFaultStationaryP1(p2)
		if err != nil {
			return nil, err
		}
		// Numeric argmin over a fine grid.
		best, bestRatio := 0.0, math.Inf(1)
		for p1 := 1e-4; p1 < 0.9999; p1 += 1e-4 {
			fs, err := faultmodel.New([]faultmodel.Fault{{P: p1, Q: 0.1}, {P: p2, Q: 0.1}})
			if err != nil {
				return nil, err
			}
			ratio, err := fs.RiskRatio()
			if err != nil {
				return nil, err
			}
			if ratio < bestRatio {
				best, bestRatio = p1, ratio
			}
		}
		below, err := derivAt(p1z*0.5, p2)
		if err != nil {
			return nil, err
		}
		above, err := derivAt(math.Min(p1z*2, 0.99), p2)
		if err != nil {
			return nil, err
		}
		pass := math.Abs(best-p1z) < 5e-4 && below < 0 && above > 0
		allPass = allPass && pass
		if err := tbl.AddRow(report.Fmt(p2), report.Fmt(p1z), report.Fmt(best),
			signLabel(below), signLabel(above)); err != nil {
			return nil, err
		}
	}
	if err := tbl.Render(&b); err != nil {
		return nil, err
	}
	res.Checks = append(res.Checks, Check{
		Name:     "Appendix A stationary point",
		Paper:    "the derivative of the ratio wrt a single p can be zero, with sign reversal (trend reversal in the gain)",
		Measured: "closed-form stationary point matches numeric argmin; derivative negative below it, positive above",
		Pass:     allPass,
	})
	res.Checks = append(res.Checks, Check{
		Name:     "reproduction note on the printed root",
		Paper:    "the available paper text prints a root claimed to be > p2",
		Measured: "verified stationary point lies BELOW p2 at every tested p2; the qualitative sign-reversal claim is what reproduces (see EXPERIMENTS.md)",
		Pass:     true,
	})

	// Figure: risk ratio vs p1 for p2 = 0.1, showing the interior minimum.
	const p2 = 0.1
	var xs, ys []float64
	for p1 := 0.002; p1 <= 0.6; p1 *= 1.12 {
		fs, err := faultmodel.New([]faultmodel.Fault{{P: p1, Q: 0.1}, {P: p2, Q: 0.1}})
		if err != nil {
			return nil, err
		}
		ratio, err := fs.RiskRatio()
		if err != nil {
			return nil, err
		}
		xs = append(xs, math.Log10(p1))
		ys = append(ys, ratio)
	}
	b.WriteByte('\n')
	if err := report.PlotSeries(&b, "Risk ratio vs log10(p1) at p2=0.1 (interior minimum = trend reversal)",
		[]report.Series{{Label: "P(N2>0)/P(N1>0)", Xs: xs, Ys: ys}}, 60, 14); err != nil {
		return nil, err
	}

	res.Text = b.String()
	return res, nil
}

func derivAt(p1, p2 float64) (float64, error) {
	fs, err := faultmodel.New([]faultmodel.Fault{{P: p1, Q: 0.1}, {P: p2, Q: 0.1}})
	if err != nil {
		return 0, err
	}
	return fs.RiskRatioDeriv(0)
}

func signLabel(v float64) string {
	switch {
	case v > 0:
		return "positive"
	case v < 0:
		return "negative"
	default:
		return "zero"
	}
}

var _ = register("E06", runE06ProportionalImprovement)

// runE06ProportionalImprovement regenerates Section 4.2.2 and Appendix B:
// under proportional scaling p_i = k·b_i the risk ratio is monotone
// increasing in k — proportional process improvement always increases the
// gain from diversity — verified analytically for random base vectors and
// by Monte Carlo along one trajectory.
func runE06ProportionalImprovement(ctx context.Context, cfg Config) (*Result, error) {
	res := &Result{
		ID:    "E06",
		Title: "Section 4.2.2 / Appendix B: proportional process improvement",
	}
	r := randx.NewStream(cfg.Seed + 23)

	// Analytic sweep over random base vectors.
	trials := cfg.reps(2000)
	violations := 0
	for trial := 0; trial < trials; trial++ {
		n := 2 + r.IntN(10)
		faults := make([]faultmodel.Fault, n)
		for i := range faults {
			faults[i] = faultmodel.Fault{P: r.Float64(), Q: r.Float64() / float64(n)}
		}
		base, err := faultmodel.New(faults)
		if err != nil {
			return nil, err
		}
		if base.PMax() == 0 {
			continue
		}
		prev := -1.0
		for _, k := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 1.0} {
			scaled, err := base.Scaled(k)
			if err != nil {
				return nil, err
			}
			ratio, err := scaled.RiskRatio()
			if err != nil {
				return nil, err
			}
			if ratio < prev-1e-12 {
				violations++
				break
			}
			prev = ratio
		}
	}
	res.Checks = append(res.Checks, Check{
		Name:     "Appendix B monotonicity (analytic sweep)",
		Paper:    "d/dk of the ratio is non-negative for any base rates and any k",
		Measured: fmt.Sprintf("%d monotonicity violations in %d random base vectors", violations, trials),
		Pass:     violations == 0,
	})

	// One trajectory rendered as a table, with an MC cross-check.
	sc, err := scenario.CommercialGrade(cfg.Seed)
	if err != nil {
		return nil, err
	}
	amounts := []float64{0, 0.25, 0.5, 0.75, 0.9}
	points, err := process.Trace(sc.FaultSet, process.Proportional{}, amounts, 1)
	if err != nil {
		return nil, err
	}
	tbl, err := report.NewTable(
		"Proportional improvement trajectory (commercial-grade scenario)",
		"improvement", "k", "P(N1>0)", "P(N2>0)", "ratio (model)", "ratio (MC)")
	if err != nil {
		return nil, err
	}
	reps := cfg.reps(100000)
	monotone := true
	prevRatio := -1.0
	for _, pt := range points {
		improved, err := (process.Proportional{}).Apply(sc.FaultSet, pt.Amount)
		if err != nil {
			return nil, err
		}
		mc, err := montecarlo.RunContext(ctx, montecarlo.Config{
			Process:  devsim.NewIndependentProcess(improved),
			Versions: 2,
			Reps:     reps,
			Seed:     cfg.Seed + 31,
		})
		if err != nil {
			return nil, err
		}
		ratioMC, err := mc.RiskRatio()
		mcText := "n/a"
		if err == nil {
			mcText = report.Fmt(ratioMC)
		}
		if err := tbl.AddRow(report.Fmt(pt.Amount), report.Fmt(1-pt.Amount),
			report.Fmt(pt.PAnyFault1), report.Fmt(pt.PAnyFault2),
			report.Fmt(pt.RiskRatio), mcText); err != nil {
			return nil, err
		}
		if !math.IsNaN(pt.RiskRatio) {
			if prevRatio >= 0 && pt.RiskRatio > prevRatio+1e-12 {
				monotone = false
			}
			prevRatio = pt.RiskRatio
		}
	}
	res.Checks = append(res.Checks, Check{
		Name:     "trajectory monotone",
		Paper:    "the gain from diversity always increases with proportional process improvement",
		Measured: "risk ratio non-increasing along the improvement trajectory",
		Pass:     monotone,
	})
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		return nil, err
	}
	res.Text = b.String()
	return res, nil
}
