package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"diversity/internal/demandspace"
	"diversity/internal/randx"
	"diversity/internal/report"
)

var _ = register("E25", runE25ProfileSensitivity)

// runE25ProfileSensitivity probes an assumption the paper's Section 2.1
// leaves implicit: the q_i are probabilities UNDER THE OPERATIONAL DEMAND
// PROFILE ("each demand has a certain, possibly unknown, probability of
// happening during the operation of the controlled system"). If the
// profile assumed during assessment differs from the one met in
// operation, every q_i — and with them all PFD predictions — shifts. The
// experiment measures the same failure regions under a uniform assessment
// profile and a peaked operational profile, and quantifies the
// misprediction of both channel and system PFD.
func runE25ProfileSensitivity(ctx context.Context, cfg Config) (*Result, error) {
	res := &Result{
		ID:    "E25",
		Title: "Extension: demand-profile sensitivity of the q_i (Section 2.1)",
	}
	uniform, err := demandspace.NewUniformProfile(2)
	if err != nil {
		return nil, err
	}
	// Operation concentrates demands near a working point at (0.3, 0.3).
	operational, err := demandspace.NewPeakedProfile(2, []demandspace.PeakComponent{
		{Weight: 0.8, Center: demandspace.Point{0.3, 0.3}, Spread: 0.12},
		{Weight: 0.2, Center: demandspace.Point{0.7, 0.6}, Spread: 0.2},
	})
	if err != nil {
		return nil, err
	}
	// Two failure regions: one near the working point, one in a rarely
	// visited corner.
	nearWP, err := demandspace.NewBox(demandspace.Point{0.2, 0.2}, demandspace.Point{0.4, 0.4})
	if err != nil {
		return nil, err
	}
	corner, err := demandspace.NewBox(demandspace.Point{0.85, 0.85}, demandspace.Point{1, 1})
	if err != nil {
		return nil, err
	}
	r := randx.NewStream(cfg.Seed + 131)
	samples := cfg.reps(400000)

	tbl, err := report.NewTable(
		"Region probabilities under assessment vs operational profiles",
		"region", "q (uniform assessment)", "q (peaked operation)", "ratio op/assess")
	if err != nil {
		return nil, err
	}
	type measured struct{ assess, oper float64 }
	regions := []struct {
		name   string
		region demandspace.Region
	}{
		{name: "near working point", region: nearWP},
		{name: "rare corner", region: corner},
	}
	byName := make(map[string]measured, len(regions))
	for _, reg := range regions {
		qa, _, err := demandspace.MeasureRegion(r, uniform, reg.region, samples)
		if err != nil {
			return nil, err
		}
		qo, _, err := demandspace.MeasureRegion(r, operational, reg.region, samples)
		if err != nil {
			return nil, err
		}
		byName[reg.name] = measured{assess: qa, oper: qo}
		ratio := math.Inf(1)
		if qa > 0 {
			ratio = qo / qa
		}
		if err := tbl.AddRow(reg.name, report.Fmt(qa), report.Fmt(qo), report.Fmt(ratio)); err != nil {
			return nil, err
		}
	}
	near := byName["near working point"]
	rare := byName["rare corner"]
	res.Checks = append(res.Checks, Check{
		Name:     "profile moves the q_i in opposite directions",
		Paper:    "each demand has a certain (possibly unknown) probability of happening during operation (Section 2.1)",
		Measured: fmt.Sprintf("near-working-point q grew %.1fx under operation; rare-corner q shrank %.2fx", near.oper/near.assess, rare.oper/rare.assess),
		Pass:     near.oper > 2*near.assess && rare.oper < rare.assess/2,
	})

	// End-to-end misprediction: a version failing on both regions.
	version, err := demandspace.NewGeomVersion(2, nearWP, corner)
	if err != nil {
		return nil, err
	}
	clean, err := demandspace.NewGeomVersion(2)
	if err != nil {
		return nil, err
	}
	predicted := near.assess + rare.assess // what an assessor using the uniform profile would claim
	sim, err := demandspace.SimulatePair(r, operational, version, clean, samples)
	if err != nil {
		return nil, err
	}
	observed := sim.PFDA()
	res.Checks = append(res.Checks, Check{
		Name:     "assessment under the wrong profile mispredicts the PFD",
		Paper:    "(implication) the q_i must be estimated under the operational profile",
		Measured: fmt.Sprintf("uniform-profile prediction %s vs operational PFD %s (factor %.1f)", report.Fmt(predicted), report.Fmt(observed), observed/predicted),
		Pass:     observed > 1.5*predicted,
	})
	// And re-measuring the regions under the right profile fixes it.
	corrected := near.oper + rare.oper
	res.Checks = append(res.Checks, Check{
		Name:     "re-measured q_i restore the prediction",
		Paper:    "the model is profile-agnostic once the q_i are right",
		Measured: fmt.Sprintf("corrected prediction %s vs observed %s", report.Fmt(corrected), report.Fmt(observed)),
		Pass:     relErr(observed, corrected) < 0.05,
	})

	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		return nil, err
	}
	res.Text = b.String()
	return res, nil
}
