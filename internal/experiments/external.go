package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"diversity/internal/bayes"
	"diversity/internal/elm"
	"diversity/internal/knightleveson"
	"diversity/internal/report"
	"diversity/internal/scenario"
)

var _ = register("E15", runE15KnightLeveson)

// runE15KnightLeveson regenerates the Section-7 qualitative check against
// the Knight–Leveson experiment: over a 27-version population, diversity
// reduces the sample mean of the PFD and greatly reduces its standard
// deviation, while the version PFD sample itself is far from normal.
func runE15KnightLeveson(ctx context.Context, cfg Config) (*Result, error) {
	res := &Result{
		ID:    "E15",
		Title: "Section 7: Knight-Leveson qualitative check (synthetic replica)",
	}
	trials := 20
	if cfg.Quick {
		trials = 8
	}
	tbl, err := report.NewTable(
		"Synthetic 27-version replicas",
		"replica", "mean PFD (versions)", "sd (versions)", "mean PFD (pairs)", "sd (pairs)", "mean reduction", "sd reduction", "fault-free frac")
	if err != nil {
		return nil, err
	}
	meanReduced, sigmaReduced, greatSigma := 0, 0, 0
	zeroMass, skewSum, ksRejects := 0.0, 0.0, 0
	for trial := 0; trial < trials; trial++ {
		out, err := knightleveson.Run(knightleveson.Config{Seed: cfg.Seed + uint64(trial)})
		if err != nil {
			return nil, err
		}
		if trial < 5 {
			if err := tbl.AddRow(fmt.Sprintf("%d", trial+1),
				report.Fmt(out.VersionStats.Mean), report.Fmt(out.VersionStats.StdDev),
				report.Fmt(out.PairStats.Mean), report.Fmt(out.PairStats.StdDev),
				report.Fmt(out.MeanReduction), report.Fmt(out.SigmaReduction),
				report.Fmt(out.FractionFaultFree)); err != nil {
				return nil, err
			}
		}
		if out.MeanReduction > 1 {
			meanReduced++
		}
		if out.SigmaReduction > 1 {
			sigmaReduced++
		}
		if out.SigmaReduction > 2 {
			greatSigma++
		}
		zeroMass += out.FractionFaultFree
		skewSum += out.VersionStats.Skewness
		if out.NormalFitPValue < 0.05 {
			ksRejects++
		}
	}
	res.Checks = append(res.Checks, Check{
		Name:     "diversity reduces the sample mean",
		Paper:    "in the Knight and Leveson experiment diversity reduced the sample mean of the PFD of the 27 versions",
		Measured: fmt.Sprintf("mean reduced in %d/%d replicas", meanReduced, trials),
		Pass:     meanReduced >= trials*9/10,
	})
	res.Checks = append(res.Checks, Check{
		Name:     "diversity greatly reduces the standard deviation",
		Paper:    "...but also — greatly — its standard deviation",
		Measured: fmt.Sprintf("sd reduced in %d/%d replicas, by more than 2x in %d", sigmaReduced, trials, greatSigma),
		Pass:     sigmaReduced >= trials*9/10 && greatSigma >= trials/2,
	})
	res.Checks = append(res.Checks, Check{
		Name:     "version PFDs are non-normal",
		Paper:    "the data do not fit a normal approximation for the distribution of PFD",
		Measured: fmt.Sprintf("avg point mass at 0 = %s, avg skew = %s, KS rejections %d/%d (weak test at n=27)", report.Fmt(zeroMass/float64(trials)), report.Fmt(skewSum/float64(trials)), ksRejects, trials),
		Pass:     zeroMass/float64(trials) > 0.05 && skewSum/float64(trials) > 0.5,
	})
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		return nil, err
	}
	res.Text = b.String()
	return res, nil
}

var _ = register("E16", runE16ELLM)

// runE16ELLM re-derives the Eckhardt–Lee / Littlewood–Miller baseline
// conclusions inside this model (the paper: "easily re-derived here") and
// exhibits the LM regime that diverse methodologies can beat independence.
func runE16ELLM(ctx context.Context, cfg Config) (*Result, error) {
	res := &Result{
		ID:    "E16",
		Title: "Section 2 / EL-LM baselines: coincident-failure results re-derived",
	}
	tbl, err := report.NewTable(
		"EL mapping of the named scenarios",
		"scenario", "E[Θ1]", "E[Θ2]", "independence E[Θ1]²", "excess (= Var_x θ)", "worse than independence")
	if err != nil {
		return nil, err
	}
	scenarios, err := scenario.All(cfg.Seed)
	if err != nil {
		return nil, err
	}
	allAgree, allExcess := true, true
	for _, sc := range scenarios {
		model, err := elm.FromFaultSet(sc.FaultSet)
		if err != nil {
			return nil, err
		}
		mu1, err := model.MeanPFD(1)
		if err != nil {
			return nil, err
		}
		mu2, err := model.MeanPFD(2)
		if err != nil {
			return nil, err
		}
		fm1, err := sc.FaultSet.MeanPFD(1)
		if err != nil {
			return nil, err
		}
		fm2, err := sc.FaultSet.MeanPFD(2)
		if err != nil {
			return nil, err
		}
		if relErr(fm1, mu1) > 1e-12 || relErr(fm2, mu2) > 1e-12 {
			allAgree = false
		}
		excess, err := model.CorrelationExcess()
		if err != nil {
			return nil, err
		}
		if excess < -1e-15 {
			allExcess = false
		}
		if err := tbl.AddRow(sc.Name, report.Fmt(mu1), report.Fmt(mu2),
			report.Fmt(mu1*mu1), report.Fmt(excess),
			fmt.Sprintf("%v", mu2 >= mu1*mu1)); err != nil {
			return nil, err
		}
	}
	res.Checks = append(res.Checks, Check{
		Name:     "fault model = EL model on means",
		Paper:    "the conclusions of the EL and LM models about the average PFD are easily re-derived here",
		Measured: "EL mapping reproduces µ1 and µ2 exactly on every scenario",
		Pass:     allAgree,
	})
	res.Checks = append(res.Checks, Check{
		Name:     "mean two-version PFD exceeds independence",
		Paper:    "greater than the product of the versions' average PFDs (EL)",
		Measured: "excess E[Θ2]-E[Θ1]² non-negative on every scenario",
		Pass:     allExcess,
	})

	// LM regime: anti-correlated difficulty functions beat independence.
	lm, err := elm.NewLittlewoodMiller(
		[]float64{0.3, 0.3, 0.4},
		[]float64{0.2, 0.01, 0},
		[]float64{0.01, 0.2, 0})
	if err != nil {
		return nil, err
	}
	beats := lm.MeanPFDSystem() < lm.MeanPFDA()*lm.MeanPFDB()
	res.Checks = append(res.Checks, Check{
		Name:     "LM forced-diversity regime",
		Paper:    "LM: negatively correlated difficulties (diverse methodologies) can beat the independence prediction",
		Measured: fmt.Sprintf("system mean %s < independence %s with anti-correlated difficulties: %v", report.Fmt(lm.MeanPFDSystem()), report.Fmt(lm.MeanPFDA()*lm.MeanPFDB()), beats),
		Pass:     beats,
	})
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		return nil, err
	}
	res.Text = b.String()
	return res, nil
}

var _ = register("E17", runE17Bayes)

// runE17Bayes exercises the paper's proposed extension (conclusions /
// ref [14]): the fault-creation model as a physically motivated prior for
// Bayesian assessment from observed failure-free operation.
func runE17Bayes(ctx context.Context, cfg Config) (*Result, error) {
	res := &Result{
		ID:    "E17",
		Title: "Extension: model-based Bayesian assessment from operation",
	}
	sc, err := scenario.SafetyGrade(cfg.Seed)
	if err != nil {
		return nil, err
	}
	prior, err := bayes.PriorFromModel(sc.FaultSet, 2048)
	if err != nil {
		return nil, err
	}
	tbl, err := report.NewTable(
		"Posterior system PFD vs failure-free exposure (safety-grade prior)",
		"clean demands", "posterior mean", "P(PFD=0)", "99% bound")
	if err != nil {
		return nil, err
	}
	exposures := []int{0, 1000, 10000, 100000, 1000000}
	prevMean := math.Inf(1)
	prevZero := -1.0
	meanMonotone, zeroMonotone := true, true
	var lastBound, firstBound float64
	for i, demands := range exposures {
		post, err := bayes.Update(prior, demands, 0)
		if err != nil {
			return nil, err
		}
		bound99, err := post.Quantile(0.99)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			firstBound = bound99
		}
		lastBound = bound99
		if post.Mean() > prevMean+1e-18 {
			meanMonotone = false
		}
		if post.ProbZero() < prevZero-1e-12 {
			zeroMonotone = false
		}
		prevMean = post.Mean()
		prevZero = post.ProbZero()
		if err := tbl.AddRow(fmt.Sprintf("%d", demands),
			report.Fmt(post.Mean()), report.Fmt(post.ProbZero()),
			report.Fmt(bound99)); err != nil {
			return nil, err
		}
	}
	res.Checks = append(res.Checks, Check{
		Name:     "failure-free operation improves the assessment",
		Paper:    "combine prior distributions based on this plausible physical model with inference from observations",
		Measured: "posterior mean non-increasing and P(PFD=0) non-decreasing with exposure",
		Pass:     meanMonotone && zeroMonotone,
	})
	res.Checks = append(res.Checks, Check{
		Name:     "99% bound tightens",
		Paper:    "assessors report confidence bounds on the PFD",
		Measured: fmt.Sprintf("99%% bound fell from %s (prior) to %s after 1e6 clean demands", report.Fmt(firstBound), report.Fmt(lastBound)),
		Pass:     lastBound <= firstBound,
	})

	// Failures rule out the fault-free hypothesis.
	failPost, err := bayes.Update(prior, 10000, 2)
	if err != nil {
		return nil, err
	}
	res.Checks = append(res.Checks, Check{
		Name:     "observed failures eliminate PFD=0",
		Paper:    "(consistency requirement of the Bayesian extension)",
		Measured: fmt.Sprintf("P(PFD=0 | 2 failures) = %s", report.Fmt(failPost.ProbZero())),
		Pass:     failPost.ProbZero() == 0,
	})
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		return nil, err
	}
	res.Text = b.String()
	return res, nil
}
