package experiments

import (
	"context"
	"fmt"
	"strings"

	"diversity/internal/faultmodel"
	"diversity/internal/report"
	"diversity/internal/system"
)

var _ = register("E23", runE23Adjudicator)

// runE23Adjudicator relaxes the paper's "perfect adjudication" assumption
// (Section 1: "two versions, with perfect adjudication — simple OR
// combination of binary outputs"): a real voter/actuator stage fails on a
// demand with its own probability, flooring the total system PFD and
// saturating the gain that software diversity can deliver.
func runE23Adjudicator(ctx context.Context, cfg Config) (*Result, error) {
	res := &Result{
		ID:    "E23",
		Title: "Extension: imperfect adjudication floors the diversity gain",
	}
	fs, err := faultmodel.New([]faultmodel.Fault{
		{P: 0.1, Q: 0.002},
		{P: 0.05, Q: 0.004},
		{P: 0.02, Q: 0.001},
	})
	if err != nil {
		return nil, err
	}
	single, err := fs.MeanPFD(1)
	if err != nil {
		return nil, err
	}
	pair, err := fs.MeanPFD(2)
	if err != nil {
		return nil, err
	}
	softwareGain := single / pair

	tbl, err := report.NewTable(
		fmt.Sprintf("Total mean PFD and gain vs adjudicator reliability (software gain %.0fx)", softwareGain),
		"adjudicator PFD", "total single", "total 1oo2", "total gain", "diversity worthwhile (>= 5x)?")
	if err != nil {
		return nil, err
	}
	sweep := []float64{0, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3}
	gains := make([]float64, 0, len(sweep))
	for _, adj := range sweep {
		totalSingle := 1 - (1-single)*(1-adj)
		totalPair := 1 - (1-pair)*(1-adj)
		gain := totalSingle / totalPair
		gains = append(gains, gain)
		worth, err := system.DiversityWorthwhile(single, pair, adj, 5)
		if err != nil {
			return nil, err
		}
		if err := tbl.AddRow(report.Fmt(adj), report.Fmt(totalSingle),
			report.Fmt(totalPair), report.Fmt(gain), fmt.Sprintf("%v", worth)); err != nil {
			return nil, err
		}
	}
	// Gains fall monotonically with adjudicator PFD, from the software
	// gain to ~1.
	monotone := true
	for i := 1; i < len(gains); i++ {
		if gains[i] > gains[i-1]+1e-12 {
			monotone = false
		}
	}
	res.Checks = append(res.Checks, Check{
		Name:     "perfect adjudication recovers the paper's model",
		Paper:    "the paper assumes perfect adjudication",
		Measured: fmt.Sprintf("at adjudicator PFD 0 the total gain equals the software gain %.1fx", gains[0]),
		Pass:     relErr(softwareGain, gains[0]) < 1e-9,
	})
	res.Checks = append(res.Checks, Check{
		Name:     "adjudicator floors the gain",
		Paper:    "(extension) the voter becomes the reliability bottleneck",
		Measured: fmt.Sprintf("total gain falls monotonically from %.1fx to %.2fx as the adjudicator degrades to 1e-3", gains[0], gains[len(gains)-1]),
		Pass:     monotone && gains[len(gains)-1] < 2,
	})

	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		return nil, err
	}
	res.Text = b.String()
	return res, nil
}
