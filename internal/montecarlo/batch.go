package montecarlo

import (
	"diversity/internal/devsim"
	"diversity/internal/faultmodel"
	"diversity/internal/randx"
	"diversity/internal/system"
)

// maxBatchArenaWords bounds the per-worker arena of the batched kernel:
// versions × width bitset columns of (n+63)/64 words each, plus the
// fault-major mask rows the development transpose reads (about one more
// column arena's worth). 1<<22 words is 32 MiB per worker — wide enough
// that every practical scenario gets its full requested width, small
// enough that a wide request over a million-fault universe cannot
// exhaust memory across many workers.
const maxBatchArenaWords = 1 << 22

// effectiveBatchWidth clamps a requested tile width to the arena
// budget. The clamp is a pure function of the run's configuration, so
// fixed-seed reproducibility (per seed, worker count, and width) is
// unaffected by the machine the run lands on.
func effectiveBatchWidth(width, versions, n int) int {
	words := (n + 63) / 64
	if words < 1 {
		words = 1
	}
	// versions column arenas plus one arena-equivalent of mask rows.
	if budget := maxBatchArenaWords / ((versions + 1) * words); budget < width {
		width = budget
	}
	if width < 1 {
		width = 1
	}
	return width
}

// batchWorker is one worker shard's arena and evaluation state for the
// batched replication kernel. Columns, draw scratch, and the per-slot
// mask view are allocated once at construction and reused for every
// tile, so the steady state performs no allocations.
type batchWorker struct {
	fs    *faultmodel.FaultSet
	adj   system.Adjudicator
	r     *randx.Stream
	width int

	// batchDev tiles the draws fault-major (dense batched mode);
	// sparseDev keeps the sparse kernel's per-replication draw sequence
	// and only tiles the evaluation. Exactly one is non-nil.
	batchDev  devsim.BatchDeveloper
	sparseDev devsim.SparseDeveloper
	skips     *int64

	cols  [][]*devsim.Bitset // [version][slot]: the column arena
	slot  []*devsim.Bitset   // one replication's masks across versions
	draws []uint64           // FillUint64 scratch, devsim.BatchDrawsLen(width)

	// Exactly one sink pair is active: streaming aggregates or the
	// buffered result slices (indexed by global replication number).
	vAgg, sAgg            *Agg
	versionPFD, systemPFD []float64
	counts                *[2]int // (versionFaultFree, systemFaultFree)
}

// newBatchWorker builds the arena for one worker shard.
func newBatchWorker(fs *faultmodel.FaultSet, adj system.Adjudicator, r *randx.Stream, versions, width int, batchDev devsim.BatchDeveloper, sparseDev devsim.SparseDeveloper) *batchWorker {
	bw := &batchWorker{
		fs: fs, adj: adj, r: r, width: width,
		batchDev: batchDev, sparseDev: sparseDev,
		cols:  make([][]*devsim.Bitset, versions),
		slot:  make([]*devsim.Bitset, versions),
		draws: make([]uint64, devsim.BatchScratchLen(width, fs.N())),
	}
	for v := range bw.cols {
		bw.cols[v] = make([]*devsim.Bitset, width)
		for j := range bw.cols[v] {
			bw.cols[v][j] = devsim.NewBitset(fs.N())
		}
	}
	return bw
}

// run simulates replications [lo, hi) in tiles of up to width columns:
// develop every version's columns for the tile, then evaluate and
// record the tile's replications in order. In dense batched mode the
// development is fault-major per version (one FillUint64 batch per
// fault); in sparse mode each replication's masks are developed with
// the exact draw sequence of the unbatched sparse path, so sparse
// results stay byte-identical to Config.BatchWidth = 0.
func (bw *batchWorker) run(lo, hi int) error {
	for base := lo; base < hi; base += bw.width {
		b := bw.width
		if base+b > hi {
			b = hi - base
		}
		if bw.batchDev != nil {
			for v := range bw.cols {
				bw.batchDev.DevelopBatch(bw.r, bw.cols[v][:b], bw.draws)
			}
		} else {
			for j := 0; j < b; j++ {
				skips := 0
				for v := range bw.cols {
					skips += bw.sparseDev.DevelopSparse(bw.r, bw.cols[v][j])
				}
				*bw.skips += int64(skips)
			}
		}
		for j := 0; j < b; j++ {
			for v := range bw.cols {
				bw.slot[v] = bw.cols[v][j]
			}
			vpfd, vcount := sparsePFD(bw.fs, bw.slot[0])
			spfd, scount := system.BitsetSystemPFD(bw.fs, bw.adj, bw.slot)
			if bw.vAgg != nil {
				bw.vAgg.Observe(vpfd)
				bw.sAgg.Observe(spfd)
			} else {
				bw.versionPFD[base+j] = vpfd
				bw.systemPFD[base+j] = spfd
			}
			if vcount == 0 {
				bw.counts[0]++
			}
			if scount == 0 {
				bw.counts[1]++
			}
		}
	}
	return nil
}
