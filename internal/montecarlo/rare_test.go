package montecarlo

import (
	"math"
	"testing"

	"diversity/internal/faultmodel"
)

func rareFaultSet(t *testing.T) *faultmodel.FaultSet {
	t.Helper()
	// Safety-grade-like: P(N2>0) is of order 1e-5.
	fs, err := faultmodel.New([]faultmodel.Fault{
		{P: 0.003, Q: 0.001},
		{P: 0.002, Q: 0.002},
		{P: 0.001, Q: 0.001},
		{P: 0.0005, Q: 0.003},
	})
	if err != nil {
		t.Fatalf("faultmodel.New: %v", err)
	}
	return fs
}

func TestEstimateRareSystemFaultUnbiased(t *testing.T) {
	t.Parallel()

	fs := rareFaultSet(t)
	truth, err := fs.PAnyFault(2)
	if err != nil {
		t.Fatalf("PAnyFault: %v", err)
	}
	if truth > 1e-4 {
		t.Fatalf("fixture is not rare enough: P = %v", truth)
	}
	est, err := EstimateRareSystemFault(fs, 2, 50000, 7, 0.3)
	if err != nil {
		t.Fatalf("EstimateRareSystemFault: %v", err)
	}
	if math.Abs(est.Probability-truth) > 5*est.StdErr+1e-12 {
		t.Errorf("IS estimate %v ± %v vs truth %v", est.Probability, est.StdErr, truth)
	}
	// The tilt makes the event common under the sampling measure.
	if est.HitFraction < 0.2 {
		t.Errorf("hit fraction %v, want the tilt to make events common", est.HitFraction)
	}
	// Relative precision must be far better than naive MC could achieve
	// at this replication count (naive would see ~0.7 events).
	if est.StdErr/truth > 0.2 {
		t.Errorf("relative std err %v, want < 0.2", est.StdErr/truth)
	}
}

func TestEstimateRareMatchesModerateProbability(t *testing.T) {
	t.Parallel()

	// Sanity on a non-rare set: both estimators must agree with the
	// closed form.
	fs, err := faultmodel.New([]faultmodel.Fault{
		{P: 0.3, Q: 0.1},
		{P: 0.2, Q: 0.1},
	})
	if err != nil {
		t.Fatalf("faultmodel.New: %v", err)
	}
	truth, err := fs.PAnyFault(2)
	if err != nil {
		t.Fatalf("PAnyFault: %v", err)
	}
	is, err := EstimateRareSystemFault(fs, 2, 100000, 3, 0.3)
	if err != nil {
		t.Fatalf("EstimateRareSystemFault: %v", err)
	}
	if math.Abs(is.Probability-truth) > 5*is.StdErr+1e-9 {
		t.Errorf("IS estimate %v ± %v vs truth %v", is.Probability, is.StdErr, truth)
	}
	naive, err := EstimateNaiveSystemFault(fs, 2, 100000, 3)
	if err != nil {
		t.Fatalf("EstimateNaiveSystemFault: %v", err)
	}
	if math.Abs(naive.Probability-truth) > 5*naive.StdErr+1e-9 {
		t.Errorf("naive estimate %v ± %v vs truth %v", naive.Probability, naive.StdErr, truth)
	}
}

func TestEstimateRareVarianceReduction(t *testing.T) {
	t.Parallel()

	fs := rareFaultSet(t)
	const reps = 20000
	is, err := EstimateRareSystemFault(fs, 2, reps, 11, 0.3)
	if err != nil {
		t.Fatalf("EstimateRareSystemFault: %v", err)
	}
	naive, err := EstimateNaiveSystemFault(fs, 2, reps, 11)
	if err != nil {
		t.Fatalf("EstimateNaiveSystemFault: %v", err)
	}
	// Naive MC at 2e4 reps almost surely sees zero events (P ~ 1e-5 for
	// versions, ~1e-8 at system level), so its estimate/error are
	// useless; importance sampling still resolves the probability.
	truth, err := fs.PAnyFault(2)
	if err != nil {
		t.Fatalf("PAnyFault: %v", err)
	}
	if is.StdErr <= 0 {
		t.Fatal("IS std err not positive")
	}
	if is.StdErr/truth > 0.5 {
		t.Errorf("IS relative error %v too large", is.StdErr/truth)
	}
	if naive.Probability != 0 && naive.StdErr < is.StdErr {
		t.Errorf("naive MC outperformed IS on a rare event: naive %v ± %v, IS %v ± %v",
			naive.Probability, naive.StdErr, is.Probability, is.StdErr)
	}
}

func TestEstimateRareImpossibleFaults(t *testing.T) {
	t.Parallel()

	fs, err := faultmodel.New([]faultmodel.Fault{
		{P: 0, Q: 0.1},
		{P: 0.001, Q: 0.1},
	})
	if err != nil {
		t.Fatalf("faultmodel.New: %v", err)
	}
	truth, err := fs.PAnyFault(2)
	if err != nil {
		t.Fatalf("PAnyFault: %v", err)
	}
	est, err := EstimateRareSystemFault(fs, 2, 20000, 5, 0.3)
	if err != nil {
		t.Fatalf("EstimateRareSystemFault: %v", err)
	}
	if math.Abs(est.Probability-truth) > 5*est.StdErr+1e-12 {
		t.Errorf("estimate %v ± %v vs truth %v", est.Probability, est.StdErr, truth)
	}
}

func TestEstimateRareAllZero(t *testing.T) {
	t.Parallel()

	fs, err := faultmodel.New([]faultmodel.Fault{{P: 0, Q: 0.1}})
	if err != nil {
		t.Fatalf("faultmodel.New: %v", err)
	}
	est, err := EstimateRareSystemFault(fs, 2, 1000, 1, 0.3)
	if err != nil {
		t.Fatalf("EstimateRareSystemFault: %v", err)
	}
	if est.Probability != 0 || est.HitFraction != 0 {
		t.Errorf("zero set gave estimate %+v", est)
	}
}

func TestEstimateRareValidation(t *testing.T) {
	t.Parallel()

	fs := rareFaultSet(t)
	if _, err := EstimateRareSystemFault(nil, 2, 100, 1, 0.3); err == nil {
		t.Error("nil fault set succeeded, want error")
	}
	if _, err := EstimateRareSystemFault(fs, 0, 100, 1, 0.3); err == nil {
		t.Error("m=0 succeeded, want error")
	}
	if _, err := EstimateRareSystemFault(fs, 2, 1, 1, 0.3); err == nil {
		t.Error("1 rep succeeded, want error")
	}
	if _, err := EstimateRareSystemFault(fs, 2, 100, 1, 0); err == nil {
		t.Error("zero tilt succeeded, want error")
	}
	if _, err := EstimateRareSystemFault(fs, 2, 100, 1, 1); err == nil {
		t.Error("tilt=1 succeeded, want error")
	}
	if _, err := EstimateNaiveSystemFault(nil, 2, 100, 1); err == nil {
		t.Error("naive nil fault set succeeded, want error")
	}
	if _, err := EstimateNaiveSystemFault(fs, 0, 100, 1); err == nil {
		t.Error("naive m=0 succeeded, want error")
	}
	if _, err := EstimateNaiveSystemFault(fs, 2, 1, 1); err == nil {
		t.Error("naive 1 rep succeeded, want error")
	}
}

func BenchmarkEstimateRareIS(b *testing.B) {
	fs, err := faultmodel.New([]faultmodel.Fault{
		{P: 0.003, Q: 0.001}, {P: 0.002, Q: 0.002}, {P: 0.001, Q: 0.001},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EstimateRareSystemFault(fs, 2, 10000, uint64(i), 0.3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimateRareNaive(b *testing.B) {
	fs, err := faultmodel.New([]faultmodel.Fault{
		{P: 0.003, Q: 0.001}, {P: 0.002, Q: 0.002}, {P: 0.001, Q: 0.001},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EstimateNaiveSystemFault(fs, 2, 10000, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
