// Package montecarlo replicates the fault creation process many times to
// measure the distribution of version and system PFDs empirically.
//
// Every analytic claim of the paper that this repository reproduces is
// cross-checked against this harness: equations (1)–(2) against sample
// moments (E01), equation (10) against no-common-fault frequencies (E04),
// and the Section-5 normal approximation against empirical percentiles
// (E09). Replications are sharded across worker goroutines with split
// random streams, so results are reproducible for a fixed seed and worker
// count does not change the sampled distribution.
//
// The harness offers two aggregation modes. The default buffered mode
// keeps every replication's version and system PFD in memory
// (Result.VersionPFD/SystemPFD), supporting exact sample statistics at
// O(Reps) memory. Streaming mode (Config.Streaming) folds each
// replication into per-worker Agg accumulators — mergeable moments, a
// log-scale histogram for quantiles, and fault-free counters — merged
// deterministically in shard order, so memory stays constant in Reps and
// the hot path performs no per-replication allocations. Both modes draw
// identical random variates, so for a fixed seed and worker count they
// observe exactly the same PFD population.
package montecarlo

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"diversity/internal/devsim"
	"diversity/internal/randx"
	"diversity/internal/stats"
	"diversity/internal/system"
	"diversity/internal/telemetry"
)

// ctxCheckEvery is the number of replications a worker completes between
// context checks and progress reports: coarse enough to keep the per-sample
// hot path branch-free, fine enough that cancelling a multi-million-rep run
// takes effect promptly.
const ctxCheckEvery = 8192

// Config parameterises a Monte-Carlo run.
type Config struct {
	// Process develops the versions; it must be safe for concurrent use.
	Process devsim.Process
	// Versions is the number of versions per replication (the paper's
	// system has 2). Must be at least 1.
	Versions int
	// Arch combines the versions into a system. Defaults to
	// system.Arch1OutOfM when zero. Ignored when Adjudicator is set.
	Arch system.Architecture
	// Adjudicator, when non-nil, selects the voting rule combining the
	// versions into a system — any system.Adjudicator, including k-of-N
	// rules the Arch enum cannot express. Nil falls back to Arch.
	Adjudicator system.Adjudicator
	// Reps is the number of replications. Must be at least 1.
	Reps int
	// Workers is the number of worker goroutines. Zero means
	// runtime.GOMAXPROCS(0).
	Workers int
	// Seed makes the run reproducible.
	Seed uint64
	// Streaming selects constant-memory aggregation: instead of buffering
	// every replication's PFDs, the run folds them into mergeable
	// Agg accumulators (Result.VersionAgg/SystemAgg) and leaves
	// Result.VersionPFD/SystemPFD nil. The sampled population is
	// identical to the buffered mode for the same seed and worker count;
	// only the representation changes. Use Result.VersionSummary and
	// Result.SystemSummary to read statistics uniformly in either mode.
	Streaming bool
	// Sparse selects the sparse development kernel
	// (devsim.SparseDeveloper): replications sample packed Bitset fault
	// masks — by geometric gap-skipping for the independent process, so
	// per-replication cost scales with the expected fault count rather
	// than the universe size — and reduce them by word-wise AND +
	// popcount. The sparse path draws a different (but distributionally
	// identical) variate sequence from the dense default, so fixed-seed
	// results are reproducible within a mode yet not bitwise comparable
	// across modes; it therefore ships opt-in. It composes with both
	// aggregation modes, and for the same seed and worker count the
	// sparse buffered and sparse streaming runs observe exactly the same
	// PFD population. Processes without the SparseDeveloper extension
	// fall back to the dense path.
	Sparse bool
	// BatchWidth, when at least 2, selects the batched replication kernel:
	// each worker tiles its replications into columns of up to BatchWidth
	// bitsets and develops a tile fault-major, drawing every fault's
	// Bernoulli variates for the whole tile from one randx FillUint64
	// batch and comparing them against precomputed integer thresholds
	// (devsim.BatchDeveloper). Draw and column buffers are arena-reused
	// per worker shard, so the steady state performs no allocations. Like
	// the sparse kernel, the batched path consumes a different (but
	// distributionally identical) variate sequence from the dense
	// default, so it ships opt-in: 0 or 1 leaves the existing paths
	// untouched byte for byte. It composes with both aggregation modes
	// and with Sparse (sparse draws stay per-replication — identical to
	// the unbatched sparse sequence — and only the evaluation is tiled).
	// Processes without the BatchDeveloper extension fall back to the
	// dense path. Wide tiles over large fault universes are clamped to a
	// fixed per-worker arena budget; Result.BatchWidth reports the width
	// actually used.
	BatchWidth int
	// Progress, when non-nil, is called as replications complete with the
	// total completed so far and the configured total. It is invoked from
	// worker goroutines at shard-chunk granularity (never per sample) and
	// must therefore be safe for concurrent use. Progress does not affect
	// the sampled distribution.
	Progress func(done, total int)
	// Metrics, when non-nil, receives run measurements: total
	// replications, replications per second, worker shard imbalance, and
	// — for cancelled runs — the latency between cancellation and the
	// last worker draining. Metric names are listed in DESIGN.md §7.
	// Metrics does not affect the sampled distribution.
	Metrics *telemetry.Registry
	// TraceSpan, when non-nil, is the parent span under which the run
	// records one timed child span per worker shard.
	TraceSpan *telemetry.Span
}

// Result collects the outcome of a run.
type Result struct {
	// Reps is the number of completed replications.
	Reps int
	// Versions is the number of versions each replication developed.
	Versions int
	// Adjudicator is the canonical name of the voting rule the run
	// adjudicated systems with ("1oon", "majority", "2oo3", ...).
	Adjudicator string
	// Streaming reports which aggregation mode produced the result:
	// buffered runs fill VersionPFD/SystemPFD, streaming runs fill
	// VersionAgg/SystemAgg.
	Streaming bool
	// Sparse reports whether the sparse development kernel actually ran —
	// false when Config.Sparse was set but the process lacks the
	// SparseDeveloper extension and the run fell back to the dense path.
	Sparse bool
	// SparseSkips is the total number of geometric skip draws the sparse
	// kernel consumed (0 for dense runs and dense-replay fallbacks).
	SparseSkips int64
	// Batched reports whether the batched replication kernel actually ran
	// — false when Config.BatchWidth was set but the process supports
	// neither bitset kernel and the run fell back to the dense path.
	Batched bool
	// BatchWidth is the tile width the batched kernel used
	// (Config.BatchWidth clamped to the replication count and the
	// per-worker arena budget). It is 0 for unbatched runs.
	BatchWidth int
	// VersionPFD holds the PFD of the first version of each replication.
	// It is nil for streaming runs.
	VersionPFD []float64
	// SystemPFD holds the system PFD of each replication. It is nil for
	// streaming runs.
	SystemPFD []float64
	// VersionAgg is the streaming aggregate of the first-version PFDs.
	// It is nil for buffered runs.
	VersionAgg *Agg
	// SystemAgg is the streaming aggregate of the system PFDs. It is nil
	// for buffered runs.
	SystemAgg *Agg
	// VersionFaultFree counts replications whose first version had no
	// faults (N1 = 0).
	VersionFaultFree int
	// SystemFaultFree counts replications whose system had no defeating
	// fault (for the 1oo2 system: no common fault, N2 = 0).
	SystemFaultFree int
}

// VersionSummary returns descriptive statistics of the first-version PFD
// population in either aggregation mode: exact sample statistics for
// buffered runs, exact moments with histogram-resolution quantiles for
// streaming runs.
func (res *Result) VersionSummary() (stats.Summary, error) {
	if res.VersionAgg != nil {
		return res.VersionAgg.Summary()
	}
	return stats.Summarize(res.VersionPFD)
}

// SystemSummary returns descriptive statistics of the system PFD
// population in either aggregation mode: exact sample statistics for
// buffered runs, exact moments with histogram-resolution quantiles for
// streaming runs.
func (res *Result) SystemSummary() (stats.Summary, error) {
	if res.SystemAgg != nil {
		return res.SystemAgg.Summary()
	}
	return stats.Summarize(res.SystemPFD)
}

// PVersionAnyFault returns the empirical estimate of P(N1 > 0).
func (res *Result) PVersionAnyFault() float64 {
	return 1 - float64(res.VersionFaultFree)/float64(res.Reps)
}

// PSystemAnyFault returns the empirical estimate of P(N_system > 0).
func (res *Result) PSystemAnyFault() float64 {
	return 1 - float64(res.SystemFaultFree)/float64(res.Reps)
}

// RiskRatio returns the empirical counterpart of the paper's equation (10)
// ratio, or an error if no version had any fault (the denominator risk is
// zero).
func (res *Result) RiskRatio() (float64, error) {
	denom := res.PVersionAnyFault()
	if denom == 0 {
		return 0, errors.New("montecarlo: risk ratio undefined: no replication produced a faulty version")
	}
	return res.PSystemAnyFault() / denom, nil
}

// Run executes the configured Monte-Carlo experiment. It is equivalent to
// RunContext with a background context.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext executes the configured Monte-Carlo experiment under a
// context. Cancellation is checked once per worker shard chunk (every
// ctxCheckEvery replications), not per sample; a cancelled run returns an
// error wrapping ctx.Err() and discards any partial results.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Process == nil {
		return nil, errors.New("montecarlo: config requires a development process")
	}
	if cfg.Versions < 1 {
		return nil, fmt.Errorf("montecarlo: versions per replication %d must be at least 1", cfg.Versions)
	}
	if cfg.Reps < 1 {
		return nil, fmt.Errorf("montecarlo: replication count %d must be at least 1", cfg.Reps)
	}
	if cfg.BatchWidth < 0 {
		return nil, fmt.Errorf("montecarlo: batch width %d must not be negative", cfg.BatchWidth)
	}
	adj := cfg.Adjudicator
	if adj == nil {
		arch := cfg.Arch
		if arch == 0 {
			arch = system.Arch1OutOfM
		}
		var err error
		if adj, err = arch.Adjudicator(); err != nil {
			return nil, fmt.Errorf("montecarlo: %w", err)
		}
	}
	if err := adj.Validate(cfg.Versions); err != nil {
		return nil, fmt.Errorf("montecarlo: %w", err)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Reps {
		workers = cfg.Reps
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("montecarlo: run cancelled before start: %w", err)
	}

	// The sparse kernel needs the SparseDeveloper extension; without it
	// the run falls back to the dense path (mirroring the streaming
	// mode's MaskDeveloper fallback).
	var sparseDev devsim.SparseDeveloper
	if cfg.Sparse {
		sparseDev, _ = cfg.Process.(devsim.SparseDeveloper)
	}

	fs := cfg.Process.FaultSet()

	// The batched kernel tiles replications into bitset columns, which
	// the sparse kernel always produces and the dense path gets from the
	// BatchDeveloper extension; a process with neither falls back to the
	// unbatched dense path.
	batchWidth := 0
	var batchDev devsim.BatchDeveloper
	if cfg.BatchWidth > 1 {
		if sparseDev == nil {
			batchDev, _ = cfg.Process.(devsim.BatchDeveloper)
		}
		if sparseDev != nil || batchDev != nil {
			batchWidth = cfg.BatchWidth
			if batchWidth > cfg.Reps {
				batchWidth = cfg.Reps
			}
			batchWidth = effectiveBatchWidth(batchWidth, cfg.Versions, fs.N())
		}
	}

	res := &Result{
		Reps: cfg.Reps, Versions: cfg.Versions, Adjudicator: adj.Name(),
		Streaming: cfg.Streaming, Sparse: sparseDev != nil,
		Batched: batchWidth > 0, BatchWidth: batchWidth,
	}
	var vAggs, sAggs []Agg
	if cfg.Streaming {
		vAggs = make([]Agg, workers)
		sAggs = make([]Agg, workers)
	} else {
		res.VersionPFD = make([]float64, cfg.Reps)
		res.SystemPFD = make([]float64, cfg.Reps)
	}

	streams := randx.NewStream(cfg.Seed).Split(workers)
	type shard struct {
		lo, hi int
	}
	shards := make([]shard, workers)
	per := cfg.Reps / workers
	extra := cfg.Reps % workers
	start := 0
	for w := range shards {
		size := per
		if w < extra {
			size++
		}
		shards[w] = shard{lo: start, hi: start + size}
		start += size
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	var done atomic.Int64
	counts := make([][2]int, workers)     // per-worker (versionFaultFree, systemFaultFree)
	workerSkips := make([]int64, workers) // per-worker geometric skip draws (sparse mode)

	// The cancellation watcher timestamps the moment the context is
	// cancelled so the drain latency — cancellation to last worker exit —
	// can be measured after wg.Wait.
	runStart := time.Now()
	var cancelledAt atomic.Int64 // unix nanos; 0 = not cancelled
	watcherStop := make(chan struct{})
	if cfg.Metrics != nil {
		go func() {
			select {
			case <-ctx.Done():
				cancelledAt.Store(time.Now().UnixNano())
			case <-watcherStop:
			}
		}()
	}
	shardElapsed := make([]time.Duration, workers)

	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			if cfg.TraceSpan != nil {
				span := cfg.TraceSpan.Child(fmt.Sprintf("shard-%02d", w))
				defer span.End()
			}
			shardStart := time.Now()
			defer func() { shardElapsed[w] = time.Since(shardStart) }()
			r := streams[w]

			// Each mode supplies one simulate(rep) step — or, for the
			// batched kernel, one simulateBatch(lo, hi) tile step — and
			// the chunk loop below (context checks, progress) is shared.
			// The streaming fast path reuses per-worker presence masks
			// through devsim.MaskDeveloper, so a replication performs no
			// allocations at all; processes without that extension fall
			// back to Develop, still at constant memory in Reps. The
			// sparse kernel likewise reuses per-worker Bitset masks, in
			// either aggregation mode, allocation-free per replication.
			var simulate func(rep int) error
			var simulateBatch func(lo, hi int) error
			switch {
			case res.Batched:
				bw := newBatchWorker(fs, adj, r, cfg.Versions, batchWidth, batchDev, sparseDev)
				bw.skips = &workerSkips[w]
				bw.counts = &counts[w]
				if cfg.Streaming {
					bw.vAgg, bw.sAgg = &vAggs[w], &sAggs[w]
				} else {
					bw.versionPFD, bw.systemPFD = res.VersionPFD, res.SystemPFD
				}
				simulateBatch = bw.run
			case sparseDev != nil:
				masks := make([]*devsim.Bitset, cfg.Versions)
				for i := range masks {
					masks[i] = devsim.NewBitset(fs.N())
				}
				if cfg.Streaming {
					vAgg, sAgg := &vAggs[w], &sAggs[w]
					simulate = func(int) error {
						skips := 0
						for _, mask := range masks {
							skips += sparseDev.DevelopSparse(r, mask)
						}
						workerSkips[w] += int64(skips)
						vpfd, vcount := sparsePFD(fs, masks[0])
						spfd, scount := system.BitsetSystemPFD(fs, adj, masks)
						vAgg.Observe(vpfd)
						sAgg.Observe(spfd)
						if vcount == 0 {
							counts[w][0]++
						}
						if scount == 0 {
							counts[w][1]++
						}
						return nil
					}
				} else {
					simulate = func(rep int) error {
						skips := 0
						for _, mask := range masks {
							skips += sparseDev.DevelopSparse(r, mask)
						}
						workerSkips[w] += int64(skips)
						vpfd, vcount := sparsePFD(fs, masks[0])
						spfd, scount := system.BitsetSystemPFD(fs, adj, masks)
						res.VersionPFD[rep] = vpfd
						res.SystemPFD[rep] = spfd
						if vcount == 0 {
							counts[w][0]++
						}
						if scount == 0 {
							counts[w][1]++
						}
						return nil
					}
				}
			case cfg.Streaming:
				vAgg, sAgg := &vAggs[w], &sAggs[w]
				if md, ok := cfg.Process.(devsim.MaskDeveloper); ok {
					masks := make([][]bool, cfg.Versions)
					for i := range masks {
						masks[i] = make([]bool, fs.N())
					}
					simulate = func(int) error {
						for _, mask := range masks {
							md.DevelopInto(r, mask)
						}
						vpfd, vcount := maskPFD(fs, masks[0])
						spfd, scount := system.MaskSystemPFD(fs, adj, masks)
						vAgg.Observe(vpfd)
						sAgg.Observe(spfd)
						if vcount == 0 {
							counts[w][0]++
						}
						if scount == 0 {
							counts[w][1]++
						}
						return nil
					}
				} else {
					versions := make([]*devsim.Version, cfg.Versions)
					simulate = func(int) error {
						for i := range versions {
							versions[i] = cfg.Process.Develop(r)
						}
						sys, err := system.NewVoted(fs, adj, versions...)
						if err != nil {
							return err
						}
						vAgg.Observe(versions[0].PFD())
						sAgg.Observe(sys.PFD())
						if versions[0].FaultCount() == 0 {
							counts[w][0]++
						}
						if sys.SystemFaultCount() == 0 {
							counts[w][1]++
						}
						return nil
					}
				}
			default:
				versions := make([]*devsim.Version, cfg.Versions)
				simulate = func(rep int) error {
					for i := range versions {
						versions[i] = cfg.Process.Develop(r)
					}
					sys, err := system.NewVoted(fs, adj, versions...)
					if err != nil {
						return err
					}
					res.VersionPFD[rep] = versions[0].PFD()
					res.SystemPFD[rep] = sys.PFD()
					if versions[0].FaultCount() == 0 {
						counts[w][0]++
					}
					if sys.SystemFaultCount() == 0 {
						counts[w][1]++
					}
					return nil
				}
			}

			// A chunk is never smaller than a tile, so batched tiles only
			// shrink at the shard tail, not at every context check.
			chunk := ctxCheckEvery
			if batchWidth > chunk {
				chunk = batchWidth
			}
			for lo := shards[w].lo; lo < shards[w].hi; lo += chunk {
				if ctx.Err() != nil {
					return
				}
				hi := lo + chunk
				if hi > shards[w].hi {
					hi = shards[w].hi
				}
				if simulateBatch != nil {
					if err := simulateBatch(lo, hi); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
				} else {
					for rep := lo; rep < hi; rep++ {
						if err := simulate(rep); err != nil {
							mu.Lock()
							if firstErr == nil {
								firstErr = err
							}
							mu.Unlock()
							return
						}
					}
				}
				completed := done.Add(int64(hi - lo))
				if cfg.Progress != nil {
					cfg.Progress(int(completed), cfg.Reps)
				}
			}
		}()
	}
	wg.Wait()
	for _, s := range workerSkips {
		res.SparseSkips += s
	}
	if cfg.Metrics != nil {
		close(watcherStop)
		recordRunMetrics(cfg.Metrics, runStart, done.Load(), shardElapsed, cancelledAt.Load(), res.Sparse, res.SparseSkips, res.Batched, res.BatchWidth, res.Adjudicator)
		if cfg.Streaming {
			cfg.Metrics.Counter("montecarlo.streaming_runs_total").Add(1)
		}
	}
	if firstErr != nil {
		return nil, fmt.Errorf("montecarlo: replication failed: %w", firstErr)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("montecarlo: run cancelled after %d of %d replications: %w", done.Load(), cfg.Reps, err)
	}
	for _, c := range counts {
		res.VersionFaultFree += c[0]
		res.SystemFaultFree += c[1]
	}
	if cfg.Streaming {
		// Reduce the per-worker aggregates in shard order: the merge is
		// deterministic, so a fixed seed and worker count reproduces
		// results bit for bit.
		res.VersionAgg, res.SystemAgg = new(Agg), new(Agg)
		for i := range vAggs {
			res.VersionAgg.Merge(&vAggs[i])
			res.SystemAgg.Merge(&sAggs[i])
		}
	}
	return res, nil
}

// PreRegisterMetrics registers this package's run metrics that would
// otherwise only appear after the first run of their kind, so snapshots
// taken before any run report them as zeros (the telemetry layer's
// pre-registration convention, docs/METRICS.md).
func PreRegisterMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("montecarlo.sparse_skips_total")
	reg.Gauge("montecarlo.replications_per_second.dense")
	reg.Gauge("montecarlo.replications_per_second.sparse")
	reg.Gauge("montecarlo.replications_per_second.batched")
	reg.Gauge("montecarlo.batch_width")
	// Per-adjudicator replication counters for the built-in voting rules;
	// k-of-N rules appear under their own names after their first run.
	reg.Counter("montecarlo.replications_total." + system.OneOutOfN{}.Name())
	reg.Counter("montecarlo.replications_total." + system.MajorityVote{}.Name())
}

// recordRunMetrics publishes a run's throughput and shard measurements;
// replications are additionally counted under the run's adjudicator name
// (montecarlo.replications_total.<adjudicator>), so mixed workloads
// expose how much simulation each voting rule consumed:
// replications completed, replications per second over the whole run
// (both unlabelled and under the kernel-mode suffix
// .dense/.sparse/.batched — sparse wins the label when the two kernels
// compose, since the sparse kernel does the drawing), the tile width of
// the latest batched run, shard imbalance ((max-min)/max shard wall
// time — 0 means perfectly balanced), sparse-kernel skip draws, and,
// for cancelled runs, the latency between cancellation and the last
// worker draining.
func recordRunMetrics(reg *telemetry.Registry, runStart time.Time, completed int64, shardElapsed []time.Duration, cancelledNanos int64, sparse bool, sparseSkips int64, batched bool, batchWidth int, adjudicator string) {
	elapsed := time.Since(runStart)
	reg.Counter("montecarlo.replications_total").Add(completed)
	if adjudicator != "" {
		reg.Counter("montecarlo.replications_total." + adjudicator).Add(completed)
	}
	mode := "dense"
	switch {
	case sparse:
		mode = "sparse"
		reg.Counter("montecarlo.sparse_skips_total").Add(sparseSkips)
	case batched:
		mode = "batched"
	}
	if batched {
		reg.Gauge("montecarlo.batch_width").Set(float64(batchWidth))
	}
	if secs := elapsed.Seconds(); secs > 0 {
		rate := float64(completed) / secs
		reg.Gauge("montecarlo.replications_per_second").Set(rate)
		reg.Gauge("montecarlo.replications_per_second." + mode).Set(rate)
	}
	reg.Histogram("montecarlo.run_duration_seconds", telemetry.DurationBuckets).Observe(elapsed.Seconds())
	if len(shardElapsed) > 1 {
		minD, maxD := shardElapsed[0], shardElapsed[0]
		for _, d := range shardElapsed[1:] {
			if d < minD {
				minD = d
			}
			if d > maxD {
				maxD = d
			}
		}
		if maxD > 0 {
			reg.Gauge("montecarlo.shard_imbalance").Set(float64(maxD-minD) / float64(maxD))
		}
	}
	if cancelledNanos != 0 {
		latency := time.Since(time.Unix(0, cancelledNanos))
		reg.Histogram("montecarlo.cancellation_latency_seconds", telemetry.DurationBuckets).Observe(latency.Seconds())
	}
}
