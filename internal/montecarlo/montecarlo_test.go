package montecarlo

import (
	"math"
	"testing"

	"diversity/internal/devsim"
	"diversity/internal/faultmodel"
	"diversity/internal/stats"
	"diversity/internal/system"
)

func testProcess(t *testing.T) devsim.Process {
	t.Helper()
	fs, err := faultmodel.New([]faultmodel.Fault{
		{P: 0.2, Q: 0.05},
		{P: 0.4, Q: 0.1},
		{P: 0.1, Q: 0.2},
	})
	if err != nil {
		t.Fatalf("faultmodel.New: %v", err)
	}
	return devsim.NewIndependentProcess(fs)
}

func TestRunValidation(t *testing.T) {
	t.Parallel()

	proc := testProcess(t)
	if _, err := Run(Config{Versions: 2, Reps: 10}); err == nil {
		t.Error("nil process succeeded, want error")
	}
	if _, err := Run(Config{Process: proc, Versions: 0, Reps: 10}); err == nil {
		t.Error("zero versions succeeded, want error")
	}
	if _, err := Run(Config{Process: proc, Versions: 2, Reps: 0}); err == nil {
		t.Error("zero reps succeeded, want error")
	}
}

func TestRunReproducible(t *testing.T) {
	t.Parallel()

	proc := testProcess(t)
	cfg := Config{Process: proc, Versions: 2, Reps: 2000, Seed: 42, Workers: 4}
	a, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := range a.SystemPFD {
		if a.SystemPFD[i] != b.SystemPFD[i] || a.VersionPFD[i] != b.VersionPFD[i] {
			t.Fatalf("rep %d: runs with the same seed diverged", i)
		}
	}
	if a.VersionFaultFree != b.VersionFaultFree || a.SystemFaultFree != b.SystemFaultFree {
		t.Error("counts diverged between identical runs")
	}
}

// TestRunMatchesModelMoments is experiment E01 in miniature: empirical
// moments against equations (1)–(2).
func TestRunMatchesModelMoments(t *testing.T) {
	t.Parallel()

	proc := testProcess(t)
	fs := proc.FaultSet()
	res, err := Run(Config{Process: proc, Versions: 2, Reps: 200000, Seed: 7})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, tc := range []struct {
		name    string
		samples []float64
		m       int
	}{
		{name: "version", samples: res.VersionPFD, m: 1},
		{name: "system", samples: res.SystemPFD, m: 2},
	} {
		gotMean, err := stats.Mean(tc.samples)
		if err != nil {
			t.Fatalf("Mean: %v", err)
		}
		wantMean, err := fs.MeanPFD(tc.m)
		if err != nil {
			t.Fatalf("MeanPFD: %v", err)
		}
		if math.Abs(gotMean-wantMean) > 0.001 {
			t.Errorf("%s mean = %.5f, model %.5f", tc.name, gotMean, wantMean)
		}
		gotSD, err := stats.StdDev(tc.samples)
		if err != nil {
			t.Fatalf("StdDev: %v", err)
		}
		wantSD, err := fs.SigmaPFD(tc.m)
		if err != nil {
			t.Fatalf("SigmaPFD: %v", err)
		}
		if math.Abs(gotSD-wantSD) > 0.001 {
			t.Errorf("%s sigma = %.5f, model %.5f", tc.name, gotSD, wantSD)
		}
	}
}

// TestRunMatchesNoFaultProbabilities cross-checks P(N=0) frequencies
// against the closed forms.
func TestRunMatchesNoFaultProbabilities(t *testing.T) {
	t.Parallel()

	proc := testProcess(t)
	fs := proc.FaultSet()
	res, err := Run(Config{Process: proc, Versions: 2, Reps: 200000, Seed: 11})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want1, err := fs.PNoFault(1)
	if err != nil {
		t.Fatalf("PNoFault(1): %v", err)
	}
	got1 := float64(res.VersionFaultFree) / float64(res.Reps)
	if math.Abs(got1-want1) > 0.005 {
		t.Errorf("P(N1=0) empirical %.4f, model %.4f", got1, want1)
	}
	want2, err := fs.PNoFault(2)
	if err != nil {
		t.Fatalf("PNoFault(2): %v", err)
	}
	got2 := float64(res.SystemFaultFree) / float64(res.Reps)
	if math.Abs(got2-want2) > 0.005 {
		t.Errorf("P(N2=0) empirical %.4f, model %.4f", got2, want2)
	}

	// Risk ratio, equation (10).
	wantRatio, err := fs.RiskRatio()
	if err != nil {
		t.Fatalf("RiskRatio: %v", err)
	}
	gotRatio, err := res.RiskRatio()
	if err != nil {
		t.Fatalf("empirical RiskRatio: %v", err)
	}
	if math.Abs(gotRatio-wantRatio) > 0.02 {
		t.Errorf("risk ratio empirical %.4f, model %.4f", gotRatio, wantRatio)
	}
}

func TestRunWorkerCountInvariance(t *testing.T) {
	t.Parallel()

	// The sampled distribution must not depend on parallelism; with a
	// fixed seed the per-worker streams differ, so compare statistics
	// rather than raw samples.
	proc := testProcess(t)
	one, err := Run(Config{Process: proc, Versions: 2, Reps: 100000, Seed: 3, Workers: 1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	eight, err := Run(Config{Process: proc, Versions: 2, Reps: 100000, Seed: 3, Workers: 8})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	ks, err := stats.KSTestTwoSample(one.SystemPFD, eight.SystemPFD)
	if err != nil {
		t.Fatalf("KSTestTwoSample: %v", err)
	}
	if ks.PValue < 0.001 {
		t.Errorf("worker counts produced different distributions: D=%v p=%v", ks.Statistic, ks.PValue)
	}
}

func TestRunMoreWorkersThanReps(t *testing.T) {
	t.Parallel()

	proc := testProcess(t)
	res, err := Run(Config{Process: proc, Versions: 2, Reps: 3, Seed: 1, Workers: 16})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Reps != 3 || len(res.SystemPFD) != 3 {
		t.Errorf("got %d reps, want 3", res.Reps)
	}
}

func TestRunMajorityArchitecture(t *testing.T) {
	t.Parallel()

	proc := testProcess(t)
	res, err := Run(Config{
		Process:  proc,
		Versions: 3,
		Arch:     system.ArchMajority,
		Reps:     50000,
		Seed:     13,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Majority system PFD mean: fault defeats system when present in >= 2
	// of 3 versions: probability 3p²(1-p) + p³ per fault.
	fs := proc.FaultSet()
	want := 0.0
	for i := 0; i < fs.N(); i++ {
		p, q := fs.Fault(i).P, fs.Fault(i).Q
		want += (3*p*p*(1-p) + p*p*p) * q
	}
	got, err := stats.Mean(res.SystemPFD)
	if err != nil {
		t.Fatalf("Mean: %v", err)
	}
	if math.Abs(got-want) > 0.002 {
		t.Errorf("majority mean PFD = %.5f, want %.5f", got, want)
	}
}

func TestResultRiskRatioUndefined(t *testing.T) {
	t.Parallel()

	res := &Result{Reps: 10, VersionFaultFree: 10, SystemFaultFree: 10}
	if _, err := res.RiskRatio(); err == nil {
		t.Error("risk ratio with zero denominator succeeded, want error")
	}
}
