package montecarlo

import (
	"testing"

	"diversity/internal/devsim"
	"diversity/internal/faultmodel"
	"diversity/internal/scenario"
)

// Ablation bench for the parallelisation design choice called out in
// DESIGN.md: Monte-Carlo sharding across split PRNG streams vs a single
// worker.

func benchProcess(b *testing.B) devsim.Process {
	b.Helper()
	faults := make([]faultmodel.Fault, 50)
	for i := range faults {
		faults[i] = faultmodel.Fault{P: 0.1, Q: 0.9 / 50}
	}
	fs, err := faultmodel.New(faults)
	if err != nil {
		b.Fatal(err)
	}
	return devsim.NewIndependentProcess(fs)
}

func benchRun(b *testing.B, workers int) {
	b.Helper()
	proc := benchProcess(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{
			Process:  proc,
			Versions: 2,
			Reps:     20000,
			Workers:  workers,
			Seed:     uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunSingleWorker(b *testing.B) { benchRun(b, 1) }

func BenchmarkRunAllCores(b *testing.B) { benchRun(b, 0) }

// Ablation bench for the batched replication kernel: one streaming
// worker on the throughput-headline scenario, per tile width (0 = the
// unbatched dense baseline). b.N counts replications directly.
func benchBatched(b *testing.B, width int) {
	b.Helper()
	sc, err := scenario.CommercialGrade(1)
	if err != nil {
		b.Fatal(err)
	}
	proc := devsim.NewIndependentProcess(sc.FaultSet)
	b.ResetTimer()
	if _, err := Run(Config{
		Process:    proc,
		Versions:   2,
		Reps:       b.N,
		Workers:    1,
		Seed:       1,
		Streaming:  true,
		BatchWidth: width,
	}); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkBatchedWidth0(b *testing.B)   { benchBatched(b, 0) }
func BenchmarkBatchedWidth64(b *testing.B)  { benchBatched(b, 64) }
func BenchmarkBatchedWidth256(b *testing.B) { benchBatched(b, 256) }
