package montecarlo

import (
	"testing"

	"diversity/internal/devsim"
	"diversity/internal/faultmodel"
)

// Ablation bench for the parallelisation design choice called out in
// DESIGN.md: Monte-Carlo sharding across split PRNG streams vs a single
// worker.

func benchProcess(b *testing.B) devsim.Process {
	b.Helper()
	faults := make([]faultmodel.Fault, 50)
	for i := range faults {
		faults[i] = faultmodel.Fault{P: 0.1, Q: 0.9 / 50}
	}
	fs, err := faultmodel.New(faults)
	if err != nil {
		b.Fatal(err)
	}
	return devsim.NewIndependentProcess(fs)
}

func benchRun(b *testing.B, workers int) {
	b.Helper()
	proc := benchProcess(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{
			Process:  proc,
			Versions: 2,
			Reps:     20000,
			Workers:  workers,
			Seed:     uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunSingleWorker(b *testing.B) { benchRun(b, 1) }

func BenchmarkRunAllCores(b *testing.B) { benchRun(b, 0) }
