package montecarlo

import (
	"math/bits"

	"diversity/internal/devsim"
	"diversity/internal/faultmodel"
	"diversity/internal/system"
)

// sparsePFD sums the region probabilities of the faults present in a
// packed mask — the sparse kernel's equivalent of maskPFD. It walks only
// the mask's touched words, so the cost is O(k) in the number of present
// faults regardless of universe size.
func sparsePFD(fs *faultmodel.FaultSet, mask *devsim.Bitset) (pfd float64, count int) {
	for _, tw := range mask.Touched() {
		w := int(tw)
		x := mask.Word(w)
		count += bits.OnesCount64(x)
		for x != 0 {
			pfd += fs.Fault(w<<6 + bits.TrailingZeros64(x)).Q
			x &= x - 1
		}
	}
	return pfd, count
}

// sparseSystemPFD computes the system PFD and defeating-fault count from
// the versions' packed masks. For the 1-out-of-m architecture a fault
// defeats the system only when every version carries it, so the
// intersection is found by AND-ing the other masks onto the touched words
// of the first — again O(k), never O(n). The majority architecture can be
// defeated by faults absent from the first version, so it scans the full
// word range; majority runs are not the sparse kernel's performance
// target, only covered for correctness.
func sparseSystemPFD(fs *faultmodel.FaultSet, arch system.Architecture, masks []*devsim.Bitset) (pfd float64, count int) {
	m := len(masks)
	if arch != system.ArchMajority {
		// 1-out-of-m: intersection of all masks.
		if m == 1 {
			return sparsePFD(fs, masks[0])
		}
		first := masks[0]
		for _, tw := range first.Touched() {
			w := int(tw)
			x := first.Word(w)
			for _, other := range masks[1:] {
				x &= other.Word(w)
				if x == 0 {
					break
				}
			}
			count += bits.OnesCount64(x)
			for x != 0 {
				pfd += fs.Fault(w<<6 + bits.TrailingZeros64(x)).Q
				x &= x - 1
			}
		}
		return pfd, count
	}
	for w := 0; w < masks[0].NumWords(); w++ {
		var union uint64
		for _, mask := range masks {
			union |= mask.Word(w)
		}
		for union != 0 {
			b := bits.TrailingZeros64(union)
			union &^= 1 << uint(b)
			present := 0
			for _, mask := range masks {
				if mask.Word(w)>>uint(b)&1 == 1 {
					present++
				}
			}
			if 2*present > m {
				pfd += fs.Fault(w<<6 + b).Q
				count++
			}
		}
	}
	return pfd, count
}
