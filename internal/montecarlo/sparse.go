package montecarlo

import (
	"math/bits"

	"diversity/internal/devsim"
	"diversity/internal/faultmodel"
)

// sparsePFD sums the region probabilities of the faults present in a
// packed mask — the sparse kernel's equivalent of maskPFD. It walks only
// the mask's touched words, so the cost is O(k) in the number of present
// faults regardless of universe size.
func sparsePFD(fs *faultmodel.FaultSet, mask *devsim.Bitset) (pfd float64, count int) {
	for _, tw := range mask.Touched() {
		w := int(tw)
		x := mask.Word(w)
		count += bits.OnesCount64(x)
		for x != 0 {
			pfd += fs.Fault(w<<6 + bits.TrailingZeros64(x)).Q
			x &= x - 1
		}
	}
	return pfd, count
}

// The system-PFD companion of sparsePFD lives in the system package
// (system.BitsetSystemPFD) since the adjudicator generalisation: dense
// and sparse share one adjudicated reduction routine there.
