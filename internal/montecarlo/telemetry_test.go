package montecarlo

import (
	"context"
	"errors"
	"sync"
	"testing"

	"diversity/internal/telemetry"
)

// TestRunRecordsMetrics asserts a completed run publishes its
// throughput and shard measurements, and that enabling metrics does not
// perturb the sampled populations.
func TestRunRecordsMetrics(t *testing.T) {
	t.Parallel()

	const reps = 20_000
	reg := telemetry.NewRegistry()
	cfg := Config{Process: testProcess(t), Versions: 2, Reps: reps, Workers: 4, Seed: 3}
	plain, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	cfg.Metrics = reg
	metered, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	for i := range plain.SystemPFD {
		if plain.SystemPFD[i] != metered.SystemPFD[i] {
			t.Fatalf("rep %d: metrics perturbed the run", i)
		}
	}

	if got := reg.Counter("montecarlo.replications_total").Value(); got != reps {
		t.Errorf("replications_total = %d, want %d", got, reps)
	}
	snap := reg.Snapshot()
	if rps := snap.Gauges["montecarlo.replications_per_second"]; rps <= 0 {
		t.Errorf("replications_per_second = %v, want > 0", rps)
	}
	imbalance, ok := snap.Gauges["montecarlo.shard_imbalance"]
	if !ok {
		t.Error("shard_imbalance gauge missing for a 4-worker run")
	} else if imbalance < 0 || imbalance > 1 {
		t.Errorf("shard_imbalance = %v, want within [0, 1]", imbalance)
	}
	if d := snap.Histograms["montecarlo.run_duration_seconds"]; d.Count != 1 {
		t.Errorf("run_duration observations = %d, want 1", d.Count)
	}
}

// TestRunRecordsShardSpans asserts a traced run opens one child span per
// worker shard under the provided parent.
func TestRunRecordsShardSpans(t *testing.T) {
	t.Parallel()

	tr := telemetry.NewTrace(telemetry.NewRunID(), "replications")
	cfg := Config{Process: testProcess(t), Versions: 2, Reps: 4_000, Workers: 3, Seed: 5, TraceSpan: tr.Root()}
	if _, err := RunContext(context.Background(), cfg); err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	tr.End()
	if got := len(tr.Snapshot().Root.Children); got != 3 {
		t.Errorf("recorded %d shard spans, want 3", got)
	}
}

// TestCancelledRunRecordsLatency asserts a cancelled run measures the
// latency between cancellation and the workers draining.
func TestCancelledRunRecordsLatency(t *testing.T) {
	t.Parallel()

	reg := telemetry.NewRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	cfg := Config{
		Process:  testProcess(t),
		Versions: 2,
		Reps:     10_000_000,
		Workers:  4,
		Seed:     1,
		Progress: func(done, total int) { once.Do(cancel) },
		Metrics:  reg,
	}
	if _, err := RunContext(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext: err = %v, want context.Canceled", err)
	}
	snap := reg.Snapshot()
	if h := snap.Histograms["montecarlo.cancellation_latency_seconds"]; h.Count != 1 {
		t.Errorf("cancellation latency observations = %d, want 1", h.Count)
	}
}

// TestRareOptsProgressMonotonic asserts the estimators' progress
// contract directly: Done starts at 0, never decreases, includes
// intermediate counts past the context-check boundary, and ends at
// total.
func TestRareOptsProgressMonotonic(t *testing.T) {
	t.Parallel()

	fs := testProcess(t).FaultSet()
	const reps = 20_000
	check := func(t *testing.T, dones []int) {
		t.Helper()
		if len(dones) < 3 {
			t.Fatalf("progress reports = %v, want first/intermediate/final", dones)
		}
		if dones[0] != 0 || dones[len(dones)-1] != reps {
			t.Errorf("progress endpoints = %d..%d, want 0..%d", dones[0], dones[len(dones)-1], reps)
		}
		for i := 1; i < len(dones); i++ {
			if dones[i] < dones[i-1] {
				t.Fatalf("Done regressed: %v", dones)
			}
		}
	}

	var isDones []int
	opts := RareOptions{Progress: func(done, total int) { isDones = append(isDones, done) }}
	if _, err := EstimateRareSystemFaultOpts(context.Background(), fs, 2, reps, 1, 0.3, opts); err != nil {
		t.Fatalf("EstimateRareSystemFaultOpts: %v", err)
	}
	check(t, isDones)

	var naiveDones []int
	opts = RareOptions{Progress: func(done, total int) { naiveDones = append(naiveDones, done) }}
	if _, err := EstimateNaiveSystemFaultOpts(context.Background(), fs, 2, reps, 1, opts); err != nil {
		t.Fatalf("EstimateNaiveSystemFaultOpts: %v", err)
	}
	check(t, naiveDones)
}

// TestRareOptsMatchContextVariants: instrumentation must not change the
// estimates.
func TestRareOptsMatchContextVariants(t *testing.T) {
	t.Parallel()

	fs := testProcess(t).FaultSet()
	reg := telemetry.NewRegistry()
	opts := RareOptions{Progress: func(done, total int) {}, Metrics: reg}
	plain, err := EstimateRareSystemFaultContext(context.Background(), fs, 2, 10_000, 1, 0.3)
	if err != nil {
		t.Fatalf("EstimateRareSystemFaultContext: %v", err)
	}
	metered, err := EstimateRareSystemFaultOpts(context.Background(), fs, 2, 10_000, 1, 0.3, opts)
	if err != nil {
		t.Fatalf("EstimateRareSystemFaultOpts: %v", err)
	}
	if plain != metered {
		t.Errorf("instrumented estimate %+v differs from plain %+v", metered, plain)
	}
	if got := reg.Counter("montecarlo.replications_total").Value(); got != 10_000 {
		t.Errorf("replications_total = %d, want 10000", got)
	}
}
