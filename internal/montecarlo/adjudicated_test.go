package montecarlo

import (
	"context"
	"math"
	"testing"

	"diversity/internal/devsim"
	"diversity/internal/faultmodel"
	"diversity/internal/stats"
	"diversity/internal/system"
)

// TestClosedFormWithinConfidenceInterval is the refactor's acceptance
// check: on the paper-style 4-fault universe, the generalised k-of-N
// closed-form mean (system.MeanSystemPFD, the E19 extension of equation 1)
// must fall inside the simulated mean's confidence interval for the 1oo2
// pair, the 1oo3 triple, and the 2oo3 majority arrangement — on both the
// buffered and the streaming/sparse-capable paths.
func TestClosedFormWithinConfidenceInterval(t *testing.T) {
	t.Parallel()

	fs, err := faultmodel.New([]faultmodel.Fault{
		{P: 0.3, Q: 0.05}, {P: 0.2, Q: 0.08}, {P: 0.15, Q: 0.04}, {P: 0.1, Q: 0.06},
	})
	if err != nil {
		t.Fatalf("faultmodel.New: %v", err)
	}
	proc := devsim.NewIndependentProcess(fs)
	const reps = 120000
	cases := []struct {
		name     string
		versions int
		adj      system.Adjudicator
	}{
		{"1oo2", 2, system.OneOutOfN{}},
		{"1oo3", 3, system.OneOutOfN{}},
		{"2oo3", 3, system.KOutOfN{K: 2, N: 3}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			want, err := system.MeanSystemPFD(fs, tc.adj, tc.versions)
			if err != nil {
				t.Fatalf("MeanSystemPFD: %v", err)
			}
			for _, streaming := range []bool{false, true} {
				res, err := RunContext(context.Background(), Config{
					Process:     proc,
					Versions:    tc.versions,
					Adjudicator: tc.adj,
					Reps:        reps,
					Workers:     2,
					Seed:        11,
					Streaming:   streaming,
				})
				if err != nil {
					t.Fatalf("RunContext(streaming=%v): %v", streaming, err)
				}
				sum, err := res.SystemSummary()
				if err != nil {
					t.Fatalf("SystemSummary: %v", err)
				}
				// 4-sigma band on the mean: a false failure is a ~1-in-16000
				// event, and a real closed-form error of any practical size
				// is hundreds of standard errors wide at 120k replications.
				stderr := sum.StdDev / math.Sqrt(float64(reps))
				if math.Abs(sum.Mean-want) > 4*stderr {
					t.Errorf("streaming=%v: MC mean %v outside closed form %v ± 4·%v",
						streaming, sum.Mean, want, stderr)
				}
				if res.Versions != tc.versions || res.Adjudicator != tc.adj.Name() {
					t.Errorf("result pool = %d/%q, want %d/%q",
						res.Versions, res.Adjudicator, tc.versions, tc.adj.Name())
				}
			}
		})
	}
}

// TestAdjudicatorPathsAgree: the buffered, streaming, and sparse kernels
// must produce the identical per-replication system-PFD sequence for an
// adjudicated pool at a fixed seed (same variate stream, same adjudication
// threshold), mirroring the 1oo2 cross-path guarantees.
func TestAdjudicatorPathsAgree(t *testing.T) {
	t.Parallel()

	fs, err := faultmodel.New([]faultmodel.Fault{
		{P: 0.3, Q: 0.05}, {P: 0.2, Q: 0.08}, {P: 0.15, Q: 0.04}, {P: 0.1, Q: 0.06},
	})
	if err != nil {
		t.Fatalf("faultmodel.New: %v", err)
	}
	proc := devsim.NewIndependentProcess(fs)
	// One worker: buffered and streaming then aggregate in the same
	// replication order, so their moments must agree bit for bit.
	base := Config{
		Process:     proc,
		Versions:    3,
		Adjudicator: system.KOutOfN{K: 2, N: 3},
		Reps:        20000,
		Workers:     1,
		Seed:        23,
	}
	buffered, err := RunContext(context.Background(), base)
	if err != nil {
		t.Fatalf("buffered: %v", err)
	}
	bufSum, err := buffered.SystemSummary()
	if err != nil {
		t.Fatalf("SystemSummary: %v", err)
	}
	bufMean := bufSum.Mean
	// The buffered run also keeps the raw population; its plain mean must
	// agree with the summary to float tolerance.
	plainMean, err := stats.Mean(buffered.SystemPFD)
	if err != nil {
		t.Fatalf("Mean: %v", err)
	}
	if math.Abs(plainMean-bufMean) > 1e-12 {
		t.Errorf("summary mean %v vs plain mean %v diverged beyond tolerance", bufMean, plainMean)
	}

	streamCfg := base
	streamCfg.Streaming = true
	streamed, err := RunContext(context.Background(), streamCfg)
	if err != nil {
		t.Fatalf("streaming: %v", err)
	}
	streamSum, err := streamed.SystemSummary()
	if err != nil {
		t.Fatalf("SystemSummary: %v", err)
	}
	if streamSum.Mean != bufMean {
		t.Errorf("streaming mean %v != buffered mean %v (same seed, same threshold)", streamSum.Mean, bufMean)
	}
	if streamed.SystemFaultFree != buffered.SystemFaultFree {
		t.Errorf("streaming fault-free %d != buffered %d", streamed.SystemFaultFree, buffered.SystemFaultFree)
	}

	// The sparse kernel draws a different variate sequence by design, so
	// only distribution-level agreement is required: its mean must sit
	// within a few standard errors of the buffered estimate.
	sparseCfg := base
	sparseCfg.Streaming = true
	sparseCfg.Sparse = true
	sparse, err := RunContext(context.Background(), sparseCfg)
	if err != nil {
		t.Fatalf("sparse: %v", err)
	}
	if !sparse.Sparse {
		t.Fatal("sparse run fell back to the dense kernel")
	}
	sparseSum, err := sparse.SystemSummary()
	if err != nil {
		t.Fatalf("SystemSummary: %v", err)
	}
	stderr := sparseSum.StdDev / math.Sqrt(float64(base.Reps))
	if math.Abs(sparseSum.Mean-bufMean) > 5*stderr {
		t.Errorf("sparse mean %v too far from buffered %v (stderr %v)", sparseSum.Mean, bufMean, stderr)
	}
}
