package montecarlo

import (
	"fmt"
	"math"

	"diversity/internal/faultmodel"
	"diversity/internal/stats"
)

// Histogram geometry: HistBins log10-spaced bins spanning PFD values from
// 10^histLog10Min to 10^histLog10Max, i.e. histBinsPerDecade bins per
// decade. Quantiles read from the histogram therefore carry a relative
// resolution of 10^(1/histBinsPerDecade) ≈ 7.5% — ample for the
// order-of-magnitude PFD comparisons the reports make, at a fixed 3 KiB
// per histogram regardless of replication count.
const (
	// HistBins is the number of finite log-scale bins of a PFDHistogram.
	HistBins = 384
	// histLog10Min/Max bound the representable positive PFD range
	// [1e-12, 1]; values outside it land in the Under/Over counters.
	histLog10Min = -12
	histLog10Max = 0
	// histBinsPerDecade is the bin density: HistBins spread over the
	// (histLog10Max - histLog10Min) decades of the scale.
	histBinsPerDecade = HistBins / (histLog10Max - histLog10Min)
	// histMinValue/histMaxValue are the value-space scale bounds,
	// 10^histLog10Min and 10^histLog10Max.
	histMinValue = 1e-12
	histMaxValue = 1.0
)

// PFDHistogram is a fixed-size log10-scale histogram of positive PFD
// values, the quantile substrate of streaming runs. Bins are value-width
// multiplicative: bin k covers [10^(min + k/d), 10^(min + (k+1)/d)) with
// d = histBinsPerDecade. Zero PFDs are not observed here — streaming
// aggregation counts them exactly in Agg.Zeros — and values off the scale
// are counted in Under/Over, so N is always the number of positive
// observations.
//
// The zero value is an empty histogram ready to use. A PFDHistogram is
// NOT safe for concurrent use; the Monte-Carlo harness gives each worker
// its own and merges them after the run.
type PFDHistogram struct {
	// Counts holds the per-bin observation counts.
	Counts [HistBins]int64
	// Under counts positive observations below the scale (PFD < 1e-12);
	// Over counts observations above it (PFD > 1, which a valid model
	// cannot produce but floating-point summation may graze).
	Under, Over int64
	// N is the total number of observations, including Under and Over.
	N int64
}

// histBinIndex maps a positive value on the scale to its bin.
func histBinIndex(v float64) int {
	idx := int(math.Floor((math.Log10(v) - histLog10Min) * histBinsPerDecade))
	if idx < 0 {
		idx = 0
	}
	if idx >= HistBins {
		idx = HistBins - 1
	}
	return idx
}

// histBinLo returns the lower value edge of bin idx.
func histBinLo(idx int) float64 {
	return math.Pow(10, histLog10Min+float64(idx)/histBinsPerDecade)
}

// Observe records one positive observation.
func (h *PFDHistogram) Observe(v float64) {
	h.N++
	switch {
	case v < histMinValue:
		h.Under++
	case v > histMaxValue:
		h.Over++
	default:
		h.Counts[histBinIndex(v)]++
	}
}

// Merge adds another histogram's counts into h.
func (h *PFDHistogram) Merge(o *PFDHistogram) {
	for i := range h.Counts {
		h.Counts[i] += o.Counts[i]
	}
	h.Under += o.Under
	h.Over += o.Over
	h.N += o.N
}

// Agg is the streaming aggregate of one PFD population: mergeable
// first-four moments, exact min/max and zero-count, and a log-scale
// histogram for quantiles. It is the constant-memory replacement for a
// []float64 sample — observing a value is a handful of float operations
// and never allocates.
//
// The zero value is an empty aggregate ready to use. An Agg is NOT safe
// for concurrent use; the harness keeps one per worker shard and merges
// them, in shard order, after all workers drain.
type Agg struct {
	// Moments accumulates mean, variance, skewness and kurtosis.
	Moments stats.Moments
	// Min and Max are the exact extremes of the observations (0 until the
	// first Observe).
	Min, Max float64
	// Zeros counts observations that were exactly 0 — the fault-free
	// outcomes, kept out of the log-scale histogram.
	Zeros int64
	// Hist is the log-scale histogram of the positive observations.
	Hist PFDHistogram
}

// Observe folds one PFD value into the aggregate.
func (a *Agg) Observe(v float64) {
	if a.Moments.N() == 0 {
		a.Min, a.Max = v, v
	} else {
		if v < a.Min {
			a.Min = v
		}
		if v > a.Max {
			a.Max = v
		}
	}
	a.Moments.Add(v)
	if v == 0 {
		a.Zeros++
	} else {
		a.Hist.Observe(v)
	}
}

// N returns the number of observations folded in.
func (a *Agg) N() int64 { return a.Moments.N() }

// Merge combines another aggregate into a, as if every observation of b
// had been Observed by a (moments up to floating-point rounding; counts,
// min and max exactly).
func (a *Agg) Merge(b *Agg) {
	if b.Moments.N() == 0 {
		return
	}
	if a.Moments.N() == 0 {
		*a = *b
		return
	}
	if b.Min < a.Min {
		a.Min = b.Min
	}
	if b.Max > a.Max {
		a.Max = b.Max
	}
	a.Moments.Merge(b.Moments)
	a.Zeros += b.Zeros
	a.Hist.Merge(&b.Hist)
}

// Quantile returns the approximate p-th quantile of the aggregated
// population: exact for p = 0 and p = 1 (the tracked min/max) and for
// ranks inside the exact zero-count, histogram-resolution (≈7.5%
// relative) elsewhere, using log-linear interpolation inside the bin the
// target rank falls in. It returns an error for an empty aggregate or p
// outside [0, 1].
func (a *Agg) Quantile(p float64) (float64, error) {
	n := a.Moments.N()
	if n == 0 {
		return 0, stats.ErrEmptySample
	}
	if math.IsNaN(p) || p < 0 || p > 1 {
		return 0, fmt.Errorf("montecarlo: quantile requires p in [0, 1], got %v", p)
	}
	// The extremes are tracked exactly; the histogram is only consulted
	// for interior ranks.
	if p == 0 {
		return a.Min, nil
	}
	if p == 1 {
		return a.Max, nil
	}
	// Target the same continuous rank as the sample quantile
	// (Hyndman–Fan type 7): h = p(n-1) over ranks 0..n-1.
	target := p * float64(n-1)
	clamp := func(v float64) float64 {
		if v < a.Min {
			return a.Min
		}
		if v > a.Max {
			return a.Max
		}
		return v
	}
	// Walk the population in value order: exact zeros, sub-scale values,
	// the log-scale bins, then above-scale values.
	cum := float64(a.Zeros)
	if target < cum {
		return 0, nil
	}
	cum += float64(a.Hist.Under)
	if target < cum {
		return clamp(histBinLo(0)), nil
	}
	for i := range a.Hist.Counts {
		c := float64(a.Hist.Counts[i])
		if c == 0 {
			continue
		}
		if target < cum+c {
			lo, hi := histBinLo(i), histBinLo(i+1)
			frac := (target - cum) / c
			return clamp(lo * math.Pow(hi/lo, frac)), nil
		}
		cum += c
	}
	return a.Max, nil
}

// Summary returns the aggregate's descriptive statistics in the same
// shape the buffered path reports: exact N, mean, standard deviation,
// skewness, kurtosis, min and max; median and upper percentiles at
// histogram resolution. It returns an error for an empty aggregate.
func (a *Agg) Summary() (stats.Summary, error) {
	n := a.Moments.N()
	if n == 0 {
		return stats.Summary{}, stats.ErrEmptySample
	}
	s := stats.Summary{
		N:        int(n),
		Mean:     a.Moments.Mean(),
		Min:      a.Min,
		Max:      a.Max,
		Skewness: a.Moments.Skewness(),
		Kurtosis: a.Moments.Kurtosis(),
	}
	if n >= 2 {
		sd, err := a.Moments.StdDev()
		if err != nil {
			return stats.Summary{}, err
		}
		s.StdDev = sd
	}
	for _, q := range []struct {
		p   float64
		dst *float64
	}{{0.5, &s.Median}, {0.05, &s.Q05}, {0.95, &s.Q95}, {0.99, &s.Q99}} {
		v, err := a.Quantile(q.p)
		if err != nil {
			return stats.Summary{}, err
		}
		*q.dst = v
	}
	return s, nil
}

// maskPFD sums the region probabilities of the faults present in a mask —
// the streaming fast path's equivalent of Version.PFD, summing in the
// same index order so values are bitwise identical.
func maskPFD(fs *faultmodel.FaultSet, present []bool) (pfd float64, count int) {
	for i, has := range present {
		if has {
			pfd += fs.Fault(i).Q
			count++
		}
	}
	return pfd, count
}

// The system-PFD companion of maskPFD lives in the system package
// (system.MaskSystemPFD) since the adjudicator generalisation: dense and
// sparse share one adjudicated reduction routine there.
