package montecarlo

import (
	"context"
	"math"
	"sync"
	"testing"

	"diversity/internal/devsim"
	"diversity/internal/faultmodel"
	"diversity/internal/scenario"
	"diversity/internal/system"
	"diversity/internal/telemetry"
)

// assertBatchedMatchesDense runs the same configuration unbatched and
// batched and requires the version and system PFD moments to agree
// within 4 sigma of the Monte-Carlo error — the statistical-equivalence
// gate for a kernel that deliberately draws a different variate
// sequence (the same contract the sparse kernel passes).
func assertBatchedMatchesDense(t *testing.T, cfg Config, width int) {
	t.Helper()
	dense := cfg
	dense.BatchWidth = 0
	batched := cfg
	batched.BatchWidth = width

	dres, err := Run(dense)
	if err != nil {
		t.Fatalf("dense Run: %v", err)
	}
	bres, err := Run(batched)
	if err != nil {
		t.Fatalf("batched Run: %v", err)
	}
	if dres.Batched {
		t.Fatal("unbatched result claims the batched kernel ran")
	}
	if !bres.Batched {
		t.Fatal("batched result reports a fallback for a BatchDeveloper process")
	}
	if bres.BatchWidth < 1 || bres.BatchWidth > width {
		t.Fatalf("batched result reports width %d for a request of %d", bres.BatchWidth, width)
	}
	for _, pop := range []struct {
		name   string
		system bool
	}{{"version", false}, {"system", true}} {
		dSum := summaryMoments(t, dres, pop.system)
		bSum := summaryMoments(t, bres, pop.system)
		dVar := dSum.StdDev * dSum.StdDev
		bVar := bSum.StdDev * bSum.StdDev
		if dSum.N != cfg.Reps || bSum.N != cfg.Reps {
			t.Fatalf("%s: N dense=%d batched=%d, want %d", pop.name, dSum.N, bSum.N, cfg.Reps)
		}
		seMean := math.Sqrt(dVar/float64(dSum.N) + bVar/float64(bSum.N))
		if diff := math.Abs(dSum.Mean - bSum.Mean); diff > 4*seMean+1e-15 {
			t.Errorf("%s mean: dense %v vs batched %v, |diff| %v > 4σ %v",
				pop.name, dSum.Mean, bSum.Mean, diff, 4*seMean)
		}
		// Kurtosis-aware variance band; see assertSparseMatchesDense.
		if dVar > 0 && bVar > 0 {
			seVar := math.Sqrt(dVar*dVar*(dSum.Kurtosis+2)/float64(dSum.N) +
				bVar*bVar*(bSum.Kurtosis+2)/float64(bSum.N))
			if diff := math.Abs(dVar - bVar); diff > 4*seVar {
				t.Errorf("%s variance: dense %v vs batched %v, |diff| %v > 4σ %v",
					pop.name, dVar, bVar, diff, 4*seVar)
			}
		}
	}
}

// TestBatchedMatchesDenseCommercialGrade: the acceptance scenario the
// bench headline is measured on.
func TestBatchedMatchesDenseCommercialGrade(t *testing.T) {
	t.Parallel()

	sc, err := scenario.CommercialGrade(1)
	if err != nil {
		t.Fatalf("CommercialGrade: %v", err)
	}
	proc := devsim.NewIndependentProcess(sc.FaultSet)
	for _, streaming := range []bool{false, true} {
		for _, width := range []int{8, 64} {
			assertBatchedMatchesDense(t, Config{
				Process: proc, Versions: 2, Reps: 30000, Seed: 42, Workers: 4,
				Streaming: streaming,
			}, width)
		}
	}
}

// TestBatchedMatchesDenseNVersionPool: the adjudicated pool scenario —
// majority voting over a correlated-regime fault set.
func TestBatchedMatchesDenseNVersionPool(t *testing.T) {
	t.Parallel()

	sc, err := scenario.NVersionPool(1)
	if err != nil {
		t.Fatalf("NVersionPool: %v", err)
	}
	proc := devsim.NewIndependentProcess(sc.FaultSet)
	assertBatchedMatchesDense(t, Config{
		Process: proc, Versions: 3, Arch: system.ArchMajority,
		Reps: 30000, Seed: 7, Workers: 4, Streaming: true,
	}, 64)
}

// TestBatchedMatchesDenseCorrelatedProcesses: every process with a
// DevelopBatch implementation passes the same equivalence gate.
func TestBatchedMatchesDenseCorrelatedProcesses(t *testing.T) {
	t.Parallel()

	fs, err := faultmodel.New([]faultmodel.Fault{
		{P: 0.2, Q: 0.05}, {P: 0.4, Q: 0.1}, {P: 0.1, Q: 0.2}, {P: 0.3, Q: 0.02},
	})
	if err != nil {
		t.Fatalf("faultmodel.New: %v", err)
	}
	cc, err := devsim.NewCommonCauseProcess(fs, 0.2, 2)
	if err != nil {
		t.Fatalf("NewCommonCauseProcess: %v", err)
	}
	rs, err := devsim.NewResourceShiftProcess(fs, 0.5)
	if err != nil {
		t.Fatalf("NewResourceShiftProcess: %v", err)
	}
	tied, err := devsim.NewTiedPairsProcess(fs, [][2]int{{0, 2}})
	if err != nil {
		t.Fatalf("NewTiedPairsProcess: %v", err)
	}
	for _, proc := range []devsim.Process{cc, rs, tied} {
		assertBatchedMatchesDense(t, Config{
			Process: proc, Versions: 2, Reps: 20000, Seed: 11, Workers: 3,
			Streaming: true,
		}, 32)
	}
}

// TestBatchedBufferedMatchesBatchedStreaming: both aggregation modes of
// the batched kernel draw the same variates, so for a fixed seed,
// worker count and width the streaming aggregates must describe exactly
// the buffered population.
func TestBatchedBufferedMatchesBatchedStreaming(t *testing.T) {
	t.Parallel()

	proc := devsim.NewIndependentProcess(groupedFaultSet(t, 1000))
	for _, workers := range []int{1, 3} {
		cfg := Config{
			Process: proc, Versions: 2, Reps: 4000, Seed: 9, Workers: workers,
			BatchWidth: 64,
		}
		bres, err := Run(cfg)
		if err != nil {
			t.Fatalf("batched buffered Run: %v", err)
		}
		cfg.Streaming = true
		sres, err := Run(cfg)
		if err != nil {
			t.Fatalf("batched streaming Run: %v", err)
		}
		if !bres.Batched || !sres.Batched {
			t.Fatal("batched kernel did not run")
		}
		if bres.VersionFaultFree != sres.VersionFaultFree || bres.SystemFaultFree != sres.SystemFaultFree {
			t.Errorf("workers=%d: fault-free counts diverged", workers)
		}
		for _, pop := range []struct {
			name   string
			sample []float64
			agg    *Agg
		}{
			{"version", bres.VersionPFD, sres.VersionAgg},
			{"system", bres.SystemPFD, sres.SystemAgg},
		} {
			var want Agg
			for _, v := range pop.sample {
				want.Observe(v)
			}
			if want.Moments.Mean() != pop.agg.Moments.Mean() && workers == 1 {
				t.Errorf("workers=1 %s: single-shard mean not bitwise identical: %v vs %v",
					pop.name, want.Moments.Mean(), pop.agg.Moments.Mean())
			}
			if want.Min != pop.agg.Min || want.Max != pop.agg.Max || want.Zeros != pop.agg.Zeros {
				t.Errorf("workers=%d %s: extremes/zeros diverged", workers, pop.name)
			}
			if want.Hist != pop.agg.Hist {
				t.Errorf("workers=%d %s: histograms diverged", workers, pop.name)
			}
		}
	}
}

// TestSparseBatchedByteIdenticalToSparse: in sparse mode the batched
// harness only tiles the evaluation — the draw sequence is the plain
// sparse kernel's — so results must be bitwise identical to
// BatchWidth = 0, in both aggregation modes.
func TestSparseBatchedByteIdenticalToSparse(t *testing.T) {
	t.Parallel()

	proc := devsim.NewIndependentProcess(groupedFaultSet(t, 1000))
	for _, streaming := range []bool{false, true} {
		cfg := Config{
			Process: proc, Versions: 2, Reps: 5000, Seed: 13, Workers: 3,
			Sparse: true, Streaming: streaming,
		}
		plain, err := Run(cfg)
		if err != nil {
			t.Fatalf("sparse Run: %v", err)
		}
		cfg.BatchWidth = 64
		batched, err := Run(cfg)
		if err != nil {
			t.Fatalf("sparse batched Run: %v", err)
		}
		if !batched.Batched || !batched.Sparse {
			t.Fatal("sparse batched run did not report both kernels")
		}
		if plain.SparseSkips != batched.SparseSkips {
			t.Errorf("skip counts diverged: plain %d, batched %d", plain.SparseSkips, batched.SparseSkips)
		}
		if plain.VersionFaultFree != batched.VersionFaultFree || plain.SystemFaultFree != batched.SystemFaultFree {
			t.Error("fault-free counts diverged")
		}
		if streaming {
			if *plain.VersionAgg != *batched.VersionAgg || *plain.SystemAgg != *batched.SystemAgg {
				t.Error("streaming aggregates not bitwise identical")
			}
			continue
		}
		for rep := range plain.VersionPFD {
			if plain.VersionPFD[rep] != batched.VersionPFD[rep] || plain.SystemPFD[rep] != batched.SystemPFD[rep] {
				t.Fatalf("rep %d: PFDs diverged", rep)
			}
		}
	}
}

// TestBatchWidthOffIsByteIdenticalToDense: widths 0 and 1 must leave
// the existing paths untouched — the fixed-seed golden contract.
func TestBatchWidthOffIsByteIdenticalToDense(t *testing.T) {
	t.Parallel()

	proc := devsim.NewIndependentProcess(groupedFaultSet(t, 200))
	base := Config{Process: proc, Versions: 2, Reps: 3000, Seed: 21, Workers: 2}
	want, err := Run(base)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, width := range []int{0, 1} {
		cfg := base
		cfg.BatchWidth = width
		got, err := Run(cfg)
		if err != nil {
			t.Fatalf("BatchWidth=%d Run: %v", width, err)
		}
		if got.Batched || got.BatchWidth != 0 {
			t.Fatalf("BatchWidth=%d: batched kernel reported active", width)
		}
		for rep := range want.VersionPFD {
			if want.VersionPFD[rep] != got.VersionPFD[rep] || want.SystemPFD[rep] != got.SystemPFD[rep] {
				t.Fatalf("BatchWidth=%d rep %d: PFDs diverged from dense", width, rep)
			}
		}
	}
}

// TestBatchedFallbackProcess: a process with neither bitset kernel runs
// dense (and says so) rather than failing.
func TestBatchedFallbackProcess(t *testing.T) {
	t.Parallel()

	proc := opaqueProcess{inner: testProcess(t)}
	res, err := Run(Config{
		Process: proc, Versions: 2, Reps: 500, Seed: 5, Workers: 2, BatchWidth: 64,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Batched || res.BatchWidth != 0 {
		t.Error("fallback run reports the batched kernel as active")
	}
}

// TestBatchWidthValidation: negative widths are configuration errors in
// the harness and both rare-event estimators.
func TestBatchWidthValidation(t *testing.T) {
	t.Parallel()

	if _, err := Run(Config{
		Process: testProcess(t), Versions: 2, Reps: 100, Seed: 1, BatchWidth: -1,
	}); err == nil {
		t.Error("Run accepted a negative batch width")
	}
	fs := groupedFaultSet(t, 10)
	ctx := context.Background()
	if _, err := EstimateRareSystemFaultOpts(ctx, fs, 2, 100, 1, 0.3, RareOptions{BatchWidth: -1}); err == nil {
		t.Error("tilted estimator accepted a negative batch width")
	}
	if _, err := EstimateNaiveSystemFaultOpts(ctx, fs, 2, 100, 1, RareOptions{BatchWidth: -1}); err == nil {
		t.Error("naive estimator accepted a negative batch width")
	}
}

func TestEffectiveBatchWidth(t *testing.T) {
	t.Parallel()

	// Small universes keep the requested width.
	if got := effectiveBatchWidth(256, 2, 40); got != 256 {
		t.Errorf("effectiveBatchWidth(256, 2, 40) = %d, want 256", got)
	}
	// A million-fault universe clamps wide tiles to the arena budget
	// (versions column arenas plus one arena-equivalent of mask rows).
	n := 1 << 20
	words := (n + 63) / 64
	budget := maxBatchArenaWords / (3 * words)
	if got := effectiveBatchWidth(1024, 2, n); got != budget {
		t.Errorf("effectiveBatchWidth(1024, 2, %d) = %d, want %d", n, got, budget)
	}
	// The clamp never drops below one column.
	if got := effectiveBatchWidth(64, 1<<10, 1<<22); got != 1 {
		t.Errorf("effectiveBatchWidth over-budget = %d, want 1", got)
	}
}

// TestBatchedCancellation: the shared chunk loop's context check still
// cancels a batched run promptly.
func TestBatchedCancellation(t *testing.T) {
	t.Parallel()

	proc := devsim.NewIndependentProcess(groupedFaultSet(t, 1000))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	_, err := RunContext(ctx, Config{
		Process: proc, Versions: 2, Reps: 50_000_000, Workers: 2, Seed: 3,
		Streaming: true, BatchWidth: 64,
		Progress: func(done, total int) { once.Do(cancel) },
	})
	if err == nil {
		t.Fatal("cancelled batched run completed")
	}
}

// TestBatchedNoPerRepAllocations: the batched streaming path must keep
// the allocation-free hot loop — the arena is built once per worker at
// run start.
func TestBatchedNoPerRepAllocations(t *testing.T) {
	// Not parallel: allocation counting needs a quiet goroutine.
	const reps = 20000
	cfg := Config{
		Process:  devsim.NewIndependentProcess(groupedFaultSet(t, 1000)),
		Versions: 2, Reps: reps, Seed: 1, Workers: 1,
		Streaming: true, BatchWidth: 64,
	}
	// Warm up the lazily-built thresholds outside the counted runs.
	if _, err := Run(cfg); err != nil {
		t.Fatalf("warm-up Run: %v", err)
	}
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := Run(cfg); err != nil {
			t.Fatalf("Run: %v", err)
		}
	})
	// The per-run overhead includes the one-time column arena:
	// versions × width bitsets at a few objects each, built once per
	// worker at run start. Nothing may scale with reps — one allocation
	// per replication would cost 20000 here.
	if allocs > 1000 {
		t.Errorf("batched streaming run of %d reps allocated %v objects, want run-level overhead only (<= 1000)", reps, allocs)
	}
}

func TestBatchedMetrics(t *testing.T) {
	t.Parallel()

	reg := telemetry.NewRegistry()
	PreRegisterMetrics(reg)
	snap := reg.Snapshot()
	for _, mode := range []string{"dense", "sparse", "batched"} {
		if _, ok := snap.Gauges["montecarlo.replications_per_second."+mode]; !ok {
			t.Errorf("replications_per_second.%s not pre-registered", mode)
		}
	}
	if _, ok := snap.Gauges["montecarlo.batch_width"]; !ok {
		t.Error("batch_width not pre-registered")
	}

	proc := devsim.NewIndependentProcess(groupedFaultSet(t, 1000))
	res, err := Run(Config{
		Process: proc, Versions: 2, Reps: 5000, Seed: 3, Workers: 2,
		Streaming: true, BatchWidth: 64, Metrics: reg,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Batched {
		t.Fatal("batched kernel did not run")
	}
	snap = reg.Snapshot()
	if snap.Gauges["montecarlo.replications_per_second.batched"] <= 0 {
		t.Error("replications_per_second.batched not set after a batched run")
	}
	if got := snap.Gauges["montecarlo.batch_width"]; got != float64(res.BatchWidth) {
		t.Errorf("batch_width = %v, result reports %d", got, res.BatchWidth)
	}
	if snap.Gauges["montecarlo.replications_per_second.dense"] != 0 {
		t.Error("dense-mode gauge moved during a batched run")
	}
	if snap.Gauges["montecarlo.replications_per_second.sparse"] != 0 {
		t.Error("sparse-mode gauge moved during a batched run")
	}
}

// TestBatchedRareEstimators: the batched rare-event loops must agree
// with the closed form 1 - Π(1-p_i^m), like the sparse kernels do.
func TestBatchedRareEstimators(t *testing.T) {
	t.Parallel()

	m := 2
	small := make([]faultmodel.Fault, 0, 30)
	for _, p := range []float64{0.003, 0.002, 0.001} {
		for i := 0; i < 10; i++ {
			small = append(small, faultmodel.Fault{P: p, Q: 0.001})
		}
	}
	sfs, err := faultmodel.New(small)
	if err != nil {
		t.Fatalf("faultmodel.New: %v", err)
	}
	exact := 1.0
	for i := 0; i < sfs.N(); i++ {
		exact *= 1 - math.Pow(sfs.Fault(i).P, float64(m))
	}
	exact = 1 - exact

	ctx := context.Background()
	est, err := EstimateRareSystemFaultOpts(ctx, sfs, m, 40000, 17, 0.3, RareOptions{BatchWidth: 64})
	if err != nil {
		t.Fatalf("batched tilted estimator: %v", err)
	}
	if diff := math.Abs(est.Probability - exact); diff > 5*est.StdErr+1e-12 {
		t.Errorf("batched tilted estimate %v, exact %v (|diff| %v > 5·SE %v)",
			est.Probability, exact, diff, 5*est.StdErr)
	}
	if est.HitFraction <= 0 {
		t.Error("batched tilted estimator recorded no hits under the tilted measure")
	}

	naive, err := EstimateNaiveSystemFaultOpts(ctx, groupedFaultSet(t, 100), m, 200000, 19, RareOptions{BatchWidth: 64})
	if err != nil {
		t.Fatalf("batched naive estimator: %v", err)
	}
	fs := groupedFaultSet(t, 100)
	exactNaive := 1.0
	for i := 0; i < fs.N(); i++ {
		exactNaive *= 1 - math.Pow(fs.Fault(i).P, float64(m))
	}
	exactNaive = 1 - exactNaive
	if diff := math.Abs(naive.Probability - exactNaive); diff > 5*naive.StdErr+5e-4 {
		t.Errorf("batched naive estimate %v, exact %v", naive.Probability, exactNaive)
	}

	// Sparse wins when both kernels are requested: fixed-seed output must
	// equal the sparse-only run bit for bit.
	sp, err := EstimateRareSystemFaultOpts(ctx, sfs, m, 4096, 17, 0.3, RareOptions{Sparse: true})
	if err != nil {
		t.Fatalf("sparse tilted estimator: %v", err)
	}
	both, err := EstimateRareSystemFaultOpts(ctx, sfs, m, 4096, 17, 0.3, RareOptions{Sparse: true, BatchWidth: 64})
	if err != nil {
		t.Fatalf("sparse+batched tilted estimator: %v", err)
	}
	if sp != both {
		t.Errorf("sparse+batched rare estimate %+v differs from sparse %+v", both, sp)
	}
}
