package montecarlo

import (
	"context"
	"math"
	"sort"
	"testing"

	"diversity/internal/devsim"
	"diversity/internal/faultmodel"
	"diversity/internal/randx"
	"diversity/internal/stats"
	"diversity/internal/system"
)

// opaqueProcess hides any MaskDeveloper implementation of the wrapped
// process, forcing the streaming fallback path that develops full
// Versions.
type opaqueProcess struct {
	inner devsim.Process
}

func (p opaqueProcess) Develop(r *randx.Stream) *devsim.Version { return p.inner.Develop(r) }
func (p opaqueProcess) FaultSet() *faultmodel.FaultSet          { return p.inner.FaultSet() }

// closeRel fails unless got is within relative tolerance tol of want.
func closeRel(t *testing.T, label string, want, got, tol float64) {
	t.Helper()
	diff := math.Abs(want - got)
	scale := math.Max(math.Abs(want), math.Abs(got))
	if scale == 0 {
		if diff != 0 {
			t.Errorf("%s: want %v, got %v", label, want, got)
		}
		return
	}
	if diff/scale > tol {
		t.Errorf("%s: want %v, got %v (relative error %.3g > %.3g)", label, want, got, diff/scale, tol)
	}
}

// assertStreamingMatchesBuffered runs the same configuration in both
// aggregation modes and checks that the streaming aggregates describe
// exactly the population the buffered run sampled.
func assertStreamingMatchesBuffered(t *testing.T, cfg Config) {
	t.Helper()
	buffered := cfg
	buffered.Streaming = false
	streaming := cfg
	streaming.Streaming = true

	bres, err := Run(buffered)
	if err != nil {
		t.Fatalf("buffered Run: %v", err)
	}
	sres, err := Run(streaming)
	if err != nil {
		t.Fatalf("streaming Run: %v", err)
	}
	if bres.Streaming || !sres.Streaming {
		t.Fatalf("Streaming flags: buffered %v, streaming %v", bres.Streaming, sres.Streaming)
	}
	if sres.VersionPFD != nil || sres.SystemPFD != nil {
		t.Error("streaming result carries raw samples")
	}
	if sres.VersionAgg == nil || sres.SystemAgg == nil {
		t.Fatal("streaming result missing aggregates")
	}
	if sres.VersionFaultFree != bres.VersionFaultFree || sres.SystemFaultFree != bres.SystemFaultFree {
		t.Errorf("fault-free counts: streaming (%d, %d), buffered (%d, %d)",
			sres.VersionFaultFree, sres.SystemFaultFree, bres.VersionFaultFree, bres.SystemFaultFree)
	}

	for _, pop := range []struct {
		name   string
		sample []float64
		agg    *Agg
	}{
		{"version", bres.VersionPFD, sres.VersionAgg},
		{"system", bres.SystemPFD, sres.SystemAgg},
	} {
		if got, want := pop.agg.N(), int64(len(pop.sample)); got != want {
			t.Errorf("%s agg N = %d, want %d", pop.name, got, want)
		}
		mean, err := stats.Mean(pop.sample)
		if err != nil {
			t.Fatalf("Mean: %v", err)
		}
		variance, err := stats.Variance(pop.sample)
		if err != nil {
			t.Fatalf("Variance: %v", err)
		}
		aggVar, err := pop.agg.Moments.Variance()
		if err != nil {
			t.Fatalf("%s agg Variance: %v", pop.name, err)
		}
		closeRel(t, pop.name+" mean", mean, pop.agg.Moments.Mean(), 1e-12)
		closeRel(t, pop.name+" variance", variance, aggVar, 1e-12)

		sorted := append([]float64(nil), pop.sample...)
		sort.Float64s(sorted)
		if pop.agg.Min != sorted[0] || pop.agg.Max != sorted[len(sorted)-1] {
			t.Errorf("%s agg extremes (%v, %v), sample extremes (%v, %v)",
				pop.name, pop.agg.Min, pop.agg.Max, sorted[0], sorted[len(sorted)-1])
		}
		zeros := int64(0)
		for _, x := range pop.sample {
			if x == 0 {
				zeros++
			}
		}
		if pop.agg.Zeros != zeros {
			t.Errorf("%s agg zeros = %d, sample zeros = %d", pop.name, pop.agg.Zeros, zeros)
		}
	}
}

func TestStreamingMatchesBuffered(t *testing.T) {
	t.Parallel()

	proc := testProcess(t)
	for _, workers := range []int{1, 2, 3, 8} {
		assertStreamingMatchesBuffered(t, Config{
			Process: proc, Versions: 2, Reps: 4000, Seed: 42, Workers: workers,
		})
	}
}

func TestStreamingMatchesBufferedMajority(t *testing.T) {
	t.Parallel()

	assertStreamingMatchesBuffered(t, Config{
		Process: testProcess(t), Versions: 3, Arch: system.ArchMajority,
		Reps: 3000, Seed: 7, Workers: 4,
	})
}

func TestStreamingMatchesBufferedCorrelated(t *testing.T) {
	t.Parallel()

	fs, err := faultmodel.New([]faultmodel.Fault{
		{P: 0.2, Q: 0.05}, {P: 0.4, Q: 0.1}, {P: 0.1, Q: 0.2}, {P: 0.3, Q: 0.02},
	})
	if err != nil {
		t.Fatalf("faultmodel.New: %v", err)
	}
	cc, err := devsim.NewCommonCauseProcess(fs, 0.2, 2)
	if err != nil {
		t.Fatalf("NewCommonCauseProcess: %v", err)
	}
	rs, err := devsim.NewResourceShiftProcess(fs, 0.5)
	if err != nil {
		t.Fatalf("NewResourceShiftProcess: %v", err)
	}
	tied, err := devsim.NewTiedPairsProcess(fs, [][2]int{{0, 2}})
	if err != nil {
		t.Fatalf("NewTiedPairsProcess: %v", err)
	}
	for _, proc := range []devsim.Process{cc, rs, tied} {
		assertStreamingMatchesBuffered(t, Config{
			Process: proc, Versions: 2, Reps: 3000, Seed: 11, Workers: 3,
		})
	}
}

// TestStreamingFallbackProcess exercises the constant-memory path for
// processes without the MaskDeveloper extension: the sampled population
// must still match the buffered run exactly.
func TestStreamingFallbackProcess(t *testing.T) {
	t.Parallel()

	proc := opaqueProcess{inner: testProcess(t)}
	if _, ok := devsim.Process(proc).(devsim.MaskDeveloper); ok {
		t.Fatal("opaqueProcess must not implement MaskDeveloper")
	}
	assertStreamingMatchesBuffered(t, Config{
		Process: proc, Versions: 2, Reps: 3000, Seed: 5, Workers: 2,
	})
}

// TestAggMergeChunkingInvariant folds one fixed value sequence through
// differently-chunked aggregates and requires the merged moments and
// histogram to agree: the property that makes the per-worker reduction
// independent of how replications were sharded.
func TestAggMergeChunkingInvariant(t *testing.T) {
	t.Parallel()

	r := randx.NewStream(99)
	values := make([]float64, 5000)
	for i := range values {
		switch {
		case r.Float64() < 0.1:
			values[i] = 0
		default:
			// Log-uniform over about six decades.
			values[i] = math.Pow(10, -7+6*r.Float64())
		}
	}

	var whole Agg
	for _, v := range values {
		whole.Observe(v)
	}

	for _, chunks := range []int{2, 3, 7, 16} {
		var merged Agg
		per := (len(values) + chunks - 1) / chunks
		for lo := 0; lo < len(values); lo += per {
			hi := min(lo+per, len(values))
			var part Agg
			for _, v := range values[lo:hi] {
				part.Observe(v)
			}
			merged.Merge(&part)
		}
		if merged.N() != whole.N() || merged.Zeros != whole.Zeros {
			t.Fatalf("%d chunks: counts (%d, %d), want (%d, %d)",
				chunks, merged.N(), merged.Zeros, whole.N(), whole.Zeros)
		}
		if merged.Min != whole.Min || merged.Max != whole.Max {
			t.Errorf("%d chunks: extremes diverged", chunks)
		}
		closeRel(t, "merged mean", whole.Moments.Mean(), merged.Moments.Mean(), 1e-12)
		closeRel(t, "merged popvar", whole.Moments.PopulationVariance(), merged.Moments.PopulationVariance(), 1e-12)
		closeRel(t, "merged skewness", whole.Moments.Skewness(), merged.Moments.Skewness(), 1e-9)
		closeRel(t, "merged kurtosis", whole.Moments.Kurtosis(), merged.Moments.Kurtosis(), 1e-9)
		if merged.Hist != whole.Hist {
			t.Errorf("%d chunks: histograms diverged", chunks)
		}
	}
}

// TestAggQuantilesVsSample checks the histogram quantiles against exact
// sorted-sample quantiles: agreement within the histogram's relative bin
// resolution, and exactness at the tracked extremes.
func TestAggQuantilesVsSample(t *testing.T) {
	t.Parallel()

	r := randx.NewStream(123)
	values := make([]float64, 20000)
	var agg Agg
	for i := range values {
		v := 0.0
		if r.Float64() >= 0.15 {
			v = math.Pow(10, -6+4*r.Float64())
		}
		values[i] = v
		agg.Observe(v)
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)

	if v, err := agg.Quantile(0); err != nil || v != sorted[0] {
		t.Errorf("Quantile(0) = (%v, %v), want exact min %v", v, err, sorted[0])
	}
	if v, err := agg.Quantile(1); err != nil || v != sorted[len(sorted)-1] {
		t.Errorf("Quantile(1) = (%v, %v), want exact max %v", v, err, sorted[len(sorted)-1])
	}
	// One histogram bin spans a factor of 10^(1/32) ≈ 1.075; allow two
	// bins of slack for interpolation and rank rounding.
	tol := math.Pow(10, 2.0/histBinsPerDecade) - 1
	for _, p := range []float64{0.05, 0.25, 0.5, 0.9, 0.95, 0.99} {
		exact, err := stats.Quantile(values, p)
		if err != nil {
			t.Fatalf("stats.Quantile(%v): %v", p, err)
		}
		got, err := agg.Quantile(p)
		if err != nil {
			t.Fatalf("agg.Quantile(%v): %v", p, err)
		}
		if exact == 0 {
			if got != 0 {
				t.Errorf("Quantile(%v) = %v, want 0 (rank inside the zero mass)", p, got)
			}
			continue
		}
		closeRel(t, "quantile", exact, got, tol)
	}

	if _, err := agg.Quantile(1.5); err == nil {
		t.Error("Quantile(1.5) succeeded, want error")
	}
	var empty Agg
	if _, err := empty.Quantile(0.5); err == nil {
		t.Error("empty Quantile succeeded, want error")
	}
	if _, err := empty.Summary(); err == nil {
		t.Error("empty Summary succeeded, want error")
	}
}

// TestStreamingSummaryShape checks the Summary helpers in both modes:
// buffered summaries are exact, streaming ones agree on moments and
// extremes and track the quantiles at histogram resolution.
func TestStreamingSummaryShape(t *testing.T) {
	t.Parallel()

	cfg := Config{Process: testProcess(t), Versions: 2, Reps: 5000, Seed: 3, Workers: 2}
	bres, err := Run(cfg)
	if err != nil {
		t.Fatalf("buffered Run: %v", err)
	}
	cfg.Streaming = true
	sres, err := Run(cfg)
	if err != nil {
		t.Fatalf("streaming Run: %v", err)
	}
	bsum, err := bres.VersionSummary()
	if err != nil {
		t.Fatalf("buffered VersionSummary: %v", err)
	}
	ssum, err := sres.VersionSummary()
	if err != nil {
		t.Fatalf("streaming VersionSummary: %v", err)
	}
	if bsum.N != ssum.N || bsum.Min != ssum.Min || bsum.Max != ssum.Max {
		t.Errorf("summary N/extremes diverged: %+v vs %+v", bsum, ssum)
	}
	closeRel(t, "summary mean", bsum.Mean, ssum.Mean, 1e-12)
	closeRel(t, "summary stddev", bsum.StdDev, ssum.StdDev, 1e-12)
	tol := math.Pow(10, 2.0/histBinsPerDecade) - 1
	closeRel(t, "summary median", bsum.Median, ssum.Median, tol)
	closeRel(t, "summary q95", bsum.Q95, ssum.Q95, tol)
	closeRel(t, "summary q99", bsum.Q99, ssum.Q99, tol)
}

// TestStreamingNoPerRepAllocations is the streaming mode's reason to
// exist: with the MaskDeveloper fast path the whole run performs a small
// fixed number of allocations, however many replications it executes.
func TestStreamingNoPerRepAllocations(t *testing.T) {
	// Not parallel: allocation counting needs a quiet goroutine.
	const reps = 20000
	cfg := Config{
		Process: testProcess(t), Versions: 2, Reps: reps, Seed: 1,
		Workers: 1, Streaming: true,
	}
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := Run(cfg); err != nil {
			t.Fatalf("Run: %v", err)
		}
	})
	// Run-level overhead (result, aggregates, goroutine plumbing) is a
	// few dozen allocations; anything proportional to reps blows far
	// past this ceiling.
	if allocs > 100 {
		t.Errorf("streaming run of %d reps allocated %v objects, want run-level overhead only (<= 100)", reps, allocs)
	}

	cfg.Streaming = false
	buffered := testing.AllocsPerRun(1, func() {
		if _, err := Run(cfg); err != nil {
			t.Fatalf("Run: %v", err)
		}
	})
	if buffered < float64(reps) {
		t.Errorf("buffered run of %d reps allocated only %v objects; the comparison baseline is wrong", reps, buffered)
	}
}

func TestStreamingCancellation(t *testing.T) {
	t.Parallel()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, Config{
		Process: testProcess(t), Versions: 2, Reps: 100000, Seed: 1,
		Streaming: true,
	})
	if err == nil {
		t.Fatal("cancelled streaming run succeeded, want error")
	}
}

func TestStreamingUnknownArch(t *testing.T) {
	t.Parallel()

	_, err := Run(Config{
		Process: testProcess(t), Versions: 2, Reps: 100, Seed: 1,
		Arch: system.Architecture(99), Streaming: true,
	})
	if err == nil {
		t.Fatal("streaming run with unknown architecture succeeded, want error")
	}
}
