package montecarlo_test

import (
	"fmt"
	"log"

	"diversity/internal/devsim"
	"diversity/internal/faultmodel"
	"diversity/internal/montecarlo"
)

// ExampleRun_streaming runs a simulation with constant-memory streaming
// aggregation: the result carries Agg values instead of raw samples, and
// VersionSummary/SystemSummary read the same statistics either way.
// Workers is pinned to 1 so the output is reproducible.
func ExampleRun_streaming() {
	fs, err := faultmodel.New([]faultmodel.Fault{
		{P: 0.2, Q: 0.05},
		{P: 0.4, Q: 0.1},
		{P: 0.1, Q: 0.2},
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := montecarlo.Run(montecarlo.Config{
		Process:   devsim.NewIndependentProcess(fs),
		Versions:  2,
		Reps:      50000,
		Workers:   1,
		Seed:      7,
		Streaming: true, // O(1) memory however large Reps grows
	})
	if err != nil {
		log.Fatal(err)
	}
	sum, err := res.SystemSummary()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replications %d, fault-free systems %d\n", res.Reps, res.SystemFaultFree)
	fmt.Printf("system PFD mean %.5f\n", sum.Mean)
	// Output:
	// replications 50000, fault-free systems 39906
	// system PFD mean 0.02001
}

// ExampleAgg shows the streaming aggregate on its own: observations fold
// in one at a time, shards merge, and quantiles read back at histogram
// resolution.
func ExampleAgg() {
	var shard1, shard2 montecarlo.Agg
	for _, v := range []float64{0, 0.001, 0.004} {
		shard1.Observe(v)
	}
	for _, v := range []float64{0.002, 0, 0.008} {
		shard2.Observe(v)
	}
	shard1.Merge(&shard2)
	med, err := shard1.Quantile(0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("n=%d zeros=%d min=%g max=%g median≈%.4f\n",
		shard1.N(), shard1.Zeros, shard1.Min, shard1.Max, med)
	// Output: n=6 zeros=2 min=0 max=0.008 median≈0.0010
}
