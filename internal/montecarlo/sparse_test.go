package montecarlo

import (
	"context"
	"math"
	"testing"

	"diversity/internal/devsim"
	"diversity/internal/faultmodel"
	"diversity/internal/stats"
	"diversity/internal/system"
	"diversity/internal/telemetry"
)

// groupedFaultSet builds a universe of n faults in a few equal-p groups —
// the regime the sparse kernel targets.
func groupedFaultSet(t testing.TB, n int) *faultmodel.FaultSet {
	t.Helper()
	faults := make([]faultmodel.Fault, n)
	q := 0.5 / float64(n)
	for i := range faults {
		switch {
		case i < n/2:
			faults[i] = faultmodel.Fault{P: 2.0 / float64(n/2), Q: q}
		case i < 3*n/4:
			faults[i] = faultmodel.Fault{P: 1.5 / float64(n/4), Q: 2 * q}
		default:
			faults[i] = faultmodel.Fault{P: 0.5 / float64(n-3*n/4), Q: q / 2}
		}
	}
	fs, err := faultmodel.New(faults)
	if err != nil {
		t.Fatalf("faultmodel.New: %v", err)
	}
	return fs
}

// summaryMoments extracts the PFD summary of one population from a run
// result in either aggregation mode.
func summaryMoments(t *testing.T, res *Result, system bool) stats.Summary {
	t.Helper()
	var sum stats.Summary
	var err error
	if system {
		sum, err = res.SystemSummary()
	} else {
		sum, err = res.VersionSummary()
	}
	if err != nil {
		t.Fatalf("summary: %v", err)
	}
	return sum
}

// assertSparseMatchesDense runs the same configuration with the dense and
// sparse kernels and requires the version and system PFD moments to agree
// within 4 sigma of the Monte-Carlo error — the statistical-equivalence
// gate for a kernel that deliberately draws a different variate sequence.
func assertSparseMatchesDense(t *testing.T, cfg Config) {
	t.Helper()
	dense := cfg
	dense.Sparse = false
	sparse := cfg
	sparse.Sparse = true

	dres, err := Run(dense)
	if err != nil {
		t.Fatalf("dense Run: %v", err)
	}
	sres, err := Run(sparse)
	if err != nil {
		t.Fatalf("sparse Run: %v", err)
	}
	if dres.Sparse {
		t.Fatal("dense result claims the sparse kernel ran")
	}
	if !sres.Sparse {
		t.Fatal("sparse result reports a dense fallback for a SparseDeveloper process")
	}
	for _, pop := range []struct {
		name   string
		system bool
	}{{"version", false}, {"system", true}} {
		dSum := summaryMoments(t, dres, pop.system)
		sSum := summaryMoments(t, sres, pop.system)
		dVar := dSum.StdDev * dSum.StdDev
		sVar := sSum.StdDev * sSum.StdDev
		if dSum.N != cfg.Reps || sSum.N != cfg.Reps {
			t.Fatalf("%s: N dense=%d sparse=%d, want %d", pop.name, dSum.N, sSum.N, cfg.Reps)
		}
		// Standard error of the difference of two independent sample means.
		seMean := math.Sqrt(dVar/float64(dSum.N) + sVar/float64(sSum.N))
		if diff := math.Abs(dSum.Mean - sSum.Mean); diff > 4*seMean+1e-15 {
			t.Errorf("%s mean: dense %v vs sparse %v, |diff| %v > 4σ %v",
				pop.name, dSum.Mean, sSum.Mean, diff, 4*seMean)
		}
		// Variances agree within 4σ of the difference, where the sampling
		// error of each sample variance is Var(s²) ≈ σ⁴(κ+2)/n with κ the
		// excess kurtosis. PFD populations here are heavily zero-inflated
		// and right-skewed, so the normal-approximation band σ⁴·8/n would
		// be far too tight.
		if dVar > 0 && sVar > 0 {
			seVar := math.Sqrt(dVar*dVar*(dSum.Kurtosis+2)/float64(dSum.N) +
				sVar*sVar*(sSum.Kurtosis+2)/float64(sSum.N))
			if diff := math.Abs(dVar - sVar); diff > 4*seVar {
				t.Errorf("%s variance: dense %v vs sparse %v, |diff| %v > 4σ %v",
					pop.name, dVar, sVar, diff, 4*seVar)
			}
		}
	}
}

func TestSparseMatchesDenseIndependent(t *testing.T) {
	t.Parallel()

	proc := devsim.NewIndependentProcess(groupedFaultSet(t, 1000))
	for _, streaming := range []bool{false, true} {
		assertSparseMatchesDense(t, Config{
			Process: proc, Versions: 2, Reps: 30000, Seed: 42, Workers: 4,
			Streaming: streaming,
		})
	}
}

func TestSparseMatchesDenseCorrelatedProcesses(t *testing.T) {
	t.Parallel()

	fs, err := faultmodel.New([]faultmodel.Fault{
		{P: 0.2, Q: 0.05}, {P: 0.4, Q: 0.1}, {P: 0.1, Q: 0.2}, {P: 0.3, Q: 0.02},
	})
	if err != nil {
		t.Fatalf("faultmodel.New: %v", err)
	}
	cc, err := devsim.NewCommonCauseProcess(fs, 0.2, 2)
	if err != nil {
		t.Fatalf("NewCommonCauseProcess: %v", err)
	}
	rs, err := devsim.NewResourceShiftProcess(fs, 0.5)
	if err != nil {
		t.Fatalf("NewResourceShiftProcess: %v", err)
	}
	tied, err := devsim.NewTiedPairsProcess(fs, [][2]int{{0, 2}})
	if err != nil {
		t.Fatalf("NewTiedPairsProcess: %v", err)
	}
	for _, proc := range []devsim.Process{cc, rs, tied} {
		assertSparseMatchesDense(t, Config{
			Process: proc, Versions: 2, Reps: 20000, Seed: 11, Workers: 3,
			Streaming: true,
		})
	}
}

func TestSparseMatchesDenseMajority(t *testing.T) {
	t.Parallel()

	proc := devsim.NewIndependentProcess(groupedFaultSet(t, 400))
	assertSparseMatchesDense(t, Config{
		Process: proc, Versions: 3, Arch: system.ArchMajority,
		Reps: 20000, Seed: 7, Workers: 4, Streaming: true,
	})
}

// TestSparseBufferedMatchesSparseStreaming: both aggregation modes of the
// sparse kernel draw the same variates, so for a fixed seed and worker
// count the streaming aggregates must describe exactly the buffered
// population — the same bitwise contract the dense modes share.
func TestSparseBufferedMatchesSparseStreaming(t *testing.T) {
	t.Parallel()

	proc := devsim.NewIndependentProcess(groupedFaultSet(t, 1000))
	for _, workers := range []int{1, 3} {
		cfg := Config{
			Process: proc, Versions: 2, Reps: 4000, Seed: 9, Workers: workers,
			Sparse: true,
		}
		bres, err := Run(cfg)
		if err != nil {
			t.Fatalf("sparse buffered Run: %v", err)
		}
		cfg.Streaming = true
		sres, err := Run(cfg)
		if err != nil {
			t.Fatalf("sparse streaming Run: %v", err)
		}
		if bres.SparseSkips != sres.SparseSkips {
			t.Errorf("workers=%d: skip counts diverged: buffered %d, streaming %d",
				workers, bres.SparseSkips, sres.SparseSkips)
		}
		if bres.VersionFaultFree != sres.VersionFaultFree || bres.SystemFaultFree != sres.SystemFaultFree {
			t.Errorf("workers=%d: fault-free counts diverged", workers)
		}
		// Fold the buffered samples in rep order (= shard merge order) and
		// compare the moment accumulators bitwise.
		for _, pop := range []struct {
			name   string
			sample []float64
			agg    *Agg
		}{
			{"version", bres.VersionPFD, sres.VersionAgg},
			{"system", bres.SystemPFD, sres.SystemAgg},
		} {
			var want Agg
			for _, v := range pop.sample {
				want.Observe(v)
			}
			if want.Moments.Mean() != pop.agg.Moments.Mean() && workers == 1 {
				t.Errorf("workers=1 %s: single-shard mean not bitwise identical: %v vs %v",
					pop.name, want.Moments.Mean(), pop.agg.Moments.Mean())
			}
			if want.Min != pop.agg.Min || want.Max != pop.agg.Max || want.Zeros != pop.agg.Zeros {
				t.Errorf("workers=%d %s: extremes/zeros diverged", workers, pop.name)
			}
			if want.Hist != pop.agg.Hist {
				t.Errorf("workers=%d %s: histograms diverged", workers, pop.name)
			}
		}
	}
}

// TestSparseFallbackProcess: a process without the SparseDeveloper
// extension must run dense (and say so) rather than fail.
func TestSparseFallbackProcess(t *testing.T) {
	t.Parallel()

	proc := opaqueProcess{inner: testProcess(t)}
	res, err := Run(Config{
		Process: proc, Versions: 2, Reps: 500, Seed: 5, Workers: 2, Sparse: true,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Sparse {
		t.Error("fallback run reports the sparse kernel as active")
	}
	if res.SparseSkips != 0 {
		t.Errorf("fallback run reports %d skips", res.SparseSkips)
	}
}

func TestSparseUnknownArch(t *testing.T) {
	t.Parallel()

	_, err := Run(Config{
		Process: testProcess(t), Versions: 2, Reps: 100, Seed: 1,
		Arch: system.Architecture(99), Sparse: true,
	})
	if err == nil {
		t.Fatal("sparse run with unknown architecture succeeded, want error")
	}
}

// TestSparseLargeUniverse: the scenario the kernel exists for — a
// million-fault universe, k ≈ 5 — must reproduce the analytic mean PFDs
// of equations (1) at replication counts the dense path could not touch.
func TestSparseLargeUniverse(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("million-fault universe in -short mode")
	}

	const n = 1 << 20
	fs := groupedFaultSet(t, n)
	proc := devsim.NewIndependentProcess(fs)
	res, err := Run(Config{
		Process: proc, Versions: 2, Reps: 30000, Seed: 77, Workers: 4,
		Sparse: true, Streaming: true,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Sparse {
		t.Fatal("sparse kernel did not run")
	}
	if res.SparseSkips == 0 {
		t.Fatal("no geometric skips recorded over a grouped universe")
	}
	mu1, err := fs.MeanPFD(1)
	if err != nil {
		t.Fatalf("MeanPFD(1): %v", err)
	}
	vsum, err := res.VersionSummary()
	if err != nil {
		t.Fatalf("VersionSummary: %v", err)
	}
	ssum, err := res.SystemSummary()
	if err != nil {
		t.Fatalf("SystemSummary: %v", err)
	}
	vtol := 4 * vsum.StdDev / math.Sqrt(float64(res.Reps))
	if math.Abs(vsum.Mean-mu1) > vtol {
		t.Errorf("version mean %v, analytic %v ± %v", vsum.Mean, mu1, vtol)
	}
	// With n = 2^20 and per-fault p ≈ 4e-6, two independent versions share
	// a fault with probability 1-Π(1-p_i²) ≈ 1.7e-5 per replication, so the
	// whole run expects well under one system-fault event on average — the
	// analytic mean µ2 ≈ 1e-11 is unobservable at any feasible replication
	// count. Assert the event count against its Poisson ceiling instead.
	pHit := 1.0
	for i := 0; i < n; i++ {
		p := fs.Fault(i).P
		pHit *= 1 - p*p
	}
	pHit = 1 - pHit
	expectedHits := float64(res.Reps) * pHit
	faultyReps := res.Reps - res.SystemFaultFree
	if float64(faultyReps) > expectedHits+5*math.Sqrt(expectedHits)+5 {
		t.Errorf("system-fault replications %d, expected ≈ %.2f", faultyReps, expectedHits)
	}
	// Any common fault contributes at most the largest region probability,
	// so the empirical system mean stays far below the version mean.
	if maxQ := 2 * 0.5 / float64(n); ssum.Mean > float64(faultyReps)*maxQ*2/float64(res.Reps)+1e-15 {
		t.Errorf("system mean %v inconsistent with %d fault events", ssum.Mean, faultyReps)
	}
}

// TestSparseNoPerRepAllocations: the sparse streaming path must keep the
// streaming mode's allocation-free hot loop.
func TestSparseNoPerRepAllocations(t *testing.T) {
	// Not parallel: allocation counting needs a quiet goroutine.
	const reps = 20000
	cfg := Config{
		Process:  devsim.NewIndependentProcess(groupedFaultSet(t, 10000)),
		Versions: 2, Reps: reps, Seed: 1, Workers: 1,
		Sparse: true, Streaming: true,
	}
	// Warm up the lazily-built sparse groups outside the counted runs.
	if _, err := Run(cfg); err != nil {
		t.Fatalf("warm-up Run: %v", err)
	}
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := Run(cfg); err != nil {
			t.Fatalf("Run: %v", err)
		}
	})
	if allocs > 100 {
		t.Errorf("sparse streaming run of %d reps allocated %v objects, want run-level overhead only (<= 100)", reps, allocs)
	}
}

func TestSparseMetrics(t *testing.T) {
	t.Parallel()

	reg := telemetry.NewRegistry()
	PreRegisterMetrics(reg)
	snap := reg.Snapshot()
	if _, ok := snap.Counters["montecarlo.sparse_skips_total"]; !ok {
		t.Error("sparse_skips_total not pre-registered")
	}
	for _, mode := range []string{"dense", "sparse"} {
		if _, ok := snap.Gauges["montecarlo.replications_per_second."+mode]; !ok {
			t.Errorf("replications_per_second.%s not pre-registered", mode)
		}
	}

	proc := devsim.NewIndependentProcess(groupedFaultSet(t, 1000))
	res, err := Run(Config{
		Process: proc, Versions: 2, Reps: 5000, Seed: 3, Workers: 2,
		Sparse: true, Streaming: true, Metrics: reg,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	snap = reg.Snapshot()
	if got := snap.Counters["montecarlo.sparse_skips_total"]; got != res.SparseSkips {
		t.Errorf("sparse_skips_total = %d, result reports %d", got, res.SparseSkips)
	}
	if res.SparseSkips == 0 {
		t.Error("grouped sparse run recorded zero skips")
	}
	if snap.Gauges["montecarlo.replications_per_second.sparse"] <= 0 {
		t.Error("replications_per_second.sparse not set after a sparse run")
	}
	if snap.Gauges["montecarlo.replications_per_second.dense"] != 0 {
		t.Error("dense-mode gauge moved during a sparse run")
	}
}

// TestSparseRareEstimators: the sparse rare-event kernels must agree with
// the closed form 1 - Π(1-p_i^m). The tilted check uses a small universe
// of repeated-p faults — with thousands of faults tilted to 0.3 the
// importance weights underflow to zero for the dense kernel too, which
// tests nothing.
func TestSparseRareEstimators(t *testing.T) {
	t.Parallel()

	m := 2
	small := make([]faultmodel.Fault, 0, 30)
	for _, p := range []float64{0.003, 0.002, 0.001} {
		for i := 0; i < 10; i++ {
			small = append(small, faultmodel.Fault{P: p, Q: 0.001})
		}
	}
	sfs, err := faultmodel.New(small)
	if err != nil {
		t.Fatalf("faultmodel.New: %v", err)
	}
	exactSmall := 1.0
	for i := 0; i < sfs.N(); i++ {
		exactSmall *= 1 - math.Pow(sfs.Fault(i).P, float64(m))
	}
	exactSmall = 1 - exactSmall

	est, err := EstimateRareSystemFaultOpts(context.Background(), sfs, m, 40000, 17, 0.3, RareOptions{Sparse: true})
	if err != nil {
		t.Fatalf("sparse tilted estimator: %v", err)
	}
	if diff := math.Abs(est.Probability - exactSmall); diff > 5*est.StdErr+1e-12 {
		t.Errorf("sparse tilted estimate %v, exact %v (|diff| %v > 5·SE %v)",
			est.Probability, exactSmall, diff, 5*est.StdErr)
	}

	// The naive sparse kernel only draws one geometric gap per group until
	// a hit, so it scales to the grouped million-style universe directly.
	fs := groupedFaultSet(t, 2000)
	exact := 1.0
	for i := 0; i < fs.N(); i++ {
		exact *= 1 - math.Pow(fs.Fault(i).P, float64(m))
	}
	exact = 1 - exact
	naive, err := EstimateNaiveSystemFaultOpts(context.Background(), fs, m, 200000, 19, RareOptions{Sparse: true})
	if err != nil {
		t.Fatalf("sparse naive estimator: %v", err)
	}
	if diff := math.Abs(naive.Probability - exact); diff > 5*naive.StdErr+5e-4 {
		t.Errorf("sparse naive estimate %v, exact %v", naive.Probability, exact)
	}

	// Skip draws land in the metrics registry.
	reg := telemetry.NewRegistry()
	if _, err := EstimateRareSystemFaultOpts(context.Background(), sfs, m, 4096, 17, 0.3, RareOptions{Sparse: true, Metrics: reg}); err != nil {
		t.Fatalf("sparse tilted estimator with metrics: %v", err)
	}
	if reg.Snapshot().Counters["montecarlo.sparse_skips_total"] == 0 {
		t.Error("sparse rare estimator recorded no skip draws")
	}
}
