package montecarlo

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunContextCancelled(t *testing.T) {
	t.Parallel()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	cfg := Config{
		Process:  testProcess(t),
		Versions: 2,
		Reps:     10_000_000,
		Workers:  4,
		Seed:     1,
		// Cancel from the very first progress report; workers must then
		// stop at their next chunk boundary instead of finishing the run.
		Progress: func(done, total int) { once.Do(cancel) },
	}
	start := time.Now()
	_, err := RunContext(ctx, cfg)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext under cancelled context: err = %v, want context.Canceled", err)
	}
	if elapsed > 15*time.Second {
		t.Errorf("cancelled run took %v; cancellation is not prompt", elapsed)
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	t.Parallel()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, Config{Process: testProcess(t), Versions: 2, Reps: 100, Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled RunContext: err = %v, want context.Canceled", err)
	}
}

func TestRunProgressReachesTotal(t *testing.T) {
	t.Parallel()

	const reps = 20_000
	var last atomic.Int64
	var calls atomic.Int64
	cfg := Config{
		Process:  testProcess(t),
		Versions: 2,
		Reps:     reps,
		Workers:  3,
		Seed:     7,
		Progress: func(done, total int) {
			calls.Add(1)
			if total != reps {
				t.Errorf("progress total = %d, want %d", total, reps)
			}
			for {
				prev := last.Load()
				if int64(done) <= prev || last.CompareAndSwap(prev, int64(done)) {
					break
				}
			}
		},
	}
	if _, err := RunContext(context.Background(), cfg); err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	if calls.Load() == 0 {
		t.Fatal("progress callback never invoked")
	}
	if got := last.Load(); got != reps {
		t.Errorf("final progress = %d, want %d", got, reps)
	}
}

// TestRunProgressDoesNotPerturbResults: the progress hook must not touch
// the random streams, so hooked and hook-free runs agree bit for bit.
func TestRunProgressDoesNotPerturbResults(t *testing.T) {
	t.Parallel()

	cfg := Config{Process: testProcess(t), Versions: 2, Reps: 5_000, Workers: 4, Seed: 3}
	plain, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	cfg.Progress = func(done, total int) {}
	hooked, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	for i := range plain.SystemPFD {
		if plain.SystemPFD[i] != hooked.SystemPFD[i] || plain.VersionPFD[i] != hooked.VersionPFD[i] {
			t.Fatalf("rep %d: progress hook perturbed the run", i)
		}
	}
}

func TestRareContextCancelled(t *testing.T) {
	t.Parallel()

	fs := testProcess(t).FaultSet()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := EstimateRareSystemFaultContext(ctx, fs, 2, 1_000_000, 1, 0.3)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("EstimateRareSystemFaultContext: err = %v, want context.Canceled", err)
	}
	_, err = EstimateNaiveSystemFaultContext(ctx, fs, 2, 1_000_000, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("EstimateNaiveSystemFaultContext: err = %v, want context.Canceled", err)
	}
}
