package montecarlo

import (
	"context"
	"errors"
	"fmt"
	"math"

	"diversity/internal/faultmodel"
	"diversity/internal/randx"
	"diversity/internal/stats"
	"diversity/internal/telemetry"
)

// RareOptions carries optional instrumentation for the rare-event
// estimators. The zero value disables all of it; none of the fields
// affect the sampled estimate.
type RareOptions struct {
	// Progress, when non-nil, is called as replications complete with
	// (done, total): once with done 0 before the first replication, at
	// every context-check boundary, and once with done == total at the
	// end. Successive done values never decrease.
	Progress func(done, total int)
	// Metrics, when non-nil, receives the replication count.
	Metrics *telemetry.Registry
}

func (o RareOptions) report(done, total int) {
	if o.Progress != nil {
		o.Progress(done, total)
	}
}

// RareEventEstimate is the result of an importance-sampled estimation of a
// rare event probability.
type RareEventEstimate struct {
	// Probability is the estimate.
	Probability float64
	// StdErr is its standard error.
	StdErr float64
	// HitFraction is the fraction of replications in which the event
	// occurred under the tilted measure — near 0.5 means the tilt is
	// doing its job.
	HitFraction float64
}

// EstimateRareSystemFault estimates P(N_m > 0) — the probability that an
// m-version system carries at least one defeating fault — by importance
// sampling.
//
// In the paper's Section-4 safety-grade regime this probability is
// deliberately tiny (1e-5 and below), so naive simulation wastes almost
// every replication: none of them exhibits the event. The estimator tilts
// each fault's system-level presence probability p_i^m up towards tiltTarget
// and reweights each replication by the likelihood ratio
//
//	w = Π_i (p_i^m/t_i)^{x_i} · ((1-p_i^m)/(1-t_i))^{1-x_i},
//
// which keeps the estimator unbiased while making the event common under
// the sampling measure. The closed form 1-Π(1-p_i^m) exists for THIS
// quantity (and the tests use it as ground truth); the estimator's value
// is as a verified harness for rare-event settings where closed forms do
// not survive model extensions.
//
// tiltTarget is the per-fault presence probability under the tilted
// measure, typically 0.2-0.5; faults whose natural probability already
// exceeds it keep their natural probability.
func EstimateRareSystemFault(fs *faultmodel.FaultSet, m, reps int, seed uint64, tiltTarget float64) (RareEventEstimate, error) {
	return EstimateRareSystemFaultContext(context.Background(), fs, m, reps, seed, tiltTarget)
}

// EstimateRareSystemFaultContext is EstimateRareSystemFault under a
// context; cancellation is checked every ctxCheckEvery replications.
func EstimateRareSystemFaultContext(ctx context.Context, fs *faultmodel.FaultSet, m, reps int, seed uint64, tiltTarget float64) (RareEventEstimate, error) {
	return EstimateRareSystemFaultOpts(ctx, fs, m, reps, seed, tiltTarget, RareOptions{})
}

// EstimateRareSystemFaultOpts is EstimateRareSystemFaultContext with
// instrumentation: progress reports at context-check granularity and
// optional metrics.
func EstimateRareSystemFaultOpts(ctx context.Context, fs *faultmodel.FaultSet, m, reps int, seed uint64, tiltTarget float64, opts RareOptions) (RareEventEstimate, error) {
	if fs == nil {
		return RareEventEstimate{}, errors.New("montecarlo: fault set must not be nil")
	}
	if m < 1 {
		return RareEventEstimate{}, fmt.Errorf("montecarlo: version count %d must be at least 1", m)
	}
	if reps < 2 {
		return RareEventEstimate{}, fmt.Errorf("montecarlo: replication count %d must be at least 2", reps)
	}
	if math.IsNaN(tiltTarget) || tiltTarget <= 0 || tiltTarget >= 1 {
		return RareEventEstimate{}, fmt.Errorf("montecarlo: tilt target %v must be in (0, 1)", tiltTarget)
	}

	n := fs.N()
	natural := make([]float64, n) // p_i^m
	tilted := make([]float64, n)
	logStay := make([]float64, n) // log((1-p)/(1-t)) per fault
	logHit := make([]float64, n)  // log(p/t) per fault
	for i := 0; i < n; i++ {
		p := math.Pow(fs.Fault(i).P, float64(m))
		natural[i] = p
		t := tiltTarget
		if p > t {
			t = p
		}
		if p == 0 {
			// Impossible faults stay impossible: no tilt, no weight.
			tilted[i] = 0
			continue
		}
		tilted[i] = t
		logHit[i] = math.Log(p) - math.Log(t)
		logStay[i] = math.Log1p(-p) - math.Log1p(-t)
	}

	// The weights stream through a stats.Moments accumulator — the same
	// numerically stable one-pass type the streaming Monte-Carlo harness
	// uses — rather than raw sum/sum-of-squares registers, which lose
	// precision exactly in the rare-event regime where weights span many
	// orders of magnitude.
	r := randx.NewStream(seed)
	var mom stats.Moments
	hits := 0
	for rep := 0; rep < reps; rep++ {
		if rep%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return RareEventEstimate{}, fmt.Errorf("montecarlo: rare-event estimation cancelled after %d of %d replications: %w", rep, reps, err)
			}
			opts.report(rep, reps)
		}
		logW := 0.0
		event := false
		for i := 0; i < n; i++ {
			if tilted[i] == 0 {
				continue
			}
			if r.Bernoulli(tilted[i]) {
				event = true
				logW += logHit[i]
			} else {
				logW += logStay[i]
			}
		}
		w := 0.0
		if event {
			hits++
			w = math.Exp(logW)
		}
		mom.Add(w)
	}
	opts.report(reps, reps)
	if opts.Metrics != nil {
		opts.Metrics.Counter("montecarlo.replications_total").Add(int64(reps))
	}
	return RareEventEstimate{
		Probability: mom.Mean(),
		StdErr:      math.Sqrt(mom.PopulationVariance() / float64(reps)),
		HitFraction: float64(hits) / float64(reps),
	}, nil
}

// EstimateNaiveSystemFault estimates the same probability by naive
// simulation of the fault indicators — the ablation baseline for
// EstimateRareSystemFault.
func EstimateNaiveSystemFault(fs *faultmodel.FaultSet, m, reps int, seed uint64) (RareEventEstimate, error) {
	return EstimateNaiveSystemFaultContext(context.Background(), fs, m, reps, seed)
}

// EstimateNaiveSystemFaultContext is EstimateNaiveSystemFault under a
// context; cancellation is checked every ctxCheckEvery replications.
func EstimateNaiveSystemFaultContext(ctx context.Context, fs *faultmodel.FaultSet, m, reps int, seed uint64) (RareEventEstimate, error) {
	return EstimateNaiveSystemFaultOpts(ctx, fs, m, reps, seed, RareOptions{})
}

// EstimateNaiveSystemFaultOpts is EstimateNaiveSystemFaultContext with
// instrumentation: progress reports at context-check granularity and
// optional metrics.
func EstimateNaiveSystemFaultOpts(ctx context.Context, fs *faultmodel.FaultSet, m, reps int, seed uint64, opts RareOptions) (RareEventEstimate, error) {
	if fs == nil {
		return RareEventEstimate{}, errors.New("montecarlo: fault set must not be nil")
	}
	if m < 1 {
		return RareEventEstimate{}, fmt.Errorf("montecarlo: version count %d must be at least 1", m)
	}
	if reps < 2 {
		return RareEventEstimate{}, fmt.Errorf("montecarlo: replication count %d must be at least 2", reps)
	}
	n := fs.N()
	probs := make([]float64, n)
	for i := 0; i < n; i++ {
		probs[i] = math.Pow(fs.Fault(i).P, float64(m))
	}
	r := randx.NewStream(seed)
	hits := 0
	for rep := 0; rep < reps; rep++ {
		if rep%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return RareEventEstimate{}, fmt.Errorf("montecarlo: naive estimation cancelled after %d of %d replications: %w", rep, reps, err)
			}
			opts.report(rep, reps)
		}
		for i := 0; i < n; i++ {
			if r.Bernoulli(probs[i]) {
				hits++
				break
			}
		}
	}
	opts.report(reps, reps)
	if opts.Metrics != nil {
		opts.Metrics.Counter("montecarlo.replications_total").Add(int64(reps))
	}
	p := float64(hits) / float64(reps)
	return RareEventEstimate{
		Probability: p,
		StdErr:      math.Sqrt(p * (1 - p) / float64(reps)),
		HitFraction: p,
	}, nil
}
