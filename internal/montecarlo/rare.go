package montecarlo

import (
	"context"
	"errors"
	"fmt"
	"math"

	"diversity/internal/devsim"
	"diversity/internal/faultmodel"
	"diversity/internal/randx"
	"diversity/internal/stats"
	"diversity/internal/system"
	"diversity/internal/telemetry"
)

// RareOptions carries optional instrumentation and kernel selection for
// the rare-event estimators. The zero value disables all of it. No field
// changes the distribution of the estimate; Sparse does change the
// variate sequence drawn for a given seed, so fixed-seed values differ
// between the sparse and dense kernels while remaining equal in
// distribution.
type RareOptions struct {
	// Progress, when non-nil, is called as replications complete with
	// (done, total): once with done 0 before the first replication, at
	// every context-check boundary, and once with done == total at the
	// end. Successive done values never decrease.
	Progress func(done, total int)
	// Metrics, when non-nil, receives the replication count and, for
	// sparse runs, the geometric skip-draw count.
	Metrics *telemetry.Registry
	// Sparse samples each replication's fault indicators by geometric
	// gap-skipping within groups of equal-probability faults instead of
	// one Bernoulli draw per fault, making the per-replication cost
	// O(hits + groups) rather than O(n). The estimator is unchanged in
	// distribution: hit counts per group are Binomial either way, and the
	// importance weight depends on the indicators only through those
	// counts.
	Sparse bool
	// Adjudicator, when non-nil, selects the voting rule whose defeating
	// faults the estimators count: each fault's system-level presence
	// probability becomes its binomial defeat probability
	// system.DefeatProbability(adj, m, p) instead of the 1-out-of-m
	// special case p^m. Nil means 1-out-of-m, bit for bit the historical
	// estimator (the defeat probability reduces to math.Pow(p, m)
	// exactly).
	Adjudicator system.Adjudicator
	// BatchWidth, when at least 2, tiles the dense estimators'
	// replication loops: each active fault's Bernoulli draws for a tile
	// of replications come from one randx FillUint64 batch compared
	// against a precomputed integer threshold (devsim.BernoulliThreshold),
	// amortizing RNG overhead exactly like the batched Monte-Carlo
	// kernel. The estimator is unchanged in distribution; like Sparse it
	// changes the variate sequence drawn for a given seed. It is ignored
	// when Sparse is set — the sparse kernel's geometric gaps are
	// inherently sequential per replication and already o(n).
	BatchWidth int
}

// defeatProb resolves a fault's system-level presence probability under
// the options' adjudicator: p^m bit for bit when unset.
func (o RareOptions) defeatProb(m int, p float64) float64 {
	adj := o.Adjudicator
	if adj == nil {
		adj = system.OneOutOfN{}
	}
	return system.DefeatProbability(adj, m, p)
}

func (o RareOptions) report(done, total int) {
	if o.Progress != nil {
		o.Progress(done, total)
	}
}

// RareEventEstimate is the result of an importance-sampled estimation of a
// rare event probability.
type RareEventEstimate struct {
	// Probability is the estimate.
	Probability float64
	// StdErr is its standard error.
	StdErr float64
	// HitFraction is the fraction of replications in which the event
	// occurred under the tilted measure — near 0.5 means the tilt is
	// doing its job.
	HitFraction float64
}

// EstimateRareSystemFault estimates P(N_m > 0) — the probability that an
// m-version system carries at least one defeating fault — by importance
// sampling.
//
// In the paper's Section-4 safety-grade regime this probability is
// deliberately tiny (1e-5 and below), so naive simulation wastes almost
// every replication: none of them exhibits the event. The estimator tilts
// each fault's system-level presence probability p_i^m up towards tiltTarget
// and reweights each replication by the likelihood ratio
//
//	w = Π_i (p_i^m/t_i)^{x_i} · ((1-p_i^m)/(1-t_i))^{1-x_i},
//
// which keeps the estimator unbiased while making the event common under
// the sampling measure. The closed form 1-Π(1-p_i^m) exists for THIS
// quantity (and the tests use it as ground truth); the estimator's value
// is as a verified harness for rare-event settings where closed forms do
// not survive model extensions.
//
// tiltTarget is the per-fault presence probability under the tilted
// measure, typically 0.2-0.5; faults whose natural probability already
// exceeds it keep their natural probability.
func EstimateRareSystemFault(fs *faultmodel.FaultSet, m, reps int, seed uint64, tiltTarget float64) (RareEventEstimate, error) {
	return EstimateRareSystemFaultContext(context.Background(), fs, m, reps, seed, tiltTarget)
}

// EstimateRareSystemFaultContext is EstimateRareSystemFault under a
// context; cancellation is checked every ctxCheckEvery replications.
func EstimateRareSystemFaultContext(ctx context.Context, fs *faultmodel.FaultSet, m, reps int, seed uint64, tiltTarget float64) (RareEventEstimate, error) {
	return EstimateRareSystemFaultOpts(ctx, fs, m, reps, seed, tiltTarget, RareOptions{})
}

// EstimateRareSystemFaultOpts is EstimateRareSystemFaultContext with
// instrumentation: progress reports at context-check granularity and
// optional metrics.
func EstimateRareSystemFaultOpts(ctx context.Context, fs *faultmodel.FaultSet, m, reps int, seed uint64, tiltTarget float64, opts RareOptions) (RareEventEstimate, error) {
	if fs == nil {
		return RareEventEstimate{}, errors.New("montecarlo: fault set must not be nil")
	}
	if m < 1 {
		return RareEventEstimate{}, fmt.Errorf("montecarlo: version count %d must be at least 1", m)
	}
	if reps < 2 {
		return RareEventEstimate{}, fmt.Errorf("montecarlo: replication count %d must be at least 2", reps)
	}
	if math.IsNaN(tiltTarget) || tiltTarget <= 0 || tiltTarget >= 1 {
		return RareEventEstimate{}, fmt.Errorf("montecarlo: tilt target %v must be in (0, 1)", tiltTarget)
	}
	if opts.BatchWidth < 0 {
		return RareEventEstimate{}, fmt.Errorf("montecarlo: batch width %d must not be negative", opts.BatchWidth)
	}

	n := fs.N()
	natural := make([]float64, n) // the fault's system-level defeat probability (p_i^m for 1oom)
	tilted := make([]float64, n)
	logStay := make([]float64, n) // log((1-p)/(1-t)) per fault
	logHit := make([]float64, n)  // log(p/t) per fault
	for i := 0; i < n; i++ {
		p := opts.defeatProb(m, fs.Fault(i).P)
		natural[i] = p
		t := tiltTarget
		if p > t {
			t = p
		}
		if p == 0 {
			// Impossible faults stay impossible: no tilt, no weight.
			tilted[i] = 0
			continue
		}
		tilted[i] = t
		logHit[i] = math.Log(p) - math.Log(t)
		logStay[i] = math.Log1p(-p) - math.Log1p(-t)
	}

	// Sparse kernel precomputation: faults sharing a natural probability
	// also share their tilt and log terms, so a replication only needs
	// the Binomial hit count of each group — sampled by geometric
	// gap-skipping — on top of the all-miss baseline weight.
	var groups []tiltGroup
	baseLogW := 0.0
	if opts.Sparse {
		index := make(map[float64]int)
		for i := 0; i < n; i++ {
			if tilted[i] == 0 {
				continue
			}
			baseLogW += logStay[i]
			gi, ok := index[natural[i]]
			if !ok {
				gi = len(groups)
				index[natural[i]] = gi
				groups = append(groups, tiltGroup{
					sampler:  randx.NewGeometricSampler(tilted[i]),
					logDelta: logHit[i] - logStay[i],
				})
			}
			groups[gi].size++
		}
	}

	// The weights stream through a stats.Moments accumulator — the same
	// numerically stable one-pass type the streaming Monte-Carlo harness
	// uses — rather than raw sum/sum-of-squares registers, which lose
	// precision exactly in the rare-event regime where weights span many
	// orders of magnitude.
	r := randx.NewStream(seed)
	var mom stats.Moments
	hits := 0
	var skips int64
	if !opts.Sparse && opts.BatchWidth > 1 {
		var err error
		if hits, err = rareTiltedBatched(ctx, r, &mom, reps, opts.BatchWidth, tilted, logHit, logStay, opts); err != nil {
			return RareEventEstimate{}, err
		}
	} else {
		for rep := 0; rep < reps; rep++ {
			if rep%ctxCheckEvery == 0 {
				if err := ctx.Err(); err != nil {
					return RareEventEstimate{}, fmt.Errorf("montecarlo: rare-event estimation cancelled after %d of %d replications: %w", rep, reps, err)
				}
				opts.report(rep, reps)
			}
			logW := 0.0
			event := false
			if opts.Sparse {
				logW = baseLogW
				for gi := range groups {
					g := &groups[gi]
					for pos := g.sampler.Next(r); pos < g.size; pos += 1 + g.sampler.Next(r) {
						event = true
						logW += g.logDelta
						skips++
					}
					skips++
				}
			} else {
				for i := 0; i < n; i++ {
					if tilted[i] == 0 {
						continue
					}
					if r.Bernoulli(tilted[i]) {
						event = true
						logW += logHit[i]
					} else {
						logW += logStay[i]
					}
				}
			}
			w := 0.0
			if event {
				hits++
				w = math.Exp(logW)
			}
			mom.Add(w)
		}
	}
	opts.report(reps, reps)
	if opts.Metrics != nil {
		opts.Metrics.Counter("montecarlo.replications_total").Add(int64(reps))
		if opts.Sparse {
			opts.Metrics.Counter("montecarlo.sparse_skips_total").Add(skips)
		}
	}
	return RareEventEstimate{
		Probability: mom.Mean(),
		StdErr:      math.Sqrt(mom.PopulationVariance() / float64(reps)),
		HitFraction: float64(hits) / float64(reps),
	}, nil
}

// rareTiltedBatched is the batched inner loop of the importance-sampled
// estimator: active faults are compacted into parallel threshold/weight
// arrays and each fault's draws for a whole tile of replications come
// from one FillUint64 batch. Per replication it applies exactly the
// dense loop's arithmetic — logHit on a hit, logStay on a miss — so the
// estimate's distribution is identical; only the draw order (fault-major
// within a tile) differs.
func rareTiltedBatched(ctx context.Context, r *randx.Stream, mom *stats.Moments, reps, width int, tilted, logHit, logStay []float64, opts RareOptions) (hits int, err error) {
	if width > reps {
		width = reps
	}
	var thr []uint64
	var hitW, stayW []float64
	for i := range tilted {
		if tilted[i] == 0 {
			continue
		}
		thr = append(thr, devsim.BernoulliThreshold(tilted[i]))
		hitW = append(hitW, logHit[i])
		stayW = append(stayW, logStay[i])
	}
	draws := make([]uint64, width)
	logW := make([]float64, width)
	event := make([]bool, width)
	nextCheck := 0
	for base := 0; base < reps; base += width {
		if base >= nextCheck {
			if err := ctx.Err(); err != nil {
				return hits, fmt.Errorf("montecarlo: rare-event estimation cancelled after %d of %d replications: %w", base, reps, err)
			}
			opts.report(base, reps)
			nextCheck += ctxCheckEvery
		}
		b := width
		if base+b > reps {
			b = reps - base
		}
		d := draws[:b]
		for j := 0; j < b; j++ {
			logW[j] = 0
			event[j] = false
		}
		for k, t := range thr {
			r.FillUint64(d)
			for j, u := range d {
				if u>>11 < t {
					event[j] = true
					logW[j] += hitW[k]
				} else {
					logW[j] += stayW[k]
				}
			}
		}
		for j := 0; j < b; j++ {
			w := 0.0
			if event[j] {
				hits++
				w = math.Exp(logW[j])
			}
			mom.Add(w)
		}
	}
	return hits, nil
}

// rareNaiveBatched is the batched inner loop of the naive estimator.
// Unlike the dense scan it cannot break out of a replication at its
// first hit — every active fault draws for the whole tile — but the
// per-replication hit indicator is the same OR of independent
// Bernoullis, so the estimate's distribution is unchanged.
func rareNaiveBatched(ctx context.Context, r *randx.Stream, reps, width int, probs []float64, opts RareOptions) (hits int, err error) {
	if width > reps {
		width = reps
	}
	var thr []uint64
	for _, p := range probs {
		if p > 0 {
			thr = append(thr, devsim.BernoulliThreshold(p))
		}
	}
	draws := make([]uint64, width)
	event := make([]bool, width)
	nextCheck := 0
	for base := 0; base < reps; base += width {
		if base >= nextCheck {
			if err := ctx.Err(); err != nil {
				return hits, fmt.Errorf("montecarlo: naive estimation cancelled after %d of %d replications: %w", base, reps, err)
			}
			opts.report(base, reps)
			nextCheck += ctxCheckEvery
		}
		b := width
		if base+b > reps {
			b = reps - base
		}
		d := draws[:b]
		for j := 0; j < b; j++ {
			event[j] = false
		}
		for _, t := range thr {
			r.FillUint64(d)
			for j, u := range d {
				if u>>11 < t {
					event[j] = true
				}
			}
		}
		for j := 0; j < b; j++ {
			if event[j] {
				hits++
			}
		}
	}
	return hits, nil
}

// tiltGroup is a set of faults sharing one tilted presence probability
// and importance-weight increment, sampled as a unit by the sparse
// kernel.
type tiltGroup struct {
	sampler randx.GeometricSampler
	size    int
	// logDelta is logHit - logStay: the weight adjustment each hit in the
	// group applies on top of the all-miss baseline.
	logDelta float64
}

// EstimateNaiveSystemFault estimates the same probability by naive
// simulation of the fault indicators — the ablation baseline for
// EstimateRareSystemFault.
func EstimateNaiveSystemFault(fs *faultmodel.FaultSet, m, reps int, seed uint64) (RareEventEstimate, error) {
	return EstimateNaiveSystemFaultContext(context.Background(), fs, m, reps, seed)
}

// EstimateNaiveSystemFaultContext is EstimateNaiveSystemFault under a
// context; cancellation is checked every ctxCheckEvery replications.
func EstimateNaiveSystemFaultContext(ctx context.Context, fs *faultmodel.FaultSet, m, reps int, seed uint64) (RareEventEstimate, error) {
	return EstimateNaiveSystemFaultOpts(ctx, fs, m, reps, seed, RareOptions{})
}

// EstimateNaiveSystemFaultOpts is EstimateNaiveSystemFaultContext with
// instrumentation: progress reports at context-check granularity and
// optional metrics.
func EstimateNaiveSystemFaultOpts(ctx context.Context, fs *faultmodel.FaultSet, m, reps int, seed uint64, opts RareOptions) (RareEventEstimate, error) {
	if fs == nil {
		return RareEventEstimate{}, errors.New("montecarlo: fault set must not be nil")
	}
	if m < 1 {
		return RareEventEstimate{}, fmt.Errorf("montecarlo: version count %d must be at least 1", m)
	}
	if reps < 2 {
		return RareEventEstimate{}, fmt.Errorf("montecarlo: replication count %d must be at least 2", reps)
	}
	if opts.BatchWidth < 0 {
		return RareEventEstimate{}, fmt.Errorf("montecarlo: batch width %d must not be negative", opts.BatchWidth)
	}
	n := fs.N()
	probs := make([]float64, n)
	for i := 0; i < n; i++ {
		probs[i] = opts.defeatProb(m, fs.Fault(i).P)
	}
	// Sparse kernel: the event "some fault hits" only needs, per group of
	// equal-probability faults, whether the first geometric gap lands
	// inside the group — this is exactly P(Binomial(size, p) > 0), so the
	// estimate's distribution matches the Bernoulli scan.
	var groups []tiltGroup
	if opts.Sparse {
		index := make(map[float64]int)
		for i := 0; i < n; i++ {
			if probs[i] == 0 {
				continue
			}
			gi, ok := index[probs[i]]
			if !ok {
				gi = len(groups)
				index[probs[i]] = gi
				groups = append(groups, tiltGroup{sampler: randx.NewGeometricSampler(probs[i])})
			}
			groups[gi].size++
		}
	}
	r := randx.NewStream(seed)
	hits := 0
	var skips int64
	if !opts.Sparse && opts.BatchWidth > 1 {
		var err error
		if hits, err = rareNaiveBatched(ctx, r, reps, opts.BatchWidth, probs, opts); err != nil {
			return RareEventEstimate{}, err
		}
	} else {
		for rep := 0; rep < reps; rep++ {
			if rep%ctxCheckEvery == 0 {
				if err := ctx.Err(); err != nil {
					return RareEventEstimate{}, fmt.Errorf("montecarlo: naive estimation cancelled after %d of %d replications: %w", rep, reps, err)
				}
				opts.report(rep, reps)
			}
			if opts.Sparse {
				for gi := range groups {
					skips++
					if groups[gi].sampler.Next(r) < groups[gi].size {
						hits++
						break
					}
				}
			} else {
				for i := 0; i < n; i++ {
					if r.Bernoulli(probs[i]) {
						hits++
						break
					}
				}
			}
		}
	}
	opts.report(reps, reps)
	if opts.Metrics != nil {
		opts.Metrics.Counter("montecarlo.replications_total").Add(int64(reps))
		if opts.Sparse {
			opts.Metrics.Counter("montecarlo.sparse_skips_total").Add(skips)
		}
	}
	p := float64(hits) / float64(reps)
	return RareEventEstimate{
		Probability: p,
		StdErr:      math.Sqrt(p * (1 - p) / float64(reps)),
		HitFraction: p,
	}, nil
}
