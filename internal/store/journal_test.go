package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// buildJournal returns the framed bytes of n put records.
func buildJournal(t testing.TB, n int) []byte {
	t.Helper()
	var buf []byte
	for i := 0; i < n; i++ {
		payload, err := json.Marshal(op{Op: opPut, Job: &JobRecord{
			ID:        fmt.Sprintf("j-%06d-ffff", i+1),
			Seq:       uint64(i + 1),
			Status:    "done",
			Submitted: time.Unix(int64(1_700_000_000+i), 0).UTC(),
			Result:    json.RawMessage(`{"jobId":"job-ffff"}`),
		}})
		if err != nil {
			t.Fatal(err)
		}
		buf = frame(buf, payload)
	}
	return buf
}

func TestReplayIntactJournal(t *testing.T) {
	t.Parallel()
	data := buildJournal(t, 5)
	res, err := replayJournal(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.payloads) != 5 || res.goodBytes != int64(len(data)) || res.tornBytes != 0 {
		t.Fatalf("replay = %d records, %d good bytes, %d torn; want 5, %d, 0",
			len(res.payloads), res.goodBytes, res.tornBytes, len(data))
	}
}

// TestReplayEveryTruncationPoint cuts a valid journal at every possible
// byte length: replay must never fail, and must recover exactly the
// records whose frames are complete.
func TestReplayEveryTruncationPoint(t *testing.T) {
	t.Parallel()
	data := buildJournal(t, 4)
	// recordEnds[i] is the offset at which record i's frame ends.
	var recordEnds []int64
	{
		res, err := replayJournal(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		var off int64
		for _, p := range res.payloads {
			off += frameHeaderLen + int64(len(p))
			recordEnds = append(recordEnds, off)
		}
	}
	for cut := 0; cut <= len(data); cut++ {
		res, err := replayJournal(bytes.NewReader(data[:cut]))
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		wantRecords := 0
		for _, end := range recordEnds {
			if int64(cut) >= end {
				wantRecords++
			}
		}
		if len(res.payloads) != wantRecords {
			t.Fatalf("cut=%d: recovered %d records, want %d", cut, len(res.payloads), wantRecords)
		}
		if res.goodBytes+res.tornBytes != int64(cut) {
			t.Fatalf("cut=%d: good %d + torn %d != %d", cut, res.goodBytes, res.tornBytes, cut)
		}
	}
}

func TestReplayStopsAtCorruptRecord(t *testing.T) {
	t.Parallel()
	data := buildJournal(t, 3)
	// Flip one byte inside the second record's payload.
	res, err := replayJournal(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	firstEnd := frameHeaderLen + len(res.payloads[0])
	corrupt := append([]byte(nil), data...)
	corrupt[firstEnd+frameHeaderLen+2] ^= 0xff
	res2, err := replayJournal(bytes.NewReader(corrupt))
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.payloads) != 1 {
		t.Fatalf("recovered %d records past a mid-journal corruption, want 1", len(res2.payloads))
	}
	if res2.goodBytes != int64(firstEnd) {
		t.Fatalf("goodBytes = %d, want %d", res2.goodBytes, firstEnd)
	}
}

func TestReplayOversizedLengthIsTornTail(t *testing.T) {
	t.Parallel()
	data := buildJournal(t, 1)
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], maxRecordLen+1)
	data = append(data, hdr[:]...)
	res, err := replayJournal(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.payloads) != 1 || res.tornBytes != frameHeaderLen {
		t.Fatalf("replay = %d records, %d torn bytes; want 1, %d", len(res.payloads), res.tornBytes, frameHeaderLen)
	}
}

// TestOpenTruncatesTornTailAndResumesAppending proves the end-to-end
// crash contract: a journal with a torn tail opens cleanly, the tail is
// cut away on disk, and new appends replay on the next open.
func TestOpenTruncatesTornTailAndResumesAppending(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	s := openTest(t, dir)
	for seq := uint64(1); seq <= 3; seq++ {
		if err := s.Put(record(fmt.Sprintf("j-%d", seq), seq)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: chop the last record in half.
	path := filepath.Join(dir, "journal-00000000.log")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-len(data)/6], 0o644); err != nil {
		t.Fatal(err)
	}

	r := openTest(t, dir)
	if got := len(r.Jobs()); got != 2 {
		t.Fatalf("replayed %d jobs from torn journal, want 2", got)
	}
	if st := r.ReplayStats(); st.TornBytes == 0 {
		t.Fatal("replay reported no torn bytes for a truncated journal")
	}
	if err := r.Put(record("j-after", 9)); err != nil {
		t.Fatalf("append after torn-tail recovery: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	r2 := openTest(t, dir)
	if got := len(r2.Jobs()); got != 3 {
		t.Fatalf("replayed %d jobs after post-recovery append, want 3", got)
	}
	if st := r2.ReplayStats(); st.TornBytes != 0 {
		t.Fatalf("second recovery still reports %d torn bytes", st.TornBytes)
	}
}

// FuzzReplayTruncatedTail proves replay tolerates a valid journal cut
// at an arbitrary byte boundary: never a panic, never an error, always
// a prefix of the records.
func FuzzReplayTruncatedTail(f *testing.F) {
	data := buildJournal(f, 6)
	f.Add(uint(0))
	f.Add(uint(len(data)))
	f.Add(uint(len(data) - 1))
	f.Add(uint(frameHeaderLen - 1))
	f.Add(uint(len(data) / 2))
	want, err := replayJournal(bytes.NewReader(data))
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, cut uint) {
		cut %= uint(len(data)) + 1
		res, err := replayJournal(bytes.NewReader(data[:cut]))
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if len(res.payloads) > len(want.payloads) {
			t.Fatalf("cut=%d: more records than the full journal", cut)
		}
		for i, p := range res.payloads {
			if !bytes.Equal(p, want.payloads[i]) {
				t.Fatalf("cut=%d: record %d differs from the full journal's", cut, i)
			}
		}
	})
}

// FuzzReplayArbitraryBytes feeds replay completely arbitrary journal
// contents — garbage headers, random lengths, corrupt payloads — and a
// full Open on top of them. Neither may panic, and Open must leave the
// store appendable.
func FuzzReplayArbitraryBytes(f *testing.F) {
	f.Add([]byte{})
	f.Add(buildJournal(f, 2))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0}, frameHeaderLen+3))
	f.Fuzz(func(t *testing.T, data []byte) {
		if _, err := replayJournal(bytes.NewReader(data)); err != nil {
			t.Fatalf("replay of arbitrary bytes errored: %v", err)
		}
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "journal-00000000.log"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("Open over arbitrary journal bytes: %v", err)
		}
		defer s.Close()
		if err := s.Put(record("j-fuzz", 1)); err != nil {
			t.Fatalf("append after arbitrary-bytes recovery: %v", err)
		}
	})
}
