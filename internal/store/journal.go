// Package store is the durable job ledger behind cmd/serve: a
// stdlib-only, crash-safe, append-only JSON journal plus periodic
// compaction to a snapshot and a fresh segment.
//
// Layout inside the store directory (generation G is a monotonically
// increasing integer):
//
//	snapshot-<G>.json   materialised ledger state at the last compaction
//	journal-<G>.log     framed operation records appended since then
//
// Each journal record is framed as an 8-byte header — uint32
// little-endian payload length, then uint32 little-endian CRC-32C
// (Castagnoli) of the payload — followed by the JSON payload itself.
// Replay reads records until the first frame that is incomplete or
// fails its checksum; everything from that point on is treated as a
// torn tail from a crash mid-append, truncated away, and appending
// resumes at the last good offset. A snapshot is written to a
// temporary file, fsynced and renamed into place before the fresh
// journal segment starts, so every crash window leaves either the old
// generation or the new one fully intact — never a half state.
//
// The store knows the shape of job records (JobRecord) but nothing
// about the engine: specs and results travel as opaque
// json.RawMessage, so the package has no dependency on the layers it
// persists.
package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// frameHeaderLen is the framed-record header size: uint32 payload
// length plus uint32 CRC-32C, both little-endian.
const frameHeaderLen = 8

// maxRecordLen bounds a single record's payload so a corrupt length
// field cannot ask replay for an absurd allocation.
const maxRecordLen = 64 << 20

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frame appends the framed encoding of payload to buf and returns it.
func frame(buf, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// replayResult reports what replaying one journal read: the decoded
// payloads of every intact record, the byte offset the last of them
// ends at, and how many trailing bytes were discarded as a torn tail.
type replayResult struct {
	payloads  [][]byte
	goodBytes int64
	tornBytes int64
}

// replayJournal reads framed records from r until EOF or the first
// frame that is incomplete, oversized or checksum-corrupt. It never
// fails on a damaged tail — that is the normal aftermath of a crash
// mid-append — and only returns an error for I/O failures on the
// underlying reader.
func replayJournal(r io.Reader) (replayResult, error) {
	var res replayResult
	br := newByteCounter(r)
	var hdr [frameHeaderLen]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				break // clean end, or a torn header
			}
			return res, fmt.Errorf("store: reading journal header: %w", err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length > maxRecordLen {
			break // corrupt length: treat as torn tail
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(br, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				break // torn payload
			}
			return res, fmt.Errorf("store: reading journal payload: %w", err)
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			break // corrupt payload: stop at the last good record
		}
		res.payloads = append(res.payloads, payload)
		res.goodBytes = br.n
	}
	// Drain whatever remains so tornBytes counts the full damaged tail.
	if _, err := io.Copy(io.Discard, br); err != nil {
		return res, fmt.Errorf("store: draining journal tail: %w", err)
	}
	res.tornBytes = br.n - res.goodBytes
	return res, nil
}

// byteCounter counts bytes read through it.
type byteCounter struct {
	r io.Reader
	n int64
}

func newByteCounter(r io.Reader) *byteCounter { return &byteCounter{r: r} }

func (b *byteCounter) Read(p []byte) (int, error) {
	n, err := b.r.Read(p)
	b.n += int64(n)
	return n, err
}

// decodeOp unmarshals one journal payload. A payload that passed its
// CRC but does not decode indicates a writer bug or cross-version
// schema break, not a torn tail; the caller decides whether to skip or
// stop.
func decodeOp(payload []byte) (op, error) {
	var o op
	if err := json.Unmarshal(payload, &o); err != nil {
		return op{}, fmt.Errorf("store: decoding journal record: %w", err)
	}
	return o, nil
}

// syncDir fsyncs a directory so renames and file creations inside it
// are durable. Best effort on filesystems that reject directory fsync.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !os.IsPermission(err) {
		return err
	}
	return nil
}
