package store

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"diversity/internal/telemetry"
)

// Fsync policies for Options.Fsync.
const (
	// FsyncAlways fsyncs the journal after every appended record: a
	// record acknowledged to the caller survives an immediate power
	// loss. The default.
	FsyncAlways = "always"
	// FsyncOff leaves flushing to the OS page cache: appends are
	// buffered writes only (snapshots are still fsynced before their
	// rename). A crash can lose the most recent records — replay
	// tolerates the torn tail, so the store still opens cleanly.
	FsyncOff = "off"
)

// Options parameterise Open.
type Options struct {
	// Dir is the store directory; created (0o755) when missing.
	Dir string
	// Fsync is the append durability policy: FsyncAlways (default) or
	// FsyncOff.
	Fsync string
	// CompactEvery triggers compaction — materialise the ledger into a
	// fresh snapshot and start an empty journal segment — once this many
	// records have been appended to the current segment. <= 0 selects
	// 4096; compaction can also be invoked explicitly with Compact.
	CompactEvery int
	// Registry receives the store.* metrics; nil disables them.
	Registry *telemetry.Registry
	// Logger, when non-nil, receives replay and compaction lines.
	Logger *slog.Logger
}

// JobRecord is the persisted state of one submitted job. Spec and
// Result are opaque to the store: the serving layer writes its own
// encodings (an engine.Job and a stored result envelope) and decodes
// them on replay.
type JobRecord struct {
	// ID is the server-unique submission ID — the primary key.
	ID string `json:"id"`
	// Seq is the submission sequence number, so a restarted server
	// continues numbering where the crashed one stopped.
	Seq uint64 `json:"seq"`
	// EngineID is the stable spec-hash-derived job ID ("job-<hash16>").
	EngineID string `json:"engineId,omitempty"`
	// RunID is the submitting request's correlation ID.
	RunID string `json:"runId,omitempty"`
	// Kind is the job kind ("montecarlo", "analytic", ...).
	Kind string `json:"kind,omitempty"`
	// Spec is the submitted job spec, verbatim.
	Spec json.RawMessage `json:"spec,omitempty"`
	// Status is the job's lifecycle state using the serving layer's
	// names: queued, running, done, failed, cancelled.
	Status string `json:"status"`
	// Error is the failure or cancellation message of non-done terminal
	// jobs.
	Error string `json:"error,omitempty"`
	// Submitted, Started and Finished are the lifecycle timestamps;
	// Started and Finished are zero until the transition happens.
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitempty"`
	Finished  time.Time `json:"finished,omitempty"`
	// Result is the persisted result envelope of done jobs.
	Result json.RawMessage `json:"result,omitempty"`
}

// Update is a partial JobRecord: non-zero fields overwrite the stored
// record with the same ID.
type Update struct {
	ID       string          `json:"id"`
	Status   string          `json:"status,omitempty"`
	Error    string          `json:"error,omitempty"`
	Started  time.Time       `json:"started,omitempty"`
	Finished time.Time       `json:"finished,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"`
}

// op is one journal record: a put (full upsert), an update (partial,
// merged into the stored record) or an evict.
type op struct {
	Op     string     `json:"op"`
	Job    *JobRecord `json:"job,omitempty"`    // put
	Update *Update    `json:"update,omitempty"` // update
	ID     string     `json:"id,omitempty"`     // evict
}

const (
	opPut    = "put"
	opUpdate = "update"
	opEvict  = "evict"
)

// snapshotVersion versions the snapshot schema.
const snapshotVersion = 1

// snapshot is the materialised ledger a compaction writes.
type snapshot struct {
	Version int          `json:"version"`
	Gen     uint64       `json:"gen"`
	Jobs    []*JobRecord `json:"jobs"`
}

// ReplayStats reports what Open recovered.
type ReplayStats struct {
	// SnapshotJobs is the number of jobs loaded from the snapshot;
	// JournalRecords the number of intact journal records applied on
	// top of it.
	SnapshotJobs   int
	JournalRecords int
	// TornBytes is the size of the truncated journal tail (0 after a
	// clean shutdown).
	TornBytes int64
	// Gen is the generation the store resumed on.
	Gen uint64
}

// Store is a durable job ledger: an in-memory materialised state kept
// in lockstep with an append-only journal on disk. All methods are
// safe for concurrent use.
type Store struct {
	dir          string
	fsync        bool
	compactEvery int
	reg          *telemetry.Registry
	log          *slog.Logger

	mu      sync.Mutex
	gen     uint64
	journal *os.File
	jbytes  int64 // current journal size
	pending int   // records appended to the current segment
	state   map[string]*JobRecord
	replay  ReplayStats
	closed  bool
	encBuf  []byte // reused frame buffer
}

// Open opens (creating if needed) the store in opts.Dir, replays the
// newest intact snapshot plus its journal — tolerating a torn journal
// tail from a crash mid-append — and resumes appending.
func Open(opts Options) (*Store, error) {
	switch opts.Fsync {
	case "", FsyncAlways, FsyncOff:
	default:
		return nil, fmt.Errorf("store: unknown fsync policy %q (want %s or %s)", opts.Fsync, FsyncAlways, FsyncOff)
	}
	if opts.Dir == "" {
		return nil, fmt.Errorf("store: directory must not be empty")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating directory: %w", err)
	}
	if opts.CompactEvery <= 0 {
		opts.CompactEvery = 4096
	}
	s := &Store{
		dir:          opts.Dir,
		fsync:        opts.Fsync != FsyncOff,
		compactEvery: opts.CompactEvery,
		reg:          opts.Registry,
		log:          opts.Logger,
		state:        make(map[string]*JobRecord),
	}
	// Pre-register the store.* series so the first scrape after a
	// restart carries them — zeros included (docs/METRICS.md).
	if s.reg != nil {
		s.reg.Counter("store.appends_total")
		s.reg.Counter("store.fsyncs_total")
		s.reg.Counter("store.replay_records_total")
		s.reg.Counter("store.compactions_total")
		s.reg.Gauge("store.journal_bytes")
	}
	if err := s.open(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Store) snapshotPath(gen uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("snapshot-%08d.json", gen))
}

func (s *Store) journalPath(gen uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("journal-%08d.log", gen))
}

// parseGen extracts the generation from a store filename.
func parseGen(name, prefix, suffix string) (uint64, bool) {
	rest, ok := strings.CutPrefix(name, prefix)
	if !ok {
		return 0, false
	}
	rest, ok = strings.CutSuffix(rest, suffix)
	if !ok {
		return 0, false
	}
	gen, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return 0, false
	}
	return gen, true
}

// open recovers the newest intact generation and opens its journal for
// appending.
func (s *Store) open() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: listing %s: %w", s.dir, err)
	}
	var snapGens []uint64
	for _, e := range entries {
		if gen, ok := parseGen(e.Name(), "snapshot-", ".json"); ok {
			snapGens = append(snapGens, gen)
		}
	}
	sort.Slice(snapGens, func(i, j int) bool { return snapGens[i] > snapGens[j] })

	// Newest parseable snapshot wins. An unparseable one (crash windows
	// cannot produce this — snapshots rename into place — but disks can)
	// falls back to the previous generation.
	for _, gen := range snapGens {
		data, err := os.ReadFile(s.snapshotPath(gen))
		if err != nil {
			continue
		}
		var snap snapshot
		if err := json.Unmarshal(data, &snap); err != nil || snap.Version != snapshotVersion {
			s.logWarn("skipping unreadable snapshot", "gen", gen, "err", err)
			continue
		}
		s.gen = gen
		for _, job := range snap.Jobs {
			s.state[job.ID] = job
		}
		s.replay.SnapshotJobs = len(snap.Jobs)
		break
	}
	// The journal to resume is always the chosen generation's: gen 0 has
	// no snapshot (empty base state), and a crash between a compaction's
	// snapshot rename and its journal rotation leaves the new journal
	// missing — replayAndOpenJournal recreates it empty, and every record
	// of the previous segment is covered by the snapshot just loaded.
	s.replay.Gen = s.gen

	if err := s.replayAndOpenJournal(); err != nil {
		return err
	}
	s.cleanupStale()
	if s.reg != nil {
		s.reg.Counter("store.replay_records_total").Add(int64(s.replay.SnapshotJobs + s.replay.JournalRecords))
		s.reg.Gauge("store.journal_bytes").Set(float64(s.jbytes))
	}
	if s.log != nil {
		s.log.Info("store opened",
			"dir", s.dir, "gen", s.gen,
			"snapshot_jobs", s.replay.SnapshotJobs,
			"journal_records", s.replay.JournalRecords,
			"torn_bytes", s.replay.TornBytes)
	}
	return nil
}

// replayAndOpenJournal replays the current generation's journal,
// truncates any torn tail, and leaves the file open for appending.
func (s *Store) replayAndOpenJournal() error {
	path := s.journalPath(s.gen)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("store: opening journal: %w", err)
	}
	res, err := replayJournal(f)
	if err != nil {
		f.Close()
		return err
	}
	for _, payload := range res.payloads {
		o, err := decodeOp(payload)
		if err != nil {
			// CRC-valid but undecodable: a schema break, not a torn
			// tail. Skip the record rather than refuse the whole store.
			s.logWarn("skipping undecodable journal record", "err", err)
			continue
		}
		s.apply(o)
		s.replay.JournalRecords++
	}
	s.replay.TornBytes = res.tornBytes
	if res.tornBytes > 0 {
		s.logWarn("truncating torn journal tail", "bytes", res.tornBytes, "offset", res.goodBytes)
		if err := f.Truncate(res.goodBytes); err != nil {
			f.Close()
			return fmt.Errorf("store: truncating torn journal tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("store: syncing truncated journal: %w", err)
		}
	}
	if _, err := f.Seek(res.goodBytes, 0); err != nil {
		f.Close()
		return fmt.Errorf("store: seeking journal end: %w", err)
	}
	s.journal = f
	s.jbytes = res.goodBytes
	return nil
}

// apply merges one operation into the materialised state.
func (s *Store) apply(o op) {
	switch o.Op {
	case opPut:
		if o.Job != nil {
			job := *o.Job
			s.state[job.ID] = &job
		}
	case opUpdate:
		if o.Update == nil {
			return
		}
		job, ok := s.state[o.Update.ID]
		if !ok {
			return // updated after eviction: nothing to merge into
		}
		if o.Update.Status != "" {
			job.Status = o.Update.Status
		}
		if o.Update.Error != "" {
			job.Error = o.Update.Error
		}
		if !o.Update.Started.IsZero() {
			job.Started = o.Update.Started
		}
		if !o.Update.Finished.IsZero() {
			job.Finished = o.Update.Finished
		}
		if len(o.Update.Result) > 0 {
			job.Result = o.Update.Result
		}
	case opEvict:
		delete(s.state, o.ID)
	}
}

// cleanupStale removes files of generations older than the current one
// (and stray newer journals from failed compactions). Best effort.
func (s *Store) cleanupStale() {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		var gen uint64
		var ok bool
		if gen, ok = parseGen(e.Name(), "snapshot-", ".json"); !ok {
			if gen, ok = parseGen(e.Name(), "journal-", ".log"); !ok {
				if strings.HasSuffix(e.Name(), ".tmp") {
					os.Remove(filepath.Join(s.dir, e.Name()))
				}
				continue
			}
		}
		if gen != s.gen {
			os.Remove(filepath.Join(s.dir, e.Name()))
		}
	}
}

// Jobs returns the materialised ledger in submission (Seq) order. The
// returned records are copies.
func (s *Store) Jobs() []JobRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobRecord, 0, len(s.state))
	for _, job := range s.state {
		out = append(out, *job)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// MaxSeq returns the highest submission sequence number ever stored
// (0 when the ledger is empty), so a restarted server continues
// numbering without collisions.
func (s *Store) MaxSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var maxSeq uint64
	for _, job := range s.state {
		maxSeq = max(maxSeq, job.Seq)
	}
	return maxSeq
}

// ReplayStats reports what Open recovered.
func (s *Store) ReplayStats() ReplayStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replay
}

// Put journals a full job record (a new submission, or an upsert).
func (s *Store) Put(job JobRecord) error {
	return s.append(op{Op: opPut, Job: &job})
}

// Update journals a partial job update: non-zero fields overwrite the
// stored record.
func (s *Store) Update(u Update) error {
	return s.append(op{Op: opUpdate, Update: &u})
}

// Evict journals the removal of a job from the ledger.
func (s *Store) Evict(id string) error {
	return s.append(op{Op: opEvict, ID: id})
}

// append journals one operation, applies it to the materialised state,
// and compacts when the segment has accumulated CompactEvery records.
func (s *Store) append(o op) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	payload, err := json.Marshal(o)
	if err != nil {
		return fmt.Errorf("store: encoding journal record: %w", err)
	}
	// A record past the replay cap would be indistinguishable from a torn
	// tail on the next open; refuse it while the caller can still react.
	if len(payload) > maxRecordLen {
		return fmt.Errorf("store: journal record of %d bytes exceeds the %d byte cap", len(payload), maxRecordLen)
	}
	s.encBuf = frame(s.encBuf[:0], payload)
	if _, err := s.journal.Write(s.encBuf); err != nil {
		return fmt.Errorf("store: appending journal record: %w", err)
	}
	if s.fsync {
		if err := s.journal.Sync(); err != nil {
			return fmt.Errorf("store: syncing journal: %w", err)
		}
		if s.reg != nil {
			s.reg.Counter("store.fsyncs_total").Inc()
		}
	}
	s.jbytes += int64(len(s.encBuf))
	s.pending++
	s.apply(o)
	if s.reg != nil {
		s.reg.Counter("store.appends_total").Inc()
		s.reg.Gauge("store.journal_bytes").Set(float64(s.jbytes))
	}
	if s.pending >= s.compactEvery {
		return s.compactLocked()
	}
	return nil
}

// Compact materialises the ledger into a fresh snapshot and starts an
// empty journal segment, bounding replay time and reclaiming the space
// of overwritten records. Open compacts implicitly every CompactEvery
// appends; call this for an explicit checkpoint (e.g. before a backup).
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	next := s.gen + 1
	snap := snapshot{Version: snapshotVersion, Gen: next}
	snap.Jobs = make([]*JobRecord, 0, len(s.state))
	for _, job := range s.state {
		snap.Jobs = append(snap.Jobs, job)
	}
	sort.Slice(snap.Jobs, func(i, j int) bool { return snap.Jobs[i].Seq < snap.Jobs[j].Seq })
	data, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("store: encoding snapshot: %w", err)
	}

	// Write-fsync-rename, then rotate the journal. A crash before the
	// rename leaves the old generation authoritative; after it, the new
	// snapshot is complete and a missing journal segment is simply
	// recreated empty on the next open.
	tmp := s.snapshotPath(next) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating snapshot: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: syncing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp, s.snapshotPath(next)); err != nil {
		return fmt.Errorf("store: publishing snapshot: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return fmt.Errorf("store: syncing store directory: %w", err)
	}

	nj, err := os.OpenFile(s.journalPath(next), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: starting journal segment: %w", err)
	}
	old := s.journal
	oldGen := s.gen
	s.journal = nj
	s.jbytes = 0
	s.pending = 0
	s.gen = next
	old.Close()
	os.Remove(s.journalPath(oldGen))
	os.Remove(s.snapshotPath(oldGen))
	if s.reg != nil {
		s.reg.Counter("store.compactions_total").Inc()
		if s.fsync {
			s.reg.Counter("store.fsyncs_total").Inc()
		}
		s.reg.Gauge("store.journal_bytes").Set(0)
	}
	if s.log != nil {
		s.log.Info("store compacted", "gen", next, "jobs", len(snap.Jobs), "snapshot_bytes", len(data))
	}
	return nil
}

func (s *Store) logWarn(msg string, args ...any) {
	if s.log != nil {
		s.log.Warn(msg, args...)
	}
}

// Close syncs and closes the journal. Further appends fail; Close is
// idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.journal.Sync(); err != nil {
		s.journal.Close()
		return fmt.Errorf("store: syncing journal on close: %w", err)
	}
	if s.reg != nil {
		s.reg.Counter("store.fsyncs_total").Inc()
	}
	if err := s.journal.Close(); err != nil {
		return fmt.Errorf("store: closing journal: %w", err)
	}
	return nil
}
