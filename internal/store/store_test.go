package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"diversity/internal/telemetry"
)

func openTest(t *testing.T, dir string, mutate ...func(*Options)) *Store {
	t.Helper()
	opts := Options{Dir: dir}
	for _, m := range mutate {
		m(&opts)
	}
	s, err := Open(opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func record(id string, seq uint64) JobRecord {
	return JobRecord{
		ID:        id,
		Seq:       seq,
		EngineID:  "job-deadbeefdeadbeef",
		RunID:     "run-test",
		Kind:      "analytic",
		Spec:      json.RawMessage(`{"kind":"analytic"}`),
		Status:    "queued",
		Submitted: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC),
	}
}

func TestPutUpdateEvictRoundTrip(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	s := openTest(t, dir)

	finished := time.Date(2026, 8, 8, 12, 0, 5, 0, time.UTC)
	if err := s.Put(record("j-000001-dead", 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(record("j-000002-beef", 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Update(Update{ID: "j-000001-dead", Status: "done", Finished: finished, Result: json.RawMessage(`{"jobId":"job-x"}`)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Evict("j-000002-beef"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := openTest(t, dir)
	jobs := r.Jobs()
	if len(jobs) != 1 {
		t.Fatalf("replayed %d jobs, want 1 (evict must stick)", len(jobs))
	}
	got := jobs[0]
	if got.ID != "j-000001-dead" || got.Status != "done" || !got.Finished.Equal(finished) {
		t.Fatalf("replayed record = %+v", got)
	}
	if string(got.Result) != `{"jobId":"job-x"}` {
		t.Fatalf("replayed result = %s", got.Result)
	}
	if !got.Submitted.Equal(record("", 0).Submitted) {
		t.Fatalf("submitted timestamp lost: %v", got.Submitted)
	}
	if r.MaxSeq() != 1 {
		t.Fatalf("MaxSeq = %d, want 1", r.MaxSeq())
	}
	st := r.ReplayStats()
	if st.JournalRecords != 4 || st.TornBytes != 0 {
		t.Fatalf("replay stats = %+v, want 4 journal records and no torn tail", st)
	}
}

func TestUpdateAfterEvictIsIgnored(t *testing.T) {
	t.Parallel()
	s := openTest(t, t.TempDir())
	if err := s.Put(record("j-1", 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Evict("j-1"); err != nil {
		t.Fatal(err)
	}
	if err := s.Update(Update{ID: "j-1", Status: "done"}); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Jobs()); got != 0 {
		t.Fatalf("ledger has %d jobs after evict, want 0", got)
	}
}

func TestCompactionSnapshotAndFreshSegment(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	s := openTest(t, dir)
	for seq := uint64(1); seq <= 5; seq++ {
		rec := record("j-"+strings.Repeat("0", int(seq)), seq)
		if err := s.Put(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Evict("j-0"); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}

	// The snapshot of the new generation exists; the old segment and the
	// overwritten records are gone; the fresh segment is empty.
	if _, err := os.Stat(filepath.Join(dir, "snapshot-00000001.json")); err != nil {
		t.Fatalf("snapshot missing after compaction: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "journal-00000000.log")); !os.IsNotExist(err) {
		t.Fatalf("old journal segment still present (err=%v)", err)
	}
	info, err := os.Stat(filepath.Join(dir, "journal-00000001.log"))
	if err != nil {
		t.Fatalf("fresh journal segment missing: %v", err)
	}
	if info.Size() != 0 {
		t.Fatalf("fresh journal segment has %d bytes, want 0", info.Size())
	}

	// Post-compaction appends land in the new segment and replay on top
	// of the snapshot.
	if err := s.Put(record("j-post", 99)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r := openTest(t, dir)
	if got := len(r.Jobs()); got != 5 {
		t.Fatalf("replayed %d jobs after compaction, want 5", got)
	}
	st := r.ReplayStats()
	if st.SnapshotJobs != 4 || st.JournalRecords != 1 || st.Gen != 1 {
		t.Fatalf("replay stats = %+v, want 4 snapshot jobs + 1 journal record on gen 1", st)
	}
}

func TestAutoCompactionEveryN(t *testing.T) {
	t.Parallel()
	reg := telemetry.NewRegistry()
	s := openTest(t, t.TempDir(), func(o *Options) { o.CompactEvery = 3; o.Registry = reg })
	for seq := uint64(1); seq <= 7; seq++ {
		if err := s.Put(record("j-auto", seq)); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter("store.compactions_total").Value(); got != 2 {
		t.Fatalf("compactions after 7 appends with CompactEvery=3: %d, want 2", got)
	}
}

func TestFsyncPolicy(t *testing.T) {
	t.Parallel()
	regAlways := telemetry.NewRegistry()
	s := openTest(t, t.TempDir(), func(o *Options) { o.Registry = regAlways })
	if err := s.Put(record("j-1", 1)); err != nil {
		t.Fatal(err)
	}
	if got := regAlways.Counter("store.fsyncs_total").Value(); got < 1 {
		t.Fatalf("fsyncs under %q after one append: %d, want >= 1", FsyncAlways, got)
	}

	regOff := telemetry.NewRegistry()
	off := openTest(t, t.TempDir(), func(o *Options) { o.Fsync = FsyncOff; o.Registry = regOff })
	if err := off.Put(record("j-1", 1)); err != nil {
		t.Fatal(err)
	}
	if got := regOff.Counter("store.fsyncs_total").Value(); got != 0 {
		t.Fatalf("fsyncs under %q after one append: %d, want 0", FsyncOff, got)
	}

	if _, err := Open(Options{Dir: t.TempDir(), Fsync: "sometimes"}); err == nil {
		t.Fatal("Open accepted an unknown fsync policy")
	}
}

func TestMetricsRegistered(t *testing.T) {
	t.Parallel()
	reg := telemetry.NewRegistry()
	s := openTest(t, t.TempDir(), func(o *Options) { o.Registry = reg })
	if err := s.Put(record("j-1", 1)); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	for _, name := range []string{"store.appends_total", "store.fsyncs_total", "store.replay_records_total", "store.compactions_total"} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("counter %s not registered", name)
		}
	}
	if _, ok := snap.Gauges["store.journal_bytes"]; !ok {
		t.Error("gauge store.journal_bytes not registered")
	}
	if snap.Counters["store.appends_total"] != 1 {
		t.Errorf("store.appends_total = %d, want 1", snap.Counters["store.appends_total"])
	}
	if snap.Gauges["store.journal_bytes"] <= 0 {
		t.Errorf("store.journal_bytes = %v, want > 0", snap.Gauges["store.journal_bytes"])
	}
}

func TestReplayCountsIntoRegistry(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	s := openTest(t, dir)
	for seq := uint64(1); seq <= 3; seq++ {
		if err := s.Put(record("j-r", seq)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	openTest(t, dir, func(o *Options) { o.Registry = reg })
	if got := reg.Counter("store.replay_records_total").Value(); got != 3 {
		t.Fatalf("store.replay_records_total = %d, want 3", got)
	}
}

func TestClosedStoreRefusesAppends(t *testing.T) {
	t.Parallel()
	s := openTest(t, t.TempDir())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v, want idempotent nil", err)
	}
	if err := s.Put(record("j-1", 1)); err == nil {
		t.Fatal("Put on a closed store succeeded")
	}
}
