// Package bayes implements the extension the paper proposes in its
// conclusions: using the fault-creation model as a physically motivated
// prior for Bayesian assessment of a specific diverse system from its
// observed operational behaviour (reference [14] of the paper), instead of
// priors "chosen for computational convenience only".
//
// The prior over the system PFD is the model's discrete distribution
// (exact subset enumeration or lattice convolution). Observing the system
// survive T demands with f failures multiplies each support point's
// probability by the binomial likelihood θ^f·(1-θ)^(T-f); the posterior is
// renormalised and queried for means, quantiles and exceedance
// probabilities — the quantities a safety assessor reports.
package bayes

import (
	"errors"
	"fmt"
	"math"

	"diversity/internal/faultmodel"
)

// Posterior is a discrete posterior distribution over PFD values.
type Posterior struct {
	values []float64
	probs  []float64
}

// Update conditions a model-derived prior on operational evidence:
// `failures` system failures in `demands` independent demands. It returns
// an error for invalid counts, a nil prior, or evidence impossible under
// the prior (e.g. failures observed when the prior puts all mass on
// PFD = 0).
func Update(prior *faultmodel.Distribution, demands, failures int) (*Posterior, error) {
	if prior == nil {
		return nil, errors.New("bayes: prior must not be nil")
	}
	if demands < 0 {
		return nil, fmt.Errorf("bayes: demand count %d must be non-negative", demands)
	}
	if failures < 0 || failures > demands {
		return nil, fmt.Errorf("bayes: failure count %d must be in [0, %d]", failures, demands)
	}
	values, probs := prior.Support()

	// Work with log-likelihoods and subtract the maximum before
	// exponentiating: with T ~ 1e6 demands the raw likelihoods underflow
	// long before the posterior does.
	logLik := make([]float64, len(values))
	maxLL := math.Inf(-1)
	for i, theta := range values {
		ll := binomialLogLikelihood(theta, demands, failures)
		logLik[i] = ll
		if probs[i] > 0 && ll > maxLL {
			maxLL = ll
		}
	}
	if math.IsInf(maxLL, -1) {
		return nil, errors.New("bayes: evidence impossible under the prior")
	}
	post := &Posterior{
		values: values,
		probs:  make([]float64, len(values)),
	}
	total := 0.0
	for i := range values {
		if probs[i] == 0 || math.IsInf(logLik[i], -1) {
			continue
		}
		w := probs[i] * math.Exp(logLik[i]-maxLL)
		post.probs[i] = w
		total += w
	}
	if total == 0 {
		return nil, errors.New("bayes: evidence impossible under the prior")
	}
	for i := range post.probs {
		post.probs[i] /= total
	}
	return post, nil
}

// binomialLogLikelihood returns log P(f failures in T demands | PFD θ),
// dropping the θ-independent binomial coefficient.
func binomialLogLikelihood(theta float64, demands, failures int) float64 {
	switch {
	case theta < 0 || theta > 1:
		return math.Inf(-1)
	case failures == 0:
		if theta == 1 && demands > 0 {
			return math.Inf(-1)
		}
		return float64(demands) * math.Log1p(-theta)
	case theta == 0:
		return math.Inf(-1) // failures observed but θ = 0
	case theta == 1:
		if failures == demands {
			return 0
		}
		return math.Inf(-1)
	default:
		return float64(failures)*math.Log(theta) + float64(demands-failures)*math.Log1p(-theta)
	}
}

// Mean returns the posterior mean PFD.
func (p *Posterior) Mean() float64 {
	sum := 0.0
	for i, v := range p.values {
		sum += v * p.probs[i]
	}
	return sum
}

// Quantile returns the smallest support value x with P(Θ <= x) >= q.
// It returns an error if q is outside [0, 1].
func (p *Posterior) Quantile(q float64) (float64, error) {
	if math.IsNaN(q) || q < 0 || q > 1 {
		return 0, fmt.Errorf("bayes: quantile requires q in [0, 1], got %v", q)
	}
	cum := 0.0
	for i, v := range p.values {
		cum += p.probs[i]
		if cum >= q-1e-15 {
			return v, nil
		}
	}
	return p.values[len(p.values)-1], nil
}

// ProbBelow returns the posterior probability that the PFD is at most x —
// the assessor's confidence that the system meets a required bound ϑR.
func (p *Posterior) ProbBelow(x float64) float64 {
	sum := 0.0
	for i, v := range p.values {
		if v <= x {
			sum += p.probs[i]
		}
	}
	return sum
}

// ProbZero returns the posterior probability that the system has no
// defeating fault at all (PFD exactly 0) — the Section-4 measure after
// operational evidence.
func (p *Posterior) ProbZero() float64 {
	sum := 0.0
	for i, v := range p.values {
		if v == 0 {
			sum += p.probs[i]
		}
	}
	return sum
}

// DemandsForClaim answers the assessor's planning question: how many
// consecutive failure-free demands must be observed before the posterior
// probability that the PFD is at most `bound` reaches `confidence`? It
// returns the smallest such demand count (by binary search over Update),
// or an error if the claim is unreachable — i.e. even unlimited
// failure-free evidence cannot push enough mass below the bound, which
// happens exactly when the prior puts no mass on PFD = 0 or below the
// bound... in this discrete-prior setting, when the mass at PFD <= bound
// is zero. maxDemands caps the search (and the promise the answer makes).
func DemandsForClaim(prior *faultmodel.Distribution, bound, confidence float64, maxDemands int) (int, error) {
	if prior == nil {
		return 0, errors.New("bayes: prior must not be nil")
	}
	if math.IsNaN(bound) || bound < 0 {
		return 0, fmt.Errorf("bayes: PFD bound %v must be non-negative", bound)
	}
	if math.IsNaN(confidence) || confidence <= 0 || confidence >= 1 {
		return 0, fmt.Errorf("bayes: confidence %v must be in (0, 1)", confidence)
	}
	if maxDemands < 0 {
		return 0, fmt.Errorf("bayes: maximum demand count %d must be non-negative", maxDemands)
	}
	achieves := func(demands int) (bool, error) {
		post, err := Update(prior, demands, 0)
		if err != nil {
			return false, err
		}
		return post.ProbBelow(bound) >= confidence, nil
	}
	ok, err := achieves(0)
	if err != nil {
		return 0, err
	}
	if ok {
		return 0, nil
	}
	ok, err = achieves(maxDemands)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("bayes: claim P(PFD <= %v) >= %v not reachable within %d failure-free demands", bound, confidence, maxDemands)
	}
	lo, hi := 0, maxDemands
	for lo+1 < hi {
		mid := lo + (hi-lo)/2
		ok, err := achieves(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// PriorFromModel builds the prior over the two-version system PFD from a
// fault set: exactly when the universe is small enough, otherwise on a
// lattice with the given number of bins.
func PriorFromModel(fs *faultmodel.FaultSet, bins int) (*faultmodel.Distribution, error) {
	if fs == nil {
		return nil, errors.New("bayes: fault set must not be nil")
	}
	if fs.N() <= faultmodel.MaxExactFaults {
		return fs.ExactPFD(2)
	}
	return fs.LatticePFD(2, bins)
}

// EnsemblePrior builds a prior that also carries PARAMETER uncertainty:
// the assessor is unsure of the fault universe itself, so `generate`
// produces equally plausible fault sets (e.g. scenario draws with
// different seeds) and the prior is the equal-weight mixture of their
// system-PFD distributions. The paper's Section 3 concedes that "all
// parameters are unknown and unmeasurable in practice"; an ensemble prior
// is the honest Bayesian translation of that ignorance.
func EnsemblePrior(generate func(seed uint64) (*faultmodel.FaultSet, error), members, bins int) (*faultmodel.Distribution, error) {
	if generate == nil {
		return nil, errors.New("bayes: generator must not be nil")
	}
	if members < 1 {
		return nil, fmt.Errorf("bayes: ensemble size %d must be positive", members)
	}
	var values, probs []float64
	weight := 1 / float64(members)
	for seed := uint64(0); seed < uint64(members); seed++ {
		fs, err := generate(seed)
		if err != nil {
			return nil, fmt.Errorf("bayes: generating ensemble member %d: %w", seed, err)
		}
		member, err := PriorFromModel(fs, bins)
		if err != nil {
			return nil, fmt.Errorf("bayes: member %d prior: %w", seed, err)
		}
		vs, ps := member.Support()
		for i := range vs {
			values = append(values, vs[i])
			probs = append(probs, ps[i]*weight)
		}
	}
	return faultmodel.NewDistribution(values, probs)
}
