package bayes

import (
	"math"
	"testing"

	"diversity/internal/faultmodel"
)

func mustFaultSet(t *testing.T, faults []faultmodel.Fault) *faultmodel.FaultSet {
	t.Helper()
	fs, err := faultmodel.New(faults)
	if err != nil {
		t.Fatalf("faultmodel.New: %v", err)
	}
	return fs
}

func prior(t *testing.T, fs *faultmodel.FaultSet) *faultmodel.Distribution {
	t.Helper()
	d, err := PriorFromModel(fs, 512)
	if err != nil {
		t.Fatalf("PriorFromModel: %v", err)
	}
	return d
}

func TestUpdateValidation(t *testing.T) {
	t.Parallel()

	fs := mustFaultSet(t, []faultmodel.Fault{{P: 0.3, Q: 0.1}})
	d := prior(t, fs)
	if _, err := Update(nil, 10, 0); err == nil {
		t.Error("nil prior succeeded, want error")
	}
	if _, err := Update(d, -1, 0); err == nil {
		t.Error("negative demands succeeded, want error")
	}
	if _, err := Update(d, 10, 11); err == nil {
		t.Error("failures > demands succeeded, want error")
	}
}

func TestUpdateNoEvidenceIsPrior(t *testing.T) {
	t.Parallel()

	fs := mustFaultSet(t, []faultmodel.Fault{{P: 0.3, Q: 0.1}, {P: 0.2, Q: 0.05}})
	d := prior(t, fs)
	post, err := Update(d, 0, 0)
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	if math.Abs(post.Mean()-d.Mean()) > 1e-12 {
		t.Errorf("posterior mean %v != prior mean %v with no evidence", post.Mean(), d.Mean())
	}
}

// TestUpdateFailureFreeOperationShiftsMassDown: surviving many demands
// must reduce the posterior mean and raise the probability of a
// fault-free system.
func TestUpdateFailureFreeOperationShiftsMassDown(t *testing.T) {
	t.Parallel()

	fs := mustFaultSet(t, []faultmodel.Fault{{P: 0.4, Q: 0.01}, {P: 0.3, Q: 0.002}})
	d := prior(t, fs)
	priorZero := 0.0
	{
		values, probs := d.Support()
		for i, v := range values {
			if v == 0 {
				priorZero += probs[i]
			}
		}
	}
	prevMean := d.Mean()
	prevZero := priorZero
	for _, demands := range []int{100, 1000, 10000} {
		post, err := Update(d, demands, 0)
		if err != nil {
			t.Fatalf("Update(%d, 0): %v", demands, err)
		}
		if post.Mean() >= prevMean {
			t.Errorf("T=%d: posterior mean %v not below previous %v", demands, post.Mean(), prevMean)
		}
		if post.ProbZero() <= prevZero {
			t.Errorf("T=%d: P(PFD=0) %v not above previous %v", demands, post.ProbZero(), prevZero)
		}
		prevMean = post.Mean()
		prevZero = post.ProbZero()
	}
}

// TestUpdateLongFailureFreeOperationConcentratesOnZero: with enormous
// failure-free exposure, essentially all posterior mass sits on PFD = 0
// (the only support point that never fails).
func TestUpdateLongFailureFreeOperationConcentratesOnZero(t *testing.T) {
	t.Parallel()

	fs := mustFaultSet(t, []faultmodel.Fault{{P: 0.4, Q: 0.01}})
	d := prior(t, fs)
	post, err := Update(d, 10_000_000, 0)
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	if post.ProbZero() < 0.999999 {
		t.Errorf("P(PFD=0 | 1e7 clean demands) = %v, want ~1", post.ProbZero())
	}
}

func TestUpdateObservedFailuresEliminateZero(t *testing.T) {
	t.Parallel()

	fs := mustFaultSet(t, []faultmodel.Fault{{P: 0.4, Q: 0.01}, {P: 0.3, Q: 0.02}})
	d := prior(t, fs)
	post, err := Update(d, 1000, 3)
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	if post.ProbZero() != 0 {
		t.Errorf("P(PFD=0) = %v after observed failures, want 0", post.ProbZero())
	}
	// The posterior should concentrate near the empirical rate 0.003,
	// which the support points 0.01, 0.02, 0.03 bracket from above:
	// the smallest positive support point (0.01) should dominate.
	q50, err := post.Quantile(0.5)
	if err != nil {
		t.Fatalf("Quantile: %v", err)
	}
	if q50 != 0.01 {
		t.Errorf("posterior median = %v, want 0.01", q50)
	}
}

func TestUpdateImpossibleEvidence(t *testing.T) {
	t.Parallel()

	// Prior: the system certainly has no fault (p=0): observing a
	// failure is impossible.
	fs := mustFaultSet(t, []faultmodel.Fault{{P: 0, Q: 0.1}})
	d := prior(t, fs)
	if _, err := Update(d, 10, 1); err == nil {
		t.Error("impossible evidence succeeded, want error")
	}
}

func TestPosteriorQuantileAndProbBelow(t *testing.T) {
	t.Parallel()

	fs := mustFaultSet(t, []faultmodel.Fault{{P: 0.5, Q: 0.1}})
	d := prior(t, fs) // support {0, 0.1} at 0.75/0.25 for the pair system
	post, err := Update(d, 0, 0)
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	if got := post.ProbBelow(0.05); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("ProbBelow(0.05) = %v, want 0.75", got)
	}
	if got := post.ProbBelow(0.1); math.Abs(got-1) > 1e-12 {
		t.Errorf("ProbBelow(0.1) = %v, want 1", got)
	}
	q, err := post.Quantile(0.5)
	if err != nil {
		t.Fatalf("Quantile: %v", err)
	}
	if q != 0 {
		t.Errorf("median = %v, want 0", q)
	}
	q, err = post.Quantile(0.9)
	if err != nil {
		t.Fatalf("Quantile: %v", err)
	}
	if q != 0.1 {
		t.Errorf("90th percentile = %v, want 0.1", q)
	}
	if _, err := post.Quantile(1.5); err == nil {
		t.Error("Quantile(1.5) succeeded, want error")
	}
}

func TestPriorFromModelLargeUniverseUsesLattice(t *testing.T) {
	t.Parallel()

	faults := make([]faultmodel.Fault, faultmodel.MaxExactFaults+5)
	for i := range faults {
		faults[i] = faultmodel.Fault{P: 0.1, Q: 0.5 / float64(len(faults))}
	}
	fs := mustFaultSet(t, faults)
	d, err := PriorFromModel(fs, 256)
	if err != nil {
		t.Fatalf("PriorFromModel: %v", err)
	}
	mu2, err := fs.MeanPFD(2)
	if err != nil {
		t.Fatalf("MeanPFD: %v", err)
	}
	if math.Abs(d.Mean()-mu2) > 1e-9 {
		t.Errorf("lattice prior mean %v, model %v", d.Mean(), mu2)
	}
	if _, err := PriorFromModel(nil, 256); err == nil {
		t.Error("nil fault set succeeded, want error")
	}
}

func TestDemandsForClaim(t *testing.T) {
	t.Parallel()

	fs := mustFaultSet(t, []faultmodel.Fault{{P: 0.4, Q: 0.01}})
	d := prior(t, fs)
	// Claim: PFD <= 0.001 (i.e. effectively PFD = 0 in this two-point
	// prior) at 99% confidence. Prior mass below: 0.6·... for the pair
	// system P(no common fault) = 1-0.16 = 0.84 < 0.99, so some testing
	// is needed.
	demands, err := DemandsForClaim(d, 0.001, 0.99, 10_000_000)
	if err != nil {
		t.Fatalf("DemandsForClaim: %v", err)
	}
	if demands <= 0 {
		t.Fatalf("demands = %d, want positive", demands)
	}
	// Verify minimality: the claim holds at `demands` and not at
	// `demands-1`.
	post, err := Update(d, demands, 0)
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	if post.ProbBelow(0.001) < 0.99 {
		t.Errorf("claim not achieved at the returned count %d", demands)
	}
	post, err = Update(d, demands-1, 0)
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	if post.ProbBelow(0.001) >= 0.99 {
		t.Errorf("claim already achieved at %d-1; returned count not minimal", demands)
	}
}

func TestDemandsForClaimImmediate(t *testing.T) {
	t.Parallel()

	// A prior already satisfying the claim needs zero demands.
	fs := mustFaultSet(t, []faultmodel.Fault{{P: 0.01, Q: 0.01}})
	d := prior(t, fs)
	demands, err := DemandsForClaim(d, 0.001, 0.99, 1000)
	if err != nil {
		t.Fatalf("DemandsForClaim: %v", err)
	}
	if demands != 0 {
		t.Errorf("demands = %d, want 0 (prior P(PFD=0) = 0.9999)", demands)
	}
}

func TestDemandsForClaimUnreachable(t *testing.T) {
	t.Parallel()

	// The system certainly has the fault: no amount of failure-free
	// operation is expected, and the claim below its PFD is unreachable.
	fs := mustFaultSet(t, []faultmodel.Fault{{P: 1, Q: 0.01}})
	d := prior(t, fs)
	if _, err := DemandsForClaim(d, 0.001, 0.99, 100000); err == nil {
		t.Error("unreachable claim succeeded, want error")
	}
}

func TestDemandsForClaimValidation(t *testing.T) {
	t.Parallel()

	fs := mustFaultSet(t, []faultmodel.Fault{{P: 0.4, Q: 0.01}})
	d := prior(t, fs)
	if _, err := DemandsForClaim(nil, 0.001, 0.99, 100); err == nil {
		t.Error("nil prior succeeded, want error")
	}
	if _, err := DemandsForClaim(d, -1, 0.99, 100); err == nil {
		t.Error("negative bound succeeded, want error")
	}
	if _, err := DemandsForClaim(d, 0.001, 1.5, 100); err == nil {
		t.Error("invalid confidence succeeded, want error")
	}
	if _, err := DemandsForClaim(d, 0.001, 0.99, -1); err == nil {
		t.Error("negative cap succeeded, want error")
	}
}

func TestEnsemblePrior(t *testing.T) {
	t.Parallel()

	// Two deterministic members with known means.
	generate := func(seed uint64) (*faultmodel.FaultSet, error) {
		if seed == 0 {
			return faultmodel.New([]faultmodel.Fault{{P: 0.5, Q: 0.1}})
		}
		return faultmodel.New([]faultmodel.Fault{{P: 0.1, Q: 0.2}})
	}
	prior, err := EnsemblePrior(generate, 2, 128)
	if err != nil {
		t.Fatalf("EnsemblePrior: %v", err)
	}
	// Member means: 0.25*0.1 = 0.025 and 0.01*0.2 = 0.002. Ensemble mean
	// is their average.
	want := (0.025 + 0.002) / 2
	if math.Abs(prior.Mean()-want) > 1e-12 {
		t.Errorf("ensemble mean %v, want %v", prior.Mean(), want)
	}
	// The ensemble is a valid prior for updating.
	post, err := Update(prior, 1000, 0)
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	if post.Mean() >= prior.Mean() {
		t.Errorf("posterior mean %v not below prior mean %v", post.Mean(), prior.Mean())
	}
}

func TestEnsemblePriorValidation(t *testing.T) {
	t.Parallel()

	gen := func(seed uint64) (*faultmodel.FaultSet, error) {
		return faultmodel.New([]faultmodel.Fault{{P: 0.5, Q: 0.1}})
	}
	if _, err := EnsemblePrior(nil, 2, 128); err == nil {
		t.Error("nil generator succeeded, want error")
	}
	if _, err := EnsemblePrior(gen, 0, 128); err == nil {
		t.Error("zero members succeeded, want error")
	}
	failing := func(seed uint64) (*faultmodel.FaultSet, error) {
		return nil, faultmodel.ErrEmptyFaultSet
	}
	if _, err := EnsemblePrior(failing, 2, 128); err == nil {
		t.Error("failing generator succeeded, want error")
	}
}
