package devsim

import (
	"fmt"
	"math"
	"sync"

	"diversity/internal/faultmodel"
	"diversity/internal/randx"
)

// CommonCauseProcess induces positive correlation between the mistakes in
// one development (paper Section 6.1: "mistakes due to a common conceptual
// error"). A latent per-development "bad day" event occurs with probability
// Rho; conditional on it, every fault's presence probability is boosted by
// the factor Boost (clamped to 1), and on good days probabilities are
// lowered so that each fault's marginal presence probability remains
// exactly p_i. Thus single-version statistics with unstructured measures
// (mean fault count) are unchanged; only the joint structure shifts.
type CommonCauseProcess struct {
	fs  *faultmodel.FaultSet
	rho float64
	// hi and lo are the conditional presence probabilities on bad and
	// good days respectively.
	hi []float64
	lo []float64

	// Batched-kernel state, built lazily on first DevelopBatch: integer
	// Bernoulli thresholds for hi and lo (see bernoulliThreshold).
	batchOnce sync.Once
	thrHi     []uint64
	thrLo     []uint64
}

var _ Process = (*CommonCauseProcess)(nil)

// NewCommonCauseProcess builds a common-cause process over fs. rho is the
// probability of the common-cause condition and boost >= 1 the factor
// applied to each p_i under it. It returns an error if rho is outside
// [0, 1), boost < 1, or the marginal-preserving good-day probability of
// any fault would leave [0, 1].
func NewCommonCauseProcess(fs *faultmodel.FaultSet, rho, boost float64) (*CommonCauseProcess, error) {
	if math.IsNaN(rho) || rho < 0 || rho >= 1 {
		return nil, fmt.Errorf("devsim: common-cause probability rho=%v must be in [0, 1)", rho)
	}
	if math.IsNaN(boost) || boost < 1 {
		return nil, fmt.Errorf("devsim: common-cause boost=%v must be at least 1", boost)
	}
	p := &CommonCauseProcess{
		fs:  fs,
		rho: rho,
		hi:  make([]float64, fs.N()),
		lo:  make([]float64, fs.N()),
	}
	for i := 0; i < fs.N(); i++ {
		pi := fs.Fault(i).P
		hi := math.Min(1, pi*boost)
		var lo float64
		if rho == 0 {
			lo = pi
		} else {
			lo = (pi - rho*hi) / (1 - rho)
		}
		if lo < 0 {
			return nil, fmt.Errorf("devsim: fault %d: rho=%v boost=%v would need negative good-day probability to preserve the marginal p=%v", i, rho, boost, pi)
		}
		p.hi[i] = hi
		p.lo[i] = lo
	}
	return p, nil
}

// Develop implements Process.
func (p *CommonCauseProcess) Develop(r *randx.Stream) *Version {
	present := make([]bool, p.fs.N())
	p.DevelopInto(r, present)
	return newVersion(p.fs, present)
}

// DevelopInto implements MaskDeveloper: the same draws as Develop, into a
// caller-owned mask.
func (p *CommonCauseProcess) DevelopInto(r *randx.Stream, present []bool) {
	probs := p.lo
	if r.Bernoulli(p.rho) {
		probs = p.hi
	}
	for i := range present {
		present[i] = r.Bernoulli(probs[i])
	}
}

// DevelopSparse implements SparseDeveloper by replaying the exact draw
// sequence of DevelopInto into the bitset: for a fixed stream the sparse
// and dense masks are identical, only the representation differs.
func (p *CommonCauseProcess) DevelopSparse(r *randx.Stream, mask *Bitset) int {
	mask.Reset()
	probs := p.lo
	if r.Bernoulli(p.rho) {
		probs = p.hi
	}
	for i := range probs {
		if r.Bernoulli(probs[i]) {
			mask.Set(i)
		}
	}
	return 0
}

// FaultSet implements Process.
func (p *CommonCauseProcess) FaultSet() *faultmodel.FaultSet { return p.fs }

// ResourceShiftProcess induces negative correlation between competing
// fault classes (paper Section 6.1: "extra effort can be dedicated to
// avoiding certain classes of faults only at the expense of others").
// Faults are grouped into consecutive pairs; within each pair, every
// development independently favours one member — multiplying its presence
// probability by (1-shift) while the neglected member gets (1+shift) — so
// each fault's marginal probability is preserved while the pair's joint
// presence becomes anti-correlated. An unpaired trailing fault keeps its
// base probability.
type ResourceShiftProcess struct {
	fs    *faultmodel.FaultSet
	shift float64

	// Batched-kernel state, built lazily on first DevelopBatch: integer
	// Bernoulli thresholds at p·(1−shift) and p·(1+shift).
	batchOnce sync.Once
	thrFav    []uint64
	thrNeg    []uint64
}

var _ Process = (*ResourceShiftProcess)(nil)

// NewResourceShiftProcess builds a resource-shift process with the given
// shift fraction in [0, 1]. It returns an error if the boosted probability
// of any fault would exceed 1 (marginals could then not be preserved).
func NewResourceShiftProcess(fs *faultmodel.FaultSet, shift float64) (*ResourceShiftProcess, error) {
	if math.IsNaN(shift) || shift < 0 || shift > 1 {
		return nil, fmt.Errorf("devsim: resource shift=%v must be in [0, 1]", shift)
	}
	for i := 0; i < fs.N(); i++ {
		if boosted := fs.Fault(i).P * (1 + shift); boosted > 1 {
			return nil, fmt.Errorf("devsim: fault %d: shift=%v drives presence probability to %v > 1", i, shift, boosted)
		}
	}
	return &ResourceShiftProcess{fs: fs, shift: shift}, nil
}

// Develop implements Process.
func (p *ResourceShiftProcess) Develop(r *randx.Stream) *Version {
	present := make([]bool, p.fs.N())
	p.DevelopInto(r, present)
	return newVersion(p.fs, present)
}

// DevelopInto implements MaskDeveloper: the same draws as Develop, into a
// caller-owned mask.
func (p *ResourceShiftProcess) DevelopInto(r *randx.Stream, present []bool) {
	n := p.fs.N()
	for pair := 0; pair+1 < n; pair += 2 {
		// Within each pair, one member gets the scrutiny this
		// development; the coin is per pair, so distinct pairs stay
		// independent and the induced correlation is purely negative.
		favourFirst := r.BernoulliValidated(0.5)
		for offset := 0; offset < 2; offset++ {
			i := pair + offset
			pi := p.fs.Fault(i).P
			if (offset == 0) == favourFirst {
				pi *= 1 - p.shift
			} else {
				pi *= 1 + p.shift
			}
			present[i] = r.Bernoulli(pi)
		}
	}
	if n%2 == 1 {
		present[n-1] = r.Bernoulli(p.fs.Fault(n - 1).P)
	}
}

// DevelopSparse implements SparseDeveloper by replaying the exact draw
// sequence of DevelopInto into the bitset.
func (p *ResourceShiftProcess) DevelopSparse(r *randx.Stream, mask *Bitset) int {
	mask.Reset()
	n := p.fs.N()
	for pair := 0; pair+1 < n; pair += 2 {
		favourFirst := r.BernoulliValidated(0.5)
		for offset := 0; offset < 2; offset++ {
			i := pair + offset
			pi := p.fs.Fault(i).P
			if (offset == 0) == favourFirst {
				pi *= 1 - p.shift
			} else {
				pi *= 1 + p.shift
			}
			if r.Bernoulli(pi) {
				mask.Set(i)
			}
		}
	}
	if n%2 == 1 && r.Bernoulli(p.fs.Fault(n-1).P) {
		mask.Set(n - 1)
	}
	return 0
}

// FaultSet implements Process.
func (p *ResourceShiftProcess) FaultSet() *faultmodel.FaultSet { return p.fs }
