package devsim

import "diversity/internal/randx"

// MaskDeveloper is an optional Process extension for allocation-free
// simulation: DevelopInto samples one development's fault-presence mask
// into a caller-owned scratch slice, drawing exactly the same variates in
// the same order as Develop. For a fixed random stream the two entry
// points therefore produce identical version populations; the Monte-Carlo
// harness relies on this in streaming mode to drop the per-replication
// Version allocation without changing any sampled value.
//
// All processes in this package implement MaskDeveloper; Develop is a
// thin wrapper that allocates a mask and delegates to DevelopInto.
type MaskDeveloper interface {
	// DevelopInto overwrites present — which must have length
	// FaultSet().N() — with one development's fault-presence mask.
	DevelopInto(r *randx.Stream, present []bool)
}

// The conformance guards keep every process on the allocation-free
// streaming path; removing one silently falls back to per-replication
// Version allocation in streaming Monte-Carlo runs.
var (
	_ MaskDeveloper = (*IndependentProcess)(nil)
	_ MaskDeveloper = (*CommonCauseProcess)(nil)
	_ MaskDeveloper = (*ResourceShiftProcess)(nil)
	_ MaskDeveloper = (*TiedPairsProcess)(nil)
)

// SparseDeveloper is an optional Process extension for O(k) simulation
// over large fault universes: DevelopSparse samples one development's
// fault mask into a caller-owned Bitset (clearing it first) and returns
// the number of geometric skip draws used, zero on dense fallback paths.
//
// Unlike MaskDeveloper, implementations may draw a different — but
// distributionally identical — variate sequence from Develop. Sparse
// results are therefore exactly reproducible for a fixed seed, yet not
// bitwise comparable with dense runs; the Monte-Carlo harness keeps dense
// as its default and enables this path only on request (Config.Sparse).
type SparseDeveloper interface {
	// DevelopSparse overwrites mask — which must have Len() equal to
	// FaultSet().N() — with one development's fault-presence mask and
	// returns the number of geometric skip draws consumed.
	DevelopSparse(r *randx.Stream, mask *Bitset) int
}

// Every process implements SparseDeveloper: the independent process with
// the geometric skip kernel, the correlated and tied processes by
// replaying their dense draw sequence into the bitset (they are O(n) in
// draws regardless, so sparseness there buys O(k) mask handling, not
// O(k) sampling).
var (
	_ SparseDeveloper = (*IndependentProcess)(nil)
	_ SparseDeveloper = (*CommonCauseProcess)(nil)
	_ SparseDeveloper = (*ResourceShiftProcess)(nil)
	_ SparseDeveloper = (*TiedPairsProcess)(nil)
)
