package devsim

import "diversity/internal/randx"

// MaskDeveloper is an optional Process extension for allocation-free
// simulation: DevelopInto samples one development's fault-presence mask
// into a caller-owned scratch slice, drawing exactly the same variates in
// the same order as Develop. For a fixed random stream the two entry
// points therefore produce identical version populations; the Monte-Carlo
// harness relies on this in streaming mode to drop the per-replication
// Version allocation without changing any sampled value.
//
// All processes in this package implement MaskDeveloper; Develop is a
// thin wrapper that allocates a mask and delegates to DevelopInto.
type MaskDeveloper interface {
	// DevelopInto overwrites present — which must have length
	// FaultSet().N() — with one development's fault-presence mask.
	DevelopInto(r *randx.Stream, present []bool)
}

// The conformance guards keep every process on the allocation-free
// streaming path; removing one silently falls back to per-replication
// Version allocation in streaming Monte-Carlo runs.
var (
	_ MaskDeveloper = (*IndependentProcess)(nil)
	_ MaskDeveloper = (*CommonCauseProcess)(nil)
	_ MaskDeveloper = (*ResourceShiftProcess)(nil)
	_ MaskDeveloper = (*TiedPairsProcess)(nil)
)
