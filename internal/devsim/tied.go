package devsim

import (
	"fmt"
	"sync"

	"diversity/internal/faultmodel"
	"diversity/internal/randx"
)

// TiedPairsProcess is the paper's Section-6.1 extreme of positive
// correlation: designated pairs of mistakes "can only occur together".
// Each tied pair is introduced (or avoided) as a unit, with the presence
// probability of its first member; untied faults are introduced
// independently as usual. The paper observes that such a process is
// exactly equivalent to the independent process over a universe in which
// each tied pair is merged into one fault with the union failure region —
// an equivalence experiment E24 verifies by simulation.
type TiedPairsProcess struct {
	fs *faultmodel.FaultSet
	// pairOf[i] is the partner index of fault i, or -1 for untied faults.
	// Only the smaller index of each pair drives the coin.
	pairOf []int

	// Batched-kernel state, built lazily on first DevelopBatch: one
	// integer Bernoulli threshold per driver fault.
	batchOnce  sync.Once
	thresholds []uint64
}

var _ Process = (*TiedPairsProcess)(nil)

// NewTiedPairsProcess builds the process. pairs lists index pairs to tie;
// indices must be in range, distinct, and appear in at most one pair. The
// presence probability of each pair is taken from its first member.
func NewTiedPairsProcess(fs *faultmodel.FaultSet, pairs [][2]int) (*TiedPairsProcess, error) {
	if fs == nil {
		return nil, fmt.Errorf("devsim: fault set must not be nil")
	}
	p := &TiedPairsProcess{fs: fs, pairOf: make([]int, fs.N())}
	for i := range p.pairOf {
		p.pairOf[i] = -1
	}
	for _, pair := range pairs {
		a, b := pair[0], pair[1]
		if a < 0 || a >= fs.N() || b < 0 || b >= fs.N() {
			return nil, fmt.Errorf("devsim: tied pair (%d, %d) out of range [0, %d)", a, b, fs.N())
		}
		if a == b {
			return nil, fmt.Errorf("devsim: fault %d cannot be tied to itself", a)
		}
		if p.pairOf[a] != -1 || p.pairOf[b] != -1 {
			return nil, fmt.Errorf("devsim: fault in pair (%d, %d) already tied", a, b)
		}
		p.pairOf[a] = b
		p.pairOf[b] = a
	}
	return p, nil
}

// Develop implements Process.
func (p *TiedPairsProcess) Develop(r *randx.Stream) *Version {
	present := make([]bool, p.fs.N())
	p.DevelopInto(r, present)
	return newVersion(p.fs, present)
}

// DevelopInto implements MaskDeveloper: the same draws as Develop, into a
// caller-owned mask.
func (p *TiedPairsProcess) DevelopInto(r *randx.Stream, present []bool) {
	for i := range present {
		partner := p.pairOf[i]
		switch {
		case partner == -1:
			present[i] = r.Bernoulli(p.fs.Fault(i).P)
		case partner > i:
			// This fault drives the pair's single coin.
			hit := r.Bernoulli(p.fs.Fault(i).P)
			present[i] = hit
			present[partner] = hit
		default:
			// Already decided by the partner's coin.
		}
	}
}

// DevelopSparse implements SparseDeveloper by replaying the exact draw
// sequence of DevelopInto into the bitset. A pair's partner may sit at a
// higher index, so bits are set out of order — the Bitset's touched-word
// tracking handles that without any ordering requirement.
func (p *TiedPairsProcess) DevelopSparse(r *randx.Stream, mask *Bitset) int {
	mask.Reset()
	for i := 0; i < p.fs.N(); i++ {
		partner := p.pairOf[i]
		switch {
		case partner == -1:
			if r.Bernoulli(p.fs.Fault(i).P) {
				mask.Set(i)
			}
		case partner > i:
			if r.Bernoulli(p.fs.Fault(i).P) {
				mask.Set(i)
				mask.Set(partner)
			}
		}
	}
	return 0
}

// FaultSet implements Process.
func (p *TiedPairsProcess) FaultSet() *faultmodel.FaultSet { return p.fs }
