// Package devsim simulates the fault creation process: it "develops"
// program versions by sampling which potential faults of a
// faultmodel.FaultSet survive into each delivered version.
//
// The paper's core model assumes mistakes are mutually independent
// (IndependentProcess). Section 6.1 discusses how reality may deviate —
// positive correlation from common conceptual errors, negative correlation
// from schedule pressure shifting effort between fault classes — so the
// package also provides CommonCauseProcess and ResourceShiftProcess, which
// preserve each fault's marginal presence probability while inducing the
// respective correlation structure. Experiment E13 measures how far those
// deviations move the model's predictions.
package devsim

import (
	"fmt"
	"math/bits"
	"sync"

	"diversity/internal/faultmodel"
	"diversity/internal/randx"
)

// Version is one developed program version: the subset of potential faults
// that survived its development, together with the resulting PFD. The
// fault subset is stored as a packed Bitset so intersections between
// versions reduce to word-wise AND + popcount.
type Version struct {
	mask  *Bitset
	pfd   float64
	count int
}

// newVersion computes the PFD and fault count from a presence mask,
// packing it into a Bitset. The sum over q_i runs in ascending fault
// order, matching the historical []bool loop bit for bit.
func newVersion(fs *faultmodel.FaultSet, present []bool) *Version {
	v := &Version{mask: NewBitset(len(present))}
	for i, has := range present {
		if has {
			v.mask.Set(i)
			v.pfd += fs.Fault(i).Q
			v.count++
		}
	}
	return v
}

// newVersionFromBitset computes the PFD and fault count from a packed
// mask. The mask is retained, not copied: callers hand over ownership.
// The q_i sum runs in ascending fault order (word by word), the same
// order newVersion uses.
func newVersionFromBitset(fs *faultmodel.FaultSet, mask *Bitset) *Version {
	v := &Version{mask: mask}
	for w := 0; w < mask.NumWords(); w++ {
		x := mask.Word(w)
		v.count += bits.OnesCount64(x)
		for x != 0 {
			v.pfd += fs.Fault(w<<6 + bits.TrailingZeros64(x)).Q
			x &= x - 1
		}
	}
	return v
}

// Has reports whether potential fault i is present in the version.
// It panics if i is out of range, mirroring slice indexing.
func (v *Version) Has(i int) bool { return v.mask.Test(i) }

// PFD returns the version's probability of failure on demand: the summed
// region probabilities of its faults (disjoint-region assumption).
func (v *Version) PFD() float64 { return v.pfd }

// FaultCount returns the number of faults present.
func (v *Version) FaultCount() int { return v.count }

// NumPotential returns the size of the underlying potential-fault universe.
func (v *Version) NumPotential() int { return v.mask.Len() }

// checkUniverses verifies every version was developed against the same
// fault universe size as fs.
func checkUniverses(fs *faultmodel.FaultSet, versions []*Version) error {
	if len(versions) == 0 {
		return fmt.Errorf("devsim: at least one version is required")
	}
	for i, v := range versions {
		if v.mask.Len() != fs.N() {
			return fmt.Errorf("devsim: mismatched fault universes: version %d has %d faults, set has %d",
				i, v.mask.Len(), fs.N())
		}
	}
	return nil
}

// CommonPFD returns the PFD of the 1-out-of-N system built from the given
// versions: the summed q_i of faults present in every version (the
// intersection of failure regions, paper Section 2.1, with the pair m = 2
// as the paper's case). The intersection is found by word-wise AND across
// all N packed masks, walking only the set bits of each nonzero
// intersection word; the q_i sum still runs in ascending fault order, so
// results are bitwise identical to the historical []bool loop. It returns
// an error if no versions are given or any version was developed against
// a different fault universe size than fs.
func CommonPFD(fs *faultmodel.FaultSet, versions ...*Version) (float64, error) {
	if err := checkUniverses(fs, versions); err != nil {
		return 0, err
	}
	sum := 0.0
	first := versions[0]
	for w := 0; w < first.mask.NumWords(); w++ {
		x := first.mask.Word(w)
		for _, v := range versions[1:] {
			x &= v.mask.Word(w)
			if x == 0 {
				break
			}
		}
		for x != 0 {
			sum += fs.Fault(w<<6 + bits.TrailingZeros64(x)).Q
			x &= x - 1
		}
	}
	return sum, nil
}

// CommonFaultCount returns the number of faults shared by all the given
// versions, by word-wise AND + popcount across the packed masks. It
// returns an error under the same conditions as CommonPFD.
func CommonFaultCount(fs *faultmodel.FaultSet, versions ...*Version) (int, error) {
	if err := checkUniverses(fs, versions); err != nil {
		return 0, err
	}
	count := 0
	first := versions[0]
	for w := 0; w < first.mask.NumWords(); w++ {
		x := first.mask.Word(w)
		for _, v := range versions[1:] {
			x &= v.mask.Word(w)
			if x == 0 {
				break
			}
		}
		count += bits.OnesCount64(x)
	}
	return count, nil
}

// Process develops program versions against a fixed fault universe.
// Implementations must be safe for concurrent use by multiple goroutines,
// each supplying its own random stream — the Monte-Carlo harness relies on
// this to shard replications across workers.
type Process interface {
	// Develop produces one version using randomness from r.
	Develop(r *randx.Stream) *Version
	// FaultSet returns the potential-fault universe the process samples
	// from.
	FaultSet() *faultmodel.FaultSet
}

// IndependentProcess is the paper's model of separate development: each
// potential fault is introduced independently with its probability p_i
// ("as though the design team tossed dice", Section 2.2).
type IndependentProcess struct {
	fs *faultmodel.FaultSet

	// Sparse-kernel state, built lazily on first DevelopSparse: faults
	// grouped by their shared p value, each group with a precomputed
	// geometric skip sampler.
	sparseOnce sync.Once
	groups     []faultGroup

	// Batched-kernel state, built lazily on first DevelopBatch: one
	// integer Bernoulli threshold per fault (see bernoulliThreshold).
	batchOnce  sync.Once
	thresholds []uint64
}

// minGeometricGroup is the smallest group size worth skip-sampling: below
// it, one Bernoulli draw per fault is cheaper than the logarithm a
// geometric gap costs, and heterogeneous-p universes (every group a
// singleton) degrade gracefully to the dense cost instead of paying for
// useless skips.
const minGeometricGroup = 4

// faultGroup is a maximal set of faults sharing one presence probability,
// in ascending fault order. A group whose faults form one contiguous
// index range — the common case for grouped universes — is addressed by
// offset alone (fault index = lo + position), with no materialised index
// slice: skip positions then translate to fault indices arithmetically
// instead of through a random read into a large per-group array, which
// would cost a cache miss per surviving fault.
type faultGroup struct {
	sampler randx.GeometricSampler
	// lo and size describe a contiguous group; indices is nil then.
	// Groups assembled from multiple runs (or split by p = 0 holes)
	// materialise indices instead, and size mirrors its length.
	lo      int32
	size    int
	indices []int32
	// dense selects one Bernoulli draw per fault instead of geometric
	// gap-skipping, for groups too small to amortise the logarithm.
	dense bool
}

var _ Process = (*IndependentProcess)(nil)

// NewIndependentProcess returns a Process implementing independent fault
// introduction over fs.
func NewIndependentProcess(fs *faultmodel.FaultSet) *IndependentProcess {
	return &IndependentProcess{fs: fs}
}

// Develop implements Process.
func (p *IndependentProcess) Develop(r *randx.Stream) *Version {
	present := make([]bool, p.fs.N())
	p.DevelopInto(r, present)
	return newVersion(p.fs, present)
}

// DevelopInto implements MaskDeveloper: the same draws as Develop, into a
// caller-owned mask. Each p_i was validated into [0, 1] when the fault
// set was built, so the loop uses the clamp-free Bernoulli form.
func (p *IndependentProcess) DevelopInto(r *randx.Stream, present []bool) {
	for i := range present {
		present[i] = r.BernoulliValidated(p.fs.Fault(i).P)
	}
}

// sparseGroups builds (once) the equal-p fault groups the sparse kernel
// skips within. Faults with p = 0 are omitted entirely — they can never
// be present, so the kernel spends nothing on them. The scan detects
// maximal runs of equal p first — one float comparison per fault — and
// only touches the merge map once per run, so grouped universes (the
// layout the kernel targets) index in O(n) cheap compares instead of
// O(n) map operations; a worst-case alternating-p layout degrades to
// one map operation per fault, no worse than mapping every fault.
func (p *IndependentProcess) sparseGroups() []faultGroup {
	p.sparseOnce.Do(func() {
		groupOf := make(map[float64]int)
		cur := -1 // group index of the run in progress, -1 = none
		curP := 0.0
		for i := 0; i < p.fs.N(); i++ {
			pi := p.fs.Fault(i).P
			if cur >= 0 && pi == curP {
				g := &p.groups[cur]
				if g.indices == nil {
					g.size++
				} else {
					g.indices = append(g.indices, int32(i))
				}
				continue
			}
			if pi == 0 {
				cur = -1
				continue
			}
			g, seen := groupOf[pi]
			if !seen {
				g = len(p.groups)
				groupOf[pi] = g
				p.groups = append(p.groups, faultGroup{
					sampler: randx.NewGeometricSampler(pi),
					lo:      int32(i),
					size:    1,
				})
				cur, curP = g, pi
				continue
			}
			// A second run of an already-seen p: the group is no longer
			// contiguous, so materialise its index slice.
			grp := &p.groups[g]
			if grp.indices == nil {
				grp.indices = make([]int32, 0, grp.size+1)
				for j := int32(0); j < int32(grp.size); j++ {
					grp.indices = append(grp.indices, grp.lo+j)
				}
			}
			grp.indices = append(grp.indices, int32(i))
			cur, curP = g, pi
		}
		for g := range p.groups {
			grp := &p.groups[g]
			if grp.indices != nil {
				grp.size = len(grp.indices)
			}
			grp.dense = grp.size < minGeometricGroup
		}
	})
	return p.groups
}

// DevelopSparse implements SparseDeveloper. Within each equal-p group the
// survivor set is sampled by geometric gap-skipping — the gap to the next
// introduced fault is Geometric(p), so the cost is one logarithm per
// survivor plus one per group, O(k + groups) rather than O(n). The draws
// differ from Develop's but the sampled distribution is identical.
func (p *IndependentProcess) DevelopSparse(r *randx.Stream, mask *Bitset) int {
	mask.Reset()
	skips := 0
	for _, g := range p.sparseGroups() {
		if g.dense {
			pi := g.sampler.P()
			if g.indices == nil {
				for i := g.lo; i < g.lo+int32(g.size); i++ {
					if r.BernoulliValidated(pi) {
						mask.Set(int(i))
					}
				}
			} else {
				for _, i := range g.indices {
					if r.BernoulliValidated(pi) {
						mask.Set(int(i))
					}
				}
			}
			continue
		}
		if g.indices == nil {
			for pos := g.sampler.Next(r); pos < g.size; pos += 1 + g.sampler.Next(r) {
				mask.Set(int(g.lo) + pos)
				skips++
			}
		} else {
			for pos := g.sampler.Next(r); pos < len(g.indices); pos += 1 + g.sampler.Next(r) {
				mask.Set(int(g.indices[pos]))
				skips++
			}
		}
		skips++ // the final gap that overshot the group
	}
	return skips
}

// FaultSet implements Process.
func (p *IndependentProcess) FaultSet() *faultmodel.FaultSet { return p.fs }
