// Package devsim simulates the fault creation process: it "develops"
// program versions by sampling which potential faults of a
// faultmodel.FaultSet survive into each delivered version.
//
// The paper's core model assumes mistakes are mutually independent
// (IndependentProcess). Section 6.1 discusses how reality may deviate —
// positive correlation from common conceptual errors, negative correlation
// from schedule pressure shifting effort between fault classes — so the
// package also provides CommonCauseProcess and ResourceShiftProcess, which
// preserve each fault's marginal presence probability while inducing the
// respective correlation structure. Experiment E13 measures how far those
// deviations move the model's predictions.
package devsim

import (
	"fmt"

	"diversity/internal/faultmodel"
	"diversity/internal/randx"
)

// Version is one developed program version: the subset of potential faults
// that survived its development, together with the resulting PFD.
type Version struct {
	present []bool
	pfd     float64
	count   int
}

// newVersion computes the PFD and fault count from a presence mask. The
// mask is retained, not copied: callers hand over ownership.
func newVersion(fs *faultmodel.FaultSet, present []bool) *Version {
	v := &Version{present: present}
	for i, has := range present {
		if has {
			v.pfd += fs.Fault(i).Q
			v.count++
		}
	}
	return v
}

// Has reports whether potential fault i is present in the version.
// It panics if i is out of range, mirroring slice indexing.
func (v *Version) Has(i int) bool { return v.present[i] }

// PFD returns the version's probability of failure on demand: the summed
// region probabilities of its faults (disjoint-region assumption).
func (v *Version) PFD() float64 { return v.pfd }

// FaultCount returns the number of faults present.
func (v *Version) FaultCount() int { return v.count }

// NumPotential returns the size of the underlying potential-fault universe.
func (v *Version) NumPotential() int { return len(v.present) }

// CommonPFD returns the PFD of the 1-out-of-2 system built from versions a
// and b: the summed q_i of faults present in both (the intersection of
// failure regions, paper Section 2.1). It returns an error if the versions
// were developed against different-sized fault universes or a different
// fault set size than fs.
func CommonPFD(fs *faultmodel.FaultSet, a, b *Version) (float64, error) {
	if len(a.present) != len(b.present) || len(a.present) != fs.N() {
		return 0, fmt.Errorf("devsim: mismatched fault universes: versions have %d and %d faults, set has %d",
			len(a.present), len(b.present), fs.N())
	}
	sum := 0.0
	for i := range a.present {
		if a.present[i] && b.present[i] {
			sum += fs.Fault(i).Q
		}
	}
	return sum, nil
}

// CommonFaultCount returns the number of faults shared by both versions.
// It returns an error under the same conditions as CommonPFD.
func CommonFaultCount(fs *faultmodel.FaultSet, a, b *Version) (int, error) {
	if len(a.present) != len(b.present) || len(a.present) != fs.N() {
		return 0, fmt.Errorf("devsim: mismatched fault universes: versions have %d and %d faults, set has %d",
			len(a.present), len(b.present), fs.N())
	}
	count := 0
	for i := range a.present {
		if a.present[i] && b.present[i] {
			count++
		}
	}
	return count, nil
}

// Process develops program versions against a fixed fault universe.
// Implementations must be safe for concurrent use by multiple goroutines,
// each supplying its own random stream — the Monte-Carlo harness relies on
// this to shard replications across workers.
type Process interface {
	// Develop produces one version using randomness from r.
	Develop(r *randx.Stream) *Version
	// FaultSet returns the potential-fault universe the process samples
	// from.
	FaultSet() *faultmodel.FaultSet
}

// IndependentProcess is the paper's model of separate development: each
// potential fault is introduced independently with its probability p_i
// ("as though the design team tossed dice", Section 2.2).
type IndependentProcess struct {
	fs *faultmodel.FaultSet
}

var _ Process = (*IndependentProcess)(nil)

// NewIndependentProcess returns a Process implementing independent fault
// introduction over fs.
func NewIndependentProcess(fs *faultmodel.FaultSet) *IndependentProcess {
	return &IndependentProcess{fs: fs}
}

// Develop implements Process.
func (p *IndependentProcess) Develop(r *randx.Stream) *Version {
	present := make([]bool, p.fs.N())
	p.DevelopInto(r, present)
	return newVersion(p.fs, present)
}

// DevelopInto implements MaskDeveloper: the same draws as Develop, into a
// caller-owned mask.
func (p *IndependentProcess) DevelopInto(r *randx.Stream, present []bool) {
	for i := range present {
		present[i] = r.Bernoulli(p.fs.Fault(i).P)
	}
}

// FaultSet implements Process.
func (p *IndependentProcess) FaultSet() *faultmodel.FaultSet { return p.fs }
