package devsim

import (
	"math/bits"
	"testing"

	"diversity/internal/faultmodel"
	"diversity/internal/randx"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	if b.Len() != 130 {
		t.Fatalf("Len = %d, want 130", b.Len())
	}
	if b.NumWords() != 3 {
		t.Fatalf("NumWords = %d, want 3", b.NumWords())
	}
	for _, i := range []int{0, 63, 64, 129} {
		if b.Test(i) {
			t.Fatalf("fresh bitset has bit %d set", i)
		}
		b.Set(i)
		if !b.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if b.Count() != 4 {
		t.Fatalf("Count = %d, want 4", b.Count())
	}
	if got := len(b.Touched()); got != 3 {
		t.Fatalf("Touched has %d words, want 3", got)
	}
	b.Reset()
	if b.Count() != 0 || len(b.Touched()) != 0 {
		t.Fatalf("Reset left Count=%d Touched=%d", b.Count(), len(b.Touched()))
	}
	for _, i := range []int{0, 63, 64, 129} {
		if b.Test(i) {
			t.Fatalf("bit %d survived Reset", i)
		}
	}
}

func TestBitsetTouchedDeduped(t *testing.T) {
	b := NewBitset(64)
	for i := 0; i < 64; i++ {
		b.Set(i)
	}
	if got := len(b.Touched()); got != 1 {
		t.Fatalf("64 sets in one word produced %d touched entries, want 1", got)
	}
}

func TestBitsetZeroLen(t *testing.T) {
	b := NewBitset(0)
	if b.Len() != 0 || b.NumWords() != 0 || b.Count() != 0 {
		t.Fatalf("zero-length bitset: Len=%d NumWords=%d Count=%d", b.Len(), b.NumWords(), b.Count())
	}
	b.Reset() // must not panic
}

func TestBitsetNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBitset(-1) did not panic")
		}
	}()
	NewBitset(-1)
}

// boolIntersection is the reference []bool implementation the packed
// AND+popcount path must agree with.
func boolIntersection(fs *faultmodel.FaultSet, a, b []bool) (pfd float64, count int) {
	for i := range a {
		if a[i] && b[i] {
			pfd += fs.Fault(i).Q
			count++
		}
	}
	return pfd, count
}

// maskPair decodes a byte string into two equal-length []bool masks (low
// two bits of each byte drive one position each) and the Versions built
// from them.
func randomMaskPair(seed uint64, n int) (a, b []bool) {
	r := randx.NewStream(seed)
	a = make([]bool, n)
	b = make([]bool, n)
	// Word-at-a-time fill exercises FillUint64 alongside the bitset path.
	words := make([]uint64, (n+63)/64)
	r.FillUint64(words)
	for i := range a {
		a[i] = words[i>>6]>>(uint(i)&63)&1 == 1
	}
	r.FillUint64(words)
	for i := range b {
		b[i] = words[i>>6]>>(uint(i)&63)&1 == 1
	}
	return a, b
}

func TestCommonPFDAgainstBoolLoop(t *testing.T) {
	for _, n := range []int{1, 7, 64, 65, 200, 1000} {
		fs := uniformFaultSet(t, n)
		for seed := uint64(1); seed <= 20; seed++ {
			am, bm := randomMaskPair(seed, n)
			a, b := newVersion(fs, am), newVersion(fs, bm)
			wantPFD, wantCount := boolIntersection(fs, am, bm)
			gotPFD, err := CommonPFD(fs, a, b)
			if err != nil {
				t.Fatalf("n=%d seed=%d: CommonPFD error: %v", n, seed, err)
			}
			if gotPFD != wantPFD {
				t.Fatalf("n=%d seed=%d: CommonPFD = %v, []bool loop = %v", n, seed, gotPFD, wantPFD)
			}
			gotCount, err := CommonFaultCount(fs, a, b)
			if err != nil {
				t.Fatalf("n=%d seed=%d: CommonFaultCount error: %v", n, seed, err)
			}
			if gotCount != wantCount {
				t.Fatalf("n=%d seed=%d: CommonFaultCount = %d, []bool loop = %d", n, seed, gotCount, wantCount)
			}
		}
	}
}

func uniformFaultSet(t testing.TB, n int) *faultmodel.FaultSet {
	t.Helper()
	fs, err := faultmodel.Uniform(n, 0.1, 0.5/float64(n))
	if err != nil {
		t.Fatalf("Uniform fault set: %v", err)
	}
	return fs
}

// FuzzBitsetIntersection feeds arbitrary mask bytes through both the
// packed AND+popcount path and the []bool reference loop and requires
// exact agreement, including the bitwise-identical PFD sum.
func FuzzBitsetIntersection(f *testing.F) {
	f.Add([]byte{0x03, 0x01, 0x02, 0xff}, uint8(4))
	f.Add([]byte{}, uint8(1))
	f.Add([]byte{0xaa, 0x55}, uint8(130))
	f.Fuzz(func(t *testing.T, raw []byte, size uint8) {
		n := int(size)
		if n == 0 {
			n = 1
		}
		fs := uniformFaultSet(t, n)
		am := make([]bool, n)
		bm := make([]bool, n)
		for i := 0; i < n; i++ {
			var c byte
			if len(raw) > 0 {
				c = raw[i%len(raw)]
			}
			am[i] = c>>(uint(i)%4)&1 == 1
			bm[i] = c>>(uint(i)%4+4)&1 == 1
		}
		a, b := newVersion(fs, am), newVersion(fs, bm)
		wantPFD, wantCount := boolIntersection(fs, am, bm)
		gotPFD, err := CommonPFD(fs, a, b)
		if err != nil {
			t.Fatalf("CommonPFD error: %v", err)
		}
		gotCount, err := CommonFaultCount(fs, a, b)
		if err != nil {
			t.Fatalf("CommonFaultCount error: %v", err)
		}
		if gotPFD != wantPFD || gotCount != wantCount {
			t.Fatalf("packed (pfd=%v count=%d) != []bool (pfd=%v count=%d)", gotPFD, gotCount, wantPFD, wantCount)
		}
		// The versions themselves must round-trip the masks.
		for i := range am {
			if a.Has(i) != am[i] || b.Has(i) != bm[i] {
				t.Fatalf("bit %d: Has mismatch", i)
			}
		}
		if popTotal(a) != a.FaultCount() {
			t.Fatalf("FaultCount %d != popcount %d", a.FaultCount(), popTotal(a))
		}
	})
}

func popTotal(v *Version) int {
	total := 0
	for w := 0; w < v.mask.NumWords(); w++ {
		total += bits.OnesCount64(v.mask.Word(w))
	}
	return total
}
