package devsim

import (
	"fmt"
	"math/bits"
)

// Bitset is a fault-presence mask packed 64 faults per uint64 word — the
// sparse counterpart of the []bool masks used by MaskDeveloper. Beyond the
// packed words it tracks which words have ever been set since the last
// Reset, so that clearing a million-fault mask between replications and
// walking its set bits both cost O(k) in the number of present faults, not
// O(n) in the universe size. That bound is what keeps sub-microsecond
// replications possible at n = 10^6.
//
// A Bitset is not safe for concurrent use; the Monte-Carlo harness keeps
// one per worker, like its []bool scratch masks.
type Bitset struct {
	n     int
	words []uint64
	// touched holds the indices of words that may be nonzero, in first-set
	// order with no duplicates (Set appends only on a word's 0 -> nonzero
	// transition, and no method clears individual bits).
	touched []int32
}

// NewBitset returns an empty mask over a universe of n faults. It panics
// if n is negative.
func NewBitset(n int) *Bitset {
	if n < 0 {
		panic(fmt.Sprintf("devsim: NewBitset called with negative size %d", n))
	}
	return &Bitset{n: n, words: make([]uint64, (n+63)/64)}
}

// Len returns the universe size in bits.
func (b *Bitset) Len() int { return b.n }

// NumWords returns the number of packed words, ceil(Len()/64).
func (b *Bitset) NumWords() int { return len(b.words) }

// Word returns packed word w; bit j of the result is fault 64*w + j.
// It panics if w is out of range, mirroring slice indexing.
func (b *Bitset) Word(w int) uint64 { return b.words[w] }

// Set sets bit i. It panics if i is out of range, mirroring slice
// indexing.
func (b *Bitset) Set(i int) {
	w := i >> 6
	if b.words[w] == 0 {
		b.touched = append(b.touched, int32(w))
	}
	b.words[w] |= 1 << (uint(i) & 63)
}

// Test reports whether bit i is set. It panics if i is out of range,
// mirroring slice indexing.
func (b *Bitset) Test(i int) bool {
	return b.words[i>>6]>>(uint(i)&63)&1 == 1
}

// Touched returns the indices of words that may be nonzero, in first-set
// order without duplicates. The slice aliases internal state and is valid
// until the next Set or Reset; callers must not modify it.
func (b *Bitset) Touched() []int32 { return b.touched }

// Reset clears the mask in O(touched words) time.
func (b *Bitset) Reset() {
	for _, w := range b.touched {
		b.words[w] = 0
	}
	b.touched = b.touched[:0]
}

// Count returns the number of set bits in O(touched words) time.
func (b *Bitset) Count() int {
	count := 0
	for _, w := range b.touched {
		count += bits.OnesCount64(b.words[w])
	}
	return count
}
