package devsim

import (
	"math"
	"testing"

	"diversity/internal/faultmodel"
	"diversity/internal/randx"
)

// TestSparseFallbackMatchesDense: the correlated and tied processes
// implement DevelopSparse by replaying the dense draw sequence, so for a
// fixed seed the sparse mask must equal the dense mask bit for bit.
func TestSparseFallbackMatchesDense(t *testing.T) {
	t.Parallel()

	fs := mustFaultSet(t, []faultmodel.Fault{
		{P: 0.2, Q: 0.01}, {P: 0.2, Q: 0.01}, {P: 0.35, Q: 0.02},
		{P: 0.35, Q: 0.02}, {P: 0.1, Q: 0.01},
	})
	common, err := NewCommonCauseProcess(fs, 0.25, 2)
	if err != nil {
		t.Fatalf("NewCommonCauseProcess: %v", err)
	}
	shift, err := NewResourceShiftProcess(fs, 0.5)
	if err != nil {
		t.Fatalf("NewResourceShiftProcess: %v", err)
	}
	tied, err := NewTiedPairsProcess(fs, [][2]int{{0, 3}})
	if err != nil {
		t.Fatalf("NewTiedPairsProcess: %v", err)
	}
	for name, proc := range map[string]Process{
		"common-cause":   common,
		"resource-shift": shift,
		"tied-pairs":     tied,
	} {
		sparse := proc.(SparseDeveloper)
		dense := proc.(MaskDeveloper)
		mask := NewBitset(fs.N())
		present := make([]bool, fs.N())
		for seed := uint64(1); seed <= 50; seed++ {
			a, b := randx.NewStream(seed), randx.NewStream(seed)
			if skips := sparse.DevelopSparse(a, mask); skips != 0 {
				t.Fatalf("%s: fallback reported %d geometric skips, want 0", name, skips)
			}
			dense.DevelopInto(b, present)
			for i := range present {
				if mask.Test(i) != present[i] {
					t.Fatalf("%s seed=%d: bit %d sparse=%v dense=%v", name, seed, i, mask.Test(i), present[i])
				}
			}
		}
	}
}

// TestIndependentDevelopSparseMarginals: the geometric skip kernel must
// reproduce every fault's marginal presence probability, including
// degenerate p = 0 / p = 1 faults and groups too small for skipping.
func TestIndependentDevelopSparseMarginals(t *testing.T) {
	t.Parallel()

	// Two skip-sampled groups, one dense (small) group, and degenerate
	// faults, deliberately interleaved so group indices are non-contiguous.
	faults := make([]faultmodel.Fault, 0, 43)
	for i := 0; i < 20; i++ {
		faults = append(faults, faultmodel.Fault{P: 0.02, Q: 1e-4})
	}
	faults = append(faults, faultmodel.Fault{P: 0, Q: 1e-4}, faultmodel.Fault{P: 1, Q: 1e-4})
	for i := 0; i < 18; i++ {
		faults = append(faults, faultmodel.Fault{P: 0.07, Q: 1e-4})
	}
	faults = append(faults,
		faultmodel.Fault{P: 0.4, Q: 1e-4},
		faultmodel.Fault{P: 0.4, Q: 1e-4},
		faultmodel.Fault{P: 0.6, Q: 1e-4},
	)
	fs := mustFaultSet(t, faults)
	proc := NewIndependentProcess(fs)
	r := randx.NewStream(23)
	mask := NewBitset(fs.N())
	const reps = 200000
	counts := make([]int, fs.N())
	totalSkips := 0
	for rep := 0; rep < reps; rep++ {
		totalSkips += proc.DevelopSparse(r, mask)
		for _, w := range mask.Touched() {
			x := mask.Word(int(w))
			for i := int(w) << 6; x != 0; i++ {
				if x&1 == 1 {
					counts[i]++
				}
				x >>= 1
			}
		}
	}
	if totalSkips == 0 {
		t.Fatal("grouped universe produced no geometric skip draws")
	}
	for i := 0; i < fs.N(); i++ {
		want := fs.Fault(i).P
		got := float64(counts[i]) / reps
		tol := 5*math.Sqrt(want*(1-want)/reps) + 1e-9
		if math.Abs(got-want) > tol {
			t.Errorf("fault %d (p=%v) present fraction %.5f, want %.5f±%.5f", i, want, got, want, tol)
		}
	}
}

// TestIndependentDevelopSparsePairMoments: sparse version pairs must
// reproduce the analytic single-version and common-PFD means (equations
// (1) for m = 1, 2), the same check the dense path passes.
func TestIndependentDevelopSparsePairMoments(t *testing.T) {
	t.Parallel()

	faults := make([]faultmodel.Fault, 120)
	for i := range faults {
		switch {
		case i < 60:
			faults[i] = faultmodel.Fault{P: 0.03, Q: 0.004}
		case i < 110:
			faults[i] = faultmodel.Fault{P: 0.01, Q: 0.002}
		default:
			faults[i] = faultmodel.Fault{P: 0.2, Q: 0.001}
		}
	}
	fs := mustFaultSet(t, faults)
	proc := NewIndependentProcess(fs)
	r := randx.NewStream(37)
	a, b := NewBitset(fs.N()), NewBitset(fs.N())
	const reps = 150000
	sum1, sum2 := 0.0, 0.0
	for rep := 0; rep < reps; rep++ {
		proc.DevelopSparse(r, a)
		proc.DevelopSparse(r, b)
		for _, w := range a.Touched() {
			x := a.Word(int(w))
			common := x & b.Word(int(w))
			for i := int(w) << 6; x != 0; i++ {
				if x&1 == 1 {
					sum1 += fs.Fault(i).Q
				}
				if common&1 == 1 {
					sum2 += fs.Fault(i).Q
				}
				x >>= 1
				common >>= 1
			}
		}
	}
	mu1, err := fs.MeanPFD(1)
	if err != nil {
		t.Fatalf("MeanPFD(1): %v", err)
	}
	mu2, err := fs.MeanPFD(2)
	if err != nil {
		t.Fatalf("MeanPFD(2): %v", err)
	}
	if got := sum1 / reps; math.Abs(got-mu1) > 0.002 {
		t.Errorf("sparse empirical µ1 = %.5f, model %.5f", got, mu1)
	}
	if got := sum2 / reps; math.Abs(got-mu2) > 0.001 {
		t.Errorf("sparse empirical µ2 = %.5f, model %.5f", got, mu2)
	}
}

// TestDevelopSparseLargeUniverse: a million-fault universe with k ≈ 5
// expected faults per version — infeasible for the dense path at any
// meaningful replication count — must stay exact on its mean fault count.
func TestDevelopSparseLargeUniverse(t *testing.T) {
	t.Parallel()

	const n = 1 << 20
	fs, err := faultmodel.Uniform(n, 5.0/n, 0.5/n)
	if err != nil {
		t.Fatalf("Uniform: %v", err)
	}
	proc := NewIndependentProcess(fs)
	r := randx.NewStream(41)
	mask := NewBitset(n)
	const reps = 20000
	total := 0
	for rep := 0; rep < reps; rep++ {
		proc.DevelopSparse(r, mask)
		total += mask.Count()
	}
	got := float64(total) / reps
	want := 5.0 * float64(n) / n
	// Fault count is Binomial(n, 5/n): sd ≈ sqrt(5).
	tol := 5 * math.Sqrt(want/reps)
	if math.Abs(got-want) > tol {
		t.Errorf("mean fault count %.4f, want %.4f±%.4f", got, want, tol)
	}
}

func TestCommonPFDMismatchCombos(t *testing.T) {
	t.Parallel()

	small := mustFaultSet(t, []faultmodel.Fault{{P: 0.5, Q: 0.01}})
	big := mustFaultSet(t, []faultmodel.Fault{{P: 0.5, Q: 0.01}, {P: 0.5, Q: 0.02}})
	vSmall := NewIndependentProcess(small).Develop(randx.NewStream(1))
	vBig := NewIndependentProcess(big).Develop(randx.NewStream(1))

	cases := []struct {
		name string
		fs   *faultmodel.FaultSet
		a, b *Version
	}{
		{"first version too small", big, vSmall, vBig},
		{"second version too small", big, vBig, vSmall},
		{"both versions differ from set", small, vBig, vBig},
	}
	for _, tc := range cases {
		if _, err := CommonPFD(tc.fs, tc.a, tc.b); err == nil {
			t.Errorf("CommonPFD %s: succeeded, want error", tc.name)
		}
		if _, err := CommonFaultCount(tc.fs, tc.a, tc.b); err == nil {
			t.Errorf("CommonFaultCount %s: succeeded, want error", tc.name)
		}
	}
	// Matching sizes still succeed.
	if _, err := CommonPFD(big, vBig, vBig); err != nil {
		t.Errorf("CommonPFD same universe: %v", err)
	}
	if _, err := CommonFaultCount(big, vBig, vBig); err != nil {
		t.Errorf("CommonFaultCount same universe: %v", err)
	}
}

func BenchmarkDevelopSparseMillionFaults(b *testing.B) {
	const n = 1 << 20
	fs, err := faultmodel.Uniform(n, 5.0/n, 0.5/n)
	if err != nil {
		b.Fatalf("Uniform: %v", err)
	}
	proc := NewIndependentProcess(fs)
	r := randx.NewStream(1)
	mask := NewBitset(n)
	proc.DevelopSparse(r, mask) // build groups outside the timed loop
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		proc.DevelopSparse(r, mask)
	}
}

func BenchmarkDevelopIntoDense100k(b *testing.B) {
	const n = 100_000
	fs, err := faultmodel.Uniform(n, 5.0/n, 0.5/n)
	if err != nil {
		b.Fatalf("Uniform: %v", err)
	}
	proc := NewIndependentProcess(fs)
	r := randx.NewStream(1)
	present := make([]bool, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		proc.DevelopInto(r, present)
	}
}

func BenchmarkDevelopSparse100k(b *testing.B) {
	const n = 100_000
	fs, err := faultmodel.Uniform(n, 5.0/n, 0.5/n)
	if err != nil {
		b.Fatalf("Uniform: %v", err)
	}
	proc := NewIndependentProcess(fs)
	r := randx.NewStream(1)
	mask := NewBitset(n)
	proc.DevelopSparse(r, mask)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		proc.DevelopSparse(r, mask)
	}
}

// TestIndependentDevelopSparseFragmentedGroups: a p value recurring in
// non-adjacent index runs makes its group non-contiguous, which switches
// the kernel from offset arithmetic to a materialised index slice. The
// marginals must survive that switch for both the skip-sampled and the
// dense (small-group) variants, and bits must never land outside the
// group's actual fault indices.
func TestIndependentDevelopSparseFragmentedGroups(t *testing.T) {
	t.Parallel()

	// 0.05 in three runs split by another group and a p = 0 hole (30
	// faults, skip-sampled); 0.5 in two singleton runs (dense fallback).
	faults := make([]faultmodel.Fault, 0, 48)
	for i := 0; i < 10; i++ {
		faults = append(faults, faultmodel.Fault{P: 0.05, Q: 1e-3})
	}
	faults = append(faults, faultmodel.Fault{P: 0.5, Q: 1e-3})
	for i := 0; i < 10; i++ {
		faults = append(faults, faultmodel.Fault{P: 0.05, Q: 1e-3})
	}
	faults = append(faults, faultmodel.Fault{P: 0, Q: 1e-3})
	for i := 0; i < 10; i++ {
		faults = append(faults, faultmodel.Fault{P: 0.05, Q: 1e-3})
	}
	faults = append(faults, faultmodel.Fault{P: 0.5, Q: 1e-3})
	fs := mustFaultSet(t, faults)
	proc := NewIndependentProcess(fs)
	r := randx.NewStream(77)
	mask := NewBitset(fs.N())
	const reps = 200000
	counts := make([]int, fs.N())
	totalSkips := 0
	for rep := 0; rep < reps; rep++ {
		totalSkips += proc.DevelopSparse(r, mask)
		for _, w := range mask.Touched() {
			x := mask.Word(int(w))
			for i := int(w) << 6; x != 0; i++ {
				if x&1 == 1 {
					counts[i]++
				}
				x >>= 1
			}
		}
	}
	if totalSkips == 0 {
		t.Fatal("fragmented grouped universe produced no geometric skip draws")
	}
	for i := 0; i < fs.N(); i++ {
		want := fs.Fault(i).P
		got := float64(counts[i]) / reps
		tol := 5*math.Sqrt(want*(1-want)/reps) + 1e-9
		if math.Abs(got-want) > tol {
			t.Errorf("fault %d (p=%v) present fraction %.5f, want %.5f±%.5f", i, want, got, want, tol)
		}
	}
}
