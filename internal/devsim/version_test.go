package devsim

import (
	"math"
	"testing"

	"diversity/internal/faultmodel"
	"diversity/internal/randx"
)

func mustFaultSet(t *testing.T, faults []faultmodel.Fault) *faultmodel.FaultSet {
	t.Helper()
	fs, err := faultmodel.New(faults)
	if err != nil {
		t.Fatalf("faultmodel.New: %v", err)
	}
	return fs
}

func TestIndependentProcessMarginals(t *testing.T) {
	t.Parallel()

	fs := mustFaultSet(t, []faultmodel.Fault{
		{P: 0.1, Q: 0.01},
		{P: 0.5, Q: 0.02},
		{P: 0.9, Q: 0.03},
	})
	proc := NewIndependentProcess(fs)
	if proc.FaultSet() != fs {
		t.Error("FaultSet did not return the constructor argument")
	}
	r := randx.NewStream(7)
	const reps = 100000
	counts := make([]int, fs.N())
	for rep := 0; rep < reps; rep++ {
		v := proc.Develop(r)
		for i := 0; i < fs.N(); i++ {
			if v.Has(i) {
				counts[i]++
			}
		}
	}
	for i := 0; i < fs.N(); i++ {
		want := fs.Fault(i).P
		got := float64(counts[i]) / reps
		tol := 5*math.Sqrt(want*(1-want)/reps) + 1e-9
		if math.Abs(got-want) > tol {
			t.Errorf("fault %d present fraction %.5f, want %.5f±%.5f", i, got, want, tol)
		}
	}
}

func TestVersionPFDAndCount(t *testing.T) {
	t.Parallel()

	fs := mustFaultSet(t, []faultmodel.Fault{
		{P: 1, Q: 0.01},
		{P: 0, Q: 0.02},
		{P: 1, Q: 0.03},
	})
	proc := NewIndependentProcess(fs)
	v := proc.Develop(randx.NewStream(1))
	// p=1 faults always present, p=0 never.
	if !v.Has(0) || v.Has(1) || !v.Has(2) {
		t.Fatalf("deterministic presence wrong: %v %v %v", v.Has(0), v.Has(1), v.Has(2))
	}
	if v.FaultCount() != 2 {
		t.Errorf("FaultCount = %d, want 2", v.FaultCount())
	}
	if math.Abs(v.PFD()-0.04) > 1e-15 {
		t.Errorf("PFD = %v, want 0.04", v.PFD())
	}
	if v.NumPotential() != 3 {
		t.Errorf("NumPotential = %d, want 3", v.NumPotential())
	}
}

func TestCommonPFD(t *testing.T) {
	t.Parallel()

	fs := mustFaultSet(t, []faultmodel.Fault{
		{P: 1, Q: 0.01},
		{P: 1, Q: 0.02},
		{P: 1, Q: 0.03},
	})
	a := newVersion(fs, []bool{true, true, false})
	b := newVersion(fs, []bool{false, true, true})
	pfd, err := CommonPFD(fs, a, b)
	if err != nil {
		t.Fatalf("CommonPFD: %v", err)
	}
	if math.Abs(pfd-0.02) > 1e-15 {
		t.Errorf("CommonPFD = %v, want 0.02 (only fault 1 shared)", pfd)
	}
	n, err := CommonFaultCount(fs, a, b)
	if err != nil {
		t.Fatalf("CommonFaultCount: %v", err)
	}
	if n != 1 {
		t.Errorf("CommonFaultCount = %d, want 1", n)
	}
}

func TestCommonPFDMismatch(t *testing.T) {
	t.Parallel()

	fs := mustFaultSet(t, []faultmodel.Fault{{P: 1, Q: 0.01}})
	other := mustFaultSet(t, []faultmodel.Fault{{P: 1, Q: 0.01}, {P: 1, Q: 0.02}})
	a := NewIndependentProcess(fs).Develop(randx.NewStream(1))
	b := NewIndependentProcess(other).Develop(randx.NewStream(2))
	if _, err := CommonPFD(other, a, b); err == nil {
		t.Error("CommonPFD across universes succeeded, want error")
	}
	if _, err := CommonFaultCount(other, a, b); err == nil {
		t.Error("CommonFaultCount across universes succeeded, want error")
	}
}

// TestIndependentPairMatchesModel: the empirical mean PFD of versions and
// of version pairs must match equations (1) for m = 1 and m = 2.
func TestIndependentPairMatchesModel(t *testing.T) {
	t.Parallel()

	fs := mustFaultSet(t, []faultmodel.Fault{
		{P: 0.2, Q: 0.05},
		{P: 0.4, Q: 0.1},
		{P: 0.1, Q: 0.2},
	})
	proc := NewIndependentProcess(fs)
	r := randx.NewStream(42)
	const reps = 200000
	sum1, sum2 := 0.0, 0.0
	for rep := 0; rep < reps; rep++ {
		a := proc.Develop(r)
		b := proc.Develop(r)
		sum1 += a.PFD()
		common, err := CommonPFD(fs, a, b)
		if err != nil {
			t.Fatalf("CommonPFD: %v", err)
		}
		sum2 += common
	}
	mu1, err := fs.MeanPFD(1)
	if err != nil {
		t.Fatalf("MeanPFD(1): %v", err)
	}
	mu2, err := fs.MeanPFD(2)
	if err != nil {
		t.Fatalf("MeanPFD(2): %v", err)
	}
	if got := sum1 / reps; math.Abs(got-mu1) > 0.002 {
		t.Errorf("empirical µ1 = %.5f, model %.5f", got, mu1)
	}
	if got := sum2 / reps; math.Abs(got-mu2) > 0.002 {
		t.Errorf("empirical µ2 = %.5f, model %.5f", got, mu2)
	}
}

func TestCommonCauseProcessPreservesMarginals(t *testing.T) {
	t.Parallel()

	fs := mustFaultSet(t, []faultmodel.Fault{
		{P: 0.1, Q: 0.01},
		{P: 0.3, Q: 0.02},
	})
	proc, err := NewCommonCauseProcess(fs, 0.2, 2.5)
	if err != nil {
		t.Fatalf("NewCommonCauseProcess: %v", err)
	}
	r := randx.NewStream(11)
	const reps = 200000
	counts := make([]int, fs.N())
	for rep := 0; rep < reps; rep++ {
		v := proc.Develop(r)
		for i := 0; i < fs.N(); i++ {
			if v.Has(i) {
				counts[i]++
			}
		}
	}
	for i := 0; i < fs.N(); i++ {
		want := fs.Fault(i).P
		got := float64(counts[i]) / reps
		if math.Abs(got-want) > 5*math.Sqrt(want*(1-want)/reps)+1e-9 {
			t.Errorf("fault %d marginal %.5f, want %.5f", i, got, want)
		}
	}
}

func TestCommonCauseProcessPositiveCorrelation(t *testing.T) {
	t.Parallel()

	fs := mustFaultSet(t, []faultmodel.Fault{
		{P: 0.1, Q: 0.01},
		{P: 0.1, Q: 0.02},
	})
	proc, err := NewCommonCauseProcess(fs, 0.3, 3)
	if err != nil {
		t.Fatalf("NewCommonCauseProcess: %v", err)
	}
	r := randx.NewStream(13)
	const reps = 200000
	n11, n1, n2 := 0, 0, 0
	for rep := 0; rep < reps; rep++ {
		v := proc.Develop(r)
		if v.Has(0) {
			n1++
		}
		if v.Has(1) {
			n2++
		}
		if v.Has(0) && v.Has(1) {
			n11++
		}
	}
	joint := float64(n11) / reps
	indep := float64(n1) / reps * float64(n2) / reps
	if joint <= indep {
		t.Errorf("P(both) = %.5f not above P(a)P(b) = %.5f; no positive correlation induced", joint, indep)
	}
}

func TestCommonCauseProcessValidation(t *testing.T) {
	t.Parallel()

	fs := mustFaultSet(t, []faultmodel.Fault{{P: 0.5, Q: 0.01}})
	if _, err := NewCommonCauseProcess(fs, -0.1, 2); err == nil {
		t.Error("negative rho succeeded, want error")
	}
	if _, err := NewCommonCauseProcess(fs, 1, 2); err == nil {
		t.Error("rho=1 succeeded, want error")
	}
	if _, err := NewCommonCauseProcess(fs, 0.5, 0.5); err == nil {
		t.Error("boost < 1 succeeded, want error")
	}
	// rho=0.9, boost=2: hi=1, lo=(0.5-0.9)/0.1 < 0 -> must fail.
	if _, err := NewCommonCauseProcess(fs, 0.9, 2); err == nil {
		t.Error("marginal-violating parameters succeeded, want error")
	}
	// rho = 0 degenerates to independence and must be accepted.
	if _, err := NewCommonCauseProcess(fs, 0, 5); err != nil {
		t.Errorf("rho=0: %v", err)
	}
}

func TestResourceShiftProcessPreservesMarginals(t *testing.T) {
	t.Parallel()

	fs := mustFaultSet(t, []faultmodel.Fault{
		{P: 0.2, Q: 0.01},
		{P: 0.2, Q: 0.01},
		{P: 0.3, Q: 0.01},
		{P: 0.3, Q: 0.01},
	})
	proc, err := NewResourceShiftProcess(fs, 0.5)
	if err != nil {
		t.Fatalf("NewResourceShiftProcess: %v", err)
	}
	if proc.FaultSet() != fs {
		t.Error("FaultSet did not return the constructor argument")
	}
	r := randx.NewStream(17)
	const reps = 200000
	counts := make([]int, fs.N())
	for rep := 0; rep < reps; rep++ {
		v := proc.Develop(r)
		for i := 0; i < fs.N(); i++ {
			if v.Has(i) {
				counts[i]++
			}
		}
	}
	for i := 0; i < fs.N(); i++ {
		want := fs.Fault(i).P
		got := float64(counts[i]) / reps
		if math.Abs(got-want) > 5*math.Sqrt(want*(1-want)/reps)+1e-9 {
			t.Errorf("fault %d marginal %.5f, want %.5f", i, got, want)
		}
	}
}

func TestResourceShiftProcessNegativeCorrelationAcrossHalves(t *testing.T) {
	t.Parallel()

	fs := mustFaultSet(t, []faultmodel.Fault{
		{P: 0.3, Q: 0.01},
		{P: 0.3, Q: 0.01},
	})
	proc, err := NewResourceShiftProcess(fs, 0.9)
	if err != nil {
		t.Fatalf("NewResourceShiftProcess: %v", err)
	}
	r := randx.NewStream(19)
	const reps = 200000
	n11, n1, n2 := 0, 0, 0
	for rep := 0; rep < reps; rep++ {
		v := proc.Develop(r)
		if v.Has(0) {
			n1++
		}
		if v.Has(1) {
			n2++
		}
		if v.Has(0) && v.Has(1) {
			n11++
		}
	}
	joint := float64(n11) / reps
	indep := float64(n1) / reps * float64(n2) / reps
	if joint >= indep {
		t.Errorf("P(both) = %.5f not below P(a)P(b) = %.5f; no negative correlation induced", joint, indep)
	}
}

func TestResourceShiftProcessValidation(t *testing.T) {
	t.Parallel()

	fs := mustFaultSet(t, []faultmodel.Fault{{P: 0.6, Q: 0.01}})
	if _, err := NewResourceShiftProcess(fs, 0.8); err == nil {
		t.Error("shift overflowing probability succeeded, want error")
	}
	if _, err := NewResourceShiftProcess(fs, -0.1); err == nil {
		t.Error("negative shift succeeded, want error")
	}
	if _, err := NewResourceShiftProcess(fs, math.NaN()); err == nil {
		t.Error("NaN shift succeeded, want error")
	}
}

func TestTiedPairsProcessEquivalentToMergedModel(t *testing.T) {
	t.Parallel()

	fs := mustFaultSet(t, []faultmodel.Fault{
		{P: 0.3, Q: 0.05},
		{P: 0.3, Q: 0.07},
		{P: 0.1, Q: 0.02},
	})
	proc, err := NewTiedPairsProcess(fs, [][2]int{{0, 1}})
	if err != nil {
		t.Fatalf("NewTiedPairsProcess: %v", err)
	}
	if proc.FaultSet() != fs {
		t.Error("FaultSet did not return the constructor argument")
	}
	r := randx.NewStream(5)
	const reps = 100000
	together, apart := 0, 0
	sumPFD := 0.0
	for rep := 0; rep < reps; rep++ {
		v := proc.Develop(r)
		if v.Has(0) != v.Has(1) {
			apart++
		} else if v.Has(0) {
			together++
		}
		sumPFD += v.PFD()
	}
	if apart != 0 {
		t.Fatalf("tied faults appeared separately %d times", apart)
	}
	wantTogether := 0.3
	got := float64(together) / reps
	if math.Abs(got-wantTogether) > 0.01 {
		t.Errorf("pair present fraction %v, want %v", got, wantTogether)
	}
	// Mean PFD matches the merged analytic model.
	merged, err := fs.MergeFaults(0, 1, 0.3)
	if err != nil {
		t.Fatalf("MergeFaults: %v", err)
	}
	wantMu, err := merged.MeanPFD(1)
	if err != nil {
		t.Fatalf("MeanPFD: %v", err)
	}
	if math.Abs(sumPFD/reps-wantMu) > 0.002 {
		t.Errorf("tied mean PFD %v, merged model %v", sumPFD/reps, wantMu)
	}
}

func TestNewTiedPairsProcessValidation(t *testing.T) {
	t.Parallel()

	fs := mustFaultSet(t, []faultmodel.Fault{
		{P: 0.3, Q: 0.05}, {P: 0.3, Q: 0.07}, {P: 0.1, Q: 0.02},
	})
	if _, err := NewTiedPairsProcess(nil, nil); err == nil {
		t.Error("nil fault set succeeded, want error")
	}
	if _, err := NewTiedPairsProcess(fs, [][2]int{{0, 5}}); err == nil {
		t.Error("out-of-range pair succeeded, want error")
	}
	if _, err := NewTiedPairsProcess(fs, [][2]int{{1, 1}}); err == nil {
		t.Error("self-pair succeeded, want error")
	}
	if _, err := NewTiedPairsProcess(fs, [][2]int{{0, 1}, {1, 2}}); err == nil {
		t.Error("doubly-tied fault succeeded, want error")
	}
	// No pairs degenerates to the independent process.
	proc, err := NewTiedPairsProcess(fs, nil)
	if err != nil {
		t.Fatalf("NewTiedPairsProcess: %v", err)
	}
	v := proc.Develop(randx.NewStream(1))
	if v.NumPotential() != 3 {
		t.Errorf("NumPotential = %d, want 3", v.NumPotential())
	}
}

// benchFaultProbs returns the per-fault presence probabilities of a
// commercial-grade-sized uniform universe, the shape of the dense
// development inner loop.
func benchFaultProbs(b *testing.B, n int) []float64 {
	b.Helper()
	fs, err := faultmodel.Uniform(n, 0.05, 0.5/float64(n))
	if err != nil {
		b.Fatalf("Uniform: %v", err)
	}
	probs := make([]float64, n)
	for i := range probs {
		probs[i] = fs.Fault(i).P
	}
	return probs
}

// The pair below measures the clamp branches BernoulliValidated removes
// from the per-fault development loop: same draws, same outcomes for the
// construction-validated p used here, minus two comparisons per fault.
func BenchmarkBernoulliClampedLoop(b *testing.B) {
	probs := benchFaultProbs(b, 1024)
	r := randx.NewStream(1)
	hits := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range probs {
			if r.Bernoulli(p) {
				hits++
			}
		}
	}
	_ = hits
}

func BenchmarkBernoulliValidatedLoop(b *testing.B) {
	probs := benchFaultProbs(b, 1024)
	r := randx.NewStream(1)
	hits := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range probs {
			if r.BernoulliValidated(p) {
				hits++
			}
		}
	}
	_ = hits
}
