package devsim

import (
	"math"
	"testing"

	"diversity/internal/faultmodel"
	"diversity/internal/randx"
)

// refDevelopBatch is the naive []bool reference for DevelopBatch: it
// consumes a same-seeded stream in the exact same fault-major order, so
// the kernel's branchless masks and 64×64 transpose must yield
// bit-identical columns. The correlated processes replay
// Stream.Float64() < p comparisons (exactly equivalent to the kernel's
// integer thresholds — see FuzzBernoulliThreshold); the independent
// process replays the paired 32-bit lane scheme of Stream.Hits with
// branchy scalar code, since Hits deliberately consumes the stream
// differently from element-wise draws.
func refDevelopBatch(t *testing.T, proc Process, r *randx.Stream, width int) [][]bool {
	t.Helper()
	n := proc.FaultSet().N()
	cols := make([][]bool, width)
	for j := range cols {
		cols[j] = make([]bool, n)
	}
	bernoulli := func(p float64) []bool {
		hit := make([]bool, width)
		for j := range hit {
			hit[j] = r.Float64() < p
		}
		return hit
	}
	// pairedBernoulli mirrors Source.Hits: each 64-bit draw supplies two
	// 32-bit coarse lanes (high half first) compared against T>>21, and
	// an exact coarse tie draws one refinement word whose low 21 bits
	// settle the outcome against T's low 21 bits.
	pairedBernoulli := func(p float64) []bool {
		thr := BernoulliThreshold(p)
		t32, tRef := thr>>21, thr&(1<<21-1)
		hit := make([]bool, width)
		for j := 0; j < width; {
			u := r.Uint64()
			for _, lane := range []uint64{u >> 32, u & 0xFFFFFFFF} {
				if j >= width {
					break
				}
				switch {
				case lane < t32:
					hit[j] = true
				case lane == t32:
					hit[j] = r.Uint64()&(1<<21-1) < tRef
				}
				j++
			}
		}
		return hit
	}
	switch p := proc.(type) {
	case *IndependentProcess:
		for i := 0; i < n; i++ {
			pi := p.fs.Fault(i).P
			if pi == 0 {
				continue
			}
			for j, hit := range pairedBernoulli(pi) {
				cols[j][i] = hit
			}
		}
	case *CommonCauseProcess:
		bad := make([]bool, width)
		if p.rho > 0 {
			bad = bernoulli(p.rho)
		}
		for i := 0; i < n; i++ {
			if p.hi[i] == 0 {
				continue
			}
			for j := 0; j < width; j++ {
				pi := p.lo[i]
				if bad[j] {
					pi = p.hi[i]
				}
				cols[j][i] = r.Float64() < pi
			}
		}
	case *ResourceShiftProcess:
		for pair := 0; pair+1 < n; pair += 2 {
			favourFirst := bernoulli(0.5)
			for offset := 0; offset < 2; offset++ {
				i := pair + offset
				pi := p.fs.Fault(i).P
				if pi*(1+p.shift) == 0 {
					continue
				}
				for j := 0; j < width; j++ {
					pj := pi * (1 + p.shift)
					if favourFirst[j] == (offset == 0) {
						pj = pi * (1 - p.shift)
					}
					cols[j][i] = r.Float64() < pj
				}
			}
		}
		if n%2 == 1 {
			i := n - 1
			if pi := p.fs.Fault(i).P; pi != 0 {
				for j, hit := range bernoulli(pi) {
					cols[j][i] = hit
				}
			}
		}
	case *TiedPairsProcess:
		for i := 0; i < n; i++ {
			partner := p.pairOf[i]
			if partner >= 0 && partner < i {
				continue
			}
			pi := p.fs.Fault(i).P
			if pi == 0 {
				continue
			}
			for j, hit := range bernoulli(pi) {
				if hit {
					cols[j][i] = true
					if partner > i {
						cols[j][partner] = true
					}
				}
			}
		}
	default:
		t.Fatalf("no reference for %T", proc)
	}
	return cols
}

// assertBatchMatchesReference runs DevelopBatch and the float reference
// on same-seeded streams and requires bit-identical columns.
func assertBatchMatchesReference(t *testing.T, name string, proc Process, seed uint64, width int) {
	t.Helper()
	bd, ok := proc.(BatchDeveloper)
	if !ok {
		t.Fatalf("%s: %T does not implement BatchDeveloper", name, proc)
	}
	n := proc.FaultSet().N()
	cols := make([]*Bitset, width)
	for j := range cols {
		cols[j] = NewBitset(n)
		cols[j].Set(j % n) // stale state: DevelopBatch must clear it
	}
	scratch := make([]uint64, BatchScratchLen(width, n))
	bd.DevelopBatch(randx.NewStream(seed), cols, scratch)
	want := refDevelopBatch(t, proc, randx.NewStream(seed), width)
	for j := 0; j < width; j++ {
		for i := 0; i < n; i++ {
			if cols[j].Test(i) != want[j][i] {
				t.Fatalf("%s seed=%d width=%d: column %d fault %d batch=%v reference=%v",
					name, seed, width, j, i, cols[j].Test(i), want[j][i])
			}
		}
	}
}

// TestDevelopBatchMatchesFloatReference: every process's batched kernel
// must reproduce the scalar reference draw for draw, including
// degenerate p = 0 / p = 1 faults, odd universes, and width-1 tiles.
func TestDevelopBatchMatchesFloatReference(t *testing.T) {
	t.Parallel()

	fs := mustFaultSet(t, []faultmodel.Fault{
		{P: 0.2, Q: 0.01}, {P: 0.2, Q: 0.01}, {P: 0, Q: 0.02},
		{P: 1, Q: 0.02}, {P: 0.35, Q: 0.01}, {P: 1e-9, Q: 0.01},
		{P: 0.5, Q: 0.01},
	})
	common, err := NewCommonCauseProcess(fs, 0.25, 1.5)
	if err != nil {
		t.Fatalf("NewCommonCauseProcess: %v", err)
	}
	// Resource shift requires p·(1+shift) <= 1, so use a scaled-down set.
	smallFS := mustFaultSet(t, []faultmodel.Fault{
		{P: 0.2, Q: 0.01}, {P: 0.2, Q: 0.01}, {P: 0, Q: 0.02},
		{P: 0.4, Q: 0.02}, {P: 0.35, Q: 0.01}, {P: 1e-9, Q: 0.01},
		{P: 0.5, Q: 0.01},
	})
	shift, err := NewResourceShiftProcess(smallFS, 0.5)
	if err != nil {
		t.Fatalf("NewResourceShiftProcess: %v", err)
	}
	tied, err := NewTiedPairsProcess(fs, [][2]int{{0, 4}, {1, 6}})
	if err != nil {
		t.Fatalf("NewTiedPairsProcess: %v", err)
	}
	procs := map[string]Process{
		"independent":    NewIndependentProcess(fs),
		"common-cause":   common,
		"no-common":      mustNoCommonCause(t, fs),
		"resource-shift": shift,
		"tied-pairs":     tied,
	}
	for name, proc := range procs {
		for _, width := range []int{1, 3, 64} {
			for seed := uint64(1); seed <= 25; seed++ {
				assertBatchMatchesReference(t, name, proc, seed, width)
			}
		}
	}
}

// mustNoCommonCause builds a CommonCauseProcess with rho = 0 — the
// degenerate "never a bad day" case that must skip the day coins.
func mustNoCommonCause(t *testing.T, fs *faultmodel.FaultSet) *CommonCauseProcess {
	t.Helper()
	p, err := NewCommonCauseProcess(fs, 0, 1)
	if err != nil {
		t.Fatalf("NewCommonCauseProcess(rho=0): %v", err)
	}
	return p
}

// TestBernoulliThresholdEdges pins the degenerate thresholds the kernel
// relies on.
func TestBernoulliThresholdEdges(t *testing.T) {
	t.Parallel()

	if got := BernoulliThreshold(0); got != 0 {
		t.Errorf("BernoulliThreshold(0) = %d, want 0", got)
	}
	if got := BernoulliThreshold(1); got != 1<<53 {
		t.Errorf("BernoulliThreshold(1) = %d, want 2^53", got)
	}
	if got := BernoulliThreshold(0.5); got != halfThreshold {
		t.Errorf("BernoulliThreshold(0.5) = %d, want %d", got, uint64(halfThreshold))
	}
	if got := BernoulliThreshold(5e-324); got != 1 {
		t.Errorf("BernoulliThreshold(min subnormal) = %d, want 1", got)
	}
}

// FuzzBernoulliThreshold: the integer compare must agree with the float
// compare Stream.Float64() < p for every 64-bit draw and probability.
func FuzzBernoulliThreshold(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(^uint64(0), ^uint64(0))
	f.Add(uint64(1<<63), uint64(1<<62))
	f.Fuzz(func(t *testing.T, u, pBits uint64) {
		p := float64(pBits) / float64(math.MaxUint64) // in [0, 1]
		intHit := u>>11 < BernoulliThreshold(p)
		floatHit := float64(u>>11)*0x1p-53 < p
		if intHit != floatHit {
			t.Fatalf("u=%d p=%v: integer compare %v, float compare %v", u, p, intHit, floatHit)
		}
	})
}

// FuzzDevelopBatchMatchesFloatReference drives the independent and
// common-cause batched kernels against the scalar []bool reference over
// fuzzed probabilities, widths, and seeds.
func FuzzDevelopBatchMatchesFloatReference(f *testing.F) {
	f.Add(uint64(1), uint8(8), uint16(6553), uint16(32767), uint16(0), uint16(65535))
	f.Add(uint64(42), uint8(1), uint16(1), uint16(2), uint16(3), uint16(4))
	f.Fuzz(func(t *testing.T, seed uint64, width uint8, a, b, rhoBits, c uint16) {
		w := int(width%64) + 1
		ps := []float64{
			float64(a) / 65535,
			float64(b) / 65535,
			float64(c) / 65535,
		}
		faults := make([]faultmodel.Fault, 0, 9)
		for i := 0; i < 9; i++ {
			faults = append(faults, faultmodel.Fault{P: ps[i%3], Q: 1e-3})
		}
		fs, err := faultmodel.New(faults)
		if err != nil {
			t.Skip()
		}
		assertBatchMatchesReference(t, "independent", NewIndependentProcess(fs), seed, w)
		rho := float64(rhoBits) / 65536 // in [0, 1)
		if common, err := NewCommonCauseProcess(fs, rho, 1.25); err == nil {
			assertBatchMatchesReference(t, "common-cause", common, seed, w)
		}
	})
}
