package devsim

import (
	"math"

	"diversity/internal/randx"
)

// BatchDeveloper is an optional Process extension for the batched
// replication kernel. DevelopBatch overwrites each column in cols
// (clearing any stale state) with one independent development, visiting
// the faults in fault-major order: every fault draws its Bernoulli
// variates for all columns as a batch — fused draw-and-compare
// randx.Stream.Hits calls for the independent process, a
// randx.Stream.FillUint64 batch threshold-compared branchlessly (see
// BernoulliThreshold) for the correlated processes — into per-fault
// lane masks, and a final 64×64 bit transpose scatters the fault-major
// masks into the per-replication bitset columns. That amortizes the RNG
// call and the per-fault probability lookup across the whole tile and
// keeps the hot loop free of both branches (random hit patterns would
// mispredict heavily) and scattered memory writes.
//
// scratch is caller-owned space of length >= BatchScratchLen(len(cols),
// n): draw lanes, latent-coin lanes (common-cause day, resource-shift
// pair), and the fault-major mask rows the transpose reads. Reusing one
// scratch slice across calls keeps the steady state allocation-free.
//
// Like SparseDeveloper's contract, DevelopBatch consumes the stream in
// its own (fault-major) order, so for a given seed it produces a
// different — but distributionally identical — sample than Develop's
// replication-major order. Implementations must be safe for concurrent
// use from multiple goroutines with distinct streams and columns.
type BatchDeveloper interface {
	DevelopBatch(r *randx.Stream, cols []*Bitset, scratch []uint64)
}

// Every shipped process supports the batched kernel.
var (
	_ BatchDeveloper = (*IndependentProcess)(nil)
	_ BatchDeveloper = (*CommonCauseProcess)(nil)
	_ BatchDeveloper = (*ResourceShiftProcess)(nil)
	_ BatchDeveloper = (*TiedPairsProcess)(nil)
)

// BatchScratchLen returns the scratch length DevelopBatch requires for a
// tile of the given width over a universe of n faults: width draw lanes,
// width latent-coin lanes, and n rows of ceil(width/64) fault-major mask
// words.
func BatchScratchLen(width, n int) int {
	return 2*width + n*((width+63)/64)
}

// BernoulliThreshold maps a presence probability to the integer
// threshold T such that, for a 64-bit draw u,
//
//	u>>11 < T  ⟺  float64(u>>11) * 0x1p-53 < p  ⟺  Stream.Float64() < p.
//
// The equivalence is exact: p*2^53 is an exact float64 product for
// p ∈ [0, 1] (a pure exponent shift cannot round), u>>11 < 2^53 is
// exactly representable, and an integer u is below a real bound x iff
// it is below ceil(x). p = 0 yields T = 0 (never true) and p = 1 yields
// T = 2^53 (always true), matching BernoulliValidated.
func BernoulliThreshold(p float64) uint64 {
	return uint64(math.Ceil(p * 0x1p53))
}

// hitBit returns 1 when draw u clears threshold t (Float64() < p), else
// 0, without a branch: both u>>11 and t are below 2^53, so u>>11 - t is
// negative exactly on a hit and the wrapped difference carries that sign
// in its top bit.
func hitBit(u, t uint64) uint64 {
	return (u>>11 - t) >> 63
}

// batchLayout slices one scratch arena into the kernel's three regions.
func batchLayout(scratch []uint64, width, n int) (d, aux, rows []uint64) {
	g := (width + 63) / 64
	return scratch[:width], scratch[width : 2*width], scratch[2*width : 2*width+n*g]
}

// maskRow threshold-compares one fault's draw lanes into its mask row:
// bit j of rows[k] is the hit for column 64*k + j.
func maskRow(d []uint64, t uint64, rows []uint64) {
	for k := range rows {
		lanes := d[k*64:]
		if len(lanes) > 64 {
			lanes = lanes[:64]
		}
		var m uint64
		for j, u := range lanes {
			m |= hitBit(u, t) << uint(j)
		}
		rows[k] = m
	}
}

// zeroRow clears one fault's mask row (used for skipped p = 0 faults,
// whose rows would otherwise carry a previous tile's hits).
func zeroRow(rows []uint64) {
	for k := range rows {
		rows[k] = 0
	}
}

// transpose64 transposes a 64×64 bit matrix in place: bit j of word k
// moves to bit k of word j (LSB-first in both dimensions). Standard
// recursive block-swap, 6 rounds of masked exchanges.
func transpose64(a *[64]uint64) {
	j := uint(32)
	m := uint64(0x00000000FFFFFFFF)
	for j != 0 {
		for k := 0; k < 64; k = (k + int(j) + 1) &^ int(j) {
			t := ((a[k] >> j) ^ a[k+int(j)]) & m
			a[k] ^= t << j
			a[k+int(j)] ^= t
		}
		j >>= 1
		m ^= m << j
	}
}

// scatterRows transposes the fault-major mask rows into the
// replication-major columns, overwriting every word of every column and
// rebuilding the touched lists — which both clears stale state and
// restores the Bitset O(touched) contract for the evaluation kernels.
func scatterRows(rows []uint64, cols []*Bitset, n int) {
	width := len(cols)
	g := (width + 63) / 64
	var blk [64]uint64
	for wb := 0; wb*64 < n; wb++ { // fault word block
		lo := wb * 64
		hi := lo + 64
		if hi > n {
			hi = n
		}
		for k := 0; k < g; k++ { // column lane group
			for i := lo; i < hi; i++ {
				blk[i-lo] = rows[i*g+k]
			}
			for i := hi - lo; i < 64; i++ {
				blk[i] = 0
			}
			transpose64(&blk)
			jmax := width - k*64
			if jmax > 64 {
				jmax = 64
			}
			for j := 0; j < jmax; j++ {
				cols[k*64+j].words[wb] = blk[j]
			}
		}
	}
	for _, col := range cols {
		col.touched = col.touched[:0]
		for wi, word := range col.words {
			if word != 0 {
				col.touched = append(col.touched, int32(wi))
			}
		}
	}
}

// batchThresholds builds the per-fault integer thresholds once.
func (p *IndependentProcess) batchThresholds() []uint64 {
	p.batchOnce.Do(func() {
		p.thresholds = make([]uint64, p.fs.N())
		for i := range p.thresholds {
			p.thresholds[i] = BernoulliThreshold(p.fs.Fault(i).P)
		}
	})
	return p.thresholds
}

// DevelopBatch implements BatchDeveloper: each fault's lane masks come
// from fused randx.Stream.Hits calls against the fault's precomputed
// threshold — the Bernoulli compare happens while each draw is still in
// a register, and each 64-bit variate supplies two exactly-distributed
// lanes, so the per-fault inner loop runs at half the generator's
// element-wise speed with no intermediate draw buffer. Faults with
// p = 0 are skipped without consuming variates.
func (p *IndependentProcess) DevelopBatch(r *randx.Stream, cols []*Bitset, scratch []uint64) {
	n := p.fs.N()
	width := len(cols)
	_, _, rows := batchLayout(scratch, width, n)
	g := (width + 63) / 64
	for i, t := range p.batchThresholds() {
		row := rows[i*g : i*g+g]
		if t == 0 {
			zeroRow(row)
			continue
		}
		rem := width
		for k := range row {
			c := rem
			if c > 64 {
				c = 64
			}
			row[k] = r.Hits(t, c)
			rem -= c
		}
	}
	scatterRows(rows, cols, n)
}

// batchThresholds builds the good-day and bad-day per-fault thresholds
// once.
func (p *CommonCauseProcess) batchThresholds() ([]uint64, []uint64) {
	p.batchOnce.Do(func() {
		p.thrHi = make([]uint64, len(p.hi))
		p.thrLo = make([]uint64, len(p.lo))
		for i := range p.hi {
			p.thrHi[i] = BernoulliThreshold(p.hi[i])
			p.thrLo[i] = BernoulliThreshold(p.lo[i])
		}
	})
	return p.thrHi, p.thrLo
}

// coinMasks draws one batch of latent coins and packs the comparisons
// against thr into per-group lane masks, stored in aux's leading words.
// The packing overwrites raw coins in place; it only writes aux[k] after
// group k's raw values (aux[64k:64k+64)) have been consumed, and k <
// 64(k+1) keeps the writes clear of every later group's raw values. No
// draw happens when thr == 0 (the masks are all zero), mirroring how
// Bernoulli skips degenerate probabilities.
func coinMasks(r *randx.Stream, aux []uint64, g int, thr uint64) []uint64 {
	if thr == 0 {
		for k := 0; k < g; k++ {
			aux[k] = 0
		}
		return aux[:g]
	}
	r.FillUint64(aux)
	for k := 0; k < g; k++ {
		lanes := aux[k*64:]
		if len(lanes) > 64 {
			lanes = lanes[:64]
		}
		var m uint64
		for j, u := range lanes {
			m |= hitBit(u, thr) << uint(j)
		}
		aux[k] = m
	}
	return aux[:g]
}

// DevelopBatch implements BatchDeveloper. One batch of "bad day" coins
// is drawn per tile (only when rho > 0, like Bernoulli skips degenerate
// draws) and packed into lane masks; each fault then blends its bad-day
// and good-day comparisons through that mask.
func (p *CommonCauseProcess) DevelopBatch(r *randx.Stream, cols []*Bitset, scratch []uint64) {
	n := len(p.hi)
	d, aux, rows := batchLayout(scratch, len(cols), n)
	g := (len(cols) + 63) / 64
	var thrRho uint64
	if p.rho > 0 {
		thrRho = BernoulliThreshold(p.rho)
	}
	day := coinMasks(r, aux, g, thrRho)
	thrHi, thrLo := p.batchThresholds()
	for i := range thrHi {
		tHi, tLo := thrHi[i], thrLo[i]
		row := rows[i*g : i*g+g]
		if tHi == 0 { // p_i == 0: lo <= hi, neither day can set the bit
			zeroRow(row)
			continue
		}
		r.FillUint64(d)
		for k := range row {
			lanes := d[k*64:]
			if len(lanes) > 64 {
				lanes = lanes[:64]
			}
			var mLo, mHi uint64
			for j, u := range lanes {
				mLo |= hitBit(u, tLo) << uint(j)
				mHi |= hitBit(u, tHi) << uint(j)
			}
			row[k] = (mHi & day[k]) | (mLo &^ day[k])
		}
	}
	scatterRows(rows, cols, n)
}

// batchThresholds builds the favoured/neglected per-fault thresholds
// once. The trailing unpaired fault (odd n) stores its plain threshold
// in both slots.
func (p *ResourceShiftProcess) batchThresholds() ([]uint64, []uint64) {
	p.batchOnce.Do(func() {
		n := p.fs.N()
		p.thrFav = make([]uint64, n)
		p.thrNeg = make([]uint64, n)
		for i := 0; i < n; i++ {
			pi := p.fs.Fault(i).P
			if i == n-1 && n%2 == 1 {
				p.thrFav[i] = BernoulliThreshold(pi)
				p.thrNeg[i] = p.thrFav[i]
				continue
			}
			p.thrFav[i] = BernoulliThreshold(pi * (1 - p.shift))
			p.thrNeg[i] = BernoulliThreshold(pi * (1 + p.shift))
		}
	})
	return p.thrFav, p.thrNeg
}

// halfThreshold is BernoulliThreshold(0.5): the fair coin deciding which
// member of a resource pair is favoured.
const halfThreshold = 1 << 52

// DevelopBatch implements BatchDeveloper. Each pair draws one batch of
// fair coins packed into lane masks choosing the favoured member per
// column, then one batch per member blending the favoured and neglected
// comparisons through that mask. The trailing unpaired fault of an odd
// universe draws at its plain probability with no coin.
func (p *ResourceShiftProcess) DevelopBatch(r *randx.Stream, cols []*Bitset, scratch []uint64) {
	n := p.fs.N()
	d, aux, rows := batchLayout(scratch, len(cols), n)
	g := (len(cols) + 63) / 64
	thrFav, thrNeg := p.batchThresholds()
	for pair := 0; pair+1 < n; pair += 2 {
		coin := coinMasks(r, aux, g, halfThreshold)
		for offset := 0; offset < 2; offset++ {
			i := pair + offset
			tFav, tNeg := thrFav[i], thrNeg[i]
			row := rows[i*g : i*g+g]
			if tNeg == 0 { // p_i == 0 either way
				zeroRow(row)
				continue
			}
			r.FillUint64(d)
			for k := range row {
				lanes := d[k*64:]
				if len(lanes) > 64 {
					lanes = lanes[:64]
				}
				var mFav, mNeg uint64
				for j, u := range lanes {
					mFav |= hitBit(u, tFav) << uint(j)
					mNeg |= hitBit(u, tNeg) << uint(j)
				}
				// A heads coin favours the first member (offset 0).
				sel := coin[k]
				if offset == 1 {
					sel = ^sel
				}
				row[k] = (mFav & sel) | (mNeg &^ sel)
			}
		}
	}
	if n%2 == 1 {
		i := n - 1
		row := rows[i*g : i*g+g]
		if t := thrFav[i]; t != 0 {
			r.FillUint64(d)
			maskRow(d, t, row)
		} else {
			zeroRow(row)
		}
	}
	scatterRows(rows, cols, n)
}

// batchThresholds builds the per-fault thresholds once; only driver
// indices (the smaller of each pair, and untied faults) are consulted.
func (p *TiedPairsProcess) batchThresholds() []uint64 {
	p.batchOnce.Do(func() {
		p.thresholds = make([]uint64, p.fs.N())
		for i := range p.thresholds {
			p.thresholds[i] = BernoulliThreshold(p.fs.Fault(i).P)
		}
	})
	return p.thresholds
}

// DevelopBatch implements BatchDeveloper. Each pair's driver (smaller
// index) draws one batch; the hit mask is written to both members' rows,
// exactly like the dense path's single shared coin. The fault-major row
// layout makes the tie a plain copy.
func (p *TiedPairsProcess) DevelopBatch(r *randx.Stream, cols []*Bitset, scratch []uint64) {
	n := p.fs.N()
	d, _, rows := batchLayout(scratch, len(cols), n)
	g := (len(cols) + 63) / 64
	thr := p.batchThresholds()
	for i := 0; i < n; i++ {
		partner := p.pairOf[i]
		if partner >= 0 && partner < i {
			continue // the partner's draw already wrote this row
		}
		row := rows[i*g : i*g+g]
		t := thr[i]
		if t == 0 {
			zeroRow(row)
			if partner > i {
				zeroRow(rows[partner*g : partner*g+g])
			}
			continue
		}
		r.FillUint64(d)
		maskRow(d, t, row)
		if partner > i {
			copy(rows[partner*g:partner*g+g], row)
		}
	}
	scatterRows(rows, cols, n)
}
