package report

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named data series for PlotSeries.
type Series struct {
	// Label names the series in the legend.
	Label string
	// Xs and Ys are the coordinates; lengths must match.
	Xs, Ys []float64
	// Marker is the plot character; picked automatically if zero.
	Marker rune
}

var defaultMarkers = []rune{'*', '+', 'o', 'x', '#', '@'}

// PlotSeries renders one or more series as an ASCII scatter/line chart of
// the given character dimensions. Axes are annotated with the data ranges.
func PlotSeries(w io.Writer, title string, series []Series, width, height int) error {
	if len(series) == 0 {
		return errors.New("report: at least one series is required")
	}
	if width < 16 || height < 4 {
		return fmt.Errorf("report: plot dimensions %dx%d too small (need >= 16x4)", width, height)
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for si, s := range series {
		if len(s.Xs) != len(s.Ys) {
			return fmt.Errorf("report: series %d has %d xs and %d ys", si, len(s.Xs), len(s.Ys))
		}
		if len(s.Xs) == 0 {
			return fmt.Errorf("report: series %d is empty", si)
		}
		for i := range s.Xs {
			x, y := s.Xs[i], s.Ys[i]
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if minX > maxX || minY > maxY {
		return errors.New("report: no finite data points to plot")
	}
	if minX == maxX {
		minX, maxX = minX-1, maxX+1
	}
	if minY == maxY {
		minY, maxY = minY-1, maxY+1
	}

	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	for si, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		for i := range s.Xs {
			x, y := s.Xs[i], s.Ys[i]
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			col := int((x - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((y-minY)/(maxY-minY)*float64(height-1))
			grid[row][col] = marker
		}
	}

	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	yLoLabel, yHiLabel := Fmt(minY), Fmt(maxY)
	margin := len(yHiLabel)
	if len(yLoLabel) > margin {
		margin = len(yLoLabel)
	}
	for r, line := range grid {
		label := strings.Repeat(" ", margin)
		switch r {
		case 0:
			label = pad(yHiLabel, margin)
		case height - 1:
			label = pad(yLoLabel, margin)
		}
		b.WriteString(label)
		b.WriteString(" |")
		b.WriteString(string(line))
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat(" ", margin))
	b.WriteString(" +")
	b.WriteString(strings.Repeat("-", width))
	b.WriteByte('\n')
	b.WriteString(strings.Repeat(" ", margin+2))
	xLo, xHi := Fmt(minX), Fmt(maxX)
	gap := width - len(xLo) - len(xHi)
	if gap < 1 {
		gap = 1
	}
	b.WriteString(xLo)
	b.WriteString(strings.Repeat(" ", gap))
	b.WriteString(xHi)
	b.WriteByte('\n')
	if len(series) > 1 || series[0].Label != "" {
		b.WriteString("legend:")
		for si, s := range series {
			marker := s.Marker
			if marker == 0 {
				marker = defaultMarkers[si%len(defaultMarkers)]
			}
			fmt.Fprintf(&b, "  %c %s", marker, s.Label)
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func pad(s string, width int) string {
	if len(s) >= width {
		return s
	}
	return strings.Repeat(" ", width-len(s)) + s
}

// PlotHistogram renders bin counts as horizontal bars.
func PlotHistogram(w io.Writer, title string, binLabels []string, counts []int, width int) error {
	if len(binLabels) != len(counts) {
		return fmt.Errorf("report: %d labels for %d bins", len(binLabels), len(counts))
	}
	if len(counts) == 0 {
		return errors.New("report: histogram requires at least one bin")
	}
	if width < 8 {
		return fmt.Errorf("report: histogram width %d too small (need >= 8)", width)
	}
	maxCount := 0
	labelWidth := 0
	for i, c := range counts {
		if c < 0 {
			return fmt.Errorf("report: negative count %d in bin %d", c, i)
		}
		if c > maxCount {
			maxCount = c
		}
		if len(binLabels[i]) > labelWidth {
			labelWidth = len(binLabels[i])
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	for i, c := range counts {
		bar := 0
		if maxCount > 0 {
			bar = int(math.Round(float64(c) / float64(maxCount) * float64(width)))
		}
		fmt.Fprintf(&b, "%s |%s %d\n", pad(binLabels[i], labelWidth), strings.Repeat("#", bar), c)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// PlotGrid renders a 2-D field as characters: cell(x, y) is evaluated at
// the centre of each character cell over the unit square, with y
// increasing upwards. It renders the paper's Fig.-2 style failure-region
// pictures.
func PlotGrid(w io.Writer, title string, width, height int, cell func(x, y float64) rune) error {
	if cell == nil {
		return errors.New("report: cell function must not be nil")
	}
	if width < 2 || height < 2 {
		return fmt.Errorf("report: grid dimensions %dx%d too small", width, height)
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	b.WriteString("+" + strings.Repeat("-", width) + "+\n")
	for r := 0; r < height; r++ {
		y := 1 - (float64(r)+0.5)/float64(height)
		b.WriteByte('|')
		for c := 0; c < width; c++ {
			x := (float64(c) + 0.5) / float64(width)
			b.WriteRune(cell(x, y))
		}
		b.WriteString("|\n")
	}
	b.WriteString("+" + strings.Repeat("-", width) + "+\n")
	_, err := io.WriteString(w, b.String())
	return err
}
