// Package report renders experiment results as aligned text tables,
// Markdown, CSV, and character plots. The experiments driver uses it to
// regenerate the paper's tables and figures in terminal-friendly form.
package report

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a titled grid of cells with a header row.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
// At least one column is required; a panic here would be a programming
// error in the experiment code, so an error is returned instead.
func NewTable(title string, headers ...string) (*Table, error) {
	if len(headers) == 0 {
		return nil, errors.New("report: table requires at least one column")
	}
	return &Table{title: title, headers: headers}, nil
}

// AddRow appends a row; the cell count must match the header count.
func (t *Table) AddRow(cells ...string) error {
	if len(cells) != len(t.headers) {
		return fmt.Errorf("report: row has %d cells, table has %d columns", len(cells), len(t.headers))
	}
	t.rows = append(t.rows, cells)
	return nil
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the table as aligned monospace text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderMarkdown writes the table as GitHub-flavoured Markdown.
func (t *Table) RenderMarkdown(w io.Writer) error {
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.title)
	}
	b.WriteString("| " + strings.Join(t.headers, " | ") + " |\n")
	seps := make([]string, len(t.headers))
	for i := range seps {
		seps[i] = "---"
	}
	b.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, row := range t.rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table (headers then rows) as CSV, without the title.
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.headers); err != nil {
		return fmt.Errorf("report: writing CSV header: %w", err)
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("report: writing CSV row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("report: flushing CSV: %w", err)
	}
	return nil
}

// Fmt formats a float compactly for table cells: fixed notation in a
// readable range, scientific outside it, with NaN and infinities spelled
// out.
func Fmt(v float64) string {
	switch {
	case math.IsNaN(v):
		return "n/a"
	case math.IsInf(v, 1):
		return "inf"
	case math.IsInf(v, -1):
		return "-inf"
	case v == 0:
		return "0"
	case math.Abs(v) >= 0.001 && math.Abs(v) < 100000:
		return trimZeros(fmt.Sprintf("%.5f", v))
	default:
		return fmt.Sprintf("%.3e", v)
	}
}

func trimZeros(s string) string {
	if !strings.Contains(s, ".") {
		return s
	}
	s = strings.TrimRight(s, "0")
	return strings.TrimSuffix(s, ".")
}
