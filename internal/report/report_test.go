package report

import (
	"math"
	"strings"
	"testing"
)

func TestNewTableValidation(t *testing.T) {
	t.Parallel()

	if _, err := NewTable("t"); err == nil {
		t.Error("table with no columns succeeded, want error")
	}
}

func TestTableRender(t *testing.T) {
	t.Parallel()

	tbl, err := NewTable("Demo", "name", "value")
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	if err := tbl.AddRow("alpha", "1"); err != nil {
		t.Fatalf("AddRow: %v", err)
	}
	if err := tbl.AddRow("b", "22.5"); err != nil {
		t.Fatalf("AddRow: %v", err)
	}
	if tbl.NumRows() != 2 {
		t.Errorf("NumRows = %d, want 2", tbl.NumRows())
	}
	var b strings.Builder
	if err := tbl.Render(&b); err != nil {
		t.Fatalf("Render: %v", err)
	}
	out := b.String()
	for _, want := range []string{"Demo", "name", "value", "alpha", "22.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	// Columns must align: "alpha" is the widest cell in column 0.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("rendered %d lines, want 5:\n%s", len(lines), out)
	}
	headerIdx := strings.Index(lines[1], "value")
	rowIdx := strings.Index(lines[3], "1")
	if headerIdx != rowIdx {
		t.Errorf("column misaligned: header value at %d, row value at %d\n%s", headerIdx, rowIdx, out)
	}
}

func TestTableAddRowMismatch(t *testing.T) {
	t.Parallel()

	tbl, err := NewTable("", "a", "b")
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	if err := tbl.AddRow("only one"); err == nil {
		t.Error("mismatched row succeeded, want error")
	}
}

func TestTableRenderMarkdown(t *testing.T) {
	t.Parallel()

	tbl, err := NewTable("MD", "x", "y")
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	if err := tbl.AddRow("1", "2"); err != nil {
		t.Fatalf("AddRow: %v", err)
	}
	var b strings.Builder
	if err := tbl.RenderMarkdown(&b); err != nil {
		t.Fatalf("RenderMarkdown: %v", err)
	}
	out := b.String()
	for _, want := range []string{"### MD", "| x | y |", "| --- | --- |", "| 1 | 2 |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestTableRenderCSV(t *testing.T) {
	t.Parallel()

	tbl, err := NewTable("ignored", "x", "y")
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	if err := tbl.AddRow("1", "with,comma"); err != nil {
		t.Fatalf("AddRow: %v", err)
	}
	var b strings.Builder
	if err := tbl.RenderCSV(&b); err != nil {
		t.Fatalf("RenderCSV: %v", err)
	}
	want := "x,y\n1,\"with,comma\"\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}

func TestFmt(t *testing.T) {
	t.Parallel()

	tests := []struct {
		v    float64
		want string
	}{
		{v: 0, want: "0"},
		{v: 1, want: "1"},
		{v: 0.5, want: "0.5"},
		{v: 0.123456, want: "0.12346"},
		{v: 1e-7, want: "1.000e-07"},
		{v: 1234567, want: "1.235e+06"},
		{v: math.NaN(), want: "n/a"},
		{v: math.Inf(1), want: "inf"},
		{v: math.Inf(-1), want: "-inf"},
	}
	for _, tt := range tests {
		if got := Fmt(tt.v); got != tt.want {
			t.Errorf("Fmt(%v) = %q, want %q", tt.v, got, tt.want)
		}
	}
}

func TestPlotSeries(t *testing.T) {
	t.Parallel()

	var b strings.Builder
	err := PlotSeries(&b, "curve", []Series{
		{Label: "up", Xs: []float64{0, 1, 2}, Ys: []float64{0, 1, 2}},
		{Label: "down", Xs: []float64{0, 1, 2}, Ys: []float64{2, 1, 0}},
	}, 40, 10)
	if err != nil {
		t.Fatalf("PlotSeries: %v", err)
	}
	out := b.String()
	if !strings.Contains(out, "curve") || !strings.Contains(out, "legend:") {
		t.Errorf("plot missing title or legend:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Errorf("plot missing series markers:\n%s", out)
	}
	// The increasing series puts a marker in the last row's left corner
	// area and first row's right area.
	lines := strings.Split(out, "\n")
	if len(lines) < 12 {
		t.Fatalf("plot too short:\n%s", out)
	}
}

func TestPlotSeriesValidation(t *testing.T) {
	t.Parallel()

	var b strings.Builder
	if err := PlotSeries(&b, "", nil, 40, 10); err == nil {
		t.Error("no series succeeded, want error")
	}
	if err := PlotSeries(&b, "", []Series{{Xs: []float64{1}, Ys: []float64{1, 2}}}, 40, 10); err == nil {
		t.Error("mismatched lengths succeeded, want error")
	}
	if err := PlotSeries(&b, "", []Series{{Xs: []float64{1}, Ys: []float64{1}}}, 4, 2); err == nil {
		t.Error("tiny plot succeeded, want error")
	}
	if err := PlotSeries(&b, "", []Series{{Xs: nil, Ys: nil}}, 40, 10); err == nil {
		t.Error("empty series succeeded, want error")
	}
	nan := math.NaN()
	if err := PlotSeries(&b, "", []Series{{Xs: []float64{nan}, Ys: []float64{nan}}}, 40, 10); err == nil {
		t.Error("all-NaN series succeeded, want error")
	}
}

func TestPlotSeriesConstantValue(t *testing.T) {
	t.Parallel()

	// A constant series must not divide by zero.
	var b strings.Builder
	err := PlotSeries(&b, "flat", []Series{
		{Xs: []float64{0, 1, 2}, Ys: []float64{5, 5, 5}},
	}, 30, 6)
	if err != nil {
		t.Fatalf("PlotSeries: %v", err)
	}
	if !strings.Contains(b.String(), "*") {
		t.Error("flat series not plotted")
	}
}

func TestPlotHistogram(t *testing.T) {
	t.Parallel()

	var b strings.Builder
	err := PlotHistogram(&b, "h", []string{"a", "bb"}, []int{3, 6}, 20)
	if err != nil {
		t.Fatalf("PlotHistogram: %v", err)
	}
	out := b.String()
	if !strings.Contains(out, "####################") {
		t.Errorf("max bin should span full width:\n%s", out)
	}
	if !strings.Contains(out, "##########") {
		t.Errorf("half bin should span half width:\n%s", out)
	}
	if err := PlotHistogram(&b, "", []string{"a"}, []int{1, 2}, 20); err == nil {
		t.Error("mismatched labels succeeded, want error")
	}
	if err := PlotHistogram(&b, "", nil, nil, 20); err == nil {
		t.Error("empty histogram succeeded, want error")
	}
	if err := PlotHistogram(&b, "", []string{"a"}, []int{-1}, 20); err == nil {
		t.Error("negative count succeeded, want error")
	}
	if err := PlotHistogram(&b, "", []string{"a"}, []int{1}, 2); err == nil {
		t.Error("tiny width succeeded, want error")
	}
}

func TestPlotGrid(t *testing.T) {
	t.Parallel()

	var b strings.Builder
	err := PlotGrid(&b, "regions", 20, 10, func(x, y float64) rune {
		if x < 0.5 && y < 0.5 {
			return '#'
		}
		return '.'
	})
	if err != nil {
		t.Fatalf("PlotGrid: %v", err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + top border + 10 rows + bottom border.
	if len(lines) != 13 {
		t.Fatalf("grid has %d lines, want 13:\n%s", len(lines), out)
	}
	// Bottom-left quadrant is '#': check a bottom row and a top row.
	if !strings.Contains(lines[11], "#") {
		t.Errorf("bottom rows missing region:\n%s", out)
	}
	if strings.Contains(lines[2], "#") {
		t.Errorf("top rows should be empty of region:\n%s", out)
	}
	if err := PlotGrid(&b, "", 20, 10, nil); err == nil {
		t.Error("nil cell function succeeded, want error")
	}
	if err := PlotGrid(&b, "", 1, 1, func(x, y float64) rune { return ' ' }); err == nil {
		t.Error("tiny grid succeeded, want error")
	}
}
