package demandspace

import (
	"math"
	"testing"

	"diversity/internal/randx"
)

func TestNewBoxValidation(t *testing.T) {
	t.Parallel()

	tests := []struct {
		name   string
		lo, hi Point
	}{
		{name: "mismatched dims", lo: Point{0}, hi: Point{1, 1}},
		{name: "empty", lo: Point{}, hi: Point{}},
		{name: "inverted", lo: Point{0.5}, hi: Point{0.2}},
		{name: "below zero", lo: Point{-0.1}, hi: Point{0.5}},
		{name: "above one", lo: Point{0.5}, hi: Point{1.5}},
		{name: "NaN", lo: Point{math.NaN()}, hi: Point{0.5}},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			if _, err := NewBox(tt.lo, tt.hi); err == nil {
				t.Errorf("NewBox(%v, %v) succeeded, want error", tt.lo, tt.hi)
			}
		})
	}
}

func TestBoxContainsAndVolume(t *testing.T) {
	t.Parallel()

	b, err := NewBox(Point{0.2, 0.3}, Point{0.5, 0.8})
	if err != nil {
		t.Fatalf("NewBox: %v", err)
	}
	if !b.Contains(Point{0.3, 0.5}) {
		t.Error("interior point not contained")
	}
	if !b.Contains(Point{0.2, 0.3}) || !b.Contains(Point{0.5, 0.8}) {
		t.Error("boundary points not contained")
	}
	if b.Contains(Point{0.1, 0.5}) || b.Contains(Point{0.3, 0.9}) {
		t.Error("exterior point contained")
	}
	if b.Contains(Point{0.3}) {
		t.Error("wrong-dimension point contained")
	}
	if got, want := b.Volume(), 0.3*0.5; math.Abs(got-want) > 1e-15 {
		t.Errorf("Volume = %v, want %v", got, want)
	}
	if b.Dim() != 2 {
		t.Errorf("Dim = %d, want 2", b.Dim())
	}
}

func TestBallContains(t *testing.T) {
	t.Parallel()

	ball, err := NewBall(Point{0.5, 0.5}, 0.2)
	if err != nil {
		t.Fatalf("NewBall: %v", err)
	}
	if !ball.Contains(Point{0.5, 0.5}) || !ball.Contains(Point{0.65, 0.5}) {
		t.Error("points inside ball not contained")
	}
	if ball.Contains(Point{0.5, 0.75}) {
		t.Error("point outside ball contained")
	}
	if ball.Contains(Point{0.5}) {
		t.Error("wrong-dimension point contained")
	}
	if _, err := NewBall(Point{1.5}, 0.1); err == nil {
		t.Error("centre outside hypercube succeeded, want error")
	}
	if _, err := NewBall(Point{0.5}, 0); err == nil {
		t.Error("zero radius succeeded, want error")
	}
	if _, err := NewBall(Point{}, 0.1); err == nil {
		t.Error("empty centre succeeded, want error")
	}
}

func TestUnionAndCellArray(t *testing.T) {
	t.Parallel()

	bounds, err := NewBox(Point{0, 0}, Point{1, 1})
	if err != nil {
		t.Fatalf("NewBox: %v", err)
	}
	cells, err := CellArray(bounds, 2, 2, 0.5)
	if err != nil {
		t.Fatalf("CellArray: %v", err)
	}
	if len(cells.Parts) != 4 {
		t.Fatalf("CellArray produced %d parts, want 4", len(cells.Parts))
	}
	// Cell (0,0) covers [0, 0.25] x [0, 0.25].
	if !cells.Contains(Point{0.1, 0.1}) {
		t.Error("point inside first cell not contained")
	}
	// The gap between cells is not covered.
	if cells.Contains(Point{0.3, 0.3}) {
		t.Error("gap point contained")
	}
	if cells.Dim() != 2 {
		t.Errorf("Dim = %d, want 2", cells.Dim())
	}
	if _, err := NewUnion(); err == nil {
		t.Error("empty union succeeded, want error")
	}
	oneD, err := NewBox(Point{0}, Point{1})
	if err != nil {
		t.Fatalf("NewBox: %v", err)
	}
	if _, err := NewUnion(bounds, oneD); err == nil {
		t.Error("mixed-dimension union succeeded, want error")
	}
	if _, err := CellArray(oneD, 2, 2, 0.5); err == nil {
		t.Error("1-D cell array succeeded, want error")
	}
	if _, err := CellArray(bounds, 0, 2, 0.5); err == nil {
		t.Error("zero rows succeeded, want error")
	}
	if _, err := CellArray(bounds, 2, 2, 1.5); err == nil {
		t.Error("cell fraction > 1 succeeded, want error")
	}
}

func TestMeasureRegionUniformMatchesVolume(t *testing.T) {
	t.Parallel()

	profile, err := NewUniformProfile(2)
	if err != nil {
		t.Fatalf("NewUniformProfile: %v", err)
	}
	box, err := NewBox(Point{0.1, 0.2}, Point{0.4, 0.9})
	if err != nil {
		t.Fatalf("NewBox: %v", err)
	}
	r := randx.NewStream(3)
	got, se, err := MeasureRegion(r, profile, box, 200000)
	if err != nil {
		t.Fatalf("MeasureRegion: %v", err)
	}
	want := box.Volume()
	if math.Abs(got-want) > 5*se+1e-9 {
		t.Errorf("measure = %v ± %v, want %v", got, se, want)
	}
}

func TestMeasureRegionBallArea(t *testing.T) {
	t.Parallel()

	profile, err := NewUniformProfile(2)
	if err != nil {
		t.Fatalf("NewUniformProfile: %v", err)
	}
	ball, err := NewBall(Point{0.5, 0.5}, 0.25)
	if err != nil {
		t.Fatalf("NewBall: %v", err)
	}
	r := randx.NewStream(5)
	got, se, err := MeasureRegion(r, profile, ball, 200000)
	if err != nil {
		t.Fatalf("MeasureRegion: %v", err)
	}
	want := math.Pi * 0.25 * 0.25
	if math.Abs(got-want) > 5*se+1e-9 {
		t.Errorf("ball measure = %v ± %v, want %v", got, se, want)
	}
}

func TestMeasureRegionValidation(t *testing.T) {
	t.Parallel()

	profile, err := NewUniformProfile(2)
	if err != nil {
		t.Fatalf("NewUniformProfile: %v", err)
	}
	box, err := NewBox(Point{0.1}, Point{0.4})
	if err != nil {
		t.Fatalf("NewBox: %v", err)
	}
	r := randx.NewStream(1)
	if _, _, err := MeasureRegion(r, profile, box, 100); err == nil {
		t.Error("dimension mismatch succeeded, want error")
	}
	box2, err := NewBox(Point{0.1, 0.1}, Point{0.4, 0.4})
	if err != nil {
		t.Fatalf("NewBox: %v", err)
	}
	if _, _, err := MeasureRegion(r, profile, box2, 0); err == nil {
		t.Error("zero samples succeeded, want error")
	}
	if _, _, err := MeasureRegion(r, nil, box2, 10); err == nil {
		t.Error("nil profile succeeded, want error")
	}
}

func TestPeakedProfileConcentratesMass(t *testing.T) {
	t.Parallel()

	profile, err := NewPeakedProfile(2, []PeakComponent{
		{Weight: 1, Center: Point{0.2, 0.2}, Spread: 0.05},
	})
	if err != nil {
		t.Fatalf("NewPeakedProfile: %v", err)
	}
	nearMode, err := NewBox(Point{0.05, 0.05}, Point{0.35, 0.35})
	if err != nil {
		t.Fatalf("NewBox: %v", err)
	}
	r := randx.NewStream(7)
	got, _, err := MeasureRegion(r, profile, nearMode, 50000)
	if err != nil {
		t.Fatalf("MeasureRegion: %v", err)
	}
	// ±3 sigma around the mode: nearly all mass, far above the box's
	// uniform measure of 0.09.
	if got < 0.95 {
		t.Errorf("mass near mode = %v, want > 0.95", got)
	}
}

func TestPeakedProfileValidation(t *testing.T) {
	t.Parallel()

	if _, err := NewPeakedProfile(0, nil); err == nil {
		t.Error("zero dimension succeeded, want error")
	}
	if _, err := NewPeakedProfile(2, nil); err == nil {
		t.Error("no components succeeded, want error")
	}
	if _, err := NewPeakedProfile(2, []PeakComponent{{Weight: 1, Center: Point{0.5}, Spread: 0.1}}); err == nil {
		t.Error("mismatched centre succeeded, want error")
	}
	if _, err := NewPeakedProfile(1, []PeakComponent{{Weight: 1, Center: Point{0.5}, Spread: 0}}); err == nil {
		t.Error("zero spread succeeded, want error")
	}
	if _, err := NewPeakedProfile(1, []PeakComponent{{Weight: 0, Center: Point{0.5}, Spread: 0.1}}); err == nil {
		t.Error("zero total weight succeeded, want error")
	}
}

func TestSimulatePairDisjointRegions(t *testing.T) {
	t.Parallel()

	// Version A fails on [0, 0.1] x [0, 1], version B on [0.05, 0.15] x
	// [0, 1]: intersection is [0.05, 0.1] with measure 0.05.
	profile, err := NewUniformProfile(2)
	if err != nil {
		t.Fatalf("NewUniformProfile: %v", err)
	}
	boxA, err := NewBox(Point{0, 0}, Point{0.1, 1})
	if err != nil {
		t.Fatalf("NewBox: %v", err)
	}
	boxB, err := NewBox(Point{0.05, 0}, Point{0.15, 1})
	if err != nil {
		t.Fatalf("NewBox: %v", err)
	}
	a, err := NewGeomVersion(2, boxA)
	if err != nil {
		t.Fatalf("NewGeomVersion: %v", err)
	}
	b, err := NewGeomVersion(2, boxB)
	if err != nil {
		t.Fatalf("NewGeomVersion: %v", err)
	}
	r := randx.NewStream(11)
	res, err := SimulatePair(r, profile, a, b, 300000)
	if err != nil {
		t.Fatalf("SimulatePair: %v", err)
	}
	if math.Abs(res.PFDA()-0.1) > 0.005 {
		t.Errorf("PFD(A) = %v, want ~0.1", res.PFDA())
	}
	if math.Abs(res.PFDB()-0.1) > 0.005 {
		t.Errorf("PFD(B) = %v, want ~0.1", res.PFDB())
	}
	if math.Abs(res.SystemPFD()-0.05) > 0.005 {
		t.Errorf("system PFD = %v, want ~0.05 (intersection measure)", res.SystemPFD())
	}
}

func TestSimulatePairFaultFreeVersionNeverFails(t *testing.T) {
	t.Parallel()

	profile, err := NewUniformProfile(2)
	if err != nil {
		t.Fatalf("NewUniformProfile: %v", err)
	}
	box, err := NewBox(Point{0, 0}, Point{0.5, 0.5})
	if err != nil {
		t.Fatalf("NewBox: %v", err)
	}
	faulty, err := NewGeomVersion(2, box)
	if err != nil {
		t.Fatalf("NewGeomVersion: %v", err)
	}
	clean, err := NewGeomVersion(2)
	if err != nil {
		t.Fatalf("NewGeomVersion: %v", err)
	}
	if clean.NumRegions() != 0 {
		t.Fatalf("clean version has %d regions", clean.NumRegions())
	}
	r := randx.NewStream(13)
	res, err := SimulatePair(r, profile, faulty, clean, 10000)
	if err != nil {
		t.Fatalf("SimulatePair: %v", err)
	}
	if res.FailuresB != 0 || res.SystemFailures != 0 {
		t.Errorf("fault-free version failed: B=%d system=%d", res.FailuresB, res.SystemFailures)
	}
}

func TestSimulatePairValidation(t *testing.T) {
	t.Parallel()

	profile, err := NewUniformProfile(2)
	if err != nil {
		t.Fatalf("NewUniformProfile: %v", err)
	}
	v2, err := NewGeomVersion(2)
	if err != nil {
		t.Fatalf("NewGeomVersion: %v", err)
	}
	v3, err := NewGeomVersion(3)
	if err != nil {
		t.Fatalf("NewGeomVersion: %v", err)
	}
	r := randx.NewStream(1)
	if _, err := SimulatePair(r, profile, v2, v3, 10); err == nil {
		t.Error("dimension mismatch succeeded, want error")
	}
	if _, err := SimulatePair(r, profile, v2, v2, 0); err == nil {
		t.Error("zero demands succeeded, want error")
	}
	if _, err := SimulatePair(r, nil, v2, v2, 10); err == nil {
		t.Error("nil profile succeeded, want error")
	}
	if _, err := NewGeomVersion(0); err == nil {
		t.Error("zero-dimension version succeeded, want error")
	}
	oneD, err := NewBox(Point{0}, Point{1})
	if err != nil {
		t.Fatalf("NewBox: %v", err)
	}
	if _, err := NewGeomVersion(2, oneD); err == nil {
		t.Error("region dimension mismatch succeeded, want error")
	}
}

func TestMeasureOverlapPessimism(t *testing.T) {
	t.Parallel()

	profile, err := NewUniformProfile(2)
	if err != nil {
		t.Fatalf("NewUniformProfile: %v", err)
	}
	// Two boxes overlapping on half their area.
	boxA, err := NewBox(Point{0.0, 0.0}, Point{0.2, 0.5})
	if err != nil {
		t.Fatalf("NewBox: %v", err)
	}
	boxB, err := NewBox(Point{0.1, 0.0}, Point{0.3, 0.5})
	if err != nil {
		t.Fatalf("NewBox: %v", err)
	}
	r := randx.NewStream(17)
	rep, err := MeasureOverlap(r, profile, []Region{boxA, boxB}, 200000)
	if err != nil {
		t.Fatalf("MeasureOverlap: %v", err)
	}
	// Sum = 0.1+0.1 = 0.2; union = 0.15; pessimism = 0.05.
	if math.Abs(rep.SumOfMeasures-0.2) > 0.01 {
		t.Errorf("sum of measures = %v, want ~0.2", rep.SumOfMeasures)
	}
	if math.Abs(rep.UnionMeasure-0.15) > 0.01 {
		t.Errorf("union measure = %v, want ~0.15", rep.UnionMeasure)
	}
	if math.Abs(rep.Pessimism-0.05) > 0.01 {
		t.Errorf("pessimism = %v, want ~0.05", rep.Pessimism)
	}
	if _, err := MeasureOverlap(r, profile, nil, 100); err == nil {
		t.Error("no regions succeeded, want error")
	}
}

func TestMeasureOverlapDisjointHasNoPessimism(t *testing.T) {
	t.Parallel()

	profile, err := NewUniformProfile(2)
	if err != nil {
		t.Fatalf("NewUniformProfile: %v", err)
	}
	boxA, err := NewBox(Point{0.0, 0.0}, Point{0.2, 0.5})
	if err != nil {
		t.Fatalf("NewBox: %v", err)
	}
	boxB, err := NewBox(Point{0.5, 0.5}, Point{0.7, 1})
	if err != nil {
		t.Fatalf("NewBox: %v", err)
	}
	r := randx.NewStream(19)
	rep, err := MeasureOverlap(r, profile, []Region{boxA, boxB}, 200000)
	if err != nil {
		t.Fatalf("MeasureOverlap: %v", err)
	}
	if math.Abs(rep.Pessimism) > 0.01 {
		t.Errorf("pessimism for disjoint regions = %v, want ~0", rep.Pessimism)
	}
}
