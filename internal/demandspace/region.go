// Package demandspace simulates the paper's demand space (Section 2.1 and
// Fig. 2): the set of all possible demands on the protection system, with
// failure regions as subsets of it.
//
// A demand is a point in the unit hypercube [0,1]^d (each coordinate a
// normalised plant state variable). Failure regions take the shapes
// reported for real programs — axis-aligned boxes, balls, thin slabs and
// disconnected unions such as arrays of small cells. A demand profile
// defines the probability distribution of demands; region probabilities
// (the model's q_i) are the profile measure of each region, estimated by
// Monte-Carlo integration.
//
// The package exists to validate the coarser fault-level model against a
// geometric ground truth: experiment E11 confirms that simulated PFDs
// equal the summed region measures when regions are disjoint, and
// experiment E14 quantifies the pessimism of the disjointness assumption
// when they are allowed to overlap (paper Section 6.2).
package demandspace

import (
	"errors"
	"fmt"
	"math"
)

// Point is a demand: one point in the unit hypercube.
type Point []float64

// Region is a measurable subset of the demand space.
type Region interface {
	// Contains reports whether the demand lies in the region.
	Contains(p Point) bool
	// Dim returns the dimensionality the region is defined for.
	Dim() int
}

// Box is an axis-aligned hyper-rectangle [Lo_i, Hi_i] in every coordinate.
type Box struct {
	Lo, Hi Point
}

var _ Region = Box{}

// NewBox returns a Box, validating that lo and hi have equal lengths, at
// least one dimension, and lo <= hi coordinate-wise within [0, 1].
func NewBox(lo, hi Point) (Box, error) {
	if len(lo) != len(hi) {
		return Box{}, fmt.Errorf("demandspace: box corner dimensions differ: %d vs %d", len(lo), len(hi))
	}
	if len(lo) == 0 {
		return Box{}, errors.New("demandspace: box requires at least one dimension")
	}
	for i := range lo {
		if math.IsNaN(lo[i]) || math.IsNaN(hi[i]) || lo[i] < 0 || hi[i] > 1 || lo[i] > hi[i] {
			return Box{}, fmt.Errorf("demandspace: invalid box extent [%v, %v] in dimension %d", lo[i], hi[i], i)
		}
	}
	return Box{Lo: lo, Hi: hi}, nil
}

// Contains implements Region.
func (b Box) Contains(p Point) bool {
	if len(p) != len(b.Lo) {
		return false
	}
	for i := range p {
		if p[i] < b.Lo[i] || p[i] > b.Hi[i] {
			return false
		}
	}
	return true
}

// Dim implements Region.
func (b Box) Dim() int { return len(b.Lo) }

// Volume returns the Lebesgue volume of the box — its probability under a
// uniform profile.
func (b Box) Volume() float64 {
	v := 1.0
	for i := range b.Lo {
		v *= b.Hi[i] - b.Lo[i]
	}
	return v
}

// Ball is a Euclidean ball with the given centre and radius.
type Ball struct {
	Center Point
	Radius float64
}

var _ Region = Ball{}

// NewBall returns a Ball, validating the centre lies in the hypercube and
// the radius is positive.
func NewBall(center Point, radius float64) (Ball, error) {
	if len(center) == 0 {
		return Ball{}, errors.New("demandspace: ball requires at least one dimension")
	}
	for i, c := range center {
		if math.IsNaN(c) || c < 0 || c > 1 {
			return Ball{}, fmt.Errorf("demandspace: ball centre coordinate %d = %v outside [0, 1]", i, c)
		}
	}
	if math.IsNaN(radius) || radius <= 0 {
		return Ball{}, fmt.Errorf("demandspace: ball radius %v must be positive", radius)
	}
	return Ball{Center: center, Radius: radius}, nil
}

// Contains implements Region.
func (b Ball) Contains(p Point) bool {
	if len(p) != len(b.Center) {
		return false
	}
	sum := 0.0
	for i := range p {
		d := p[i] - b.Center[i]
		sum += d * d
	}
	return sum <= b.Radius*b.Radius
}

// Dim implements Region.
func (b Ball) Dim() int { return len(b.Center) }

// Union is a composite region: the union of its parts. It models the
// non-connected failure regions reported in the literature the paper
// cites (arrays of separate points or lines, Fig. 2 caption).
type Union struct {
	Parts []Region
}

var _ Region = Union{}

// NewUnion returns the union of parts, validating that there is at least
// one part and all parts share a dimension.
func NewUnion(parts ...Region) (Union, error) {
	if len(parts) == 0 {
		return Union{}, errors.New("demandspace: union requires at least one part")
	}
	d := parts[0].Dim()
	for i, part := range parts[1:] {
		if part.Dim() != d {
			return Union{}, fmt.Errorf("demandspace: union part %d has dimension %d, want %d", i+1, part.Dim(), d)
		}
	}
	return Union{Parts: parts}, nil
}

// Contains implements Region.
func (u Union) Contains(p Point) bool {
	for _, part := range u.Parts {
		if part.Contains(p) {
			return true
		}
	}
	return false
}

// Dim implements Region.
func (u Union) Dim() int {
	if len(u.Parts) == 0 {
		return 0
	}
	return u.Parts[0].Dim()
}

// CellArray builds the Fig. 2 style disconnected region: a rows x cols
// array of small boxes spread over a bounding box in the first two
// dimensions of a 2-D space. cellFrac in (0, 1] is the fraction of each
// grid pitch covered by a cell.
func CellArray(bounds Box, rows, cols int, cellFrac float64) (Union, error) {
	if bounds.Dim() != 2 {
		return Union{}, fmt.Errorf("demandspace: cell array requires a 2-D bounding box, got %d-D", bounds.Dim())
	}
	if rows < 1 || cols < 1 {
		return Union{}, fmt.Errorf("demandspace: cell array needs positive rows and cols, got %dx%d", rows, cols)
	}
	if math.IsNaN(cellFrac) || cellFrac <= 0 || cellFrac > 1 {
		return Union{}, fmt.Errorf("demandspace: cell fraction %v must be in (0, 1]", cellFrac)
	}
	pitchX := (bounds.Hi[0] - bounds.Lo[0]) / float64(cols)
	pitchY := (bounds.Hi[1] - bounds.Lo[1]) / float64(rows)
	parts := make([]Region, 0, rows*cols)
	for row := 0; row < rows; row++ {
		for col := 0; col < cols; col++ {
			lo := Point{
				bounds.Lo[0] + float64(col)*pitchX,
				bounds.Lo[1] + float64(row)*pitchY,
			}
			hi := Point{
				lo[0] + pitchX*cellFrac,
				lo[1] + pitchY*cellFrac,
			}
			cell, err := NewBox(lo, hi)
			if err != nil {
				return Union{}, fmt.Errorf("demandspace: cell (%d, %d): %w", row, col, err)
			}
			parts = append(parts, cell)
		}
	}
	return NewUnion(parts...)
}
