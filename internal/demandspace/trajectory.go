package demandspace

import (
	"errors"
	"fmt"
	"math"

	"diversity/internal/randx"
)

// The paper's footnote 2 is explicit that a demand is not necessarily a
// single reading: "a 'demand', as defined here, may be a sequence of
// multiple samples of many input variables". This file models such
// trajectory demands: a demand is a fixed-length sequence of points, and a
// failure region is a predicate over the whole sequence.

// Trajectory is one demand consisting of a sequence of sampled points.
type Trajectory []Point

// TrajectoryRegion is a failure region in trajectory space: a predicate
// over whole demand sequences.
type TrajectoryRegion interface {
	// ContainsTrajectory reports whether the demand sequence falls in
	// the region.
	ContainsTrajectory(tr Trajectory) bool
}

// AnyVisit is the trajectory region that triggers when ANY sample of the
// demand enters the underlying point region — the typical shape of a
// protection-system fault ("fails if the trajectory ever passes through
// the bad zone").
type AnyVisit struct {
	Region Region
}

var _ TrajectoryRegion = AnyVisit{}

// ContainsTrajectory implements TrajectoryRegion.
func (a AnyVisit) ContainsTrajectory(tr Trajectory) bool {
	for _, p := range tr {
		if a.Region.Contains(p) {
			return true
		}
	}
	return false
}

// AllVisits is the trajectory region that triggers only when EVERY sample
// lies in the underlying point region — faults that require a sustained
// condition.
type AllVisits struct {
	Region Region
}

var _ TrajectoryRegion = AllVisits{}

// ContainsTrajectory implements TrajectoryRegion.
func (a AllVisits) ContainsTrajectory(tr Trajectory) bool {
	if len(tr) == 0 {
		return false
	}
	for _, p := range tr {
		if !a.Region.Contains(p) {
			return false
		}
	}
	return true
}

// TrajectoryProfile generates trajectory demands: Length i.i.d. samples
// from the underlying point profile. (Correlated-in-time trajectories can
// be modelled by wrapping a stateful Profile.)
type TrajectoryProfile struct {
	// Base is the per-sample distribution.
	Base Profile
	// Length is the number of samples per demand; must be positive.
	Length int
}

// NewTrajectoryProfile returns a trajectory profile.
func NewTrajectoryProfile(base Profile, length int) (TrajectoryProfile, error) {
	if base == nil {
		return TrajectoryProfile{}, errors.New("demandspace: base profile must not be nil")
	}
	if length < 1 {
		return TrajectoryProfile{}, fmt.Errorf("demandspace: trajectory length %d must be positive", length)
	}
	return TrajectoryProfile{Base: base, Length: length}, nil
}

// Sample fills tr (of length Length, points of dimension Base.Dim) with
// one demand.
func (tp TrajectoryProfile) Sample(r *randx.Stream, tr Trajectory) {
	for i := range tr {
		tp.Base.Sample(r, tr[i])
	}
}

// NewTrajectory allocates a demand buffer for the profile.
func (tp TrajectoryProfile) NewTrajectory() Trajectory {
	tr := make(Trajectory, tp.Length)
	for i := range tr {
		tr[i] = make(Point, tp.Base.Dim())
	}
	return tr
}

// MeasureTrajectoryRegion estimates the probability that a trajectory
// demand falls in the region — the q_i of a trajectory-space fault — with
// the given number of sample demands.
func MeasureTrajectoryRegion(r *randx.Stream, profile TrajectoryProfile, region TrajectoryRegion, samples int) (estimate, stdErr float64, err error) {
	if region == nil {
		return 0, 0, errors.New("demandspace: region must not be nil")
	}
	if profile.Base == nil {
		return 0, 0, errors.New("demandspace: profile base must not be nil")
	}
	if samples < 1 {
		return 0, 0, fmt.Errorf("demandspace: sample count %d must be positive", samples)
	}
	tr := profile.NewTrajectory()
	hits := 0
	for i := 0; i < samples; i++ {
		profile.Sample(r, tr)
		if region.ContainsTrajectory(tr) {
			hits++
		}
	}
	p := float64(hits) / float64(samples)
	return p, math.Sqrt(p * (1 - p) / float64(samples)), nil
}
