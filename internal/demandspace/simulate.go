package demandspace

import (
	"errors"
	"fmt"

	"diversity/internal/randx"
)

// GeomVersion is a program version at geometric granularity: the union of
// the failure regions of the faults it contains. A version fails on a
// demand exactly when the demand lies in one of its regions.
type GeomVersion struct {
	regions []Region
	d       int
}

// NewGeomVersion builds a version from failure regions; a version with no
// regions (fault-free) is valid and never fails. d is the demand-space
// dimension, needed because an empty version has no regions to infer it
// from.
func NewGeomVersion(d int, regions ...Region) (*GeomVersion, error) {
	if d < 1 {
		return nil, fmt.Errorf("demandspace: version dimension %d must be positive", d)
	}
	for i, region := range regions {
		if region.Dim() != d {
			return nil, fmt.Errorf("demandspace: region %d has dimension %d, want %d", i, region.Dim(), d)
		}
	}
	v := &GeomVersion{regions: make([]Region, len(regions)), d: d}
	copy(v.regions, regions)
	return v, nil
}

// FailsOn reports whether the version fails on the demand.
func (v *GeomVersion) FailsOn(p Point) bool {
	for _, region := range v.regions {
		if region.Contains(p) {
			return true
		}
	}
	return false
}

// NumRegions returns the number of failure regions in the version.
func (v *GeomVersion) NumRegions() int { return len(v.regions) }

// Dim returns the demand-space dimension.
func (v *GeomVersion) Dim() int { return v.d }

// SimResult holds demand-by-demand failure statistics for a pair of
// versions operated as a 1-out-of-2 system.
type SimResult struct {
	// Demands is the number of simulated demands.
	Demands int
	// FailuresA and FailuresB count individual version failures.
	FailuresA, FailuresB int
	// SystemFailures counts demands on which both versions failed — the
	// 1oo2 system failures.
	SystemFailures int
}

// PFDA returns the empirical PFD of version A.
func (s SimResult) PFDA() float64 { return float64(s.FailuresA) / float64(s.Demands) }

// PFDB returns the empirical PFD of version B.
func (s SimResult) PFDB() float64 { return float64(s.FailuresB) / float64(s.Demands) }

// SystemPFD returns the empirical PFD of the 1oo2 system.
func (s SimResult) SystemPFD() float64 { return float64(s.SystemFailures) / float64(s.Demands) }

// SimulatePair subjects two versions to the given number of independent
// demands from the profile and records failure statistics. This is the
// geometric ground truth the fault-level model abstracts: the system
// fails exactly on the intersection of the versions' failure regions.
func SimulatePair(r *randx.Stream, profile Profile, a, b *GeomVersion, demands int) (SimResult, error) {
	if profile == nil || a == nil || b == nil {
		return SimResult{}, errors.New("demandspace: profile and versions must not be nil")
	}
	if demands < 1 {
		return SimResult{}, fmt.Errorf("demandspace: demand count %d must be positive", demands)
	}
	if profile.Dim() != a.Dim() || profile.Dim() != b.Dim() {
		return SimResult{}, fmt.Errorf("demandspace: dimension mismatch: profile %d, versions %d and %d", profile.Dim(), a.Dim(), b.Dim())
	}
	res := SimResult{Demands: demands}
	point := make(Point, profile.Dim())
	for i := 0; i < demands; i++ {
		profile.Sample(r, point)
		fa := a.FailsOn(point)
		fb := b.FailsOn(point)
		if fa {
			res.FailuresA++
		}
		if fb {
			res.FailuresB++
		}
		if fa && fb {
			res.SystemFailures++
		}
	}
	return res, nil
}

// OverlapReport compares the disjoint-region model's PFD (the sum of
// region measures) with the true PFD (the measure of the union) for one
// version's regions — the paper's Section 6.2 pessimism analysis.
type OverlapReport struct {
	// SumOfMeasures is Σ q_i, what the fault-level model charges.
	SumOfMeasures float64
	// UnionMeasure is the true failure probability.
	UnionMeasure float64
	// Pessimism is SumOfMeasures - UnionMeasure >= 0 (up to Monte-Carlo
	// noise): the model's overstatement of the PFD.
	Pessimism float64
}

// MeasureOverlap estimates both measures with the given number of sample
// demands per region.
func MeasureOverlap(r *randx.Stream, profile Profile, regions []Region, samples int) (OverlapReport, error) {
	if len(regions) == 0 {
		return OverlapReport{}, errors.New("demandspace: at least one region is required")
	}
	var rep OverlapReport
	for i, region := range regions {
		q, _, err := MeasureRegion(r, profile, region, samples)
		if err != nil {
			return OverlapReport{}, fmt.Errorf("demandspace: measuring region %d: %w", i, err)
		}
		rep.SumOfMeasures += q
	}
	union, err := NewUnion(regions...)
	if err != nil {
		return OverlapReport{}, err
	}
	u, _, err := MeasureRegion(r, profile, union, samples)
	if err != nil {
		return OverlapReport{}, fmt.Errorf("demandspace: measuring union: %w", err)
	}
	rep.UnionMeasure = u
	rep.Pessimism = rep.SumOfMeasures - rep.UnionMeasure
	return rep, nil
}
