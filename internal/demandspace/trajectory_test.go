package demandspace

import (
	"math"
	"testing"

	"diversity/internal/randx"
)

func TestAnyVisitAndAllVisits(t *testing.T) {
	t.Parallel()

	box, err := NewBox(Point{0, 0}, Point{0.5, 0.5})
	if err != nil {
		t.Fatalf("NewBox: %v", err)
	}
	inside := Point{0.25, 0.25}
	outside := Point{0.75, 0.75}

	anyV := AnyVisit{Region: box}
	allV := AllVisits{Region: box}

	tests := []struct {
		name    string
		tr      Trajectory
		wantAny bool
		wantAll bool
	}{
		{name: "all inside", tr: Trajectory{inside, inside}, wantAny: true, wantAll: true},
		{name: "mixed", tr: Trajectory{inside, outside}, wantAny: true, wantAll: false},
		{name: "all outside", tr: Trajectory{outside, outside}, wantAny: false, wantAll: false},
		{name: "empty", tr: Trajectory{}, wantAny: false, wantAll: false},
	}
	for _, tt := range tests {
		if got := anyV.ContainsTrajectory(tt.tr); got != tt.wantAny {
			t.Errorf("%s: AnyVisit = %v, want %v", tt.name, got, tt.wantAny)
		}
		if got := allV.ContainsTrajectory(tt.tr); got != tt.wantAll {
			t.Errorf("%s: AllVisits = %v, want %v", tt.name, got, tt.wantAll)
		}
	}
}

func TestNewTrajectoryProfileValidation(t *testing.T) {
	t.Parallel()

	base, err := NewUniformProfile(2)
	if err != nil {
		t.Fatalf("NewUniformProfile: %v", err)
	}
	if _, err := NewTrajectoryProfile(nil, 3); err == nil {
		t.Error("nil base succeeded, want error")
	}
	if _, err := NewTrajectoryProfile(base, 0); err == nil {
		t.Error("zero length succeeded, want error")
	}
	tp, err := NewTrajectoryProfile(base, 4)
	if err != nil {
		t.Fatalf("NewTrajectoryProfile: %v", err)
	}
	tr := tp.NewTrajectory()
	if len(tr) != 4 || len(tr[0]) != 2 {
		t.Errorf("NewTrajectory shape %dx%d, want 4x2", len(tr), len(tr[0]))
	}
}

// TestMeasureAnyVisitClosedForm pins the i.i.d. closed form: a trajectory
// of k samples visits a region of measure v with probability 1-(1-v)^k.
func TestMeasureAnyVisitClosedForm(t *testing.T) {
	t.Parallel()

	base, err := NewUniformProfile(2)
	if err != nil {
		t.Fatalf("NewUniformProfile: %v", err)
	}
	box, err := NewBox(Point{0, 0}, Point{0.2, 0.5}) // measure 0.1
	if err != nil {
		t.Fatalf("NewBox: %v", err)
	}
	for _, k := range []int{1, 3, 10} {
		tp, err := NewTrajectoryProfile(base, k)
		if err != nil {
			t.Fatalf("NewTrajectoryProfile: %v", err)
		}
		r := randx.NewStream(uint64(100 + k))
		got, se, err := MeasureTrajectoryRegion(r, tp, AnyVisit{Region: box}, 200000)
		if err != nil {
			t.Fatalf("MeasureTrajectoryRegion: %v", err)
		}
		want := 1 - math.Pow(0.9, float64(k))
		if math.Abs(got-want) > 5*se+1e-9 {
			t.Errorf("k=%d: any-visit measure %v ± %v, want %v", k, got, se, want)
		}
	}
}

// TestMeasureAllVisitsClosedForm: all k samples inside has probability v^k.
func TestMeasureAllVisitsClosedForm(t *testing.T) {
	t.Parallel()

	base, err := NewUniformProfile(2)
	if err != nil {
		t.Fatalf("NewUniformProfile: %v", err)
	}
	box, err := NewBox(Point{0, 0}, Point{0.5, 0.8}) // measure 0.4
	if err != nil {
		t.Fatalf("NewBox: %v", err)
	}
	tp, err := NewTrajectoryProfile(base, 3)
	if err != nil {
		t.Fatalf("NewTrajectoryProfile: %v", err)
	}
	r := randx.NewStream(7)
	got, se, err := MeasureTrajectoryRegion(r, tp, AllVisits{Region: box}, 200000)
	if err != nil {
		t.Fatalf("MeasureTrajectoryRegion: %v", err)
	}
	want := math.Pow(0.4, 3)
	if math.Abs(got-want) > 5*se+1e-9 {
		t.Errorf("all-visits measure %v ± %v, want %v", got, se, want)
	}
}

// TestTrajectoryLengthGrowsAnyVisitMeasure: the paper's footnote matters —
// the same geometric fault has a bigger q when demands are longer
// sequences, so "input-space" and "demand-space" measures genuinely
// differ.
func TestTrajectoryLengthGrowsAnyVisitMeasure(t *testing.T) {
	t.Parallel()

	base, err := NewUniformProfile(2)
	if err != nil {
		t.Fatalf("NewUniformProfile: %v", err)
	}
	box, err := NewBox(Point{0.4, 0.4}, Point{0.6, 0.6})
	if err != nil {
		t.Fatalf("NewBox: %v", err)
	}
	prev := -1.0
	for _, k := range []int{1, 2, 5, 20} {
		tp, err := NewTrajectoryProfile(base, k)
		if err != nil {
			t.Fatalf("NewTrajectoryProfile: %v", err)
		}
		r := randx.NewStream(uint64(k))
		got, _, err := MeasureTrajectoryRegion(r, tp, AnyVisit{Region: box}, 100000)
		if err != nil {
			t.Fatalf("MeasureTrajectoryRegion: %v", err)
		}
		if got <= prev {
			t.Errorf("any-visit measure not increasing with length: %v after %v at k=%d", got, prev, k)
		}
		prev = got
	}
}

func TestMeasureTrajectoryRegionValidation(t *testing.T) {
	t.Parallel()

	base, err := NewUniformProfile(2)
	if err != nil {
		t.Fatalf("NewUniformProfile: %v", err)
	}
	tp, err := NewTrajectoryProfile(base, 2)
	if err != nil {
		t.Fatalf("NewTrajectoryProfile: %v", err)
	}
	r := randx.NewStream(1)
	if _, _, err := MeasureTrajectoryRegion(r, tp, nil, 100); err == nil {
		t.Error("nil region succeeded, want error")
	}
	box, err := NewBox(Point{0, 0}, Point{1, 1})
	if err != nil {
		t.Fatalf("NewBox: %v", err)
	}
	if _, _, err := MeasureTrajectoryRegion(r, TrajectoryProfile{}, AnyVisit{Region: box}, 100); err == nil {
		t.Error("zero profile succeeded, want error")
	}
	if _, _, err := MeasureTrajectoryRegion(r, tp, AnyVisit{Region: box}, 0); err == nil {
		t.Error("zero samples succeeded, want error")
	}
}
