package demandspace

import (
	"errors"
	"fmt"
	"math"

	"diversity/internal/randx"
)

// Profile is a probability distribution of demands over the unit
// hypercube. Each demand on the protection system is an independent draw
// from the profile (the paper's "probability of each demand happening
// during operation").
type Profile interface {
	// Sample fills out (of length Dim) with one demand.
	Sample(r *randx.Stream, out Point)
	// Dim returns the demand-space dimensionality.
	Dim() int
}

// UniformProfile draws demands uniformly over the hypercube.
type UniformProfile struct {
	// D is the dimensionality; must be positive.
	D int
}

var _ Profile = UniformProfile{}

// NewUniformProfile returns a uniform profile of dimension d.
func NewUniformProfile(d int) (UniformProfile, error) {
	if d < 1 {
		return UniformProfile{}, fmt.Errorf("demandspace: profile dimension %d must be positive", d)
	}
	return UniformProfile{D: d}, nil
}

// Sample implements Profile.
func (u UniformProfile) Sample(r *randx.Stream, out Point) {
	for i := range out {
		out[i] = r.Float64()
	}
}

// Dim implements Profile.
func (u UniformProfile) Dim() int { return u.D }

// PeakComponent is one mode of a PeakedProfile.
type PeakComponent struct {
	// Weight is the component's mixture weight (need not be normalised).
	Weight float64
	// Center is the mode location in the hypercube.
	Center Point
	// Spread is the per-coordinate standard deviation of the truncated
	// Gaussian around the centre.
	Spread float64
}

// PeakedProfile is a mixture of truncated Gaussians: plant operation
// concentrates demands around typical states, so failure regions in
// rarely visited corners have small q_i even when geometrically large.
type PeakedProfile struct {
	d          int
	components []PeakComponent
	picker     *randx.Categorical
}

var _ Profile = (*PeakedProfile)(nil)

// NewPeakedProfile builds a mixture profile of dimension d.
func NewPeakedProfile(d int, components []PeakComponent) (*PeakedProfile, error) {
	if d < 1 {
		return nil, fmt.Errorf("demandspace: profile dimension %d must be positive", d)
	}
	if len(components) == 0 {
		return nil, errors.New("demandspace: peaked profile requires at least one component")
	}
	weights := make([]float64, len(components))
	for i, c := range components {
		if len(c.Center) != d {
			return nil, fmt.Errorf("demandspace: component %d centre has dimension %d, want %d", i, len(c.Center), d)
		}
		if math.IsNaN(c.Spread) || c.Spread <= 0 {
			return nil, fmt.Errorf("demandspace: component %d spread %v must be positive", i, c.Spread)
		}
		weights[i] = c.Weight
	}
	picker, err := randx.NewCategorical(weights)
	if err != nil {
		return nil, fmt.Errorf("demandspace: component weights: %w", err)
	}
	return &PeakedProfile{d: d, components: components, picker: picker}, nil
}

// Sample implements Profile: it picks a component and draws a truncated
// (by rejection) Gaussian around its centre.
func (p *PeakedProfile) Sample(r *randx.Stream, out Point) {
	c := p.components[p.picker.Draw(r)]
	for i := range out {
		for {
			v := c.Center[i] + c.Spread*r.Normal()
			if v >= 0 && v <= 1 {
				out[i] = v
				break
			}
		}
	}
}

// Dim implements Profile.
func (p *PeakedProfile) Dim() int { return p.d }

// MeasureRegion estimates the profile probability of a region — the
// model's q_i — by Monte-Carlo integration with the given number of
// sample demands. It returns the estimate and its standard error.
func MeasureRegion(r *randx.Stream, profile Profile, region Region, samples int) (estimate, stdErr float64, err error) {
	if profile == nil || region == nil {
		return 0, 0, errors.New("demandspace: profile and region must not be nil")
	}
	if samples < 1 {
		return 0, 0, fmt.Errorf("demandspace: sample count %d must be positive", samples)
	}
	if profile.Dim() != region.Dim() {
		return 0, 0, fmt.Errorf("demandspace: profile dimension %d does not match region dimension %d", profile.Dim(), region.Dim())
	}
	point := make(Point, profile.Dim())
	hits := 0
	for i := 0; i < samples; i++ {
		profile.Sample(r, point)
		if region.Contains(point) {
			hits++
		}
	}
	p := float64(hits) / float64(samples)
	return p, math.Sqrt(p * (1 - p) / float64(samples)), nil
}
