package randx

import (
	"fmt"
	"math"
	"testing"
)

// BenchmarkFill backs the amortization claim in the FillUint64 godoc
// with numbers: one batched fill of width w versus w element-wise
// draws. Report ns/op divided by the width to compare per-variate cost.
func BenchmarkFill(b *testing.B) {
	for _, width := range []int{8, 64, 256} {
		b.Run(fmt.Sprintf("FillUint64/width=%d", width), func(b *testing.B) {
			r := NewStream(1)
			dst := make([]uint64, width)
			b.SetBytes(int64(8 * width))
			for i := 0; i < b.N; i++ {
				r.FillUint64(dst)
			}
		})
		b.Run(fmt.Sprintf("SequentialUint64/width=%d", width), func(b *testing.B) {
			r := NewStream(1)
			dst := make([]uint64, width)
			b.SetBytes(int64(8 * width))
			for i := 0; i < b.N; i++ {
				for j := range dst {
					dst[j] = r.Uint64()
				}
			}
		})
		b.Run(fmt.Sprintf("FillFloat64/width=%d", width), func(b *testing.B) {
			r := NewStream(1)
			dst := make([]float64, width)
			b.SetBytes(int64(8 * width))
			for i := 0; i < b.N; i++ {
				r.FillFloat64(dst)
			}
		})
		b.Run(fmt.Sprintf("SequentialFloat64/width=%d", width), func(b *testing.B) {
			r := NewStream(1)
			dst := make([]float64, width)
			b.SetBytes(int64(8 * width))
			for i := 0; i < b.N; i++ {
				for j := range dst {
					dst[j] = r.Float64()
				}
			}
		})
	}
}

// BenchmarkHits measures the fused draw-and-compare kernel against the
// fill-then-compare alternative it replaced: w packed Bernoulli lanes
// per call versus a w-wide FillUint64 followed by a scalar threshold
// loop. The paired 32-bit lanes should come in near half the
// per-variate cost of the fill path.
func BenchmarkHits(b *testing.B) {
	thr := uint64(math.Ceil(0.3 * 0x1p53))
	for _, width := range []int{8, 64} {
		b.Run(fmt.Sprintf("Hits/width=%d", width), func(b *testing.B) {
			r := NewStream(1)
			var sink uint64
			for i := 0; i < b.N; i++ {
				sink ^= r.Hits(thr, width)
			}
			_ = sink
		})
		b.Run(fmt.Sprintf("FillThenCompare/width=%d", width), func(b *testing.B) {
			r := NewStream(1)
			dst := make([]uint64, width)
			var sink uint64
			for i := 0; i < b.N; i++ {
				r.FillUint64(dst)
				var m uint64
				for j, u := range dst {
					m |= (u>>11 - thr) >> 63 << uint(j)
				}
				sink ^= m
			}
			_ = sink
		})
	}
}
