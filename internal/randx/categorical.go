package randx

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoMass is returned when a categorical distribution is constructed from
// weights that sum to zero.
var ErrNoMass = errors.New("randx: categorical weights sum to zero")

// Categorical samples indices from a finite discrete distribution in O(1)
// per draw using Walker's alias method (as refined by Vose, 1991).
//
// The demand-space simulator draws 10^6-10^8 demands from profiles with
// thousands of cells; the alias table keeps that linear in the number of
// draws rather than in draws x cells. An ablation bench against linear-scan
// sampling lives in the demandspace package.
type Categorical struct {
	prob  []float64
	alias []int
}

// NewCategorical builds an alias table for the given non-negative weights
// (they need not be normalised). It returns an error if weights is empty,
// any weight is negative or non-finite, or all weights are zero.
func NewCategorical(weights []float64) (*Categorical, error) {
	n := len(weights)
	if n == 0 {
		return nil, errors.New("randx: categorical requires at least one weight")
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 1) {
			return nil, fmt.Errorf("randx: invalid categorical weight %v at index %d", w, i)
		}
		total += w
	}
	if total == 0 {
		return nil, ErrNoMass
	}

	c := &Categorical{
		prob:  make([]float64, n),
		alias: make([]int, n),
	}
	// Scaled probabilities: mean 1 across cells.
	scaled := make([]float64, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
	}
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, p := range scaled {
		if p < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]

		c.prob[s] = scaled[s]
		c.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Remaining cells carry full probability (floating-point residue).
	for _, i := range large {
		c.prob[i] = 1
		c.alias[i] = i
	}
	for _, i := range small {
		c.prob[i] = 1
		c.alias[i] = i
	}
	return c, nil
}

// Len returns the number of categories.
func (c *Categorical) Len() int { return len(c.prob) }

// Draw returns a category index distributed according to the weights the
// table was built from.
func (c *Categorical) Draw(r *Stream) int {
	i := r.IntN(len(c.prob))
	if r.Float64() < c.prob[i] {
		return i
	}
	return c.alias[i]
}

// LinearScan samples an index proportionally to weights by cumulative scan.
// It is the O(n)-per-draw baseline against which the alias method is
// benchmarked; it returns an error under the same conditions as
// NewCategorical.
func LinearScan(r *Stream, weights []float64) (int, error) {
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 1) {
			return 0, fmt.Errorf("randx: invalid categorical weight %v at index %d", w, i)
		}
		total += w
	}
	if total == 0 {
		return 0, ErrNoMass
	}
	u := r.Float64() * total
	cum := 0.0
	for i, w := range weights {
		cum += w
		if u < cum {
			return i, nil
		}
	}
	return len(weights) - 1, nil
}
