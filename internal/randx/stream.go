package randx

import (
	"fmt"
	"math"
	"math/bits"
)

// Stream couples a Source with samplers for the distributions used by the
// fault-creation model and its Monte-Carlo harness. All methods are
// deterministic functions of the seed, so every experiment in this
// repository is exactly reproducible.
//
// A Stream is not safe for concurrent use; derive per-goroutine streams
// with Split.
type Stream struct {
	src *Source

	// Spare normal variate from the last Marsaglia polar draw, if any.
	hasGauss bool
	gauss    float64
}

// NewStream returns a Stream seeded with seed.
func NewStream(seed uint64) *Stream {
	return &Stream{src: NewSource(seed)}
}

// Split derives n independent child streams; see Source.Split.
func (r *Stream) Split(n int) []*Stream {
	sources := r.src.Split(n)
	children := make([]*Stream, n)
	for i, src := range sources {
		children[i] = &Stream{src: src}
	}
	return children
}

// Uint64 returns 64 uniform random bits.
func (r *Stream) Uint64() uint64 { return r.src.Uint64() }

// Float64 returns a uniform variate in [0, 1) with 53 random bits.
func (r *Stream) Float64() float64 {
	return float64(r.src.Uint64()>>11) * 0x1p-53
}

// Float64Open returns a uniform variate in the open interval (0, 1),
// suitable as input to inverse-CDF transforms that diverge at 0 or 1.
func (r *Stream) Float64Open() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return u
		}
	}
}

// IntN returns a uniform integer in [0, n). It panics if n <= 0, matching
// the contract of math/rand.
func (r *Stream) IntN(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("randx: IntN called with non-positive n %d", n))
	}
	// Lemire's nearly-divisionless bounded generation.
	bound := uint64(n)
	x := r.src.Uint64()
	hi, lo := bits.Mul64(x, bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			x = r.src.Uint64()
			hi, lo = bits.Mul64(x, bound)
		}
	}
	return int(hi)
}

// Bernoulli returns true with probability p. Values of p outside [0, 1]
// are clamped: p <= 0 never succeeds and p >= 1 always succeeds. The
// clamp branches also skip the uniform draw for degenerate p; hot loops
// whose p is already validated can avoid them with BernoulliValidated.
func (r *Stream) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// BernoulliValidated returns true with probability p, assuming the caller
// has already established p ∈ [0, 1] — the fault-creation processes
// validate every presence probability once at construction (faultmodel
// validation), so their per-fault inner loops need no per-draw clamp.
// Unlike Bernoulli it always consumes exactly one variate, including for
// p = 0 (never true: Float64 < 0 is impossible) and p = 1 (always true:
// Float64 < 1 always holds).
func (r *Stream) BernoulliValidated(p float64) bool {
	return r.Float64() < p
}

// FillUint64 overwrites dst with uniform 64-bit values, drawing them in
// the same order as repeated Uint64 calls — a batched fill produces
// exactly the sequence the element-wise calls would, so switching a
// consumer between the two never changes its variates for a given seed.
// The point of the batch is cost amortization: one call crosses the
// method boundary once and runs the generator with its state held in
// registers (Source.Fill), instead of reloading it per draw. BenchmarkFill measures the per-variate saving against
// element-wise Uint64/Float64 calls; the batched replication kernel
// (montecarlo Config.BatchWidth) is built on this primitive.
func (r *Stream) FillUint64(dst []uint64) {
	r.src.Fill(dst)
}

// Hits draws n (at most 64) Bernoulli outcomes with probability exactly
// t * 2^-53 (t = ceil(p * 2^53)) and packs them into the returned
// mask's low n bits; see Source.Hits for the paired 32-bit lane scheme.
// Unlike FillUint64 it does not consume the stream like element-wise
// calls: it draws ceil(n/2) words plus a rare refinement word per
// coarse tie.
func (r *Stream) Hits(t uint64, n int) uint64 {
	return r.src.Hits(t, n)
}

// FillFloat64 overwrites dst with uniform variates in [0, 1), drawing
// them in the same order — and from the same underlying 64-bit values —
// as repeated Float64 calls. See FillUint64 for the amortization
// rationale; prefer FillUint64 plus an integer threshold compare when
// the floats would only feed Bernoulli decisions.
func (r *Stream) FillFloat64(dst []float64) {
	for i := range dst {
		dst[i] = float64(r.src.Uint64()>>11) * 0x1p-53
	}
}

// geometricInversionMax is the largest success probability for which
// Geometric uses inverse-CDF sampling. Above it the expected number of
// Bernoulli trials to the first success (1/p <= 4) is cheaper than the
// logarithm the inversion costs, so the sampler falls back to trials.
const geometricInversionMax = 0.25

// Geometric returns a Geometric(p) variate: the number of failures before
// the first success in independent Bernoulli(p) trials (support 0, 1, ...).
// Small p uses single-draw inversion of the CDF via log1p — the skip
// sampler of the sparse development kernel, O(1) however rare the success
// — and large p falls back to literal Bernoulli trials. It panics if p is
// not in (0, 1].
func (r *Stream) Geometric(p float64) int {
	return NewGeometricSampler(p).Next(r)
}

// GeometricSampler draws Geometric(p) variates with the per-p logarithm
// precomputed, for callers that need many gaps at the same p (the sparse
// development kernel draws one gap per surviving fault). The zero value is
// not usable; construct with NewGeometricSampler. A sampler is immutable
// and safe for concurrent use with per-goroutine streams.
type GeometricSampler struct {
	p float64
	// invLogQ is 1/log1p(-p), negative; 0 selects the Bernoulli-trial
	// fallback for large p.
	invLogQ float64
}

// NewGeometricSampler returns a sampler for Geometric(p). It panics if p
// is not in (0, 1].
func NewGeometricSampler(p float64) GeometricSampler {
	if math.IsNaN(p) || p <= 0 || p > 1 {
		panic(fmt.Sprintf("randx: Geometric requires p in (0, 1], got %v", p))
	}
	g := GeometricSampler{p: p}
	if p <= geometricInversionMax {
		g.invLogQ = 1 / math.Log1p(-p)
	}
	return g
}

// P returns the sampler's success probability.
func (g GeometricSampler) P() float64 { return g.p }

// Next draws one Geometric(p) variate from r.
func (g GeometricSampler) Next(r *Stream) int {
	if g.invLogQ == 0 {
		// Large p (or p == 1): literal trials, expected count 1/p <= 4.
		k := 0
		for g.p < 1 && !(r.Float64() < g.p) {
			k++
		}
		return k
	}
	// Inversion: floor(log(U)/log(1-p)) with U uniform on (0, 1) is
	// Geometric(p)-distributed; both logs are negative so the ratio is a
	// non-negative float and int() truncation is the floor.
	return int(math.Log(r.Float64Open()) * g.invLogQ)
}

// Normal returns a standard normal variate via the Marsaglia polar method.
func (r *Stream) Normal() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		factor := math.Sqrt(-2 * math.Log(s) / s)
		r.gauss = v * factor
		r.hasGauss = true
		return u * factor
	}
}

// NormalMuSigma returns a normal variate with the given mean and standard
// deviation.
func (r *Stream) NormalMuSigma(mu, sigma float64) float64 {
	return mu + sigma*r.Normal()
}

// Exponential returns an exponential variate with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (r *Stream) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic(fmt.Sprintf("randx: Exponential called with non-positive rate %v", rate))
	}
	return -math.Log(1-r.Float64()) / rate
}

// Gamma returns a Gamma(shape, 1) variate using the Marsaglia–Tsang (2000)
// squeeze method, with the standard boosting trick for shape < 1.
// It panics if shape <= 0.
func (r *Stream) Gamma(shape float64) float64 {
	if shape <= 0 {
		panic(fmt.Sprintf("randx: Gamma called with non-positive shape %v", shape))
	}
	if shape < 1 {
		// Boost: if X ~ Gamma(shape+1) and U uniform, then
		// X*U^(1/shape) ~ Gamma(shape).
		return r.Gamma(shape+1) * math.Pow(r.Float64Open(), 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = r.Normal()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := r.Float64Open()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Beta returns a Beta(alpha, beta) variate via the two-Gamma construction.
// It panics if either parameter is non-positive.
func (r *Stream) Beta(alpha, beta float64) float64 {
	x := r.Gamma(alpha)
	y := r.Gamma(beta)
	return x / (x + y)
}

// Binomial returns a Binomial(n, p) variate. For small n it sums Bernoulli
// trials; for large n it uses inversion over the CDF recurrence, which is
// O(np) expected time — adequate for the moderate n used in this library.
// It panics if n < 0 or p is outside [0, 1].
func (r *Stream) Binomial(n int, p float64) int {
	switch {
	case n < 0:
		panic(fmt.Sprintf("randx: Binomial called with negative n %d", n))
	case p < 0 || p > 1 || math.IsNaN(p):
		panic(fmt.Sprintf("randx: Binomial called with invalid p %v", p))
	case p == 0 || n == 0:
		return 0
	case p == 1:
		return n
	}
	// Exploit symmetry so the inversion loop runs over the smaller tail.
	if p > 0.5 {
		return n - r.Binomial(n, 1-p)
	}
	if n <= 64 {
		count := 0
		for i := 0; i < n; i++ {
			if r.Float64() < p {
				count++
			}
		}
		return count
	}
	// Inversion: walk the PMF recurrence until the cumulative mass
	// exceeds a uniform draw.
	q := 1 - p
	s := p / q
	pmf := math.Pow(q, float64(n))
	u := r.Float64()
	cdf := pmf
	for k := 0; k < n; k++ {
		if u <= cdf {
			return k
		}
		pmf *= s * float64(n-k) / float64(k+1)
		cdf += pmf
	}
	return n
}

// Poisson returns a Poisson(lambda) variate. Knuth's product method is used
// for small lambda; larger means split recursively via the additivity of
// the Poisson distribution, keeping the method exact without a normal
// approximation. It panics if lambda < 0.
func (r *Stream) Poisson(lambda float64) int {
	if lambda < 0 || math.IsNaN(lambda) {
		panic(fmt.Sprintf("randx: Poisson called with invalid lambda %v", lambda))
	}
	if lambda == 0 {
		return 0
	}
	const chunk = 30
	count := 0
	for lambda > chunk {
		count += r.poissonKnuth(chunk)
		lambda -= chunk
	}
	return count + r.poissonKnuth(lambda)
}

func (r *Stream) poissonKnuth(lambda float64) int {
	limit := math.Exp(-lambda)
	k := 0
	product := r.Float64Open()
	for product > limit {
		k++
		product *= r.Float64Open()
	}
	return k
}

// Dirichlet fills out with a Dirichlet(alpha) variate (a random probability
// vector). len(out) must equal len(alpha) and every alpha must be positive;
// it panics otherwise.
func (r *Stream) Dirichlet(alpha, out []float64) {
	if len(alpha) != len(out) {
		panic(fmt.Sprintf("randx: Dirichlet length mismatch: %d alphas, %d outputs", len(alpha), len(out)))
	}
	total := 0.0
	for i, a := range alpha {
		out[i] = r.Gamma(a)
		total += out[i]
	}
	for i := range out {
		out[i] /= total
	}
}

// Perm fills out with a uniform random permutation of 0..len(out)-1
// (Fisher–Yates).
func (r *Stream) Perm(out []int) {
	for i := range out {
		j := r.IntN(i + 1)
		out[i] = out[j]
		out[j] = i
	}
}

// Shuffle permutes xs uniformly at random (Fisher–Yates).
func (r *Stream) Shuffle(xs []float64) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.IntN(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}
