package randx

import (
	"math"
	"testing"
)

// refHits replays the paired 32-bit lane scheme of Source.Hits with
// branchy scalar code on the same source: two coarse lanes per draw
// (high half first) against t>>21, one refinement word per exact coarse
// tie settling the outcome with t's low 21 bits.
func refHits(s *Source, t uint64, n int) uint64 {
	t32, tRef := t>>21, t&hitsRefineMask
	var m uint64
	for j := 0; j < n; {
		u := s.Uint64()
		for _, lane := range []uint64{u >> 32, u & 0xFFFFFFFF} {
			if j >= n {
				break
			}
			switch {
			case lane < t32:
				m |= 1 << uint(j)
			case lane == t32:
				if s.Uint64()&hitsRefineMask < tRef {
					m |= 1 << uint(j)
				}
			}
			j++
		}
	}
	return m
}

// TestHitsMatchesScalarReference: the register-resident kernel must
// agree with the scalar replay bit for bit and leave the source in the
// same state, across thresholds, widths, and seeds.
func TestHitsMatchesScalarReference(t *testing.T) {
	t.Parallel()

	thresholds := []uint64{
		0, 1, 1 << 20, 1<<21 - 1, 1 << 21, 1 << 32, 1 << 52, 1<<53 - 1, 1 << 53,
		uint64(math.Ceil(0.3 * 0x1p53)),
		uint64(math.Ceil(1e-9 * 0x1p53)),
	}
	for _, thr := range thresholds {
		for _, n := range []int{1, 2, 3, 31, 32, 33, 64} {
			for seed := uint64(1); seed <= 20; seed++ {
				a, b := NewSource(seed), NewSource(seed)
				got := a.Hits(thr, n)
				want := refHits(b, thr, n)
				if got != want {
					t.Fatalf("Hits(%d, %d) seed %d = %#x, reference %#x", thr, n, seed, got, want)
				}
				if ga, gb := a.Uint64(), b.Uint64(); ga != gb {
					t.Fatalf("Hits(%d, %d) seed %d left diverged state: next draws %d vs %d", thr, n, seed, ga, gb)
				}
			}
		}
	}
}

// TestHitsDegenerateThresholds: t = 2^53 (p = 1) always hits with no
// tie possible, t = 0 (p = 0) never hits.
func TestHitsDegenerateThresholds(t *testing.T) {
	t.Parallel()

	for seed := uint64(1); seed <= 10; seed++ {
		if got := NewSource(seed).Hits(1<<53, 64); got != ^uint64(0) {
			t.Fatalf("Hits(2^53, 64) seed %d = %#x, want all ones", seed, got)
		}
		if got := NewSource(seed).Hits(0, 64); got != 0 {
			t.Fatalf("Hits(0, 64) seed %d = %#x, want 0", seed, got)
		}
	}
}

// TestHitsRefinementPath forces the probability-2^-32 coarse-tie branch
// by building the threshold from a seed's actual first draw: with
// t>>21 equal to the first high lane, the first lane's outcome must
// come from the refinement word, exactly t's low 21 bits out of 2^21.
func TestHitsRefinementPath(t *testing.T) {
	t.Parallel()

	for seed := uint64(1); seed <= 50; seed++ {
		first := NewSource(seed).Uint64()
		refine := NewSource(seed) // replays: first word, then the refinement word
		refine.Uint64()
		refineWord := refine.Uint64()
		for _, tRef := range []uint64{0, 1, 1 << 10, hitsRefineMask} {
			thr := (first>>32)<<21 | tRef
			got := NewSource(seed).Hits(thr, 1) & 1
			want := uint64(0)
			if refineWord&hitsRefineMask < tRef {
				want = 1
			}
			if got != want {
				t.Fatalf("seed %d tRef %d: refined lane = %d, want %d", seed, tRef, got, want)
			}
		}
	}
}

// TestHitsFrequency: lane hit rates over many tiles must track t·2^-53
// within binomial noise — the end-to-end check that pairing lanes kept
// the distribution exact.
func TestHitsFrequency(t *testing.T) {
	t.Parallel()

	src := NewSource(7)
	for _, p := range []float64{0.01, 0.3, 0.5, 0.97} {
		thr := uint64(math.Ceil(p * 0x1p53))
		const tiles = 4000
		hits := 0
		for i := 0; i < tiles; i++ {
			m := src.Hits(thr, 64)
			for ; m != 0; m &= m - 1 {
				hits++
			}
		}
		n := float64(tiles * 64)
		se := math.Sqrt(p * (1 - p) / n)
		if diff := math.Abs(float64(hits)/n - p); diff > 5*se {
			t.Errorf("p=%v: hit rate %v off by %v (> 5 SE = %v)", p, float64(hits)/n, diff, 5*se)
		}
	}
}
